//! Workspace integration tests: cross-algorithm agreement and the paper's
//! qualitative claims, exercised through the full stack (facade → trees →
//! signatures → block devices).

use ir2_datagen::{figure1_hotels, DatasetSpec};
use ir2tree::model::{DistanceFirstQuery, SpatialObject};
use ir2tree::{Algorithm, DbConfig, DeviceSet, SpatialKeywordDb};

fn build_sample(
    n: usize,
    sig_bytes: usize,
) -> (SpatialKeywordDb<ir2tree::storage::MemDevice>, DatasetSpec) {
    let spec = DatasetSpec::restaurants().scaled(n as f64 / 456_288.0);
    let db = SpatialKeywordDb::build(
        DeviceSet::in_memory(),
        spec.generate(),
        DbConfig::restaurants().with_sig_bytes(sig_bytes),
    )
    .unwrap();
    (db, spec)
}

#[test]
fn figure1_database_answers_the_running_query() {
    let db = SpatialKeywordDb::build(
        DeviceSet::in_memory(),
        figure1_hotels(),
        DbConfig {
            capacity: Some(4),
            sig_bytes: 16,
            ..DbConfig::default()
        },
    )
    .unwrap();
    let q = DistanceFirstQuery::new([30.5, 100.0], &["internet", "pool"], 2);
    for alg in Algorithm::ALL {
        let ids: Vec<u64> = db
            .distance_first(alg, &q)
            .unwrap()
            .results
            .iter()
            .map(|(o, _)| o.id)
            .collect();
        assert_eq!(ids, vec![7, 2], "{}", alg.label());
    }
}

#[test]
fn four_algorithms_agree_across_many_random_queries() {
    let (db, spec) = build_sample(4_000, 4);
    // Query keywords of varied selectivity, query points across the map.
    let cases = [
        (vec![spec.keyword_of_rank(3)], [0.0, 0.0]),
        (
            vec![spec.keyword_of_rank(3), spec.keyword_of_rank(15)],
            [40.0, -70.0],
        ),
        (
            vec![spec.keyword_of_rank(50), spec.keyword_of_rank(200)],
            [-30.0, 120.0],
        ),
        (
            vec![
                spec.keyword_of_rank(5),
                spec.keyword_of_rank(60),
                spec.keyword_of_rank(400),
            ],
            [10.0, 10.0],
        ),
    ];
    for (keywords, point) in cases {
        let q = DistanceFirstQuery::new(point, &keywords, 10);
        let reference = db.distance_first(Algorithm::RTree, &q).unwrap();
        let ref_d: Vec<f64> = reference.results.iter().map(|(_, d)| *d).collect();
        for alg in [Algorithm::Iio, Algorithm::Ir2, Algorithm::Mir2] {
            let got = db.distance_first(alg, &q).unwrap();
            let d: Vec<f64> = got.results.iter().map(|(_, d)| *d).collect();
            assert_eq!(d.len(), ref_d.len(), "{} on {keywords:?}", alg.label());
            for (a, b) in d.iter().zip(ref_d.iter()) {
                assert!((a - b).abs() < 1e-9, "{} on {keywords:?}", alg.label());
            }
        }
    }
}

#[test]
fn ir2_beats_rtree_on_object_accesses_for_selective_keywords() {
    let (db, spec) = build_sample(6_000, 8);
    // A selective pair: moderately rare keywords rarely co-occur.
    let keywords = [spec.keyword_of_rank(30), spec.keyword_of_rank(90)];
    let q = DistanceFirstQuery::new([20.0, 20.0], &keywords, 10);
    let rtree = db.distance_first(Algorithm::RTree, &q).unwrap();
    let ir2 = db.distance_first(Algorithm::Ir2, &q).unwrap();
    assert!(
        ir2.object_loads < rtree.object_loads,
        "IR² loads {} objects, baseline {} — pruning must help",
        ir2.object_loads,
        rtree.object_loads
    );
    assert!(ir2.counters.pruned_by_signature > 0);
}

#[test]
fn iio_io_is_insensitive_to_k() {
    let (db, spec) = build_sample(5_000, 8);
    let keywords = [spec.keyword_of_rank(2), spec.keyword_of_rank(8)];
    let io_at_k = |k: usize| {
        let q = DistanceFirstQuery::new([0.0, 0.0], &keywords, k);
        let rep = db.distance_first(Algorithm::Iio, &q).unwrap();
        rep.io.total()
    };
    let io1 = io_at_k(1);
    let io50 = io_at_k(50);
    // IIO computes the full result set regardless of k; only the final
    // trim differs, so block I/O is identical.
    assert_eq!(io1, io50, "IIO I/O must not depend on k");
}

#[test]
fn mir2_never_reads_more_nodes_than_ir2() {
    let (db, spec) = build_sample(6_000, 2);
    // Short signatures make IR² false positives common; the MIR²-Tree's
    // longer upper-level signatures must prune at least as well.
    let mut ir2_nodes = 0;
    let mut mir2_nodes = 0;
    for rank in [5, 20, 60, 150] {
        let q = DistanceFirstQuery::new(
            [0.0, 0.0],
            &[spec.keyword_of_rank(rank), spec.keyword_of_rank(rank + 3)],
            10,
        );
        ir2_nodes += db
            .distance_first(Algorithm::Ir2, &q)
            .unwrap()
            .counters
            .nodes_read;
        mir2_nodes += db
            .distance_first(Algorithm::Mir2, &q)
            .unwrap()
            .counters
            .nodes_read;
    }
    assert!(
        mir2_nodes <= ir2_nodes,
        "MIR² read {mir2_nodes} nodes, IR² {ir2_nodes}"
    );
}

#[test]
fn worst_case_absent_keyword_is_cheap_for_signature_trees() {
    let (db, _) = build_sample(4_000, 8);
    let q = DistanceFirstQuery::new([0.0, 0.0], &["zzzunseenword"], 5);
    let rtree = db.distance_first(Algorithm::RTree, &q).unwrap();
    let ir2 = db.distance_first(Algorithm::Ir2, &q).unwrap();
    assert!(rtree.results.is_empty() && ir2.results.is_empty());
    // The baseline must walk the entire tree and load every object; the
    // IR²-Tree prunes most subtrees (upper-level signatures are dense at
    // 8 bytes, so some false-positive descents remain).
    assert!(
        ir2.io.total() * 3 < rtree.io.total(),
        "ir2 {} vs rtree {}",
        ir2.io.total(),
        rtree.io.total()
    );
}

#[test]
fn mixed_workload_with_updates_stays_consistent() {
    let spec = DatasetSpec::restaurants().scaled(0.002); // ~900 objects
    let mut db = SpatialKeywordDb::build(
        DeviceSet::in_memory(),
        spec.generate(),
        DbConfig::restaurants().with_capacity(16),
    )
    .unwrap();
    // Insert a distinctive object, query it, delete it, re-query.
    let special = SpatialObject::new(
        1_000_000,
        [33.0, 33.0],
        "uniquely flavored unobtanium bistro",
    );
    let ptr = db.insert(&special).unwrap();
    let q = DistanceFirstQuery::new([33.0, 33.0], &["unobtanium"], 3);
    for alg in [Algorithm::RTree, Algorithm::Ir2, Algorithm::Mir2] {
        let rep = db.distance_first(alg, &q).unwrap();
        assert_eq!(rep.results.len(), 1, "{}", alg.label());
    }
    assert!(db.delete(ptr).unwrap());
    for alg in [Algorithm::RTree, Algorithm::Ir2, Algorithm::Mir2] {
        assert!(db.distance_first(alg, &q).unwrap().results.is_empty());
    }
    // And the pre-existing data still answers consistently.
    let q2 = DistanceFirstQuery::new([0.0, 0.0], &[spec.keyword_of_rank(4)], 5);
    let a = db.distance_first(Algorithm::RTree, &q2).unwrap();
    let b = db.distance_first(Algorithm::Ir2, &q2).unwrap();
    assert_eq!(a.results.len(), b.results.len());
}

#[test]
fn concurrent_queries_are_safe_and_consistent() {
    let (db, spec) = build_sample(3_000, 8);
    let q = DistanceFirstQuery::new([10.0, 10.0], &[spec.keyword_of_rank(6)], 10);
    let reference: Vec<u64> = db
        .distance_first(Algorithm::Ir2, &q)
        .unwrap()
        .results
        .iter()
        .map(|(o, _)| o.id)
        .collect();

    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                for alg in [
                    Algorithm::Ir2,
                    Algorithm::Mir2,
                    Algorithm::RTree,
                    Algorithm::Iio,
                ] {
                    let ids: Vec<u64> = db
                        .distance_first(alg, &q)
                        .unwrap()
                        .results
                        .iter()
                        .map(|(o, _)| o.id)
                        .collect();
                    // Distances may tie; compare result distance multisets
                    // via count at least.
                    assert_eq!(ids.len(), reference.len(), "{}", alg.label());
                }
            });
        }
    });
}

#[test]
fn facade_area_queries_work() {
    use ir2tree::geo::{Point, Rect};
    let (db, spec) = build_sample(2_000, 8);
    let area = Rect::from_corners(Point::new([-20.0, -20.0]), Point::new([20.0, 20.0]));
    let kw = vec![spec.keyword_of_rank(3)];
    let rep = db
        .distance_first_region(Algorithm::Ir2, area.into(), &kw, 20)
        .unwrap();
    // Matches inside the area come first, at distance zero.
    let mut saw_positive = false;
    for (obj, d) in &rep.results {
        if area.contains_point(&obj.point) {
            assert_eq!(*d, 0.0);
            assert!(!saw_positive, "zero-distance results must precede others");
        } else {
            assert!(*d > 0.0);
            saw_positive = true;
        }
    }
    // The baseline algorithms reject region queries explicitly.
    assert!(db
        .distance_first_region(Algorithm::Iio, area.into(), &kw, 5)
        .is_err());
}

#[test]
fn batch_queries_match_sequential_queries() {
    let (db, spec) = build_sample(2_500, 8);
    let queries: Vec<DistanceFirstQuery<2>> = (0..12)
        .map(|i| {
            DistanceFirstQuery::new(
                [(i * 7 % 40) as f64, (i * 11 % 40) as f64],
                &[spec.keyword_of_rank(3 + i), spec.keyword_of_rank(20 + i)],
                5,
            )
        })
        .collect();
    for alg in Algorithm::ALL {
        let batch = db.batch_distance_first(alg, &queries, 4).unwrap();
        assert_eq!(batch.results.len(), queries.len());
        assert!(batch.io.total() > 0);
        for (q, got) in queries.iter().zip(&batch.results) {
            let seq = db.distance_first(alg, q).unwrap();
            let gd: Vec<f64> = got.iter().map(|(_, d)| *d).collect();
            let sd: Vec<f64> = seq.results.iter().map(|(_, d)| *d).collect();
            assert_eq!(gd.len(), sd.len(), "{}", alg.label());
            for (a, b) in gd.iter().zip(sd.iter()) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn batch_topk_attribution_matches_sequential() {
    let (db, spec) = build_sample(2_500, 8);
    let queries: Vec<DistanceFirstQuery<2>> = (0..16)
        .map(|i| {
            DistanceFirstQuery::new(
                [(i * 13 % 50) as f64 - 25.0, (i * 29 % 50) as f64 - 25.0],
                &[spec.keyword_of_rank(2 + i), spec.keyword_of_rank(18 + i)],
                8,
            )
        })
        .collect();
    for alg in Algorithm::ALL {
        let batch = db.batch_topk(alg, &queries, 4).unwrap();
        assert_eq!(batch.len(), queries.len());
        // Same workload on 1 thread: per-query attribution must be fully
        // deterministic, i.e. independent of interleaving.
        let solo = db.batch_topk(alg, &queries, 1).unwrap();
        for (q, (got, alone)) in queries.iter().zip(batch.iter().zip(&solo)) {
            let seq = db.distance_first(alg, q).unwrap();
            // Results byte-identical to the sequential path.
            let g: Vec<(u64, f64)> = got.results.iter().map(|(o, d)| (o.id, *d)).collect();
            let s: Vec<(u64, f64)> = seq.results.iter().map(|(o, d)| (o.id, *d)).collect();
            assert_eq!(g, s, "{}", alg.label());
            // I/O totals attributed to this query match the query run
            // alone (the random/sequential split may differ only in the
            // first access per device: a scope starts with a fresh arm).
            assert_eq!(got.io.total(), seq.io.total(), "{}", alg.label());
            assert_eq!(got.object_loads, seq.object_loads, "{}", alg.label());
            assert_eq!(
                got.counters.nodes_read,
                seq.counters.nodes_read,
                "{}",
                alg.label()
            );
            // And thread count must not change attribution at all.
            assert_eq!(got.io, alone.io, "{}", alg.label());
            assert_eq!(got.index_io, alone.index_io, "{}", alg.label());
            assert_eq!(got.object_io, alone.object_io, "{}", alg.label());
        }
    }
}

#[test]
fn batch_general_topk_matches_general_ranked() {
    use ir2tree::text::{LinearRank, SaturatingTfIdf};
    let (db, spec) = build_sample(2_000, 8);
    let scorer = SaturatingTfIdf;
    let rank = LinearRank::default();
    let queries: Vec<ir2tree::irtree::GeneralQuery<2>> = (0..6)
        .map(|i| {
            ir2tree::irtree::GeneralQuery::new(
                [(i * 9 % 30) as f64, (i * 17 % 30) as f64],
                &[spec.keyword_of_rank(4 + i), spec.keyword_of_rank(25 + i)],
                5,
            )
        })
        .collect();
    for alg in [Algorithm::Ir2, Algorithm::Mir2] {
        let batch = db
            .batch_general_topk(alg, &queries, &scorer, &rank, 4)
            .unwrap();
        for (q, got) in queries.iter().zip(&batch) {
            let seq = db.general_ranked(alg, q, &scorer, &rank).unwrap();
            assert_eq!(got.results.len(), seq.results.len(), "{}", alg.label());
            for (a, b) in got.results.iter().zip(&seq.results) {
                assert_eq!(a.object.id, b.object.id, "{}", alg.label());
                assert!((a.score - b.score).abs() < 1e-12, "{}", alg.label());
            }
            assert_eq!(got.io.total(), seq.io.total(), "{}", alg.label());
        }
    }
    assert!(db
        .batch_general_topk(Algorithm::RTree, &queries, &scorer, &rank, 2)
        .is_err());
}

#[test]
fn facade_window_keyword_query() {
    use ir2tree::geo::{Point, Rect};
    let (db, spec) = build_sample(2_000, 8);
    let window = Rect::from_corners(Point::new([-40.0, -40.0]), Point::new([40.0, 40.0]));
    let kw = vec![spec.keyword_of_rank(2)];
    let hits = db.keyword_window(Algorithm::Ir2, &window, &kw).unwrap();
    assert!(!hits.is_empty());
    for obj in &hits {
        assert!(window.contains_point(&obj.point));
        assert!(obj.token_set().contains_all(&kw));
    }
    // Agreement with the MIR² tree (as a set).
    let mut a: Vec<u64> = hits.iter().map(|o| o.id).collect();
    let mut b: Vec<u64> = db
        .keyword_window(Algorithm::Mir2, &window, &kw)
        .unwrap()
        .iter()
        .map(|o| o.id)
        .collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
    assert!(db.keyword_window(Algorithm::Iio, &window, &kw).is_err());
}
