//! Larger-scale smoke tests (tens of thousands of objects) validating that
//! the paper's qualitative claims emerge at scale. Kept below a minute in
//! debug builds; the full-scale runs live in the benchmark harness.

use ir2_datagen::{DatasetSpec, DatasetStats};
use ir2tree::model::DistanceFirstQuery;
use ir2tree::{Algorithm, DbConfig, DeviceSet, SpatialKeywordDb};

fn build(spec: &DatasetSpec, config: DbConfig) -> SpatialKeywordDb<ir2tree::storage::MemDevice> {
    SpatialKeywordDb::build(DeviceSet::in_memory(), spec.generate(), config).unwrap()
}

#[test]
fn restaurants_20k_full_pipeline() {
    let spec = DatasetSpec::restaurants().scaled(20_000.0 / 456_288.0);
    let db = build(&spec, DbConfig::restaurants());

    // Table 1 shape: statistics match the spec.
    let stats = db.build_stats();
    assert_eq!(stats.objects, 20_000);
    assert!((stats.avg_unique_words - 14.0).abs() < 1.5);

    // All four algorithms agree on a realistic query mix.
    for (r1, r2, k) in [(4, 9, 1), (10, 25, 10), (40, 100, 50)] {
        let q = DistanceFirstQuery::new(
            [25.0, -80.0],
            &[spec.keyword_of_rank(r1), spec.keyword_of_rank(r2)],
            k,
        );
        let reference = db.distance_first(Algorithm::RTree, &q).unwrap();
        for alg in [Algorithm::Iio, Algorithm::Ir2, Algorithm::Mir2] {
            let got = db.distance_first(alg, &q).unwrap();
            assert_eq!(
                got.results.len(),
                reference.results.len(),
                "{}",
                alg.label()
            );
            for ((_, a), (_, b)) in got.results.iter().zip(reference.results.iter()) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    // Table 2 shape at scale.
    let sizes = db.index_sizes();
    assert!(sizes.rtree < sizes.ir2);
    assert!(sizes.ir2 <= sizes.mir2);

    // Fig 9/12 shape: signature trees beat the baseline on random accesses
    // (averaged over queries to smooth noise).
    let mut base_io = 0;
    let mut ir2_io = 0;
    for rank in [15, 35, 75, 150, 300] {
        let q = DistanceFirstQuery::new(
            [0.0, 0.0],
            &[spec.keyword_of_rank(rank), spec.keyword_of_rank(rank + 5)],
            10,
        );
        base_io += db.distance_first(Algorithm::RTree, &q).unwrap().io.random();
        ir2_io += db.distance_first(Algorithm::Ir2, &q).unwrap().io.random();
    }
    assert!(
        ir2_io < base_io,
        "IR² random accesses {ir2_io} must beat baseline {base_io}"
    );
}

#[test]
fn hotels_5k_with_long_signatures() {
    let spec = DatasetSpec::hotels().scaled(5_000.0 / 129_319.0);
    let db = build(&spec, DbConfig::hotels());
    let stats = db.build_stats();
    assert!((stats.avg_unique_words - 35.0).abs() < 3.0);
    assert!(stats.avg_blocks_per_object >= 1.0);

    // Long (189 B) signatures at this document size produce essentially no
    // false positives on selective conjunctions.
    let q = DistanceFirstQuery::new(
        [10.0, 10.0],
        &[spec.keyword_of_rank(20), spec.keyword_of_rank(45)],
        10,
    );
    let rep = db.distance_first(Algorithm::Ir2, &q).unwrap();
    let checked = rep.counters.candidates_checked;
    let fp = rep.counters.false_positives;
    assert!(
        fp * 5 <= checked.max(1),
        "false positives {fp} of {checked} candidates"
    );
}

#[test]
fn generated_dataset_statistics_are_stable() {
    // The statistics the experiments assume hold for an independent sample.
    let spec = DatasetSpec::restaurants().scaled(0.02);
    let objs: Vec<_> = spec.generate().collect();
    let stats = DatasetStats::measure(&objs);
    assert!((stats.avg_unique_words - 14.0).abs() < 1.0);
    // Zipf text: the most common word covers a large fraction of objects.
    let common = spec.keyword_of_rank(0);
    let df = objs
        .iter()
        .filter(|o| o.token_set().contains(&common))
        .count();
    assert!(
        df * 5 > objs.len(),
        "rank-0 word in {df}/{} objects",
        objs.len()
    );
}
