//! Degenerate and adversarial datasets: the inputs that break naive index
//! implementations. Every algorithm must stay correct (and finish) on all
//! of them.

use ir2tree::model::{DistanceFirstQuery, SpatialObject};
use ir2tree::{Algorithm, DbConfig, DeviceSet, SpatialKeywordDb};

fn cfg() -> DbConfig {
    DbConfig {
        capacity: Some(4),
        sig_bytes: 8,
        ..DbConfig::default()
    }
}

fn check_all_algorithms(
    db: &SpatialKeywordDb<ir2tree::storage::MemDevice>,
    q: &DistanceFirstQuery<2>,
    expected_len: usize,
) {
    for alg in Algorithm::ALL {
        let rep = db.distance_first(alg, q).unwrap();
        assert_eq!(
            rep.results.len(),
            expected_len,
            "{} on {:?}",
            alg.label(),
            q.keywords
        );
        for w in rep.results.windows(2) {
            assert!(
                w[0].1 <= w[1].1,
                "{}: non-decreasing distances",
                alg.label()
            );
        }
        for (obj, _) in &rep.results {
            assert!(obj.token_set().contains_all(&q.keywords), "{}", alg.label());
        }
    }
}

#[test]
fn all_objects_at_the_same_point() {
    // 100 objects stacked on one coordinate: every MBR is degenerate and
    // every distance ties.
    let objs: Vec<SpatialObject<2>> = (0..100)
        .map(|i| {
            SpatialObject::new(
                i,
                [5.0, 5.0],
                if i % 2 == 0 { "even pool" } else { "odd spa" },
            )
        })
        .collect();
    let db = SpatialKeywordDb::build(DeviceSet::in_memory(), objs, cfg()).unwrap();
    check_all_algorithms(&db, &DistanceFirstQuery::new([5.0, 5.0], &["pool"], 50), 50);
    check_all_algorithms(&db, &DistanceFirstQuery::new([0.0, 0.0], &["spa"], 10), 10);
}

#[test]
fn all_objects_with_identical_text() {
    // Signatures are identical everywhere: pruning is impossible, but
    // correctness must hold and every algorithm still terminates.
    let objs: Vec<SpatialObject<2>> = (0..80)
        .map(|i| SpatialObject::new(i, [(i % 9) as f64, (i / 9) as f64], "same text everywhere"))
        .collect();
    let db = SpatialKeywordDb::build(DeviceSet::in_memory(), objs, cfg()).unwrap();
    check_all_algorithms(
        &db,
        &DistanceFirstQuery::new([4.0, 4.0], &["same", "text"], 5),
        5,
    );
    check_all_algorithms(
        &db,
        &DistanceFirstQuery::new([4.0, 4.0], &["different"], 5),
        0,
    );
}

#[test]
fn single_object_database() {
    let objs = vec![SpatialObject::new(42, [1.0, 2.0], "lonely pub quiz")];
    let db = SpatialKeywordDb::build(DeviceSet::in_memory(), objs, cfg()).unwrap();
    check_all_algorithms(&db, &DistanceFirstQuery::new([0.0, 0.0], &["pub"], 3), 1);
    check_all_algorithms(&db, &DistanceFirstQuery::new([0.0, 0.0], &["club"], 3), 0);
}

#[test]
fn very_long_single_document() {
    // One object with thousands of distinct words (saturates its
    // signature), surrounded by small ones.
    let long_text: String = (0..3000).map(|i| format!("w{i} ")).collect();
    let mut objs = vec![SpatialObject::new(0, [0.0, 0.0], long_text)];
    for i in 1..40 {
        objs.push(SpatialObject::new(i, [i as f64, 0.0], "short pool note"));
    }
    let db = SpatialKeywordDb::build(DeviceSet::in_memory(), objs, cfg()).unwrap();
    // The long document matches any word it contains.
    check_all_algorithms(&db, &DistanceFirstQuery::new([0.0, 0.0], &["w2999"], 5), 1);
    // Saturated signature: the long doc is a false positive for absent
    // words in the tree path, but never a false result.
    check_all_algorithms(
        &db,
        &DistanceFirstQuery::new([0.0, 0.0], &["absent9"], 5),
        0,
    );
    check_all_algorithms(
        &db,
        &DistanceFirstQuery::new([20.0, 0.0], &["pool"], 39),
        39,
    );
}

#[test]
fn unicode_documents_and_keywords() {
    let objs = vec![
        SpatialObject::new(1, [0.0, 0.0], "Καφέ στην παραλία"),
        SpatialObject::new(2, [1.0, 0.0], "кафе на пляже"),
        SpatialObject::new(3, [2.0, 0.0], "日本のカフェ 東京"),
        SpatialObject::new(4, [3.0, 0.0], "CAFÉ com açúcar"),
    ];
    let db = SpatialKeywordDb::build(DeviceSet::in_memory(), objs, cfg()).unwrap();
    check_all_algorithms(&db, &DistanceFirstQuery::new([0.0, 0.0], &["кафе"], 4), 1);
    check_all_algorithms(&db, &DistanceFirstQuery::new([0.0, 0.0], &["café"], 4), 1);
    check_all_algorithms(&db, &DistanceFirstQuery::new([0.0, 0.0], &["東京"], 4), 1);
}

#[test]
fn many_keywords_in_one_query() {
    // A 30-keyword conjunction: only the object containing all matches.
    let all_words: Vec<String> = (0..30).map(|i| format!("kw{i}")).collect();
    let mut objs = vec![SpatialObject::new(0, [0.0, 0.0], all_words.join(" "))];
    for i in 1..50 {
        objs.push(SpatialObject::new(
            i,
            [i as f64, 0.0],
            all_words[..(i as usize % 29)].join(" "),
        ));
    }
    let db = SpatialKeywordDb::build(DeviceSet::in_memory(), objs, cfg()).unwrap();
    let kws: Vec<&str> = all_words.iter().map(String::as_str).collect();
    check_all_algorithms(&db, &DistanceFirstQuery::new([10.0, 0.0], &kws, 5), 1);
}

#[test]
fn extreme_coordinates() {
    let objs = vec![
        SpatialObject::new(1, [1e15, 1e15], "far northeast pub"),
        SpatialObject::new(2, [-1e15, -1e15], "far southwest pub"),
        SpatialObject::new(3, [0.0, 0.0], "origin pub"),
        SpatialObject::new(4, [1e-15, -1e-15], "epsilon pub"),
    ];
    let db = SpatialKeywordDb::build(DeviceSet::in_memory(), objs, cfg()).unwrap();
    let rep = db
        .distance_first(
            Algorithm::Ir2,
            &DistanceFirstQuery::new([1.0, 1.0], &["pub"], 4),
        )
        .unwrap();
    assert_eq!(rep.results.len(), 4);
    // The two origin-ish pubs come first, the 1e15 corners last.
    assert!(rep.results[0].0.id == 3 || rep.results[0].0.id == 4);
    assert!(rep.results[3].1 > 1e14);
}

#[test]
fn repeated_build_delete_insert_cycles() {
    let objs: Vec<SpatialObject<2>> = (0..60)
        .map(|i| SpatialObject::new(i, [(i % 8) as f64, (i / 8) as f64], "cycling pool item"))
        .collect();
    let mut db = SpatialKeywordDb::build(DeviceSet::in_memory(), objs.clone(), cfg()).unwrap();
    // Three churn cycles: delete a third, reinsert equivalents.
    let mut ptrs = Vec::new();
    for cycle in 0..3u64 {
        for (i, obj) in objs.iter().enumerate().take(20) {
            let q = DistanceFirstQuery::new(*obj.point.coords(), &["cycling"], 1);
            let rep = db.distance_first(Algorithm::Ir2, &q).unwrap();
            assert!(!rep.results.is_empty());
            let _ = i;
        }
        for ptr in ptrs.drain(..) {
            assert!(db.delete(ptr).unwrap());
        }
        for i in 0..15u64 {
            let obj = SpatialObject::new(
                1000 + cycle * 100 + i,
                [i as f64 * 0.5, cycle as f64],
                "churned pool extra",
            );
            ptrs.push(db.insert(&obj).unwrap());
        }
        let q = DistanceFirstQuery::new([0.0, cycle as f64], &["churned"], 50);
        let rep = db.distance_first(Algorithm::Mir2, &q).unwrap();
        assert_eq!(rep.results.len(), 15, "cycle {cycle}");
    }
}
