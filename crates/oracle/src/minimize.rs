//! Failing-case minimization.
//!
//! Scenario generation truncates to its [`Caps`] *after* generating, so
//! a smaller cap yields a strict subset of the same scenario. That makes
//! shrinking trivial and sound: walk each cap downward (halving first,
//! then linear) and keep any value at which the iteration still
//! diverges. Any divergence counts as a reproduction — shrinking often
//! shifts *which* check fires first, and the smallest failing case is
//! the useful one regardless.

use crate::harness::{fuzz_one, Divergence};
use crate::scenario::Caps;

/// Shrinks `(seed, iter)`'s divergence to minimal reproducing caps.
/// Returns `None` if the iteration does not actually diverge under the
/// starting caps (the caller then keeps its original divergence).
pub(crate) fn shrink(seed: u64, iter: u64, mut caps: Caps, inject: bool) -> Option<Divergence> {
    let mut best = fuzz_one(seed, iter, caps, inject).divergence?;

    for field in [Field::Objects, Field::Queries] {
        // Halve while the failure reproduces…
        while field.get(&caps) > 1 {
            let try_caps = field.with(&caps, field.get(&caps) / 2);
            match fuzz_one(seed, iter, try_caps, inject).divergence {
                Some(d) => {
                    caps = try_caps;
                    best = d;
                }
                None => break,
            }
        }
        // …then step down one at a time.
        while field.get(&caps) > 1 {
            let try_caps = field.with(&caps, field.get(&caps) - 1);
            match fuzz_one(seed, iter, try_caps, inject).divergence {
                Some(d) => {
                    caps = try_caps;
                    best = d;
                }
                None => break,
            }
        }
    }
    Some(best)
}

#[derive(Clone, Copy)]
enum Field {
    Objects,
    Queries,
}

impl Field {
    fn get(self, caps: &Caps) -> usize {
        match self {
            Field::Objects => caps.max_objects,
            Field::Queries => caps.max_queries,
        }
    }

    fn with(self, caps: &Caps, v: usize) -> Caps {
        let mut c = *caps;
        match self {
            Field::Objects => c.max_objects = v,
            Field::Queries => c.max_queries = v,
        }
        c
    }
}
