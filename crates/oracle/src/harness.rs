//! The config-matrix fuzz harness: builds every engine variant over one
//! generated scenario and checks every answer against the brute-force
//! reference plus the metamorphic invariants.

use std::fmt;
use std::time::Duration;

use ir2_grid::{GridConfig, GridIndex};
use ir2_sigscan::SignatureFile;
use ir2tree::model::{DistanceFirstQuery, ObjPtr, ObjectStore, SpatialObject};
use ir2tree::sigfile::SignatureScheme;
use ir2tree::storage::testing::{FlakyDevice, KillSwitch};
use ir2tree::storage::{MemDevice, StorageError};
use ir2tree::text::tokenize;
use ir2tree::{
    Algorithm, DbConfig, DeviceSet, QueryLimits, QueryReport, RetryDevice, ShardedDb,
    SpatialKeywordDb,
};

use crate::minimize;
use crate::reference::reference_ranking;
use crate::scenario::{self, Caps, Scenario};

/// Everything one fuzz run needs to know.
#[derive(Clone, Copy, Debug)]
pub struct FuzzOptions {
    /// Base seed of the sweep.
    pub seed: u64,
    /// Number of iterations to run.
    pub iters: u64,
    /// First iteration index (repro commands pin a single iteration by
    /// setting this and `iters = 1`).
    pub start_iter: u64,
    /// Scenario size caps.
    pub caps: Caps,
    /// Deliberately corrupt one engine's answers to prove the harness
    /// (and the repro round trip) catches divergences.
    pub inject_bug: bool,
    /// Shrink the first divergence to minimal reproducing caps.
    pub minimize: bool,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        Self {
            seed: 42,
            iters: 100,
            start_iter: 0,
            caps: Caps::default(),
            inject_bug: false,
            minimize: true,
        }
    }
}

/// Result of a fuzz run.
#[derive(Debug)]
pub struct FuzzOutcome {
    /// Iterations actually executed (stops at the first divergence).
    pub iterations: u64,
    /// Individual invariant checks performed.
    pub checks: u64,
    /// The first divergence found, minimized if requested.
    pub divergence: Option<Divergence>,
}

/// One reproducible disagreement between an engine and the oracle (or a
/// violated metamorphic invariant).
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Sweep seed.
    pub seed: u64,
    /// Iteration the divergence occurred in.
    pub iter: u64,
    /// Caps the scenario was generated under.
    pub caps: Caps,
    /// Whether the deliberate bug injection was active.
    pub inject: bool,
    /// Engine variant that diverged (e.g. `ir2(sharded:2)`).
    pub engine: String,
    /// Violated invariant (e.g. `oracle-exact`).
    pub invariant: String,
    /// The query, rendered.
    pub query: String,
    /// What the invariant demanded.
    pub expected: String,
    /// What the engine produced.
    pub got: String,
}

impl Divergence {
    /// The one-line `ir2` command that replays exactly this case.
    pub fn repro_command(&self) -> String {
        format!(
            "ir2 fuzz --seed {} --start-iter {} --iters 1 --objects {} --queries {} --no-minimize{}",
            self.seed,
            self.iter,
            self.caps.max_objects,
            self.caps.max_queries,
            if self.inject { " --inject-bug" } else { "" }
        )
    }
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "divergence: engine={} invariant={}",
            self.engine, self.invariant
        )?;
        writeln!(
            f,
            "  seed={} iter={} objects-cap={} queries-cap={}",
            self.seed, self.iter, self.caps.max_objects, self.caps.max_queries
        )?;
        writeln!(f, "  query: {}", self.query)?;
        writeln!(f, "  expected: {}", self.expected)?;
        writeln!(f, "  got:      {}", self.got)?;
        write!(f, "  repro: {}", self.repro_command())
    }
}

/// Runs the sweep. `progress(iterations_done, checks_so_far)` is called
/// after every iteration; the run stops at the first divergence.
pub fn run_fuzz(opts: &FuzzOptions, progress: &mut dyn FnMut(u64, u64)) -> FuzzOutcome {
    let mut checks = 0;
    for i in 0..opts.iters {
        let iter = opts.start_iter + i;
        let out = fuzz_one(opts.seed, iter, opts.caps, opts.inject_bug);
        checks += out.checks;
        if let Some(d) = out.divergence {
            let d = if opts.minimize {
                minimize::shrink(opts.seed, iter, opts.caps, opts.inject_bug).unwrap_or(d)
            } else {
                d
            };
            return FuzzOutcome {
                iterations: i + 1,
                checks,
                divergence: Some(d),
            };
        }
        progress(i + 1, checks);
    }
    FuzzOutcome {
        iterations: opts.iters,
        checks,
        divergence: None,
    }
}

/// Outcome of a single iteration (used directly by the minimizer).
pub(crate) struct IterOutcome {
    pub(crate) checks: u64,
    pub(crate) divergence: Option<Divergence>,
}

/// Generates and checks one scenario. Deterministic in all arguments.
pub(crate) fn fuzz_one(seed: u64, iter: u64, caps: Caps, inject: bool) -> IterOutcome {
    let sc = scenario::generate(seed, iter, &caps);
    let mut cx = Checker {
        seed,
        iter,
        caps,
        inject,
        checks: 0,
    };
    let divergence = cx.run(&sc).err().map(|d| *d);
    IterOutcome {
        checks: cx.checks,
        divergence,
    }
}

type Hits = Vec<(u64, f64)>;

fn hits_of(results: &[(SpatialObject<2>, f64)]) -> Hits {
    results.iter().map(|(o, d)| (o.id, *d)).collect()
}

/// Bitwise result equality: same ids, same distance bits, same order.
fn same_hits(a: &[(u64, f64)], b: &[(u64, f64)]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.0 == y.0 && x.1.to_bits() == y.1.to_bits())
}

fn fmt_hits(h: &[(u64, f64)]) -> String {
    format!("{h:?}")
}

fn fmt_query(q: &DistanceFirstQuery<2>) -> String {
    format!(
        "point={:?} keywords={:?} k={}",
        q.point.coords(),
        q.keywords,
        q.k
    )
}

struct Checker {
    seed: u64,
    iter: u64,
    caps: Caps,
    inject: bool,
    checks: u64,
}

impl Checker {
    // Boxed: a `Divergence` is wide (several strings), and the error arm
    // is the rare path — keep the Ok-path `Result` thin (clippy:
    // result_large_err).
    fn diverge(
        &self,
        engine: &str,
        invariant: &str,
        query: String,
        expected: String,
        got: String,
    ) -> Box<Divergence> {
        Box::new(Divergence {
            seed: self.seed,
            iter: self.iter,
            caps: self.caps,
            inject: self.inject,
            engine: engine.to_owned(),
            invariant: invariant.to_owned(),
            query,
            expected,
            got,
        })
    }

    fn build_fail(&self, engine: &str, e: &StorageError) -> Box<Divergence> {
        self.diverge(
            engine,
            "engine-error",
            "(build)".into(),
            "successful build".into(),
            format!("{e}"),
        )
    }

    /// Exact oracle equality on a plain result list.
    fn exact(
        &mut self,
        engine: &str,
        q: &DistanceFirstQuery<2>,
        expected: &[(u64, f64)],
        got: Result<Hits, StorageError>,
    ) -> Result<(), Box<Divergence>> {
        self.checks += 1;
        match got {
            Ok(h) if same_hits(expected, &h) => Ok(()),
            Ok(h) => Err(self.diverge(
                engine,
                "oracle-exact",
                fmt_query(q),
                fmt_hits(expected),
                fmt_hits(&h),
            )),
            Err(e) => Err(self.diverge(
                engine,
                "engine-error",
                fmt_query(q),
                fmt_hits(expected),
                format!("{e}"),
            )),
        }
    }

    /// Counter conservation: every visited node was served by the cache
    /// or decoded from disk — never both, never neither.
    fn conservation(
        &mut self,
        engine: &str,
        q: &DistanceFirstQuery<2>,
        r: &QueryReport,
    ) -> Result<(), Box<Divergence>> {
        self.checks += 1;
        let c = &r.counters;
        if c.nodes_read == c.cache_hits + c.cache_misses {
            Ok(())
        } else {
            Err(self.diverge(
                engine,
                "counter-conservation",
                fmt_query(q),
                "nodes_read == cache_hits + cache_misses".into(),
                format!(
                    "nodes_read={} cache_hits={} cache_misses={}",
                    c.nodes_read, c.cache_hits, c.cache_misses
                ),
            ))
        }
    }

    /// Oracle equality + conservation on a full [`QueryReport`].
    fn check_report(
        &mut self,
        engine: &str,
        q: &DistanceFirstQuery<2>,
        expected: &[(u64, f64)],
        r: Result<QueryReport, StorageError>,
    ) -> Result<(), Box<Divergence>> {
        match r {
            Ok(rep) => {
                self.conservation(engine, q, &rep)?;
                self.exact(engine, q, expected, Ok(hits_of(&rep.results)))
            }
            Err(e) => self.exact(engine, q, expected, Err(e)),
        }
    }

    /// Tie-aware truncated-prefix invariant: a truncated answer's
    /// distance sequence is an exact prefix of the full canonical
    /// ranking; entries strictly below the boundary distance match the
    /// canonical ranking exactly, entries tied at the boundary need only
    /// belong to the oracle's tie group (a budget that trips mid-drain
    /// cannot canonicalize the cut tie group's membership).
    fn truncated_prefix(
        &mut self,
        engine: &str,
        q: &DistanceFirstQuery<2>,
        full: &[(u64, f64)],
        rep: &QueryReport,
    ) -> Result<(), Box<Divergence>> {
        self.checks += 1;
        let got = hits_of(&rep.results);
        let limit = q.k.min(full.len());
        let fail = |cx: &Self, why: &str| {
            cx.diverge(
                engine,
                "truncated-prefix",
                fmt_query(q),
                format!("{why}; full ranking {}", fmt_hits(&full[..limit])),
                fmt_hits(&got),
            )
        };
        if rep.outcome.is_none() {
            return if same_hits(&full[..limit], &got) {
                Ok(())
            } else {
                Err(fail(self, "completed run must equal the exact top-k"))
            };
        }
        if got.len() > limit {
            return Err(fail(self, "more results than the full answer holds"));
        }
        let boundary = got.last().map(|&(_, d)| d.to_bits());
        let mut seen = std::collections::HashSet::new();
        for (i, &(id, d)) in got.iter().enumerate() {
            if d.to_bits() != full[i].1.to_bits() {
                return Err(fail(self, "distance sequence is not a ranking prefix"));
            }
            if !seen.insert(id) {
                return Err(fail(self, "duplicate id"));
            }
            if Some(d.to_bits()) != boundary {
                if id != full[i].0 {
                    return Err(fail(self, "below-boundary entry is not canonical"));
                }
            } else if !full
                .iter()
                .any(|&(fid, fd)| fid == id && fd.to_bits() == d.to_bits())
            {
                return Err(fail(self, "boundary entry outside the oracle tie group"));
            }
        }
        Ok(())
    }

    fn run(&mut self, sc: &Scenario) -> Result<(), Box<Divergence>> {
        let live = sc.live();
        let cfg = DbConfig {
            capacity: Some(4), // deep trees even at fuzz-sized datasets
            sig_bytes: 8,
            ..DbConfig::default()
        };
        let warm_cfg = DbConfig {
            node_cache: 64,
            prefetch: 2,
            ..cfg.clone()
        };

        let cold = SpatialKeywordDb::build(DeviceSet::in_memory(), live.clone(), cfg.clone())
            .map_err(|e| self.build_fail("cold", &e))?;
        let warm = SpatialKeywordDb::build(DeviceSet::in_memory(), live.clone(), warm_cfg)
            .map_err(|e| self.build_fail("warm", &e))?;
        // Transient faults on every device: the retry layer must absorb
        // them without changing a single answer.
        let flaky = SpatialKeywordDb::build(
            DeviceSet::in_memory().map(|_role, d| RetryDevice::new(FlakyDevice::every_kth(d, 5))),
            live.clone(),
            cfg.clone(),
        )
        .map_err(|e| self.build_fail("flaky", &e))?;

        let mut sharded: Vec<(usize, ShardedDb<MemDevice>)> = Vec::new();
        for s in [1usize, 2, 4] {
            if s <= live.len() {
                let db = ShardedDb::build(
                    (0..s).map(|_| DeviceSet::in_memory()).collect(),
                    live.clone(),
                    cfg.clone(),
                )
                .map_err(|e| self.build_fail(&format!("sharded:{s}"), &e))?;
                sharded.push((s, db));
            }
        }

        // Replicated shards over faulty devices: every replica sees a
        // transient fault every 5th access (absorbed by the retry layer),
        // and halfway through the query sweep every shard's primary
        // replica is killed outright — queries must fail over to the
        // survivor with bitwise-identical answers and zero failures.
        let replicated = if live.len() >= 2 {
            let (s, r) = (2usize, 2usize);
            let raw: Vec<Vec<DeviceSet<std::sync::Arc<MemDevice>>>> = (0..s)
                .map(|_| {
                    (0..r)
                        .map(|_| DeviceSet::in_memory().map(|_role, d| std::sync::Arc::new(d)))
                        .collect()
                })
                .collect();
            // Populate (and byte-verify) the replicas through shared Arc
            // handles, then reopen them behind the fault injectors.
            drop(
                ShardedDb::build_replicated(raw.clone(), live.clone(), cfg.clone())
                    .map_err(|e| self.build_fail("replicated", &e))?,
            );
            let kills: Vec<Vec<KillSwitch>> = (0..s)
                .map(|_| (0..r).map(|_| KillSwitch::new()).collect())
                .collect();
            let groups = raw
                .into_iter()
                .zip(&kills)
                .map(|(group, ks)| {
                    group
                        .into_iter()
                        .zip(ks)
                        .map(|(set, k)| {
                            set.map(|_role, d| {
                                RetryDevice::new(FlakyDevice::every_kth(k.wrap(d), 5))
                            })
                        })
                        .collect()
                })
                .collect();
            let db = ShardedDb::from_replica_groups(groups)
                .map_err(|e| self.build_fail("replicated", &e))?;
            Some((db, kills))
        } else {
            None
        };

        // Standalone baselines share one object store (A4 ablation setup).
        let store = ObjectStore::<2, _>::create(MemDevice::new());
        let mut items: Vec<(ObjPtr, ir2tree::geo::Point<2>, Vec<String>)> = Vec::new();
        for o in &live {
            let ptr = store.append(o).map_err(|e| self.build_fail("store", &e))?;
            let mut terms: Vec<String> = tokenize(&o.text).collect();
            terms.sort_unstable();
            terms.dedup();
            items.push((ptr, o.point, terms));
        }
        store.flush().map_err(|e| self.build_fail("store", &e))?;
        let scheme = SignatureScheme::from_bytes_len(8, 4, 1);
        let grid = GridIndex::build(
            MemDevice::new(),
            GridConfig::for_objects(live.len(), 4, scheme),
            &items,
        )
        .map_err(|e| self.build_fail("grid", &e))?;
        let ssf = SignatureFile::build(
            MemDevice::new(),
            scheme,
            items.iter().map(|(p, _, terms)| (*p, terms.as_slice())),
        )
        .map_err(|e| self.build_fail("ssf", &e))?;

        // The mutated database starts from `initial` and replays the
        // insert/delete tail. Its inverted index is stale by design
        // (IIO is the paper's static baseline), so only the three tree
        // algorithms are compared on it.
        let mut mutated =
            SpatialKeywordDb::build(DeviceSet::in_memory(), sc.initial.clone(), cfg.clone())
                .map_err(|e| self.build_fail("mutated", &e))?;
        let mut ins_ptrs: Vec<ObjPtr> = Vec::new();
        for o in &sc.inserts {
            ins_ptrs.push(
                mutated
                    .insert(o)
                    .map_err(|e| self.build_fail("mutated", &e))?,
            );
        }
        for &i in &sc.delete_idx {
            let found = mutated
                .delete(ins_ptrs[i])
                .map_err(|e| self.build_fail("mutated", &e))?;
            if !found {
                return Err(self.diverge(
                    "mutated",
                    "delete-missing",
                    format!("(delete insert #{i})"),
                    "delete of a live object returns true".into(),
                    "false".into(),
                ));
            }
        }

        const TREE_ALGS: [Algorithm; 3] = [Algorithm::RTree, Algorithm::Ir2, Algorithm::Mir2];

        for (qi, q) in sc.queries.iter().enumerate() {
            let full = reference_ranking(&live, q);
            let expect = &full[..q.k.min(full.len())];

            if let Some((db, kills)) = &replicated {
                // Mid-sweep: pull every primary replica's kill switch.
                if qi == sc.queries.len() / 2 {
                    for ks in kills {
                        ks[0].kill();
                    }
                }
                self.check_report(
                    "ir2(replicated)",
                    q,
                    expect,
                    db.distance_first(Algorithm::Ir2, q),
                )?;
                if !q.keywords.is_empty() {
                    self.check_report(
                        "iio(replicated)",
                        q,
                        expect,
                        db.distance_first(Algorithm::Iio, q),
                    )?;
                }
            }

            if q.keywords.is_empty() {
                // IIO has no spatial access path: an empty keyword list
                // must be rejected, not mis-answered.
                self.checks += 1;
                if let Ok(rep) = cold.distance_first(Algorithm::Iio, q) {
                    return Err(self.diverge(
                        "iio(cold)",
                        "iio-empty-keywords-error",
                        fmt_query(q),
                        "an error (IIO cannot answer pure NN)".into(),
                        fmt_hits(&hits_of(&rep.results)),
                    ));
                }
            }

            for alg in Algorithm::ALL {
                if alg == Algorithm::Iio && q.keywords.is_empty() {
                    continue;
                }
                let key = alg.key();

                // Oracle equality on cold and warm monolithic databases.
                let rep = cold.distance_first(alg, q);
                if self.inject && alg == Algorithm::Ir2 {
                    // Deliberate corruption: drop the last result.
                    let got = rep.map(|r| {
                        let mut h = hits_of(&r.results);
                        h.pop();
                        h
                    });
                    self.exact("ir2(cold)", q, expect, got)?;
                } else {
                    self.check_report(&format!("{key}(cold)"), q, expect, rep)?;
                }
                self.check_report(
                    &format!("{key}(warm)"),
                    q,
                    expect,
                    warm.distance_first(alg, q),
                )?;

                // Sharded scatter-gather at every shard count.
                for (s, db) in &sharded {
                    self.check_report(
                        &format!("{key}(sharded:{s})"),
                        q,
                        expect,
                        db.distance_first(alg, q),
                    )?;
                }

                // Metamorphic: top-k is an exact prefix of top-(k+1).
                // Canonical total order makes this prefix exact, not
                // merely set-wise.
                let mut q1 = q.clone();
                q1.k = q.k + 1;
                let rk = cold.distance_first(alg, q).map(|r| hits_of(&r.results));
                let rk1 = cold.distance_first(alg, &q1).map(|r| hits_of(&r.results));
                self.checks += 1;
                match (rk, rk1) {
                    (Ok(a), Ok(b)) => {
                        let prefix = &b[..q.k.min(b.len())];
                        if !same_hits(&a, prefix) {
                            return Err(self.diverge(
                                &format!("{key}(cold)"),
                                "k-prefix-of-k-plus-1",
                                fmt_query(q),
                                fmt_hits(prefix),
                                fmt_hits(&a),
                            ));
                        }
                    }
                    (Err(e), _) | (_, Err(e)) => {
                        return Err(self.diverge(
                            &format!("{key}(cold)"),
                            "engine-error",
                            fmt_query(q),
                            "both k and k+1 answered".into(),
                            format!("{e}"),
                        ));
                    }
                }
            }

            // Fault injection: transient faults must be invisible.
            self.check_report(
                "ir2(flaky)",
                q,
                expect,
                flaky.distance_first(Algorithm::Ir2, q),
            )?;

            // Incremental maintenance: the mutated database answers the
            // live set exactly (tree algorithms only; see above).
            for alg in TREE_ALGS {
                self.check_report(
                    &format!("{}(mutated)", alg.key()),
                    q,
                    expect,
                    mutated.distance_first(alg, q),
                )?;
            }

            // Standalone baselines.
            self.exact(
                "grid",
                q,
                expect,
                grid.topk(&store, q).map(|(r, _)| hits_of(&r)),
            )?;
            self.exact(
                "ssf",
                q,
                expect,
                ssf.topk(&store, q).map(|(r, _)| hits_of(&r)),
            )?;

            // Kernel differential: every variant above runs the batched
            // block / zero-copy containment kernels. Re-run a cold tree
            // engine, a warm tree engine, the SSF scan, and the grid with
            // the scalar per-entry path forced — answers must be
            // bit-identical, pinning kernel == scalar across engines.
            {
                let _scalar = ir2tree::sigfile::ScalarKernelGuard::new();
                self.check_report(
                    "ir2(scalar-kernel)",
                    q,
                    expect,
                    cold.distance_first(Algorithm::Ir2, q),
                )?;
                self.check_report(
                    "mir2(scalar-kernel,warm)",
                    q,
                    expect,
                    warm.distance_first(Algorithm::Mir2, q),
                )?;
                self.exact(
                    "ssf(scalar-kernel)",
                    q,
                    expect,
                    ssf.topk(&store, q).map(|(r, _)| hits_of(&r)),
                )?;
                self.exact(
                    "grid(scalar-kernel)",
                    q,
                    expect,
                    grid.topk(&store, q).map(|(r, _)| hits_of(&r)),
                )?;
            }

            // Execution limits: truncated answers are tie-aware prefixes
            // of the full ranking, and conservation holds in every
            // report. Budget 0 trips immediately; 1 and 8 cut mid-way.
            for alg in [Algorithm::RTree, Algorithm::Ir2] {
                for budget in [0u64, 1, 8] {
                    let limits = QueryLimits::none().with_io_budget(budget);
                    match cold.distance_first_limited(alg, q, limits) {
                        Ok(rep) => {
                            self.conservation(&format!("{}(budget:{budget})", alg.key()), q, &rep)?;
                            self.truncated_prefix(
                                &format!("{}(budget:{budget})", alg.key()),
                                q,
                                &full,
                                &rep,
                            )?;
                        }
                        Err(e) => {
                            return Err(self.diverge(
                                &format!("{}(budget:{budget})", alg.key()),
                                "engine-error",
                                fmt_query(q),
                                "a (possibly truncated) report".into(),
                                format!("{e}"),
                            ));
                        }
                    }
                }
            }

            // An already-expired deadline truncates deterministically
            // with no results — except k == 0, which completes trivially
            // before the first cooperative limit check.
            let limits = QueryLimits::none().with_deadline(Duration::ZERO);
            match cold.distance_first_limited(Algorithm::Ir2, q, limits) {
                Ok(rep) => {
                    self.checks += 1;
                    if (rep.outcome.is_none() && q.k > 0) || !rep.results.is_empty() {
                        return Err(self.diverge(
                            "ir2(deadline:0)",
                            "expired-deadline",
                            fmt_query(q),
                            "truncated with no results".into(),
                            format!("outcome={:?} results={}", rep.outcome, rep.results.len()),
                        ));
                    }
                }
                Err(e) => {
                    return Err(self.diverge(
                        "ir2(deadline:0)",
                        "engine-error",
                        fmt_query(q),
                        "a truncated report".into(),
                        format!("{e}"),
                    ));
                }
            }

            // IIO degrades all-or-nothing under limits.
            if !q.keywords.is_empty() {
                self.checks += 1;
                match cold.distance_first_limited(
                    Algorithm::Iio,
                    q,
                    QueryLimits::none().with_io_budget(1),
                ) {
                    Ok(rep) => {
                        let ok = if rep.outcome.is_some() {
                            rep.results.is_empty()
                        } else {
                            same_hits(expect, &hits_of(&rep.results))
                        };
                        if !ok {
                            return Err(self.diverge(
                                "iio(budget:1)",
                                "iio-all-or-nothing",
                                fmt_query(q),
                                "empty results when truncated, exact top-k otherwise".into(),
                                fmt_hits(&hits_of(&rep.results)),
                            ));
                        }
                    }
                    Err(e) => {
                        return Err(self.diverge(
                            "iio(budget:1)",
                            "engine-error",
                            fmt_query(q),
                            "a (possibly truncated) report".into(),
                            format!("{e}"),
                        ));
                    }
                }
            }
        }

        // Delete + reinsert is invisible: answers before and after must
        // be bitwise identical (the reinserted object gets a new record
        // pointer — results must not depend on pointers).
        if let Some(probe) = (0..sc.inserts.len()).find(|i| !sc.delete_idx.contains(i)) {
            let q = DistanceFirstQuery::<2>::new([5.0, 5.0], &[] as &[&str], live.len());
            let r1 = mutated
                .distance_first(Algorithm::Ir2, &q)
                .map_err(|e| self.build_fail("mutated", &e))?;
            let found = mutated
                .delete(ins_ptrs[probe])
                .map_err(|e| self.build_fail("mutated", &e))?;
            if !found {
                return Err(self.diverge(
                    "mutated",
                    "delete-reinsert-idempotence",
                    fmt_query(&q),
                    "delete of a live object returns true".into(),
                    "false".into(),
                ));
            }
            mutated
                .insert(&sc.inserts[probe])
                .map_err(|e| self.build_fail("mutated", &e))?;
            let r2 = mutated
                .distance_first(Algorithm::Ir2, &q)
                .map_err(|e| self.build_fail("mutated", &e))?;
            self.checks += 1;
            let (h1, h2) = (hits_of(&r1.results), hits_of(&r2.results));
            if !same_hits(&h1, &h2) {
                return Err(self.diverge(
                    "ir2(mutated)",
                    "delete-reinsert-idempotence",
                    fmt_query(&q),
                    fmt_hits(&h1),
                    fmt_hits(&h2),
                ));
            }
        }

        Ok(())
    }
}
