//! Deterministic scenario generation.
//!
//! A scenario — the initial dataset, an interleaved insert/delete tail,
//! and a query stream — is a pure function of `(seed, iteration)` plus
//! the size [`Caps`]. Two deliberate choices make divergences likely:
//!
//! - coordinates live on a small integer grid, so exact (bitwise)
//!   distance ties are common and regularly straddle the `k` boundary;
//! - object ids are a shuffled permutation of `1..=n`, so the order
//!   objects are appended to the object file never coincides with id
//!   order — any engine that breaks ties by record pointer instead of
//!   by id is caught immediately.
//!
//! Caps are applied by *truncation after generation*: shrinking a cap
//! yields a strict subset of the same scenario, which is what lets the
//! minimizer walk caps downward while reproducing the same failure.

use ir2tree::model::{DistanceFirstQuery, SpatialObject};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The closed vocabulary queries and documents draw from. Small on
/// purpose: dense keyword overlap exercises the conjunctive matcher far
/// harder than realistic text would.
pub const VOCAB: [&str; 6] = ["cafe", "wifi", "pool", "spa", "sauna", "gym"];

/// Size caps for one fuzz iteration — the two knobs the minimizer
/// shrinks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Caps {
    /// Maximum initial objects (also caps the insert tail).
    pub max_objects: usize,
    /// Maximum queries in the stream.
    pub max_queries: usize,
}

impl Default for Caps {
    fn default() -> Self {
        // Generation tops out well below 64, so the defaults are "uncapped".
        Self {
            max_objects: 64,
            max_queries: 64,
        }
    }
}

/// One generated fuzz case.
pub struct Scenario {
    /// Objects the databases are built from.
    pub initial: Vec<SpatialObject<2>>,
    /// Objects inserted afterwards (in order) on the mutated database.
    pub inserts: Vec<SpatialObject<2>>,
    /// Indices into [`inserts`](Scenario::inserts) deleted again after
    /// insertion. Only inserted objects are deleted, because only
    /// `insert` hands back the [`ObjPtr`](ir2tree::model::ObjPtr) that
    /// `delete` needs.
    pub delete_idx: Vec<usize>,
    /// The query stream every engine answers.
    pub queries: Vec<DistanceFirstQuery<2>>,
}

impl Scenario {
    /// The objects alive after all inserts and deletes — the set the
    /// reference engine (and every rebuilt static engine) works from.
    pub fn live(&self) -> Vec<SpatialObject<2>> {
        let mut live = self.initial.clone();
        live.extend(
            self.inserts
                .iter()
                .enumerate()
                .filter(|(i, _)| !self.delete_idx.contains(i))
                .map(|(_, o)| o.clone()),
        );
        live
    }
}

/// Generates the scenario for one `(seed, iteration)` pair under `caps`.
pub fn generate(seed: u64, iter: u64, caps: &Caps) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed ^ iter.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let n_initial = rng.random_range(4..=20usize);
    let n_inserts = rng.random_range(0..=6usize);
    let total = n_initial + n_inserts;

    // Shuffled id permutation: append order must not equal id order.
    let mut ids: Vec<u64> = (1..=total as u64).collect();
    for i in (1..ids.len()).rev() {
        let j = rng.random_range(0..=i);
        ids.swap(i, j);
    }

    let mut initial: Vec<SpatialObject<2>> = ids[..n_initial]
        .iter()
        .map(|&id| random_object(&mut rng, id))
        .collect();
    let mut inserts: Vec<SpatialObject<2>> = ids[n_initial..]
        .iter()
        .map(|&id| random_object(&mut rng, id))
        .collect();
    // Roughly a quarter of the inserts are deleted again.
    let mut delete_idx: Vec<usize> = (0..n_inserts)
        .filter(|_| rng.random::<bool>() && rng.random::<bool>())
        .collect();
    let n_queries = rng.random_range(5..=10usize);
    let mut queries: Vec<DistanceFirstQuery<2>> = (0..n_queries)
        .map(|_| random_query(&mut rng, total))
        .collect();

    // Monotone truncation (see module docs): shrink, never re-generate.
    initial.truncate(caps.max_objects.max(1));
    inserts.truncate(caps.max_objects);
    delete_idx.retain(|&i| i < inserts.len());
    queries.truncate(caps.max_queries);

    Scenario {
        initial,
        inserts,
        delete_idx,
        queries,
    }
}

fn random_object(rng: &mut StdRng, id: u64) -> SpatialObject<2> {
    let x = rng.random_range(0..=10u32) as f64;
    let y = rng.random_range(0..=10u32) as f64;
    let mut words: Vec<&str> = VOCAB
        .iter()
        .copied()
        .filter(|_| rng.random::<bool>())
        .collect();
    if words.is_empty() {
        words.push(VOCAB[rng.random_range(0..VOCAB.len())]);
    }
    SpatialObject::new(id, [x, y], words.join(" "))
}

fn random_query(rng: &mut StdRng, n_objects: usize) -> DistanceFirstQuery<2> {
    let x = rng.random_range(0..=10u32) as f64;
    let y = rng.random_range(0..=10u32) as f64;
    // Mostly 1-2 keywords; occasionally none (pure NN — and an expected
    // error from IIO, which has no spatial access path).
    let n_kw = match rng.random_range(0..8u32) {
        0 => 0,
        1..=4 => 1,
        _ => 2,
    };
    let mut kws: Vec<&str> = Vec::new();
    while kws.len() < n_kw {
        let w = VOCAB[rng.random_range(0..VOCAB.len())];
        if !kws.contains(&w) {
            kws.push(w);
        }
    }
    let k = rng.random_range(0..=n_objects + 2);
    DistanceFirstQuery::new([x, y], &kws, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_monotone_under_caps() {
        let full = generate(7, 3, &Caps::default());
        let again = generate(7, 3, &Caps::default());
        assert_eq!(again.initial, full.initial);
        assert_eq!(again.queries.len(), full.queries.len());

        let small = generate(
            7,
            3,
            &Caps {
                max_objects: 2,
                max_queries: 1,
            },
        );
        assert_eq!(small.initial, full.initial[..2].to_vec());
        assert!(small.queries.len() <= 1);
        assert!(small.delete_idx.iter().all(|&i| i < small.inserts.len()));
    }

    #[test]
    fn ids_are_a_permutation() {
        let sc = generate(1, 0, &Caps::default());
        let mut ids: Vec<u64> = sc
            .initial
            .iter()
            .chain(sc.inserts.iter())
            .map(|o| o.id)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), sc.initial.len() + sc.inserts.len());
    }
}
