//! The brute-force reference engine.
//!
//! A second, independent implementation of the query semantics: no
//! index, no signatures, no pruning — just a linear scan with its own
//! keyword matcher. Small enough to audit by eye, which is what makes
//! it an oracle.

use std::collections::HashSet;

use ir2tree::model::{DistanceFirstQuery, SpatialObject};
use ir2tree::text::tokenize;

/// The full ranking of every matching object, in the canonical
/// `(distance, id)` order. Distances come from the same
/// [`Point::distance`](ir2tree::geo::Point::distance) every engine uses,
/// so comparisons downstream can demand bitwise equality.
pub fn reference_ranking(
    objects: &[SpatialObject<2>],
    query: &DistanceFirstQuery<2>,
) -> Vec<(u64, f64)> {
    let mut hits: Vec<(u64, f64)> = objects
        .iter()
        .filter(|o| matches(o, &query.keywords))
        .map(|o| (o.id, o.point.distance(&query.point)))
        .collect();
    hits.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    hits
}

/// The exact top-k answer: the first `query.k` entries of the ranking.
pub fn reference_topk(
    objects: &[SpatialObject<2>],
    query: &DistanceFirstQuery<2>,
) -> Vec<(u64, f64)> {
    let mut hits = reference_ranking(objects, query);
    hits.truncate(query.k);
    hits
}

/// Conjunctive keyword containment, re-derived from the raw text rather
/// than from any engine's token structures.
fn matches(o: &SpatialObject<2>, keywords: &[String]) -> bool {
    let terms: HashSet<String> = tokenize(&o.text).collect();
    keywords.iter().all(|w| terms.contains(w))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order_breaks_exact_ties_by_id() {
        // Three objects at the same distance, ids deliberately unsorted
        // relative to declaration order.
        let objs = vec![
            SpatialObject::new(9, [1.0, 0.0], "cafe"),
            SpatialObject::new(2, [0.0, 1.0], "cafe"),
            SpatialObject::new(5, [-1.0, 0.0], "cafe"),
            SpatialObject::new(1, [5.0, 0.0], "cafe"),
        ];
        let q = DistanceFirstQuery::new([0.0, 0.0], &["cafe"], 2);
        let top = reference_topk(&objs, &q);
        assert_eq!(
            top.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
            vec![2, 5]
        );
    }

    #[test]
    fn empty_keywords_match_everything() {
        let objs = vec![
            SpatialObject::new(1, [0.0, 0.0], "cafe"),
            SpatialObject::new(2, [1.0, 0.0], "spa"),
        ];
        let q = DistanceFirstQuery::<2>::new([0.0, 0.0], &[] as &[&str], 5);
        assert_eq!(reference_topk(&objs, &q).len(), 2);
    }
}
