#![warn(missing_docs)]
//! Differential oracle harness for the spatial keyword engines.
//!
//! Every query path in the workspace — the facade's four algorithms over
//! cold, warm (node cache + prefetch), flaky (fault-injected), and
//! incrementally mutated databases, the sharded scatter-gather merge at
//! several shard counts, the uniform grid, and the flat signature file —
//! claims to answer the same distance-first top-k query with the same
//! canonical `(distance, id)`-ordered result list. This crate checks
//! that claim mechanically:
//!
//! - [`reference`] is a brute-force engine: a linear scan with an
//!   independent keyword matcher, sorted by the canonical order. It is
//!   the ground truth every engine is compared against, byte-for-byte
//!   (`f64::to_bits` on distances — every engine derives distances from
//!   the same per-axis accumulation, so bitwise equality is the spec).
//! - [`scenario`] derives a deterministic dataset + query stream
//!   (inserts and deletes interleaved) from a `(seed, iteration)` pair.
//!   Coordinates live on a small integer grid so exact distance ties are
//!   common, and object ids are a shuffled permutation so append order
//!   never coincides with id order — the two ingredients that surface
//!   tie-breaking divergences.
//! - [`run_fuzz`] drives the config-matrix sweep and checks, besides
//!   oracle equality, the metamorphic invariants: top-k is an exact
//!   prefix of top-(k+1); truncated results are a tie-aware prefix of
//!   the full ranking; counter conservation
//!   `nodes_read == cache_hits + cache_misses` on every report; and
//!   delete + reinsert leaves answers unchanged.
//! - A failing case is shrunk by the minimizer to the smallest
//!   reproducing caps and reported as a one-line `ir2 fuzz …` repro
//!   command (see [`Divergence::repro_command`]).

mod harness;
mod minimize;
pub mod reference;
pub mod scenario;

pub use harness::{run_fuzz, Divergence, FuzzOptions, FuzzOutcome};
