//! Bounded fuzz smoke suite: a real (small) sweep on fixed seeds must be
//! divergence-free, the deliberate bug injection must be caught and
//! minimized, and a minimized case must reproduce.

use ir2_oracle::{run_fuzz, FuzzOptions};

fn sweep(seed: u64, iters: u64, inject: bool, minimize: bool) -> ir2_oracle::FuzzOutcome {
    let opts = FuzzOptions {
        seed,
        iters,
        inject_bug: inject,
        minimize,
        ..FuzzOptions::default()
    };
    run_fuzz(&opts, &mut |_, _| {})
}

#[test]
fn bounded_sweep_seed_42_is_divergence_free() {
    let out = sweep(42, 30, false, false);
    assert!(
        out.divergence.is_none(),
        "unexpected divergence:\n{}",
        out.divergence.unwrap()
    );
    assert_eq!(out.iterations, 30);
    assert!(out.checks > 10_000, "sweep ran only {} checks", out.checks);
}

#[test]
fn bounded_sweep_seed_7_is_divergence_free() {
    let out = sweep(7, 20, false, false);
    assert!(
        out.divergence.is_none(),
        "unexpected divergence:\n{}",
        out.divergence.unwrap()
    );
}

/// Regression guard for the `(distance, id)` tie-break sweep: the seed
/// below generates equal-distance clusters straddling the k boundary
/// (integer grid + shuffled ids). Before the canonicalization fixes —
/// pointer-keyed heaps in grid/ssf/IIO, traversal-order emission in the
/// monolithic collectors — this sweep diverged on its first iterations.
#[test]
fn regression_tie_boundary_sweep_stays_canonical() {
    let out = sweep(0xABCD, 25, false, false);
    assert!(
        out.divergence.is_none(),
        "tie-break regression:\n{}",
        out.divergence.unwrap()
    );
}

#[test]
fn injected_bug_is_caught_minimized_and_reproducible() {
    let out = sweep(42, 20, true, true);
    let d = out.divergence.expect("injected bug must surface");
    assert_eq!(d.invariant, "oracle-exact");
    assert_eq!(d.engine, "ir2(cold)");
    assert!(d.inject);

    // The minimizer only ever shrinks.
    let defaults = ir2_oracle::scenario::Caps::default();
    assert!(d.caps.max_objects <= defaults.max_objects);
    assert!(d.caps.max_queries <= defaults.max_queries);

    // The minimized case reproduces as a 1-iteration run — exactly what
    // the printed repro command executes.
    let repro = FuzzOptions {
        seed: d.seed,
        iters: 1,
        start_iter: d.iter,
        caps: d.caps,
        inject_bug: true,
        minimize: false,
    };
    let again = run_fuzz(&repro, &mut |_, _| {});
    let d2 = again.divergence.expect("minimized case must reproduce");
    assert_eq!(d2.engine, d.engine);
    assert_eq!(d2.invariant, d.invariant);
    assert_eq!(d2.query, d.query);
    assert_eq!(d2.got, d.got);
    assert!(d.repro_command().contains("--inject-bug"));
}

#[test]
fn clean_run_reports_no_divergence_even_with_minimizer_armed() {
    let out = sweep(3, 10, false, true);
    assert!(out.divergence.is_none());
}
