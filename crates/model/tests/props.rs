//! Property tests for the object model: TSV round-trips and store/region
//! invariants on arbitrary inputs.

use ir2_geo::{Point, Rect};
use ir2_model::{tsv, ObjectSource, ObjectStore, QueryRegion, SpatialObject};
use ir2_storage::MemDevice;
use proptest::prelude::*;

fn arb_text() -> impl Strategy<Value = String> {
    // Arbitrary printable text without the TSV separators.
    "[a-zA-Z0-9 ,.!?'àé漢字-]{0,60}"
}

fn arb_object() -> impl Strategy<Value = SpatialObject<2>> {
    (
        any::<u64>(),
        prop::array::uniform2(-1e6f64..1e6),
        arb_text(),
    )
        .prop_map(|(id, p, text)| SpatialObject::new(id, p, text))
}

proptest! {
    /// TSV export → import is the identity for separator-free text.
    #[test]
    fn tsv_roundtrip(objs in prop::collection::vec(arb_object(), 0..25)) {
        let mut buf = Vec::new();
        tsv::write_tsv(&mut buf, &objs).unwrap();
        let back: Vec<SpatialObject<2>> =
            tsv::read_tsv(std::io::Cursor::new(buf)).collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(back, objs);
    }

    /// Object store round-trips arbitrary objects and counts loads.
    #[test]
    fn store_roundtrip(objs in prop::collection::vec(arb_object(), 1..20)) {
        let store = ObjectStore::<2, _>::create(MemDevice::new());
        let ptrs: Vec<_> = objs.iter().map(|o| store.append(o).unwrap()).collect();
        for (p, o) in ptrs.iter().zip(&objs) {
            prop_assert_eq!(&store.load(*p).unwrap(), o);
        }
        prop_assert_eq!(store.loads(), objs.len() as u64);
    }

    /// Region distances: the point form of a region agrees with plain
    /// point distance; the area form lower-bounds it for contained areas.
    #[test]
    fn region_distance_laws(p in prop::array::uniform2(-100.0f64..100.0),
                            q in prop::array::uniform2(-100.0f64..100.0),
                            pad in 0.0f64..10.0) {
        let qp = Point::new(q);
        let point_region: QueryRegion<2> = p.into();
        prop_assert!((point_region.distance(&qp) - Point::new(p).distance(&qp)).abs() < 1e-12);

        // An area padded around p is at most as far from q as p itself.
        let area = Rect::from_corners(
            Point::new([p[0] - pad, p[1] - pad]),
            Point::new([p[0] + pad, p[1] + pad]),
        );
        let area_region = QueryRegion::Area(area);
        prop_assert!(area_region.distance(&qp) <= point_region.distance(&qp) + 1e-12);
        // And min_dist to a degenerate MBR at q equals distance to q.
        let mbr = Rect::from_point(qp);
        prop_assert!((area_region.min_dist(&mbr) - area_region.distance(&qp)).abs() < 1e-9);
    }
}
