#![warn(missing_docs)]
//! Object model: the paper's spatial objects and the disk file they live in.
//!
//! Section 2: "a (spatial) object T is defined as a pair (T.p, T.t), where
//! T.p is a location descriptor in the multidimensional space, and T.t is a
//! text document". [`SpatialObject`] is that pair plus an application id.
//!
//! Section 6: "the spatial objects are stored in a plain text file and the
//! leaf nodes of the tree data structures store pointers to the object
//! locations in the file". [`ObjectStore`] is that file — a record file on
//! its own block device — and [`ObjPtr`] the pointer stored in leaf
//! entries. Loading an object costs real (tracked) block accesses, which is
//! how "average # disk blocks per object" (Table 1) and the object-access
//! counts of Figures 11/14 arise.
//!
//! [`ObjectSource`] abstracts "something that can load objects by pointer";
//! the query algorithms and the MIR²-Tree's signature recomputation depend
//! on it rather than on the concrete store, and it additionally counts
//! object loads (the paper's object-access metric).

mod limits;
mod object;
mod query;
mod region;
mod store;
pub mod tsv;

pub use limits::{ExecOutcome, QueryLimits, TruncateReason};
pub use object::SpatialObject;
pub use query::DistanceFirstQuery;
pub use region::QueryRegion;
pub use store::{ObjectSource, ObjectStore};

/// Pointer to an object in the object file — the paper's `ObjPtr`.
pub use ir2_storage::RecordPtr as ObjPtr;
