//! Tab-separated import/export of spatial objects.
//!
//! The paper's datasets "are plain text files (tab delimited) where each
//! spatial object occupies a row". This module reads and writes that
//! format — `id \t coord₀ \t … \t coordₙ₋₁ \t text` — so real datasets can
//! be loaded in place of the synthetic generators.

use std::io::{BufRead, Write};

use ir2_geo::Point;
use ir2_storage::{Result, StorageError};

use crate::SpatialObject;

/// Parses one TSV row.
pub fn parse_row<const N: usize>(line: &str) -> Result<SpatialObject<N>> {
    let corrupt = |msg: String| StorageError::Corrupt(format!("tsv: {msg}"));
    let mut fields = line.splitn(N + 2, '\t');
    let id: u64 = fields
        .next()
        .ok_or_else(|| corrupt("missing id".into()))?
        .trim()
        .parse()
        .map_err(|e| corrupt(format!("bad id: {e}")))?;
    let mut coords = [0.0f64; N];
    for (d, c) in coords.iter_mut().enumerate() {
        *c = fields
            .next()
            .ok_or_else(|| corrupt(format!("missing coordinate {d}")))?
            .trim()
            .parse()
            .map_err(|e| corrupt(format!("bad coordinate {d}: {e}")))?;
        if !c.is_finite() {
            return Err(corrupt(format!("non-finite coordinate {d}")));
        }
    }
    let text = fields.next().unwrap_or("").to_owned();
    Ok(SpatialObject::new(id, Point::new(coords), text))
}

/// Reads objects from TSV, one per line; blank lines and `#` comments are
/// skipped. Each item is `Err` for a malformed row (callers choose whether
/// to skip or abort).
pub fn read_tsv<const N: usize, R: BufRead>(
    reader: R,
) -> impl Iterator<Item = Result<SpatialObject<N>>> {
    reader
        .lines()
        .map(|l| l.map_err(StorageError::from))
        .filter(|l| match l {
            Ok(l) => {
                let t = l.trim();
                !t.is_empty() && !t.starts_with('#')
            }
            Err(_) => true,
        })
        .map(|l| l.and_then(|l| parse_row(&l)))
}

/// Writes objects as TSV rows.
///
/// Tabs and newlines inside the text are replaced by spaces (the format
/// has no escaping, matching the paper's plain files).
pub fn write_tsv<'a, const N: usize, W: Write>(
    mut out: W,
    objects: impl IntoIterator<Item = &'a SpatialObject<N>>,
) -> Result<()> {
    for obj in objects {
        write!(out, "{}", obj.id)?;
        for d in 0..N {
            write!(out, "\t{}", obj.point.coord(d))?;
        }
        let clean: String = obj
            .text
            .chars()
            .map(|c| {
                if c == '\t' || c == '\n' || c == '\r' {
                    ' '
                } else {
                    c
                }
            })
            .collect();
        writeln!(out, "\t{clean}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let objs = vec![
            SpatialObject::<2>::new(1, [25.4, -80.1], "tennis court, gift shop"),
            SpatialObject::<2>::new(2, [47.3, -122.2], "wireless Internet"),
            SpatialObject::<2>::new(3, [0.0, 0.0], ""),
        ];
        let mut buf = Vec::new();
        write_tsv(&mut buf, &objs).unwrap();
        let back: Vec<SpatialObject<2>> = read_tsv(std::io::Cursor::new(buf))
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(back, objs);
    }

    #[test]
    fn text_with_tabs_is_sanitized() {
        let obj = SpatialObject::<2>::new(9, [1.0, 2.0], "has\ttabs\nand newlines");
        let mut buf = Vec::new();
        write_tsv(&mut buf, [&obj]).unwrap();
        let back: Vec<SpatialObject<2>> = read_tsv(std::io::Cursor::new(buf))
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(back[0].text, "has tabs and newlines");
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let input = "# header\n\n1\t2.5\t-3.5\thello world\n";
        let objs: Vec<SpatialObject<2>> = read_tsv(std::io::Cursor::new(input))
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(objs.len(), 1);
        assert_eq!(objs[0].id, 1);
        assert_eq!(objs[0].text, "hello world");
    }

    #[test]
    fn malformed_rows_error() {
        assert!(parse_row::<2>("notanumber\t1\t2\ttext").is_err());
        assert!(parse_row::<2>("1\t2.0").is_err());
        assert!(parse_row::<2>("1\tNaN\t0\tx").is_err());
        // Missing text is allowed (empty document).
        assert!(parse_row::<2>("1\t2.0\t3.0").is_ok());
    }

    #[test]
    fn three_dimensional_rows() {
        let obj = parse_row::<3>("7\t1\t2\t3\tdrone dock").unwrap();
        assert_eq!(obj.point.coords(), &[1.0, 2.0, 3.0]);
        assert_eq!(obj.text, "drone dock");
    }
}
