//! The spatial object: a point plus a text document.

use ir2_geo::Point;
use ir2_storage::{Result, StorageError};
use ir2_text::{TokenCounts, TokenSet};

/// A spatial object `T = (T.p, T.t)` with an application-level id.
///
/// In the paper's running example (Figure 1), `T.p` is the
/// latitude/longitude point and `T.t` "the concatenation of the name and
/// amenities attributes".
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialObject<const N: usize> {
    /// Application identifier (e.g. the row number of Figure 1).
    pub id: u64,
    /// `T.p`: the location descriptor.
    pub point: Point<N>,
    /// `T.t`: the text document.
    pub text: String,
}

impl<const N: usize> SpatialObject<N> {
    /// Creates an object.
    pub fn new(id: u64, point: impl Into<Point<N>>, text: impl Into<String>) -> Self {
        Self {
            id,
            point: point.into(),
            text: text.into(),
        }
    }

    /// The object's distinct-token set (for conjunctive keyword checks).
    pub fn token_set(&self) -> TokenSet {
        TokenSet::from_text(&self.text)
    }

    /// The object's token counts (for IR scoring).
    pub fn token_counts(&self) -> TokenCounts {
        TokenCounts::from_text(&self.text)
    }

    /// Serializes the object for the record file:
    /// `id (8) | point (8N) | text (utf-8, rest of record)`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + Point::<N>::ENCODED_LEN + self.text.len());
        out.extend_from_slice(&self.id.to_le_bytes());
        let mut pbuf = vec![0u8; Point::<N>::ENCODED_LEN];
        self.point.encode(&mut pbuf);
        out.extend_from_slice(&pbuf);
        out.extend_from_slice(self.text.as_bytes());
        out
    }

    /// Deserializes an object written by [`SpatialObject::encode`].
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let point_len = Point::<N>::ENCODED_LEN;
        if buf.len() < 8 + point_len {
            return Err(StorageError::Corrupt(format!(
                "object record too short: {} bytes",
                buf.len()
            )));
        }
        let id = u64::from_le_bytes(buf[..8].try_into().expect("8 bytes"));
        let point = Point::decode(&buf[8..8 + point_len]);
        let text = std::str::from_utf8(&buf[8 + point_len..])
            .map_err(|e| StorageError::Corrupt(format!("object text not utf-8: {e}")))?
            .to_owned();
        Ok(Self { id, point, text })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let obj = SpatialObject::<2>::new(7, [30.5, -100.25], "Internet, pool, spa");
        let bytes = obj.encode();
        assert_eq!(SpatialObject::<2>::decode(&bytes).unwrap(), obj);
    }

    #[test]
    fn roundtrip_with_empty_text_and_unicode() {
        let empty = SpatialObject::<2>::new(1, [0.0, 0.0], "");
        assert_eq!(SpatialObject::<2>::decode(&empty.encode()).unwrap(), empty);
        let uni = SpatialObject::<2>::new(2, [1.0, 2.0], "café – 24h ✓");
        assert_eq!(SpatialObject::<2>::decode(&uni.encode()).unwrap(), uni);
    }

    #[test]
    fn decode_rejects_short_and_invalid() {
        assert!(SpatialObject::<2>::decode(&[0u8; 5]).is_err());
        let mut bytes = SpatialObject::<2>::new(1, [0.0, 0.0], "ok").encode();
        bytes.push(0xFF); // invalid utf-8 continuation
        assert!(SpatialObject::<2>::decode(&bytes).is_err());
    }

    #[test]
    fn three_dimensional_objects_roundtrip() {
        let obj = SpatialObject::<3>::new(9, [1.0, 2.0, 3.0], "warehouse drone dock");
        assert_eq!(SpatialObject::<3>::decode(&obj.encode()).unwrap(), obj);
    }

    #[test]
    fn token_helpers_agree_with_text() {
        let obj = SpatialObject::<2>::new(1, [0.0, 0.0], "Pool pool SPA");
        assert!(obj.token_set().contains_all(&["pool", "spa"]));
        assert_eq!(obj.token_counts().tf("pool"), 2);
    }
}
