//! Query regions: a point or an area.
//!
//! Section 2 defines the query location as a point, but Section 3 notes
//! the incremental NN algorithm's input is "a point p, which is the query
//! point (an area could be used instead)". `QueryRegion` captures both: all
//! traversal code measures distance from the region, which for a point is
//! MINDIST and for an area the rectangle-to-rectangle gap.

use ir2_geo::{Point, Rect};

/// The spatial anchor of a query: a point or an axis-aligned area.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryRegion<const N: usize> {
    /// Distances measured from a point (the common case).
    Point(Point<N>),
    /// Distances measured from an area: zero for objects inside it.
    Area(Rect<N>),
}

impl<const N: usize> QueryRegion<N> {
    /// Lower bound on the distance from this region to anything inside
    /// `mbr` (drives best-first traversal).
    pub fn min_dist(&self, mbr: &Rect<N>) -> f64 {
        match self {
            Self::Point(p) => mbr.min_dist(p),
            Self::Area(a) => a.min_dist_rect(mbr),
        }
    }

    /// Distance from this region to a point (the reported result
    /// distance).
    pub fn distance(&self, p: &Point<N>) -> f64 {
        match self {
            Self::Point(q) => q.distance(p),
            Self::Area(a) => a.min_dist(p),
        }
    }
}

impl<const N: usize> From<Point<N>> for QueryRegion<N> {
    fn from(p: Point<N>) -> Self {
        Self::Point(p)
    }
}

impl<const N: usize> From<[f64; N]> for QueryRegion<N> {
    fn from(p: [f64; N]) -> Self {
        Self::Point(Point::new(p))
    }
}

impl<const N: usize> From<Rect<N>> for QueryRegion<N> {
    fn from(r: Rect<N>) -> Self {
        Self::Area(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_region_matches_plain_distances() {
        let r: QueryRegion<2> = [3.0, 4.0].into();
        assert_eq!(r.distance(&Point::new([0.0, 0.0])), 5.0);
        let mbr = Rect::from_corners(Point::new([0.0, 0.0]), Point::new([1.0, 1.0]));
        assert!(r.min_dist(&mbr) > 0.0);
    }

    #[test]
    fn area_region_is_zero_inside() {
        let area = Rect::from_corners(Point::new([0.0, 0.0]), Point::new([10.0, 10.0]));
        let r = QueryRegion::Area(area);
        assert_eq!(r.distance(&Point::new([5.0, 5.0])), 0.0);
        assert_eq!(r.distance(&Point::new([13.0, 4.0])), 3.0);
        let inside = Rect::from_corners(Point::new([2.0, 2.0]), Point::new([3.0, 3.0]));
        assert_eq!(r.min_dist(&inside), 0.0);
        let outside = Rect::from_corners(Point::new([13.0, 14.0]), Point::new([15.0, 16.0]));
        assert_eq!(r.min_dist(&outside), 5.0); // 3-4-5 gap
    }

    #[test]
    fn min_dist_lower_bounds_contained_points() {
        let r = QueryRegion::Area(Rect::from_corners(
            Point::new([0.0, 0.0]),
            Point::new([2.0, 2.0]),
        ));
        let mbr = Rect::from_corners(Point::new([5.0, 0.0]), Point::new([7.0, 2.0]));
        let d = r.min_dist(&mbr);
        for p in [[5.0, 0.0], [6.0, 1.0], [7.0, 2.0]] {
            assert!(d <= r.distance(&Point::new(p)) + 1e-12);
        }
    }
}
