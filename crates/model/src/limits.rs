//! Query execution limits and the complete/truncated outcome type.
//!
//! Production serving cannot let one query with a pathological signature
//! false-positive rate scan a whole tree: every query runs under a
//! [`QueryLimits`] — a wall-clock deadline, an I/O budget, and a frontier
//! (heap) size cap — checked cooperatively at each step of the search
//! loop. Exhausting a limit is *not* an error: the incremental best-first
//! traversal (Hjaltason–Samet) emits results in final rank order, so the
//! results produced before the cut are exactly the true top-m prefix of
//! the full answer. [`ExecOutcome::Truncated`] carries them together with
//! the [`TruncateReason`].

use std::time::{Duration, Instant};

/// Cooperative execution limits for one query. The default is unlimited.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryLimits {
    /// Wall-clock instant after which the query stops.
    pub deadline: Option<Instant>,
    /// Maximum charged I/O units (tree nodes read + objects loaded).
    pub io_budget: Option<u64>,
    /// Maximum search-frontier (priority queue) size.
    pub max_heap_size: Option<usize>,
}

impl QueryLimits {
    /// No limits: the query runs to completion.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether no limit is set at all (the fast path can skip checks).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.io_budget.is_none() && self.max_heap_size.is_none()
    }

    /// Sets a deadline `budget` from now.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(Instant::now() + budget);
        self
    }

    /// Sets a deadline at an absolute instant (e.g. a batch-wide deadline
    /// shared by many queries).
    pub fn with_deadline_at(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the I/O budget in charged units (nodes read + objects loaded).
    pub fn with_io_budget(mut self, budget: u64) -> Self {
        self.io_budget = Some(budget);
        self
    }

    /// Sets the frontier size cap.
    pub fn with_max_heap_size(mut self, cap: usize) -> Self {
        self.max_heap_size = Some(cap);
        self
    }

    /// Tightens `self` by another set of limits: the earlier deadline, the
    /// smaller budget, the smaller cap.
    pub fn tightened_by(self, other: &QueryLimits) -> Self {
        fn min_opt<T: Ord>(a: Option<T>, b: Option<T>) -> Option<T> {
            match (a, b) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, None) => a,
                (None, b) => b,
            }
        }
        Self {
            deadline: min_opt(self.deadline, other.deadline),
            io_budget: min_opt(self.io_budget, other.io_budget),
            max_heap_size: min_opt(self.max_heap_size, other.max_heap_size),
        }
    }

    /// The cooperative check run at the top of each search step: given the
    /// I/O charged and the frontier size so far, decides whether the query
    /// must stop now. Limit priority when several trip at once: budget,
    /// then heap, then deadline (the deterministic ones first, so tests
    /// and replays agree).
    pub fn check(&self, io_used: u64, heap_len: usize) -> Option<TruncateReason> {
        if let Some(budget) = self.io_budget {
            if io_used >= budget {
                return Some(TruncateReason::IoBudget);
            }
        }
        if let Some(cap) = self.max_heap_size {
            if heap_len > cap {
                return Some(TruncateReason::HeapLimit);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(TruncateReason::Deadline);
            }
        }
        None
    }
}

/// Which limit stopped a truncated query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TruncateReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The I/O budget was spent.
    IoBudget,
    /// The search frontier outgrew its cap.
    HeapLimit,
}

impl TruncateReason {
    /// Stable lower-case key, used as a metrics label and in CLI output.
    pub fn key(&self) -> &'static str {
        match self {
            Self::Deadline => "deadline",
            Self::IoBudget => "io_budget",
            Self::HeapLimit => "heap_limit",
        }
    }
}

impl std::fmt::Display for TruncateReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

/// The outcome of a limit-aware query execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome<T> {
    /// The query ran to completion; the results are the full answer.
    Complete(T),
    /// A limit stopped the query early. For incremental algorithms
    /// `results_so_far` is the exact top-m prefix of the full answer; the
    /// all-or-nothing IIO baseline reports an empty prefix.
    Truncated {
        /// Which limit tripped.
        reason: TruncateReason,
        /// Results emitted before the cut.
        results_so_far: T,
    },
}

impl<T> ExecOutcome<T> {
    /// The results, complete or partial.
    pub fn results(&self) -> &T {
        match self {
            Self::Complete(r) => r,
            Self::Truncated { results_so_far, .. } => results_so_far,
        }
    }

    /// Consumes the outcome, returning the results.
    pub fn into_results(self) -> T {
        match self {
            Self::Complete(r) => r,
            Self::Truncated { results_so_far, .. } => results_so_far,
        }
    }

    /// The truncation reason, if the query was cut short.
    pub fn truncation(&self) -> Option<TruncateReason> {
        match self {
            Self::Complete(_) => None,
            Self::Truncated { reason, .. } => Some(*reason),
        }
    }

    /// Whether the query was cut short.
    pub fn is_truncated(&self) -> bool {
        self.truncation().is_some()
    }

    /// Maps the result payload, preserving the outcome.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> ExecOutcome<U> {
        match self {
            Self::Complete(r) => ExecOutcome::Complete(f(r)),
            Self::Truncated {
                reason,
                results_so_far,
            } => ExecOutcome::Truncated {
                reason,
                results_so_far: f(results_so_far),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let l = QueryLimits::none();
        assert!(l.is_unlimited());
        assert_eq!(l.check(u64::MAX, usize::MAX), None);
    }

    #[test]
    fn io_budget_trips_at_the_boundary() {
        let l = QueryLimits::none().with_io_budget(5);
        assert_eq!(l.check(4, 0), None);
        assert_eq!(l.check(5, 0), Some(TruncateReason::IoBudget));
        // A zero budget stops before the first I/O.
        let z = QueryLimits::none().with_io_budget(0);
        assert_eq!(z.check(0, 0), Some(TruncateReason::IoBudget));
    }

    #[test]
    fn heap_cap_trips_only_above_the_cap() {
        let l = QueryLimits::none().with_max_heap_size(3);
        assert_eq!(l.check(0, 3), None);
        assert_eq!(l.check(0, 4), Some(TruncateReason::HeapLimit));
    }

    #[test]
    fn past_deadline_trips() {
        let l = QueryLimits::none().with_deadline_at(Instant::now() - Duration::from_millis(1));
        assert_eq!(l.check(0, 0), Some(TruncateReason::Deadline));
        let far = QueryLimits::none().with_deadline(Duration::from_secs(3600));
        assert_eq!(far.check(0, 0), None);
    }

    #[test]
    fn tightening_takes_the_stricter_side() {
        let a = QueryLimits::none().with_io_budget(10);
        let b = QueryLimits::none()
            .with_io_budget(3)
            .with_max_heap_size(100);
        let t = a.tightened_by(&b);
        assert_eq!(t.io_budget, Some(3));
        assert_eq!(t.max_heap_size, Some(100));
        assert!(t.deadline.is_none());
    }

    #[test]
    fn outcome_accessors() {
        let c: ExecOutcome<Vec<u32>> = ExecOutcome::Complete(vec![1, 2]);
        assert!(!c.is_truncated());
        assert_eq!(c.results(), &vec![1, 2]);
        let t = ExecOutcome::Truncated {
            reason: TruncateReason::IoBudget,
            results_so_far: vec![1],
        };
        assert_eq!(t.truncation(), Some(TruncateReason::IoBudget));
        assert_eq!(t.map(|v| v.len()).into_results(), 1);
        assert_eq!(TruncateReason::Deadline.to_string(), "deadline");
    }
}
