//! The disk-resident object file.

use std::sync::atomic::{AtomicU64, Ordering};

use ir2_storage::{BlockDevice, RecordFile, Result, StorageError};

use crate::{ObjPtr, SpatialObject};

/// Annotates a decode failure with the record pointer it happened at —
/// `SpatialObject::decode` sees only bytes, so without this a corrupt
/// record reports *what* is wrong but not *where* (the same pattern the
/// R-Tree uses to prefix node errors with the node id).
fn at_ptr<const N: usize>(
    ptr: ObjPtr,
    decoded: Result<SpatialObject<N>>,
) -> Result<SpatialObject<N>> {
    decoded.map_err(|e| match e {
        StorageError::Corrupt(msg) => {
            StorageError::Corrupt(format!("object at offset {}: {msg}", ptr.0))
        }
        other => other,
    })
}

/// Anything that can load a [`SpatialObject`] by pointer.
///
/// The query algorithms (`LoadObject(ObjPtr)` in the paper's pseudo-code)
/// and the MIR²-Tree's signature recomputation depend on this trait rather
/// than the concrete store. Implementations count loads so experiments can
/// report the paper's *object accesses* metric.
pub trait ObjectSource<const N: usize>: Send + Sync {
    /// Loads the object at `ptr` (the paper's `LoadObject`).
    fn load(&self, ptr: ObjPtr) -> Result<SpatialObject<N>>;

    /// Number of loads performed so far.
    fn loads(&self) -> u64;
}

/// The object file: spatial objects serialized into a [`RecordFile`] on
/// their own block device.
///
/// Leaf entries of every index store [`ObjPtr`]s into this file; an index
/// never duplicates object data (the R-Tree baseline's whole disadvantage
/// is having to come here for every candidate).
pub struct ObjectStore<const N: usize, D> {
    file: RecordFile<D>,
    loads: AtomicU64,
}

impl<const N: usize, D: BlockDevice> ObjectStore<N, D> {
    /// Creates an empty store on `dev`.
    pub fn create(dev: D) -> Self {
        Self {
            file: RecordFile::create(dev),
            loads: AtomicU64::new(0),
        }
    }

    /// Reopens a store persisted earlier; `len`/`records` come from
    /// [`state`](ObjectStore::state) via the caller's superblock.
    pub fn open(dev: D, len: u64, records: u64) -> Result<Self> {
        Ok(Self {
            file: RecordFile::open(dev, len, records)?,
            loads: AtomicU64::new(0),
        })
    }

    /// `(logical_len_bytes, record_count)` for the caller's superblock.
    pub fn state(&self) -> (u64, u64) {
        self.file.state()
    }

    /// Appends an object, returning its pointer.
    pub fn append(&self, obj: &SpatialObject<N>) -> Result<ObjPtr> {
        self.file.append(&obj.encode())
    }

    /// Flushes buffered appends to the device.
    pub fn flush(&self) -> Result<()> {
        self.file.flush()
    }

    /// Number of stored objects.
    pub fn len(&self) -> u64 {
        self.file.num_records()
    }

    /// True if no objects are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total file size in bytes (Table 1's dataset size).
    pub fn size_bytes(&self) -> u64 {
        self.file.len_bytes()
    }

    /// The underlying device (for I/O statistics and sizing).
    pub fn device(&self) -> &D {
        self.file.device()
    }

    /// Sequentially scans all objects in file order — used to build every
    /// index structure.
    pub fn scan(&self, mut f: impl FnMut(ObjPtr, SpatialObject<N>) -> Result<()>) -> Result<()> {
        self.file
            .scan(|ptr, bytes| f(ptr, at_ptr(ptr, SpatialObject::decode(bytes))?))
    }

    /// Resets the load counter (between experiment runs).
    pub fn reset_loads(&self) {
        self.loads.store(0, Ordering::Relaxed);
    }
}

impl<const N: usize, D: BlockDevice> ObjectSource<N> for ObjectStore<N, D> {
    fn load(&self, ptr: ObjPtr) -> Result<SpatialObject<N>> {
        self.loads.fetch_add(1, Ordering::Relaxed);
        at_ptr(ptr, SpatialObject::decode(&self.file.get(ptr)?))
    }

    fn loads(&self) -> u64 {
        self.loads.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir2_storage::{IoSnapshot, MemDevice, TrackedDevice};

    fn sample(i: u64) -> SpatialObject<2> {
        SpatialObject::new(
            i,
            [i as f64, -(i as f64)],
            format!("object number {i} pool"),
        )
    }

    #[test]
    fn append_load_roundtrip() {
        let store = ObjectStore::<2, _>::create(MemDevice::new());
        let ptrs: Vec<ObjPtr> = (0..10).map(|i| store.append(&sample(i)).unwrap()).collect();
        for (i, &p) in ptrs.iter().enumerate() {
            assert_eq!(store.load(p).unwrap(), sample(i as u64));
        }
        assert_eq!(store.len(), 10);
        assert_eq!(store.loads(), 10);
    }

    #[test]
    fn scan_preserves_insertion_order() {
        let store = ObjectStore::<2, _>::create(MemDevice::new());
        for i in 0..25 {
            store.append(&sample(i)).unwrap();
        }
        let mut ids = Vec::new();
        store
            .scan(|_, obj| {
                ids.push(obj.id);
                Ok(())
            })
            .unwrap();
        assert_eq!(ids, (0..25).collect::<Vec<_>>());
    }

    #[test]
    fn loads_cost_tracked_block_accesses() {
        let tracked = TrackedDevice::new(MemDevice::new());
        let stats = tracked.stats();
        let store = ObjectStore::<2, _>::create(tracked);
        // A large object spanning several blocks.
        let big = SpatialObject::<2>::new(1, [0.0, 0.0], "x".repeat(10_000));
        let p = store.append(&big).unwrap();
        store.flush().unwrap();
        stats.reset();

        store.load(p).unwrap();
        let s: IoSnapshot = stats.snapshot();
        assert_eq!(s.random_reads, 1);
        assert!(s.seq_reads >= 2, "10 KB object spans ≥3 blocks");
    }

    #[test]
    fn decode_errors_name_the_record_offset() {
        let dev = std::sync::Arc::new(MemDevice::new());
        // Write a record too short to be an object through the raw record
        // file, then read it back as an object.
        let file = RecordFile::create(std::sync::Arc::clone(&dev));
        let ptr = file.append(&[1, 2, 3]).unwrap();
        file.flush().unwrap();
        let (len, records) = file.state();
        let store = ObjectStore::<2, _>::open(dev, len, records).unwrap();
        let msg = store.load(ptr).unwrap_err().to_string();
        assert!(msg.contains(&format!("offset {}", ptr.0)), "{msg}");
        assert!(msg.contains("too short"), "{msg}");
    }

    #[test]
    fn reopen_preserves_objects() {
        let dev = std::sync::Arc::new(MemDevice::new());
        let (p, state) = {
            let store = ObjectStore::<2, _>::create(std::sync::Arc::clone(&dev));
            let p = store.append(&sample(3)).unwrap();
            store.flush().unwrap();
            (p, store.state())
        };
        let store = ObjectStore::<2, _>::open(dev, state.0, state.1).unwrap();
        assert_eq!(store.load(p).unwrap(), sample(3));
        assert_eq!(store.len(), 1);
    }
}
