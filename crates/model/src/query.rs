//! Query types shared by every algorithm.

use ir2_geo::Point;
use ir2_text::tokenize;

/// A distance-first top-k spatial keyword query (Section 2):
/// "the `k` objects that contain all of `w₁, …, wₘ` and are closest to
/// `Q.p`" — a top-k spatial query combined with a conjunctive Boolean
/// keyword filter.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceFirstQuery<const N: usize> {
    /// `Q.p`: the query point.
    pub point: Point<N>,
    /// `Q.t`: the query keywords, normalized to lower-cased tokens.
    pub keywords: Vec<String>,
    /// `Q.k`: number of requested results.
    pub k: usize,
}

impl<const N: usize> DistanceFirstQuery<N> {
    /// Builds a query, normalizing each keyword through the same tokenizer
    /// applied to documents (so "Internet" matches "internet"). A keyword
    /// that tokenizes to several tokens contributes each of them; duplicate
    /// keywords are collapsed.
    pub fn new<S: AsRef<str>>(point: impl Into<Point<N>>, keywords: &[S], k: usize) -> Self {
        let mut kws: Vec<String> = keywords
            .iter()
            .flat_map(|w| tokenize(w.as_ref()).collect::<Vec<_>>())
            .collect();
        kws.sort_unstable();
        kws.dedup();
        Self {
            point: point.into(),
            keywords: kws,
            k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_are_normalized_and_deduped() {
        let q = DistanceFirstQuery::<2>::new([0.0, 0.0], &["Internet", "POOL", "pool"], 5);
        assert_eq!(q.keywords, ["internet", "pool"]);
        assert_eq!(q.k, 5);
    }

    #[test]
    fn multi_token_keyword_expands() {
        let q = DistanceFirstQuery::<2>::new([0.0, 0.0], &["golf course"], 1);
        assert_eq!(q.keywords, ["course", "golf"]);
    }

    #[test]
    fn empty_keywords_allowed() {
        let q = DistanceFirstQuery::<2>::new([1.0, 2.0], &[] as &[&str], 3);
        assert!(q.keywords.is_empty());
    }
}
