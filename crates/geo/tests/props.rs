//! Property-based tests for the geometric invariants every spatial index
//! in the workspace depends on.

use ir2_geo::{Point, Rect};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point<2>> {
    prop::array::uniform2(-1000.0f64..1000.0).prop_map(Point::new)
}

fn arb_rect() -> impl Strategy<Value = Rect<2>> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Rect::from_corners(a, b))
}

proptest! {
    /// Triangle inequality: the backbone of any metric-space pruning.
    #[test]
    fn triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
    }

    /// MINDIST is a lower bound on the distance to every contained point —
    /// the invariant that makes incremental NN emit objects in order.
    #[test]
    fn min_dist_lower_bounds_contained_points(r in arb_rect(), q in arb_point(), t in prop::array::uniform2(0.0f64..=1.0)) {
        // A point interpolated inside the rectangle.
        let inside = Point::new([
            r.lo().coord(0) + t[0] * (r.hi().coord(0) - r.lo().coord(0)),
            r.lo().coord(1) + t[1] * (r.hi().coord(1) - r.lo().coord(1)),
        ]);
        prop_assert!(r.contains_point(&inside));
        prop_assert!(r.min_dist(&q) <= q.distance(&inside) + 1e-9);
        prop_assert!(r.max_dist(&q) >= q.distance(&inside) - 1e-9);
    }

    /// Union is the *minimum* bounding rectangle of its arguments:
    /// it contains both and no smaller area is reported than either part.
    #[test]
    fn union_is_bounding(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains(&a));
        prop_assert!(u.contains(&b));
        prop_assert!(u.area() + 1e-9 >= a.area().max(b.area()));
        // Union with self is identity.
        prop_assert_eq!(a.union(&a), a);
    }

    /// Enlargement is non-negative and zero iff already contained.
    #[test]
    fn enlargement_nonnegative(a in arb_rect(), b in arb_rect()) {
        let e = a.enlargement(&b);
        prop_assert!(e >= -1e-9);
        if a.contains(&b) {
            prop_assert!(e.abs() < 1e-9);
        }
    }

    /// Containment implies intersection; intersection is symmetric.
    #[test]
    fn containment_implies_intersection(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
        if a.contains(&b) {
            prop_assert!(a.intersects(&b));
        }
    }

    /// MINDIST to a rectangle that contains the query point is zero.
    #[test]
    fn min_dist_zero_inside(r in arb_rect(), q in arb_point()) {
        if r.contains_point(&q) {
            prop_assert_eq!(r.min_dist(&q), 0.0);
        } else {
            prop_assert!(r.min_dist(&q) > 0.0);
        }
    }

    /// Point and rect serialization round-trips exactly (bit-for-bit).
    #[test]
    fn encode_roundtrip(r in arb_rect(), p in arb_point()) {
        let mut rb = [0u8; Rect::<2>::ENCODED_LEN];
        r.encode(&mut rb);
        prop_assert_eq!(Rect::<2>::decode(&rb), r);
        let mut pb = [0u8; Point::<2>::ENCODED_LEN];
        p.encode(&mut pb);
        prop_assert_eq!(Point::<2>::decode(&pb), p);
    }
}
