#![warn(missing_docs)]
//! Spatial primitives for the IR²-Tree reproduction.
//!
//! This crate provides the geometric vocabulary shared by every spatial
//! index in the workspace: [`Point`]s in `N`-dimensional Euclidean space,
//! axis-aligned [`Rect`]s (minimum bounding rectangles, MBRs), and the
//! distance measures the query algorithms rely on:
//!
//! * [`Point::distance`] — the Euclidean distance used to rank result
//!   objects (the paper's `distance(T.p, Q.p)`);
//! * [`Rect::min_dist`] — the classical MINDIST lower bound between a query
//!   point and an MBR, which makes the Hjaltason–Samet incremental
//!   nearest-neighbor traversal correct: no object inside an MBR can be
//!   closer to the query point than the MBR's MINDIST.
//!
//! Everything is generic over the compile-time dimensionality `N`. The
//! paper's running examples are two-dimensional (latitude/longitude treated
//! as plain Euclidean coordinates — its Example 2/3 distances, e.g.
//! `dist(H7, [30.5, 100.0]) = 181.9`, are Euclidean on raw degrees), but the
//! method "can be applied to arbitrarily-shaped and multi-dimensional
//! objects", and so can this implementation.
//!
//! # Total ordering of distances
//!
//! Distances are `f64`. Priority queues need a total order, so the crate
//! also exports [`OrderedF64`], a thin wrapper implementing `Ord` via IEEE
//! `total_cmp`. Query code never produces NaN distances (inputs are finite),
//! but the wrapper keeps the heap invariants sound even if it did.

mod ordered;
mod point;
mod rect;

pub use ordered::OrderedF64;
pub use point::Point;
pub use rect::Rect;

/// Convenient alias for the two-dimensional points used in the paper's
/// running examples and experiments.
pub type Point2 = Point<2>;

/// Convenient alias for two-dimensional rectangles (MBRs).
pub type Rect2 = Rect<2>;
