//! Totally ordered `f64` wrapper for priority queues.

use std::cmp::Ordering;

/// An `f64` with a total order (`IEEE 754 totalOrder`), so distances and
/// scores can key a `BinaryHeap`.
///
/// All query-time distances are finite, but `total_cmp` keeps the heap sound
/// regardless (NaN sorts above +inf).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OrderedF64(pub f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for OrderedF64 {
    fn from(v: f64) -> Self {
        Self(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn orders_like_f64_on_finite_values() {
        assert!(OrderedF64(1.0) < OrderedF64(2.0));
        assert!(OrderedF64(-1.0) < OrderedF64(0.0));
        assert_eq!(OrderedF64(3.5), OrderedF64(3.5));
    }

    #[test]
    fn min_heap_via_reverse_yields_ascending() {
        use std::cmp::Reverse;
        let mut h = BinaryHeap::new();
        for v in [3.0, 1.0, 2.0] {
            h.push(Reverse(OrderedF64(v)));
        }
        let drained: Vec<f64> = std::iter::from_fn(|| h.pop())
            .map(|Reverse(o)| o.0)
            .collect();
        assert_eq!(drained, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn nan_has_a_stable_position() {
        // total_cmp: NaN (positive) sorts greater than +infinity.
        assert!(OrderedF64(f64::NAN) > OrderedF64(f64::INFINITY));
    }
}
