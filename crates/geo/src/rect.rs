//! Axis-aligned rectangles (minimum bounding rectangles).

use std::fmt;

use crate::Point;

/// An axis-aligned hyper-rectangle in `N` dimensions, i.e. a minimum
/// bounding rectangle (MBR) as stored in every R-Tree / IR²-Tree entry.
///
/// Following the paper ("an MBR is represented by its southwest and its
/// northeast points"), a rectangle is stored as its component-wise minimum
/// corner `lo` and maximum corner `hi`, with `lo[d] <= hi[d]` for every
/// dimension `d`. Degenerate rectangles (`lo == hi`) represent points.
#[derive(Clone, Copy, PartialEq)]
pub struct Rect<const N: usize> {
    lo: Point<N>,
    hi: Point<N>,
}

impl<const N: usize> Rect<N> {
    /// Number of bytes a rectangle occupies in the on-disk node layout.
    pub const ENCODED_LEN: usize = 2 * Point::<N>::ENCODED_LEN;

    /// Creates a rectangle from its min and max corners.
    ///
    /// # Panics
    /// Panics if `lo[d] > hi[d]` for some dimension (in debug builds).
    pub fn new(lo: Point<N>, hi: Point<N>) -> Self {
        debug_assert!(
            (0..N).all(|d| lo.coord(d) <= hi.coord(d)),
            "invalid MBR: lo {lo:?} exceeds hi {hi:?}"
        );
        Self { lo, hi }
    }

    /// Creates the rectangle spanning exactly two (unordered) corner points.
    pub fn from_corners(a: Point<N>, b: Point<N>) -> Self {
        let mut lo = [0.0; N];
        let mut hi = [0.0; N];
        for d in 0..N {
            lo[d] = a.coord(d).min(b.coord(d));
            hi[d] = a.coord(d).max(b.coord(d));
        }
        Self::new(Point::new(lo), Point::new(hi))
    }

    /// The degenerate rectangle containing exactly `p`.
    pub fn from_point(p: Point<N>) -> Self {
        Self { lo: p, hi: p }
    }

    /// Minimum corner.
    #[inline]
    pub fn lo(&self) -> &Point<N> {
        &self.lo
    }

    /// Maximum corner.
    #[inline]
    pub fn hi(&self) -> &Point<N> {
        &self.hi
    }

    /// Center point of the rectangle.
    pub fn center(&self) -> Point<N> {
        let mut c = [0.0; N];
        for (d, slot) in c.iter_mut().enumerate() {
            *slot = 0.5 * (self.lo.coord(d) + self.hi.coord(d));
        }
        Point::new(c)
    }

    /// Hyper-volume (area in 2-D). Zero for degenerate rectangles.
    pub fn area(&self) -> f64 {
        let mut a = 1.0;
        for d in 0..N {
            a *= self.hi.coord(d) - self.lo.coord(d);
        }
        a
    }

    /// Sum of edge lengths ("margin"); used as a split tie-breaker.
    pub fn margin(&self) -> f64 {
        (0..N).map(|d| self.hi.coord(d) - self.lo.coord(d)).sum()
    }

    /// The smallest rectangle containing both `self` and `other`.
    pub fn union(&self, other: &Self) -> Self {
        let mut lo = [0.0; N];
        let mut hi = [0.0; N];
        for d in 0..N {
            lo[d] = self.lo.coord(d).min(other.lo.coord(d));
            hi[d] = self.hi.coord(d).max(other.hi.coord(d));
        }
        Self::new(Point::new(lo), Point::new(hi))
    }

    /// Grows `self` in place to contain `other`.
    pub fn union_in_place(&mut self, other: &Self) {
        *self = self.union(other);
    }

    /// Area increase required for `self` to contain `other` — Guttman's
    /// ChooseLeaf criterion ("least enlargement").
    pub fn enlargement(&self, other: &Self) -> f64 {
        self.union(other).area() - self.area()
    }

    /// True if the rectangles share at least one point (closed intervals).
    pub fn intersects(&self, other: &Self) -> bool {
        (0..N)
            .all(|d| self.lo.coord(d) <= other.hi.coord(d) && other.lo.coord(d) <= self.hi.coord(d))
    }

    /// True if `other` lies entirely inside `self` (closed intervals).
    pub fn contains(&self, other: &Self) -> bool {
        (0..N)
            .all(|d| self.lo.coord(d) <= other.lo.coord(d) && other.hi.coord(d) <= self.hi.coord(d))
    }

    /// True if the point lies inside `self` (closed intervals).
    pub fn contains_point(&self, p: &Point<N>) -> bool {
        (0..N).all(|d| self.lo.coord(d) <= p.coord(d) && p.coord(d) <= self.hi.coord(d))
    }

    /// Squared MINDIST between a point and this rectangle.
    #[inline]
    pub fn min_dist_sq(&self, p: &Point<N>) -> f64 {
        let mut acc = 0.0;
        for d in 0..N {
            let c = p.coord(d);
            let lo = self.lo.coord(d);
            let hi = self.hi.coord(d);
            let diff = if c < lo {
                lo - c
            } else if c > hi {
                c - hi
            } else {
                0.0
            };
            acc += diff * diff;
        }
        acc
    }

    /// MINDIST: the minimum Euclidean distance from `p` to any point of the
    /// rectangle (zero when `p` is inside). This is the `Dist(p, MBR)` of
    /// the paper's Figure 3 and the lower bound that makes best-first
    /// traversal produce neighbors in true distance order.
    #[inline]
    pub fn min_dist(&self, p: &Point<N>) -> f64 {
        self.min_dist_sq(p).sqrt()
    }

    /// Minimum Euclidean distance between this rectangle and `other`
    /// (zero when they intersect) — the `Dist` of an *area* query, which
    /// the paper permits in place of the query point.
    pub fn min_dist_rect(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for d in 0..N {
            let gap = (self.lo.coord(d) - other.hi.coord(d))
                .max(other.lo.coord(d) - self.hi.coord(d))
                .max(0.0);
            acc += gap * gap;
        }
        acc.sqrt()
    }

    /// MAXDIST: the maximum Euclidean distance from `p` to any point of the
    /// rectangle. Useful for upper bounds in ranked queries.
    pub fn max_dist(&self, p: &Point<N>) -> f64 {
        let mut acc = 0.0;
        for d in 0..N {
            let c = p.coord(d);
            let far = (c - self.lo.coord(d))
                .abs()
                .max((c - self.hi.coord(d)).abs());
            acc += far * far;
        }
        acc.sqrt()
    }

    /// True if all corners are finite.
    pub fn is_finite(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    /// Serializes the rectangle into `out` (lo then hi).
    ///
    /// # Panics
    /// Panics if `out.len() != Self::ENCODED_LEN`.
    pub fn encode(&self, out: &mut [u8]) {
        assert_eq!(out.len(), Self::ENCODED_LEN, "rect buffer size mismatch");
        let half = Point::<N>::ENCODED_LEN;
        self.lo.encode(&mut out[..half]);
        self.hi.encode(&mut out[half..]);
    }

    /// Deserializes a rectangle previously written by [`Rect::encode`].
    ///
    /// # Panics
    /// Panics if `buf.len() != Self::ENCODED_LEN`.
    pub fn decode(buf: &[u8]) -> Self {
        assert_eq!(buf.len(), Self::ENCODED_LEN, "rect buffer size mismatch");
        let half = Point::<N>::ENCODED_LEN;
        Self {
            lo: Point::decode(&buf[..half]),
            hi: Point::decode(&buf[half..]),
        }
    }
}

impl<const N: usize> fmt::Debug for Rect<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rect[{:?} .. {:?}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: [f64; 2], hi: [f64; 2]) -> Rect<2> {
        Rect::new(Point::new(lo), Point::new(hi))
    }

    #[test]
    fn union_contains_both() {
        let a = r([0.0, 0.0], [1.0, 1.0]);
        let b = r([2.0, -1.0], [3.0, 0.5]);
        let u = a.union(&b);
        assert!(u.contains(&a));
        assert!(u.contains(&b));
        assert_eq!(u, r([0.0, -1.0], [3.0, 1.0]));
    }

    #[test]
    fn area_and_margin() {
        let a = r([0.0, 0.0], [2.0, 3.0]);
        assert_eq!(a.area(), 6.0);
        assert_eq!(a.margin(), 5.0);
        assert_eq!(Rect::from_point(Point::new([1.0, 1.0])).area(), 0.0);
    }

    #[test]
    fn enlargement_is_zero_when_contained() {
        let a = r([0.0, 0.0], [10.0, 10.0]);
        let b = r([1.0, 1.0], [2.0, 2.0]);
        assert_eq!(a.enlargement(&b), 0.0);
        assert!(b.enlargement(&a) > 0.0);
    }

    #[test]
    fn min_dist_inside_is_zero() {
        let a = r([0.0, 0.0], [4.0, 4.0]);
        assert_eq!(a.min_dist(&Point::new([2.0, 2.0])), 0.0);
        assert_eq!(a.min_dist(&Point::new([4.0, 4.0])), 0.0); // boundary
    }

    #[test]
    fn min_dist_outside_matches_geometry() {
        let a = r([0.0, 0.0], [4.0, 4.0]);
        // point to the right: distance along x only
        assert_eq!(a.min_dist(&Point::new([7.0, 2.0])), 3.0);
        // diagonal corner: 3-4-5 triangle
        assert_eq!(a.min_dist(&Point::new([7.0, 8.0])), 5.0);
    }

    #[test]
    fn max_dist_bounds_min_dist() {
        let a = r([0.0, 0.0], [4.0, 4.0]);
        let p = Point::new([5.0, 5.0]);
        assert!(a.max_dist(&p) >= a.min_dist(&p));
        // farthest corner from (5,5) is (0,0): sqrt(50)
        assert!((a.max_dist(&p) - 50f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn intersects_and_contains() {
        let a = r([0.0, 0.0], [4.0, 4.0]);
        let b = r([4.0, 4.0], [5.0, 5.0]); // touching corner counts
        let c = r([4.1, 4.1], [5.0, 5.0]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(a.contains(&r([1.0, 1.0], [2.0, 2.0])));
        assert!(!a.contains(&b));
        assert!(a.contains_point(&Point::new([0.0, 4.0])));
    }

    #[test]
    fn from_corners_orders_coordinates() {
        let rect = Rect::from_corners(Point::new([3.0, -1.0]), Point::new([1.0, 2.0]));
        assert_eq!(rect, r([1.0, -1.0], [3.0, 2.0]));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let a = r([-1.25, 0.5], [3.5, 7.0]);
        let mut buf = [0u8; Rect::<2>::ENCODED_LEN];
        a.encode(&mut buf);
        assert_eq!(Rect::<2>::decode(&buf), a);
    }

    #[test]
    fn works_in_three_dimensions() {
        let a = Rect::new(Point::new([0.0, 0.0, 0.0]), Point::new([1.0, 1.0, 1.0]));
        assert_eq!(a.area(), 1.0);
        assert_eq!(a.min_dist(&Point::new([1.0, 1.0, 2.0])), 1.0);
    }
}
