//! `N`-dimensional points.

use std::fmt;

/// A point in `N`-dimensional Euclidean space.
///
/// In the paper's data model an object `T` is a pair `(T.p, T.t)` where
/// `T.p` is a location descriptor in multidimensional space; `Point` is that
/// location descriptor. Coordinates are `f64` and are expected to be finite.
#[derive(Clone, Copy, PartialEq)]
pub struct Point<const N: usize> {
    coords: [f64; N],
}

impl<const N: usize> Point<N> {
    /// Number of bytes a point occupies in the on-disk node layout.
    pub const ENCODED_LEN: usize = 8 * N;

    /// Creates a point from its coordinate array.
    pub const fn new(coords: [f64; N]) -> Self {
        Self { coords }
    }

    /// The origin (all coordinates zero).
    pub const fn origin() -> Self {
        Self { coords: [0.0; N] }
    }

    /// Coordinate along dimension `dim`.
    ///
    /// # Panics
    /// Panics if `dim >= N`.
    #[inline]
    pub fn coord(&self, dim: usize) -> f64 {
        self.coords[dim]
    }

    /// Borrow of the raw coordinate array.
    #[inline]
    pub fn coords(&self) -> &[f64; N] {
        &self.coords
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Comparisons of distances can use the squared form to avoid the square
    /// root; the query code uses true distances so that reported values are
    /// directly comparable to the paper's traces.
    #[inline]
    pub fn distance_sq(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for d in 0..N {
            let diff = self.coords[d] - other.coords[d];
            acc += diff * diff;
        }
        acc
    }

    /// Euclidean distance to `other` (the paper's `distance(T.p, Q.p)`).
    #[inline]
    pub fn distance(&self, other: &Self) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// True if every coordinate is finite (no NaN/inf).
    pub fn is_finite(&self) -> bool {
        self.coords.iter().all(|c| c.is_finite())
    }

    /// Serializes the point into `out` (little-endian f64 per dimension).
    ///
    /// # Panics
    /// Panics if `out.len() != Self::ENCODED_LEN`.
    pub fn encode(&self, out: &mut [u8]) {
        assert_eq!(out.len(), Self::ENCODED_LEN, "point buffer size mismatch");
        for (d, chunk) in out.chunks_exact_mut(8).enumerate() {
            chunk.copy_from_slice(&self.coords[d].to_le_bytes());
        }
    }

    /// Deserializes a point previously written by [`Point::encode`].
    ///
    /// # Panics
    /// Panics if `buf.len() != Self::ENCODED_LEN`.
    pub fn decode(buf: &[u8]) -> Self {
        assert_eq!(buf.len(), Self::ENCODED_LEN, "point buffer size mismatch");
        let mut coords = [0.0; N];
        for (d, chunk) in buf.chunks_exact(8).enumerate() {
            coords[d] = f64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        Self { coords }
    }
}

impl<const N: usize> From<[f64; N]> for Point<N> {
    fn from(coords: [f64; N]) -> Self {
        Self::new(coords)
    }
}

impl<const N: usize> fmt::Debug for Point<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point{:?}", self.coords)
    }
}

impl<const N: usize> fmt::Display for Point<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_paper_example() {
        // Example 2 of the paper: dist([30.5, 100.0], H7=[-33.2, -70.4]) = 181.9
        let q = Point::new([30.5, 100.0]);
        let h7 = Point::new([-33.2, -70.4]);
        assert!((q.distance(&h7) - 181.9).abs() < 0.05);
        // and dist to H2=[47.3, -122.2] = 222.8
        let h2 = Point::new([47.3, -122.2]);
        assert!((q.distance(&h2) - 222.8).abs() < 0.05);
    }

    #[test]
    fn distance_is_zero_to_self_and_symmetric() {
        let a = Point::new([1.5, -2.0, 7.25]);
        let b = Point::new([-3.0, 4.0, 0.5]);
        assert_eq!(a.distance(&a), 0.0);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = Point::new([1.0, -2.5, 3.75, f64::MIN_POSITIVE]);
        let mut buf = [0u8; 32];
        p.encode(&mut buf);
        assert_eq!(Point::<4>::decode(&buf), p);
    }

    #[test]
    #[should_panic(expected = "buffer size mismatch")]
    fn encode_rejects_wrong_buffer() {
        let p = Point::new([0.0, 0.0]);
        let mut buf = [0u8; 15];
        p.encode(&mut buf);
    }

    #[test]
    fn is_finite_detects_nan() {
        assert!(Point::new([0.0, 1.0]).is_finite());
        assert!(!Point::new([f64::NAN, 1.0]).is_finite());
        assert!(!Point::new([0.0, f64::INFINITY]).is_finite());
    }
}
