//! Observability integration: the trace-derived statistics, the
//! algorithms' own counters, and the storage layer's I/O attribution must
//! all tell the same story — solo or inside the concurrent batch engine —
//! and the metrics registry must aggregate them faithfully.

use ir2tree::model::DistanceFirstQuery;
use ir2tree::model::SpatialObject;
use ir2tree::{Algorithm, DbConfig, DeviceSet, SpatialKeywordDb};

fn small_config() -> DbConfig {
    DbConfig {
        capacity: Some(8),
        sig_bytes: 8,
        ..DbConfig::default()
    }
}

fn town(n: usize) -> Vec<SpatialObject<2>> {
    let themes = [
        "coffee wifi pastry",
        "pizza delivery late",
        "gym sauna pool",
        "books coffee quiet",
        "bar live music",
        "pharmacy open sunday",
    ];
    (0..n)
        .map(|i| {
            let x = (i % 25) as f64;
            let y = (i / 25) as f64;
            SpatialObject::new(i as u64, [x, y], themes[i % themes.len()])
        })
        .collect()
}

fn queries() -> Vec<DistanceFirstQuery<2>> {
    let kws: [&[&str]; 3] = [&["coffee"], &["coffee", "wifi"], &["pool"]];
    (0..12)
        .map(|i| {
            DistanceFirstQuery::new(
                [(i % 7) as f64 * 3.0, (i % 5) as f64 * 2.0],
                kws[i % kws.len()],
                4,
            )
        })
        .collect()
}

/// The heart of the observability contract, across all four algorithms:
///
/// * trace statistics are definitionally consistent with the algorithm's
///   own `SearchCounters`;
/// * the trace's object-fetch count equals the `CountingSource` /
///   object-store load count the report attributes to the query;
/// * a query reports *bit-for-bit identical* measurements whether it runs
///   alone (global snapshot deltas) or inside the concurrent batch engine
///   (`IoScope` per-thread attribution + `CountingSource`).
#[test]
fn solo_and_batch_reports_are_identical_for_every_algorithm() {
    let db = SpatialKeywordDb::build(DeviceSet::in_memory(), town(250), small_config()).unwrap();
    db.reset_io();
    let qs = queries();

    for alg in Algorithm::ALL {
        let solo: Vec<_> = qs
            .iter()
            .map(|q| db.distance_first(alg, q).unwrap())
            .collect();
        let batch = db.batch_topk(alg, &qs, 4).unwrap();
        assert_eq!(solo.len(), batch.len());

        for (i, (s, b)) in solo.iter().zip(&batch).enumerate() {
            let ctx = format!("{} query {i}", alg.label());
            // Internal consistency of each report.
            assert!(
                s.pruning.matches_counters(&s.counters),
                "{ctx}: trace/counter divergence {:?} vs {:?}",
                s.pruning,
                s.counters
            );
            assert!(b.pruning.matches_counters(&b.counters), "{ctx} (batch)");
            if alg != Algorithm::Iio {
                // Every object fetch the algorithm performed is one load on
                // the object store — the trace and the I/O layer agree.
                assert_eq!(s.pruning.objects_fetched, s.object_loads, "{ctx}");
            }
            // Solo and concurrent execution agree on everything measured.
            // (Block-access *totals* are compared: the random/sequential
            // split depends on the disk-arm position, which is global for
            // solo runs but per-thread inside the batch engine.)
            assert_eq!(s.counters, b.counters, "{ctx}");
            assert_eq!(s.pruning, b.pruning, "{ctx}");
            assert_eq!(s.object_loads, b.object_loads, "{ctx}");
            assert_eq!(s.index_io.total(), b.index_io.total(), "{ctx}");
            assert_eq!(s.object_io.total(), b.object_io.total(), "{ctx}");
            assert_eq!(s.results.len(), b.results.len(), "{ctx}");
            for (x, y) in s.results.iter().zip(&b.results) {
                assert_eq!(x.0.id, y.0.id, "{ctx}");
                assert_eq!(x.1, y.1, "{ctx}");
            }
        }
    }
}

#[test]
fn batch_report_histograms_summarize_the_per_query_reports() {
    let db = SpatialKeywordDb::build(DeviceSet::in_memory(), town(250), small_config()).unwrap();
    db.reset_io();
    let qs = queries();

    let per_query = db.batch_topk(Algorithm::Ir2, &qs, 3).unwrap();
    let batch = db.batch_distance_first(Algorithm::Ir2, &qs, 3).unwrap();

    assert_eq!(batch.io_per_query.count, qs.len() as u64);
    assert_eq!(batch.loads_per_query.count, qs.len() as u64);
    assert_eq!(
        batch.io_per_query.sum,
        per_query.iter().map(|r| r.io.total()).sum::<u64>()
    );
    assert_eq!(
        batch.loads_per_query.sum,
        per_query.iter().map(|r| r.object_loads).sum::<u64>()
    );
    assert!(batch.io_per_query.max >= batch.io_per_query.mean() as u64);
    assert!(batch.io_per_query.mean().is_finite());

    let mut merged_tests = 0u64;
    let mut merged_fetched = 0u64;
    for r in &per_query {
        merged_tests += r.pruning.sig_tests;
        merged_fetched += r.pruning.objects_fetched;
    }
    assert_eq!(batch.pruning.sig_tests, merged_tests);
    assert_eq!(batch.pruning.objects_fetched, merged_fetched);
    assert!(batch.pruning.sig_tests > 0, "IR2 queries test signatures");
}

#[test]
fn metrics_registry_aggregates_query_counters_exactly() {
    let db = SpatialKeywordDb::build(DeviceSet::in_memory(), town(250), small_config()).unwrap();
    db.reset_io();
    let qs = queries();
    let before = db.metrics().snapshot();

    let solo: Vec<_> = qs
        .iter()
        .map(|q| db.distance_first(Algorithm::Mir2, q).unwrap())
        .collect();
    let _batch = db.batch_topk(Algorithm::Mir2, &qs, 4).unwrap();

    let delta = db.metrics().snapshot().delta(&before);
    // Solo pass + batch pass: every query counted exactly once each.
    assert_eq!(
        delta.counter("queries_total{alg=\"mir2\"}"),
        2 * qs.len() as u64
    );
    let expect_tests: u64 = solo.iter().map(|r| r.pruning.sig_tests).sum();
    assert_eq!(
        delta.counter("signature_tests_total{alg=\"mir2\"}"),
        2 * expect_tests,
        "solo and batch runs of identical queries test identical signatures"
    );
    let expect_io: u64 = solo.iter().map(|r| r.io.total()).sum();
    assert_eq!(
        delta.counter("io_random_reads_total{alg=\"mir2\"}")
            + delta.counter("io_sequential_reads_total{alg=\"mir2\"}"),
        2 * expect_io,
        "registry I/O counters match the reports' snapshots"
    );

    // The untouched algorithms saw nothing.
    assert_eq!(delta.counter("queries_total{alg=\"rtree\"}"), 0);

    // And the text exposition is well-formed: finite numbers only.
    let text = db.metrics_prometheus();
    assert!(text.contains("queries_total{alg=\"mir2\"}"));
    assert!(text.contains("query_io_blocks_sum{alg=\"mir2\"}"));
    assert!(text.contains("device_read_blocks{device=\"mir2\"}"));
    assert!(!text.contains("NaN"), "no NaN may ever be exported");
    assert!(!text.contains("inf"), "no infinity may ever be exported");
}
