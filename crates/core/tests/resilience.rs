//! Resilient query execution, end to end: transient-fault retries under an
//! intermittent 1-in-8 fault rate, execution limits (deadline / I/O budget
//! / frontier cap) with prefix-exact degraded results across all four
//! algorithms, and per-query fault isolation in the batch engine.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ir2tree::model::{DistanceFirstQuery, SpatialObject};
use ir2tree::storage::testing::FlakyDevice;
use ir2tree::storage::{BlockDevice, BlockId, MemDevice, MetricsRegistry, Result, BLOCK_SIZE};
use ir2tree::text::SaturatingTfIdf;
use ir2tree::{
    Algorithm, DbConfig, DeviceSet, QueryError, QueryLimits, RetryDevice, RetryPolicy,
    SpatialKeywordDb, TruncateReason,
};
use proptest::prelude::*;

fn small_config() -> DbConfig {
    DbConfig {
        capacity: Some(8),
        sig_bytes: 8,
        ..DbConfig::default()
    }
}

fn town(n: usize) -> Vec<SpatialObject<2>> {
    let themes = [
        "coffee wifi pastry",
        "pizza delivery late",
        "gym sauna pool",
        "books coffee quiet",
        "bar live music",
        "pharmacy open sunday",
    ];
    (0..n)
        .map(|i| {
            let x = (i % 25) as f64;
            let y = (i / 25) as f64;
            SpatialObject::new(i as u64, [x, y], themes[i % themes.len()])
        })
        .collect()
}

fn queries(n: usize, k: usize) -> Vec<DistanceFirstQuery<2>> {
    let kws: [&[&str]; 4] = [&["coffee"], &["coffee", "wifi"], &["pool"], &["music"]];
    (0..n)
        .map(|i| {
            let x = (i % 23) as f64 + 0.3;
            let y = (i % 17) as f64 + 0.7;
            DistanceFirstQuery::new([x, y], kws[i % kws.len()], k)
        })
        .collect()
}

// ----------------------------------------------------------------------
// Retries: intermittent faults are absorbed, never surfaced.
// ----------------------------------------------------------------------

/// The acceptance scenario: every device fails every 8th operation with a
/// transient fault, and a 1000-query concurrent batch completes with zero
/// failures — every fault recovered by retry.
#[test]
fn thousand_query_batch_survives_one_in_eight_faults() {
    let registry = Arc::new(MetricsRegistry::new());
    let devices = DeviceSet::in_memory()
        .map(|_, d| FlakyDevice::every_kth(d, 8))
        .map(|name, d| RetryDevice::with_metrics(d, RetryPolicy::default(), &registry, name));
    let db = SpatialKeywordDb::build_with_registry(
        devices,
        town(400),
        small_config(),
        Arc::clone(&registry),
    )
    .expect("build recovers from intermittent faults too");

    let qs = queries(1000, 5);
    let outcomes = db.batch_topk_isolated(Algorithm::Ir2, &qs, 4, QueryLimits::none());
    assert_eq!(outcomes.len(), 1000);
    let mut retries = 0u64;
    for (i, out) in outcomes.iter().enumerate() {
        let r = out.as_ref().unwrap_or_else(|e| panic!("query {i}: {e}"));
        assert!(r.outcome.is_none(), "query {i} must not be truncated");
        retries += r.retries;
    }
    assert!(
        retries > 0,
        "a 1-in-8 fault rate must have triggered retries"
    );

    // Results under faults match a clean run exactly.
    let clean = SpatialKeywordDb::build(DeviceSet::in_memory(), town(400), small_config()).unwrap();
    for (q, out) in qs.iter().take(25).zip(&outcomes) {
        let faulty = out.as_ref().unwrap();
        let reference = clean.distance_first(Algorithm::Ir2, q).unwrap();
        let a: Vec<u64> = faulty.results.iter().map(|(o, _)| o.id).collect();
        let b: Vec<u64> = reference.results.iter().map(|(o, _)| o.id).collect();
        assert_eq!(a, b);
    }

    // The shared registry saw both the device-level recoveries and the
    // per-query retry attribution.
    let prom = registry.export_prometheus();
    assert!(prom.contains("device_retry_recoveries_total"), "{prom}");
    assert!(prom.contains("query_retries_total"), "{prom}");
}

// ----------------------------------------------------------------------
// Execution limits: truncation is exact-prefix degradation, not an error.
// ----------------------------------------------------------------------

fn ids(results: &[(SpatialObject<2>, f64)]) -> Vec<u64> {
    results.iter().map(|(o, _)| o.id).collect()
}

/// Sweeping the I/O budget from 0 up to (beyond) the full query cost must
/// yield, for every algorithm, either the complete answer or a truncated
/// report whose results are an exact prefix of it.
#[test]
fn io_budget_sweep_yields_exact_prefixes_for_all_algorithms() {
    let db = SpatialKeywordDb::build(DeviceSet::in_memory(), town(300), small_config()).unwrap();
    let q = DistanceFirstQuery::new([7.3, 3.1], &["coffee", "wifi"], 8);
    for alg in Algorithm::ALL {
        let full = db.distance_first(alg, &q).unwrap();
        let full_ids = ids(&full.results);
        let mut saw_truncation = false;
        let mut saw_completion = false;
        for budget in 0..=400u64 {
            let limited = db
                .distance_first_limited(alg, &q, QueryLimits::none().with_io_budget(budget))
                .unwrap();
            let got = ids(&limited.results);
            match limited.outcome {
                Some(reason) => {
                    saw_truncation = true;
                    assert_eq!(
                        reason,
                        TruncateReason::IoBudget,
                        "{} @{budget}",
                        alg.label()
                    );
                    if alg == Algorithm::Iio {
                        assert!(got.is_empty(), "IIO degrades all-or-nothing");
                    } else {
                        assert_eq!(
                            got,
                            full_ids[..got.len()],
                            "{} @{budget}: truncated results must be a prefix",
                            alg.label()
                        );
                    }
                }
                None => {
                    saw_completion = true;
                    assert_eq!(got, full_ids, "{} @{budget}", alg.label());
                }
            }
        }
        assert!(saw_truncation, "{}: sweep never truncated", alg.label());
        assert!(saw_completion, "{}: sweep never completed", alg.label());
    }
}

/// The same property for the general (ranked) algorithm, which the facade
/// reaches through `general_topk_limited`.
#[test]
fn general_algorithm_truncates_to_exact_prefixes() {
    use ir2tree::irtree::{general_topk, general_topk_limited, GeneralQuery};
    use ir2tree::text::LinearRank;

    let db = SpatialKeywordDb::build(DeviceSet::in_memory(), town(300), small_config()).unwrap();
    let q = GeneralQuery::new([7.3, 3.1], &["coffee", "music"], 6);
    let rank = LinearRank {
        ir_weight: 1.0,
        dist_weight: 0.05,
    };
    let full = general_topk(
        db.ir2_tree(),
        db.object_store(),
        db.vocab(),
        &SaturatingTfIdf,
        &rank,
        &q,
    )
    .unwrap();
    let full_ids: Vec<u64> = full.iter().map(|r| r.object.id).collect();
    let mut saw_truncation = false;
    for budget in 0..=400u64 {
        let out = general_topk_limited(
            db.ir2_tree(),
            db.object_store(),
            db.vocab(),
            &SaturatingTfIdf,
            &rank,
            &q,
            QueryLimits::none().with_io_budget(budget),
        )
        .unwrap();
        saw_truncation |= out.is_truncated();
        let got: Vec<u64> = out.results().iter().map(|r| r.object.id).collect();
        assert_eq!(got, full_ids[..got.len()], "budget {budget}");
    }
    assert!(saw_truncation);
}

/// An already-expired deadline truncates immediately — empty results, no
/// error — both for a single query and batch-wide.
#[test]
fn expired_deadline_truncates_without_error() {
    let db = SpatialKeywordDb::build(DeviceSet::in_memory(), town(200), small_config()).unwrap();
    let q = DistanceFirstQuery::new([3.0, 3.0], &["coffee"], 5);
    for alg in Algorithm::ALL {
        let r = db
            .distance_first_limited(alg, &q, QueryLimits::none().with_deadline(Duration::ZERO))
            .unwrap();
        assert_eq!(r.outcome, Some(TruncateReason::Deadline), "{}", alg.label());
        assert!(r.results.is_empty(), "{}", alg.label());
    }

    // Batch-wide: the deadline instant is resolved once, so every query in
    // the batch is past it. All truncated, none failed.
    let qs = queries(40, 5);
    let outcomes = db.batch_topk_isolated(
        Algorithm::Ir2,
        &qs,
        4,
        QueryLimits::none().with_deadline(Duration::ZERO),
    );
    for out in &outcomes {
        let r = out.as_ref().expect("truncation is not a failure");
        assert_eq!(r.outcome, Some(TruncateReason::Deadline));
    }

    // Truncations surface in the metrics exposition.
    let prom = db.metrics_prometheus();
    assert!(prom.contains("queries_truncated_total"), "{prom}");
}

/// A tiny frontier cap trips the heap limit; results remain a prefix.
#[test]
fn heap_cap_truncates_with_prefix_results() {
    let db = SpatialKeywordDb::build(DeviceSet::in_memory(), town(300), small_config()).unwrap();
    let q = DistanceFirstQuery::new([7.3, 3.1], &["coffee"], 8);
    let full = db.distance_first(Algorithm::Ir2, &q).unwrap();
    let r = db
        .distance_first_limited(
            Algorithm::Ir2,
            &q,
            QueryLimits::none().with_max_heap_size(1),
        )
        .unwrap();
    assert_eq!(r.outcome, Some(TruncateReason::HeapLimit));
    let got = ids(&r.results);
    assert_eq!(got, ids(&full.results)[..got.len()]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized variant of the sweep: any algorithm, any budget, any
    /// query — a limited run is always a prefix (empty for IIO) of the
    /// unlimited run.
    #[test]
    fn truncated_results_prefix_full_results(
        alg_idx in 0usize..4,
        budget in 0u64..300,
        x in 0.0f64..25.0,
        y in 0.0f64..12.0,
        kw_idx in 0usize..4,
        k in 1usize..10,
    ) {
        use std::sync::OnceLock;
        static DB: OnceLock<SpatialKeywordDb<MemDevice>> = OnceLock::new();
        let db = DB.get_or_init(|| {
            SpatialKeywordDb::build(DeviceSet::in_memory(), town(250), small_config()).unwrap()
        });
        let kws: [&[&str]; 4] = [&["coffee"], &["coffee", "wifi"], &["pool"], &["sunday"]];
        let alg = Algorithm::ALL[alg_idx];
        let q = DistanceFirstQuery::new([x, y], kws[kw_idx], k);
        let full = db.distance_first(alg, &q).unwrap();
        let limited = db
            .distance_first_limited(alg, &q, QueryLimits::none().with_io_budget(budget))
            .unwrap();
        let full_ids = ids(&full.results);
        let got = ids(&limited.results);
        match limited.outcome {
            None => prop_assert_eq!(got, full_ids),
            Some(_) if alg == Algorithm::Iio => prop_assert!(got.is_empty()),
            Some(_) => {
                prop_assert!(got.len() <= full_ids.len());
                prop_assert_eq!(&got[..], &full_ids[..got.len()]);
            }
        }
    }
}

// ----------------------------------------------------------------------
// Fault isolation: one bad query never takes the batch down.
// ----------------------------------------------------------------------

/// A device wrapper that panics on every `period`-th read while armed —
/// simulating a query hitting a poisoned code path mid-traversal.
struct PanickingDevice<D> {
    inner: D,
    armed: Arc<AtomicBool>,
    reads: AtomicU64,
    period: u64,
}

impl<D> PanickingDevice<D> {
    fn new(inner: D, armed: Arc<AtomicBool>, period: u64) -> Self {
        Self {
            inner,
            armed,
            reads: AtomicU64::new(0),
            period,
        }
    }
}

impl<D: BlockDevice> BlockDevice for PanickingDevice<D> {
    fn read_block(&self, id: BlockId, buf: &mut [u8; BLOCK_SIZE]) -> Result<()> {
        if self.armed.load(Ordering::Relaxed) {
            let n = self.reads.fetch_add(1, Ordering::Relaxed) + 1;
            if n % self.period == 0 {
                panic!("injected read panic");
            }
        }
        self.inner.read_block(id, buf)
    }

    fn write_block(&self, id: BlockId, data: &[u8; BLOCK_SIZE]) -> Result<()> {
        self.inner.write_block(id, data)
    }

    fn allocate(&self, n: u64) -> Result<BlockId> {
        self.inner.allocate(n)
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
}

#[test]
fn panicking_query_is_isolated_and_pool_stays_usable() {
    // Silence the injected panics' default backtrace spew; all other
    // panics still reach the previous hook.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("injected read panic"));
        if !injected {
            prev(info);
        }
    }));

    let armed = Arc::new(AtomicBool::new(false));
    let devices =
        DeviceSet::in_memory().map(|_, d| PanickingDevice::new(d, Arc::clone(&armed), 61));
    let db = SpatialKeywordDb::build(devices, town(300), small_config()).unwrap();

    armed.store(true, Ordering::Relaxed);
    let qs = queries(120, 5);
    let outcomes = db.batch_topk_isolated(Algorithm::Ir2, &qs, 4, QueryLimits::none());
    armed.store(false, Ordering::Relaxed);

    assert_eq!(outcomes.len(), 120);
    let panics = outcomes
        .iter()
        .filter(|o| matches!(o, Err(QueryError::Panic(_))))
        .count();
    let oks = outcomes.iter().filter(|o| o.is_ok()).count();
    assert!(panics >= 1, "the injector must have fired");
    assert!(oks >= 1, "siblings of a panicking query must survive");
    assert_eq!(panics + oks, 120, "failures are panics only");

    // The database — buffer pool included — is fully usable afterwards.
    let q = DistanceFirstQuery::new([7.3, 3.1], &["coffee"], 5);
    let after = db.distance_first(Algorithm::Ir2, &q).unwrap();
    assert!(!after.results.is_empty());

    // Failure accounting landed in the metrics registry.
    let prom = db.metrics_prometheus();
    assert!(prom.contains("batch_query_failures_total"), "{prom}");
}

/// Permanent storage errors surface as per-slot `Err(Storage)` entries —
/// the batch call itself never fails — and the database recovers fully
/// once the device does.
#[test]
fn permanent_faults_fill_slots_and_database_recovers() {
    // Budget mode: the first `budget` operations succeed, everything after
    // fails *permanently*. Keep handles so the budget can be pulled out
    // from under a running database.
    let mut handles: Vec<Arc<FlakyDevice<MemDevice>>> = Vec::new();
    let devices = DeviceSet::in_memory().map(|_, d| {
        let dev = Arc::new(FlakyDevice::new(d, u64::MAX));
        handles.push(Arc::clone(&dev));
        dev
    });
    let db = SpatialKeywordDb::build(devices, town(200), small_config()).unwrap();

    for h in &handles {
        h.refill(0);
    }
    let qs = queries(30, 5);
    let outcomes = db.batch_topk_isolated(Algorithm::Ir2, &qs, 4, QueryLimits::none());
    assert_eq!(outcomes.len(), 30, "one slot per query, batch never aborts");
    let storage_errs = outcomes
        .iter()
        .filter(|o| matches!(o, Err(QueryError::Storage(_))))
        .count();
    assert!(storage_errs >= 1, "the dead device must fail queries");
    assert!(
        outcomes
            .iter()
            .all(|o| o.is_ok() || matches!(o, Err(QueryError::Storage(_)))),
        "failures are storage errors, never panics"
    );

    // Device heals → the same database answers again; nothing was poisoned.
    for h in &handles {
        h.refill(u64::MAX);
    }
    let q = DistanceFirstQuery::new([7.3, 3.1], &["coffee"], 5);
    let after = db.distance_first(Algorithm::Ir2, &q).unwrap();
    assert!(!after.results.is_empty());
}
