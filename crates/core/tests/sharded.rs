//! Exactness suite for the sharded scatter-gather engine: across shard
//! counts, algorithms, worker schedules, and random datasets, a
//! [`ShardedDb`] must answer exactly like the monolithic database over the
//! same objects — and under execution limits its truncated answer must be
//! an exact prefix of the full one.

use ir2tree::model::{DistanceFirstQuery, SpatialObject};
use ir2tree::storage::MemDevice;
use ir2tree::{sharded_manifest, Algorithm, DbConfig, DeviceSet, ShardedDb, SpatialKeywordDb};
use proptest::prelude::*;

const WORDS: [&str; 10] = [
    "internet", "pool", "spa", "pets", "golf", "sauna", "suite", "gym", "bar", "wifi",
];

fn small_config() -> DbConfig {
    DbConfig {
        capacity: Some(4),
        sig_bytes: 8,
        ..DbConfig::default()
    }
}

/// Deterministic pseudo-random scatter (no grid symmetry, so distance ties
/// are measure-zero and answers compare bitwise).
fn scatter(n: usize) -> Vec<SpatialObject<2>> {
    (0..n)
        .map(|i| {
            let x = ((i * 7919) % 1009) as f64 + (i % 13) as f64 * 0.0731;
            let y = ((i * 104729) % 997) as f64 + (i % 17) as f64 * 0.0413;
            let text = format!(
                "{} {} {}",
                WORDS[i % WORDS.len()],
                WORDS[(i * 3 + 1) % WORDS.len()],
                WORDS[(i * 7 + 4) % WORDS.len()]
            );
            SpatialObject::new(i as u64, [x, y], text)
        })
        .collect()
}

fn sharded(objects: Vec<SpatialObject<2>>, s: usize) -> ShardedDb<MemDevice> {
    let sets = (0..s).map(|_| DeviceSet::in_memory()).collect();
    ShardedDb::build(sets, objects, small_config()).unwrap()
}

/// Brute-force truth in the sharded engine's canonical `(distance, id)`
/// order.
fn brute(objects: &[SpatialObject<2>], q: &DistanceFirstQuery<2>) -> Vec<(u64, f64)> {
    let mut hits: Vec<(u64, f64)> = objects
        .iter()
        .filter(|o| o.token_set().contains_all(&q.keywords))
        .map(|o| (o.id, q.point.distance(&o.point)))
        .collect();
    hits.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    hits.truncate(q.k);
    hits
}

fn assert_matches_brute(label: &str, got: &[(SpatialObject<2>, f64)], truth: &[(u64, f64)]) {
    assert_eq!(got.len(), truth.len(), "{label}: result count");
    for ((o, d), (tid, td)) in got.iter().zip(truth.iter()) {
        assert_eq!(o.id, *tid, "{label}: object id");
        assert!((d - td).abs() < 1e-9, "{label}: {d} vs {td}");
    }
}

#[test]
fn every_shard_count_matches_brute_force_on_every_algorithm() {
    let objects = scatter(300);
    for s in [1usize, 2, 3, 4, 8] {
        let db = sharded(objects.clone(), s);
        assert_eq!(db.shard_count(), s);
        assert_eq!(db.total_objects(), 300);
        for (qi, keywords) in [
            vec!["pool"],
            vec!["pool", "spa"],
            vec!["internet", "gym"],
            vec![],
        ]
        .into_iter()
        .enumerate()
        {
            let q = DistanceFirstQuery::new(
                [173.3 + qi as f64 * 41.7, 512.9 - qi as f64 * 77.1],
                &keywords,
                7,
            );
            let truth = brute(&objects, &q);
            for alg in [Algorithm::RTree, Algorithm::Ir2, Algorithm::Mir2] {
                let rep = db.distance_first(alg, &q).unwrap();
                assert!(rep.outcome.is_none());
                assert_matches_brute(&format!("s={s} {}", alg.label()), &rep.results, &truth);
            }
            // IIO rejects pure-NN queries; otherwise it must agree too.
            if keywords.is_empty() {
                assert!(db.distance_first(Algorithm::Iio, &q).is_err());
            } else {
                let rep = db.distance_first(Algorithm::Iio, &q).unwrap();
                assert_matches_brute(&format!("s={s} IIO"), &rep.results, &truth);
            }
        }
    }
}

#[test]
fn sharded_matches_monolithic_reports_not_just_results() {
    let objects = scatter(250);
    let mono =
        SpatialKeywordDb::build(DeviceSet::in_memory(), objects.clone(), small_config()).unwrap();
    let db = sharded(objects, 4);
    let q = DistanceFirstQuery::new([400.3, 212.7], &["pool"], 9);
    let m = mono.distance_first(Algorithm::Ir2, &q).unwrap();
    let s = db.distance_first(Algorithm::Ir2, &q).unwrap();
    assert_eq!(m.results.len(), s.results.len());
    for ((a, da), (b, db_)) in m.results.iter().zip(s.results.iter()) {
        assert_eq!(a.id, b.id);
        assert!((da - db_).abs() < 1e-9);
    }
    // Attribution is real on both engines: index and object I/O are
    // accounted and the identity io = index + object holds.
    assert!(s.index_io.total() > 0);
    assert!(s.object_loads > 0);
    assert_eq!(s.io, s.index_io + s.object_io);
    assert!(s.simulated > std::time::Duration::ZERO);
}

#[test]
fn parallel_workers_match_the_sequential_merge() {
    let objects = scatter(400);
    let db = sharded(objects, 8);
    for threads in [2usize, 4, 8] {
        for (i, kw) in [vec!["spa"], vec!["pool", "wifi"]].into_iter().enumerate() {
            let q = DistanceFirstQuery::new([640.7 - i as f64 * 13.3, 128.1], &kw, 11);
            let seq = db.distance_first(Algorithm::Ir2, &q).unwrap();
            let par = db
                .distance_first_parallel(Algorithm::Ir2, &q, threads)
                .unwrap();
            assert_eq!(seq.results.len(), par.results.len(), "threads={threads}");
            for ((a, da), (b, db_)) in seq.results.iter().zip(par.results.iter()) {
                assert_eq!(a.id, b.id, "threads={threads}");
                assert_eq!(da.to_bits(), db_.to_bits(), "threads={threads}");
            }
        }
    }
}

#[test]
fn batch_matches_individual_queries_in_input_order() {
    let objects = scatter(200);
    let db = sharded(objects, 4);
    let queries: Vec<DistanceFirstQuery<2>> = (0..12)
        .map(|i| {
            DistanceFirstQuery::new(
                [(i * 83 % 900) as f64 + 0.57, (i * 131 % 900) as f64 + 0.13],
                &[WORDS[i % WORDS.len()]],
                5,
            )
        })
        .collect();
    let batch = db.batch_topk(Algorithm::Mir2, &queries, 4).unwrap();
    assert_eq!(batch.len(), queries.len());
    for (q, rep) in queries.iter().zip(&batch) {
        let solo = db.distance_first(Algorithm::Mir2, q).unwrap();
        assert_eq!(solo.results.len(), rep.results.len());
        for ((a, da), (b, db_)) in solo.results.iter().zip(rep.results.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(da.to_bits(), db_.to_bits());
        }
    }
}

#[test]
fn truncated_answers_are_exact_prefixes() {
    let objects = scatter(500);
    let db = sharded(objects, 4);
    let q = DistanceFirstQuery::new([333.3, 444.1], &["pool"], 25);
    let full = db.distance_first(Algorithm::Ir2, &q).unwrap();
    assert!(full.outcome.is_none());
    let mut seen_truncation = false;
    for budget in [4u64, 8, 16, 64, 256] {
        let limits = ir2tree::QueryLimits::none().with_io_budget(budget);
        let rep = db
            .distance_first_limited(Algorithm::Ir2, &q, limits)
            .unwrap();
        if rep.outcome.is_some() {
            seen_truncation = true;
        }
        // Complete or truncated, the answer must be a prefix of the full
        // one: every reported result provably beats everything unseen.
        assert!(rep.results.len() <= full.results.len());
        for ((a, da), (b, db_)) in rep.results.iter().zip(full.results.iter()) {
            assert_eq!(a.id, b.id, "budget={budget}");
            assert_eq!(da.to_bits(), db_.to_bits(), "budget={budget}");
        }
    }
    assert!(seen_truncation, "smallest budgets must actually truncate");
}

#[test]
fn k_zero_and_empty_shards_behave() {
    let objects = scatter(64);
    let db = sharded(objects, 4);
    let q0 = DistanceFirstQuery::new([10.0, 10.0], &["pool"], 0);
    for alg in [
        Algorithm::RTree,
        Algorithm::Ir2,
        Algorithm::Mir2,
        Algorithm::Iio,
    ] {
        let rep = db.distance_first(alg, &q0).unwrap();
        assert!(rep.results.is_empty(), "{}", alg.label());
        assert!(rep.outcome.is_none(), "{}", alg.label());
    }
    // Parallel path too.
    let rep = db.distance_first_parallel(Algorithm::Ir2, &q0, 4).unwrap();
    assert!(rep.results.is_empty());
    // Oversized k returns every match, exactly once.
    let qbig = DistanceFirstQuery::new([10.0, 10.0], &["pool"], 10_000);
    let truth = brute(&scatter(64), &qbig);
    let rep = db.distance_first(Algorithm::Ir2, &qbig).unwrap();
    assert_matches_brute("oversized k", &rep.results, &truth);
}

#[test]
fn build_rejects_degenerate_shapes() {
    assert!(ShardedDb::<MemDevice>::build(vec![], scatter(10), small_config()).is_err());
    let sets = (0..8).map(|_| DeviceSet::in_memory()).collect();
    assert!(ShardedDb::build(sets, scatter(3), small_config()).is_err());
}

#[test]
fn bounds_cover_every_object() {
    let objects = scatter(150);
    let db = sharded(objects.clone(), 6);
    let mut covered = 0usize;
    for o in &objects {
        if db
            .bounds()
            .iter()
            .flatten()
            .any(|r| r.min_dist(&o.point) == 0.0)
        {
            covered += 1;
        }
    }
    assert_eq!(covered, objects.len());
}

#[test]
fn persistence_roundtrip_on_disk() {
    let dir = std::env::temp_dir().join(format!("ir2tree-sharded-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let objects = scatter(120);
    let q = DistanceFirstQuery::new([210.9, 330.4], &["spa", "suite"], 6);
    let before = {
        let db = ShardedDb::create_in_dir(&dir, objects.clone(), small_config(), 3).unwrap();
        db.distance_first(Algorithm::Ir2, &q).unwrap()
    };
    assert_eq!(sharded_manifest(&dir).unwrap(), Some(3));
    let db = ShardedDb::open_dir(&dir).unwrap();
    assert_eq!(db.shard_count(), 3);
    assert_eq!(db.total_objects(), 120);
    for alg in [
        Algorithm::RTree,
        Algorithm::Ir2,
        Algorithm::Mir2,
        Algorithm::Iio,
    ] {
        let after = db.distance_first(alg, &q).unwrap();
        assert_eq!(after.results.len(), before.results.len(), "{}", alg.label());
        for ((a, da), (b, db_)) in after.results.iter().zip(before.results.iter()) {
            assert_eq!(a.id, b.id, "{}", alg.label());
            assert!((da - db_).abs() < 1e-9, "{}", alg.label());
        }
    }
    // A plain (non-sharded) directory is not misdetected.
    let plain = dir.join("shard-000");
    assert_eq!(sharded_manifest(&plain).unwrap(), None);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn metrics_expose_shard_series() {
    let db = sharded(scatter(100), 4);
    let q = DistanceFirstQuery::new([50.5, 60.7], &["pool"], 3);
    db.distance_first(Algorithm::Ir2, &q).unwrap();
    let text = db.metrics_prometheus();
    assert!(text.contains("shard_count 4"), "{text}");
    assert!(
        text.contains("sharded_queries_total{alg=\"ir2\"}"),
        "{text}"
    );
    assert!(text.contains("shard_objects{shard=\"0\"}"), "{text}");
    assert!(text.contains("sharded_query_shards_touched"), "{text}");
}

// ---------------------------------------------------------------------
// The acceptance property: sharded == single-shard, any dataset, any S.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Doc {
    point: [f64; 2],
    words: Vec<usize>,
}

fn arb_doc() -> impl Strategy<Value = Doc> {
    (
        prop::array::uniform2(-500.0f64..500.0),
        prop::collection::vec(0..WORDS.len(), 1..4),
    )
        .prop_map(|(point, words)| Doc { point, words })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Across random datasets, query points, keyword sets, and k, the
    /// sharded answer at S ∈ {1, 2, 4, 8} is identical — ids, distances,
    /// order — to the single-shard answer and to the monolithic engine.
    #[test]
    fn sharded_topk_equals_single_shard_for_all_shard_counts(
        docs in prop::collection::vec(arb_doc(), 8..50),
        qpoint in prop::array::uniform2(-600.0f64..600.0),
        kw in 0usize..WORDS.len(),
        k in 1usize..12,
    ) {
        let objects: Vec<SpatialObject<2>> = docs
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let text = d.words.iter().map(|&w| WORDS[w]).collect::<Vec<_>>().join(" ");
                SpatialObject::new(i as u64, d.point, text)
            })
            .collect();
        let q = DistanceFirstQuery::new(qpoint, &[WORDS[kw]], k);
        let mono = SpatialKeywordDb::build(
            DeviceSet::in_memory(), objects.clone(), small_config()).unwrap();
        let single = sharded(objects.clone(), 1);
        let reference = single.distance_first(Algorithm::Ir2, &q).unwrap().results;
        // Sanity: canonical answers agree with the monolithic engine
        // (monolithic breaks exact-distance ties by traversal order, so
        // compare distances bitwise and ids per distance-group).
        let mref = mono.distance_first(Algorithm::Ir2, &q).unwrap().results;
        prop_assert_eq!(mref.len(), reference.len());
        for ((_, da), (_, db_)) in mref.iter().zip(reference.iter()) {
            prop_assert_eq!(da.to_bits(), db_.to_bits());
        }
        for s in [2usize, 4, 8] {
            for alg in [Algorithm::RTree, Algorithm::Ir2, Algorithm::Mir2, Algorithm::Iio] {
                let db = sharded(objects.clone(), s);
                let got = db.distance_first(alg, &q).unwrap().results;
                prop_assert_eq!(got.len(), reference.len(), "s={} {}", s, alg.label());
                for ((a, da), (b, db_)) in got.iter().zip(reference.iter()) {
                    prop_assert_eq!(a.id, b.id, "s={} {}", s, alg.label());
                    prop_assert!((da - db_).abs() < 1e-9, "s={} {}", s, alg.label());
                }
                // The parallel worker path must agree bit-for-bit too.
                let par = db.distance_first_parallel(alg, &q, 4).unwrap().results;
                prop_assert_eq!(par.len(), got.len());
                for ((a, da), (b, db_)) in par.iter().zip(got.iter()) {
                    prop_assert_eq!(a.id, b.id);
                    prop_assert_eq!(da.to_bits(), db_.to_bits());
                }
            }
        }
    }
}
