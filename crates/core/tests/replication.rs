//! Exactness and robustness suite for replicated shards: replica loss at
//! any point mid-query must be invisible (automatic failover re-issues the
//! shard pull against a surviving replica), hedged reads must change
//! latency only, and the scrubber must detect and repair silent replica
//! divergence.

use std::sync::Arc;
use std::time::Duration;

use ir2tree::model::{DistanceFirstQuery, SpatialObject};
use ir2tree::storage::testing::KillSwitch;
use ir2tree::storage::MemDevice;
use ir2tree::{
    scrub_dir, shard_layout, Algorithm, DbConfig, DeviceSet, QueryLimits, RetryDevice, ShardedDb,
    SpatialKeywordDb,
};
use proptest::prelude::*;

const WORDS: [&str; 10] = [
    "internet", "pool", "spa", "pets", "golf", "sauna", "suite", "gym", "bar", "wifi",
];

fn small_config() -> DbConfig {
    DbConfig {
        capacity: Some(4),
        sig_bytes: 8,
        ..DbConfig::default()
    }
}

/// Deterministic pseudo-random scatter (no grid symmetry, so distance
/// ties are measure-zero and answers compare bitwise).
fn scatter(n: usize) -> Vec<SpatialObject<2>> {
    (0..n)
        .map(|i| {
            let x = ((i * 7919) % 1009) as f64 + (i % 13) as f64 * 0.0731;
            let y = ((i * 104729) % 997) as f64 + (i % 17) as f64 * 0.0413;
            let text = format!(
                "{} {} {}",
                WORDS[i % WORDS.len()],
                WORDS[(i * 3 + 1) % WORDS.len()],
                WORDS[(i * 7 + 4) % WORDS.len()]
            );
            SpatialObject::new(i as u64, [x, y], text)
        })
        .collect()
}

fn same_results(a: &[(SpatialObject<2>, f64)], b: &[(SpatialObject<2>, f64)]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|((x, dx), (y, dy))| x.id == y.id && dx.to_bits() == dy.to_bits())
}

type KilledDb = ShardedDb<RetryDevice<ir2tree::storage::testing::KillableDevice<Arc<MemDevice>>>>;

/// Builds a replicated in-memory database (shards × replicas) whose every
/// replica answers to its own kill switch, plus the switches, indexed
/// `[shard][replica]`.
fn killable_db(
    objects: Vec<SpatialObject<2>>,
    shards: usize,
    replicas: usize,
) -> (KilledDb, Vec<Vec<KillSwitch>>) {
    let raw: Vec<Vec<DeviceSet<Arc<MemDevice>>>> = (0..shards)
        .map(|_| {
            (0..replicas)
                .map(|_| DeviceSet::in_memory().map(|_role, d| Arc::new(d)))
                .collect()
        })
        .collect();
    // Populate (and byte-verify) through shared Arc handles; reopen the
    // same memory behind the kill switches.
    drop(ShardedDb::build_replicated(raw.clone(), objects, small_config()).unwrap());
    let kills: Vec<Vec<KillSwitch>> = (0..shards)
        .map(|_| (0..replicas).map(|_| KillSwitch::new()).collect())
        .collect();
    let groups = raw
        .into_iter()
        .zip(&kills)
        .map(|(group, ks)| {
            group
                .into_iter()
                .zip(ks)
                .map(|(set, k)| set.map(|_role, d| RetryDevice::new(k.wrap(d))))
                .collect()
        })
        .collect();
    (ShardedDb::from_replica_groups(groups).unwrap(), kills)
}

#[test]
fn replicated_build_answers_like_monolithic() {
    let objects = scatter(200);
    let mono =
        SpatialKeywordDb::build(DeviceSet::in_memory(), objects.clone(), small_config()).unwrap();
    let (db, _kills) = killable_db(objects, 3, 2);
    assert_eq!(db.shard_count(), 3);
    assert_eq!(db.replica_count(), 2);
    for (i, kw) in [vec!["pool"], vec!["spa", "wifi"], vec![]]
        .into_iter()
        .enumerate()
    {
        let q = DistanceFirstQuery::new([173.3 + i as f64 * 41.7, 512.9], &kw, 7);
        let m = mono.distance_first(Algorithm::Ir2, &q).unwrap();
        let s = db.distance_first(Algorithm::Ir2, &q).unwrap();
        assert_eq!(m.results.len(), s.results.len());
        for ((a, da), (b, db_)) in m.results.iter().zip(s.results.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(da.to_bits(), db_.to_bits());
        }
    }
}

#[test]
fn failover_is_exact_when_primaries_die_between_queries() {
    let objects = scatter(300);
    let mono =
        SpatialKeywordDb::build(DeviceSet::in_memory(), objects.clone(), small_config()).unwrap();
    let (db, kills) = killable_db(objects, 4, 2);
    let queries: Vec<DistanceFirstQuery<2>> = (0..10)
        .map(|i| {
            DistanceFirstQuery::new(
                [(i * 83 % 900) as f64 + 0.57, (i * 131 % 900) as f64 + 0.13],
                &[WORDS[i % WORDS.len()]],
                6,
            )
        })
        .collect();
    for (qi, q) in queries.iter().enumerate() {
        if qi == queries.len() / 2 {
            for ks in &kills {
                ks[0].kill();
            }
        }
        for alg in [Algorithm::Ir2, Algorithm::Mir2, Algorithm::Iio] {
            let m = mono.distance_first(alg, q).unwrap();
            let s = db.distance_first(alg, q).unwrap();
            assert!(
                same_results(&m.results, &s.results),
                "q{qi} {}",
                alg.label()
            );
        }
    }
    let text = db.metrics_prometheus();
    assert!(text.contains("replica_count 2"), "{text}");
    assert!(text.contains("replica_failovers_total"), "{text}");
}

#[test]
fn all_replicas_dead_shard_fails_per_slot_without_poisoning_siblings() {
    let objects = scatter(240);
    let (db, kills) = killable_db(objects.clone(), 4, 2);
    // Shard 2 loses every replica; the others stay healthy.
    for k in &kills[2] {
        k.kill();
    }
    let queries: Vec<DistanceFirstQuery<2>> = (0..8)
        .map(|i| {
            DistanceFirstQuery::new(
                [(i * 127 % 1000) as f64, (i * 211 % 1000) as f64],
                &[WORDS[i % WORDS.len()]],
                50, // large k forces every query into every shard
            )
        })
        .collect();
    let outcomes = db.batch_topk_isolated(Algorithm::Ir2, &queries, 4, QueryLimits::none());
    assert_eq!(outcomes.len(), queries.len());
    let failed = outcomes.iter().filter(|o| o.is_err()).count();
    assert!(failed > 0, "a dead shard must surface as per-slot errors");
    // The database is not poisoned: killing no further switches, a fresh
    // query that the dead shard cannot serve still fails cleanly, and
    // reviving is not needed for the healthy shards to keep answering
    // (k=1 near a healthy shard's tile can complete without shard 2).
    let probe = DistanceFirstQuery::new(
        [objects[0].point.coords()[0], objects[0].point.coords()[1]],
        &[] as &[&str],
        1,
    );
    // An Err means the probe happened to need shard 2 — still a clean error.
    if let Ok(rep) = db.distance_first(Algorithm::Ir2, &probe) {
        assert_eq!(rep.results.len(), 1);
    }
}

#[test]
fn hedged_reads_match_unhedged_bit_for_bit() {
    let objects = scatter(260);
    let (db, _kills) = killable_db(objects, 3, 2);
    for (i, kw) in [vec!["pool"], vec!["spa", "suite"], vec![]]
        .into_iter()
        .enumerate()
    {
        let q = DistanceFirstQuery::new([350.0 - i as f64 * 60.0, 420.0], &kw, 9);
        let plain = db.distance_first(Algorithm::Ir2, &q).unwrap();
        // Zero delay: the hedge fires on effectively every shard pull.
        let eager = db
            .distance_first_hedged(Algorithm::Ir2, &q, Duration::ZERO)
            .unwrap();
        assert!(same_results(&plain.results, &eager.results), "eager q{i}");
        // Generous delay: the hedge never fires.
        let lazy = db
            .distance_first_hedged(Algorithm::Ir2, &q, Duration::from_secs(5))
            .unwrap();
        assert!(same_results(&plain.results, &lazy.results), "lazy q{i}");
    }
    let text = db.metrics_prometheus();
    assert!(text.contains("replica_hedges_total"), "{text}");
}

#[test]
fn hedged_survives_a_dead_primary() {
    let objects = scatter(180);
    let (db, kills) = killable_db(objects, 2, 2);
    let q = DistanceFirstQuery::new([300.0, 300.0], &["pool"], 8);
    let before = db.distance_first(Algorithm::Ir2, &q).unwrap();
    for ks in &kills {
        ks[0].kill();
    }
    let after = db
        .distance_first_hedged(Algorithm::Ir2, &q, Duration::from_millis(1))
        .unwrap();
    assert!(same_results(&before.results, &after.results));
}

#[test]
fn single_replica_layout_is_byte_identical_to_legacy() {
    let root = std::env::temp_dir().join(format!("ir2tree-repl-legacy-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let objects = scatter(120);
    let legacy_dir = root.join("legacy");
    let single_dir = root.join("single");
    let q = DistanceFirstQuery::new([210.9, 330.4], &["spa"], 6);
    let legacy = {
        let db = ShardedDb::create_in_dir(&legacy_dir, objects.clone(), small_config(), 3).unwrap();
        db.distance_first(Algorithm::Ir2, &q).unwrap()
    };
    let single = {
        let db = ShardedDb::create_in_dir_replicated(&single_dir, objects, small_config(), 3, 1)
            .unwrap();
        db.distance_first(Algorithm::Ir2, &q).unwrap()
    };
    assert!(same_results(&legacy.results, &single.results));
    // The manifests are the exact same bytes (no `replicas` line at R=1)…
    let mbytes = |d: &std::path::Path| std::fs::read(d.join("SHARDS")).unwrap();
    assert_eq!(mbytes(&legacy_dir), mbytes(&single_dir));
    assert_eq!(
        String::from_utf8(mbytes(&single_dir)).unwrap(),
        "ir2-sharded v1\nshards 3\n"
    );
    // …and the directory layout has no replica indirection.
    assert!(single_dir.join("shard-000/objects.blocks").is_file());
    assert!(!single_dir.join("shard-000/replica-0").exists());
    let layout = shard_layout(&single_dir).unwrap().unwrap();
    assert_eq!((layout.shards, layout.replicas), (3, 1));
    // The data and index files are byte-identical between the two builds
    // (the catalog's shadow-paged epoch slots are not byte-deterministic
    // across builds; its equivalence is covered by the query comparison
    // above).
    for i in 0..3 {
        let shard = format!("shard-{i:03}");
        for name in ["objects.blocks", "rtree.blocks", "ir2.blocks"] {
            assert_eq!(
                std::fs::read(legacy_dir.join(&shard).join(name)).unwrap(),
                std::fs::read(single_dir.join(&shard).join(name)).unwrap(),
                "{shard}/{name}"
            );
        }
    }
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn scrub_detects_and_repairs_a_corrupted_replica() {
    let dir = std::env::temp_dir().join(format!("ir2tree-repl-scrub-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let objects = scatter(150);
    let q = DistanceFirstQuery::new([500.0, 500.0], &["golf"], 5);
    let before = {
        let db = ShardedDb::create_in_dir_replicated(&dir, objects, small_config(), 2, 3).unwrap();
        db.distance_first(Algorithm::Ir2, &q).unwrap()
    };
    // A fresh replicated build scrubs clean.
    let clean = scrub_dir(&dir, false, None).unwrap();
    assert!(clean.clean(), "{:?}", clean.details);
    assert_eq!((clean.shards, clean.replicas), (2, 3));
    assert!(clean.pages > 0);
    assert_eq!(clean.mismatches, 0);
    // Flip one byte deep inside a non-primary replica.
    let victim = dir.join("shard-001/replica-2/rtree.blocks");
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&victim, &bytes).unwrap();
    // Detection without repair leaves the divergence in place.
    let dirty = scrub_dir(&dir, false, None).unwrap();
    assert!(!dirty.clean());
    assert!(dirty.mismatches > 0);
    assert_eq!(dirty.repairs, 0);
    // Repair re-copies from the reference and re-verifies.
    let repaired = scrub_dir(&dir, true, None).unwrap();
    assert!(repaired.clean(), "{:?}", repaired.details);
    assert!(repaired.repairs > 0);
    assert_eq!(scrub_dir(&dir, false, None).unwrap().mismatches, 0);
    // Answers are unchanged end to end.
    let db = ShardedDb::open_dir(&dir).unwrap();
    let after = db.distance_first(Algorithm::Ir2, &q).unwrap();
    assert!(same_results(&before.results, &after.results));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn background_scrubber_runs_and_stops() {
    let dir = std::env::temp_dir().join(format!("ir2tree-repl-bg-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = ShardedDb::create_in_dir_replicated(&dir, scatter(60), small_config(), 2, 2).unwrap();
    let scrubber = db.start_scrubber(Duration::from_millis(5), false).unwrap();
    // The first pass runs immediately; wait for its counter to land.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        if db.metrics_prometheus().contains("scrub_runs_total") {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "scrubber never ran");
        std::thread::sleep(Duration::from_millis(5));
    }
    scrubber.stop();
    let text = db.metrics_prometheus();
    assert!(text.contains("scrub_pages_total"), "{text}");
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// The acceptance property: killing any single replica at any crash point
// mid-query is invisible — the answer equals the single-device oracle.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Doc {
    point: [f64; 2],
    words: Vec<usize>,
}

fn arb_doc() -> impl Strategy<Value = Doc> {
    (
        prop::array::uniform2(-500.0f64..500.0),
        prop::collection::vec(0..WORDS.len(), 1..4),
    )
        .prop_map(|(point, words)| Doc { point, words })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn killing_any_replica_at_any_crash_point_is_invisible(
        docs in prop::collection::vec(arb_doc(), 8..40),
        qpoint in prop::array::uniform2(-600.0f64..600.0),
        kw in 0usize..WORDS.len(),
        k in 1usize..10,
        victim in 0usize..4,
        crash_delta in 0u64..120,
    ) {
        let (victim_shard, victim_replica) = (victim / 2, victim % 2);
        let objects: Vec<SpatialObject<2>> = docs
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let text = d.words.iter().map(|&w| WORDS[w]).collect::<Vec<_>>().join(" ");
                SpatialObject::new(i as u64, d.point, text)
            })
            .collect();
        let q = DistanceFirstQuery::new(qpoint, &[WORDS[kw]], k);
        let mono = SpatialKeywordDb::build(
            DeviceSet::in_memory(), objects.clone(), small_config()).unwrap();
        let expect = mono.distance_first(Algorithm::Ir2, &q).unwrap();

        let (db, kills) = killable_db(objects, 2, 2);
        // Arm the victim to die `crash_delta` device operations into the
        // query (0 = dead before the first read).
        let switch = &kills[victim_shard][victim_replica];
        switch.kill_after(switch.ops() + crash_delta);
        let got = db.distance_first(Algorithm::Ir2, &q).unwrap();
        prop_assert!(
            same_results(&expect.results, &got.results),
            "shard {} replica {} crash {}: {:?} vs {:?}",
            victim_shard, victim_replica, crash_delta,
            expect.results.iter().map(|(o, d)| (o.id, *d)).collect::<Vec<_>>(),
            got.results.iter().map(|(o, d)| (o.id, *d)).collect::<Vec<_>>()
        );
    }
}
