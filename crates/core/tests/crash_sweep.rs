//! Crash-point sweep: replay a build + insert + delete + save_catalog
//! workload with a simulated power cut at *every* I/O index, and assert
//! that reopening the database afterwards either recovers a committed
//! pre-crash state or fails with a clean `StorageError::Corrupt` — never a
//! panic, and never silently wrong results.
//!
//! The torn write alternates between garbling and truncating the in-flight
//! block, so both damage shapes hit every write site in the workload.

use std::sync::Arc;

use ir2tree::geo::{Point, Rect};
use ir2tree::model::{ObjPtr, SpatialObject};
use ir2tree::storage::testing::{CrashPoint, TornWrite, TornWriteDevice};
use ir2tree::storage::{MemDevice, StorageError};
use ir2tree::{Algorithm, DbConfig, DeviceSet, SpatialKeywordDb};

const N_OBJECTS: u64 = 16;
/// Unique marker word of the object the workload inserts after build.
const INSERTED_WORD: &str = "zephyrine";
/// Unique marker word of the object the workload then deletes.
const DELETED_WORD: &str = "quixotume";

fn initial_objects() -> Vec<SpatialObject<2>> {
    (0..N_OBJECTS)
        .map(|i| {
            let marker = if i == 3 { DELETED_WORD } else { "filler" };
            SpatialObject::new(
                i,
                [i as f64, (i * 5 % 11) as f64],
                format!("common {marker} word{i}"),
            )
        })
        .collect()
}

fn config() -> DbConfig {
    DbConfig {
        sig_bytes: 4,
        capacity: Some(4),
        bulk_load: false, // incremental: the sweep crosses every insert path
        ..DbConfig::default()
    }
}

struct RawDevices {
    objects: Arc<MemDevice>,
    rtree: Arc<MemDevice>,
    ir2: Arc<MemDevice>,
    mir2: Arc<MemDevice>,
    inverted: Arc<MemDevice>,
    catalog: Arc<MemDevice>,
}

impl RawDevices {
    fn new() -> Self {
        Self {
            objects: Arc::new(MemDevice::new()),
            rtree: Arc::new(MemDevice::new()),
            ir2: Arc::new(MemDevice::new()),
            mir2: Arc::new(MemDevice::new()),
            inverted: Arc::new(MemDevice::new()),
            catalog: Arc::new(MemDevice::new()),
        }
    }

    fn wrapped(&self, cp: &CrashPoint) -> DeviceSet<TornWriteDevice<Arc<MemDevice>>> {
        DeviceSet {
            objects: cp.wrap(Arc::clone(&self.objects)),
            rtree: cp.wrap(Arc::clone(&self.rtree)),
            ir2: cp.wrap(Arc::clone(&self.ir2)),
            mir2: cp.wrap(Arc::clone(&self.mir2)),
            inverted: cp.wrap(Arc::clone(&self.inverted)),
            catalog: cp.wrap(Arc::clone(&self.catalog)),
        }
    }

    fn raw(&self) -> DeviceSet<Arc<MemDevice>> {
        DeviceSet {
            objects: Arc::clone(&self.objects),
            rtree: Arc::clone(&self.rtree),
            ir2: Arc::clone(&self.ir2),
            mir2: Arc::clone(&self.mir2),
            inverted: Arc::clone(&self.inverted),
            catalog: Arc::clone(&self.catalog),
        }
    }
}

/// Runs the full workload on crash-injected devices. Any step may fail —
/// the sweep only cares that failures are errors, not panics.
fn run_workload(devices: DeviceSet<TornWriteDevice<Arc<MemDevice>>>) {
    let Ok(mut db) = SpatialKeywordDb::build(devices, initial_objects(), config()) else {
        return;
    };

    // Insert an object carrying a unique marker word.
    let inserted = SpatialObject::new(100, [3.5, 3.5], format!("common {INSERTED_WORD} extra"));
    if db.insert(&inserted).is_err() {
        return;
    }

    // Delete the object carrying the other marker word (id 3). Its pointer
    // is recoverable from the store scan.
    let mut victim: Option<ObjPtr> = None;
    let scan = db.object_store().scan(|ptr, obj| {
        if obj.id == 3 {
            victim = Some(ptr);
        }
        Ok(())
    });
    if scan.is_err() {
        return;
    }
    let Some(victim) = victim else { return };
    if db.delete(victim).is_err() {
        return;
    }

    // Commit everything: the catalog flip is the atomic commit point.
    if db.save_catalog().is_err() {
        return;
    }

    // Post-commit tail: more uncommitted work, so that sweep indices after
    // the flip exercise recovery *to* the maintained state (not only back
    // to the post-build one).
    let tail = SpatialObject::new(200, [7.7, 7.7], "common tailword");
    let _ = db.insert(&tail);
}

/// Probes the reopened database: results must correspond to exactly one of
/// the two committed states (post-build, or post-maintenance), never a mix.
fn audit_recovered(db: &SpatialKeywordDb<Arc<MemDevice>>, crash_at: u64) {
    let world = Rect::new(Point::new([-10.0, -10.0]), Point::new([1000.0, 1000.0]));
    let word = |w: &str| vec![w.to_string()];

    let report = db.check_integrity();
    if !report.ok() {
        // The crash tore a block inside the committed image (e.g. the object
        // file's tail block). Detection — not silent corruption — is the
        // contract, and the detector must have named the damage.
        assert!(
            report.structures.iter().any(|s| !s.ok),
            "crash {crash_at}: failed report with no failing structure"
        );
        return;
    }

    let has_inserted = db
        .keyword_window(Algorithm::Ir2, &world, &word(INSERTED_WORD))
        .unwrap_or_else(|e| panic!("crash {crash_at}: probe query failed on clean db: {e}"));
    let has_deleted = db
        .keyword_window(Algorithm::Ir2, &world, &word(DELETED_WORD))
        .unwrap_or_else(|e| panic!("crash {crash_at}: probe query failed on clean db: {e}"));

    match (has_inserted.len(), has_deleted.len()) {
        // Post-build state: insert and delete both rolled back.
        (0, 1) => assert_eq!(db.build_stats().objects, N_OBJECTS),
        // Post-maintenance state: both applied.
        (1, 0) => {
            assert_eq!(has_inserted[0].id, 100);
            assert_eq!(db.build_stats().objects, N_OBJECTS);
        }
        other => {
            panic!("crash {crash_at}: recovered a mixed state (inserted, deleted) hits = {other:?}")
        }
    }
}

#[test]
fn every_crash_point_recovers_or_fails_clean() {
    // Pass 1: count the workload's I/O operations without crashing.
    let counter = CrashPoint::new(u64::MAX, TornWrite::Garbled);
    run_workload(RawDevices::new().wrapped(&counter));
    let total = counter.ops();
    assert!(
        !counter.crashed() && total > 100,
        "workload should run clean and do real I/O, did {total} ops"
    );

    // Pass 2: crash at every index.
    for crash_at in 0..total {
        let mode = if crash_at % 2 == 0 {
            TornWrite::Garbled
        } else {
            TornWrite::Truncated
        };
        let raw = RawDevices::new();
        let cp = CrashPoint::new(crash_at, mode);
        run_workload(raw.wrapped(&cp));
        assert!(cp.crashed(), "crash {crash_at} never fired");

        match SpatialKeywordDb::open(raw.raw()) {
            Ok(db) => audit_recovered(&db, crash_at),
            Err(StorageError::Corrupt(_)) => {} // clean refusal
            Err(e) => panic!("crash {crash_at}: reopen failed with non-corrupt error: {e}"),
        }
    }
}
