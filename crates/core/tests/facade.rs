//! End-to-end tests of the database facade: all four algorithms over one
//! store, I/O accounting, persistence, maintenance.

use ir2tree::model::{DistanceFirstQuery, SpatialObject};
use ir2tree::text::{DecayRank, SaturatingTfIdf};
use ir2tree::{Algorithm, DbConfig, DeviceSet, SpatialKeywordDb};

fn small_config() -> DbConfig {
    DbConfig {
        capacity: Some(8),
        sig_bytes: 8,
        ..DbConfig::default()
    }
}

fn town(n: usize) -> Vec<SpatialObject<2>> {
    // A deterministic grid of businesses with themed keywords.
    let themes = [
        "coffee wifi pastry",
        "pizza delivery late",
        "gym sauna pool",
        "books coffee quiet",
        "bar live music",
        "pharmacy open sunday",
    ];
    (0..n)
        .map(|i| {
            let x = (i % 25) as f64;
            let y = (i / 25) as f64;
            SpatialObject::new(i as u64, [x, y], themes[i % themes.len()])
        })
        .collect()
}

#[test]
fn all_algorithms_agree_on_results() {
    let db = SpatialKeywordDb::build(DeviceSet::in_memory(), town(200), small_config()).unwrap();
    for keywords in [vec!["coffee"], vec!["coffee", "wifi"], vec!["pool"]] {
        let q = DistanceFirstQuery::new([7.3, 3.1], &keywords, 5);
        let reports: Vec<_> = Algorithm::ALL
            .iter()
            .map(|&alg| db.distance_first(alg, &q).unwrap())
            .collect();
        let reference: Vec<f64> = reports[0].results.iter().map(|(_, d)| *d).collect();
        for (alg, rep) in Algorithm::ALL.iter().zip(&reports) {
            let dists: Vec<f64> = rep.results.iter().map(|(_, d)| *d).collect();
            assert_eq!(dists.len(), reference.len(), "{}", alg.label());
            for (a, b) in dists.iter().zip(reference.iter()) {
                assert!((a - b).abs() < 1e-9, "{}: {a} vs {b}", alg.label());
            }
            for (obj, _) in &rep.results {
                assert!(obj.token_set().contains_all(&keywords), "{}", alg.label());
            }
        }
    }
}

#[test]
fn reports_contain_io_accounting() {
    let db = SpatialKeywordDb::build(DeviceSet::in_memory(), town(300), small_config()).unwrap();
    db.reset_io();
    let q = DistanceFirstQuery::new([5.0, 5.0], &["coffee", "wifi"], 10);
    let rep = db.distance_first(Algorithm::Ir2, &q).unwrap();
    assert!(rep.index_io.total() > 0, "tree reads must be counted");
    assert!(rep.object_loads > 0, "verification loads objects");
    assert_eq!(rep.io, rep.index_io + rep.object_io);
    assert!(rep.simulated > std::time::Duration::ZERO);

    // The baseline R-Tree must load at least as many objects for the same
    // query (the paper's core claim).
    let base = db.distance_first(Algorithm::RTree, &q).unwrap();
    assert!(base.object_loads >= rep.object_loads);
}

#[test]
fn general_ranked_queries_work_on_both_trees() {
    let db = SpatialKeywordDb::build(DeviceSet::in_memory(), town(120), small_config()).unwrap();
    let q = ir2tree::irtree::GeneralQuery::new([3.0, 1.0], &["coffee", "music"], 6);
    let scorer = SaturatingTfIdf;
    let rank = DecayRank { scale: 20.0 };
    let a = db
        .general_ranked(Algorithm::Ir2, &q, &scorer, &rank)
        .unwrap();
    let b = db
        .general_ranked(Algorithm::Mir2, &q, &scorer, &rank)
        .unwrap();
    assert_eq!(a.results.len(), b.results.len());
    for (x, y) in a.results.iter().zip(b.results.iter()) {
        assert!((x.score - y.score).abs() < 1e-9);
    }
    assert!(db
        .general_ranked(Algorithm::Iio, &q, &scorer, &rank)
        .is_err());
}

#[test]
fn index_sizes_report_table2_shape() {
    // Paper-scale fanout (block-derived) and Hotels signature length, so
    // IR²/MIR² nodes genuinely spill onto extra blocks.
    let db = SpatialKeywordDb::build(
        DeviceSet::in_memory(),
        town(500),
        DbConfig {
            capacity: None,
            sig_bytes: 189,
            ..DbConfig::default()
        },
    )
    .unwrap();
    let sizes = db.index_sizes();
    assert!(sizes.rtree > 0 && sizes.iio > 0);
    // Signatures make the IR²-Tree strictly larger than the R-Tree, and the
    // MIR²-Tree at least as large as the IR²-Tree (longer upper levels).
    assert!(
        sizes.ir2 > sizes.rtree,
        "ir2 {} rtree {}",
        sizes.ir2,
        sizes.rtree
    );
    assert!(
        sizes.mir2 >= sizes.ir2,
        "mir2 {} ir2 {}",
        sizes.mir2,
        sizes.ir2
    );
}

#[test]
fn build_stats_match_input() {
    let objs = town(150);
    let db = SpatialKeywordDb::build(DeviceSet::in_memory(), objs, small_config()).unwrap();
    let stats = db.build_stats();
    assert_eq!(stats.objects, 150);
    assert!(stats.avg_unique_words >= 3.0 && stats.avg_unique_words <= 4.0);
    assert!(stats.avg_blocks_per_object >= 1.0);
    assert!(stats.unique_words > 10);
}

#[test]
fn insert_and_delete_maintain_all_trees() {
    let mut db = SpatialKeywordDb::build(DeviceSet::in_memory(), town(60), small_config()).unwrap();
    let new_obj = SpatialObject::new(999, [2.0, 2.0], "secret speakeasy coffee");
    let ptr = db.insert(&new_obj).unwrap();

    let q = DistanceFirstQuery::new([2.0, 2.0], &["speakeasy"], 1);
    for alg in [Algorithm::RTree, Algorithm::Ir2, Algorithm::Mir2] {
        let rep = db.distance_first(alg, &q).unwrap();
        assert_eq!(rep.results.len(), 1, "{}", alg.label());
        assert_eq!(rep.results[0].0.id, 999);
    }

    assert!(db.delete(ptr).unwrap());
    for alg in [Algorithm::RTree, Algorithm::Ir2, Algorithm::Mir2] {
        let rep = db.distance_first(alg, &q).unwrap();
        assert!(rep.results.is_empty(), "{}", alg.label());
    }
    assert!(!db.delete(ptr).unwrap(), "double delete reports absence");
}

#[test]
fn incremental_build_matches_bulk_build() {
    let objs = town(180);
    let bulk =
        SpatialKeywordDb::build(DeviceSet::in_memory(), objs.clone(), small_config()).unwrap();
    let incr = SpatialKeywordDb::build(
        DeviceSet::in_memory(),
        objs,
        small_config().with_incremental_build(),
    )
    .unwrap();
    let q = DistanceFirstQuery::new([11.0, 4.0], &["pizza"], 7);
    for alg in [
        Algorithm::RTree,
        Algorithm::Ir2,
        Algorithm::Mir2,
        Algorithm::Iio,
    ] {
        let a = bulk.distance_first(alg, &q).unwrap();
        let b = incr.distance_first(alg, &q).unwrap();
        let da: Vec<f64> = a.results.iter().map(|(_, d)| *d).collect();
        let db_: Vec<f64> = b.results.iter().map(|(_, d)| *d).collect();
        assert_eq!(da.len(), db_.len(), "{}", alg.label());
        for (x, y) in da.iter().zip(db_.iter()) {
            assert!((x - y).abs() < 1e-9);
        }
    }
}

#[test]
fn persistence_roundtrip_on_disk() {
    let dir = std::env::temp_dir().join(format!("ir2tree-facade-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let q = DistanceFirstQuery::new([5.0, 2.0], &["coffee", "quiet"], 4);
    let before = {
        let devices = DeviceSet::create_in_dir(&dir).unwrap();
        let db = SpatialKeywordDb::build(devices, town(100), small_config()).unwrap();
        db.distance_first(Algorithm::Ir2, &q).unwrap()
    };
    let devices = DeviceSet::open_dir(&dir).unwrap();
    let db = SpatialKeywordDb::open(devices).unwrap();
    for alg in Algorithm::ALL {
        let after = db.distance_first(alg, &q).unwrap();
        assert_eq!(after.results.len(), before.results.len(), "{}", alg.label());
        for ((a, da), (b, db_)) in after.results.iter().zip(before.results.iter()) {
            assert_eq!(a.id, b.id);
            assert!((da - db_).abs() < 1e-9);
        }
    }
    assert_eq!(db.build_stats().objects, 100);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_catalog_vocabulary_is_reported_as_corrupt() {
    use ir2tree::storage::{FileDevice, ShadowPair};

    let dir = std::env::temp_dir().join(format!("ir2tree-vocab-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let devices = DeviceSet::create_in_dir(&dir).unwrap();
        SpatialKeywordDb::build(devices, town(50), small_config()).unwrap();
    }
    // Rewrite the catalog with the vocabulary chunk truncated mid-record —
    // going through the shadow pair, so page checksums stay valid. This
    // models logical corruption (an encoder bug, a partial copy), which
    // CRCs cannot catch; only the decoder's own structural validation can.
    {
        let (pair, payload) =
            ShadowPair::open(FileDevice::open(dir.join("catalog.blocks")).unwrap()).unwrap();
        let mut chunks: Vec<Vec<u8>> = Vec::new();
        let mut pos = 0;
        while pos < payload.len() {
            let len = u32::from_le_bytes(payload[pos..pos + 4].try_into().unwrap()) as usize;
            chunks.push(payload[pos + 4..pos + 4 + len].to_vec());
            pos += 4 + len;
        }
        assert_eq!(
            chunks.len(),
            4,
            "catalog layout: config, vocab, dict, stats"
        );
        let cut = chunks[1].len() - 3;
        chunks[1].truncate(cut);
        let mut rewritten = Vec::new();
        for c in &chunks {
            rewritten.extend_from_slice(&(c.len() as u32).to_le_bytes());
            rewritten.extend_from_slice(c);
        }
        pair.save(&rewritten).unwrap();
    }
    let msg = match SpatialKeywordDb::open(DeviceSet::open_dir(&dir).unwrap()) {
        Ok(_) => panic!("opening a vocab-corrupt catalog must fail"),
        Err(e) => e.to_string(),
    };
    // The error is a typed Corrupt naming the structure and the byte
    // offset of the damage — not a silent `None` that loses the database.
    assert!(msg.contains("catalog vocabulary"), "{msg}");
    assert!(msg.contains("vocabulary corrupt at byte"), "{msg}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn empty_build_is_rejected() {
    assert!(SpatialKeywordDb::build(DeviceSet::in_memory(), vec![], small_config()).is_err());
}

#[test]
fn k_zero_and_oversized_k() {
    let db = SpatialKeywordDb::build(DeviceSet::in_memory(), town(30), small_config()).unwrap();
    let q0 = DistanceFirstQuery::new([0.0, 0.0], &["coffee"], 0);
    assert!(db
        .distance_first(Algorithm::Ir2, &q0)
        .unwrap()
        .results
        .is_empty());
    let qbig = DistanceFirstQuery::new([0.0, 0.0], &["coffee"], 10_000);
    let rep = db.distance_first(Algorithm::Ir2, &qbig).unwrap();
    // 2 of 6 themes contain "coffee": 10 objects.
    assert_eq!(rep.results.len(), 10);
}
