#![warn(missing_docs)]
//! # ir2tree — Keyword Search on Spatial Databases
//!
//! A complete Rust implementation of *"Keyword Search on Spatial
//! Databases"* (De Felipe, Hristidis, Rishe — ICDE 2008): the **IR²-Tree**
//! and **MIR²-Tree** indexes, the incremental top-k spatial keyword query
//! algorithms, both baselines the paper compares against (plain R-Tree and
//! Inverted-Index-Only), and the disk simulation its evaluation is
//! expressed in (4 KiB blocks, random vs. sequential access counting).
//!
//! ## Quick start
//!
//! ```
//! use ir2tree::{Algorithm, DbConfig, DeviceSet, SpatialKeywordDb};
//! use ir2tree::model::{DistanceFirstQuery, SpatialObject};
//!
//! // Three points of interest.
//! let objects = vec![
//!     SpatialObject::new(1, [25.4, -80.1], "coffee wifi patio"),
//!     SpatialObject::new(2, [25.5, -80.2], "coffee drive through"),
//!     SpatialObject::new(3, [25.6, -80.0], "tapas bar wifi"),
//! ];
//! let db = SpatialKeywordDb::build(DeviceSet::in_memory(), objects, DbConfig::default())
//!     .unwrap();
//!
//! // Nearest object to (25.45, -80.15) containing both keywords:
//! let q = DistanceFirstQuery::new([25.45, -80.15], &["coffee", "wifi"], 1);
//! let report = db.distance_first(Algorithm::Ir2, &q).unwrap();
//! assert_eq!(report.results[0].0.id, 1);
//! // Every query reports its simulated disk I/O:
//! assert!(report.io.total() > 0);
//! ```
//!
//! The facade [`SpatialKeywordDb`] builds all four structures over one
//! object file so any query can be answered by any algorithm and their
//! I/O compared — exactly the paper's experimental setup. The underlying
//! crates are re-exported for direct use ([`irtree`], [`rtree`],
//! [`invindex`], [`sigfile`], [`storage`], [`text`], [`geo`], [`model`]).

mod config;
mod db;
mod report;
pub mod scrub;
mod shard;

pub use config::DbConfig;
pub use db::{DeviceSet, IntegrityReport, SpatialKeywordDb, StructureCheck};
pub use report::{
    Algorithm, BatchReport, BuildStats, GeneralReport, IndexSizes, QueryError, QueryReport,
};
pub use scrub::{scrub_dir, ScrubReport, Scrubber};
pub use shard::{
    shard_layout, sharded_manifest, ReplicaSet, ShardLayout, ShardedDb, SHARD_MANIFEST,
};

pub use ir2_model::{ExecOutcome, QueryLimits, TruncateReason};
pub use ir2_storage::{RetryDevice, RetryPolicy};

pub use ir2_geo as geo;
pub use ir2_invindex as invindex;
pub use ir2_irtree as irtree;
pub use ir2_model as model;
pub use ir2_rtree as rtree;
pub use ir2_sigfile as sigfile;
pub use ir2_storage as storage;
pub use ir2_text as text;
