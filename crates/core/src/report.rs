//! Query reports: results plus the measurements the paper's figures plot.

use std::fmt;
use std::time::Duration;

use ir2_irtree::{ScoredResult, SearchCounters, TraceStats};
use ir2_model::{SpatialObject, TruncateReason};
use ir2_storage::{HistogramSummary, IoSnapshot, StorageError};

/// Which access method answers a query — the four contenders of Section 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Plain R-Tree + post-filter (baseline 1).
    RTree,
    /// Inverted Index Only (baseline 2).
    Iio,
    /// The IR²-Tree.
    Ir2,
    /// The MIR²-Tree.
    Mir2,
}

impl Algorithm {
    /// All four, in the paper's presentation order.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::RTree,
        Algorithm::Iio,
        Algorithm::Ir2,
        Algorithm::Mir2,
    ];

    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::RTree => "R-Tree",
            Algorithm::Iio => "IIO",
            Algorithm::Ir2 => "IR2-Tree",
            Algorithm::Mir2 => "MIR2-Tree",
        }
    }

    /// Short lowercase identifier, used as the `alg` label value in
    /// metrics and as the CLI's `--alg` argument.
    pub fn key(&self) -> &'static str {
        match self {
            Algorithm::RTree => "rtree",
            Algorithm::Iio => "iio",
            Algorithm::Ir2 => "ir2",
            Algorithm::Mir2 => "mir2",
        }
    }
}

/// The outcome of one distance-first query: results plus every metric the
/// paper's evaluation reports.
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// `(object, distance)` in ascending distance.
    pub results: Vec<(SpatialObject<2>, f64)>,
    /// Block accesses on the index structure used.
    pub index_io: IoSnapshot,
    /// Block accesses on the object file.
    pub object_io: IoSnapshot,
    /// Combined block accesses (what Figures 9b/12b plot).
    pub io: IoSnapshot,
    /// Objects loaded (Figures 11b/14b plot object accesses).
    pub object_loads: u64,
    /// Traversal counters (nodes read, signature prunes, false positives).
    pub counters: SearchCounters,
    /// Trace-derived pruning statistics: per-level signature tallies, heap
    /// growth, entry scans. Always collected (the folding sink is cheap);
    /// definitionally consistent with `counters` — see
    /// [`TraceStats::matches_counters`].
    pub pruning: TraceStats,
    /// Simulated disk time under the configured cost model — the
    /// hardware-independent stand-in for the paper's execution time.
    pub simulated: Duration,
    /// Wall-clock time of the in-memory run (CPU-bound component).
    pub wall: Duration,
    /// `None` when the query ran to completion; otherwise the execution
    /// limit that truncated it. A truncated report's `results` are still
    /// the exact top-m prefix of the full answer (empty for IIO, which
    /// degrades all-or-nothing).
    pub outcome: Option<TruncateReason>,
    /// Transient device faults absorbed by retry while this query ran
    /// (attributed thread-locally; 0 when the devices have no retry layer).
    pub retries: u64,
    /// Total time the query spent sleeping in retry backoff.
    pub backoff: Duration,
}

/// Why one query in a fault-isolated batch
/// ([`SpatialKeywordDb::batch_topk_isolated`](crate::SpatialKeywordDb::batch_topk_isolated))
/// failed. Failures are per-query: siblings in the batch are unaffected.
#[derive(Debug)]
pub enum QueryError {
    /// The storage layer returned an error retries could not absorb.
    Storage(StorageError),
    /// The query panicked; carries the panic payload's message.
    Panic(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Storage(e) => write!(f, "storage error: {e}"),
            QueryError::Panic(msg) => write!(f, "query panicked: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Storage(e) => Some(e),
            QueryError::Panic(_) => None,
        }
    }
}

impl From<StorageError> for QueryError {
    fn from(e: StorageError) -> Self {
        QueryError::Storage(e)
    }
}

/// The outcome of a general (ranked) top-k query.
#[derive(Debug, Clone)]
pub struct GeneralReport {
    /// Results in non-increasing combined-score order.
    pub results: Vec<ScoredResult<2>>,
    /// Combined block accesses.
    pub io: IoSnapshot,
    /// Objects loaded.
    pub object_loads: u64,
    /// Simulated disk time.
    pub simulated: Duration,
    /// Wall-clock time.
    pub wall: Duration,
}

/// The outcome of a concurrent batch of distance-first queries.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-query results, in input order.
    pub results: Vec<Vec<(SpatialObject<2>, f64)>>,
    /// Aggregate block accesses of the whole batch (per-query attribution
    /// is meaningless under concurrency).
    pub io: IoSnapshot,
    /// Distribution of per-query **total block accesses** across the
    /// batch (each query's count observed once, thread-locally attributed
    /// via `IoScope`).
    pub io_per_query: HistogramSummary,
    /// Distribution of per-query **object loads** across the batch.
    pub loads_per_query: HistogramSummary,
    /// Trace-derived pruning statistics summed over all queries in the
    /// batch (folded after the concurrent phase — no contention).
    pub pruning: TraceStats,
    /// Simulated disk time for the aggregate I/O.
    pub simulated: Duration,
    /// Wall-clock time of the batch.
    pub wall: Duration,
}

/// Sizes of every structure in bytes — the reproduction of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexSizes {
    /// Inverted index (postings + dictionary).
    pub iio: u64,
    /// Plain R-Tree.
    pub rtree: u64,
    /// IR²-Tree.
    pub ir2: u64,
    /// MIR²-Tree.
    pub mir2: u64,
    /// The object file itself (Table 1's dataset size).
    pub objects: u64,
}

impl IndexSizes {
    /// Formats a size in MB with one decimal, as the paper's tables do.
    pub fn mb(bytes: u64) -> f64 {
        bytes as f64 / 1_048_576.0
    }
}

/// Statistics recorded while building the database — the reproduction of
/// Table 1's columns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuildStats {
    /// Total number of objects.
    pub objects: u64,
    /// Average distinct words per object.
    pub avg_unique_words: f64,
    /// Vocabulary size.
    pub unique_words: u64,
    /// Object file bytes.
    pub object_file_bytes: u64,
    /// Average disk blocks spanned per object record.
    pub avg_blocks_per_object: f64,
    /// Wall time spent building all four structures.
    pub build_time: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_labels_match_the_paper() {
        assert_eq!(Algorithm::ALL.len(), 4);
        let labels: Vec<&str> = Algorithm::ALL.iter().map(|a| a.label()).collect();
        assert_eq!(labels, ["R-Tree", "IIO", "IR2-Tree", "MIR2-Tree"]);
    }

    #[test]
    fn megabyte_conversion() {
        assert_eq!(IndexSizes::mb(0), 0.0);
        assert_eq!(IndexSizes::mb(1_048_576), 1.0);
        assert!((IndexSizes::mb(55_200_000) - 52.64).abs() < 0.01);
    }
}
