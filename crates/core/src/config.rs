//! Database configuration.

use ir2_storage::{CostModel, Result, StorageError};

/// Configuration of a [`SpatialKeywordDb`](crate::SpatialKeywordDb),
/// mirroring the knobs the paper's experiments turn.
#[derive(Debug, Clone, PartialEq)]
pub struct DbConfig {
    /// Node capacity override; `None` derives the fanout that packs a
    /// plain R-Tree node into one 4 KiB block (the paper's method).
    pub capacity: Option<usize>,
    /// Leaf signature length in bytes (the paper's `r`: 189 B for Hotels,
    /// 8 B for Restaurants).
    pub sig_bytes: usize,
    /// Signature bits set per word.
    pub sig_k: u32,
    /// Hash seed for signatures.
    pub seed: u64,
    /// Build trees by STR bulk loading (fast; default) instead of repeated
    /// insertion (the paper's method, exercised by the maintenance
    /// experiments).
    pub bulk_load: bool,
    /// Disk cost model used to convert I/O counts into simulated time.
    pub cost_model: CostModel,
    /// Apply the paper's literal MIR²-Tree maintenance rule (recompute all
    /// ancestor signatures from objects on every insert).
    pub mir_strict: bool,
    /// Expected distinct words per object, used to size the MIR²-Tree's
    /// per-level schemes; `None` measures it from the data while building.
    pub avg_words_hint: Option<f64>,
    /// Decoded-node cache capacity per tree, in nodes (0 disables the
    /// cache). Warm traversals then skip checksum verification and entry
    /// decoding; per-tree mutation epochs keep cached images fresh.
    pub node_cache: usize,
    /// Frontier-prefetch worker threads per query (0 disables prefetch;
    /// requires `node_cache > 0` to have any effect).
    pub prefetch: usize,
}

impl Default for DbConfig {
    fn default() -> Self {
        Self {
            capacity: None,
            sig_bytes: 16,
            sig_k: 4,
            seed: 0xC0FFEE,
            bulk_load: true,
            cost_model: CostModel::HDD_10K,
            mir_strict: false,
            avg_words_hint: None,
            node_cache: 0,
            prefetch: 0,
        }
    }
}

impl DbConfig {
    /// The paper's Hotels experiment configuration (189-byte signatures).
    pub fn hotels() -> Self {
        Self {
            sig_bytes: 189,
            ..Self::default()
        }
    }

    /// The paper's Restaurants experiment configuration (8-byte
    /// signatures).
    pub fn restaurants() -> Self {
        Self {
            sig_bytes: 8,
            ..Self::default()
        }
    }

    /// Sets the leaf signature length (builder style).
    pub fn with_sig_bytes(mut self, bytes: usize) -> Self {
        self.sig_bytes = bytes;
        self
    }

    /// Sets the node capacity (builder style).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = Some(capacity);
        self
    }

    /// Selects insertion-based construction (builder style).
    pub fn with_incremental_build(mut self) -> Self {
        self.bulk_load = false;
        self
    }

    /// Sets the decoded-node cache capacity in nodes, 0 to disable
    /// (builder style).
    pub fn with_node_cache(mut self, nodes: usize) -> Self {
        self.node_cache = nodes;
        self
    }

    /// Sets the frontier-prefetch worker count, 0 to disable (builder
    /// style).
    pub fn with_prefetch(mut self, workers: usize) -> Self {
        self.prefetch = workers;
        self
    }

    /// Serializes the configuration for the catalog.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(40);
        out.extend_from_slice(&(self.capacity.unwrap_or(0) as u32).to_le_bytes());
        out.extend_from_slice(&(self.sig_bytes as u32).to_le_bytes());
        out.extend_from_slice(&self.sig_k.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.push(self.bulk_load as u8);
        out.push(self.mir_strict as u8);
        out.extend_from_slice(&(self.cost_model.random_access.as_micros() as u64).to_le_bytes());
        out.extend_from_slice(
            &(self.cost_model.sequential_access.as_micros() as u64).to_le_bytes(),
        );
        out.extend_from_slice(&self.avg_words_hint.unwrap_or(0.0).to_le_bytes());
        out.extend_from_slice(&(self.node_cache as u32).to_le_bytes());
        out.extend_from_slice(&(self.prefetch as u32).to_le_bytes());
        out
    }

    /// Deserializes a configuration written by [`DbConfig::encode`].
    pub fn decode(buf: &[u8]) -> Result<Self> {
        if buf.len() < 46 {
            return Err(StorageError::Corrupt("config record too short".into()));
        }
        let capacity = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")) as usize;
        let sig_bytes = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes")) as usize;
        let sig_k = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
        let seed = u64::from_le_bytes(buf[12..20].try_into().expect("8 bytes"));
        let bulk_load = buf[20] != 0;
        let mir_strict = buf[21] != 0;
        let rand_us = u64::from_le_bytes(buf[22..30].try_into().expect("8 bytes"));
        let seq_us = u64::from_le_bytes(buf[30..38].try_into().expect("8 bytes"));
        let hint = f64::from_le_bytes(buf[38..46].try_into().expect("8 bytes"));
        // Cache knobs were appended later; records written before them
        // decode to the old behavior (cache and prefetch off).
        let read_u32_or0 = |at: usize| {
            buf.get(at..at + 4)
                .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")) as usize)
                .unwrap_or(0)
        };
        let node_cache = read_u32_or0(46);
        let prefetch = read_u32_or0(50);
        Ok(Self {
            capacity: (capacity != 0).then_some(capacity),
            sig_bytes,
            sig_k,
            seed,
            bulk_load,
            mir_strict,
            cost_model: CostModel {
                random_access: std::time::Duration::from_micros(rand_us),
                sequential_access: std::time::Duration::from_micros(seq_us),
            },
            avg_words_hint: (hint != 0.0).then_some(hint),
            node_cache,
            prefetch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_signature_length() {
        assert_eq!(DbConfig::hotels().sig_bytes, 189);
        assert_eq!(DbConfig::restaurants().sig_bytes, 8);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let cfg = DbConfig::hotels()
            .with_capacity(113)
            .with_incremental_build()
            .with_node_cache(4096)
            .with_prefetch(3);
        let back = DbConfig::decode(&cfg.encode()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn decode_tolerates_records_without_cache_knobs() {
        // A record truncated at the pre-cache length (46 bytes) must still
        // decode, with both knobs defaulting to off.
        let cfg = DbConfig::restaurants()
            .with_node_cache(512)
            .with_prefetch(2);
        let old = &cfg.encode()[..46];
        let back = DbConfig::decode(old).unwrap();
        assert_eq!(back.node_cache, 0);
        assert_eq!(back.prefetch, 0);
        assert_eq!(back.sig_bytes, cfg.sig_bytes);
    }

    #[test]
    fn decode_rejects_short_buffers() {
        assert!(DbConfig::decode(&[0u8; 10]).is_err());
    }
}
