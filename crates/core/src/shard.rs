//! Spatially sharded database: S independent [`SpatialKeywordDb`] shards
//! behind one exact scatter-gather top-k engine.
//!
//! ## Partitioning
//!
//! At build time the object set is tiled in STR order (the same
//! sort-tile-recursive discipline the bulk loader uses inside one tree):
//! objects are sorted on x, cut into √S̄ vertical slabs, each slab sorted on
//! y and cut again, yielding S spatially coherent tiles of near-equal
//! cardinality. Each tile becomes a fully independent shard — its own
//! devices, buffer pool, decoded-node cache, vocabulary, and metrics — so
//! shards share **no** locks on the query path.
//!
//! ## Exact merge (no fetch-k-from-every-shard over-read)
//!
//! Every shard exposes an *incremental* distance-first iterator whose
//! frontier-heap minimum ([`frontier_bound`](
//! ir2_irtree::DistanceFirstIter::frontier_bound)) lower-bounds everything
//! the shard can still emit. The merge keeps a global heap of shards keyed
//! by `max(MINDIST(query, shard MBR), frontier bound)` and always steps the
//! shard with the smallest bound; it stops the moment the current k-th
//! distance beats every remaining bound (strictly — ties at the k-th
//! distance keep pulling, so the canonical `(distance, id)` answer is
//! exact). A shard whose MBR is farther than the k-th result is never
//! touched at all: its bound is known from the catalog without any I/O.
//!
//! Soundness: a best-first frontier minimum is non-decreasing and MINDIST
//! lower-bounds everything inside an MBR, so `bound(shard)` ≤ distance of
//! every future emission of that shard; when `min over shards of bound` >
//! k-th distance, no shard can improve the answer. This is the standard
//! branch-and-bound argument, applied across trees instead of within one.
//!
//! ## Replication, failover, and hedging
//!
//! Every shard may be backed by R byte-identical replicas (`shard-NNN/
//! replica-M/` directories; replicas are verified block-for-block at build
//! time). At query time a [`ReplicaSet`] routes each shard's pull to a
//! healthy replica; when a replica returns a [`StorageError`] (a dead
//! device, or its retry layer's circuit breaker tripping into
//! `Quarantined`), the merge **fails over**: it re-issues that shard's
//! bounded pull against the next replica, restarted from the root under
//! the *surviving* limit slice — the deadline is an absolute instant so it
//! carries over unchanged, and the shard's I/O-budget slice is reduced by
//! what the dead attempt consumed. Results stay exact because a restart
//! re-emits a superset of the dead attempt's hits ([`TopK`] deduplicates
//! by object id) and the truncation cut-radius machinery already makes
//! partial traversals honest.
//!
//! Hedged reads ([`ShardedDb::distance_first_hedged`]) cut tail latency
//! under *stalls* rather than faults: each shard's drain starts on the
//! primary replica, and if it has not completed after the hedge delay a
//! second replica drains the same shard concurrently; the first complete
//! drain wins and the loser is cancelled cooperatively at its next bounded
//! step. Both drains insert into the shared top-k, which is sound for the
//! same dedup reason.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use ir2_geo::{OrderedF64, Rect};
use ir2_invindex::iio_topk_limited;
use ir2_irtree::{BoundedStep, DistanceFirstIter, RtreeBaselineIter, SearchCounters, TraceStats};
use ir2_model::{
    DistanceFirstQuery, ExecOutcome, ObjectSource, QueryLimits, SpatialObject, TruncateReason,
};
use ir2_storage::{
    BlockDevice, FileDevice, IoScope, IoSnapshot, MemDevice, MetricsRegistry, Result, RetryScope,
    StorageError,
};

use crate::db::{run_batch, run_batch_isolated, CountingSource};
use crate::report::QueryError;
use crate::{Algorithm, DbConfig, DeviceSet, QueryReport, SpatialKeywordDb};

/// Name of the manifest file marking a directory as a sharded database.
pub const SHARD_MANIFEST: &str = "SHARDS";

/// On-disk layout of a sharded database, as recorded in its manifest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardLayout {
    /// Number of shards (STR tiles).
    pub shards: usize,
    /// Replicas per shard. `1` means the pre-replication layout: shard
    /// devices live directly in `shard-NNN/`, with no `replica-M/` level
    /// and no `replicas` manifest line — byte-identical to what older
    /// builds wrote.
    pub replicas: usize,
}

impl ShardLayout {
    /// Directory of shard `i` under `root`.
    pub fn shard_dir(&self, root: &Path, i: usize) -> PathBuf {
        root.join(shard_dir_name(i))
    }

    /// Device directories of every replica of shard `i`, in replica order.
    /// With one replica this is the shard directory itself (see
    /// [`replicas`](Self::replicas)).
    pub fn replica_dirs(&self, root: &Path, i: usize) -> Vec<PathBuf> {
        let shard = self.shard_dir(root, i);
        if self.replicas == 1 {
            vec![shard]
        } else {
            (0..self.replicas)
                .map(|m| shard.join(replica_dir_name(m)))
                .collect()
        }
    }
}

/// Reads the full shard layout of `dir`, if a manifest exists.
///
/// `Ok(None)` means the directory is not a sharded database (no manifest);
/// a present-but-malformed manifest is a [`StorageError::Corrupt`]. The
/// `replicas R` line is optional and defaults to 1 (older manifests
/// predate replication).
pub fn shard_layout<P: AsRef<Path>>(dir: P) -> Result<Option<ShardLayout>> {
    let path = dir.as_ref().join(SHARD_MANIFEST);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut lines = text.lines();
    if lines.next().map(str::trim) != Some("ir2-sharded v1") {
        return Err(StorageError::Corrupt(
            "shard manifest: bad or missing header (expected `ir2-sharded v1`)".into(),
        ));
    }
    let mut shards = None;
    let mut replicas = 1usize;
    for line in lines {
        if let Some(n) = line.trim().strip_prefix("shards ") {
            let count: usize = n.trim().parse().map_err(|_| {
                StorageError::Corrupt(format!("shard manifest: bad shard count `{n}`"))
            })?;
            if count == 0 {
                return Err(StorageError::Corrupt(
                    "shard manifest: shard count must be at least 1".into(),
                ));
            }
            shards = Some(count);
        } else if let Some(n) = line.trim().strip_prefix("replicas ") {
            let count: usize = n.trim().parse().map_err(|_| {
                StorageError::Corrupt(format!("shard manifest: bad replica count `{n}`"))
            })?;
            if count == 0 {
                return Err(StorageError::Corrupt(
                    "shard manifest: replica count must be at least 1".into(),
                ));
            }
            replicas = count;
        }
    }
    match shards {
        Some(shards) => Ok(Some(ShardLayout { shards, replicas })),
        None => Err(StorageError::Corrupt(
            "shard manifest: missing `shards N` line".into(),
        )),
    }
}

/// Reads the shard count of `dir`'s manifest, if one exists.
///
/// `Ok(None)` means the directory is not a sharded database. This is how
/// the CLI decides whether to route a path to [`ShardedDb`] or to the
/// monolithic [`SpatialKeywordDb`]; see [`shard_layout`] for the replica
/// count as well.
pub fn sharded_manifest<P: AsRef<Path>>(dir: P) -> Result<Option<usize>> {
    Ok(shard_layout(dir)?.map(|l| l.shards))
}

fn shard_dir_name(i: usize) -> String {
    format!("shard-{i:03}")
}

fn replica_dir_name(m: usize) -> String {
    format!("replica-{m}")
}

/// Tiles `objects` into `s` STR-ordered partitions of near-equal size:
/// sort on x, cut into ⌈√s⌉ slabs (shard counts distributed round-robin),
/// sort each slab on y, cut per slab. Ties (coincident points) break on
/// id so the tiling is deterministic.
fn str_partition(mut objects: Vec<SpatialObject<2>>, s: usize) -> Vec<Vec<SpatialObject<2>>> {
    debug_assert!(s >= 1);
    if s == 1 {
        return vec![objects];
    }
    objects.sort_by(|a, b| {
        a.point
            .coord(0)
            .total_cmp(&b.point.coord(0))
            .then(a.point.coord(1).total_cmp(&b.point.coord(1)))
            .then(a.id.cmp(&b.id))
    });
    let cols = (s as f64).sqrt().ceil() as usize;
    let (base, extra) = (s / cols, s % cols);
    let mut out = Vec::with_capacity(s);
    let mut shards_left = s;
    let mut rest = objects;
    for c in 0..cols {
        let col_shards = base + usize::from(c < extra);
        // Objects proportional to this slab's shard share; exact at the end.
        let col_n = rest.len() * col_shards / shards_left;
        shards_left -= col_shards;
        let mut slab: Vec<SpatialObject<2>> = rest.drain(..col_n).collect();
        slab.sort_by(|a, b| {
            a.point
                .coord(1)
                .total_cmp(&b.point.coord(1))
                .then(a.point.coord(0).total_cmp(&b.point.coord(0)))
                .then(a.id.cmp(&b.id))
        });
        let (tile_base, tile_extra) = (slab.len() / col_shards, slab.len() % col_shards);
        let mut slab_rest = slab;
        for t in 0..col_shards {
            let tile_n = tile_base + usize::from(t < tile_extra);
            out.push(slab_rest.drain(..tile_n).collect());
        }
        debug_assert!(slab_rest.is_empty());
    }
    debug_assert!(rest.is_empty());
    debug_assert_eq!(out.len(), s);
    out
}

/// Bounding rectangle of a partition (`None` when empty).
fn rect_of(objects: &[SpatialObject<2>]) -> Option<Rect<2>> {
    let mut it = objects.iter();
    let mut r = Rect::from_point(it.next()?.point);
    for o in it {
        r.union_in_place(&Rect::from_point(o.point));
    }
    Some(r)
}

/// Bounding rectangle of a shard's R-Tree (union of root entry MBRs), for
/// reopened databases where the build-time partition is not in memory.
fn tree_mbr<D: BlockDevice + 'static>(db: &SpatialKeywordDb<D>) -> Result<Option<Rect<2>>> {
    let tree = db.rtree();
    let Some(root) = tree.root() else {
        return Ok(None);
    };
    let (node, _) = tree.read_node_cached(root)?;
    if node.is_empty() {
        return Ok(None);
    }
    Ok(Some(node.mbr()))
}

/// Splits one query's limits across `s` shards: the **deadline** is shared
/// (every shard races the same wall-clock instant, like a batch — it is an
/// absolute instant, so it is never divided and can never round to zero),
/// the **I/O budget** is divided evenly (remainder to the first shards),
/// and the **frontier cap** applies per shard (each shard runs its own
/// heap).
///
/// Every live shard's slice is floored at 1: a budget smaller than the
/// shard count used to hand trailing shards a 0-block slice, truncating
/// them before they could report even their root bound. The floor means a
/// tiny budget may overspend by at most `s − 1` blocks in total; when the
/// budget is at least `s`, the slices sum exactly to the budget.
fn split_limits(limits: &QueryLimits, s: usize) -> Vec<QueryLimits> {
    (0..s as u64)
        .map(|i| QueryLimits {
            deadline: limits.deadline,
            io_budget: limits
                .io_budget
                .map(|b| (b / s as u64 + u64::from(i < b % s as u64)).max(1)),
            max_heap_size: limits.max_heap_size,
        })
        .collect()
}

// ---------------------------------------------------------------------
// Per-shard iterator plumbing.
// ---------------------------------------------------------------------

/// One shard's incremental distance-first iterator, algorithm-erased. IIO
/// is not here: it is non-incremental and merges per-shard *results*.
enum ShardIter<'a, D: BlockDevice + 'static> {
    RTree(RtreeBaselineIter<'a, 2, ir2_storage::TrackedDevice<D>>),
    Ir2(DistanceFirstIter<'a, 2, ir2_storage::TrackedDevice<D>, ir2_irtree::Ir2Payload>),
    Mir2(DistanceFirstIter<'a, 2, ir2_storage::TrackedDevice<D>, ir2_irtree::MirPayload<2>>),
}

impl<'a, D: BlockDevice + 'static> ShardIter<'a, D> {
    fn open(
        shard: &'a SpatialKeywordDb<D>,
        src: &'a CountingSource<'a, 2>,
        alg: Algorithm,
        query: &DistanceFirstQuery<2>,
        limits: QueryLimits,
    ) -> Self {
        match alg {
            Algorithm::RTree => {
                Self::RTree(RtreeBaselineIter::new(shard.rtree(), src, query).limited(limits))
            }
            Algorithm::Ir2 => Self::Ir2(
                DistanceFirstIter::new(shard.ir2_tree(), src, query.clone()).limited(limits),
            ),
            Algorithm::Mir2 => Self::Mir2(
                DistanceFirstIter::new(shard.mir2_tree(), src, query.clone()).limited(limits),
            ),
            Algorithm::Iio => unreachable!("IIO merges per-shard results, not iterators"),
        }
    }

    /// Bounded step: advance only while the shard's frontier head is ≤
    /// `limit` (see [`DistanceFirstIter::next_within`]). The merge passes
    /// the tightest bound it holds — the next-best shard's bound or the
    /// current k-th distance — so a shard never descends toward a result
    /// the merge would discard.
    fn next_hit_within(&mut self, limit: f64) -> Result<BoundedStep<2>> {
        match self {
            Self::RTree(it) => it.next_within(limit),
            Self::Ir2(it) => it.next_within(limit),
            Self::Mir2(it) => it.next_within(limit),
        }
    }

    fn frontier_bound(&self) -> Option<f64> {
        match self {
            Self::RTree(it) => it.frontier_bound(),
            Self::Ir2(it) => it.frontier_bound(),
            Self::Mir2(it) => it.frontier_bound(),
        }
    }

    fn counters(&self) -> SearchCounters {
        match self {
            Self::RTree(it) => it.counters(),
            Self::Ir2(it) => it.counters(),
            Self::Mir2(it) => it.counters(),
        }
    }

    fn truncation(&self) -> Option<TruncateReason> {
        match self {
            Self::RTree(it) => it.truncation(),
            Self::Ir2(it) => it.truncation(),
            Self::Mir2(it) => it.truncation(),
        }
    }
}

struct ShardCursor<'a, D: BlockDevice + 'static> {
    iter: ShardIter<'a, D>,
    /// MINDIST from the query to the shard's bounding rect — a constant
    /// lower bound that holds before any I/O (a far shard with an empty
    /// frontier key of 0.0 is still known to be far).
    rect_bound: f64,
    /// Replica currently serving this shard's pull.
    replica: usize,
    /// Replicas already attempted (including the current one) — a
    /// failover never retries a replica that failed this query.
    tried: Vec<usize>,
    /// Search counters accumulated by attempts that died mid-pull; the
    /// live iterator's counters are added on top at the end.
    prior: SearchCounters,
    done: bool,
    stepped: bool,
}

impl<D: BlockDevice + 'static> ShardCursor<'_, D> {
    /// Lower bound on every result this shard can still emit; `None` once
    /// the shard is finished.
    fn bound(&self) -> Option<f64> {
        self.iter.frontier_bound().map(|fb| fb.max(self.rect_bound))
    }

    /// I/O charged against this shard's budget slice so far, across every
    /// attempt (the same `nodes_read + candidates_checked` unit the
    /// limited iterators charge internally) — what a failover restart
    /// subtracts from the slice so the shard as a whole stays within it.
    fn consumed(&self) -> u64 {
        let live = self.iter.counters();
        self.prior.nodes_read
            + self.prior.candidates_checked
            + live.nodes_read
            + live.candidates_checked
    }
}

// ---------------------------------------------------------------------
// Replica routing.
// ---------------------------------------------------------------------

/// R byte-identical [`SpatialKeywordDb`] replicas of one shard, plus a
/// health bit per replica.
///
/// Health is advisory routing state, not ground truth: a replica is marked
/// failed when a query observes a [`StorageError`] from it, so later
/// queries start on a surviving replica instead of paying a failed attempt
/// first. A fully-failed set still yields candidates (unhealthy ones, as a
/// last resort) — devices recover, and the retry layer re-proves health by
/// simply succeeding. [`ir2 scrub --repair`](crate::scrub) is the durable
/// path back to health.
pub struct ReplicaSet<D: BlockDevice + 'static> {
    replicas: Vec<SpatialKeywordDb<D>>,
    healthy: Vec<AtomicBool>,
}

impl<D: BlockDevice + 'static> ReplicaSet<D> {
    fn new(replicas: Vec<SpatialKeywordDb<D>>) -> Result<Self> {
        if replicas.is_empty() {
            return Err(StorageError::Corrupt(
                "a shard needs at least one replica".into(),
            ));
        }
        let healthy = replicas.iter().map(|_| AtomicBool::new(true)).collect();
        Ok(Self { replicas, healthy })
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Always false (an empty set cannot be constructed).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// The replica a fresh pull should start on: the first healthy one,
    /// or replica 0 as a last resort when all are marked failed.
    pub fn primary_index(&self) -> usize {
        (0..self.len()).find(|&m| self.is_healthy(m)).unwrap_or(0)
    }

    /// The database behind [`primary_index`](Self::primary_index).
    pub fn primary(&self) -> &SpatialKeywordDb<D> {
        &self.replicas[self.primary_index()]
    }

    /// The `m`-th replica.
    pub fn get(&self, m: usize) -> &SpatialKeywordDb<D> {
        &self.replicas[m]
    }

    /// All replicas, in index order.
    pub fn replicas(&self) -> impl Iterator<Item = &SpatialKeywordDb<D>> {
        self.replicas.iter()
    }

    /// Whether replica `m` is currently considered healthy.
    pub fn is_healthy(&self, m: usize) -> bool {
        self.healthy[m].load(Ordering::Relaxed)
    }

    /// Routes later queries away from replica `m` (it returned a storage
    /// error).
    pub fn mark_failed(&self, m: usize) {
        self.healthy[m].store(false, Ordering::Relaxed);
    }

    /// Marks replica `m` healthy again (e.g. after a scrub repair).
    pub fn mark_healthy(&self, m: usize) {
        self.healthy[m].store(true, Ordering::Relaxed);
    }

    /// The next replica a failover should try, given the ones this query
    /// already attempted: the first untried healthy replica, else the
    /// first untried one at all (a marked-failed replica may have
    /// recovered), else `None` — the shard is out of options and the
    /// query fails.
    pub fn failover_candidate(&self, tried: &[usize]) -> Option<usize> {
        (0..self.len())
            .find(|m| !tried.contains(m) && self.is_healthy(*m))
            .or_else(|| (0..self.len()).find(|m| !tried.contains(m)))
    }
}

/// The canonical bounded top-k: a max-heap of the k smallest `(distance,
/// id)` keys. The `(distance, id)` order makes the kept *set* (and the
/// final order) independent of arrival order — which shard emitted a
/// result first, or which worker thread inserted it first.
struct TopK {
    k: usize,
    heap: BinaryHeap<(OrderedF64, u64)>,
    kept: HashMap<u64, SpatialObject<2>>,
}

impl TopK {
    fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
            kept: HashMap::with_capacity(k + 1),
        }
    }

    fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// Current k-th distance, or +∞ while fewer than k results are held.
    fn threshold(&self) -> f64 {
        if self.is_full() {
            self.heap.peek().map(|&(d, _)| d.0).unwrap_or(f64::INFINITY)
        } else {
            f64::INFINITY
        }
    }

    fn insert(&mut self, obj: SpatialObject<2>, d: f64) {
        // Replication can present the same object twice: a failover
        // restart re-emits the dead attempt's hits, and a hedged loser's
        // partial drain overlaps the winner's. An id determines its
        // distance, so dropping repeats is exact — and necessary: pushing
        // a duplicate key would make `heap` and `kept` disagree on
        // occupancy and silently shrink the answer below k.
        if self.kept.contains_key(&obj.id) {
            return;
        }
        let key = (OrderedF64(d), obj.id);
        if self.is_full() {
            match self.heap.peek() {
                Some(&worst) if key < worst => {
                    self.heap.pop();
                    self.kept.remove(&worst.1);
                }
                _ => return,
            }
        }
        self.kept.insert(obj.id, obj);
        self.heap.push(key);
    }

    fn into_sorted(mut self) -> Vec<(SpatialObject<2>, f64)> {
        let mut keys = self.heap.into_vec();
        keys.sort_unstable();
        keys.into_iter()
            .filter_map(|(d, id)| self.kept.remove(&id).map(|o| (o, d.0)))
            .collect()
    }
}

/// What one merge produces before report assembly.
struct Merged {
    results: Vec<(SpatialObject<2>, f64)>,
    counters: SearchCounters,
    object_loads: u64,
    outcome: Option<TruncateReason>,
    /// Which shards did at least one unit of work (for `shard_*` metrics).
    stepped: Vec<bool>,
}

impl Merged {
    fn empty(s: usize) -> Self {
        Self {
            results: Vec::new(),
            counters: SearchCounters::default(),
            object_loads: 0,
            outcome: None,
            stepped: vec![false; s],
        }
    }
}

/// What one replica drain (or the sum of a shard's drains) contributes to
/// a parallel gather's report.
#[derive(Default)]
struct DrainOut {
    index_io: IoSnapshot,
    object_io: IoSnapshot,
    counters: SearchCounters,
    loads: u64,
    stepped: bool,
    retries: u64,
    backoff: Duration,
    /// Whether the drain ran to its sound stopping point (frontier
    /// exhausted or bound beat) — false only for a cancelled hedge loser.
    complete: bool,
}

impl DrainOut {
    fn add(&mut self, o: &DrainOut) {
        self.index_io = self.index_io + o.index_io;
        self.object_io = self.object_io + o.object_io;
        sum_counters(&mut self.counters, o.counters);
        self.loads += o.loads;
        self.stepped |= o.stepped;
        self.retries += o.retries;
        self.backoff += o.backoff;
        self.complete |= o.complete;
    }
}

// ---------------------------------------------------------------------
// The sharded database.
// ---------------------------------------------------------------------

/// S independent [`SpatialKeywordDb`] shards over an STR spatial tiling,
/// answering distance-first top-k queries by an exact scatter-gather merge
/// (see the module docs for the bound argument).
///
/// Shards are fully isolated: separate devices, buffer pools, decoded-node
/// caches, vocabularies, and metric registries. The merge attributes I/O
/// per shard through the same [`IoScope`] machinery the batch engine uses
/// and folds everything into one [`QueryReport`], so a sharded query's
/// report is comparable with a monolithic one.
///
/// Object ids are assumed unique across the dataset (the generators and
/// the CLI guarantee this); the canonical result order is `(distance,
/// id)`, which makes answers deterministic across shard counts and worker
/// schedules. The monolithic engines canonicalize ties at the k-th
/// distance to the same `(distance, id)` order (their collectors drain the
/// tied group and reorder it by id), so sharded and monolithic answers are
/// byte-identical — the differential oracle harness (`ir2 fuzz`) asserts
/// exactly this.
pub struct ShardedDb<D: BlockDevice + 'static> {
    shards: Vec<ReplicaSet<D>>,
    bounds: Vec<Option<Rect<2>>>,
    config: DbConfig,
    metrics: Arc<MetricsRegistry>,
    /// Root directory when opened from / created on disk — what the
    /// scrubber walks. `None` for in-memory databases.
    dir: Option<PathBuf>,
}

impl<D: BlockDevice + 'static> ShardedDb<D> {
    /// Builds a sharded database: `objects` are STR-tiled into
    /// `device_sets.len()` partitions and each partition is built into its
    /// own shard **in parallel** (builds are independent). One replica per
    /// shard; see [`build_replicated`](ShardedDb::build_replicated).
    ///
    /// Requires at least one device set and at least one object per shard
    /// (an empty shard would index nothing and answer nothing).
    pub fn build(
        device_sets: Vec<DeviceSet<D>>,
        objects: impl IntoIterator<Item = SpatialObject<2>>,
        config: DbConfig,
    ) -> Result<Self> {
        let s = device_sets.len();
        let objects: Vec<SpatialObject<2>> = objects.into_iter().collect();
        if s == 0 {
            return Err(StorageError::Corrupt(
                "a sharded database needs at least one shard".into(),
            ));
        }
        if objects.len() < s {
            return Err(StorageError::Corrupt(format!(
                "cannot tile {} objects into {} shards (each shard needs at least one object)",
                objects.len(),
                s
            )));
        }
        let parts = str_partition(objects, s);
        let bounds: Vec<Option<Rect<2>>> = parts.iter().map(|p| rect_of(p)).collect();
        let mut slots: Vec<Option<Result<SpatialKeywordDb<D>>>> = (0..s).map(|_| None).collect();
        std::thread::scope(|scope| {
            for ((set, part), slot) in device_sets.into_iter().zip(parts).zip(slots.iter_mut()) {
                let cfg = config.clone();
                scope.spawn(move || *slot = Some(SpatialKeywordDb::build(set, part, cfg)));
            }
        });
        let shards = slots
            .into_iter()
            .map(|slot| {
                // An unfilled slot (a build worker that died without
                // reporting) surfaces as a typed error, not a crash.
                slot.unwrap_or_else(|| {
                    Err(StorageError::Corrupt(
                        "shard build worker terminated without a result".into(),
                    ))
                })
                .and_then(|db| ReplicaSet::new(vec![db]))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            shards,
            bounds,
            config,
            metrics: Arc::new(MetricsRegistry::new()),
            dir: None,
        })
    }

    /// Builds a replicated sharded database over `groups[i][m]` = devices
    /// of shard `i`, replica `m`. Every group must have the same replica
    /// count. Shard `i` is built once into replica 0's devices, then every
    /// other replica is populated by a raw block copy and **byte-verified**
    /// against replica 0 before the database is opened — a replica that
    /// does not verify fails the build.
    ///
    /// `D: Clone` because building consumes a device set, so replica 0's
    /// handles are cloned for the build (device handles are cheap shared
    /// references — e.g. `Arc<MemDevice>`). On-disk databases use
    /// [`create_in_dir_replicated`](ShardedDb::create_in_dir_replicated),
    /// which copies files instead.
    pub fn build_replicated(
        groups: Vec<Vec<DeviceSet<D>>>,
        objects: impl IntoIterator<Item = SpatialObject<2>>,
        config: DbConfig,
    ) -> Result<Self>
    where
        D: Clone,
    {
        let r = groups.first().map(|g| g.len()).unwrap_or(0);
        if r == 0 {
            return Err(StorageError::Corrupt(
                "a replicated build needs at least one shard with one replica".into(),
            ));
        }
        if groups.iter().any(|g| g.len() != r) {
            return Err(StorageError::Corrupt(
                "every shard must have the same replica count".into(),
            ));
        }
        let primaries: Vec<DeviceSet<D>> = groups.iter().map(|g| g[0].clone()).collect();
        let built = Self::build(primaries, objects, config)?;
        let bounds = built.bounds.clone();
        let config = built.config.clone();
        drop(built); // flushed; reopen every replica from its own devices
        for group in &groups {
            let src = &group[0];
            for rep in &group[1..] {
                for ((name, s), (_, d)) in src.as_refs().iter().zip(rep.as_refs().iter()) {
                    ir2_storage::copy_blocks(*s, *d)?;
                    if !ir2_storage::diff_blocks(*s, *d)?.is_empty() {
                        return Err(StorageError::Corrupt(format!(
                            "replica verification failed: `{name}` differs from replica 0 \
                             after copy"
                        )));
                    }
                }
            }
        }
        let mut db = Self::from_replica_groups(groups)?;
        db.bounds = bounds;
        db.config = config;
        Ok(db)
    }

    /// Opens a replicated sharded database from already-opened devices:
    /// `groups[i][m]` = shard `i`, replica `m`. Replicas are assumed
    /// byte-identical (the build verified them; the scrubber re-proves it
    /// online). Shard bounding rects come from replica 0's R-Tree root
    /// MBR.
    pub fn from_replica_groups(groups: Vec<Vec<DeviceSet<D>>>) -> Result<Self> {
        if groups.is_empty() {
            return Err(StorageError::Corrupt(
                "a sharded database needs at least one shard".into(),
            ));
        }
        let r = groups[0].len();
        if groups.iter().any(|g| g.len() != r) {
            return Err(StorageError::Corrupt(
                "every shard must have the same replica count".into(),
            ));
        }
        let shards = groups
            .into_iter()
            .map(|group| {
                group
                    .into_iter()
                    .map(SpatialKeywordDb::open)
                    .collect::<Result<Vec<_>>>()
                    .and_then(ReplicaSet::new)
            })
            .collect::<Result<Vec<_>>>()?;
        Self::from_replica_sets(shards)
    }

    /// Assembles a sharded database from already-opened replica sets.
    fn from_replica_sets(shards: Vec<ReplicaSet<D>>) -> Result<Self> {
        if shards.is_empty() {
            return Err(StorageError::Corrupt(
                "a sharded database needs at least one shard".into(),
            ));
        }
        let bounds = shards
            .iter()
            .map(|set| tree_mbr(set.get(0)))
            .collect::<Result<Vec<_>>>()?;
        let config = shards[0].get(0).config().clone();
        Ok(Self {
            shards,
            bounds,
            config,
            metrics: Arc::new(MetricsRegistry::new()),
            dir: None,
        })
    }

    /// Reopens a sharded database from already-opened device sets, one per
    /// shard (single replica). Shard bounding rects are recomputed from
    /// each shard's R-Tree root MBR (one cached node read per shard).
    pub fn open(device_sets: Vec<DeviceSet<D>>) -> Result<Self> {
        Self::from_replica_groups(device_sets.into_iter().map(|s| vec![s]).collect())
    }

    /// Opens a sharded directory created by
    /// [`create_in_dir`](ShardedDb::create_in_dir) or
    /// [`create_in_dir_replicated`](ShardedDb::create_in_dir_replicated),
    /// wrapping every device of every replica through `wrap` (role names
    /// as in [`DeviceSet::map`]) — e.g. into
    /// [`RetryDevice`](ir2_storage::RetryDevice)s.
    pub fn open_dir_mapped<P: AsRef<Path>>(
        dir: P,
        mut wrap: impl FnMut(&'static str, FileDevice) -> D,
    ) -> Result<Self> {
        let dir = dir.as_ref();
        let layout = shard_layout(dir)?.ok_or_else(|| {
            StorageError::Corrupt(format!(
                "{} has no {SHARD_MANIFEST} manifest (not a sharded database)",
                dir.display()
            ))
        })?;
        // A replica that fails to open (deleted directory, unreadable
        // devices) degrades the shard instead of failing the whole open —
        // that is the point of replication. Only a shard with *no*
        // openable replica is fatal. `ir2 check` still reports the hole.
        let mut sets = Vec::with_capacity(layout.shards);
        for i in 0..layout.shards {
            let mut group = Vec::with_capacity(layout.replicas);
            let mut last_err = None;
            for path in layout.replica_dirs(dir, i) {
                match DeviceSet::open_dir(path)
                    .and_then(|s| SpatialKeywordDb::open(s.map(&mut wrap)))
                {
                    Ok(db) => group.push(db),
                    Err(e) => last_err = Some(e),
                }
            }
            if group.is_empty() {
                return Err(last_err.unwrap_or_else(|| {
                    StorageError::Corrupt(format!("shard {i} has no openable replica"))
                }));
            }
            sets.push(ReplicaSet::new(group)?);
        }
        let mut db = Self::from_replica_sets(sets)?;
        db.dir = Some(dir.to_path_buf());
        Ok(db)
    }

    /// The primary replica of each shard, in tile order. Each is a
    /// complete [`SpatialKeywordDb`]; integrity checks and statistics go
    /// through these directly.
    pub fn shards(&self) -> impl Iterator<Item = &SpatialKeywordDb<D>> {
        self.shards.iter().map(ReplicaSet::primary)
    }

    /// The replica sets, in tile order — the full replicated topology.
    pub fn replica_sets(&self) -> &[ReplicaSet<D>] {
        &self.shards
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Replicas per shard (uniform across shards).
    pub fn replica_count(&self) -> usize {
        self.shards.first().map(ReplicaSet::len).unwrap_or(0)
    }

    /// Root directory, when opened from disk.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Starts a background [`Scrubber`](crate::scrub::Scrubber) over this
    /// database's directory: every `interval` it re-verifies that replicas
    /// are byte-identical, repairing divergent ones from a healthy peer
    /// when `repair` is set. Scrub counters fold into this database's
    /// [`metrics`](ShardedDb::metrics) registry. Fails for in-memory
    /// databases (nothing on disk to scrub).
    pub fn start_scrubber(
        &self,
        interval: Duration,
        repair: bool,
    ) -> Result<crate::scrub::Scrubber> {
        let dir = self.dir.clone().ok_or_else(|| {
            StorageError::Corrupt("in-memory sharded database has no directory to scrub".into())
        })?;
        Ok(crate::scrub::Scrubber::start(
            dir,
            interval,
            repair,
            Arc::clone(&self.metrics),
        ))
    }

    /// Per-shard bounding rectangles (`None` for an empty shard).
    pub fn bounds(&self) -> &[Option<Rect<2>>] {
        &self.bounds
    }

    /// The configuration every shard was built with.
    pub fn config(&self) -> &DbConfig {
        &self.config
    }

    /// Total objects across shards (counted once, not per replica).
    pub fn total_objects(&self) -> u64 {
        self.shards().map(|s| s.build_stats().objects).sum()
    }

    /// The sharded engine's metrics registry (`sharded_*` and `shard_*`
    /// series; each shard additionally keeps its own registry).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    // ------------------------------------------------------------------
    // Queries.
    // ------------------------------------------------------------------

    /// Answers a distance-first top-k query by the exact sequential
    /// scatter-gather merge. The answer equals the monolithic answer on
    /// the same objects (canonical `(distance, id)` order; see the type
    /// docs for the tie caveat).
    pub fn distance_first(
        &self,
        alg: Algorithm,
        query: &DistanceFirstQuery<2>,
    ) -> Result<QueryReport> {
        self.distance_first_limited(alg, query, QueryLimits::none())
    }

    /// [`distance_first`](ShardedDb::distance_first) under execution
    /// limits, split across shards by [the documented
    /// semantics](self#limits): shared deadline, divided I/O budget,
    /// per-shard frontier cap. On truncation the report's results are the
    /// exact top-m prefix within the smallest truncated shard's cut
    /// radius — every reported result provably beats everything unseen.
    pub fn distance_first_limited(
        &self,
        alg: Algorithm,
        query: &DistanceFirstQuery<2>,
        limits: QueryLimits,
    ) -> Result<QueryReport> {
        let (report, stepped) = self.scoped_topk(alg, query, limits)?;
        self.publish(alg, &report, &stepped);
        Ok(report)
    }

    /// [`distance_first`](ShardedDb::distance_first) with parallel shard
    /// workers: up to `threads` scoped workers drain shard frontiers
    /// concurrently under a shared branch-and-bound threshold (a worker
    /// stops as soon as its shard's bound exceeds the current k-th
    /// distance, which only shrinks — so every stop is final and the
    /// gathered superset contains the exact top-k). The answer is
    /// identical to the sequential merge; the point is single-query
    /// latency when shards sit on independent devices. Unlimited
    /// execution only — under [`QueryLimits`] use
    /// [`distance_first_limited`](ShardedDb::distance_first_limited),
    /// whose sequential schedule makes truncation deterministic.
    pub fn distance_first_parallel(
        &self,
        alg: Algorithm,
        query: &DistanceFirstQuery<2>,
        threads: usize,
    ) -> Result<QueryReport> {
        if alg == Algorithm::Iio || query.k == 0 || (self.shards.len() == 1 && threads <= 1) {
            return self.distance_first(alg, query);
        }
        self.gather_parallel(alg, query, threads, None)
    }

    /// [`distance_first`](ShardedDb::distance_first) with **hedged** shard
    /// pulls: each shard's drain starts on its primary replica, and if it
    /// has not completed after `hedge`, a second replica drains the same
    /// shard concurrently — the first *complete* drain wins and the loser
    /// is cancelled cooperatively at its next bounded step (the same
    /// per-step check cadence `QueryLimits` uses). Under stall-prone
    /// devices this converts a stuck shard pull from p99 latency into one
    /// hedge delay. The answer is exactly the sequential merge's: both
    /// drains feed one deduplicating top-k, and at least one complete
    /// drain per shard is guaranteed (a primary failure falls back to the
    /// secondary, so this also subsumes failover). Unlimited execution
    /// only, like [`distance_first_parallel`]
    /// (ShardedDb::distance_first_parallel); single-replica shards drain
    /// unhedged.
    pub fn distance_first_hedged(
        &self,
        alg: Algorithm,
        query: &DistanceFirstQuery<2>,
        hedge: Duration,
    ) -> Result<QueryReport> {
        if alg == Algorithm::Iio || query.k == 0 {
            return self.distance_first(alg, query);
        }
        self.gather_parallel(alg, query, self.shards.len(), Some(hedge))
    }

    /// The parallel gather engine behind [`distance_first_parallel`]
    /// (ShardedDb::distance_first_parallel) and [`distance_first_hedged`]
    /// (ShardedDb::distance_first_hedged): one worker per shard drains
    /// into a shared branch-and-bound top-k (a worker stops as soon as its
    /// shard's bound exceeds the current k-th distance, which only shrinks
    /// — so every stop is final and the gathered superset contains the
    /// exact top-k). Each worker fails over across its shard's replicas
    /// on storage errors; with `hedge` set it also races a second replica
    /// after the delay.
    fn gather_parallel(
        &self,
        alg: Algorithm,
        query: &DistanceFirstQuery<2>,
        threads: usize,
        hedge: Option<Duration>,
    ) -> Result<QueryReport> {
        let t0 = Instant::now();
        let shared = Mutex::new(TopK::new(query.k));
        let idxs: Vec<usize> = (0..self.shards.len()).collect();
        let outs = run_batch(&idxs, threads, |&i| match hedge {
            Some(delay) if self.shards[i].len() > 1 => {
                self.drain_shard_hedged(i, alg, query, &shared, delay)
            }
            _ => self.drain_shard_failover(i, alg, query, &shared),
        })?;
        let mut merged = Merged::empty(self.shards.len());
        let results = shared
            .into_inner()
            .map_err(|_| poisoned_top_k())?
            .into_sorted();
        let (mut index_io, mut object_io) = (IoSnapshot::default(), IoSnapshot::default());
        let (mut retries, mut backoff) = (0u64, Duration::ZERO);
        for (i, w) in outs.iter().enumerate() {
            index_io = index_io + w.index_io;
            object_io = object_io + w.object_io;
            merged.object_loads += w.loads;
            merged.stepped[i] = w.stepped;
            sum_counters(&mut merged.counters, w.counters);
            retries += w.retries;
            backoff += w.backoff;
        }
        let report = self.assemble(
            results,
            index_io,
            object_io,
            &merged,
            retries,
            backoff,
            t0.elapsed(),
        );
        self.publish(alg, &report, &merged.stepped);
        Ok(report)
    }

    /// Drains shard `i` for the parallel gather, failing over across its
    /// replicas: partial inserts from a dead attempt are valid results
    /// (the deduplicating top-k absorbs the survivor's re-emissions), so a
    /// restart from the next replica loses nothing.
    fn drain_shard_failover(
        &self,
        i: usize,
        alg: Algorithm,
        query: &DistanceFirstQuery<2>,
        shared: &Mutex<TopK>,
    ) -> Result<DrainOut> {
        let set = &self.shards[i];
        let mut tried = Vec::new();
        let mut m = set.primary_index();
        let mut agg = DrainOut::default();
        loop {
            tried.push(m);
            match self.drain_replica(i, m, alg, query, shared, None) {
                Ok(out) => {
                    agg.add(&out);
                    return Ok(agg);
                }
                Err(e) => {
                    set.mark_failed(m);
                    match set.failover_candidate(&tried) {
                        Some(next) => {
                            self.metrics.add_counter("replica_failovers_total", 1);
                            m = next;
                        }
                        None => return Err(e),
                    }
                }
            }
        }
    }

    /// Drains shard `i` with a hedge: primary on a scoped thread,
    /// secondary inline after `delay` if the primary has not finished.
    /// The first **complete** drain claims the win (CAS on `winner`; a
    /// cancelled or failed drain never claims), and a secondary win
    /// cancels the primary cooperatively. A primary error before the
    /// hedge fires degrades to plain failover.
    fn drain_shard_hedged(
        &self,
        i: usize,
        alg: Algorithm,
        query: &DistanceFirstQuery<2>,
        shared: &Mutex<TopK>,
        delay: Duration,
    ) -> Result<DrainOut> {
        let set = &self.shards[i];
        let primary = set.primary_index();
        let secondary = set
            .failover_candidate(&[primary])
            .expect("hedged drain requires at least two replicas");
        let cancel = AtomicBool::new(false);
        let winner = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<Result<DrainOut>>();
        let mut agg = DrainOut::default();
        std::thread::scope(|sc| -> Result<()> {
            sc.spawn({
                let tx = tx; // moved: a panic here disconnects the channel
                let (cancel, winner) = (&cancel, &winner);
                move || {
                    let out = self.drain_replica(i, primary, alg, query, shared, Some(cancel));
                    if matches!(&out, Ok(o) if o.complete) {
                        let _ = winner.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire);
                    }
                    let _ = tx.send(out);
                }
            });
            let first = match rx.recv_timeout(delay) {
                Ok(res) => Some(res),
                Err(mpsc::RecvTimeoutError::Timeout) => None,
                // The primary worker panicked before reporting; treat it
                // like a failed replica and lean on the secondary.
                Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(poisoned_top_k())),
            };
            match first {
                Some(Ok(out)) => {
                    // Primary finished inside the hedge window: no hedge.
                    agg.add(&out);
                    Ok(())
                }
                Some(Err(_)) => {
                    // Primary *failed* (not merely slow): plain failover.
                    set.mark_failed(primary);
                    self.metrics.add_counter("replica_failovers_total", 1);
                    let out = self.drain_replica(i, secondary, alg, query, shared, None)?;
                    agg.add(&out);
                    Ok(())
                }
                None => {
                    // Hedge fires: drain the secondary on this thread.
                    self.metrics.add_counter("replica_hedges_total", 1);
                    let sec = self.drain_replica(i, secondary, alg, query, shared, None);
                    if matches!(&sec, Ok(o) if o.complete)
                        && winner
                            .compare_exchange(0, 2, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok()
                    {
                        self.metrics.add_counter("replica_hedge_wins_total", 1);
                        cancel.store(true, Ordering::Relaxed);
                    }
                    let prim = rx.recv().unwrap_or_else(|_| Err(poisoned_top_k()));
                    match (prim, sec) {
                        (Ok(p), Ok(s)) => {
                            agg.add(&p);
                            agg.add(&s);
                            Ok(())
                        }
                        // Secondary died but the primary (never cancelled
                        // in that case) covered the shard.
                        (Ok(p), Err(_)) if p.complete => {
                            set.mark_failed(secondary);
                            agg.add(&p);
                            Ok(())
                        }
                        (Ok(_), Err(e)) => Err(e),
                        (Err(e), Ok(s)) => {
                            set.mark_failed(primary);
                            self.metrics.add_counter("replica_failovers_total", 1);
                            if s.complete {
                                agg.add(&s);
                                Ok(())
                            } else {
                                Err(e)
                            }
                        }
                        (Err(e), Err(_)) => Err(e),
                    }
                }
            }
        })?;
        Ok(agg)
    }

    /// One replica's share of a parallel gather: drain shard `i`'s
    /// frontier on replica `m` under the shared branch-and-bound
    /// threshold, entering this thread's own I/O and retry scopes so the
    /// drain is attributed to exactly the devices it touched. `cancel`
    /// (hedging) is checked once per bounded step; a cancelled drain
    /// returns `complete = false` and its partial inserts stand — they
    /// are true results the winning drain re-emits anyway.
    fn drain_replica(
        &self,
        i: usize,
        m: usize,
        alg: Algorithm,
        query: &DistanceFirstQuery<2>,
        shared: &Mutex<TopK>,
        cancel: Option<&AtomicBool>,
    ) -> Result<DrainOut> {
        let rep = self.shards[i].get(m);
        let rect_bound = self.bounds[i]
            .map(|r| r.min_dist(&query.point))
            .unwrap_or(f64::INFINITY);
        let scope = IoScope::enter();
        let retry = RetryScope::enter();
        let run = (|| {
            let src = CountingSource::new(rep.object_store() as &dyn ObjectSource<2>);
            let mut iter = ShardIter::open(rep, &src, alg, query, QueryLimits::none());
            let mut stepped = false;
            let mut complete = true;
            while let Some(b) = iter.frontier_bound().map(|fb| fb.max(rect_bound)) {
                if cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
                    complete = false;
                    break;
                }
                // Snapshot the shared threshold and advance only up to
                // it (node-granular, like the sequential merge). The
                // threshold only shrinks as siblings insert, so a
                // stale snapshot is merely a looser — still sound —
                // bound.
                let limit = {
                    let g = lock_top_k(shared)?;
                    if g.is_full() {
                        if b > g.threshold() {
                            break;
                        }
                        g.threshold()
                    } else {
                        f64::INFINITY
                    }
                };
                match iter.next_hit_within(limit)? {
                    BoundedStep::Hit(obj, d) => {
                        lock_top_k(shared)?.insert(obj, d);
                    }
                    BoundedStep::Pending => {}
                    BoundedStep::Done => {
                        stepped = true;
                        break;
                    }
                }
                stepped = true;
            }
            Ok((iter.counters(), src.loads(), stepped, complete))
        })();
        let retry_stats = retry.finish();
        let scoped = scope.finish();
        run.map(|(counters, loads, stepped, complete)| DrainOut {
            index_io: scoped.for_stats(rep.stats_of(alg)),
            object_io: scoped.for_stats(rep.objects_io_stats()),
            counters,
            loads,
            stepped,
            retries: retry_stats.retries,
            backoff: retry_stats.backoff,
            complete,
        })
    }

    /// Answers a batch of queries on `threads` workers (each query runs
    /// its full sequential merge on one worker, like
    /// [`SpatialKeywordDb::batch_topk`]); reports come back in input order
    /// with exact per-query I/O attribution.
    pub fn batch_topk(
        &self,
        alg: Algorithm,
        queries: &[DistanceFirstQuery<2>],
        threads: usize,
    ) -> Result<Vec<QueryReport>> {
        let outs = run_batch(queries, threads, |q| {
            self.scoped_topk(alg, q, QueryLimits::none())
        })?;
        let mut reports = Vec::with_capacity(outs.len());
        for (report, stepped) in outs {
            self.publish(alg, &report, &stepped);
            reports.push(report);
        }
        Ok(reports)
    }

    /// [`batch_topk`](ShardedDb::batch_topk) with per-query fault
    /// isolation and execution limits, mirroring
    /// [`SpatialKeywordDb::batch_topk_isolated`].
    pub fn batch_topk_isolated(
        &self,
        alg: Algorithm,
        queries: &[DistanceFirstQuery<2>],
        threads: usize,
        limits: QueryLimits,
    ) -> Vec<std::result::Result<QueryReport, QueryError>> {
        let outs = run_batch_isolated(queries, threads, |q| {
            self.scoped_topk(alg, q, limits).map_err(Into::into)
        });
        let key = alg.key();
        outs.into_iter()
            .map(|out| match out {
                Ok((report, stepped)) => {
                    self.publish(alg, &report, &stepped);
                    Ok(report)
                }
                Err(e) => {
                    let kind = match &e {
                        QueryError::Storage(_) => "storage",
                        QueryError::Panic(_) => "panic",
                    };
                    self.metrics.add_counter(
                        &format!("sharded_query_failures_total{{alg=\"{key}\",kind=\"{kind}\"}}"),
                        1,
                    );
                    Err(e)
                }
            })
            .collect()
    }

    /// One query, fully attributed: I/O through an [`IoScope`] on the
    /// calling thread, loads through per-shard [`CountingSource`]s, retry
    /// accounting through a [`RetryScope`] — folded into one report.
    fn scoped_topk(
        &self,
        alg: Algorithm,
        query: &DistanceFirstQuery<2>,
        limits: QueryLimits,
    ) -> Result<(QueryReport, Vec<bool>)> {
        let t0 = Instant::now();
        let scope = IoScope::enter();
        let retry = RetryScope::enter();
        let merged = if alg == Algorithm::Iio {
            self.merge_iio(query, &limits)
        } else {
            self.merge_sequential(alg, query, &limits)
        };
        let retry_stats = retry.finish();
        let scoped = scope.finish();
        let mut merged = merged?;
        let (mut index_io, mut object_io) = (IoSnapshot::default(), IoSnapshot::default());
        for set in &self.shards {
            for rep in set.replicas() {
                index_io = index_io + scoped.for_stats(rep.stats_of(alg));
                object_io = object_io + scoped.for_stats(rep.objects_io_stats());
            }
        }
        let results = std::mem::take(&mut merged.results);
        let stepped = std::mem::take(&mut merged.stepped);
        let report = self.assemble(
            results,
            index_io,
            object_io,
            &merged,
            retry_stats.retries,
            retry_stats.backoff,
            t0.elapsed(),
        );
        Ok((report, stepped))
    }

    /// The exact sequential merge (module docs): a global heap of shards
    /// keyed by their current lower bound, lazily revalidated, always
    /// stepping the minimum; stops when the k-th distance strictly beats
    /// every remaining bound. A replica that errors mid-pull is failed
    /// over: the shard restarts on the next replica under its surviving
    /// limit slice (unchanged absolute deadline; I/O-budget slice less
    /// what the dead attempts consumed), and the deduplicating top-k makes
    /// the restart's re-emissions harmless.
    fn merge_sequential(
        &self,
        alg: Algorithm,
        query: &DistanceFirstQuery<2>,
        limits: &QueryLimits,
    ) -> Result<Merged> {
        let s = self.shards.len();
        let mut merged = Merged::empty(s);
        if query.k == 0 {
            return Ok(merged);
        }
        let per_shard = split_limits(limits, s);
        // One counting source per replica: a failover restart attributes
        // its object loads to the replica actually serving them.
        let sources: Vec<Vec<CountingSource<'_, 2>>> = self
            .shards
            .iter()
            .map(|set| {
                set.replicas()
                    .map(|rep| CountingSource::new(rep.object_store() as &dyn ObjectSource<2>))
                    .collect()
            })
            .collect();
        let mut cursors: Vec<ShardCursor<'_, D>> = Vec::with_capacity(s);
        for (i, set) in self.shards.iter().enumerate() {
            let m = set.primary_index();
            cursors.push(ShardCursor {
                iter: ShardIter::open(set.get(m), &sources[i][m], alg, query, per_shard[i]),
                rect_bound: self.bounds[i]
                    .map(|r| r.min_dist(&query.point))
                    .unwrap_or(f64::INFINITY),
                replica: m,
                tried: vec![m],
                prior: SearchCounters::default(),
                done: false,
                stepped: false,
            });
        }

        let mut topk = TopK::new(query.k);
        // (shard index, reason, cut radius) per truncated shard.
        let mut truncs: Vec<(usize, TruncateReason, f64)> = Vec::new();
        let mut order: BinaryHeap<Reverse<(OrderedF64, usize)>> = cursors
            .iter()
            .enumerate()
            .map(|(i, c)| Reverse((OrderedF64(c.rect_bound), i)))
            .collect();

        let finish = |cursor: &mut ShardCursor<'_, D>,
                      truncs: &mut Vec<(usize, TruncateReason, f64)>,
                      i: usize| {
            cursor.done = true;
            if let Some(reason) = cursor.iter.truncation() {
                truncs.push((i, reason, cursor.bound().unwrap_or(f64::INFINITY)));
            }
        };

        while let Some(Reverse((OrderedF64(b), i))) = order.pop() {
            if cursors[i].done {
                continue;
            }
            let Some(cur) = cursors[i].bound() else {
                finish(&mut cursors[i], &mut truncs, i);
                continue;
            };
            if cur > b {
                // Stale heap entry: requeue at the shard's true bound.
                order.push(Reverse((OrderedF64(cur), i)));
                continue;
            }
            // Strict `>`: ties at the k-th distance keep pulling so the
            // canonical (distance, id) answer set is exact.
            if topk.is_full() && cur > topk.threshold() {
                break;
            }
            // Advance the shard at node granularity: never past the
            // next-best shard's bound (the point where another shard
            // should be stepped instead — this simulates one global
            // priority queue across all shards), and once the top-k is
            // full, never past the k-th distance (work beyond it would be
            // discarded; `≤` keeps ties at the k-th distance flowing).
            let rival = order
                .peek()
                .map_or(f64::INFINITY, |&Reverse((OrderedF64(rb), _))| rb);
            let limit = if topk.is_full() {
                rival.min(topk.threshold())
            } else {
                rival
            };
            match cursors[i].iter.next_hit_within(limit) {
                Err(e) => {
                    // Replica failure: fail over to the next replica with
                    // the slice that survives, or give up if the shard is
                    // out of replicas. The dead attempt's inserted hits
                    // stay — they are true results the restart re-emits
                    // (TopK dedups) — and its frontier is discarded: the
                    // restart re-descends from the root, so its bound is
                    // the rect bound again.
                    let set = &self.shards[i];
                    set.mark_failed(cursors[i].replica);
                    let Some(m) = set.failover_candidate(&cursors[i].tried) else {
                        return Err(e);
                    };
                    self.metrics.add_counter("replica_failovers_total", 1);
                    let consumed = cursors[i].consumed();
                    let dead = cursors[i].iter.counters();
                    sum_counters(&mut cursors[i].prior, dead);
                    let mut lim = per_shard[i];
                    lim.io_budget = lim.io_budget.map(|b| b.saturating_sub(consumed).max(1));
                    cursors[i].iter = ShardIter::open(set.get(m), &sources[i][m], alg, query, lim);
                    cursors[i].replica = m;
                    cursors[i].tried.push(m);
                    order.push(Reverse((OrderedF64(cursors[i].rect_bound), i)));
                }
                Ok(BoundedStep::Hit(obj, d)) => {
                    cursors[i].stepped = true;
                    topk.insert(obj, d);
                    match cursors[i].bound() {
                        Some(nb) => order.push(Reverse((OrderedF64(nb), i))),
                        None => finish(&mut cursors[i], &mut truncs, i),
                    }
                }
                Ok(BoundedStep::Pending) => {
                    cursors[i].stepped = true;
                    match cursors[i].bound() {
                        Some(nb) => order.push(Reverse((OrderedF64(nb), i))),
                        None => finish(&mut cursors[i], &mut truncs, i),
                    }
                }
                Ok(BoundedStep::Done) => {
                    cursors[i].stepped = true;
                    finish(&mut cursors[i], &mut truncs, i);
                }
            }
        }

        merged.results = topk.into_sorted();
        if !truncs.is_empty() {
            truncs.sort_by_key(|&(i, _, _)| i);
            // Results are exact only within the smallest cut radius: a
            // truncated shard guarantees nothing about distances at or
            // beyond its bound at the moment it stopped.
            let cut = truncs
                .iter()
                .map(|&(_, _, c)| c)
                .fold(f64::INFINITY, f64::min);
            merged.results.retain(|&(_, d)| d < cut);
            merged.outcome = Some(truncs[0].1);
        }
        for (i, c) in cursors.iter().enumerate() {
            merged.stepped[i] = c.stepped;
            sum_counters(&mut merged.counters, c.prior);
            sum_counters(&mut merged.counters, c.iter.counters());
            for src in &sources[i] {
                merged.object_loads += src.loads();
            }
        }
        Ok(merged)
    }

    /// IIO across shards: the inverted index is non-incremental, so this
    /// is the documented fetch-k-from-every-shard over-read (each shard
    /// computes its own top-k, the union is re-ranked). Degrades
    /// all-or-nothing under limits, like the monolithic IIO.
    fn merge_iio(&self, query: &DistanceFirstQuery<2>, limits: &QueryLimits) -> Result<Merged> {
        let s = self.shards.len();
        let mut merged = Merged::empty(s);
        let per_shard = split_limits(limits, s);
        let mut topk = TopK::new(query.k);
        for (i, set) in self.shards.iter().enumerate() {
            // IIO is all-or-nothing per shard, so failover retries the
            // whole shard computation on the next replica with the full
            // slice (a partial attempt contributes nothing to reuse).
            let mut tried = Vec::new();
            let mut m = set.primary_index();
            let out = loop {
                tried.push(m);
                let rep = set.get(m);
                let src = CountingSource::new(rep.object_store() as &dyn ObjectSource<2>);
                let attempt =
                    iio_topk_limited(rep.inverted_index(), rep.vocab(), &src, query, per_shard[i]);
                merged.object_loads += src.loads();
                match attempt {
                    Ok(out) => break out,
                    Err(e) => {
                        set.mark_failed(m);
                        match set.failover_candidate(&tried) {
                            Some(next) => {
                                self.metrics.add_counter("replica_failovers_total", 1);
                                m = next;
                            }
                            None => return Err(e),
                        }
                    }
                }
            };
            merged.stepped[i] = true;
            match out {
                ExecOutcome::Complete(hits) => {
                    for (obj, d) in hits {
                        topk.insert(obj, d);
                    }
                }
                ExecOutcome::Truncated { reason, .. } => {
                    merged.outcome = merged.outcome.or(Some(reason));
                }
            }
        }
        // All-or-nothing: any truncated shard could have held the true
        // top-1, so a partial union would not be a prefix of the answer.
        if merged.outcome.is_none() {
            merged.results = topk.into_sorted();
        }
        Ok(merged)
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        &self,
        results: Vec<(SpatialObject<2>, f64)>,
        index_io: IoSnapshot,
        object_io: IoSnapshot,
        merged: &Merged,
        retries: u64,
        backoff: Duration,
        wall: Duration,
    ) -> QueryReport {
        let io = index_io + object_io;
        QueryReport {
            results,
            index_io,
            object_io,
            io,
            object_loads: merged.object_loads,
            counters: merged.counters,
            pruning: TraceStats::default(),
            simulated: self.config.cost_model.time(io),
            wall,
            outcome: merged.outcome,
            retries,
            backoff,
        }
    }

    /// Folds one finished query into the sharded registry: engine-level
    /// series plus a per-shard activity counter (how many queries actually
    /// touched each shard — the scatter-gather's pruning effectiveness).
    fn publish(&self, alg: Algorithm, r: &QueryReport, stepped: &[bool]) {
        let key = alg.key();
        let m = &self.metrics;
        m.add_counter(&format!("sharded_queries_total{{alg=\"{key}\"}}"), 1);
        m.observe_io(&format!("{{alg=\"{key}\",engine=\"sharded\"}}"), r.io);
        m.histogram(&format!("sharded_query_io_blocks{{alg=\"{key}\"}}"))
            .observe(r.io.total());
        m.histogram("sharded_query_shards_touched")
            .observe(stepped.iter().filter(|&&s| s).count() as u64);
        for (i, &st) in stepped.iter().enumerate() {
            if st {
                m.add_counter(&format!("shard_queries_total{{shard=\"{i}\"}}"), 1);
            }
        }
        if let Some(reason) = r.outcome {
            m.add_counter(
                &format!(
                    "sharded_queries_truncated_total{{alg=\"{key}\",reason=\"{}\"}}",
                    reason.key()
                ),
                1,
            );
        }
    }

    /// Prometheus exposition of the sharded engine: per-shard gauges
    /// (`shard_objects`, `shard_io_read_blocks`, `shard_io_write_blocks`)
    /// refreshed from each shard's device counters, plus every
    /// `sharded_*` / `shard_*` series accumulated so far.
    pub fn metrics_prometheus(&self) -> String {
        self.metrics
            .set_gauge("shard_count", self.shards.len() as f64);
        self.metrics
            .set_gauge("replica_count", self.replica_count() as f64);
        for (i, set) in self.shards.iter().enumerate() {
            self.metrics.set_gauge(
                &format!("shard_objects{{shard=\"{i}\"}}"),
                set.get(0).build_stats().objects as f64,
            );
            // Device I/O summed across the shard's replicas (each replica
            // has private devices; a failover or hedge moves real I/O).
            let (mut reads, mut writes) = (0u64, 0u64);
            for rep in set.replicas() {
                let (o, r, i2, m2, inv) = rep.io_totals();
                let all = [o, r, i2, m2, inv];
                reads += all
                    .iter()
                    .map(|s| s.random_reads + s.seq_reads)
                    .sum::<u64>();
                writes += all
                    .iter()
                    .map(|s| s.random_writes + s.seq_writes)
                    .sum::<u64>();
            }
            self.metrics.set_gauge(
                &format!("shard_io_read_blocks{{shard=\"{i}\"}}"),
                reads as f64,
            );
            self.metrics.set_gauge(
                &format!("shard_io_write_blocks{{shard=\"{i}\"}}"),
                writes as f64,
            );
        }
        self.metrics.export_prometheus()
    }
}

impl ShardedDb<FileDevice> {
    /// Creates a sharded database under `dir`: one `shard-NNN/` device
    /// directory per shard plus a `SHARDS` manifest, then builds every
    /// shard (in parallel) from the STR tiling of `objects`. One replica
    /// per shard — the layout is byte-identical to pre-replication builds;
    /// see [`create_in_dir_replicated`](ShardedDb::create_in_dir_replicated).
    pub fn create_in_dir<P: AsRef<Path>>(
        dir: P,
        objects: impl IntoIterator<Item = SpatialObject<2>>,
        config: DbConfig,
        shards: usize,
    ) -> Result<Self> {
        Self::create_in_dir_replicated(dir, objects, config, shards, 1)
    }

    /// Creates a replicated sharded database under `dir`. With `replicas
    /// == 1` the layout is exactly [`create_in_dir`]
    /// (ShardedDb::create_in_dir)'s (`shard-NNN/` device dirs, no replica
    /// level, no `replicas` manifest line). With more, each shard is built
    /// once into `shard-NNN/replica-0/`, then copied file-by-file to
    /// `replica-1..R-1` and **byte-verified** block-for-block against
    /// replica 0. The manifest is written last either way: a crash at any
    /// point of build, copy, or verification leaves a directory that is
    /// not recognized as a sharded database rather than one that opens
    /// half-built.
    pub fn create_in_dir_replicated<P: AsRef<Path>>(
        dir: P,
        objects: impl IntoIterator<Item = SpatialObject<2>>,
        config: DbConfig,
        shards: usize,
        replicas: usize,
    ) -> Result<Self> {
        let dir = dir.as_ref();
        if replicas == 0 {
            return Err(StorageError::Corrupt(
                "a sharded database needs at least one replica per shard".into(),
            ));
        }
        std::fs::create_dir_all(dir)?;
        let layout = ShardLayout { shards, replicas };
        let sets = (0..shards)
            .map(|i| {
                let dirs = layout.replica_dirs(dir, i);
                DeviceSet::create_in_dir(&dirs[0])
            })
            .collect::<Result<Vec<_>>>()?;
        let db = Self::build(sets, objects, config)?;
        if replicas == 1 {
            std::fs::write(
                dir.join(SHARD_MANIFEST),
                format!("ir2-sharded v1\nshards {shards}\n"),
            )?;
            let mut db = db;
            db.dir = Some(dir.to_path_buf());
            return Ok(db);
        }
        // Release replica 0's file handles before copying, then populate
        // and verify the other replicas from the sealed files.
        drop(db);
        for i in 0..shards {
            let dirs = layout.replica_dirs(dir, i);
            for rep_dir in &dirs[1..] {
                std::fs::create_dir_all(rep_dir)?;
                for name in DeviceSet::<FileDevice>::file_names() {
                    std::fs::copy(dirs[0].join(name), rep_dir.join(name))?;
                    let src = FileDevice::open(dirs[0].join(name))?;
                    let dst = FileDevice::open(rep_dir.join(name))?;
                    if !ir2_storage::diff_blocks(&src, &dst)?.is_empty() {
                        return Err(StorageError::Corrupt(format!(
                            "replica verification failed: {} differs from replica 0 after copy",
                            rep_dir.join(name).display()
                        )));
                    }
                }
            }
        }
        std::fs::write(
            dir.join(SHARD_MANIFEST),
            format!("ir2-sharded v1\nshards {shards}\nreplicas {replicas}\n"),
        )?;
        Self::open_dir(dir)
    }

    /// Opens a sharded directory with plain file devices.
    pub fn open_dir<P: AsRef<Path>>(dir: P) -> Result<Self> {
        Self::open_dir_mapped(dir, |_role, d| d)
    }
}

fn sum_counters(into: &mut SearchCounters, c: SearchCounters) {
    into.nodes_read += c.nodes_read;
    into.pruned_by_signature += c.pruned_by_signature;
    into.candidates_checked += c.candidates_checked;
    into.false_positives += c.false_positives;
    into.cache_hits += c.cache_hits;
    into.cache_misses += c.cache_misses;
}

/// Typed error for a parallel-merge mutex poisoned by a sibling worker's
/// panic: the query fails with a [`StorageError`] its caller can isolate
/// (one slot of a batch) instead of a propagating panic aborting the run.
fn poisoned_top_k() -> StorageError {
    StorageError::Corrupt("sharded merge state poisoned by a worker panic".into())
}

fn lock_top_k(m: &Mutex<TopK>) -> Result<std::sync::MutexGuard<'_, TopK>> {
    m.lock().map_err(|_| poisoned_top_k())
}

// The sharded engine hands `&ShardedDb` to scoped worker threads (batch
// fan-out and parallel shard workers), so it must be Send + Sync like the
// facade it wraps; assert it at compile time alongside db.rs's stack.
const _: () = {
    const fn shareable<T: Send + Sync + ?Sized>() {}
    shareable::<ShardedDb<MemDevice>>();
    shareable::<ShardedDb<FileDevice>>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(id: u64, x: f64, y: f64) -> SpatialObject<2> {
        SpatialObject::new(id, [x, y], "one two")
    }

    #[test]
    fn str_partition_is_exhaustive_and_balanced() {
        for s in [1usize, 2, 3, 4, 5, 8] {
            let objects: Vec<_> = (0..97)
                .map(|i| obj(i, (i * 37 % 89) as f64, (i * 53 % 71) as f64))
                .collect();
            let parts = str_partition(objects, s);
            assert_eq!(parts.len(), s);
            let total: usize = parts.iter().map(Vec::len).sum();
            assert_eq!(total, 97);
            let (min, max) = parts
                .iter()
                .map(Vec::len)
                .fold((usize::MAX, 0), |(lo, hi), n| (lo.min(n), hi.max(n)));
            assert!(max - min <= s, "sizes {min}..{max} too skewed for s={s}");
            // No object lost or duplicated.
            let mut ids: Vec<u64> = parts.iter().flatten().map(|o| o.id).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..97).collect::<Vec<_>>());
        }
    }

    #[test]
    fn limits_split_conserves_budget() {
        let limits = QueryLimits::none().with_io_budget(10);
        let split = split_limits(&limits, 4);
        let total: u64 = split.iter().map(|l| l.io_budget.unwrap()).sum();
        assert_eq!(total, 10);
        assert_eq!(split[0].io_budget, Some(3));
        assert_eq!(split[3].io_budget, Some(2));
        // Deadline and heap cap replicate, not divide.
        let limits = QueryLimits::none().with_max_heap_size(7);
        for l in split_limits(&limits, 3) {
            assert_eq!(l.max_heap_size, Some(7));
        }
    }

    #[test]
    fn topk_is_canonical_under_arrival_order() {
        let hits = [(3.0, 30), (1.0, 10), (2.0, 20), (2.0, 15), (0.5, 99)];
        let mut forward = TopK::new(3);
        for &(d, id) in &hits {
            forward.insert(obj(id, 0.0, 0.0), d);
        }
        let mut reverse = TopK::new(3);
        for &(d, id) in hits.iter().rev() {
            reverse.insert(obj(id, 0.0, 0.0), d);
        }
        let f: Vec<(u64, f64)> = forward
            .into_sorted()
            .iter()
            .map(|(o, d)| (o.id, *d))
            .collect();
        let r: Vec<(u64, f64)> = reverse
            .into_sorted()
            .iter()
            .map(|(o, d)| (o.id, *d))
            .collect();
        assert_eq!(f, r);
        assert_eq!(f, vec![(99, 0.5), (10, 1.0), (15, 2.0)]);
    }

    #[test]
    fn manifest_roundtrip_and_detection() {
        let dir = std::env::temp_dir().join(format!("ir2-shard-manifest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(sharded_manifest(&dir).unwrap(), None);
        std::fs::write(dir.join(SHARD_MANIFEST), "ir2-sharded v1\nshards 4\n").unwrap();
        assert_eq!(sharded_manifest(&dir).unwrap(), Some(4));
        std::fs::write(dir.join(SHARD_MANIFEST), "something else\n").unwrap();
        assert!(sharded_manifest(&dir).is_err());
        std::fs::write(dir.join(SHARD_MANIFEST), "ir2-sharded v1\nshards zero\n").unwrap();
        assert!(sharded_manifest(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
