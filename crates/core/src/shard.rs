//! Spatially sharded database: S independent [`SpatialKeywordDb`] shards
//! behind one exact scatter-gather top-k engine.
//!
//! ## Partitioning
//!
//! At build time the object set is tiled in STR order (the same
//! sort-tile-recursive discipline the bulk loader uses inside one tree):
//! objects are sorted on x, cut into √S̄ vertical slabs, each slab sorted on
//! y and cut again, yielding S spatially coherent tiles of near-equal
//! cardinality. Each tile becomes a fully independent shard — its own
//! devices, buffer pool, decoded-node cache, vocabulary, and metrics — so
//! shards share **no** locks on the query path.
//!
//! ## Exact merge (no fetch-k-from-every-shard over-read)
//!
//! Every shard exposes an *incremental* distance-first iterator whose
//! frontier-heap minimum ([`frontier_bound`](
//! ir2_irtree::DistanceFirstIter::frontier_bound)) lower-bounds everything
//! the shard can still emit. The merge keeps a global heap of shards keyed
//! by `max(MINDIST(query, shard MBR), frontier bound)` and always steps the
//! shard with the smallest bound; it stops the moment the current k-th
//! distance beats every remaining bound (strictly — ties at the k-th
//! distance keep pulling, so the canonical `(distance, id)` answer is
//! exact). A shard whose MBR is farther than the k-th result is never
//! touched at all: its bound is known from the catalog without any I/O.
//!
//! Soundness: a best-first frontier minimum is non-decreasing and MINDIST
//! lower-bounds everything inside an MBR, so `bound(shard)` ≤ distance of
//! every future emission of that shard; when `min over shards of bound` >
//! k-th distance, no shard can improve the answer. This is the standard
//! branch-and-bound argument, applied across trees instead of within one.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ir2_geo::{OrderedF64, Rect};
use ir2_invindex::iio_topk_limited;
use ir2_irtree::{BoundedStep, DistanceFirstIter, RtreeBaselineIter, SearchCounters, TraceStats};
use ir2_model::{
    DistanceFirstQuery, ExecOutcome, ObjectSource, QueryLimits, SpatialObject, TruncateReason,
};
use ir2_storage::{
    BlockDevice, FileDevice, IoScope, IoSnapshot, MemDevice, MetricsRegistry, Result, RetryScope,
    StorageError,
};

use crate::db::{run_batch, run_batch_isolated, CountingSource};
use crate::report::QueryError;
use crate::{Algorithm, DbConfig, DeviceSet, QueryReport, SpatialKeywordDb};

/// Name of the manifest file marking a directory as a sharded database.
pub const SHARD_MANIFEST: &str = "SHARDS";

/// Reads the shard manifest of `dir`, if one exists.
///
/// `Ok(None)` means the directory is not a sharded database (no manifest);
/// a present-but-malformed manifest is a [`StorageError::Corrupt`]. This is
/// how the CLI decides whether to route a path to [`ShardedDb`] or to the
/// monolithic [`SpatialKeywordDb`].
pub fn sharded_manifest<P: AsRef<Path>>(dir: P) -> Result<Option<usize>> {
    let path = dir.as_ref().join(SHARD_MANIFEST);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut lines = text.lines();
    if lines.next().map(str::trim) != Some("ir2-sharded v1") {
        return Err(StorageError::Corrupt(
            "shard manifest: bad or missing header (expected `ir2-sharded v1`)".into(),
        ));
    }
    for line in lines {
        if let Some(n) = line.trim().strip_prefix("shards ") {
            let count: usize = n.trim().parse().map_err(|_| {
                StorageError::Corrupt(format!("shard manifest: bad shard count `{n}`"))
            })?;
            if count == 0 {
                return Err(StorageError::Corrupt(
                    "shard manifest: shard count must be at least 1".into(),
                ));
            }
            return Ok(Some(count));
        }
    }
    Err(StorageError::Corrupt(
        "shard manifest: missing `shards N` line".into(),
    ))
}

fn shard_dir_name(i: usize) -> String {
    format!("shard-{i:03}")
}

/// Tiles `objects` into `s` STR-ordered partitions of near-equal size:
/// sort on x, cut into ⌈√s⌉ slabs (shard counts distributed round-robin),
/// sort each slab on y, cut per slab. Ties (coincident points) break on
/// id so the tiling is deterministic.
fn str_partition(mut objects: Vec<SpatialObject<2>>, s: usize) -> Vec<Vec<SpatialObject<2>>> {
    debug_assert!(s >= 1);
    if s == 1 {
        return vec![objects];
    }
    objects.sort_by(|a, b| {
        a.point
            .coord(0)
            .total_cmp(&b.point.coord(0))
            .then(a.point.coord(1).total_cmp(&b.point.coord(1)))
            .then(a.id.cmp(&b.id))
    });
    let cols = (s as f64).sqrt().ceil() as usize;
    let (base, extra) = (s / cols, s % cols);
    let mut out = Vec::with_capacity(s);
    let mut shards_left = s;
    let mut rest = objects;
    for c in 0..cols {
        let col_shards = base + usize::from(c < extra);
        // Objects proportional to this slab's shard share; exact at the end.
        let col_n = rest.len() * col_shards / shards_left;
        shards_left -= col_shards;
        let mut slab: Vec<SpatialObject<2>> = rest.drain(..col_n).collect();
        slab.sort_by(|a, b| {
            a.point
                .coord(1)
                .total_cmp(&b.point.coord(1))
                .then(a.point.coord(0).total_cmp(&b.point.coord(0)))
                .then(a.id.cmp(&b.id))
        });
        let (tile_base, tile_extra) = (slab.len() / col_shards, slab.len() % col_shards);
        let mut slab_rest = slab;
        for t in 0..col_shards {
            let tile_n = tile_base + usize::from(t < tile_extra);
            out.push(slab_rest.drain(..tile_n).collect());
        }
        debug_assert!(slab_rest.is_empty());
    }
    debug_assert!(rest.is_empty());
    debug_assert_eq!(out.len(), s);
    out
}

/// Bounding rectangle of a partition (`None` when empty).
fn rect_of(objects: &[SpatialObject<2>]) -> Option<Rect<2>> {
    let mut it = objects.iter();
    let mut r = Rect::from_point(it.next()?.point);
    for o in it {
        r.union_in_place(&Rect::from_point(o.point));
    }
    Some(r)
}

/// Bounding rectangle of a shard's R-Tree (union of root entry MBRs), for
/// reopened databases where the build-time partition is not in memory.
fn tree_mbr<D: BlockDevice + 'static>(db: &SpatialKeywordDb<D>) -> Result<Option<Rect<2>>> {
    let tree = db.rtree();
    let Some(root) = tree.root() else {
        return Ok(None);
    };
    let (node, _) = tree.read_node_cached(root)?;
    let mut entries = node.entries.iter();
    let Some(first) = entries.next() else {
        return Ok(None);
    };
    let mut r = first.rect;
    for e in entries {
        r.union_in_place(&e.rect);
    }
    Ok(Some(r))
}

/// Splits one query's limits across `s` shards: the **deadline** is shared
/// (every shard races the same wall-clock instant, like a batch), the
/// **I/O budget** is divided evenly (remainder to the first shards — the
/// total charged I/O across shards never exceeds the caller's budget), and
/// the **frontier cap** applies per shard (each shard runs its own heap).
fn split_limits(limits: &QueryLimits, s: usize) -> Vec<QueryLimits> {
    (0..s as u64)
        .map(|i| QueryLimits {
            deadline: limits.deadline,
            io_budget: limits
                .io_budget
                .map(|b| b / s as u64 + u64::from(i < b % s as u64)),
            max_heap_size: limits.max_heap_size,
        })
        .collect()
}

// ---------------------------------------------------------------------
// Per-shard iterator plumbing.
// ---------------------------------------------------------------------

/// One shard's incremental distance-first iterator, algorithm-erased. IIO
/// is not here: it is non-incremental and merges per-shard *results*.
enum ShardIter<'a, D: BlockDevice + 'static> {
    RTree(RtreeBaselineIter<'a, 2, ir2_storage::TrackedDevice<D>>),
    Ir2(DistanceFirstIter<'a, 2, ir2_storage::TrackedDevice<D>, ir2_irtree::Ir2Payload>),
    Mir2(DistanceFirstIter<'a, 2, ir2_storage::TrackedDevice<D>, ir2_irtree::MirPayload<2>>),
}

impl<'a, D: BlockDevice + 'static> ShardIter<'a, D> {
    fn open(
        shard: &'a SpatialKeywordDb<D>,
        src: &'a CountingSource<'a, 2>,
        alg: Algorithm,
        query: &DistanceFirstQuery<2>,
        limits: QueryLimits,
    ) -> Self {
        match alg {
            Algorithm::RTree => {
                Self::RTree(RtreeBaselineIter::new(shard.rtree(), src, query).limited(limits))
            }
            Algorithm::Ir2 => Self::Ir2(
                DistanceFirstIter::new(shard.ir2_tree(), src, query.clone()).limited(limits),
            ),
            Algorithm::Mir2 => Self::Mir2(
                DistanceFirstIter::new(shard.mir2_tree(), src, query.clone()).limited(limits),
            ),
            Algorithm::Iio => unreachable!("IIO merges per-shard results, not iterators"),
        }
    }

    /// Bounded step: advance only while the shard's frontier head is ≤
    /// `limit` (see [`DistanceFirstIter::next_within`]). The merge passes
    /// the tightest bound it holds — the next-best shard's bound or the
    /// current k-th distance — so a shard never descends toward a result
    /// the merge would discard.
    fn next_hit_within(&mut self, limit: f64) -> Result<BoundedStep<2>> {
        match self {
            Self::RTree(it) => it.next_within(limit),
            Self::Ir2(it) => it.next_within(limit),
            Self::Mir2(it) => it.next_within(limit),
        }
    }

    fn frontier_bound(&self) -> Option<f64> {
        match self {
            Self::RTree(it) => it.frontier_bound(),
            Self::Ir2(it) => it.frontier_bound(),
            Self::Mir2(it) => it.frontier_bound(),
        }
    }

    fn counters(&self) -> SearchCounters {
        match self {
            Self::RTree(it) => it.counters(),
            Self::Ir2(it) => it.counters(),
            Self::Mir2(it) => it.counters(),
        }
    }

    fn truncation(&self) -> Option<TruncateReason> {
        match self {
            Self::RTree(it) => it.truncation(),
            Self::Ir2(it) => it.truncation(),
            Self::Mir2(it) => it.truncation(),
        }
    }
}

struct ShardCursor<'a, D: BlockDevice + 'static> {
    iter: ShardIter<'a, D>,
    /// MINDIST from the query to the shard's bounding rect — a constant
    /// lower bound that holds before any I/O (a far shard with an empty
    /// frontier key of 0.0 is still known to be far).
    rect_bound: f64,
    done: bool,
    stepped: bool,
}

impl<D: BlockDevice + 'static> ShardCursor<'_, D> {
    /// Lower bound on every result this shard can still emit; `None` once
    /// the shard is finished.
    fn bound(&self) -> Option<f64> {
        self.iter.frontier_bound().map(|fb| fb.max(self.rect_bound))
    }
}

/// The canonical bounded top-k: a max-heap of the k smallest `(distance,
/// id)` keys. The `(distance, id)` order makes the kept *set* (and the
/// final order) independent of arrival order — which shard emitted a
/// result first, or which worker thread inserted it first.
struct TopK {
    k: usize,
    heap: BinaryHeap<(OrderedF64, u64)>,
    kept: HashMap<u64, SpatialObject<2>>,
}

impl TopK {
    fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
            kept: HashMap::with_capacity(k + 1),
        }
    }

    fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// Current k-th distance, or +∞ while fewer than k results are held.
    fn threshold(&self) -> f64 {
        if self.is_full() {
            self.heap.peek().map(|&(d, _)| d.0).unwrap_or(f64::INFINITY)
        } else {
            f64::INFINITY
        }
    }

    fn insert(&mut self, obj: SpatialObject<2>, d: f64) {
        let key = (OrderedF64(d), obj.id);
        if self.is_full() {
            match self.heap.peek() {
                Some(&worst) if key < worst => {
                    self.heap.pop();
                    self.kept.remove(&worst.1);
                }
                _ => return,
            }
        }
        self.kept.insert(obj.id, obj);
        self.heap.push(key);
    }

    fn into_sorted(mut self) -> Vec<(SpatialObject<2>, f64)> {
        let mut keys = self.heap.into_vec();
        keys.sort_unstable();
        keys.into_iter()
            .filter_map(|(d, id)| self.kept.remove(&id).map(|o| (o, d.0)))
            .collect()
    }
}

/// What one merge produces before report assembly.
struct Merged {
    results: Vec<(SpatialObject<2>, f64)>,
    counters: SearchCounters,
    object_loads: u64,
    outcome: Option<TruncateReason>,
    /// Which shards did at least one unit of work (for `shard_*` metrics).
    stepped: Vec<bool>,
}

impl Merged {
    fn empty(s: usize) -> Self {
        Self {
            results: Vec::new(),
            counters: SearchCounters::default(),
            object_loads: 0,
            outcome: None,
            stepped: vec![false; s],
        }
    }
}

// ---------------------------------------------------------------------
// The sharded database.
// ---------------------------------------------------------------------

/// S independent [`SpatialKeywordDb`] shards over an STR spatial tiling,
/// answering distance-first top-k queries by an exact scatter-gather merge
/// (see the module docs for the bound argument).
///
/// Shards are fully isolated: separate devices, buffer pools, decoded-node
/// caches, vocabularies, and metric registries. The merge attributes I/O
/// per shard through the same [`IoScope`] machinery the batch engine uses
/// and folds everything into one [`QueryReport`], so a sharded query's
/// report is comparable with a monolithic one.
///
/// Object ids are assumed unique across the dataset (the generators and
/// the CLI guarantee this); the canonical result order is `(distance,
/// id)`, which makes answers deterministic across shard counts and worker
/// schedules. The monolithic engines canonicalize ties at the k-th
/// distance to the same `(distance, id)` order (their collectors drain the
/// tied group and reorder it by id), so sharded and monolithic answers are
/// byte-identical — the differential oracle harness (`ir2 fuzz`) asserts
/// exactly this.
pub struct ShardedDb<D: BlockDevice + 'static> {
    shards: Vec<SpatialKeywordDb<D>>,
    bounds: Vec<Option<Rect<2>>>,
    config: DbConfig,
    metrics: Arc<MetricsRegistry>,
}

impl<D: BlockDevice + 'static> ShardedDb<D> {
    /// Builds a sharded database: `objects` are STR-tiled into
    /// `device_sets.len()` partitions and each partition is built into its
    /// own shard **in parallel** (builds are independent).
    ///
    /// Requires at least one device set and at least one object per shard
    /// (an empty shard would index nothing and answer nothing).
    pub fn build(
        device_sets: Vec<DeviceSet<D>>,
        objects: impl IntoIterator<Item = SpatialObject<2>>,
        config: DbConfig,
    ) -> Result<Self> {
        let s = device_sets.len();
        let objects: Vec<SpatialObject<2>> = objects.into_iter().collect();
        if s == 0 {
            return Err(StorageError::Corrupt(
                "a sharded database needs at least one shard".into(),
            ));
        }
        if objects.len() < s {
            return Err(StorageError::Corrupt(format!(
                "cannot tile {} objects into {} shards (each shard needs at least one object)",
                objects.len(),
                s
            )));
        }
        let parts = str_partition(objects, s);
        let bounds: Vec<Option<Rect<2>>> = parts.iter().map(|p| rect_of(p)).collect();
        let mut slots: Vec<Option<Result<SpatialKeywordDb<D>>>> = (0..s).map(|_| None).collect();
        std::thread::scope(|scope| {
            for ((set, part), slot) in device_sets.into_iter().zip(parts).zip(slots.iter_mut()) {
                let cfg = config.clone();
                scope.spawn(move || *slot = Some(SpatialKeywordDb::build(set, part, cfg)));
            }
        });
        let shards = slots
            .into_iter()
            .map(|slot| {
                // An unfilled slot (a build worker that died without
                // reporting) surfaces as a typed error, not a crash.
                slot.unwrap_or_else(|| {
                    Err(StorageError::Corrupt(
                        "shard build worker terminated without a result".into(),
                    ))
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            shards,
            bounds,
            config,
            metrics: Arc::new(MetricsRegistry::new()),
        })
    }

    /// Reopens a sharded database from already-opened device sets, one per
    /// shard. Shard bounding rects are recomputed from each shard's R-Tree
    /// root MBR (one cached node read per shard).
    pub fn open(device_sets: Vec<DeviceSet<D>>) -> Result<Self> {
        if device_sets.is_empty() {
            return Err(StorageError::Corrupt(
                "a sharded database needs at least one shard".into(),
            ));
        }
        let shards = device_sets
            .into_iter()
            .map(SpatialKeywordDb::open)
            .collect::<Result<Vec<_>>>()?;
        let bounds = shards.iter().map(tree_mbr).collect::<Result<Vec<_>>>()?;
        let config = shards[0].config().clone();
        Ok(Self {
            shards,
            bounds,
            config,
            metrics: Arc::new(MetricsRegistry::new()),
        })
    }

    /// Opens a sharded directory created by
    /// [`create_in_dir`](ShardedDb::create_in_dir), wrapping every shard
    /// device through `wrap` (role names as in [`DeviceSet::map`]) — e.g.
    /// into [`RetryDevice`](ir2_storage::RetryDevice)s.
    pub fn open_dir_mapped<P: AsRef<Path>>(
        dir: P,
        mut wrap: impl FnMut(&'static str, FileDevice) -> D,
    ) -> Result<Self> {
        let dir = dir.as_ref();
        let s = sharded_manifest(dir)?.ok_or_else(|| {
            StorageError::Corrupt(format!(
                "{} has no {SHARD_MANIFEST} manifest (not a sharded database)",
                dir.display()
            ))
        })?;
        let sets = (0..s)
            .map(|i| DeviceSet::open_dir(dir.join(shard_dir_name(i))).map(|set| set.map(&mut wrap)))
            .collect::<Result<Vec<_>>>()?;
        Self::open(sets)
    }

    /// The shards, in tile order. Each is a complete [`SpatialKeywordDb`];
    /// integrity checks and statistics go through these directly.
    pub fn shards(&self) -> &[SpatialKeywordDb<D>] {
        &self.shards
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard bounding rectangles (`None` for an empty shard).
    pub fn bounds(&self) -> &[Option<Rect<2>>] {
        &self.bounds
    }

    /// The configuration every shard was built with.
    pub fn config(&self) -> &DbConfig {
        &self.config
    }

    /// Total objects across shards.
    pub fn total_objects(&self) -> u64 {
        self.shards.iter().map(|s| s.build_stats().objects).sum()
    }

    /// The sharded engine's metrics registry (`sharded_*` and `shard_*`
    /// series; each shard additionally keeps its own registry).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    // ------------------------------------------------------------------
    // Queries.
    // ------------------------------------------------------------------

    /// Answers a distance-first top-k query by the exact sequential
    /// scatter-gather merge. The answer equals the monolithic answer on
    /// the same objects (canonical `(distance, id)` order; see the type
    /// docs for the tie caveat).
    pub fn distance_first(
        &self,
        alg: Algorithm,
        query: &DistanceFirstQuery<2>,
    ) -> Result<QueryReport> {
        self.distance_first_limited(alg, query, QueryLimits::none())
    }

    /// [`distance_first`](ShardedDb::distance_first) under execution
    /// limits, split across shards by [the documented
    /// semantics](self#limits): shared deadline, divided I/O budget,
    /// per-shard frontier cap. On truncation the report's results are the
    /// exact top-m prefix within the smallest truncated shard's cut
    /// radius — every reported result provably beats everything unseen.
    pub fn distance_first_limited(
        &self,
        alg: Algorithm,
        query: &DistanceFirstQuery<2>,
        limits: QueryLimits,
    ) -> Result<QueryReport> {
        let (report, stepped) = self.scoped_topk(alg, query, limits)?;
        self.publish(alg, &report, &stepped);
        Ok(report)
    }

    /// [`distance_first`](ShardedDb::distance_first) with parallel shard
    /// workers: up to `threads` scoped workers drain shard frontiers
    /// concurrently under a shared branch-and-bound threshold (a worker
    /// stops as soon as its shard's bound exceeds the current k-th
    /// distance, which only shrinks — so every stop is final and the
    /// gathered superset contains the exact top-k). The answer is
    /// identical to the sequential merge; the point is single-query
    /// latency when shards sit on independent devices. Unlimited
    /// execution only — under [`QueryLimits`] use
    /// [`distance_first_limited`](ShardedDb::distance_first_limited),
    /// whose sequential schedule makes truncation deterministic.
    pub fn distance_first_parallel(
        &self,
        alg: Algorithm,
        query: &DistanceFirstQuery<2>,
        threads: usize,
    ) -> Result<QueryReport> {
        if alg == Algorithm::Iio || query.k == 0 || self.shards.len() == 1 || threads <= 1 {
            return self.distance_first(alg, query);
        }
        let t0 = Instant::now();
        let shared = Mutex::new(TopK::new(query.k));
        let idxs: Vec<usize> = (0..self.shards.len()).collect();
        struct WorkerOut {
            index_io: IoSnapshot,
            object_io: IoSnapshot,
            counters: SearchCounters,
            loads: u64,
            stepped: bool,
            retries: u64,
            backoff: Duration,
        }
        let outs = run_batch(&idxs, threads, |&i| {
            let shard = &self.shards[i];
            let rect_bound = self.bounds[i]
                .map(|r| r.min_dist(&query.point))
                .unwrap_or(f64::INFINITY);
            let scope = IoScope::enter();
            let retry = RetryScope::enter();
            let run = (|| {
                let src = CountingSource::new(shard.object_store() as &dyn ObjectSource<2>);
                let mut iter = ShardIter::open(shard, &src, alg, query, QueryLimits::none());
                let mut stepped = false;
                while let Some(b) = iter.frontier_bound().map(|fb| fb.max(rect_bound)) {
                    // Snapshot the shared threshold and advance only up to
                    // it (node-granular, like the sequential merge). The
                    // threshold only shrinks as siblings insert, so a
                    // stale snapshot is merely a looser — still sound —
                    // bound.
                    let limit = {
                        let g = lock_top_k(&shared)?;
                        if g.is_full() {
                            if b > g.threshold() {
                                break;
                            }
                            g.threshold()
                        } else {
                            f64::INFINITY
                        }
                    };
                    match iter.next_hit_within(limit)? {
                        BoundedStep::Hit(obj, d) => {
                            lock_top_k(&shared)?.insert(obj, d);
                        }
                        BoundedStep::Pending => {}
                        BoundedStep::Done => {
                            stepped = true;
                            break;
                        }
                    }
                    stepped = true;
                }
                Ok((iter.counters(), src.loads(), stepped))
            })();
            let retry_stats = retry.finish();
            let scoped = scope.finish();
            run.map(|(counters, loads, stepped)| WorkerOut {
                index_io: scoped.for_stats(shard.stats_of(alg)),
                object_io: scoped.for_stats(shard.objects_io_stats()),
                counters,
                loads,
                stepped,
                retries: retry_stats.retries,
                backoff: retry_stats.backoff,
            })
        })?;
        let mut merged = Merged::empty(self.shards.len());
        let results = shared
            .into_inner()
            .map_err(|_| poisoned_top_k())?
            .into_sorted();
        let (mut index_io, mut object_io) = (IoSnapshot::default(), IoSnapshot::default());
        let (mut retries, mut backoff) = (0u64, Duration::ZERO);
        for (i, w) in outs.iter().enumerate() {
            index_io = index_io + w.index_io;
            object_io = object_io + w.object_io;
            merged.object_loads += w.loads;
            merged.stepped[i] = w.stepped;
            sum_counters(&mut merged.counters, w.counters);
            retries += w.retries;
            backoff += w.backoff;
        }
        let report = self.assemble(
            results,
            index_io,
            object_io,
            &merged,
            retries,
            backoff,
            t0.elapsed(),
        );
        self.publish(alg, &report, &merged.stepped);
        Ok(report)
    }

    /// Answers a batch of queries on `threads` workers (each query runs
    /// its full sequential merge on one worker, like
    /// [`SpatialKeywordDb::batch_topk`]); reports come back in input order
    /// with exact per-query I/O attribution.
    pub fn batch_topk(
        &self,
        alg: Algorithm,
        queries: &[DistanceFirstQuery<2>],
        threads: usize,
    ) -> Result<Vec<QueryReport>> {
        let outs = run_batch(queries, threads, |q| {
            self.scoped_topk(alg, q, QueryLimits::none())
        })?;
        let mut reports = Vec::with_capacity(outs.len());
        for (report, stepped) in outs {
            self.publish(alg, &report, &stepped);
            reports.push(report);
        }
        Ok(reports)
    }

    /// [`batch_topk`](ShardedDb::batch_topk) with per-query fault
    /// isolation and execution limits, mirroring
    /// [`SpatialKeywordDb::batch_topk_isolated`].
    pub fn batch_topk_isolated(
        &self,
        alg: Algorithm,
        queries: &[DistanceFirstQuery<2>],
        threads: usize,
        limits: QueryLimits,
    ) -> Vec<std::result::Result<QueryReport, QueryError>> {
        let outs = run_batch_isolated(queries, threads, |q| {
            self.scoped_topk(alg, q, limits).map_err(Into::into)
        });
        let key = alg.key();
        outs.into_iter()
            .map(|out| match out {
                Ok((report, stepped)) => {
                    self.publish(alg, &report, &stepped);
                    Ok(report)
                }
                Err(e) => {
                    let kind = match &e {
                        QueryError::Storage(_) => "storage",
                        QueryError::Panic(_) => "panic",
                    };
                    self.metrics.add_counter(
                        &format!("sharded_query_failures_total{{alg=\"{key}\",kind=\"{kind}\"}}"),
                        1,
                    );
                    Err(e)
                }
            })
            .collect()
    }

    /// One query, fully attributed: I/O through an [`IoScope`] on the
    /// calling thread, loads through per-shard [`CountingSource`]s, retry
    /// accounting through a [`RetryScope`] — folded into one report.
    fn scoped_topk(
        &self,
        alg: Algorithm,
        query: &DistanceFirstQuery<2>,
        limits: QueryLimits,
    ) -> Result<(QueryReport, Vec<bool>)> {
        let t0 = Instant::now();
        let scope = IoScope::enter();
        let retry = RetryScope::enter();
        let merged = if alg == Algorithm::Iio {
            self.merge_iio(query, &limits)
        } else {
            self.merge_sequential(alg, query, &limits)
        };
        let retry_stats = retry.finish();
        let scoped = scope.finish();
        let mut merged = merged?;
        let (mut index_io, mut object_io) = (IoSnapshot::default(), IoSnapshot::default());
        for shard in &self.shards {
            index_io = index_io + scoped.for_stats(shard.stats_of(alg));
            object_io = object_io + scoped.for_stats(shard.objects_io_stats());
        }
        let results = std::mem::take(&mut merged.results);
        let stepped = std::mem::take(&mut merged.stepped);
        let report = self.assemble(
            results,
            index_io,
            object_io,
            &merged,
            retry_stats.retries,
            retry_stats.backoff,
            t0.elapsed(),
        );
        Ok((report, stepped))
    }

    /// The exact sequential merge (module docs): a global heap of shards
    /// keyed by their current lower bound, lazily revalidated, always
    /// stepping the minimum; stops when the k-th distance strictly beats
    /// every remaining bound.
    fn merge_sequential(
        &self,
        alg: Algorithm,
        query: &DistanceFirstQuery<2>,
        limits: &QueryLimits,
    ) -> Result<Merged> {
        let s = self.shards.len();
        let mut merged = Merged::empty(s);
        if query.k == 0 {
            return Ok(merged);
        }
        let per_shard = split_limits(limits, s);
        let sources: Vec<CountingSource<'_, 2>> = self
            .shards
            .iter()
            .map(|sh| CountingSource::new(sh.object_store() as &dyn ObjectSource<2>))
            .collect();
        let mut cursors: Vec<ShardCursor<'_, D>> = Vec::with_capacity(s);
        for (i, shard) in self.shards.iter().enumerate() {
            cursors.push(ShardCursor {
                iter: ShardIter::open(shard, &sources[i], alg, query, per_shard[i]),
                rect_bound: self.bounds[i]
                    .map(|r| r.min_dist(&query.point))
                    .unwrap_or(f64::INFINITY),
                done: false,
                stepped: false,
            });
        }

        let mut topk = TopK::new(query.k);
        // (shard index, reason, cut radius) per truncated shard.
        let mut truncs: Vec<(usize, TruncateReason, f64)> = Vec::new();
        let mut order: BinaryHeap<Reverse<(OrderedF64, usize)>> = cursors
            .iter()
            .enumerate()
            .map(|(i, c)| Reverse((OrderedF64(c.rect_bound), i)))
            .collect();

        let finish = |cursor: &mut ShardCursor<'_, D>,
                      truncs: &mut Vec<(usize, TruncateReason, f64)>,
                      i: usize| {
            cursor.done = true;
            if let Some(reason) = cursor.iter.truncation() {
                truncs.push((i, reason, cursor.bound().unwrap_or(f64::INFINITY)));
            }
        };

        while let Some(Reverse((OrderedF64(b), i))) = order.pop() {
            if cursors[i].done {
                continue;
            }
            let Some(cur) = cursors[i].bound() else {
                finish(&mut cursors[i], &mut truncs, i);
                continue;
            };
            if cur > b {
                // Stale heap entry: requeue at the shard's true bound.
                order.push(Reverse((OrderedF64(cur), i)));
                continue;
            }
            // Strict `>`: ties at the k-th distance keep pulling so the
            // canonical (distance, id) answer set is exact.
            if topk.is_full() && cur > topk.threshold() {
                break;
            }
            // Advance the shard at node granularity: never past the
            // next-best shard's bound (the point where another shard
            // should be stepped instead — this simulates one global
            // priority queue across all shards), and once the top-k is
            // full, never past the k-th distance (work beyond it would be
            // discarded; `≤` keeps ties at the k-th distance flowing).
            let rival = order
                .peek()
                .map_or(f64::INFINITY, |&Reverse((OrderedF64(rb), _))| rb);
            let limit = if topk.is_full() {
                rival.min(topk.threshold())
            } else {
                rival
            };
            match cursors[i].iter.next_hit_within(limit)? {
                BoundedStep::Hit(obj, d) => {
                    cursors[i].stepped = true;
                    topk.insert(obj, d);
                    match cursors[i].bound() {
                        Some(nb) => order.push(Reverse((OrderedF64(nb), i))),
                        None => finish(&mut cursors[i], &mut truncs, i),
                    }
                }
                BoundedStep::Pending => {
                    cursors[i].stepped = true;
                    match cursors[i].bound() {
                        Some(nb) => order.push(Reverse((OrderedF64(nb), i))),
                        None => finish(&mut cursors[i], &mut truncs, i),
                    }
                }
                BoundedStep::Done => {
                    cursors[i].stepped = true;
                    finish(&mut cursors[i], &mut truncs, i);
                }
            }
        }

        merged.results = topk.into_sorted();
        if !truncs.is_empty() {
            truncs.sort_by_key(|&(i, _, _)| i);
            // Results are exact only within the smallest cut radius: a
            // truncated shard guarantees nothing about distances at or
            // beyond its bound at the moment it stopped.
            let cut = truncs
                .iter()
                .map(|&(_, _, c)| c)
                .fold(f64::INFINITY, f64::min);
            merged.results.retain(|&(_, d)| d < cut);
            merged.outcome = Some(truncs[0].1);
        }
        for (i, c) in cursors.iter().enumerate() {
            merged.stepped[i] = c.stepped;
            sum_counters(&mut merged.counters, c.iter.counters());
            merged.object_loads += sources[i].loads();
        }
        Ok(merged)
    }

    /// IIO across shards: the inverted index is non-incremental, so this
    /// is the documented fetch-k-from-every-shard over-read (each shard
    /// computes its own top-k, the union is re-ranked). Degrades
    /// all-or-nothing under limits, like the monolithic IIO.
    fn merge_iio(&self, query: &DistanceFirstQuery<2>, limits: &QueryLimits) -> Result<Merged> {
        let s = self.shards.len();
        let mut merged = Merged::empty(s);
        let per_shard = split_limits(limits, s);
        let mut topk = TopK::new(query.k);
        for (i, shard) in self.shards.iter().enumerate() {
            let src = CountingSource::new(shard.object_store() as &dyn ObjectSource<2>);
            let out = iio_topk_limited(
                shard.inverted_index(),
                shard.vocab(),
                &src,
                query,
                per_shard[i],
            )?;
            merged.object_loads += src.loads();
            merged.stepped[i] = true;
            match out {
                ExecOutcome::Complete(hits) => {
                    for (obj, d) in hits {
                        topk.insert(obj, d);
                    }
                }
                ExecOutcome::Truncated { reason, .. } => {
                    merged.outcome = merged.outcome.or(Some(reason));
                }
            }
        }
        // All-or-nothing: any truncated shard could have held the true
        // top-1, so a partial union would not be a prefix of the answer.
        if merged.outcome.is_none() {
            merged.results = topk.into_sorted();
        }
        Ok(merged)
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        &self,
        results: Vec<(SpatialObject<2>, f64)>,
        index_io: IoSnapshot,
        object_io: IoSnapshot,
        merged: &Merged,
        retries: u64,
        backoff: Duration,
        wall: Duration,
    ) -> QueryReport {
        let io = index_io + object_io;
        QueryReport {
            results,
            index_io,
            object_io,
            io,
            object_loads: merged.object_loads,
            counters: merged.counters,
            pruning: TraceStats::default(),
            simulated: self.config.cost_model.time(io),
            wall,
            outcome: merged.outcome,
            retries,
            backoff,
        }
    }

    /// Folds one finished query into the sharded registry: engine-level
    /// series plus a per-shard activity counter (how many queries actually
    /// touched each shard — the scatter-gather's pruning effectiveness).
    fn publish(&self, alg: Algorithm, r: &QueryReport, stepped: &[bool]) {
        let key = alg.key();
        let m = &self.metrics;
        m.add_counter(&format!("sharded_queries_total{{alg=\"{key}\"}}"), 1);
        m.observe_io(&format!("{{alg=\"{key}\",engine=\"sharded\"}}"), r.io);
        m.histogram(&format!("sharded_query_io_blocks{{alg=\"{key}\"}}"))
            .observe(r.io.total());
        m.histogram("sharded_query_shards_touched")
            .observe(stepped.iter().filter(|&&s| s).count() as u64);
        for (i, &st) in stepped.iter().enumerate() {
            if st {
                m.add_counter(&format!("shard_queries_total{{shard=\"{i}\"}}"), 1);
            }
        }
        if let Some(reason) = r.outcome {
            m.add_counter(
                &format!(
                    "sharded_queries_truncated_total{{alg=\"{key}\",reason=\"{}\"}}",
                    reason.key()
                ),
                1,
            );
        }
    }

    /// Prometheus exposition of the sharded engine: per-shard gauges
    /// (`shard_objects`, `shard_io_read_blocks`, `shard_io_write_blocks`)
    /// refreshed from each shard's device counters, plus every
    /// `sharded_*` / `shard_*` series accumulated so far.
    pub fn metrics_prometheus(&self) -> String {
        self.metrics
            .set_gauge("shard_count", self.shards.len() as f64);
        for (i, shard) in self.shards.iter().enumerate() {
            self.metrics.set_gauge(
                &format!("shard_objects{{shard=\"{i}\"}}"),
                shard.build_stats().objects as f64,
            );
            let (o, r, i2, m2, inv) = shard.io_totals();
            let all = [o, r, i2, m2, inv];
            let reads: u64 = all.iter().map(|s| s.random_reads + s.seq_reads).sum();
            let writes: u64 = all.iter().map(|s| s.random_writes + s.seq_writes).sum();
            self.metrics.set_gauge(
                &format!("shard_io_read_blocks{{shard=\"{i}\"}}"),
                reads as f64,
            );
            self.metrics.set_gauge(
                &format!("shard_io_write_blocks{{shard=\"{i}\"}}"),
                writes as f64,
            );
        }
        self.metrics.export_prometheus()
    }
}

impl ShardedDb<FileDevice> {
    /// Creates a sharded database under `dir`: one `shard-NNN/` device
    /// directory per shard plus a `SHARDS` manifest, then builds every
    /// shard (in parallel) from the STR tiling of `objects`.
    pub fn create_in_dir<P: AsRef<Path>>(
        dir: P,
        objects: impl IntoIterator<Item = SpatialObject<2>>,
        config: DbConfig,
        shards: usize,
    ) -> Result<Self> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let sets = (0..shards)
            .map(|i| DeviceSet::create_in_dir(dir.join(shard_dir_name(i))))
            .collect::<Result<Vec<_>>>()?;
        let db = Self::build(sets, objects, config)?;
        // The manifest is written last: a crash mid-build leaves a
        // directory that is not recognized as a sharded database rather
        // than one that opens half-built.
        std::fs::write(
            dir.join(SHARD_MANIFEST),
            format!("ir2-sharded v1\nshards {shards}\n"),
        )?;
        Ok(db)
    }

    /// Opens a sharded directory with plain file devices.
    pub fn open_dir<P: AsRef<Path>>(dir: P) -> Result<Self> {
        Self::open_dir_mapped(dir, |_role, d| d)
    }
}

fn sum_counters(into: &mut SearchCounters, c: SearchCounters) {
    into.nodes_read += c.nodes_read;
    into.pruned_by_signature += c.pruned_by_signature;
    into.candidates_checked += c.candidates_checked;
    into.false_positives += c.false_positives;
    into.cache_hits += c.cache_hits;
    into.cache_misses += c.cache_misses;
}

/// Typed error for a parallel-merge mutex poisoned by a sibling worker's
/// panic: the query fails with a [`StorageError`] its caller can isolate
/// (one slot of a batch) instead of a propagating panic aborting the run.
fn poisoned_top_k() -> StorageError {
    StorageError::Corrupt("sharded merge state poisoned by a worker panic".into())
}

fn lock_top_k(m: &Mutex<TopK>) -> Result<std::sync::MutexGuard<'_, TopK>> {
    m.lock().map_err(|_| poisoned_top_k())
}

// The sharded engine hands `&ShardedDb` to scoped worker threads (batch
// fan-out and parallel shard workers), so it must be Send + Sync like the
// facade it wraps; assert it at compile time alongside db.rs's stack.
const _: () = {
    const fn shareable<T: Send + Sync + ?Sized>() {}
    shareable::<ShardedDb<MemDevice>>();
    shareable::<ShardedDb<FileDevice>>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(id: u64, x: f64, y: f64) -> SpatialObject<2> {
        SpatialObject::new(id, [x, y], "one two")
    }

    #[test]
    fn str_partition_is_exhaustive_and_balanced() {
        for s in [1usize, 2, 3, 4, 5, 8] {
            let objects: Vec<_> = (0..97)
                .map(|i| obj(i, (i * 37 % 89) as f64, (i * 53 % 71) as f64))
                .collect();
            let parts = str_partition(objects, s);
            assert_eq!(parts.len(), s);
            let total: usize = parts.iter().map(Vec::len).sum();
            assert_eq!(total, 97);
            let (min, max) = parts
                .iter()
                .map(Vec::len)
                .fold((usize::MAX, 0), |(lo, hi), n| (lo.min(n), hi.max(n)));
            assert!(max - min <= s, "sizes {min}..{max} too skewed for s={s}");
            // No object lost or duplicated.
            let mut ids: Vec<u64> = parts.iter().flatten().map(|o| o.id).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..97).collect::<Vec<_>>());
        }
    }

    #[test]
    fn limits_split_conserves_budget() {
        let limits = QueryLimits::none().with_io_budget(10);
        let split = split_limits(&limits, 4);
        let total: u64 = split.iter().map(|l| l.io_budget.unwrap()).sum();
        assert_eq!(total, 10);
        assert_eq!(split[0].io_budget, Some(3));
        assert_eq!(split[3].io_budget, Some(2));
        // Deadline and heap cap replicate, not divide.
        let limits = QueryLimits::none().with_max_heap_size(7);
        for l in split_limits(&limits, 3) {
            assert_eq!(l.max_heap_size, Some(7));
        }
    }

    #[test]
    fn topk_is_canonical_under_arrival_order() {
        let hits = [(3.0, 30), (1.0, 10), (2.0, 20), (2.0, 15), (0.5, 99)];
        let mut forward = TopK::new(3);
        for &(d, id) in &hits {
            forward.insert(obj(id, 0.0, 0.0), d);
        }
        let mut reverse = TopK::new(3);
        for &(d, id) in hits.iter().rev() {
            reverse.insert(obj(id, 0.0, 0.0), d);
        }
        let f: Vec<(u64, f64)> = forward
            .into_sorted()
            .iter()
            .map(|(o, d)| (o.id, *d))
            .collect();
        let r: Vec<(u64, f64)> = reverse
            .into_sorted()
            .iter()
            .map(|(o, d)| (o.id, *d))
            .collect();
        assert_eq!(f, r);
        assert_eq!(f, vec![(99, 0.5), (10, 1.0), (15, 2.0)]);
    }

    #[test]
    fn manifest_roundtrip_and_detection() {
        let dir = std::env::temp_dir().join(format!("ir2-shard-manifest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(sharded_manifest(&dir).unwrap(), None);
        std::fs::write(dir.join(SHARD_MANIFEST), "ir2-sharded v1\nshards 4\n").unwrap();
        assert_eq!(sharded_manifest(&dir).unwrap(), Some(4));
        std::fs::write(dir.join(SHARD_MANIFEST), "something else\n").unwrap();
        assert!(sharded_manifest(&dir).is_err());
        std::fs::write(dir.join(SHARD_MANIFEST), "ir2-sharded v1\nshards zero\n").unwrap();
        assert!(sharded_manifest(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
