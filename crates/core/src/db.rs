//! The database facade: one object file, four index structures, measured
//! queries — the paper's experimental apparatus as a library.

use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ir2_geo::Rect;
use ir2_invindex::{iio_topk, iio_topk_limited, InvertedIndex};
use ir2_irtree::{
    distance_first_region_topk_prefetched_traced, distance_first_topk_prefetched_limited_traced,
    distance_first_topk_prefetched_traced, general_topk_prefetched, insert_object,
    rtree_baseline_topk_prefetched_limited_traced, rtree_baseline_topk_prefetched_traced,
    GeneralQuery, Ir2Payload, MirPayload, SearchCounters, StatsSink, TraceSink, TraceStats,
};
use ir2_model::{
    DistanceFirstQuery, ObjPtr, ObjectSource, ObjectStore, QueryLimits, SpatialObject,
};
use ir2_rtree::{NodeCache, RTree, RTreeConfig, UnitPayload};
use ir2_sigfile::{MultiLevelScheme, SignatureScheme};
use ir2_storage::{
    BlockDevice, FileDevice, Histogram, IoScope, IoSnapshot, IoStats, MemDevice, MetricsRegistry,
    Result, RetryScope, ShadowPair, StorageError, TrackedDevice, BLOCK_SIZE, RECORD_HEADER_LEN,
};
use ir2_text::{tokenize, IrScorer, RankingFn, TermId, Vocabulary};

use crate::report::QueryError;
use crate::{Algorithm, BatchReport, BuildStats, DbConfig, GeneralReport, IndexSizes, QueryReport};

/// One block device per structure (so sizes and I/O are attributable), plus
/// a catalog device holding the cross-structure metadata.
#[derive(Clone)]
pub struct DeviceSet<D> {
    /// Device of the object file.
    pub objects: D,
    /// Device of the plain R-Tree.
    pub rtree: D,
    /// Device of the IR²-Tree.
    pub ir2: D,
    /// Device of the MIR²-Tree.
    pub mir2: D,
    /// Device of the inverted index.
    pub inverted: D,
    /// Device of the catalog (config, vocabulary, dictionaries).
    pub catalog: D,
}

impl<D> DeviceSet<D> {
    /// Applies `f` to every device, preserving roles. The first argument
    /// names the role (`"objects"`, `"rtree"`, `"ir2"`, `"mir2"`,
    /// `"inverted"`, `"catalog"`) so wrappers can label themselves — e.g.
    /// wrapping each device in a
    /// [`RetryDevice`](ir2_storage::RetryDevice) with per-device metrics.
    pub fn map<E>(self, mut f: impl FnMut(&'static str, D) -> E) -> DeviceSet<E> {
        DeviceSet {
            objects: f("objects", self.objects),
            rtree: f("rtree", self.rtree),
            ir2: f("ir2", self.ir2),
            mir2: f("mir2", self.mir2),
            inverted: f("inverted", self.inverted),
            catalog: f("catalog", self.catalog),
        }
    }

    /// The on-disk file name for each device role, in the same order
    /// [`map`](Self::map) visits them. Replication copies and scrubs these
    /// files directly, so the names are part of the layout contract.
    pub const fn file_names() -> [&'static str; 6] {
        [
            "objects.blocks",
            "rtree.blocks",
            "ir2.blocks",
            "mir2.blocks",
            "inverted.blocks",
            "catalog.blocks",
        ]
    }

    /// The six devices as role-named references, in [`file_names`]
    /// (Self::file_names) order — for code that iterates a set (replica
    /// verification, scrubbing) rather than addressing roles by field.
    pub fn as_refs(&self) -> [(&'static str, &D); 6] {
        [
            ("objects", &self.objects),
            ("rtree", &self.rtree),
            ("ir2", &self.ir2),
            ("mir2", &self.mir2),
            ("inverted", &self.inverted),
            ("catalog", &self.catalog),
        ]
    }
}

impl DeviceSet<MemDevice> {
    /// A volatile set for experiments and tests.
    pub fn in_memory() -> Self {
        Self {
            objects: MemDevice::new(),
            rtree: MemDevice::new(),
            ir2: MemDevice::new(),
            mir2: MemDevice::new(),
            inverted: MemDevice::new(),
            catalog: MemDevice::new(),
        }
    }
}

impl DeviceSet<FileDevice> {
    /// Creates (truncating) the device files in `dir`.
    pub fn create_in_dir<P: AsRef<Path>>(dir: P) -> Result<Self> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let mut f = DeviceSet::<FileDevice>::file_names()
            .into_iter()
            .map(|n| FileDevice::create(dir.join(n)));
        Ok(Self {
            objects: f.next().expect("six files")?,
            rtree: f.next().expect("six files")?,
            ir2: f.next().expect("six files")?,
            mir2: f.next().expect("six files")?,
            inverted: f.next().expect("six files")?,
            catalog: f.next().expect("six files")?,
        })
    }

    /// Opens previously created device files in `dir`.
    pub fn open_dir<P: AsRef<Path>>(dir: P) -> Result<Self> {
        let dir = dir.as_ref();
        let mut f = DeviceSet::<FileDevice>::file_names()
            .into_iter()
            .map(|n| FileDevice::open(dir.join(n)));
        Ok(Self {
            objects: f.next().expect("six files")?,
            rtree: f.next().expect("six files")?,
            ir2: f.next().expect("six files")?,
            mir2: f.next().expect("six files")?,
            inverted: f.next().expect("six files")?,
            catalog: f.next().expect("six files")?,
        })
    }
}

struct IoHandles {
    objects: Arc<IoStats>,
    rtree: Arc<IoStats>,
    ir2: Arc<IoStats>,
    mir2: Arc<IoStats>,
    inverted: Arc<IoStats>,
}

/// An [`ObjectSource`] adapter that counts loads locally, so a query
/// running inside the batch engine gets an exact per-query load count
/// (the store's own counter is shared by every concurrent query).
pub(crate) struct CountingSource<'a, const N: usize> {
    inner: &'a dyn ObjectSource<N>,
    count: AtomicU64,
}

impl<'a, const N: usize> CountingSource<'a, N> {
    pub(crate) fn new(inner: &'a dyn ObjectSource<N>) -> Self {
        Self {
            inner,
            count: AtomicU64::new(0),
        }
    }
}

impl<const N: usize> ObjectSource<N> for CountingSource<'_, N> {
    fn load(&self, ptr: ObjPtr) -> Result<SpatialObject<N>> {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.load(ptr)
    }

    fn loads(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

/// Fans `queries` over `threads` scoped workers (work-stealing: each worker
/// claims the next unclaimed index) and returns per-query outputs in input
/// order. The first query error aborts the claiming of further work and is
/// returned after in-flight queries finish.
pub(crate) fn run_batch<Q: Sync, R: Send + Sync>(
    queries: &[Q],
    threads: usize,
    run: impl Fn(&Q) -> Result<R> + Sync,
) -> Result<Vec<R>> {
    let threads = threads.clamp(1, queries.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<std::sync::OnceLock<R>> = (0..queries.len())
        .map(|_| std::sync::OnceLock::new())
        .collect();
    let first_error: std::sync::Mutex<Option<StorageError>> = std::sync::Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= queries.len() {
                    break;
                }
                match run(&queries[i]) {
                    Ok(r) => {
                        let inserted = slots[i].set(r).is_ok();
                        debug_assert!(inserted, "each query index runs once");
                    }
                    Err(e) => {
                        // The guarded Option stays consistent even if a
                        // sibling panicked while holding the lock, so a
                        // poisoned mutex is recovered rather than turned
                        // into a second (aborting) panic.
                        first_error
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .get_or_insert(e);
                        // Park the claim counter so other workers stop too.
                        next.store(queries.len(), Ordering::Relaxed);
                        break;
                    }
                }
            });
        }
    });

    if let Some(e) = first_error
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
    {
        return Err(e);
    }
    slots
        .into_iter()
        .map(|s| {
            // Every slot is filled when no worker errored or panicked (the
            // scope re-raises worker panics); an empty one is surfaced as
            // a typed error all the same.
            s.into_inner().ok_or_else(|| {
                StorageError::Corrupt("batch worker terminated without a result".into())
            })
        })
        .collect()
}

/// [`run_batch`] with per-query fault isolation: a query that errors — or
/// *panics* — produces its own [`QueryError`] slot and the batch marches
/// on; siblings are never aborted and the shared structures stay usable
/// (the buffer pool's locks come from `parking_lot`, which does not
/// poison, and the thread-local I/O and retry scopes clear themselves on
/// unwind).
pub(crate) fn run_batch_isolated<Q: Sync, R: Send + Sync>(
    queries: &[Q],
    threads: usize,
    run: impl Fn(&Q) -> std::result::Result<R, QueryError> + Sync,
) -> Vec<std::result::Result<R, QueryError>> {
    let threads = threads.clamp(1, queries.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<std::sync::OnceLock<std::result::Result<R, QueryError>>> = (0..queries.len())
        .map(|_| std::sync::OnceLock::new())
        .collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= queries.len() {
                    break;
                }
                let out =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(&queries[i])))
                        .unwrap_or_else(|payload| {
                            let msg = payload
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "non-string panic payload".into());
                            Err(QueryError::Panic(msg))
                        });
                let inserted = slots[i].set(out).is_ok();
                debug_assert!(inserted, "each query index runs once");
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every query ran"))
        .collect()
}

/// A spatial keyword database: the object file plus all four access
/// methods of the paper's evaluation, instrumented for I/O accounting.
///
/// Built once over a collection of objects (bulk-loaded by default),
/// queried by any [`Algorithm`], and maintainable through
/// [`insert`](SpatialKeywordDb::insert) / [`delete`](SpatialKeywordDb::delete)
/// on the tree structures.
pub struct SpatialKeywordDb<D: BlockDevice + 'static> {
    config: DbConfig,
    tree_cfg: RTreeConfig,
    vocab: Vocabulary,
    avg_words: f64,
    objects: Arc<ObjectStore<2, TrackedDevice<D>>>,
    rtree: RTree<2, TrackedDevice<D>, UnitPayload>,
    ir2: RTree<2, TrackedDevice<D>, Ir2Payload>,
    mir2: RTree<2, TrackedDevice<D>, MirPayload<2>>,
    inverted: InvertedIndex<TrackedDevice<D>>,
    catalog: ShadowPair<D>,
    io: IoHandles,
    metrics: Arc<MetricsRegistry>,
    build_stats: BuildStats,
}

/// Outcome of checking one structure in
/// [`check_integrity`](SpatialKeywordDb::check_integrity).
#[derive(Debug, Clone)]
pub struct StructureCheck {
    /// Structure name (`objects`, `rtree`, `ir2`, `mir2`).
    pub name: &'static str,
    /// Human-readable summary (entry count, or the corruption found).
    pub detail: String,
    /// Whether the structure passed.
    pub ok: bool,
}

/// Full-database integrity report from
/// [`check_integrity`](SpatialKeywordDb::check_integrity).
#[derive(Debug, Clone)]
pub struct IntegrityReport {
    /// Epoch of the catalog version the database opened with.
    pub catalog_epoch: u64,
    /// Per-structure results.
    pub structures: Vec<StructureCheck>,
}

impl IntegrityReport {
    /// Whether every structure passed.
    pub fn ok(&self) -> bool {
        self.structures.iter().all(|s| s.ok)
    }
}

impl<D: BlockDevice + 'static> SpatialKeywordDb<D> {
    /// Builds the database: appends every object to the object file,
    /// derives the vocabulary, and constructs all four index structures.
    pub fn build(
        devices: DeviceSet<D>,
        objects: impl IntoIterator<Item = SpatialObject<2>>,
        config: DbConfig,
    ) -> Result<Self> {
        let t0 = Instant::now();
        let obj_dev = TrackedDevice::new(devices.objects);
        let io = IoHandles {
            objects: obj_dev.stats(),
            rtree: Arc::new(IoStats::new()),
            ir2: Arc::new(IoStats::new()),
            mir2: Arc::new(IoStats::new()),
            inverted: Arc::new(IoStats::new()),
        };
        let store = Arc::new(ObjectStore::<2, _>::create(obj_dev));

        // Pass 1: append objects, build the vocabulary, keep per-object
        // metadata (pointer, point, distinct term ids) for index builds.
        let mut vocab = Vocabulary::new();
        let mut meta: Vec<(ObjPtr, ir2_geo::Point<2>, Vec<TermId>)> = Vec::new();
        let mut distinct_total = 0u64;
        let mut blocks_total = 0u64;
        for obj in objects {
            let encoded_len = 8 + 32 + obj.text.len() as u64; // id + point + text
            let ptr = store.append(&obj)?;
            let end = ptr.0 + RECORD_HEADER_LEN as u64 + encoded_len;
            blocks_total += end.div_ceil(BLOCK_SIZE as u64) - ptr.0 / BLOCK_SIZE as u64;
            let mut terms: Vec<String> = tokenize(&obj.text).collect();
            terms.sort_unstable();
            terms.dedup();
            vocab.add_document(terms.iter().map(String::as_str));
            let ids: Vec<TermId> = terms
                .iter()
                .map(|t| vocab.term_id(t).expect("just interned"))
                .collect();
            distinct_total += ids.len() as u64;
            meta.push((ptr, obj.point, ids));
        }
        store.flush()?;
        let n = meta.len() as u64;
        if n == 0 {
            return Err(StorageError::Corrupt(
                "cannot build an empty database".into(),
            ));
        }
        let avg_words = config
            .avg_words_hint
            .unwrap_or(distinct_total as f64 / n as f64);

        // Index structures.
        let tree_cfg = match config.capacity {
            Some(c) => RTreeConfig::with_max(c),
            None => RTreeConfig::for_dims::<2>(),
        };
        let ir2_scheme =
            SignatureScheme::from_bytes_len(config.sig_bytes, config.sig_k, config.seed);
        let mir_schemes = MultiLevelScheme::new(
            config.sig_bytes,
            config.sig_k,
            config.seed,
            tree_cfg.max_entries,
            avg_words,
            vocab.len(),
        );
        let mut mir_payload =
            MirPayload::new(mir_schemes, Arc::clone(&store) as Arc<dyn ObjectSource<2>>);
        if config.mir_strict {
            mir_payload = mir_payload.strict();
        }

        let mut rtree = RTree::create(
            TrackedDevice::with_stats(devices.rtree, Arc::clone(&io.rtree)),
            tree_cfg,
            UnitPayload,
        )?;
        let mut ir2 = RTree::create(
            TrackedDevice::with_stats(devices.ir2, Arc::clone(&io.ir2)),
            tree_cfg,
            Ir2Payload::new(ir2_scheme),
        )?;
        let mut mir2 = RTree::create(
            TrackedDevice::with_stats(devices.mir2, Arc::clone(&io.mir2)),
            tree_cfg,
            mir_payload,
        )?;
        // One cache per tree: block ids are device-local, so sharing a
        // cache across trees would alias distinct nodes.
        if config.node_cache > 0 {
            rtree.set_node_cache(Arc::new(NodeCache::new(config.node_cache)));
            ir2.set_node_cache(Arc::new(NodeCache::new(config.node_cache)));
            mir2.set_node_cache(Arc::new(NodeCache::new(config.node_cache)));
        }

        let sign_leaf = |scheme: &SignatureScheme, ids: &[TermId]| -> Vec<u8> {
            let sig = scheme.sign_terms(ids.iter().map(|&t| vocab.name(t)));
            let mut out = vec![0u8; scheme.byte_len()];
            sig.write_bytes(&mut out);
            out
        };
        if config.bulk_load {
            rtree.bulk_load(
                meta.iter()
                    .map(|(p, pt, _)| (p.0, Rect::from_point(*pt), Vec::new()))
                    .collect(),
            )?;
            ir2.bulk_load(
                meta.iter()
                    .map(|(p, pt, ids)| (p.0, Rect::from_point(*pt), sign_leaf(&ir2_scheme, ids)))
                    .collect(),
            )?;
            let mir_leaf_scheme = *ir2_irtree::SigPayload::leaf_scheme(mir2.ops());
            mir2.bulk_load(
                meta.iter()
                    .map(|(p, pt, ids)| {
                        (p.0, Rect::from_point(*pt), sign_leaf(&mir_leaf_scheme, ids))
                    })
                    .collect(),
            )?;
        } else {
            let mir_leaf_scheme = *ir2_irtree::SigPayload::leaf_scheme(mir2.ops());
            for (p, pt, ids) in &meta {
                let rect = Rect::from_point(*pt);
                rtree.insert(p.0, rect, &[])?;
                ir2.insert(p.0, rect, &sign_leaf(&ir2_scheme, ids))?;
                mir2.insert(p.0, rect, &sign_leaf(&mir_leaf_scheme, ids))?;
            }
        }

        let inverted = InvertedIndex::build(
            TrackedDevice::with_stats(devices.inverted, Arc::clone(&io.inverted)),
            &vocab,
            meta.iter().map(|(p, _, ids)| (*p, ids.clone())),
        )?;

        let catalog = ShadowPair::create(devices.catalog)?;

        let build_stats = BuildStats {
            objects: n,
            avg_unique_words: distinct_total as f64 / n as f64,
            unique_words: vocab.len() as u64,
            object_file_bytes: store.size_bytes(),
            avg_blocks_per_object: blocks_total as f64 / n as f64,
            build_time: t0.elapsed(),
        };

        let db = Self {
            config,
            tree_cfg,
            vocab,
            avg_words,
            objects: store,
            rtree,
            ir2,
            mir2,
            inverted,
            catalog,
            io,
            metrics: Arc::new(MetricsRegistry::new()),
            build_stats,
        };
        db.save_catalog()?;
        Ok(db)
    }

    /// [`build`](SpatialKeywordDb::build) publishing into the caller's
    /// metrics registry instead of a fresh one — so device-level metrics
    /// (e.g. a [`RetryDevice`](ir2_storage::RetryDevice)'s retry and
    /// quarantine counters) land beside the query metrics in one
    /// exposition.
    pub fn build_with_registry(
        devices: DeviceSet<D>,
        objects: impl IntoIterator<Item = SpatialObject<2>>,
        config: DbConfig,
        registry: Arc<MetricsRegistry>,
    ) -> Result<Self> {
        let mut db = Self::build(devices, objects, config)?;
        db.metrics = registry;
        Ok(db)
    }

    /// Persists the cross-structure metadata to the catalog device. Called
    /// automatically by [`build`](SpatialKeywordDb::build); call again
    /// after maintenance to refresh.
    ///
    /// This is the database's *commit point*, and it is atomic: the object
    /// file and every tree are made durable first, then the catalog — which
    /// records each tree's root/height/count — flips to a new shadow epoch
    /// in one checksummed step. A crash anywhere in between leaves the
    /// previous catalog epoch intact, and every block it references is
    /// still valid because tree extents freed since then are only recycled
    /// *after* the flip succeeds.
    pub fn save_catalog(&self) -> Result<()> {
        // Make everything the new catalog will point at durable.
        self.objects.flush()?;
        self.objects.device().sync()?;
        self.rtree.checkpoint()?;
        self.ir2.checkpoint()?;
        self.mir2.checkpoint()?;

        // Catalog payload: four length-prefixed chunks in order (config,
        // vocabulary, inverted dictionary, store state + stats + tree
        // metadata). Framing and integrity live in the shadow layer.
        let (len, records) = self.objects.state();
        let s = &self.build_stats;
        let mut tail = Vec::with_capacity(144);
        for v in [len, records, s.objects, s.unique_words, s.object_file_bytes] {
            tail.extend_from_slice(&v.to_le_bytes());
        }
        tail.extend_from_slice(&s.avg_unique_words.to_le_bytes());
        tail.extend_from_slice(&s.avg_blocks_per_object.to_le_bytes());
        tail.extend_from_slice(&self.avg_words.to_le_bytes());
        tail.extend_from_slice(&(s.build_time.as_micros() as u64).to_le_bytes());
        for (root, height, count) in [
            self.rtree.meta_state(),
            self.ir2.meta_state(),
            self.mir2.meta_state(),
        ] {
            tail.extend_from_slice(&root.unwrap_or(u64::MAX).to_le_bytes());
            tail.extend_from_slice(&(height as u64).to_le_bytes());
            tail.extend_from_slice(&count.to_le_bytes());
        }

        let chunks = [
            self.config.encode(),
            self.vocab.encode(),
            self.inverted.encode_dictionary(),
            tail,
        ];
        let mut payload = Vec::new();
        for c in &chunks {
            payload.extend_from_slice(&(c.len() as u32).to_le_bytes());
            payload.extend_from_slice(c);
        }
        self.catalog.save(&payload)?;

        // The flip is durable: extents freed before it are now safe to
        // recycle.
        self.rtree.commit_frees();
        self.ir2.commit_frees();
        self.mir2.commit_frees();
        Ok(())
    }

    /// Splits a catalog payload back into its chunks (config, vocab,
    /// dictionary, stats).
    fn parse_catalog(payload: &[u8]) -> Result<Vec<Vec<u8>>> {
        let corrupt = |m: &str| StorageError::Corrupt(format!("catalog: {m}"));
        let mut chunks = Vec::with_capacity(4);
        let mut pos = 0;
        while pos < payload.len() {
            let len = u32::from_le_bytes(
                payload
                    .get(pos..pos + 4)
                    .ok_or_else(|| corrupt("chunk header"))?
                    .try_into()
                    .expect("4 bytes"),
            ) as usize;
            let chunk = payload
                .get(pos + 4..pos + 4 + len)
                .ok_or_else(|| corrupt("chunk body"))?;
            chunks.push(chunk.to_vec());
            pos += 4 + len;
        }
        Ok(chunks)
    }

    /// Reopens a database persisted by [`build`](SpatialKeywordDb::build) /
    /// [`save_catalog`](SpatialKeywordDb::save_catalog).
    pub fn open(devices: DeviceSet<D>) -> Result<Self> {
        // The shadow pair yields the newest intact catalog version; its
        // chunks come back in layout order.
        let (catalog, payload) = ShadowPair::open(devices.catalog)?;
        let records = Self::parse_catalog(&payload)?;
        if records.len() != 4 {
            return Err(StorageError::Corrupt(format!(
                "catalog has {} records, expected 4",
                records.len()
            )));
        }
        let config = DbConfig::decode(&records[0])?;
        let vocab = Vocabulary::decode(&records[1])
            .map_err(|e| StorageError::Corrupt(format!("catalog vocabulary: {e}")))?;
        let tail = &records[3];
        if tail.len() < 144 {
            return Err(StorageError::Corrupt(
                "catalog stats record too short".into(),
            ));
        }
        let u = |i: usize| u64::from_le_bytes(tail[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
        let f = |i: usize| f64::from_le_bytes(tail[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
        let (store_len, store_records) = (u(0), u(1));
        // Tree metadata: the catalog, not the superblocks, is authoritative.
        let tree_meta = |base: usize| -> (Option<u64>, u16, u64) {
            let root = u(base);
            (
                (root != u64::MAX).then_some(root),
                u(base + 1) as u16,
                u(base + 2),
            )
        };
        let (rtree_meta, ir2_meta, mir2_meta) = (tree_meta(9), tree_meta(12), tree_meta(15));
        let build_stats = BuildStats {
            objects: u(2),
            unique_words: u(3),
            object_file_bytes: u(4),
            avg_unique_words: f(5),
            avg_blocks_per_object: f(6),
            build_time: Duration::from_micros(u(8)),
        };
        let avg_words = f(7);

        let io = IoHandles {
            objects: Arc::new(IoStats::new()),
            rtree: Arc::new(IoStats::new()),
            ir2: Arc::new(IoStats::new()),
            mir2: Arc::new(IoStats::new()),
            inverted: Arc::new(IoStats::new()),
        };
        let store = Arc::new(ObjectStore::<2, _>::open(
            TrackedDevice::with_stats(devices.objects, Arc::clone(&io.objects)),
            store_len,
            store_records,
        )?);

        let tree_cfg = match config.capacity {
            Some(c) => RTreeConfig::with_max(c),
            None => RTreeConfig::for_dims::<2>(),
        };
        let ir2_scheme =
            SignatureScheme::from_bytes_len(config.sig_bytes, config.sig_k, config.seed);
        let mir_schemes = MultiLevelScheme::new(
            config.sig_bytes,
            config.sig_k,
            config.seed,
            tree_cfg.max_entries,
            avg_words,
            vocab.len(),
        );
        let mut mir_payload =
            MirPayload::new(mir_schemes, Arc::clone(&store) as Arc<dyn ObjectSource<2>>);
        if config.mir_strict {
            mir_payload = mir_payload.strict();
        }

        let mut rtree = RTree::open_with_meta(
            TrackedDevice::with_stats(devices.rtree, Arc::clone(&io.rtree)),
            tree_cfg,
            UnitPayload,
            rtree_meta.0,
            rtree_meta.1,
            rtree_meta.2,
        )?;
        let mut ir2 = RTree::open_with_meta(
            TrackedDevice::with_stats(devices.ir2, Arc::clone(&io.ir2)),
            tree_cfg,
            Ir2Payload::new(ir2_scheme),
            ir2_meta.0,
            ir2_meta.1,
            ir2_meta.2,
        )?;
        let mut mir2 = RTree::open_with_meta(
            TrackedDevice::with_stats(devices.mir2, Arc::clone(&io.mir2)),
            tree_cfg,
            mir_payload,
            mir2_meta.0,
            mir2_meta.1,
            mir2_meta.2,
        )?;
        // One cache per tree, as in `build` (device-local block ids).
        if config.node_cache > 0 {
            rtree.set_node_cache(Arc::new(NodeCache::new(config.node_cache)));
            ir2.set_node_cache(Arc::new(NodeCache::new(config.node_cache)));
            mir2.set_node_cache(Arc::new(NodeCache::new(config.node_cache)));
        }
        let inverted = InvertedIndex::open(
            TrackedDevice::with_stats(devices.inverted, Arc::clone(&io.inverted)),
            &vocab,
            &records[2],
        )?;

        Ok(Self {
            config,
            tree_cfg,
            vocab,
            avg_words,
            objects: store,
            rtree,
            ir2,
            mir2,
            inverted,
            catalog,
            io,
            metrics: Arc::new(MetricsRegistry::new()),
            build_stats,
        })
    }

    /// [`open`](SpatialKeywordDb::open) publishing into the caller's
    /// metrics registry; see
    /// [`build_with_registry`](SpatialKeywordDb::build_with_registry).
    pub fn open_with_registry(
        devices: DeviceSet<D>,
        registry: Arc<MetricsRegistry>,
    ) -> Result<Self> {
        let mut db = Self::open(devices)?;
        db.metrics = registry;
        Ok(db)
    }

    // ------------------------------------------------------------------
    // Queries.
    // ------------------------------------------------------------------

    pub(crate) fn stats_of(&self, alg: Algorithm) -> &Arc<IoStats> {
        match alg {
            Algorithm::RTree => &self.io.rtree,
            Algorithm::Iio => &self.io.inverted,
            Algorithm::Ir2 => &self.io.ir2,
            Algorithm::Mir2 => &self.io.mir2,
        }
    }

    /// The object file's I/O statistics handle (for scoped attribution of
    /// cross-shard merges running outside this facade).
    pub(crate) fn objects_io_stats(&self) -> &Arc<IoStats> {
        &self.io.objects
    }

    /// Folds one finished query's report into the metrics registry. Called
    /// once per query, outside any concurrent phase.
    fn publish_query_metrics(&self, alg: Algorithm, r: &QueryReport) {
        let key = alg.key();
        let m = &self.metrics;
        m.add_counter(&format!("queries_total{{alg=\"{key}\"}}"), 1);
        m.observe_io(&format!("{{alg=\"{key}\"}}"), r.io);
        m.histogram(&format!("query_io_blocks{{alg=\"{key}\"}}"))
            .observe(r.io.total());
        m.histogram(&format!("query_object_loads{{alg=\"{key}\"}}"))
            .observe(r.object_loads);
        m.histogram(&format!("query_nodes_read{{alg=\"{key}\"}}"))
            .observe(r.counters.nodes_read);
        m.add_counter(
            &format!("signature_tests_total{{alg=\"{key}\"}}"),
            r.pruning.sig_tests,
        );
        m.add_counter(
            &format!("signature_prunes_total{{alg=\"{key}\"}}"),
            r.pruning.pruned_by_signature(),
        );
        m.add_counter(
            &format!("object_false_positives_total{{alg=\"{key}\"}}"),
            r.counters.false_positives,
        );
        if r.counters.cache_hits > 0 {
            m.add_counter(
                &format!("node_cache_hits_total{{alg=\"{key}\"}}"),
                r.counters.cache_hits,
            );
        }
        if let Some(reason) = r.outcome {
            m.add_counter(
                &format!(
                    "queries_truncated_total{{alg=\"{key}\",reason=\"{}\"}}",
                    reason.key()
                ),
                1,
            );
        }
        if r.retries > 0 {
            m.add_counter(&format!("query_retries_total{{alg=\"{key}\"}}"), r.retries);
            m.histogram(&format!("query_backoff_us{{alg=\"{key}\"}}"))
                .observe(r.backoff.as_micros() as u64);
        }
    }

    /// Answers a distance-first top-k spatial keyword query with the chosen
    /// algorithm, reporting results plus the I/O metrics the paper plots.
    ///
    /// Pruning statistics are collected through a [`StatsSink`] and the
    /// query is published to the [`metrics`](SpatialKeywordDb::metrics)
    /// registry.
    pub fn distance_first(
        &self,
        alg: Algorithm,
        query: &DistanceFirstQuery<2>,
    ) -> Result<QueryReport> {
        let mut sink = StatsSink::new();
        let mut report = self.distance_first_traced(alg, query, &mut sink)?;
        report.pruning = sink.into_stats();
        self.publish_query_metrics(alg, &report);
        Ok(report)
    }

    /// [`distance_first`](SpatialKeywordDb::distance_first) under
    /// execution limits: a deadline, an I/O budget, and/or a frontier cap,
    /// checked cooperatively between traversal steps. A tripped limit is
    /// **not** an error — the report comes back with
    /// [`outcome`](QueryReport::outcome) set and its results are the exact
    /// top-m prefix of the full answer (Hjaltason–Samet emission order;
    /// empty for IIO, which is non-incremental and degrades
    /// all-or-nothing).
    pub fn distance_first_limited(
        &self,
        alg: Algorithm,
        query: &DistanceFirstQuery<2>,
        limits: QueryLimits,
    ) -> Result<QueryReport> {
        let report = self.scoped_distance_first(alg, query, limits)?;
        self.publish_query_metrics(alg, &report);
        Ok(report)
    }

    /// [`distance_first`](SpatialKeywordDb::distance_first) with every
    /// execution step streamed to `sink` — the engine behind `ir2 trace`.
    ///
    /// The returned report's `pruning` field is left empty (the caller
    /// holds the sink and can derive richer statistics from it), and the
    /// query is *not* published to the metrics registry.
    pub fn distance_first_traced<S: TraceSink>(
        &self,
        alg: Algorithm,
        query: &DistanceFirstQuery<2>,
        mut sink: S,
    ) -> Result<QueryReport> {
        let idx_stats = self.stats_of(alg);
        let idx_before = idx_stats.snapshot();
        let obj_before = self.io.objects.snapshot();
        let loads_before = self.objects.loads();
        let t0 = Instant::now();

        let p = self.config.prefetch;
        let (results, counters) = match alg {
            Algorithm::RTree => rtree_baseline_topk_prefetched_traced(
                &self.rtree,
                self.objects.as_ref(),
                query,
                p,
                &mut sink,
            )?,
            Algorithm::Ir2 => distance_first_topk_prefetched_traced(
                &self.ir2,
                self.objects.as_ref(),
                query,
                p,
                &mut sink,
            )?,
            Algorithm::Mir2 => distance_first_topk_prefetched_traced(
                &self.mir2,
                self.objects.as_ref(),
                query,
                p,
                &mut sink,
            )?,
            Algorithm::Iio => (
                iio_topk(&self.inverted, &self.vocab, self.objects.as_ref(), query)?,
                SearchCounters::default(),
            ),
        };

        let wall = t0.elapsed();
        let index_io = idx_stats.snapshot() - idx_before;
        let object_io = self.io.objects.snapshot() - obj_before;
        let io = index_io + object_io;
        Ok(QueryReport {
            results,
            index_io,
            object_io,
            io,
            object_loads: self.objects.loads() - loads_before,
            counters,
            pruning: TraceStats::default(),
            simulated: self.config.cost_model.time(io),
            wall,
            outcome: None,
            retries: 0,
            backoff: Duration::ZERO,
        })
    }

    /// One distance-first query with per-thread I/O attribution: everything
    /// the query reads is tallied in an [`IoScope`] (deterministic under
    /// concurrency) and loads are counted through a query-local
    /// [`CountingSource`], so the returned report is identical whether the
    /// query runs alone or inside a concurrent batch. A [`RetryScope`]
    /// likewise attributes this query's transient-fault recoveries and
    /// backoff sleep to its report.
    fn scoped_distance_first(
        &self,
        alg: Algorithm,
        query: &DistanceFirstQuery<2>,
        limits: QueryLimits,
    ) -> Result<QueryReport> {
        let src = CountingSource::new(self.objects.as_ref() as &dyn ObjectSource<2>);
        let mut sink = StatsSink::new();
        let scope = IoScope::enter();
        let retry_scope = RetryScope::enter();
        let t0 = Instant::now();
        let p = self.config.prefetch;
        let out = match alg {
            Algorithm::RTree => rtree_baseline_topk_prefetched_limited_traced(
                &self.rtree,
                &src,
                query,
                limits,
                p,
                &mut sink,
            ),
            Algorithm::Ir2 => distance_first_topk_prefetched_limited_traced(
                &self.ir2, &src, query, limits, p, &mut sink,
            ),
            Algorithm::Mir2 => distance_first_topk_prefetched_limited_traced(
                &self.mir2, &src, query, limits, p, &mut sink,
            ),
            Algorithm::Iio => iio_topk_limited(&self.inverted, &self.vocab, &src, query, limits)
                .map(|r| (r, SearchCounters::default())),
        };
        let wall = t0.elapsed();
        let retry_stats = retry_scope.finish();
        let scoped = scope.finish();
        let (exec, counters) = out?;
        let outcome = exec.truncation();
        let results = exec.into_results();
        let index_io = scoped.for_stats(self.stats_of(alg));
        let object_io = scoped.for_stats(&self.io.objects);
        let io = index_io + object_io;
        Ok(QueryReport {
            results,
            index_io,
            object_io,
            io,
            object_loads: src.loads(),
            counters,
            pruning: sink.into_stats(),
            simulated: self.config.cost_model.time(io),
            wall,
            outcome,
            retries: retry_stats.retries,
            backoff: retry_stats.backoff,
        })
    }

    /// Answers a batch of distance-first queries concurrently on `threads`
    /// worker threads (the index structures support any number of
    /// concurrent readers; the buffer pool, when present, is sharded so
    /// readers of different blocks do not serialize).
    ///
    /// Returns one full [`QueryReport`] per query, in input order. Each
    /// report's I/O delta is *correctly attributed to that query* even
    /// though queries interleave on the shared devices: every query runs
    /// entirely on one worker thread inside an [`IoScope`], which tallies
    /// only that thread's accesses against a per-thread disk-arm position.
    /// Consequently a query's report here matches what
    /// [`distance_first`](SpatialKeywordDb::distance_first) reports for the
    /// same query run alone (results byte-identical; I/O identical up to
    /// the buffer pool's interleaving-dependent cache hits, i.e. exactly
    /// identical in the paper's uncached configuration).
    pub fn batch_topk(
        &self,
        alg: Algorithm,
        queries: &[DistanceFirstQuery<2>],
        threads: usize,
    ) -> Result<Vec<QueryReport>> {
        let reports = run_batch(queries, threads, |q| {
            self.scoped_distance_first(alg, q, QueryLimits::none())
        })?;
        // Metrics are folded in *after* the concurrent phase: workers touch
        // only their thread-local sinks, so the shared registry sees no
        // query-path contention.
        for r in &reports {
            self.publish_query_metrics(alg, r);
        }
        Ok(reports)
    }

    /// [`batch_topk`](SpatialKeywordDb::batch_topk) with per-query fault
    /// isolation and execution limits — the resilient batch engine.
    ///
    /// Each query runs under `limits` (construct with a
    /// [`QueryLimits::with_deadline`] to impose a **batch-wide** deadline:
    /// the deadline instant is resolved once, before the workers start, so
    /// every query in the batch races the same wall-clock point). A query
    /// that trips a limit is *not* a failure — its report carries the
    /// truncation outcome and the exact top-m prefix it reached.
    ///
    /// A query that errors or panics yields an `Err(`[`QueryError`]`)` in
    /// its own slot and **nothing else**: siblings run to completion, the
    /// shared buffer pool and index structures remain usable (their locks
    /// do not poison), and subsequent queries on this database are
    /// unaffected. Returns one entry per query, in input order.
    pub fn batch_topk_isolated(
        &self,
        alg: Algorithm,
        queries: &[DistanceFirstQuery<2>],
        threads: usize,
        limits: QueryLimits,
    ) -> Vec<std::result::Result<QueryReport, QueryError>> {
        let outcomes = run_batch_isolated(queries, threads, |q| {
            self.scoped_distance_first(alg, q, limits)
                .map_err(Into::into)
        });
        // Metrics fold in after the concurrent phase, like `batch_topk`.
        let key = alg.key();
        for out in &outcomes {
            match out {
                Ok(r) => self.publish_query_metrics(alg, r),
                Err(QueryError::Storage(_)) => self.metrics.add_counter(
                    &format!("batch_query_failures_total{{alg=\"{key}\",kind=\"storage\"}}"),
                    1,
                ),
                Err(QueryError::Panic(_)) => self.metrics.add_counter(
                    &format!("batch_query_failures_total{{alg=\"{key}\",kind=\"panic\"}}"),
                    1,
                ),
            }
        }
        outcomes
    }

    /// Answers a batch of general (ranked) top-k queries concurrently, with
    /// the same per-query I/O attribution as
    /// [`batch_topk`](SpatialKeywordDb::batch_topk). Signature-tree
    /// algorithms only, like
    /// [`general_ranked`](SpatialKeywordDb::general_ranked).
    pub fn batch_general_topk(
        &self,
        alg: Algorithm,
        queries: &[GeneralQuery<2>],
        scorer: &dyn IrScorer,
        rank: &dyn RankingFn,
        threads: usize,
    ) -> Result<Vec<GeneralReport>> {
        run_batch(queries, threads, |query| {
            let src = CountingSource::new(self.objects.as_ref() as &dyn ObjectSource<2>);
            let scope = IoScope::enter();
            let t0 = Instant::now();
            let out = match alg {
                Algorithm::Ir2 => general_topk_prefetched(
                    &self.ir2,
                    &src,
                    &self.vocab,
                    scorer,
                    rank,
                    query,
                    self.config.prefetch,
                ),
                Algorithm::Mir2 => general_topk_prefetched(
                    &self.mir2,
                    &src,
                    &self.vocab,
                    scorer,
                    rank,
                    query,
                    self.config.prefetch,
                ),
                other => Err(StorageError::Corrupt(format!(
                    "general ranked queries need a signature tree, not {}",
                    other.label()
                ))),
            };
            let wall = t0.elapsed();
            let scoped = scope.finish();
            let results = out?;
            let io = scoped.for_stats(self.stats_of(alg)) + scoped.for_stats(&self.io.objects);
            Ok(GeneralReport {
                results,
                io,
                object_loads: src.loads(),
                simulated: self.config.cost_model.time(io),
                wall,
            })
        })
    }

    /// Answers a batch of distance-first queries concurrently and folds the
    /// per-query reports of [`batch_topk`](SpatialKeywordDb::batch_topk)
    /// into one aggregate [`BatchReport`] (results in input order, I/O
    /// summed over queries).
    pub fn batch_distance_first(
        &self,
        alg: Algorithm,
        queries: &[DistanceFirstQuery<2>],
        threads: usize,
    ) -> Result<BatchReport> {
        let t0 = Instant::now();
        let reports = self.batch_topk(alg, queries, threads)?;
        let io: IoSnapshot = reports.iter().map(|r| r.io).sum();
        let io_hist = Histogram::new();
        let loads_hist = Histogram::new();
        let mut pruning = TraceStats::default();
        for r in &reports {
            io_hist.observe(r.io.total());
            loads_hist.observe(r.object_loads);
            pruning.merge(&r.pruning);
        }
        Ok(BatchReport {
            results: reports.into_iter().map(|r| r.results).collect(),
            io,
            io_per_query: io_hist.summary(),
            loads_per_query: loads_hist.summary(),
            pruning,
            simulated: self.config.cost_model.time(io),
            wall: t0.elapsed(),
        })
    }

    /// Answers a distance-first top-k query anchored at an arbitrary
    /// region (the paper's "an area could be used instead" of the query
    /// point) on the IR²- or MIR²-Tree. Objects inside an area region come
    /// out at distance zero, then in increasing distance from its boundary.
    pub fn distance_first_region(
        &self,
        alg: Algorithm,
        region: ir2_model::QueryRegion<2>,
        keywords: &[String],
        k: usize,
    ) -> Result<QueryReport> {
        let idx_stats = self.stats_of(alg);
        let idx_before = idx_stats.snapshot();
        let obj_before = self.io.objects.snapshot();
        let loads_before = self.objects.loads();
        let mut sink = StatsSink::new();
        let t0 = Instant::now();

        let p = self.config.prefetch;
        let (results, counters) = match alg {
            Algorithm::Ir2 => distance_first_region_topk_prefetched_traced(
                &self.ir2,
                self.objects.as_ref(),
                region,
                keywords,
                k,
                p,
                &mut sink,
            )?,
            Algorithm::Mir2 => distance_first_region_topk_prefetched_traced(
                &self.mir2,
                self.objects.as_ref(),
                region,
                keywords,
                k,
                p,
                &mut sink,
            )?,
            other => {
                return Err(StorageError::Corrupt(format!(
                    "region queries are implemented on the signature trees, not {}",
                    other.label()
                )))
            }
        };

        let wall = t0.elapsed();
        let index_io = idx_stats.snapshot() - idx_before;
        let object_io = self.io.objects.snapshot() - obj_before;
        let io = index_io + object_io;
        let report = QueryReport {
            results,
            index_io,
            object_io,
            io,
            object_loads: self.objects.loads() - loads_before,
            counters,
            pruning: sink.into_stats(),
            simulated: self.config.cost_model.time(io),
            wall,
            outcome: None,
            retries: 0,
            backoff: Duration::ZERO,
        };
        self.publish_query_metrics(alg, &report);
        Ok(report)
    }

    /// Boolean keyword query within a window (Section 2's `Ans(Q_w)`
    /// restricted to a map area) on the IR²- or MIR²-Tree: every object in
    /// `window` containing all `keywords`, unranked.
    pub fn keyword_window(
        &self,
        alg: Algorithm,
        window: &Rect<2>,
        keywords: &[String],
    ) -> Result<Vec<SpatialObject<2>>> {
        let (hits, _) = match alg {
            Algorithm::Ir2 => ir2_irtree::keyword_window_query(
                &self.ir2,
                self.objects.as_ref(),
                window,
                keywords,
            )?,
            Algorithm::Mir2 => ir2_irtree::keyword_window_query(
                &self.mir2,
                self.objects.as_ref(),
                window,
                keywords,
            )?,
            other => {
                return Err(StorageError::Corrupt(format!(
                    "window keyword queries are implemented on the signature trees, not {}",
                    other.label()
                )))
            }
        };
        Ok(hits)
    }

    /// Answers a general (ranked) top-k spatial keyword query on the IR²-
    /// or MIR²-Tree.
    ///
    /// Returns an error for [`Algorithm::RTree`] / [`Algorithm::Iio`]: the
    /// general algorithm needs node signatures for its IR-score upper
    /// bounds.
    pub fn general_ranked(
        &self,
        alg: Algorithm,
        query: &GeneralQuery<2>,
        scorer: &dyn IrScorer,
        rank: &dyn RankingFn,
    ) -> Result<GeneralReport> {
        let idx_stats = self.stats_of(alg);
        let idx_before = idx_stats.snapshot();
        let obj_before = self.io.objects.snapshot();
        let loads_before = self.objects.loads();
        let t0 = Instant::now();

        let results = match alg {
            Algorithm::Ir2 => general_topk_prefetched(
                &self.ir2,
                self.objects.as_ref(),
                &self.vocab,
                scorer,
                rank,
                query,
                self.config.prefetch,
            )?,
            Algorithm::Mir2 => general_topk_prefetched(
                &self.mir2,
                self.objects.as_ref(),
                &self.vocab,
                scorer,
                rank,
                query,
                self.config.prefetch,
            )?,
            other => {
                return Err(StorageError::Corrupt(format!(
                    "general ranked queries need a signature tree, not {}",
                    other.label()
                )))
            }
        };

        let wall = t0.elapsed();
        let io = (idx_stats.snapshot() - idx_before) + (self.io.objects.snapshot() - obj_before);
        Ok(GeneralReport {
            results,
            io,
            object_loads: self.objects.loads() - loads_before,
            simulated: self.config.cost_model.time(io),
            wall,
        })
    }

    // ------------------------------------------------------------------
    // Maintenance.
    // ------------------------------------------------------------------

    /// Inserts a new object into the object file and all three tree
    /// structures.
    ///
    /// The inverted index and the vocabulary's document frequencies are
    /// *not* updated (the paper treats IIO as a static baseline); rebuild
    /// to refresh them. New terms still work in tree queries — signatures
    /// hash raw words, not vocabulary ids.
    pub fn insert(&mut self, obj: &SpatialObject<2>) -> Result<ObjPtr> {
        let ptr = self.objects.append(obj)?;
        self.objects.flush()?;
        self.rtree.insert(ptr.0, Rect::from_point(obj.point), &[])?;
        insert_object(&self.ir2, ptr, obj)?;
        insert_object(&self.mir2, ptr, obj)?;
        self.build_stats.objects += 1;
        Ok(ptr)
    }

    /// Deletes an object (by pointer) from all three tree structures. The
    /// object record remains in the append-only object file; the inverted
    /// index is not updated (see [`insert`](SpatialKeywordDb::insert)).
    pub fn delete(&mut self, ptr: ObjPtr) -> Result<bool> {
        let obj = self.objects.load(ptr)?;
        let rect = Rect::from_point(obj.point);
        let a = self.rtree.delete(ptr.0, &rect)?;
        let b = ir2_irtree::delete_object(&self.ir2, ptr, &obj)?;
        let c = ir2_irtree::delete_object(&self.mir2, ptr, &obj)?;
        debug_assert_eq!(a, b);
        debug_assert_eq!(b, c);
        if a {
            self.build_stats.objects -= 1;
        }
        Ok(a)
    }

    // ------------------------------------------------------------------
    // Introspection.
    // ------------------------------------------------------------------

    /// Epoch of the catalog version currently durable (increments on every
    /// [`save_catalog`](SpatialKeywordDb::save_catalog)).
    pub fn catalog_epoch(&self) -> u64 {
        self.catalog.epoch()
    }

    /// Walks every structure end to end, validating integrity — the engine
    /// behind `ir2 check`:
    ///
    /// * **objects**: every record is re-read, which verifies its per-record
    ///   CRC, and the record count is cross-checked against the catalog;
    /// * **rtree / ir2 / mir2**: every node page is re-read (verifying its
    ///   block checksums), leaf depth is uniform, parent MBRs equal child
    ///   MBRs, entry counts match the catalog, and — on the signature
    ///   trees — every parent signature contains all of its child's bits.
    ///
    /// Minimum-fill factors are *not* enforced (bulk-loaded trees
    /// legitimately leave underfull tail nodes). A flipped byte anywhere in
    /// a node page, catalog extent, or object record surfaces here as a
    /// failed [`StructureCheck`], never a panic.
    pub fn check_integrity(&self) -> IntegrityReport {
        let mut structures = Vec::new();

        let (_, expect_records) = self.objects.state();
        let mut seen = 0u64;
        let objects = match self.objects.scan(|_, _| {
            seen += 1;
            Ok(())
        }) {
            Ok(()) if seen == expect_records => StructureCheck {
                name: "objects",
                detail: format!("{seen} records, all CRCs valid"),
                ok: true,
            },
            Ok(()) => StructureCheck {
                name: "objects",
                detail: format!("scanned {seen} records, catalog says {expect_records}"),
                ok: false,
            },
            Err(e) => StructureCheck {
                name: "objects",
                detail: format!("scan failed after {seen} records: {e}"),
                ok: false,
            },
        };
        structures.push(objects);

        let sig_contains = |_l: u16, parent: &[u8], summary: &[u8]| {
            parent.iter().zip(summary).all(|(p, s)| p & s == *s)
        };
        let tree_check = |name: &'static str, r: Result<u64>| match r {
            Ok(n) => StructureCheck {
                name,
                detail: format!("{n} entries, checksums and invariants valid"),
                ok: true,
            },
            Err(e) => StructureCheck {
                name,
                detail: e.to_string(),
                ok: false,
            },
        };
        structures.push(tree_check(
            "rtree",
            self.rtree.check_invariants_with(false, |_, _, _| true),
        ));
        structures.push(tree_check(
            "ir2",
            self.ir2.check_invariants_with(false, sig_contains),
        ));
        structures.push(tree_check(
            "mir2",
            self.mir2.check_invariants_with(false, sig_contains),
        ));

        IntegrityReport {
            catalog_epoch: self.catalog.epoch(),
            structures,
        }
    }

    /// Table 2: per-structure sizes in bytes.
    pub fn index_sizes(&self) -> IndexSizes {
        IndexSizes {
            iio: self.inverted.size_bytes(),
            rtree: self.rtree.size_bytes(),
            ir2: self.ir2.size_bytes(),
            mir2: self.mir2.size_bytes(),
            objects: self.objects.size_bytes(),
        }
    }

    /// Table 1: dataset statistics recorded at build time.
    pub fn build_stats(&self) -> &BuildStats {
        &self.build_stats
    }

    /// The configuration the database was built with.
    pub fn config(&self) -> &DbConfig {
        &self.config
    }

    /// The R-Tree shape shared by all three trees.
    pub fn tree_config(&self) -> &RTreeConfig {
        &self.tree_cfg
    }

    /// The corpus vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The object store.
    pub fn object_store(&self) -> &ObjectStore<2, TrackedDevice<D>> {
        &self.objects
    }

    /// The plain R-Tree (baseline 1).
    pub fn rtree(&self) -> &RTree<2, TrackedDevice<D>, UnitPayload> {
        &self.rtree
    }

    /// The IR²-Tree.
    pub fn ir2_tree(&self) -> &RTree<2, TrackedDevice<D>, Ir2Payload> {
        &self.ir2
    }

    /// The MIR²-Tree.
    pub fn mir2_tree(&self) -> &RTree<2, TrackedDevice<D>, MirPayload<2>> {
        &self.mir2
    }

    /// The inverted index (baseline 2).
    pub fn inverted_index(&self) -> &InvertedIndex<TrackedDevice<D>> {
        &self.inverted
    }

    /// The live metrics registry: cumulative query counters and per-query
    /// histograms, fed by every
    /// [`distance_first`](SpatialKeywordDb::distance_first) /
    /// [`batch_topk`](SpatialKeywordDb::batch_topk) /
    /// [`distance_first_region`](SpatialKeywordDb::distance_first_region)
    /// call. Snapshot/delta and Prometheus export live on the registry.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Prometheus text exposition of the registry, with point-in-time
    /// gauges (per-device I/O totals, dataset size) refreshed first.
    /// Every emitted value is finite — non-finite gauges clamp to zero.
    pub fn metrics_prometheus(&self) -> String {
        let (objects, rtree, ir2, mir2, inverted) = self.io_totals();
        for (dev, io) in [
            ("objects", objects),
            ("rtree", rtree),
            ("ir2", ir2),
            ("mir2", mir2),
            ("inverted", inverted),
        ] {
            self.metrics.set_gauge(
                &format!("device_read_blocks{{device=\"{dev}\"}}"),
                (io.random_reads + io.seq_reads) as f64,
            );
            self.metrics.set_gauge(
                &format!("device_write_blocks{{device=\"{dev}\"}}"),
                (io.random_writes + io.seq_writes) as f64,
            );
        }
        self.metrics
            .set_gauge("db_objects", self.build_stats.objects as f64);
        self.metrics
            .set_gauge("db_vocabulary_terms", self.build_stats.unique_words as f64);
        for (tree, hits, misses) in self.node_cache_stats() {
            self.metrics
                .set_gauge(&format!("node_cache_hits{{tree=\"{tree}\"}}"), hits as f64);
            self.metrics.set_gauge(
                &format!("node_cache_misses{{tree=\"{tree}\"}}"),
                misses as f64,
            );
        }
        self.metrics.export_prometheus()
    }

    /// Re-sizes (or with `nodes == 0`, disables) the decoded-node caches at
    /// runtime — the hook behind the CLI's `--node-cache` override. Fresh
    /// caches start cold; the persisted configuration is not rewritten
    /// until the next [`save_catalog`](SpatialKeywordDb::save_catalog).
    pub fn configure_node_cache(&mut self, nodes: usize) {
        self.config.node_cache = nodes;
        if nodes > 0 {
            self.rtree.set_node_cache(Arc::new(NodeCache::new(nodes)));
            self.ir2.set_node_cache(Arc::new(NodeCache::new(nodes)));
            self.mir2.set_node_cache(Arc::new(NodeCache::new(nodes)));
        } else {
            self.rtree.clear_node_cache();
            self.ir2.clear_node_cache();
            self.mir2.clear_node_cache();
        }
    }

    /// Overrides the frontier-prefetch worker count at runtime (0
    /// disables) — the hook behind the CLI's `--prefetch` override.
    pub fn configure_prefetch(&mut self, workers: usize) {
        self.config.prefetch = workers;
    }

    /// Cumulative decoded-node cache `(tree, hits, misses)` per tree, in
    /// `("rtree", "ir2", "mir2")` order. Empty when the cache is disabled
    /// (`DbConfig::node_cache == 0`). Unlike the per-query `cache_hits`
    /// counter, these totals also include speculative prefetch-worker
    /// lookups.
    pub fn node_cache_stats(&self) -> Vec<(&'static str, u64, u64)> {
        let mut out = Vec::new();
        if let Some(c) = self.rtree.node_cache() {
            let (h, m) = c.hit_stats();
            out.push(("rtree", h, m));
        }
        if let Some(c) = self.ir2.node_cache() {
            let (h, m) = c.hit_stats();
            out.push(("ir2", h, m));
        }
        if let Some(c) = self.mir2.node_cache() {
            let (h, m) = c.hit_stats();
            out.push(("mir2", h, m));
        }
        out
    }

    /// Total I/O since the counters were last reset, per structure:
    /// `(objects, rtree, ir2, mir2, inverted)`.
    pub fn io_totals(&self) -> (IoSnapshot, IoSnapshot, IoSnapshot, IoSnapshot, IoSnapshot) {
        (
            self.io.objects.snapshot(),
            self.io.rtree.snapshot(),
            self.io.ir2.snapshot(),
            self.io.mir2.snapshot(),
            self.io.inverted.snapshot(),
        )
    }

    /// Resets every I/O counter (e.g. after the build phase).
    pub fn reset_io(&self) {
        for s in [
            &self.io.objects,
            &self.io.rtree,
            &self.io.ir2,
            &self.io.mir2,
            &self.io.inverted,
        ] {
            s.reset();
        }
        self.objects.reset_loads();
    }
}

// ----------------------------------------------------------------------
// Concurrency contract.
// ----------------------------------------------------------------------

// The batch engine hands `&SpatialKeywordDb` to scoped worker threads, so
// the facade — and therefore every structure inside it — must be `Sync`
// (and `Send`, for callers that move a database into a thread). Assert the
// whole stack at compile time for both device families rather than letting
// the auto traits silently regress: a future `Cell`/`Rc`/raw-pointer field
// anywhere in the stack turns these lines into build errors instead of
// into a runtime data race.
const _: () = {
    const fn shareable<T: Send + Sync + ?Sized>() {}
    shareable::<SpatialKeywordDb<MemDevice>>();
    shareable::<SpatialKeywordDb<FileDevice>>();
    shareable::<RTree<2, TrackedDevice<MemDevice>, UnitPayload>>();
    shareable::<RTree<2, TrackedDevice<MemDevice>, Ir2Payload>>();
    shareable::<RTree<2, TrackedDevice<MemDevice>, MirPayload<2>>>();
    shareable::<ObjectStore<2, TrackedDevice<MemDevice>>>();
    shareable::<InvertedIndex<TrackedDevice<MemDevice>>>();
    shareable::<dyn ObjectSource<2>>();
    shareable::<ir2_storage::BufferPool<MemDevice>>();
};
