//! Online replica scrubber: detects and repairs silent divergence between
//! a shard's replicas.
//!
//! Replication only helps if the replicas actually agree, and disks rot
//! silently — a flipped bit in a cold page is invisible until a failover
//! routes a query into it. The scrubber walks a sharded directory replica
//! by replica and re-proves the build-time invariant that replicas are
//! byte-identical:
//!
//! 1. **Assess**: every replica is opened and integrity-checked (the same
//!    CRC-verifying walk `ir2 check` runs), and its catalog epoch read.
//! 2. **Pick a reference**: the healthy replica with the highest catalog
//!    epoch (ties break to the lowest replica index). Epoch ordering
//!    matters — after a crash mid-repair, a stale-but-clean replica must
//!    not overwrite a newer one.
//! 3. **Compare**: every device file of every other replica is diffed
//!    block-for-block against the reference (raw bytes — a page whose CRC
//!    still validates but whose bytes differ is still divergence).
//! 4. **Repair** (opt-in): differing files are re-copied whole from the
//!    reference, then re-verified. Pages are sealed (CRC-trailed, written
//!    once) and the catalog commits by shadow-paged epoch flip, so a
//!    file-granularity copy from a quiescent healthy peer cannot tear.
//!
//! Counters exported through [`MetricsRegistry`]: `scrub_pages_total`
//! (pages compared), `scrub_mismatches_total` (pages that differed),
//! `scrub_repairs_total` (files re-copied), plus `scrub_runs_total` /
//! `scrub_errors_total` from the background [`Scrubber`].

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ir2_storage::{diff_blocks, BlockDevice, FileDevice, MetricsRegistry, Result, StorageError};

use crate::shard::{shard_layout, SHARD_MANIFEST};
use crate::{DeviceSet, SpatialKeywordDb};

/// Outcome of one scrub pass over a sharded directory.
#[derive(Debug, Default)]
pub struct ScrubReport {
    /// Shards in the manifest.
    pub shards: usize,
    /// Replicas per shard in the manifest.
    pub replicas: usize,
    /// Pages (blocks) compared against a reference replica.
    pub pages: u64,
    /// Pages that differed from the reference (or were missing).
    pub mismatches: u64,
    /// Files re-copied from the reference during repair.
    pub repairs: u64,
    /// Mismatching pages still present after the pass — nonzero when
    /// repair was off, a repair failed re-verification, or a shard had no
    /// healthy replica to repair from.
    pub unrepaired: u64,
    /// Shards that could not be scrubbed at all (no healthy replica).
    pub unscrubbed_shards: u64,
    /// Human-readable findings, one line each.
    pub details: Vec<String>,
}

impl ScrubReport {
    /// Whether the directory is fully consistent after this pass: no
    /// divergence found, or every divergence repaired and re-verified.
    pub fn clean(&self) -> bool {
        self.unrepaired == 0 && self.unscrubbed_shards == 0
    }
}

/// Health of one replica: its catalog epoch if it opens and passes an
/// integrity walk, otherwise the failure.
fn assess(path: &Path) -> Result<u64> {
    let set = DeviceSet::open_dir(path)?;
    let db = SpatialKeywordDb::open(set)?;
    let report = db.check_integrity();
    if let Some(bad) = report.structures.iter().find(|s| !s.ok) {
        return Err(StorageError::Corrupt(format!(
            "integrity check failed in `{}`",
            bad.name
        )));
    }
    Ok(db.catalog_epoch())
}

/// One scrub pass over the sharded database at `dir`; see the module docs
/// for the protocol. With `repair` set, divergent replica files are
/// re-copied from the reference replica and re-verified. Counters go to
/// `metrics` when provided.
pub fn scrub_dir<P: AsRef<Path>>(
    dir: P,
    repair: bool,
    metrics: Option<&MetricsRegistry>,
) -> Result<ScrubReport> {
    let dir = dir.as_ref();
    let layout = shard_layout(dir)?.ok_or_else(|| {
        StorageError::Corrupt(format!(
            "{} has no {SHARD_MANIFEST} manifest (not a sharded database)",
            dir.display()
        ))
    })?;
    let mut report = ScrubReport {
        shards: layout.shards,
        replicas: layout.replicas,
        ..ScrubReport::default()
    };
    for i in 0..layout.shards {
        let dirs = layout.replica_dirs(dir, i);
        let mut health: Vec<Option<u64>> = Vec::with_capacity(dirs.len());
        for (m, path) in dirs.iter().enumerate() {
            match assess(path) {
                Ok(epoch) => health.push(Some(epoch)),
                Err(e) => {
                    report
                        .details
                        .push(format!("shard {i} replica {m}: unhealthy: {e}"));
                    health.push(None);
                }
            }
        }
        // Reference: healthy replica with the highest epoch; ties break
        // toward the lowest index so the choice is deterministic.
        let reference = (0..dirs.len())
            .filter(|&m| health[m].is_some())
            .max_by_key(|&m| (health[m], std::cmp::Reverse(m)));
        let Some(r0) = reference else {
            report
                .details
                .push(format!("shard {i}: no healthy replica to scrub against"));
            report.unscrubbed_shards += 1;
            continue;
        };
        if let Some(stale) = (0..dirs.len())
            .find(|&m| health[m].is_some_and(|e| e != health[r0].expect("reference is healthy")))
        {
            report.details.push(format!(
                "shard {i} replica {stale}: catalog epoch {} behind reference replica {r0} \
                 (epoch {})",
                health[stale].expect("checked healthy"),
                health[r0].expect("reference is healthy"),
            ));
        }
        for m in 0..dirs.len() {
            if m == r0 {
                continue;
            }
            let mut bad_files: Vec<&'static str> = Vec::new();
            let mut bad_pages = 0u64;
            for name in DeviceSet::<FileDevice>::file_names() {
                let src = FileDevice::open(dirs[r0].join(name))?;
                let diffs = match FileDevice::open(dirs[m].join(name)) {
                    Ok(dst) => {
                        report.pages += src.num_blocks().max(dst.num_blocks());
                        diff_blocks(&src, &dst)?
                    }
                    // A missing or unopenable file counts every reference
                    // page as divergent.
                    Err(_) => {
                        report.pages += src.num_blocks();
                        (0..src.num_blocks()).collect()
                    }
                };
                if !diffs.is_empty() {
                    bad_pages += diffs.len() as u64;
                    bad_files.push(name);
                    report.details.push(format!(
                        "shard {i} replica {m}: `{name}` diverges from replica {r0} on {} page(s)",
                        diffs.len()
                    ));
                }
            }
            report.mismatches += bad_pages;
            if bad_files.is_empty() {
                continue;
            }
            if repair {
                std::fs::create_dir_all(&dirs[m])?;
                for name in &bad_files {
                    std::fs::copy(dirs[r0].join(name), dirs[m].join(name))?;
                    report.repairs += 1;
                }
                let mut still = 0u64;
                for name in &bad_files {
                    let src = FileDevice::open(dirs[r0].join(name))?;
                    let dst = FileDevice::open(dirs[m].join(name))?;
                    still += diff_blocks(&src, &dst)?.len() as u64;
                }
                report.unrepaired += still;
                report.details.push(format!(
                    "shard {i} replica {m}: repaired {} file(s) from replica {r0}{}",
                    bad_files.len(),
                    if still == 0 {
                        ", verified clean"
                    } else {
                        " — STILL DIVERGENT"
                    }
                ));
            } else {
                report.unrepaired += bad_pages;
            }
        }
    }
    if let Some(m) = metrics {
        m.add_counter("scrub_pages_total", report.pages);
        m.add_counter("scrub_mismatches_total", report.mismatches);
        m.add_counter("scrub_repairs_total", report.repairs);
    }
    Ok(report)
}

/// A background scrubbing thread: runs [`scrub_dir`] every `interval`
/// until stopped (explicitly or on drop). Obtain one from
/// [`ShardedDb::start_scrubber`](crate::ShardedDb::start_scrubber) or
/// [`Scrubber::start`].
pub struct Scrubber {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Scrubber {
    /// Starts scrubbing `dir` every `interval` on a background thread,
    /// folding counters into `metrics` (`scrub_runs_total` /
    /// `scrub_errors_total` per pass, plus the [`scrub_dir`] counters).
    pub fn start(
        dir: PathBuf,
        interval: Duration,
        repair: bool,
        metrics: Arc<MetricsRegistry>,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || loop {
            match scrub_dir(&dir, repair, Some(&metrics)) {
                Ok(_) => metrics.add_counter("scrub_runs_total", 1),
                Err(_) => metrics.add_counter("scrub_errors_total", 1),
            }
            // Sleep in short slices so stop() returns promptly.
            let mut slept = Duration::ZERO;
            while slept < interval {
                if flag.load(Ordering::Relaxed) {
                    return;
                }
                let step = Duration::from_millis(20).min(interval - slept);
                std::thread::sleep(step);
                slept += step;
            }
            if flag.load(Ordering::Relaxed) {
                return;
            }
        });
        Self {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the background thread and waits for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Scrubber {
    fn drop(&mut self) {
        self.shutdown();
    }
}
