//! Fault injection over `RTree::delete`: every mutation is staged and only
//! published when all its I/O succeeds, so a device failure at *any* point
//! during a delete workload must leave the tree consistent — the committed
//! prefix of deletes applied, the failed one fully rolled back, structural
//! invariants intact, and every surviving object still findable.

use ir2_geo::{Point, Rect};
use ir2_rtree::{RTree, RTreeConfig, UnitPayload};
use ir2_storage::testing::FlakyDevice;
use ir2_storage::MemDevice;

const N: usize = 24;

fn rects() -> Vec<Rect<2>> {
    (0..N)
        .map(|i| Rect::from_point(Point::new([i as f64, (i * 7 % 13) as f64])))
        .collect()
}

/// Sweeps the I/O budget from zero upward: each iteration rebuilds the same
/// tree, then runs the delete workload until the budget runs dry. Whatever
/// the failure point, the tree must be exactly "all objects minus the
/// deletes that returned Ok".
#[test]
fn delete_is_atomic_at_every_io_failure_point() {
    let all = rects();
    let world = Rect::new(Point::new([-1.0, -1.0]), Point::new([100.0, 100.0]));
    let mut budget = 0u64;
    loop {
        let dev = FlakyDevice::new(MemDevice::new(), u64::MAX);
        let tree = RTree::create(dev, RTreeConfig::with_max(4), UnitPayload).unwrap();
        for (i, r) in all.iter().enumerate() {
            tree.insert(i as u64, *r, &[]).unwrap();
        }
        tree.device().refill(budget);

        let mut deleted: Vec<u64> = Vec::new();
        let mut failed = false;
        for (i, r) in all.iter().enumerate() {
            match tree.delete(i as u64, r) {
                Ok(true) => deleted.push(i as u64),
                Ok(false) => panic!("existing object {i} reported missing"),
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }

        // Restore the device and audit the survivors.
        tree.device().refill(u64::MAX);
        assert_eq!(
            tree.len(),
            (N - deleted.len()) as u64,
            "budget {budget}: count out of step with committed deletes"
        );
        tree.check_invariants(|_, _, _| true)
            .unwrap_or_else(|e| panic!("budget {budget}: invariants broken: {e}"));
        let mut got = tree.window_objects(&world).unwrap();
        got.sort_unstable();
        let expect: Vec<u64> = (0..N as u64).filter(|id| !deleted.contains(id)).collect();
        assert_eq!(got, expect, "budget {budget}: wrong surviving set");

        if !failed {
            assert_eq!(tree.len(), 0);
            break;
        }
        budget += 1;
    }
}

/// A delete that fails must not leak or double-free blocks: retrying the
/// same delete after restoring the device succeeds and the tree stays
/// consistent.
#[test]
fn failed_delete_can_be_retried() {
    let all = rects();
    let dev = FlakyDevice::new(MemDevice::new(), u64::MAX);
    let tree = RTree::create(dev, RTreeConfig::with_max(4), UnitPayload).unwrap();
    for (i, r) in all.iter().enumerate() {
        tree.insert(i as u64, *r, &[]).unwrap();
    }

    // Fail the delete somewhere in the middle of its I/O.
    tree.device().refill(3);
    assert!(tree.delete(5, &all[5]).is_err());
    tree.device().refill(u64::MAX);
    assert_eq!(tree.len(), N as u64, "failed delete must not change count");

    assert!(tree.delete(5, &all[5]).unwrap());
    assert_eq!(tree.len(), N as u64 - 1);
    tree.check_invariants(|_, _, _| true).unwrap();
}
