//! Property tests: the disk R-Tree against an in-memory brute-force model.

use ir2_geo::{Point, Rect};
use ir2_rtree::{RTree, RTreeConfig, UnitPayload};
use ir2_storage::MemDevice;
use proptest::prelude::*;

type Model = Vec<(u64, [f64; 2])>;

fn arb_points(max: usize) -> impl Strategy<Value = Vec<[f64; 2]>> {
    prop::collection::vec(prop::array::uniform2(-100.0f64..100.0), 1..max)
}

fn build(points: &[[f64; 2]], cap: usize) -> RTree<2, MemDevice, UnitPayload> {
    let tree = RTree::create(MemDevice::new(), RTreeConfig::with_max(cap), UnitPayload).unwrap();
    for (i, p) in points.iter().enumerate() {
        tree.insert(i as u64, Rect::from_point(Point::new(*p)), &[])
            .unwrap();
    }
    tree
}

fn brute_nn(model: &Model, q: Point<2>) -> Vec<(f64, u64)> {
    let mut v: Vec<(f64, u64)> = model
        .iter()
        .map(|(id, p)| (q.distance(&Point::new(*p)), *id))
        .collect();
    v.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Incremental NN yields every object exactly once, in exact distance
    /// order, matching brute force.
    #[test]
    fn nn_matches_brute_force(points in arb_points(120), q in prop::array::uniform2(-120.0f64..120.0)) {
        let tree = build(&points, 4);
        let q = Point::new(q);
        let got: Vec<(f64, u64)> = tree.nearest(q).map(|r| {
            let r = r.unwrap();
            (r.dist, r.child)
        }).collect();
        let model: Model = points.iter().enumerate().map(|(i, p)| (i as u64, *p)).collect();
        let brute = brute_nn(&model, q);
        prop_assert_eq!(got.len(), brute.len());
        for (g, b) in got.iter().zip(brute.iter()) {
            prop_assert!((g.0 - b.0).abs() < 1e-9, "distance mismatch: {} vs {}", g.0, b.0);
        }
        // Set equality of ids.
        let mut gids: Vec<u64> = got.iter().map(|g| g.1).collect();
        gids.sort_unstable();
        prop_assert_eq!(gids, (0..points.len() as u64).collect::<Vec<_>>());
    }

    /// Structural invariants hold after any interleaving of inserts and
    /// deletes, and the surviving set matches the model.
    #[test]
    fn insert_delete_interleaving(points in arb_points(80),
                                  deletes in prop::collection::vec(any::<prop::sample::Index>(), 0..40)) {
        let tree = build(&points, 4);
        let mut model: Model = points.iter().enumerate().map(|(i, p)| (i as u64, *p)).collect();
        for idx in deletes {
            if model.is_empty() { break; }
            let (id, p) = model.remove(idx.index(model.len()));
            let existed = tree.delete(id, &Rect::from_point(Point::new(p))).unwrap();
            prop_assert!(existed);
        }
        tree.check_invariants(|_, _, _| true).unwrap();
        prop_assert_eq!(tree.len(), model.len() as u64);

        let mut got: Vec<u64> = tree.nearest(Point::new([0.0, 0.0])).map(|r| r.unwrap().child).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = model.iter().map(|(id, _)| *id).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Bulk loading and incremental insertion index the same set (query
    /// results agree by distance).
    #[test]
    fn bulk_load_equals_incremental(points in arb_points(150), q in prop::array::uniform2(-120.0f64..120.0)) {
        let q = Point::new(q);
        let incr = build(&points, 8);
        let bulk = RTree::create(MemDevice::new(), RTreeConfig::with_max(8), UnitPayload).unwrap();
        bulk.bulk_load(points.iter().enumerate()
            .map(|(i, p)| (i as u64, Rect::from_point(Point::new(*p)), vec![]))
            .collect()).unwrap();

        let d_incr: Vec<f64> = incr.nearest(q).map(|r| r.unwrap().dist).collect();
        let d_bulk: Vec<f64> = bulk.nearest(q).map(|r| r.unwrap().dist).collect();
        prop_assert_eq!(d_incr.len(), d_bulk.len());
        for (a, b) in d_incr.iter().zip(d_bulk.iter()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Persistence: flush + reopen reproduces identical NN results.
    #[test]
    fn reopen_is_transparent(points in arb_points(60)) {
        let dev = std::sync::Arc::new(MemDevice::new());
        let cfg = RTreeConfig::with_max(4);
        let before: Vec<(f64, u64)>;
        {
            let tree = RTree::<2, _, _>::create(std::sync::Arc::clone(&dev), cfg, UnitPayload).unwrap();
            for (i, p) in points.iter().enumerate() {
                tree.insert(i as u64, Rect::from_point(Point::new(*p)), &[]).unwrap();
            }
            before = tree.nearest(Point::new([1.0, 2.0])).map(|r| {
                let r = r.unwrap();
                (r.dist, r.child)
            }).collect();
            tree.flush().unwrap();
        }
        let tree = RTree::<2, _, _>::open(dev, cfg, UnitPayload).unwrap();
        let after: Vec<(f64, u64)> = tree.nearest(Point::new([1.0, 2.0])).map(|r| {
            let r = r.unwrap();
            (r.dist, r.child)
        }).collect();
        prop_assert_eq!(before, after);
    }
}
