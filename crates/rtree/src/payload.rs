//! Per-entry payload strategies.

/// Strategy describing the extra bytes every tree entry carries and how
/// they are maintained.
///
/// The R-Tree calls these hooks at exactly the points where the paper's
/// Insert/Delete "also maintain the signatures of the modified nodes":
///
/// * a **merge** when an object's contribution is OR-ed into an ancestor
///   entry on the insert path (AdjustTree);
/// * a **summary** when an entry must describe a whole node afresh — after
///   a split, after a deletion shrinks a node, or during bulk loading.
///
/// Implementations: [`UnitPayload`] (plain R-Tree, zero bytes), the
/// IR²-Tree's uniform signatures and the MIR²-Tree's per-level signatures
/// (both in the `ir2-irtree` crate).
///
/// `node_level` is the level of the node *containing* the entry: leaf nodes
/// are level 0 (their entries describe objects), a node at level `ℓ ≥ 1`
/// has entries describing child nodes at level `ℓ − 1`.
pub trait PayloadOps: Send + Sync {
    /// Byte length of entry payloads in a node at `node_level`.
    fn entry_size(&self, node_level: u16) -> usize;

    /// Merges `other` into `acc`; both are payloads of entries at
    /// `node_level` (signature superimposition; no-op for unit payloads).
    fn merge(&self, node_level: u16, acc: &mut [u8], other: &[u8]);

    /// Computes the payload of a parent entry (stored at `node_level + 1`)
    /// summarizing a node at `node_level`, from that node's entry payloads.
    ///
    /// Returns `None` when the summary cannot be derived from entry
    /// payloads — the MIR²-Tree across level boundaries, where each level
    /// uses a different signature scheme — in which case the tree falls
    /// back to [`summarize_objects`](PayloadOps::summarize_objects),
    /// re-accessing the subtree's objects (the maintenance cost Section 4
    /// attributes to the MIR²-Tree).
    fn summarize_entries(
        &self,
        node_level: u16,
        entry_payloads: &mut dyn Iterator<Item = &[u8]>,
    ) -> Option<Vec<u8>>;

    /// Computes a parent-entry payload (stored at `parent_level`) for a
    /// subtree from the subtree's object references (leaf-entry `child`
    /// values). Only called when `summarize_entries` returned `None`.
    fn summarize_objects(
        &self,
        parent_level: u16,
        objects: &mut dyn Iterator<Item = u64>,
    ) -> Vec<u8>;

    /// Payload at `node_level` for a single object whose leaf payload is
    /// `leaf_payload` (used to fold an insert up the tree, and to reinsert
    /// entries during CondenseTree). Implementations whose levels share one
    /// scheme return the leaf payload unchanged; multi-level schemes
    /// re-derive it (possibly loading the object).
    fn lift_object(&self, child: u64, leaf_payload: &[u8], node_level: u16) -> Vec<u8>;

    /// When true, the tree recomputes ancestor summaries on *every* insert
    /// instead of merging the object's lifted payload — the paper's literal
    /// description of MIR²-Tree maintenance ("for each object inserted or
    /// deleted, we have to recompute the signatures of all ancestor nodes by
    /// accessing all underlying objects"). Costly; used by the maintenance
    /// ablation.
    fn strict_maintenance(&self) -> bool {
        false
    }
}

/// The zero-byte payload: turns the augmented tree into a plain R-Tree.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnitPayload;

impl PayloadOps for UnitPayload {
    fn entry_size(&self, _node_level: u16) -> usize {
        0
    }

    fn merge(&self, _node_level: u16, _acc: &mut [u8], _other: &[u8]) {}

    fn summarize_entries(
        &self,
        _node_level: u16,
        _entry_payloads: &mut dyn Iterator<Item = &[u8]>,
    ) -> Option<Vec<u8>> {
        Some(Vec::new())
    }

    fn summarize_objects(
        &self,
        _parent_level: u16,
        _objects: &mut dyn Iterator<Item = u64>,
    ) -> Vec<u8> {
        Vec::new()
    }

    fn lift_object(&self, _child: u64, _leaf_payload: &[u8], _node_level: u16) -> Vec<u8> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_payload_is_empty_everywhere() {
        let p = UnitPayload;
        assert_eq!(p.entry_size(0), 0);
        assert_eq!(p.entry_size(7), 0);
        assert_eq!(
            p.summarize_entries(0, &mut std::iter::empty()),
            Some(vec![])
        );
        assert_eq!(p.summarize_objects(1, &mut std::iter::empty()), vec![]);
        assert_eq!(p.lift_object(1, &[], 3), vec![]);
        assert!(!p.strict_maintenance());
    }
}
