//! Decoded-node caching: the [`CachedNode`] wrapper shared out of a
//! [`DecodedCache`], plus the node-cache type alias used by the tree.
//!
//! A warm traversal repeatedly pays three costs per visited node: the
//! block reads, the per-block CRC verification, and the entry
//! deserialization. Caching the *decoded* node behind an `Arc` eliminates
//! all three on a hit. The wrapped image is an arena-backed [`NodeBuf`] —
//! one allocation for the whole extent, entries served by offset — so even
//! the cold decode allocates nothing per entry. The wrapper additionally
//! carries a lazily-built, type-erased decoration slot so higher layers
//! (the IR²-Tree) can attach derived per-node data — e.g. entry payloads
//! assembled into a columnar `SignatureBlock` — and have it cached with
//! the same lifetime and invalidation as the node itself.

use std::any::Any;
use std::ops::Deref;
use std::sync::OnceLock;

use ir2_storage::DecodedCache;

use crate::node::NodeBuf;

/// A decoded node plus one lazily-initialized decoration.
///
/// Dereferences to the wrapped [`NodeBuf`], so cached and uncached code
/// paths read entries identically. The decoration slot is written at most
/// once (first caller wins); all users of a given tree must therefore agree
/// on a single decoration type — the slot is keyed by the node, not the
/// type.
pub struct CachedNode<const N: usize> {
    node: NodeBuf<N>,
    deco: OnceLock<Box<dyn Any + Send + Sync>>,
}

impl<const N: usize> CachedNode<N> {
    /// Wraps a freshly decoded node.
    pub fn new(node: NodeBuf<N>) -> Self {
        Self {
            node,
            deco: OnceLock::new(),
        }
    }

    /// The wrapped node image.
    pub fn node(&self) -> &NodeBuf<N> {
        &self.node
    }

    /// Returns the decoration, building it on first access.
    ///
    /// # Panics
    /// Panics if a decoration of a *different* type was installed earlier —
    /// a programming error, since the slot holds one value per node.
    pub fn decorations<T, F>(&self, build: F) -> &T
    where
        T: Send + Sync + 'static,
        F: FnOnce(&NodeBuf<N>) -> T,
    {
        self.deco
            .get_or_init(|| Box::new(build(&self.node)))
            .downcast_ref::<T>()
            .expect("conflicting decoration types on one cached node")
    }
}

impl<const N: usize> Deref for CachedNode<N> {
    type Target = NodeBuf<N>;

    fn deref(&self) -> &NodeBuf<N> {
        &self.node
    }
}

impl<const N: usize> std::fmt::Debug for CachedNode<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedNode")
            .field("node", &self.node)
            .field("decorated", &self.deco.get().is_some())
            .finish()
    }
}

/// A decoded-node cache for trees over `N`-dimensional rectangles, keyed
/// by node id (the first block of the node's extent).
pub type NodeCache<const N: usize> = DecodedCache<CachedNode<N>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Node;
    use ir2_geo::{Point, Rect};

    fn leaf() -> NodeBuf<2> {
        let mut n = Node::new(7, 0);
        n.entries.push(crate::node::Entry::new(
            1,
            Rect::from_point(Point::new([1.0, 2.0])),
            vec![0xAB, 0xCD],
        ));
        NodeBuf::from_node(&n, 2)
    }

    #[test]
    fn derefs_to_the_node() {
        let c = CachedNode::new(leaf());
        assert!(c.is_leaf());
        assert_eq!(c.id(), 7);
        assert_eq!(c.node().len(), 1);
        assert_eq!(c.payload(0), &[0xAB, 0xCD]);
    }

    #[test]
    fn decoration_builds_once_and_is_shared() {
        let c = CachedNode::new(leaf());
        let mut builds = 0;
        let first: &Vec<u8> = c.decorations(|n| {
            builds += 1;
            n.payload(0).to_vec()
        });
        assert_eq!(first, &vec![0xAB, 0xCD]);
        let again: &Vec<u8> = c.decorations(|_| {
            builds += 1;
            vec![]
        });
        assert_eq!(again, &vec![0xAB, 0xCD], "second build must not run");
        assert_eq!(builds, 1);
    }

    #[test]
    #[should_panic(expected = "conflicting decoration types")]
    fn conflicting_decoration_types_panic() {
        let c = CachedNode::new(leaf());
        let _: &u32 = c.decorations(|_| 5u32);
        let _: &String = c.decorations(|_| String::new());
    }
}
