#![warn(missing_docs)]
//! Disk-resident R-Tree [Gut84] with per-entry payload augmentation.
//!
//! This crate is both the paper's **R-Tree baseline** and the skeleton of
//! the **IR²-Tree**: Section 4 defines the IR²-Tree's Insert/Delete as
//! "modifications of the corresponding R-Tree operations" that additionally
//! maintain a signature per entry. We capture that with a single tree
//! generic over [`PayloadOps`] — a strategy describing the per-entry byte
//! payload (nothing for a plain R-Tree, fixed-length signatures for the
//! IR²-Tree, per-level signatures for the MIR²-Tree) and how payloads are
//! merged and summarized up the tree.
//!
//! Implemented faithfully to the paper's choices:
//!
//! * **ChooseLeaf / AdjustTree / quadratic split** — "we use the standard
//!   Quadratic Split technique [Gut84]"; AdjustTree also maintains payloads
//!   ("if a new bit is set to 1 in a node N, then it must also be set to 1
//!   for N's ancestors").
//! * **FindLeaf / CondenseTree** for deletion, with payload recomputation
//!   on shrink (bits cannot be unset incrementally).
//! * **Incremental nearest neighbor** [HS99] (Figure 3 of the paper) via a
//!   best-first priority queue on MINDIST — see [`RTree::nearest`].
//! * **Disk residency**: each node occupies a fixed extent of 4096-byte
//!   blocks on the tree's own [`BlockDevice`](ir2_storage::BlockDevice);
//!   node fanout is chosen so a *plain* R-Tree node fills one block, and
//!   payload-carrying nodes keep that fanout while spilling onto extra
//!   blocks read sequentially — exactly the paper's layout ("we allocate
//!   additional disk block(s) to an IR²-Tree node when needed").
//!
//! Additions beyond the paper, flagged in `DESIGN.md`: an STR bulk loader
//! ([`RTree::bulk_load`]) used to build large experimental trees quickly,
//! and an optional decoded-node cache ([`RTree::set_node_cache`]) that
//! serves warm traversals without re-verifying checksums or re-decoding
//! entries, invalidated by a per-tree mutation epoch.

mod bulk;
mod cached;
mod config;
mod nn;
mod node;
mod payload;
mod prefetch;
mod search;
mod tree;

pub use cached::{CachedNode, NodeCache};
pub use config::{RTreeConfig, SplitStrategy};
pub use nn::{NnIter, NnResult};
pub use node::{Entry, Node, NodeBuf, NodeId};
pub use payload::{PayloadOps, UnitPayload};
pub use prefetch::{with_frontier_prefetch, PrefetchQueue};
pub use search::TreeStats;
pub use tree::RTree;
