//! Speculative frontier prefetch: background workers decode
//! soon-to-be-visited nodes into the tree's decoded-node cache while the
//! traversal works the current node.
//!
//! The traversal nominates up to `p` signature-passing child nodes per
//! expansion through a [`PrefetchQueue`]; `p` scoped worker threads drain
//! the queue, each pulling a node through
//! [`RTree::read_node_cached`](crate::RTree::read_node_cached) so the CRC
//! verification and entry decode happen off the query thread. Rank order
//! is untouched — the traversal still pops its own frontier and re-reads
//! any node the workers have not finished (the cache returns a shared
//! image either way), so results are byte-identical with prefetch on or
//! off.
//!
//! Accounting caveat: worker reads run on worker threads, *outside* the
//! query's thread-local `IoScope`, so per-query I/O attribution excludes
//! speculative reads; device-level totals still include them (see
//! `DESIGN.md` §10).

use std::sync::mpsc;
use std::sync::Arc;

use ir2_storage::BlockDevice;
use parking_lot::Mutex;

use crate::node::NodeId;
use crate::{PayloadOps, RTree};

/// Handle a traversal uses to nominate frontier nodes for background
/// decoding. Disabled by default: every [`enqueue`](PrefetchQueue::enqueue)
/// is a no-op until [`with_frontier_prefetch`] hands out a live queue.
#[derive(Default)]
pub struct PrefetchQueue {
    tx: Option<mpsc::Sender<NodeId>>,
    width: usize,
}

impl PrefetchQueue {
    /// A queue that drops every nomination (prefetch off).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether nominations reach live workers.
    pub fn is_enabled(&self) -> bool {
        self.tx.is_some()
    }

    /// How many nodes a traversal should nominate per expansion — the `p`
    /// of the worker pool (0 when disabled).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Nominates a node for background decode. No-op when disabled; a
    /// send after the workers have exited is silently dropped.
    pub fn enqueue(&self, id: NodeId) {
        if let Some(tx) = &self.tx {
            let _ = tx.send(id);
        }
    }
}

/// Runs `f` with a live [`PrefetchQueue`] backed by `workers` scoped
/// threads that decode nominated nodes into `tree`'s decoded-node cache.
///
/// Degenerates to `f(PrefetchQueue::disabled())` — spawning nothing — when
/// `workers == 0` or the tree has no attached node cache (prefetching
/// without a cache would decode nodes only to throw them away). Workers
/// terminate when the queue is dropped (normally when `f` returns) and are
/// joined before this function returns, so speculative reads never outlive
/// the query that requested them.
pub fn with_frontier_prefetch<const N: usize, D, P, R>(
    tree: &RTree<N, D, P>,
    workers: usize,
    f: impl FnOnce(PrefetchQueue) -> R,
) -> R
where
    D: BlockDevice,
    P: PayloadOps + Sync,
{
    if workers == 0 || tree.node_cache().is_none() {
        return f(PrefetchQueue::disabled());
    }
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<NodeId>();
        let rx = Arc::new(Mutex::new(rx));
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            scope.spawn(move || loop {
                // The guard is dropped before the decode, so workers take
                // turns receiving but verify and decode in parallel.
                let msg = rx.lock().recv();
                match msg {
                    Ok(id) => {
                        // Speculative: an I/O error here is not the
                        // query's problem — the traversal will re-read the
                        // node itself and surface the error in context.
                        let _ = tree.read_node_cached(id);
                    }
                    Err(_) => break,
                }
            });
        }
        f(PrefetchQueue {
            tx: Some(tx),
            width: workers,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeCache, RTreeConfig, UnitPayload};
    use ir2_geo::{Point, Rect};
    use ir2_storage::MemDevice;

    fn sample_tree(cache: bool) -> RTree<2, MemDevice, UnitPayload> {
        let mut tree =
            RTree::create(MemDevice::new(), RTreeConfig::with_max(4), UnitPayload).unwrap();
        if cache {
            tree.set_node_cache(std::sync::Arc::new(NodeCache::new(128)));
        }
        for i in 0..60u64 {
            tree.insert(
                i,
                Rect::from_point(Point::new([(i % 8) as f64, (i / 8) as f64])),
                &[],
            )
            .unwrap();
        }
        tree
    }

    #[test]
    fn disabled_without_cache_or_workers() {
        let uncached = sample_tree(false);
        with_frontier_prefetch(&uncached, 4, |q| {
            assert!(!q.is_enabled());
            assert_eq!(q.width(), 0);
            q.enqueue(1); // harmless no-op
        });
        let cached = sample_tree(true);
        with_frontier_prefetch(&cached, 0, |q| assert!(!q.is_enabled()));
    }

    #[test]
    fn workers_populate_the_cache() {
        let tree = sample_tree(true);
        let root = tree.root().unwrap();
        let children: Vec<u64> = tree
            .read_node(root)
            .unwrap()
            .entries
            .iter()
            .map(|e| e.child)
            .collect();
        with_frontier_prefetch(&tree, 2, |q| {
            assert!(q.is_enabled());
            assert_eq!(q.width(), 2);
            for &c in &children {
                q.enqueue(c);
            }
            // Queue drops when this closure returns; the scope join below
            // guarantees the workers finished every nomination.
        });
        let cache = tree.node_cache().unwrap();
        let (_, misses_before) = cache.hit_stats();
        for &c in &children {
            assert!(cache.get(c).is_some(), "child {c} should be prefetched");
        }
        let (_, misses_after) = cache.hit_stats();
        assert_eq!(misses_before, misses_after);
    }

    #[test]
    fn traversal_results_identical_with_prefetch() {
        let tree = sample_tree(true);
        let q = Point::new([3.0, 3.0]);
        let plain: Vec<u64> = tree.nearest(q).map(|r| r.unwrap().child).collect();
        let prefetched: Vec<u64> = with_frontier_prefetch(&tree, 3, |pf| {
            tree.nearest(q)
                .prefetching(pf)
                .map(|r| r.unwrap().child)
                .collect()
        });
        assert_eq!(plain, prefetched);
    }
}
