//! On-disk node format.
//!
//! A node occupies a fixed-size extent of consecutive blocks determined by
//! its level (payload sizes may differ per level in the MIR²-Tree). Layout:
//!
//! ```text
//! magic(1) ver(1) level(2) count(2) nblocks(2)          -- 8-byte header
//! count × [ child(8) | rect(2·8·N) | payload(entry_size(level)) ]
//! ```
//!
//! Leaf entries (`level == 0`) hold object pointers in `child`; internal
//! entries hold child-node extent ids.

use ir2_geo::Rect;
use ir2_storage::{Result, StorageError};

/// Identifier of a node: the first block of its extent.
pub type NodeId = u64;

/// Byte length of the node header.
pub const NODE_HEADER_LEN: usize = 8;

/// Byte length of a child reference within an entry.
pub const REF_LEN: usize = 8;

const MAGIC: u8 = 0xB7;
const VERSION: u8 = 1;

/// One node entry: a child reference, its MBR, and its payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry<const N: usize> {
    /// Object pointer (leaf) or child node id (internal).
    pub child: u64,
    /// Minimum bounding rectangle of the child.
    pub rect: Rect<N>,
    /// Augmentation payload (e.g. a signature). Length must equal the
    /// tree's `entry_size` for the containing node's level.
    pub payload: Vec<u8>,
}

impl<const N: usize> Entry<N> {
    /// Creates an entry.
    pub fn new(child: u64, rect: Rect<N>, payload: Vec<u8>) -> Self {
        Self {
            child,
            rect,
            payload,
        }
    }
}

/// An in-memory node image.
#[derive(Debug, Clone, PartialEq)]
pub struct Node<const N: usize> {
    /// First block of the node's extent.
    pub id: NodeId,
    /// 0 for leaves; parents of level-`ℓ` nodes are level `ℓ + 1`.
    pub level: u16,
    /// The node's entries (≤ the tree's `max_entries`).
    pub entries: Vec<Entry<N>>,
}

impl<const N: usize> Node<N> {
    /// An empty node.
    pub fn new(id: NodeId, level: u16) -> Self {
        Self {
            id,
            level,
            entries: Vec::new(),
        }
    }

    /// True for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// The bounding rectangle of all entries.
    ///
    /// # Panics
    /// Panics if the node has no entries (only a never-written root is
    /// empty).
    pub fn mbr(&self) -> Rect<N> {
        let mut it = self.entries.iter();
        let first = it.next().expect("mbr of empty node").rect;
        it.fold(first, |acc, e| acc.union(&e.rect))
    }

    /// Byte length of one serialized entry at `level` given the payload
    /// size for that level.
    pub fn entry_encoded_len(payload_size: usize) -> usize {
        REF_LEN + Rect::<N>::ENCODED_LEN + payload_size
    }

    /// Serializes the node into a buffer of `nblocks × BLOCK_SIZE` bytes.
    ///
    /// `payload_size` is the tree's entry payload size at this node's
    /// level; every entry's payload must have exactly that length.
    pub fn encode(&self, payload_size: usize, nblocks: u16) -> Vec<u8> {
        let entry_len = Self::entry_encoded_len(payload_size);
        let mut out = vec![0u8; NODE_HEADER_LEN + self.entries.len() * entry_len];
        out[0] = MAGIC;
        out[1] = VERSION;
        out[2..4].copy_from_slice(&self.level.to_le_bytes());
        out[4..6].copy_from_slice(&(self.entries.len() as u16).to_le_bytes());
        out[6..8].copy_from_slice(&nblocks.to_le_bytes());
        let mut pos = NODE_HEADER_LEN;
        for e in &self.entries {
            debug_assert_eq!(e.payload.len(), payload_size, "payload size mismatch");
            out[pos..pos + 8].copy_from_slice(&e.child.to_le_bytes());
            e.rect
                .encode(&mut out[pos + 8..pos + 8 + Rect::<N>::ENCODED_LEN]);
            out[pos + 8 + Rect::<N>::ENCODED_LEN..pos + entry_len].copy_from_slice(&e.payload);
            pos += entry_len;
        }
        out
    }

    /// Parses the header of a serialized node: `(level, count, nblocks)`.
    pub fn decode_header(buf: &[u8]) -> Result<(u16, u16, u16)> {
        if buf.len() < NODE_HEADER_LEN || buf[0] != MAGIC {
            return Err(StorageError::Corrupt("bad node magic".into()));
        }
        if buf[1] != VERSION {
            return Err(StorageError::Corrupt(format!(
                "bad node version {}",
                buf[1]
            )));
        }
        let level = u16::from_le_bytes(buf[2..4].try_into().expect("2 bytes"));
        let count = u16::from_le_bytes(buf[4..6].try_into().expect("2 bytes"));
        let nblocks = u16::from_le_bytes(buf[6..8].try_into().expect("2 bytes"));
        Ok((level, count, nblocks))
    }

    /// Deserializes a node from its extent bytes.
    pub fn decode(id: NodeId, buf: &[u8], payload_size: usize) -> Result<Self> {
        let (level, count, _nblocks) = Self::decode_header(buf)?;
        let entry_len = Self::entry_encoded_len(payload_size);
        let need = NODE_HEADER_LEN + count as usize * entry_len;
        if buf.len() < need {
            return Err(StorageError::Corrupt(format!(
                "node {id}: {} bytes but {count} entries need {need}",
                buf.len()
            )));
        }
        let mut entries = Vec::with_capacity(count as usize);
        let mut pos = NODE_HEADER_LEN;
        for _ in 0..count {
            let child = u64::from_le_bytes(buf[pos..pos + 8].try_into().expect("8 bytes"));
            let rect = Rect::decode(&buf[pos + 8..pos + 8 + Rect::<N>::ENCODED_LEN]);
            let payload = buf[pos + 8 + Rect::<N>::ENCODED_LEN..pos + entry_len].to_vec();
            entries.push(Entry {
                child,
                rect,
                payload,
            });
            pos += entry_len;
        }
        Ok(Self { id, level, entries })
    }
}

/// A decoded node that keeps its extent bytes in one arena buffer and
/// serves entries by offset — no per-entry `Vec<u8>` payload copies, no
/// per-entry allocation at all.
///
/// This is the read-path twin of [`Node`]: query traversals (nearest
/// neighbor, window search, signature pruning) only ever need indexed
/// access to `child`, `rect`, and a borrowed `payload` slice, which
/// [`NodeBuf`] provides straight out of the arena. Mutations still go
/// through the owned [`Node`] representation.
#[derive(Debug, Clone)]
pub struct NodeBuf<const N: usize> {
    id: NodeId,
    level: u16,
    count: usize,
    entry_len: usize,
    payload_size: usize,
    buf: Box<[u8]>,
}

impl<const N: usize> NodeBuf<N> {
    /// Takes ownership of a node's extent bytes and validates the header
    /// and entry region, exactly like [`Node::decode`] — same error
    /// messages, one allocation total (the buffer itself, which callers
    /// typically already hold).
    pub fn decode(id: NodeId, buf: Vec<u8>, payload_size: usize) -> Result<Self> {
        let (level, count, _nblocks) = Node::<N>::decode_header(&buf)?;
        let entry_len = Node::<N>::entry_encoded_len(payload_size);
        let need = NODE_HEADER_LEN + count as usize * entry_len;
        if buf.len() < need {
            return Err(StorageError::Corrupt(format!(
                "node {id}: {} bytes but {count} entries need {need}",
                buf.len()
            )));
        }
        Ok(Self {
            id,
            level,
            count: count as usize,
            entry_len,
            payload_size,
            buf: buf.into_boxed_slice(),
        })
    }

    /// Encodes an owned node into arena form (test and tooling helper).
    pub fn from_node(node: &Node<N>, payload_size: usize) -> Self {
        let bytes = node.encode(payload_size, 1);
        Self::decode(node.id, bytes, payload_size).expect("encode produced a valid node")
    }

    /// First block of the node's extent.
    #[inline]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// 0 for leaves; parents of level-`ℓ` nodes are level `ℓ + 1`.
    #[inline]
    pub fn level(&self) -> u16 {
        self.level
    }

    /// True for leaf nodes.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    /// True if the node has no entries (only a never-written root).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Payload bytes per entry at this node's level.
    #[inline]
    pub fn payload_size(&self) -> usize {
        self.payload_size
    }

    #[inline]
    fn entry_at(&self, i: usize) -> &[u8] {
        debug_assert!(
            i < self.count,
            "entry index {i} out of range {}",
            self.count
        );
        let pos = NODE_HEADER_LEN + i * self.entry_len;
        &self.buf[pos..pos + self.entry_len]
    }

    /// Object pointer (leaf) or child node id (internal) of entry `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn child(&self, i: usize) -> u64 {
        u64::from_le_bytes(self.entry_at(i)[..REF_LEN].try_into().expect("8 bytes"))
    }

    /// MBR of entry `i`, decoded on demand (a fixed-size stack copy).
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn rect(&self, i: usize) -> Rect<N> {
        Rect::decode(&self.entry_at(i)[REF_LEN..REF_LEN + Rect::<N>::ENCODED_LEN])
    }

    /// Borrowed payload slice of entry `i` — zero-copy out of the arena.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn payload(&self, i: usize) -> &[u8] {
        &self.entry_at(i)[REF_LEN + Rect::<N>::ENCODED_LEN..]
    }

    /// Iterates all payload slices in entry order.
    pub fn payloads(&self) -> impl Iterator<Item = &[u8]> + '_ {
        (0..self.count).map(|i| self.payload(i))
    }

    /// Iterates all child references in entry order.
    pub fn children(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.count).map(|i| self.child(i))
    }

    /// The bounding rectangle of all entries.
    ///
    /// # Panics
    /// Panics if the node has no entries.
    pub fn mbr(&self) -> Rect<N> {
        assert!(self.count > 0, "mbr of empty node");
        (1..self.count).fold(self.rect(0), |acc, i| acc.union(&self.rect(i)))
    }

    /// Materializes an owned [`Node`] (copies every entry; off the hot
    /// path by construction).
    pub fn to_node(&self) -> Node<N> {
        Node {
            id: self.id,
            level: self.level,
            entries: (0..self.count)
                .map(|i| Entry {
                    child: self.child(i),
                    rect: self.rect(i),
                    payload: self.payload(i).to_vec(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir2_geo::Point;

    fn rect(a: f64, b: f64) -> Rect<2> {
        Rect::from_corners(Point::new([a, b]), Point::new([a + 1.0, b + 1.0]))
    }

    #[test]
    fn encode_decode_roundtrip_with_payload() {
        let mut node = Node::<2>::new(5, 1);
        for i in 0..7u64 {
            node.entries.push(Entry::new(
                100 + i,
                rect(i as f64, -(i as f64)),
                vec![i as u8; 9],
            ));
        }
        let bytes = node.encode(9, 2);
        let back = Node::<2>::decode(5, &bytes, 9).unwrap();
        assert_eq!(back, node);
    }

    #[test]
    fn encode_decode_zero_payload() {
        let mut node = Node::<2>::new(0, 0);
        node.entries.push(Entry::new(42, rect(1.0, 2.0), vec![]));
        let bytes = node.encode(0, 1);
        let back = Node::<2>::decode(0, &bytes, 0).unwrap();
        assert_eq!(back, node);
        assert!(back.is_leaf());
    }

    #[test]
    fn header_fields_survive() {
        let node = Node::<2>::new(9, 3);
        let bytes = node.encode(4, 7);
        assert_eq!(Node::<2>::decode_header(&bytes).unwrap(), (3, 0, 7));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Node::<2>::decode(0, &[0u8; 16], 0).is_err());
        let node = Node::<2>::new(0, 0);
        let mut bytes = node.encode(0, 1);
        bytes[1] = 99; // bad version
        assert!(Node::<2>::decode(0, &bytes, 0).is_err());
    }

    #[test]
    fn decode_rejects_truncated_entries() {
        let mut node = Node::<2>::new(0, 0);
        node.entries.push(Entry::new(1, rect(0.0, 0.0), vec![]));
        node.entries.push(Entry::new(2, rect(1.0, 1.0), vec![]));
        let bytes = node.encode(0, 1);
        assert!(Node::<2>::decode(0, &bytes[..bytes.len() - 10], 0).is_err());
    }

    #[test]
    fn nodebuf_accessors_match_owned_decode() {
        let mut node = Node::<2>::new(5, 1);
        for i in 0..7u64 {
            node.entries.push(Entry::new(
                100 + i,
                rect(i as f64, -(i as f64)),
                vec![i as u8; 9],
            ));
        }
        let bytes = node.encode(9, 2);
        let nb = NodeBuf::<2>::decode(5, bytes, 9).unwrap();
        assert_eq!(nb.id(), 5);
        assert_eq!(nb.level(), 1);
        assert!(!nb.is_leaf());
        assert_eq!(nb.len(), 7);
        assert!(!nb.is_empty());
        assert_eq!(nb.payload_size(), 9);
        for (i, e) in node.entries.iter().enumerate() {
            assert_eq!(nb.child(i), e.child);
            assert_eq!(nb.rect(i), e.rect);
            assert_eq!(nb.payload(i), e.payload.as_slice());
        }
        assert_eq!(nb.mbr(), node.mbr());
        assert_eq!(nb.to_node(), node);
        assert_eq!(
            nb.children().collect::<Vec<_>>(),
            node.entries.iter().map(|e| e.child).collect::<Vec<_>>()
        );
        assert_eq!(nb.payloads().count(), 7);
    }

    #[test]
    fn nodebuf_rejects_what_node_rejects() {
        assert!(NodeBuf::<2>::decode(0, vec![0u8; 16], 0).is_err());
        let mut node = Node::<2>::new(0, 0);
        node.entries.push(Entry::new(1, rect(0.0, 0.0), vec![]));
        node.entries.push(Entry::new(2, rect(1.0, 1.0), vec![]));
        let bytes = node.encode(0, 1);
        let truncated = bytes[..bytes.len() - 10].to_vec();
        assert!(NodeBuf::<2>::decode(0, truncated, 0).is_err());
        let mut bad_ver = bytes.clone();
        bad_ver[1] = 99;
        assert!(NodeBuf::<2>::decode(0, bad_ver, 0).is_err());
    }

    #[test]
    fn nodebuf_from_node_roundtrips() {
        let mut node = Node::<2>::new(3, 0);
        node.entries
            .push(Entry::new(7, rect(2.0, 2.0), vec![0xAB; 4]));
        let nb = NodeBuf::from_node(&node, 4);
        assert_eq!(nb.to_node(), node);
        assert!(nb.is_leaf());
    }

    #[test]
    fn mbr_covers_all_entries() {
        let mut node = Node::<2>::new(0, 0);
        node.entries.push(Entry::new(1, rect(0.0, 0.0), vec![]));
        node.entries.push(Entry::new(2, rect(5.0, -3.0), vec![]));
        let mbr = node.mbr();
        for e in &node.entries {
            assert!(mbr.contains(&e.rect));
        }
    }
}
