//! Tree configuration: fanout and fill factors.

use ir2_geo::Rect;
use ir2_storage::PAGE_PAYLOAD;

use crate::node::{NODE_HEADER_LEN, REF_LEN};

/// Node splitting algorithm.
///
/// Guttman [Gut84] proposed three; the paper "uses the standard Quadratic
/// Split technique", which is the default here. The linear variant is
/// kept for the split-strategy ablation: O(M) per split instead of O(M²),
/// at the cost of worse node overlap and therefore more query I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitStrategy {
    /// Quadratic split: PickSeeds maximizes wasted area over all pairs.
    #[default]
    Quadratic,
    /// Linear split: seeds chosen by greatest normalized separation per
    /// dimension; remaining entries assigned by least enlargement.
    Linear,
}

/// R-Tree shape parameters.
///
/// Like the paper, "the number of children of a node of the R-Tree is
/// computed given the fact that each node is a disk block", and the IR²-
/// and MIR²-Trees "use this same number of children", occupying extra
/// blocks per node when signatures do not fit. [`RTreeConfig::for_dims`]
/// performs that computation; `max_entries` can also be pinned explicitly
/// (e.g. to the paper's 113).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RTreeConfig {
    /// Node capacity `M` (children per node).
    pub max_entries: usize,
    /// Minimum fill `m` (entries below which CondenseTree dissolves a
    /// node). Guttman requires `m ≤ M/2`.
    pub min_entries: usize,
    /// Node splitting algorithm (quadratic, as in the paper, by default).
    pub split: SplitStrategy,
}

impl RTreeConfig {
    /// Derives the capacity that packs a *plain* `N`-dimensional R-Tree
    /// node into one 4096-byte block, with 40 % minimum fill. Node pages
    /// are checksummed, so only [`PAGE_PAYLOAD`] bytes of the block carry
    /// node data.
    ///
    /// For `N = 2`: `(4088 − 8) / (8 + 32) = 102` children per node (the
    /// paper's 113 reflects its Java record layout; the block-filling
    /// principle is the same).
    pub fn for_dims<const N: usize>() -> Self {
        let entry = REF_LEN + Rect::<N>::ENCODED_LEN;
        let max = (PAGE_PAYLOAD - NODE_HEADER_LEN) / entry;
        Self::with_max(max)
    }

    /// A configuration with the given capacity and 40 % minimum fill.
    ///
    /// # Panics
    /// Panics if `max < 4` (quadratic split needs at least two entries per
    /// side).
    pub fn with_max(max: usize) -> Self {
        assert!(max >= 4, "node capacity must be at least 4");
        Self {
            max_entries: max,
            min_entries: (max * 2 / 5).max(2),
            split: SplitStrategy::default(),
        }
    }

    /// Selects the linear split strategy (ablation; the paper uses
    /// quadratic).
    pub fn with_linear_split(mut self) -> Self {
        self.split = SplitStrategy::Linear;
        self
    }

    /// Overrides the minimum fill.
    ///
    /// # Panics
    /// Panics unless `2 ≤ min ≤ max/2`.
    pub fn with_min(mut self, min: usize) -> Self {
        assert!(min >= 2 && min <= self.max_entries / 2, "need 2 ≤ m ≤ M/2");
        self.min_entries = min;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_dim_capacity_fills_a_block() {
        let cfg = RTreeConfig::for_dims::<2>();
        assert_eq!(cfg.max_entries, 102);
        // A full node must fit in one sealed block's payload.
        assert!(
            NODE_HEADER_LEN + cfg.max_entries * (REF_LEN + Rect::<2>::ENCODED_LEN) <= PAGE_PAYLOAD
        );
        assert!(cfg.min_entries >= 2 && cfg.min_entries <= cfg.max_entries / 2);
    }

    #[test]
    fn higher_dims_lower_capacity() {
        assert!(
            RTreeConfig::for_dims::<3>().max_entries < RTreeConfig::for_dims::<2>().max_entries
        );
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn tiny_capacity_rejected() {
        let _ = RTreeConfig::with_max(3);
    }

    #[test]
    fn paper_capacity_is_expressible() {
        let cfg = RTreeConfig::with_max(113);
        assert_eq!(cfg.max_entries, 113);
    }
}
