//! The disk-resident augmented R-Tree: Insert, Delete, node I/O.

use std::collections::HashMap;
use std::sync::Arc;

use ir2_geo::Rect;
use ir2_storage::{extent, page, BlockDevice, Result, StorageError, PAGE_PAYLOAD};
use parking_lot::Mutex;

use crate::cached::{CachedNode, NodeCache};
use crate::node::{Entry, Node, NodeBuf, NodeId, NODE_HEADER_LEN};
use crate::{PayloadOps, RTreeConfig, SplitStrategy};

const META_MAGIC: &[u8; 4] = b"IR2T";
const NO_ROOT: u64 = u64::MAX;

/// In-memory tree metadata, persisted in the superblock (block 0).
#[derive(Debug, Clone, Copy)]
struct Meta {
    root: Option<NodeId>,
    /// Number of levels: 0 = empty, 1 = root is a leaf.
    height: u16,
    count: u64,
}

/// Free extents in two stages. Extents freed by a mutation may still be
/// referenced by the last *durable* tree image (the superblock or an
/// external catalog), so they sit in `pending` until that image is replaced
/// — only then is overwriting them safe.
#[derive(Default)]
struct FreeLists {
    /// Safe to overwrite: not referenced by any durable or in-memory state.
    reusable: HashMap<u16, Vec<NodeId>>,
    /// Freed since the last checkpoint; recycled by
    /// [`RTree::commit_frees`].
    pending: HashMap<u16, Vec<NodeId>>,
}

/// Staging area for one mutation: the metadata copy it edits and the
/// extents it frees/allocates. Nothing reaches shared state until the
/// whole operation succeeds, so a failed insert or delete leaves the
/// in-memory tree exactly as it was — and, because every node write is
/// copy-on-write, the on-disk tree too.
struct MutCtx {
    meta: Meta,
    /// `(first_block, extent_blocks)` of extents this op released.
    freed: Vec<(NodeId, u16)>,
    /// Extents this op allocated — returned to the reusable pool if the op
    /// fails (the op's writes only ever touch these, never live nodes).
    allocated: Vec<(NodeId, u16)>,
}

impl MutCtx {
    fn new(meta: Meta) -> Self {
        Self {
            meta,
            freed: Vec::new(),
            allocated: Vec::new(),
        }
    }
}

/// A height-balanced, disk-resident R-Tree over `N`-dimensional rectangles,
/// augmented with per-entry payloads described by a [`PayloadOps`].
///
/// * `P = UnitPayload` — Guttman's R-Tree, the paper's first baseline.
/// * `P = ` a signature payload — the IR²-Tree / MIR²-Tree (see the
///   `ir2-irtree` crate).
///
/// The tree owns its block device: block 0 is the superblock, every node
/// occupies a fixed extent of consecutive blocks whose size depends on the
/// node's level (signatures may lengthen toward the root). Leaf entries
/// reference objects by an opaque `u64` (an `ObjPtr` in the full system).
///
/// Concurrency: any number of concurrent readers ([`RTree::nearest`],
/// [`RTree::read_node`]) xor one writer ([`RTree::insert`],
/// [`RTree::delete`]) — the usual index discipline; metadata is internally
/// locked so mixing merely risks non-repeatable reads, not corruption.
///
/// ```
/// use ir2_geo::{Point, Rect};
/// use ir2_rtree::{RTree, RTreeConfig, UnitPayload};
/// use ir2_storage::MemDevice;
///
/// let tree = RTree::<2, _, _>::create(MemDevice::new(), RTreeConfig::with_max(4), UnitPayload)?;
/// for i in 0..20u64 {
///     tree.insert(i, Rect::from_point(Point::new([i as f64, 0.0])), &[])?;
/// }
/// // Incremental nearest neighbor from x = 7.2: object 7 comes first.
/// let first = tree.nearest(Point::new([7.2, 0.0])).next().unwrap()?;
/// assert_eq!(first.child, 7);
/// # Ok::<(), ir2_storage::StorageError>(())
/// ```
pub struct RTree<const N: usize, D, P> {
    dev: D,
    ops: P,
    cfg: RTreeConfig,
    meta: Mutex<Meta>,
    /// Freed node extents by extent size, reused before growing the device.
    free: Mutex<FreeLists>,
    /// Optional decoded-node cache; its epoch is bumped whenever a mutation
    /// commits, so cached images can never outlive the tree state that
    /// produced them.
    node_cache: Option<Arc<NodeCache<N>>>,
}

impl<const N: usize, D: BlockDevice, P: PayloadOps> RTree<N, D, P> {
    /// Creates an empty tree on a fresh device (allocates the superblock).
    pub fn create(dev: D, cfg: RTreeConfig, ops: P) -> Result<Self> {
        let first = dev.allocate(1)?;
        debug_assert_eq!(first, 0, "tree must own its device from block 0");
        let tree = Self {
            dev,
            ops,
            cfg,
            meta: Mutex::new(Meta {
                root: None,
                height: 0,
                count: 0,
            }),
            free: Mutex::new(FreeLists::default()),
            node_cache: None,
        };
        tree.write_meta()?;
        Ok(tree)
    }

    /// Reads and checksum-verifies the superblock:
    /// `(root_raw, height, count, max_entries, dims)`.
    fn load_superblock(dev: &D) -> Result<(u64, u16, u64, usize, usize)> {
        let mut block = ir2_storage::zeroed_block();
        dev.read_block(0, &mut block)?;
        page::verify(&block).map_err(|e| StorageError::Corrupt(format!("tree superblock: {e}")))?;
        if &block[..4] != META_MAGIC {
            return Err(StorageError::Corrupt("bad tree superblock magic".into()));
        }
        let root = u64::from_le_bytes(block[4..12].try_into().expect("8 bytes"));
        let height = u16::from_le_bytes(block[12..14].try_into().expect("2 bytes"));
        let count = u64::from_le_bytes(block[14..22].try_into().expect("8 bytes"));
        let max = u32::from_le_bytes(block[22..26].try_into().expect("4 bytes")) as usize;
        let dims = u16::from_le_bytes(block[26..28].try_into().expect("2 bytes")) as usize;
        Ok((root, height, count, max, dims))
    }

    fn check_shape(cfg: &RTreeConfig, max: usize, dims: usize) -> Result<()> {
        if max != cfg.max_entries || dims != N {
            return Err(StorageError::Corrupt(format!(
                "superblock mismatch: stored M={max}, dims={dims}; expected M={}, dims={N}",
                cfg.max_entries
            )));
        }
        Ok(())
    }

    /// Opens a tree persisted on `dev` (the caller supplies the same `cfg`
    /// and `ops` the tree was created with; `cfg` is validated against the
    /// superblock).
    pub fn open(dev: D, cfg: RTreeConfig, ops: P) -> Result<Self> {
        let (root, height, count, max, dims) = Self::load_superblock(&dev)?;
        Self::check_shape(&cfg, max, dims)?;
        Ok(Self {
            dev,
            ops,
            cfg,
            meta: Mutex::new(Meta {
                root: (root != NO_ROOT).then_some(root),
                height,
                count,
            }),
            free: Mutex::new(FreeLists::default()),
            node_cache: None,
        })
    }

    /// Opens a tree whose metadata is supplied by an external catalog (the
    /// database's atomic catalog is the source of truth for `root`,
    /// `height` and `count`; the superblock only cross-checks the shape).
    ///
    /// A torn superblock — e.g. a crash during
    /// [`checkpoint`](RTree::checkpoint) after the catalog's last flip — is
    /// repaired in place from the caller's metadata instead of failing the
    /// open.
    pub fn open_with_meta(
        dev: D,
        cfg: RTreeConfig,
        ops: P,
        root: Option<NodeId>,
        height: u16,
        count: u64,
    ) -> Result<Self> {
        let repair = match Self::load_superblock(&dev) {
            Ok((_, _, _, max, dims)) => {
                Self::check_shape(&cfg, max, dims)?;
                false
            }
            Err(StorageError::Corrupt(_)) => true,
            Err(e) => return Err(e),
        };
        let tree = Self {
            dev,
            ops,
            cfg,
            meta: Mutex::new(Meta {
                root,
                height,
                count,
            }),
            free: Mutex::new(FreeLists::default()),
            node_cache: None,
        };
        if repair {
            tree.write_meta()?;
        }
        Ok(tree)
    }

    /// Persists the superblock and recycles extents freed by committed
    /// mutations — the standalone commit point for trees used without an
    /// external catalog. (Free-list extents are not persisted; a reopened
    /// tree simply allocates fresh ones.)
    pub fn flush(&self) -> Result<()> {
        self.checkpoint()?;
        self.commit_frees();
        Ok(())
    }

    /// Persists the superblock and syncs, *without* recycling freed
    /// extents. Callers whose commit point lives elsewhere (the database
    /// catalog) checkpoint every tree first, flip the catalog, and only
    /// then call [`commit_frees`](RTree::commit_frees) — so a crash
    /// between the two leaves every extent the old catalog references
    /// untouched.
    pub fn checkpoint(&self) -> Result<()> {
        self.write_meta()?;
        self.dev.sync()
    }

    /// Moves extents freed by committed mutations into the reusable pool.
    /// Call only once the current metadata is durable (after
    /// [`checkpoint`](RTree::checkpoint), or after an external catalog
    /// referencing the current root has committed).
    pub fn commit_frees(&self) {
        let mut free = self.free.lock();
        let pending = std::mem::take(&mut free.pending);
        for (nblocks, mut ids) in pending {
            free.reusable.entry(nblocks).or_default().append(&mut ids);
        }
        drop(free);
        // Belt and braces: recycled extents only become visible through a
        // later committed mutation (which bumps), but advancing here keeps
        // the invariant local and obvious.
        self.bump_cache_epoch();
    }

    /// Current metadata as persisted by an external catalog:
    /// `(root, height, count)` for [`open_with_meta`](RTree::open_with_meta).
    pub fn meta_state(&self) -> (Option<NodeId>, u16, u64) {
        let meta = self.meta.lock();
        (meta.root, meta.height, meta.count)
    }

    fn write_meta(&self) -> Result<()> {
        let meta = *self.meta.lock();
        let mut block = ir2_storage::zeroed_block();
        block[..4].copy_from_slice(META_MAGIC);
        block[4..12].copy_from_slice(&meta.root.unwrap_or(NO_ROOT).to_le_bytes());
        block[12..14].copy_from_slice(&meta.height.to_le_bytes());
        block[14..22].copy_from_slice(&meta.count.to_le_bytes());
        block[22..26].copy_from_slice(&(self.cfg.max_entries as u32).to_le_bytes());
        block[26..28].copy_from_slice(&(N as u16).to_le_bytes());
        page::seal(&mut block);
        self.dev.write_block(0, &block)
    }

    /// Number of objects indexed.
    pub fn len(&self) -> u64 {
        self.meta.lock().count
    }

    /// True if no objects are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tree height in levels (0 = empty, 1 = root is a leaf).
    pub fn height(&self) -> u16 {
        self.meta.lock().height
    }

    /// The root node id, if any.
    pub fn root(&self) -> Option<NodeId> {
        self.meta.lock().root
    }

    /// Total size of the tree's device in bytes (Table 2's structure size).
    pub fn size_bytes(&self) -> u64 {
        self.dev.size_bytes()
    }

    /// The tree's block device (for I/O statistics).
    pub fn device(&self) -> &D {
        &self.dev
    }

    /// The payload strategy.
    pub fn ops(&self) -> &P {
        &self.ops
    }

    /// The shape configuration.
    pub fn config(&self) -> &RTreeConfig {
        &self.cfg
    }

    /// Extent size (blocks) of a node at `level`. A plain R-Tree node is
    /// one block; payload-carrying nodes keep the fanout and spill onto
    /// additional blocks — the paper's "two or more disk blocks per node".
    /// Blocks are sealed, so each carries `PAGE_PAYLOAD` node bytes.
    pub fn node_blocks(&self, level: u16) -> u16 {
        let entry = Node::<N>::entry_encoded_len(self.ops.entry_size(level));
        extent::sealed_blocks_for(NODE_HEADER_LEN + self.cfg.max_entries * entry) as u16
    }

    pub(crate) fn alloc_node(&self, level: u16) -> Result<NodeId> {
        let nblocks = self.node_blocks(level);
        if let Some(id) = self
            .free
            .lock()
            .reusable
            .get_mut(&nblocks)
            .and_then(Vec::pop)
        {
            return Ok(id);
        }
        self.dev.allocate(nblocks as u64)
    }

    /// Allocates a node extent within a mutation, recording it for rollback.
    fn alloc_node_ctx(&self, ctx: &mut MutCtx, level: u16) -> Result<NodeId> {
        let id = self.alloc_node(level)?;
        ctx.allocated.push((id, self.node_blocks(level)));
        Ok(id)
    }

    /// Stages a node extent as freed; it reaches the pending list only if
    /// the mutation commits.
    fn stage_free(&self, ctx: &mut MutCtx, id: NodeId, level: u16) {
        ctx.freed.push((id, self.node_blocks(level)));
    }

    /// Publishes a successful mutation: its metadata becomes the tree's,
    /// its freed extents become pending, and the node-cache epoch advances
    /// so decoded images of the pre-mutation tree stop being served.
    fn commit_ctx(&self, ctx: MutCtx, meta: &mut Meta) {
        *meta = ctx.meta;
        let mut free = self.free.lock();
        for (id, nblocks) in ctx.freed {
            free.pending.entry(nblocks).or_default().push(id);
        }
        drop(free);
        self.bump_cache_epoch();
    }

    /// Discards a failed mutation: extents it allocated (which are the only
    /// ones it wrote to) return to the reusable pool; metadata and staged
    /// frees are dropped.
    fn rollback_ctx(&self, ctx: MutCtx) {
        let mut free = self.free.lock();
        for (id, nblocks) in ctx.allocated {
            free.reusable.entry(nblocks).or_default().push(id);
        }
    }

    /// Reads the node at `id` (one random block access plus sequential ones
    /// for multi-block nodes), verifying every block's checksum.
    pub fn read_node(&self, id: NodeId) -> Result<Node<N>> {
        let mut first = ir2_storage::zeroed_block();
        extent::read_sealed_block(&self.dev, id, &mut first)?;
        let (level, _count, nblocks) =
            Node::<N>::decode_header(&first[..PAGE_PAYLOAD]).map_err(|e| match e {
                StorageError::Corrupt(msg) => StorageError::Corrupt(format!("node {id}: {msg}")),
                other => other,
            })?;
        let payload_size = self.ops.entry_size(level);
        if nblocks <= 1 {
            return Node::decode(id, &first[..PAGE_PAYLOAD], payload_size);
        }
        let mut buf = vec![0u8; nblocks as usize * PAGE_PAYLOAD];
        buf[..PAGE_PAYLOAD].copy_from_slice(&first[..PAGE_PAYLOAD]);
        extent::read_extent_sealed_into(
            &self.dev,
            id + 1,
            nblocks as u32 - 1,
            &mut buf[PAGE_PAYLOAD..],
        )?;
        Node::decode(id, &buf, payload_size)
    }

    /// Reads the node at `id` into an arena-backed [`NodeBuf`] — the same
    /// validation as [`read_node`](RTree::read_node) but zero per-entry
    /// allocations: the extent buffer itself is the only heap traffic.
    /// Query paths (nearest neighbor, window search, cached traversals)
    /// use this; mutations keep the owned [`Node`] form.
    pub fn read_node_buf(&self, id: NodeId) -> Result<NodeBuf<N>> {
        let mut first = ir2_storage::zeroed_block();
        extent::read_sealed_block(&self.dev, id, &mut first)?;
        let (level, _count, nblocks) =
            Node::<N>::decode_header(&first[..PAGE_PAYLOAD]).map_err(|e| match e {
                StorageError::Corrupt(msg) => StorageError::Corrupt(format!("node {id}: {msg}")),
                other => other,
            })?;
        let payload_size = self.ops.entry_size(level);
        if nblocks <= 1 {
            return NodeBuf::decode(id, first[..PAGE_PAYLOAD].to_vec(), payload_size);
        }
        let mut buf = vec![0u8; nblocks as usize * PAGE_PAYLOAD];
        buf[..PAGE_PAYLOAD].copy_from_slice(&first[..PAGE_PAYLOAD]);
        extent::read_extent_sealed_into(
            &self.dev,
            id + 1,
            nblocks as u32 - 1,
            &mut buf[PAGE_PAYLOAD..],
        )?;
        NodeBuf::decode(id, buf, payload_size)
    }

    /// Attaches a decoded-node cache. Call at construction time, before the
    /// tree is shared; mutations afterward invalidate it automatically via
    /// the epoch.
    pub fn set_node_cache(&mut self, cache: Arc<NodeCache<N>>) {
        self.node_cache = Some(cache);
    }

    /// Detaches the decoded-node cache; reads fall back to the device.
    pub fn clear_node_cache(&mut self) {
        self.node_cache = None;
    }

    /// The attached decoded-node cache, if any.
    pub fn node_cache(&self) -> Option<&Arc<NodeCache<N>>> {
        self.node_cache.as_ref()
    }

    /// Advances the cache epoch (no-op without a cache).
    fn bump_cache_epoch(&self) {
        if let Some(cache) = &self.node_cache {
            cache.bump_epoch();
        }
    }

    /// Reads the node at `id` through the decoded-node cache, returning the
    /// shared image and whether it was a cache hit. Without an attached
    /// cache this is [`read_node`](RTree::read_node) plus an allocation.
    ///
    /// The epoch is snapshotted *before* the device read: if a mutation
    /// commits while the node is being decoded, the stale image is dropped
    /// instead of installed.
    pub fn read_node_cached(&self, id: NodeId) -> Result<(Arc<CachedNode<N>>, bool)> {
        let Some(cache) = &self.node_cache else {
            return Ok((Arc::new(CachedNode::new(self.read_node_buf(id)?)), false));
        };
        if let Some(node) = cache.get(id) {
            return Ok((node, true));
        }
        let snapshot = cache.epoch();
        let node = Arc::new(CachedNode::new(self.read_node_buf(id)?));
        cache.insert(id, snapshot, Arc::clone(&node));
        Ok((node, false))
    }

    pub(crate) fn write_node(&self, node: &Node<N>) -> Result<()> {
        debug_assert!(
            node.entries.len() <= self.cfg.max_entries,
            "node {} overflows: {} entries",
            node.id,
            node.entries.len()
        );
        let nblocks = self.node_blocks(node.level);
        let bytes = node.encode(self.ops.entry_size(node.level), nblocks);
        // Always write the full extent so stale entries cannot resurface.
        let mut padded = vec![0u8; nblocks as usize * PAGE_PAYLOAD];
        padded[..bytes.len()].copy_from_slice(&bytes);
        extent::write_extent_sealed(&self.dev, node.id, &padded)?;
        Ok(())
    }

    /// Copy-on-write: writes `node` at a freshly allocated extent, staging
    /// its previous extent as freed and updating `node.id`. Live on-disk
    /// nodes are therefore never overwritten mid-operation — a crash or
    /// I/O error leaves the last committed tree image fully intact.
    fn write_node_cow(&self, ctx: &mut MutCtx, node: &mut Node<N>) -> Result<()> {
        let old = node.id;
        node.id = self.alloc_node_ctx(ctx, node.level)?;
        self.stage_free(ctx, old, node.level);
        self.write_node(node)
    }

    /// The parent-entry payload summarizing `node`, via entry folding when
    /// the payload scheme allows it and a subtree-object recomputation
    /// otherwise (the MIR²-Tree's expensive path).
    pub(crate) fn summary_of_node(&self, node: &Node<N>) -> Result<Vec<u8>> {
        let mut payloads = node.entries.iter().map(|e| e.payload.as_slice());
        if let Some(summary) = self.ops.summarize_entries(node.level, &mut payloads) {
            return Ok(summary);
        }
        let objects = self.collect_objects(node)?;
        Ok(self
            .ops
            .summarize_objects(node.level + 1, &mut objects.into_iter()))
    }

    /// All object references in the subtree rooted at `node` (reads the
    /// subtree's nodes — a real, tracked I/O cost).
    pub fn collect_objects(&self, node: &Node<N>) -> Result<Vec<u64>> {
        let mut out = Vec::new();
        self.collect_objects_into(node, &mut out)?;
        Ok(out)
    }

    fn collect_objects_into(&self, node: &Node<N>, out: &mut Vec<u64>) -> Result<()> {
        if node.is_leaf() {
            out.extend(node.entries.iter().map(|e| e.child));
            return Ok(());
        }
        for e in &node.entries {
            let child = self.read_node(e.child)?;
            self.collect_objects_into(&child, out)?;
        }
        Ok(())
    }

    /// Installs bulk-load results into the metadata (crate-internal).
    pub(crate) fn set_meta_after_bulk(&self, root: NodeId, height: u16, count: u64) {
        let mut meta = self.meta.lock();
        meta.root = Some(root);
        meta.height = height;
        meta.count = count;
        drop(meta);
        self.bump_cache_epoch();
    }

    // ------------------------------------------------------------------
    // Insert (paper Figure 5, on top of Guttman's ChooseLeaf/AdjustTree).
    // ------------------------------------------------------------------

    /// Inserts an object reference with its MBR and leaf payload
    /// (`Insert(ObjPtr, MBR, S)` in the paper's Figure 5).
    ///
    /// Atomic in memory and on disk: an I/O error mid-insert leaves both
    /// the metadata and the last committed tree image unchanged (all node
    /// writes are copy-on-write into fresh extents).
    pub fn insert(&self, child: u64, rect: Rect<N>, leaf_payload: &[u8]) -> Result<()> {
        let mut meta = self.meta.lock();
        let mut ctx = MutCtx::new(*meta);
        match self.insert_inner(&mut ctx, child, rect, leaf_payload, true) {
            Ok(()) => {
                self.commit_ctx(ctx, &mut meta);
                Ok(())
            }
            Err(e) => {
                self.rollback_ctx(ctx);
                Err(e)
            }
        }
    }

    fn insert_inner(
        &self,
        ctx: &mut MutCtx,
        child: u64,
        rect: Rect<N>,
        leaf_payload: &[u8],
        bump_count: bool,
    ) -> Result<()> {
        debug_assert_eq!(
            leaf_payload.len(),
            self.ops.entry_size(0),
            "leaf payload size"
        );
        if bump_count {
            ctx.meta.count += 1;
        }
        let Some(root_id) = ctx.meta.root else {
            let id = self.alloc_node_ctx(ctx, 0)?;
            let mut node = Node::new(id, 0);
            node.entries
                .push(Entry::new(child, rect, leaf_payload.to_vec()));
            self.write_node(&node)?;
            ctx.meta.root = Some(id);
            ctx.meta.height = 1;
            return Ok(());
        };

        // ChooseLeaf: descend by least enlargement, recording the path.
        let mut path: Vec<(Node<N>, usize)> = Vec::new();
        let mut node = self.read_node(root_id)?;
        while !node.is_leaf() {
            let idx = choose_subtree(&node, &rect);
            let next = node.entries[idx].child;
            path.push((node, idx));
            node = self.read_node(next)?;
        }
        node.entries
            .push(Entry::new(child, rect, leaf_payload.to_vec()));

        // Resolve overflow at the leaf, then walk the path upward adjusting
        // MBRs and payloads (the paper's AdjustTree "modified to also
        // maintain the signatures of the modified nodes"). Copy-on-write
        // relocates every modified node, so each ancestor must be rewritten
        // with its child's new id — the old "stop when nothing changed"
        // shortcut no longer applies.
        let mut pending_split: Option<(Entry<N>, Entry<N>)> = None;
        if node.entries.len() > self.cfg.max_entries {
            pending_split = Some(self.split_node(ctx, node.clone())?);
        } else {
            self.write_node_cow(ctx, &mut node)?;
        }
        let mut below = node;

        while let Some((mut parent, idx)) = path.pop() {
            if let Some((ea, eb)) = pending_split.take() {
                parent.entries[idx] = ea;
                parent.entries.push(eb);
                if parent.entries.len() > self.cfg.max_entries {
                    pending_split = Some(self.split_node(ctx, parent.clone())?);
                    below = parent;
                    continue;
                }
                self.write_node_cow(ctx, &mut parent)?;
                below = parent;
                continue;
            }

            // Plain adjustment: refresh the parent entry describing `below`.
            let e = &mut parent.entries[idx];
            e.child = below.id;
            e.rect = below.mbr();
            if self.ops.strict_maintenance() {
                e.payload = self.summary_of_node(&below)?;
            } else {
                let lifted = self.ops.lift_object(child, leaf_payload, parent.level);
                self.ops.merge(parent.level, &mut e.payload, &lifted);
            }
            self.write_node_cow(ctx, &mut parent)?;
            below = parent;
        }

        if let Some((ea, eb)) = pending_split {
            // A split propagated past the old root: grow the tree.
            let level = ctx.meta.height; // old root level + 1
            let id = self.alloc_node_ctx(ctx, level)?;
            let mut new_root = Node::new(id, level);
            new_root.entries.push(ea);
            new_root.entries.push(eb);
            self.write_node(&new_root)?;
            ctx.meta.root = Some(id);
            ctx.meta.height += 1;
        } else {
            // The root was rewritten (copy-on-write) at a new extent.
            ctx.meta.root = Some(below.id);
        }
        Ok(())
    }

    /// Quadratic split [Gut84]: distributes an overflowing node's entries
    /// into two *fresh* nodes (the overflowing extent is staged as freed),
    /// writes both, and returns the parent entries that describe them
    /// (with freshly computed summaries).
    fn split_node(&self, ctx: &mut MutCtx, node: Node<N>) -> Result<(Entry<N>, Entry<N>)> {
        let level = node.level;
        self.stage_free(ctx, node.id, level);
        let (group_a, group_b) = match self.cfg.split {
            SplitStrategy::Quadratic => quadratic_split(node.entries, self.cfg.min_entries),
            SplitStrategy::Linear => linear_split(node.entries, self.cfg.min_entries),
        };

        let id_a = self.alloc_node_ctx(ctx, level)?;
        let node_a = Node {
            id: id_a,
            level,
            entries: group_a,
        };
        let id_b = self.alloc_node_ctx(ctx, level)?;
        let node_b = Node {
            id: id_b,
            level,
            entries: group_b,
        };
        self.write_node(&node_a)?;
        self.write_node(&node_b)?;

        let ea = Entry::new(node_a.id, node_a.mbr(), self.summary_of_node(&node_a)?);
        let eb = Entry::new(node_b.id, node_b.mbr(), self.summary_of_node(&node_b)?);
        Ok((ea, eb))
    }

    // ------------------------------------------------------------------
    // Delete (paper Figure 6: FindLeaf + CondenseTree).
    // ------------------------------------------------------------------

    /// Deletes the entry for object `child` with MBR `rect`. Returns
    /// whether the entry existed.
    ///
    /// Atomic like [`insert`](RTree::insert): metadata changes and block
    /// frees are staged and only published if every I/O step (including
    /// CondenseTree's orphan reinsertion) succeeds; a failure mid-way
    /// leaves the in-memory meta and the committed on-disk image intact.
    pub fn delete(&self, child: u64, rect: &Rect<N>) -> Result<bool> {
        let mut meta = self.meta.lock();
        let mut ctx = MutCtx::new(*meta);
        match self.delete_inner(&mut ctx, child, rect) {
            Ok(found) => {
                if found {
                    self.commit_ctx(ctx, &mut meta);
                } else {
                    self.rollback_ctx(ctx);
                }
                Ok(found)
            }
            Err(e) => {
                self.rollback_ctx(ctx);
                Err(e)
            }
        }
    }

    fn delete_inner(&self, ctx: &mut MutCtx, child: u64, rect: &Rect<N>) -> Result<bool> {
        let Some(root_id) = ctx.meta.root else {
            return Ok(false);
        };

        // FindLeaf: DFS along entries whose MBR contains the object's.
        let root = self.read_node(root_id)?;
        let Some(mut path) = self.find_leaf(&root, child, rect)? else {
            return Ok(false);
        };
        let (mut leaf, entry_idx) = path.pop().expect("find_leaf returns the leaf last");
        leaf.entries.remove(entry_idx);
        ctx.meta.count -= 1;

        // CondenseTree, "modified to maintain the signatures of updated
        // nodes": under-full nodes dissolve (their leaf entries are
        // reinserted), surviving ancestors get recomputed MBRs and payloads
        // (bits cannot be un-OR-ed incrementally).
        let mut orphaned: Vec<(u64, Rect<N>, Vec<u8>)> = Vec::new();
        let mut cur = leaf;
        while let Some((mut parent, idx)) = path.pop() {
            if cur.entries.len() < self.cfg.min_entries {
                parent.entries.remove(idx);
                self.gather_and_free(ctx, &cur, &mut orphaned)?;
            } else {
                self.write_node_cow(ctx, &mut cur)?;
                let e = &mut parent.entries[idx];
                e.child = cur.id;
                e.rect = cur.mbr();
                e.payload = self.summary_of_node(&cur)?;
            }
            cur = parent;
        }

        // `cur` is the root. Shrink it as needed.
        if cur.entries.is_empty() {
            // Empty leaf root, or every child dissolved (the orphans below
            // will rebuild).
            self.stage_free(ctx, cur.id, cur.level);
            ctx.meta.root = None;
            ctx.meta.height = 0;
        } else if !cur.is_leaf() && cur.entries.len() == 1 {
            // The root chains down through single children: each such level
            // dissolves and the first real node becomes the root. The
            // surviving child already carries this op's updates (its entry
            // in `cur` was refreshed above), so only metadata changes.
            let mut node = cur;
            while !node.is_leaf() && node.entries.len() == 1 {
                let child_id = node.entries[0].child;
                self.stage_free(ctx, node.id, node.level);
                node = self.read_node(child_id)?;
                ctx.meta.height -= 1;
            }
            ctx.meta.root = Some(node.id);
        } else {
            self.write_node_cow(ctx, &mut cur)?;
            ctx.meta.root = Some(cur.id);
        }

        // Reinsert orphaned objects (without recounting them).
        for (c, r, payload) in orphaned {
            self.insert_inner(ctx, c, r, &payload, false)?;
        }
        Ok(true)
    }

    /// DFS for the leaf holding (`child`, `rect`); returns the descent path
    /// as `(node, entry_index)` pairs ending with `(leaf, index_of_entry)`.
    #[allow(clippy::type_complexity)]
    fn find_leaf(
        &self,
        node: &Node<N>,
        child: u64,
        rect: &Rect<N>,
    ) -> Result<Option<Vec<(Node<N>, usize)>>> {
        if node.is_leaf() {
            for (i, e) in node.entries.iter().enumerate() {
                if e.child == child && e.rect == *rect {
                    return Ok(Some(vec![(node.clone(), i)]));
                }
            }
            return Ok(None);
        }
        for (i, e) in node.entries.iter().enumerate() {
            if e.rect.contains(rect) {
                let sub = self.read_node(e.child)?;
                if let Some(mut path) = self.find_leaf(&sub, child, rect)? {
                    let mut full = vec![(node.clone(), i)];
                    full.append(&mut path);
                    return Ok(Some(full));
                }
            }
        }
        Ok(None)
    }

    /// Collects every leaf entry of the subtree rooted at `node` into
    /// `out`, staging all subtree nodes for freeing.
    fn gather_and_free(
        &self,
        ctx: &mut MutCtx,
        node: &Node<N>,
        out: &mut Vec<(u64, Rect<N>, Vec<u8>)>,
    ) -> Result<()> {
        if node.is_leaf() {
            for e in &node.entries {
                out.push((e.child, e.rect, e.payload.clone()));
            }
        } else {
            for e in &node.entries {
                let sub = self.read_node(e.child)?;
                self.gather_and_free(ctx, &sub, out)?;
            }
        }
        self.stage_free(ctx, node.id, node.level);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Structural validation (used heavily by the test suites).
    // ------------------------------------------------------------------

    /// Walks the whole tree checking the R-Tree invariants; returns the
    /// number of leaf entries found.
    ///
    /// Checked: uniform leaf depth; parent entry MBRs equal to child node
    /// MBRs; node fills within `[min, max]` (root exempt); recorded count
    /// matches leaf entries. Payload invariants are checked by the caller
    /// via `check_payload(parent_entry_payload, child_node_summary)`.
    pub fn check_invariants(
        &self,
        check_payload: impl FnMut(u16, &[u8], &[u8]) -> bool,
    ) -> Result<u64> {
        self.check_invariants_with(true, check_payload)
    }

    /// [`check_invariants`](RTree::check_invariants) with the minimum-fill
    /// check optional: bulk-loaded trees legitimately leave a tail of
    /// underfull nodes, so integrity checking (`ir2 check`) validates
    /// structure and checksums without enforcing fill factors.
    pub fn check_invariants_with(
        &self,
        enforce_fill: bool,
        mut check_payload: impl FnMut(u16, &[u8], &[u8]) -> bool,
    ) -> Result<u64> {
        let meta = *self.meta.lock();
        let Some(root_id) = meta.root else {
            if meta.count != 0 || meta.height != 0 {
                return Err(StorageError::Corrupt("empty tree with nonzero meta".into()));
            }
            return Ok(0);
        };
        let root = self.read_node(root_id)?;
        if root.level + 1 != meta.height {
            return Err(StorageError::Corrupt(format!(
                "root level {} vs height {}",
                root.level, meta.height
            )));
        }
        let count = self.check_node(&root, true, enforce_fill, &mut check_payload)?;
        if count != meta.count {
            return Err(StorageError::Corrupt(format!(
                "counted {count} leaf entries, meta says {}",
                meta.count
            )));
        }
        Ok(count)
    }

    fn check_node(
        &self,
        node: &Node<N>,
        is_root: bool,
        enforce_fill: bool,
        check_payload: &mut impl FnMut(u16, &[u8], &[u8]) -> bool,
    ) -> Result<u64> {
        let fill_ok = if is_root {
            !node.entries.is_empty() || node.is_leaf()
        } else if enforce_fill {
            node.entries.len() >= self.cfg.min_entries && node.entries.len() <= self.cfg.max_entries
        } else {
            !node.entries.is_empty() && node.entries.len() <= self.cfg.max_entries
        };
        if !fill_ok {
            return Err(StorageError::Corrupt(format!(
                "node {} fill {} outside [{}, {}]",
                node.id,
                node.entries.len(),
                self.cfg.min_entries,
                self.cfg.max_entries
            )));
        }
        if node.is_leaf() {
            return Ok(node.entries.len() as u64);
        }
        let mut total = 0;
        for e in &node.entries {
            let child = self.read_node(e.child)?;
            if child.level + 1 != node.level {
                return Err(StorageError::Corrupt(format!(
                    "node {}: child {} at level {} under level {}",
                    node.id, child.id, child.level, node.level
                )));
            }
            if e.rect != child.mbr() {
                return Err(StorageError::Corrupt(format!(
                    "node {}: stale MBR for child {}",
                    node.id, child.id
                )));
            }
            let summary = self.summary_of_node(&child)?;
            if !check_payload(node.level, &e.payload, &summary) {
                return Err(StorageError::Corrupt(format!(
                    "node {}: payload invariant violated for child {}",
                    node.id, child.id
                )));
            }
            total += self.check_node(&child, false, enforce_fill, check_payload)?;
        }
        Ok(total)
    }
}

/// Guttman's ChooseLeaf criterion: the entry needing least area enlargement
/// (ties: smallest area, then lowest index for determinism).
fn choose_subtree<const N: usize>(node: &Node<N>, rect: &Rect<N>) -> usize {
    let mut best = 0;
    let mut best_enlargement = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for (i, e) in node.entries.iter().enumerate() {
        let enlargement = e.rect.enlargement(rect);
        let area = e.rect.area();
        if enlargement < best_enlargement || (enlargement == best_enlargement && area < best_area) {
            best = i;
            best_enlargement = enlargement;
            best_area = area;
        }
    }
    best
}

/// Guttman's quadratic split: PickSeeds (the pair wasting the most area
/// together) then PickNext (the entry with the greatest preference for one
/// group), honoring the minimum fill by force-assignment.
fn quadratic_split<const N: usize>(
    entries: Vec<Entry<N>>,
    min_entries: usize,
) -> (Vec<Entry<N>>, Vec<Entry<N>>) {
    debug_assert!(entries.len() >= 2);
    // PickSeeds.
    let (mut seed_a, mut seed_b, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..entries.len() {
        for j in i + 1..entries.len() {
            let waste = entries[i].rect.union(&entries[j].rect).area()
                - entries[i].rect.area()
                - entries[j].rect.area();
            if waste > worst {
                worst = waste;
                seed_a = i;
                seed_b = j;
            }
        }
    }

    let mut remaining: Vec<Option<Entry<N>>> = entries.into_iter().map(Some).collect();
    let mut group_a = vec![remaining[seed_a].take().expect("seed a")];
    let mut group_b = vec![remaining[seed_b].take().expect("seed b")];
    let mut mbr_a = group_a[0].rect;
    let mut mbr_b = group_b[0].rect;
    let mut left: usize = remaining.iter().flatten().count();

    while left > 0 {
        // Force-assign when a group must take everything left to reach the
        // minimum fill.
        if group_a.len() + left == min_entries {
            for e in remaining.iter_mut().filter_map(Option::take) {
                mbr_a.union_in_place(&e.rect);
                group_a.push(e);
            }
            break;
        }
        if group_b.len() + left == min_entries {
            for e in remaining.iter_mut().filter_map(Option::take) {
                mbr_b.union_in_place(&e.rect);
                group_b.push(e);
            }
            break;
        }
        // PickNext: maximal |d_a − d_b|.
        let (mut pick, mut best_diff) = (usize::MAX, f64::NEG_INFINITY);
        for (i, e) in remaining.iter().enumerate() {
            if let Some(e) = e {
                let da = mbr_a.enlargement(&e.rect);
                let db = mbr_b.enlargement(&e.rect);
                let diff = (da - db).abs();
                if diff > best_diff {
                    best_diff = diff;
                    pick = i;
                }
            }
        }
        let e = remaining[pick].take().expect("picked entry");
        left -= 1;
        let da = mbr_a.enlargement(&e.rect);
        let db = mbr_b.enlargement(&e.rect);
        // Resolve ties by smaller area, then smaller group.
        let to_a = match da.partial_cmp(&db).expect("finite enlargements") {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => {
                if mbr_a.area() != mbr_b.area() {
                    mbr_a.area() < mbr_b.area()
                } else {
                    group_a.len() <= group_b.len()
                }
            }
        };
        if to_a {
            mbr_a.union_in_place(&e.rect);
            group_a.push(e);
        } else {
            mbr_b.union_in_place(&e.rect);
            group_b.push(e);
        }
    }
    (group_a, group_b)
}

/// Guttman's linear split: per dimension, find the entry with the highest
/// low side and the one with the lowest high side; the dimension with the
/// greatest separation (normalized by its extent) supplies the two seeds.
/// Remaining entries join the group needing least enlargement, with
/// force-assignment to honor the minimum fill.
fn linear_split<const N: usize>(
    entries: Vec<Entry<N>>,
    min_entries: usize,
) -> (Vec<Entry<N>>, Vec<Entry<N>>) {
    debug_assert!(entries.len() >= 2);
    let mut best_dim_sep = f64::NEG_INFINITY;
    let (mut seed_a, mut seed_b) = (0usize, 1usize);
    for d in 0..N {
        let mut lo_of_all = f64::INFINITY;
        let mut hi_of_all = f64::NEG_INFINITY;
        // Entry with max low side, entry with min high side.
        let (mut max_lo_i, mut max_lo) = (0usize, f64::NEG_INFINITY);
        let (mut min_hi_i, mut min_hi) = (0usize, f64::INFINITY);
        for (i, e) in entries.iter().enumerate() {
            let lo = e.rect.lo().coord(d);
            let hi = e.rect.hi().coord(d);
            lo_of_all = lo_of_all.min(lo);
            hi_of_all = hi_of_all.max(hi);
            if lo > max_lo {
                max_lo = lo;
                max_lo_i = i;
            }
            if hi < min_hi {
                min_hi = hi;
                min_hi_i = i;
            }
        }
        let width = (hi_of_all - lo_of_all).max(f64::MIN_POSITIVE);
        let sep = (max_lo - min_hi) / width;
        if sep > best_dim_sep && max_lo_i != min_hi_i {
            best_dim_sep = sep;
            seed_a = min_hi_i;
            seed_b = max_lo_i;
        }
    }
    if seed_a == seed_b {
        // Degenerate (all rects identical): arbitrary distinct seeds.
        seed_b = (seed_a + 1) % entries.len();
    }

    let mut remaining: Vec<Option<Entry<N>>> = entries.into_iter().map(Some).collect();
    let mut group_a = vec![remaining[seed_a].take().expect("seed a")];
    let mut group_b = vec![remaining[seed_b].take().expect("seed b")];
    let mut mbr_a = group_a[0].rect;
    let mut mbr_b = group_b[0].rect;
    let mut left: usize = remaining.iter().flatten().count();

    for slot in remaining.iter_mut() {
        let Some(e) = slot.take() else { continue };
        let to_a = if group_a.len() + left == min_entries {
            true
        } else if group_b.len() + left == min_entries {
            false
        } else {
            let da = mbr_a.enlargement(&e.rect);
            let db = mbr_b.enlargement(&e.rect);
            da < db || (da == db && group_a.len() <= group_b.len())
        };
        left -= 1;
        if to_a {
            mbr_a.union_in_place(&e.rect);
            group_a.push(e);
        } else {
            mbr_b.union_in_place(&e.rect);
            group_b.push(e);
        }
    }
    (group_a, group_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnitPayload;
    use ir2_geo::Point;
    use ir2_storage::MemDevice;

    fn pt_rect(x: f64, y: f64) -> Rect<2> {
        Rect::from_point(Point::new([x, y]))
    }

    fn small_tree() -> RTree<2, MemDevice, UnitPayload> {
        RTree::create(MemDevice::new(), RTreeConfig::with_max(4), UnitPayload).unwrap()
    }

    #[test]
    fn insert_and_validate_small() {
        let tree = small_tree();
        for i in 0..50u64 {
            let (x, y) = ((i % 10) as f64, (i / 10) as f64);
            tree.insert(i, pt_rect(x, y), &[]).unwrap();
        }
        assert_eq!(tree.len(), 50);
        assert!(tree.height() >= 3, "capacity 4 must have split by 50");
        assert_eq!(tree.check_invariants(|_, _, _| true).unwrap(), 50);
    }

    #[test]
    fn delete_everything() {
        let tree = small_tree();
        for i in 0..30u64 {
            tree.insert(i, pt_rect(i as f64, -(i as f64)), &[]).unwrap();
        }
        for i in 0..30u64 {
            assert!(tree.delete(i, &pt_rect(i as f64, -(i as f64))).unwrap());
            tree.check_invariants(|_, _, _| true).unwrap();
        }
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 0);
        // Deleting again reports absence.
        assert!(!tree.delete(0, &pt_rect(0.0, 0.0)).unwrap());
    }

    #[test]
    fn delete_missing_returns_false() {
        let tree = small_tree();
        tree.insert(1, pt_rect(1.0, 1.0), &[]).unwrap();
        assert!(!tree.delete(2, &pt_rect(1.0, 1.0)).unwrap());
        assert!(!tree.delete(1, &pt_rect(9.0, 9.0)).unwrap());
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn reinsertion_keeps_all_objects_findable() {
        // Drive enough deletes to trigger CondenseTree orphan reinsertion.
        let tree = small_tree();
        for i in 0..60u64 {
            tree.insert(i, pt_rect((i % 8) as f64, (i / 8) as f64), &[])
                .unwrap();
        }
        for i in (0..60u64).step_by(2) {
            assert!(tree
                .delete(i, &pt_rect((i % 8) as f64, (i / 8) as f64))
                .unwrap());
        }
        assert_eq!(tree.len(), 30);
        assert_eq!(tree.check_invariants(|_, _, _| true).unwrap(), 30);
        // The surviving objects are all reachable via NN search.
        let found: Vec<u64> = tree
            .nearest(Point::new([0.0, 0.0]))
            .map(|r| r.unwrap().child)
            .collect();
        let mut found_sorted = found.clone();
        found_sorted.sort_unstable();
        assert_eq!(
            found_sorted,
            (0..60).filter(|i| i % 2 == 1).collect::<Vec<_>>()
        );
    }

    #[test]
    fn persistence_roundtrip() {
        let dev = std::sync::Arc::new(MemDevice::new());
        {
            let tree = RTree::<2, _, _>::create(
                std::sync::Arc::clone(&dev),
                RTreeConfig::with_max(4),
                UnitPayload,
            )
            .unwrap();
            for i in 0..20u64 {
                tree.insert(i, pt_rect(i as f64, 0.0), &[]).unwrap();
            }
            tree.flush().unwrap();
        }
        let tree = RTree::<2, _, _>::open(dev, RTreeConfig::with_max(4), UnitPayload).unwrap();
        assert_eq!(tree.len(), 20);
        assert_eq!(tree.check_invariants(|_, _, _| true).unwrap(), 20);
    }

    #[test]
    fn open_rejects_mismatched_config() {
        let dev = std::sync::Arc::new(MemDevice::new());
        {
            let tree = RTree::<2, _, _>::create(
                std::sync::Arc::clone(&dev),
                RTreeConfig::with_max(4),
                UnitPayload,
            )
            .unwrap();
            tree.flush().unwrap();
        }
        assert!(RTree::<2, _, _>::open(dev, RTreeConfig::with_max(8), UnitPayload).is_err());
    }

    #[test]
    fn duplicate_points_are_fine() {
        let tree = small_tree();
        for i in 0..20u64 {
            tree.insert(i, pt_rect(1.0, 1.0), &[]).unwrap();
        }
        assert_eq!(tree.check_invariants(|_, _, _| true).unwrap(), 20);
        // Delete them one by one (same rect, distinct ids).
        for i in 0..20u64 {
            assert!(tree.delete(i, &pt_rect(1.0, 1.0)).unwrap());
        }
        assert!(tree.is_empty());
    }

    #[test]
    fn linear_split_respects_min_fill_and_partitions() {
        let entries: Vec<Entry<2>> = (0..9)
            .map(|i| Entry::new(i as u64, pt_rect(i as f64, (i % 3) as f64), vec![]))
            .collect();
        let (a, b) = linear_split(entries, 4);
        assert_eq!(a.len() + b.len(), 9);
        assert!(a.len() >= 2 && b.len() >= 2);
        let mut ids: Vec<u64> = a.iter().chain(b.iter()).map(|e| e.child).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn linear_split_handles_identical_rects() {
        let entries: Vec<Entry<2>> = (0..6)
            .map(|i| Entry::new(i as u64, pt_rect(1.0, 1.0), vec![]))
            .collect();
        let (a, b) = linear_split(entries, 2);
        assert_eq!(a.len() + b.len(), 6);
        assert!(!a.is_empty() && !b.is_empty());
    }

    #[test]
    fn linear_split_tree_stays_correct() {
        let tree = RTree::create(
            MemDevice::new(),
            RTreeConfig::with_max(4).with_linear_split(),
            UnitPayload,
        )
        .unwrap();
        for i in 0..80u64 {
            tree.insert(i, pt_rect((i % 9) as f64, (i / 9) as f64), &[])
                .unwrap();
        }
        assert_eq!(tree.check_invariants(|_, _, _| true).unwrap(), 80);
        let order: Vec<u64> = tree
            .nearest(ir2_geo::Point::new([0.0, 0.0]))
            .map(|r| r.unwrap().child)
            .collect();
        assert_eq!(order.len(), 80);
    }

    #[test]
    fn quadratic_split_respects_min_fill() {
        let entries: Vec<Entry<2>> = (0..9)
            .map(|i| Entry::new(i as u64, pt_rect(i as f64, 0.0), vec![]))
            .collect();
        let (a, b) = quadratic_split(entries, 4);
        assert!(a.len() >= 4 || b.len() >= 4);
        assert!(a.len() >= 2 && b.len() >= 2);
        assert_eq!(a.len() + b.len(), 9);
    }

    #[test]
    fn cached_reads_hit_warm_and_mutations_invalidate() {
        let mut tree = small_tree();
        tree.set_node_cache(Arc::new(NodeCache::new(64)));
        for i in 0..40u64 {
            tree.insert(i, pt_rect((i % 7) as f64, (i / 7) as f64), &[])
                .unwrap();
        }
        let q = Point::new([0.0, 0.0]);
        let cold: Vec<u64> = tree.nearest(q).map(|r| r.unwrap().child).collect();

        let mut warm_it = tree.nearest(q);
        let warm: Vec<u64> = warm_it.by_ref().map(|r| r.unwrap().child).collect();
        assert_eq!(warm, cold, "cache must not change the result");
        assert_eq!(
            warm_it.cache_hits(),
            warm_it.nodes_read(),
            "second identical traversal should be fully warm"
        );

        // A committed mutation bumps the epoch: the next traversal re-reads
        // nodes (no stale images) and sees the new object.
        tree.insert(1000, pt_rect(0.1, 0.1), &[]).unwrap();
        let mut after_it = tree.nearest(q);
        let after: Vec<u64> = after_it.by_ref().map(|r| r.unwrap().child).collect();
        assert!(after.contains(&1000));
        assert_eq!(after.len(), cold.len() + 1);
        assert_eq!(
            after_it.cache_hits(),
            0,
            "post-mutation traversal must not serve pre-mutation images"
        );
    }

    #[test]
    fn uncached_tree_reports_zero_hits() {
        let tree = small_tree();
        for i in 0..10u64 {
            tree.insert(i, pt_rect(i as f64, 0.0), &[]).unwrap();
        }
        let mut it = tree.nearest(Point::new([0.0, 0.0]));
        it.by_ref().for_each(|r| {
            r.unwrap();
        });
        assert!(it.nodes_read() > 0);
        assert_eq!(it.cache_hits(), 0);
    }

    #[test]
    fn rect_objects_supported() {
        // The paper notes the method applies to arbitrarily-shaped objects:
        // index non-degenerate rectangles.
        let tree = small_tree();
        for i in 0..12u64 {
            let r = Rect::from_corners(
                Point::new([i as f64, 0.0]),
                Point::new([i as f64 + 2.5, 4.0]),
            );
            tree.insert(i, r, &[]).unwrap();
        }
        assert_eq!(tree.check_invariants(|_, _, _| true).unwrap(), 12);
    }

    #[test]
    fn three_dimensional_tree() {
        let tree: RTree<3, _, _> =
            RTree::create(MemDevice::new(), RTreeConfig::with_max(4), UnitPayload).unwrap();
        for i in 0..25u64 {
            let p = Point::new([i as f64, (i * 2 % 7) as f64, (i % 3) as f64]);
            tree.insert(i, Rect::from_point(p), &[]).unwrap();
        }
        assert_eq!(tree.check_invariants(|_, _, _| true).unwrap(), 25);
    }
}
