//! Window (range) queries and tree statistics.

use ir2_geo::Rect;
use ir2_storage::{BlockDevice, Result};

use crate::{PayloadOps, RTree};

/// Per-level occupancy statistics of a tree (diagnostics and tests).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TreeStats {
    /// Number of nodes at each level (index 0 = leaves).
    pub nodes_per_level: Vec<u64>,
    /// Total entries at each level.
    pub entries_per_level: Vec<u64>,
    /// Mean node fill ratio (entries / capacity) across all nodes.
    pub avg_fill: f64,
    /// Total blocks occupied by nodes.
    pub node_blocks: u64,
}

impl<const N: usize, D: BlockDevice, P: PayloadOps> RTree<N, D, P> {
    /// Classic R-Tree window query: invokes `visit` for every leaf entry
    /// whose MBR intersects `window`, pruning subtrees whose bounding
    /// rectangles do not. `visit` receives `(child_ref, rect, payload)` and
    /// returns `false` to stop the search early.
    pub fn search_window(
        &self,
        window: &Rect<N>,
        mut visit: impl FnMut(u64, &Rect<N>, &[u8]) -> bool,
    ) -> Result<()> {
        let Some(root) = self.root() else {
            return Ok(());
        };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            // Arena-backed decode: no per-entry payload allocation even on
            // this uncached path.
            let node = self.read_node_buf(id)?;
            for i in 0..node.len() {
                let rect = node.rect(i);
                if !window.intersects(&rect) {
                    continue;
                }
                if node.is_leaf() {
                    if !visit(node.child(i), &rect, node.payload(i)) {
                        return Ok(());
                    }
                } else {
                    stack.push(node.child(i));
                }
            }
        }
        Ok(())
    }

    /// Collects all object references intersecting `window`.
    pub fn window_objects(&self, window: &Rect<N>) -> Result<Vec<u64>> {
        let mut out = Vec::new();
        self.search_window(window, |child, _, _| {
            out.push(child);
            true
        })?;
        Ok(out)
    }

    /// Walks the whole tree and reports occupancy statistics.
    pub fn stats(&self) -> Result<TreeStats> {
        let mut stats = TreeStats::default();
        let Some(root) = self.root() else {
            return Ok(stats);
        };
        let cap = self.config().max_entries as f64;
        let mut fills = 0.0;
        let mut nodes = 0u64;
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let node = self.read_node_buf(id)?;
            let lvl = node.level() as usize;
            if stats.nodes_per_level.len() <= lvl {
                stats.nodes_per_level.resize(lvl + 1, 0);
                stats.entries_per_level.resize(lvl + 1, 0);
            }
            stats.nodes_per_level[lvl] += 1;
            stats.entries_per_level[lvl] += node.len() as u64;
            stats.node_blocks += self.node_blocks(node.level()) as u64;
            fills += node.len() as f64 / cap;
            nodes += 1;
            if !node.is_leaf() {
                stack.extend(node.children());
            }
        }
        stats.avg_fill = fills / nodes as f64;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RTreeConfig, UnitPayload};
    use ir2_geo::Point;
    use ir2_storage::MemDevice;

    fn grid_tree(n: u64) -> RTree<2, MemDevice, UnitPayload> {
        let tree = RTree::create(MemDevice::new(), RTreeConfig::with_max(4), UnitPayload).unwrap();
        for i in 0..n {
            let p = Point::new([(i % 10) as f64, (i / 10) as f64]);
            tree.insert(i, Rect::from_point(p), &[]).unwrap();
        }
        tree
    }

    #[test]
    fn window_query_matches_brute_force() {
        let tree = grid_tree(100);
        let window = Rect::from_corners(Point::new([2.0, 3.0]), Point::new([5.0, 6.0]));
        let mut got = tree.window_objects(&window).unwrap();
        got.sort_unstable();
        let want: Vec<u64> = (0..100u64)
            .filter(|i| {
                let (x, y) = ((i % 10) as f64, (i / 10) as f64);
                (2.0..=5.0).contains(&x) && (3.0..=6.0).contains(&y)
            })
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn window_query_early_stop() {
        let tree = grid_tree(100);
        let window = Rect::from_corners(Point::new([0.0, 0.0]), Point::new([9.0, 9.0]));
        let mut seen = 0;
        tree.search_window(&window, |_, _, _| {
            seen += 1;
            seen < 7
        })
        .unwrap();
        assert_eq!(seen, 7);
    }

    #[test]
    fn empty_window_and_empty_tree() {
        let tree = grid_tree(20);
        let far = Rect::from_corners(Point::new([50.0, 50.0]), Point::new([60.0, 60.0]));
        assert!(tree.window_objects(&far).unwrap().is_empty());
        let empty =
            RTree::<2, _, _>::create(MemDevice::new(), RTreeConfig::with_max(4), UnitPayload)
                .unwrap();
        assert!(empty.window_objects(&far).unwrap().is_empty());
        assert_eq!(empty.stats().unwrap(), TreeStats::default());
    }

    #[test]
    fn stats_reflect_structure() {
        let tree = grid_tree(100);
        let stats = tree.stats().unwrap();
        assert_eq!(stats.entries_per_level[0], 100);
        assert_eq!(stats.nodes_per_level.len(), tree.height() as usize);
        assert!(stats.avg_fill > 0.3 && stats.avg_fill <= 1.0);
        // Each upper level's entry count equals the node count below it.
        for lvl in 1..stats.nodes_per_level.len() {
            assert_eq!(stats.entries_per_level[lvl], stats.nodes_per_level[lvl - 1]);
        }
    }
}
