//! STR (sort-tile-recursive) bulk loading.
//!
//! The paper builds its trees by repeated insertion; we keep that path (it
//! is what the maintenance experiments measure) but add a bulk loader so
//! the large query experiments (hundreds of thousands of objects) can
//! construct trees in seconds. Bulk loading changes only construction
//! cost, not query-time behaviour: the result is a valid, well-packed tree
//! maintained by the same Insert/Delete afterwards.

use ir2_geo::Rect;
use ir2_storage::{BlockDevice, Result, StorageError};

use crate::node::{Entry, Node};
use crate::{PayloadOps, RTree};

/// An item to bulk load: object reference, MBR, leaf payload.
type Item<const N: usize> = (u64, Rect<N>, Vec<u8>);

impl<const N: usize, D: BlockDevice, P: PayloadOps> RTree<N, D, P> {
    /// Bulk loads `items` into an **empty** tree using sort-tile-recursive
    /// packing [Leutenegger et al.], filling nodes to ~100 % and computing
    /// payload summaries bottom-up.
    ///
    /// Returns an error if the tree is not empty.
    pub fn bulk_load(&self, mut items: Vec<Item<N>>) -> Result<()> {
        if self.root().is_some() {
            return Err(StorageError::Corrupt(
                "bulk_load requires an empty tree".into(),
            ));
        }
        if items.is_empty() {
            return Ok(());
        }
        for (_, _, payload) in &items {
            debug_assert_eq!(payload.len(), self.ops().entry_size(0), "leaf payload size");
        }

        let cap = self.config().max_entries;
        // Tile the items into leaf-sized runs.
        let n = items.len();
        str_tile(&mut items, 0, cap);

        // Build the leaf level.
        let mut level_entries: Vec<Entry<N>> = Vec::with_capacity(n.div_ceil(cap));
        for chunk in items.chunks(cap) {
            let id = self.alloc_node(0)?;
            let node = Node {
                id,
                level: 0,
                entries: chunk
                    .iter()
                    .map(|(c, r, p)| Entry::new(*c, *r, p.clone()))
                    .collect(),
            };
            self.write_node(&node)?;
            level_entries.push(Entry::new(id, node.mbr(), self.summary_of_node(&node)?));
        }

        // Build internal levels until one node remains.
        let mut level = 0u16;
        while level_entries.len() > 1 {
            level += 1;
            let mut next: Vec<Entry<N>> = Vec::with_capacity(level_entries.len().div_ceil(cap));
            for chunk in level_entries.chunks(cap) {
                let id = self.alloc_node(level)?;
                let node = Node {
                    id,
                    level,
                    entries: chunk.to_vec(),
                };
                self.write_node(&node)?;
                next.push(Entry::new(id, node.mbr(), self.summary_of_node(&node)?));
            }
            level_entries = next;
        }

        let root_id = level_entries[0].child;
        self.set_meta_after_bulk(root_id, level + 1, n as u64);
        Ok(())
    }
}

/// Recursively tiles `items` in place so that consecutive runs of `cap`
/// items form spatially coherent leaves: sort by the center of dimension
/// `dim`, slice into vertical slabs, recurse on the next dimension.
fn str_tile<const N: usize>(items: &mut [Item<N>], dim: usize, cap: usize) {
    let n = items.len();
    if n <= cap {
        return;
    }
    sort_by_center_dim(items, dim);
    if dim + 1 >= N {
        return; // final dimension: runs of `cap` are the leaves
    }
    // Number of leaves, and slabs per remaining dimension.
    let leaves = n.div_ceil(cap) as f64;
    let remaining = (N - dim) as f64;
    let slabs = leaves.powf(1.0 / remaining).ceil() as usize;
    let per_slab = n.div_ceil(slabs.max(1));
    let mut start = 0;
    while start < n {
        let end = (start + per_slab).min(n);
        str_tile(&mut items[start..end], dim + 1, cap);
        start = end;
    }
}

fn sort_by_center_dim<const N: usize>(items: &mut [Item<N>], dim: usize) {
    items.sort_by(|a, b| {
        let ca = a.1.center().coord(dim);
        let cb = b.1.center().coord(dim);
        ca.total_cmp(&cb)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RTreeConfig, UnitPayload};
    use ir2_geo::Point;
    use ir2_storage::MemDevice;

    fn items(n: usize) -> Vec<Item<2>> {
        (0..n)
            .map(|i| {
                let p = Point::new([((i * 37) % 211) as f64, ((i * 101) % 197) as f64]);
                (i as u64, Rect::from_point(p), vec![])
            })
            .collect()
    }

    #[test]
    fn bulk_load_builds_a_valid_tree() {
        let tree = RTree::create(MemDevice::new(), RTreeConfig::with_max(8), UnitPayload).unwrap();
        tree.bulk_load(items(1000)).unwrap();
        assert_eq!(tree.len(), 1000);
        // Bulk-loaded nodes may be under Guttman's minimum at the tail;
        // only check MBR/level/count invariants via a permissive fill.
        let count = tree.check_invariants(|_, _, _| true);
        match count {
            Ok(c) => assert_eq!(c, 1000),
            Err(e) => panic!("invariants: {e}"),
        }
    }

    #[test]
    fn bulk_load_empty_and_single() {
        let tree = RTree::create(MemDevice::new(), RTreeConfig::with_max(8), UnitPayload).unwrap();
        tree.bulk_load(vec![]).unwrap();
        assert!(tree.is_empty());
        tree.bulk_load(items(1)).unwrap();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.height(), 1);
    }

    #[test]
    fn bulk_load_rejects_nonempty_tree() {
        let tree = RTree::create(MemDevice::new(), RTreeConfig::with_max(8), UnitPayload).unwrap();
        tree.insert(0, Rect::from_point(Point::new([0.0, 0.0])), &[])
            .unwrap();
        assert!(tree.bulk_load(items(10)).is_err());
    }

    #[test]
    fn bulk_loaded_tree_answers_nn_like_brute_force() {
        let data = items(500);
        let tree = RTree::create(MemDevice::new(), RTreeConfig::with_max(16), UnitPayload).unwrap();
        tree.bulk_load(data.clone()).unwrap();
        let q = Point::new([100.0, 100.0]);
        let got: Vec<u64> = tree.nearest(q).take(10).map(|r| r.unwrap().child).collect();
        let mut brute: Vec<(f64, u64)> =
            data.iter().map(|(c, r, _)| (r.min_dist(&q), *c)).collect();
        brute.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let brute_top: Vec<f64> = brute.iter().take(10).map(|(d, _)| *d).collect();
        // Compare by distance (ties may order differently).
        for (g, bd) in got.iter().zip(brute_top.iter()) {
            let gd = data.iter().find(|(c, _, _)| c == g).unwrap().1.min_dist(&q);
            assert!((gd - bd).abs() < 1e-9);
        }
    }

    #[test]
    fn insert_after_bulk_load_works() {
        let tree = RTree::create(MemDevice::new(), RTreeConfig::with_max(8), UnitPayload).unwrap();
        tree.bulk_load(items(300)).unwrap();
        for i in 300..350u64 {
            tree.insert(i, Rect::from_point(Point::new([i as f64, 0.5])), &[])
                .unwrap();
        }
        assert_eq!(tree.len(), 350);
        let all: Vec<u64> = tree
            .nearest(Point::new([0.0, 0.0]))
            .map(|r| r.unwrap().child)
            .collect();
        assert_eq!(all.len(), 350);
    }

    #[test]
    fn three_dim_bulk_load() {
        let data: Vec<Item<3>> = (0..200)
            .map(|i| {
                let p = Point::new([(i % 10) as f64, ((i / 10) % 10) as f64, (i / 100) as f64]);
                (i as u64, Rect::from_point(p), vec![])
            })
            .collect();
        let tree = RTree::create(MemDevice::new(), RTreeConfig::with_max(6), UnitPayload).unwrap();
        tree.bulk_load(data).unwrap();
        assert_eq!(tree.len(), 200);
    }
}
