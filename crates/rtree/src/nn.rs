//! Incremental nearest neighbor (Hjaltason & Samet [HS99]) — the paper's
//! Figure 3.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ir2_geo::{OrderedF64, Point};
use ir2_storage::{BlockDevice, Result};

use crate::prefetch::PrefetchQueue;
use crate::{PayloadOps, RTree};

/// One nearest-neighbor result: an object reference and its distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NnResult {
    /// The leaf entry's object reference (`ObjPtr`).
    pub child: u64,
    /// Distance from the query point to the object's MBR.
    pub dist: f64,
}

#[derive(PartialEq, Eq)]
enum Item {
    Node(u64),
    Object(u64),
}

/// Lazily yields objects in ascending distance from a query point.
///
/// This is the `NearestNeighbor(p, U)` of the paper's Figure 3: a priority
/// queue is seeded with the root; dequeuing a node enqueues its children at
/// their MINDIST, dequeuing an object pointer reports it. Because MINDIST
/// lower-bounds the distance to everything inside an MBR, objects emerge in
/// exact distance order while only the necessary nodes are read.
///
/// One deliberate deviation from the Figure 3 pseudo-code: nodes are
/// *loaded when dequeued*, not when enqueued (`LoadNode` at line 5 of the
/// figure would read every child of each expanded node, even children the
/// search never visits). Dequeue-time loading is Hjaltason & Samet's actual
/// algorithm and touches strictly fewer blocks.
pub struct NnIter<'a, const N: usize, D, P> {
    tree: &'a RTree<N, D, P>,
    query: Point<N>,
    heap: BinaryHeap<Reverse<(OrderedF64, u64, Item)>>,
    seq: u64,
    nodes_read: u64,
    cache_hits: u64,
    cache_misses: u64,
    prefetch: PrefetchQueue,
}

// Items only compare through (dist, seq), which are unique per entry.
impl Ord for Item {
    fn cmp(&self, _other: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}
impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<const N: usize, D: BlockDevice, P: PayloadOps> RTree<N, D, P> {
    /// Starts an incremental nearest-neighbor scan from `query`.
    pub fn nearest(&self, query: Point<N>) -> NnIter<'_, N, D, P> {
        let mut heap = BinaryHeap::new();
        if let Some(root) = self.root() {
            heap.push(Reverse((OrderedF64(0.0), 0, Item::Node(root))));
        }
        NnIter {
            tree: self,
            query,
            heap,
            seq: 1,
            nodes_read: 0,
            cache_hits: 0,
            cache_misses: 0,
            prefetch: PrefetchQueue::disabled(),
        }
    }
}

impl<const N: usize, D: BlockDevice, P: PayloadOps> NnIter<'_, N, D, P> {
    /// Tree nodes read so far — the iterator's charged I/O, used by
    /// limit-aware callers to meter the traversal. Counts node *visits*,
    /// so budgets behave identically with or without a node cache.
    pub fn nodes_read(&self) -> u64 {
        self.nodes_read
    }

    /// Of [`nodes_read`](NnIter::nodes_read), how many were served from
    /// the tree's decoded-node cache (0 without an attached cache).
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Of [`nodes_read`](NnIter::nodes_read), how many had to decode the
    /// node — every visit not served by the cache, so
    /// `nodes_read == cache_hits + cache_misses` always holds.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses
    }

    /// Attaches a frontier-prefetch queue (see
    /// [`with_frontier_prefetch`](crate::with_frontier_prefetch)): on each
    /// node expansion, up to `queue.width()` child nodes are nominated for
    /// background decode into the tree's cache. Rank order is unaffected.
    pub fn prefetching(mut self, queue: PrefetchQueue) -> Self {
        self.prefetch = queue;
        self
    }

    /// Current search-frontier (priority queue) size.
    pub fn frontier_len(&self) -> usize {
        self.heap.len()
    }

    /// Lower bound on the distance of every result this iterator can still
    /// emit: the MINDIST key at the head of the frontier. Because the
    /// best-first heap minimum is non-decreasing and MINDIST lower-bounds
    /// everything inside an MBR, no future result can be closer than this.
    /// `None` once the frontier is drained (nothing more will be emitted).
    pub fn frontier_bound(&self) -> Option<f64> {
        self.heap.peek().map(|Reverse((d, _, _))| d.0)
    }

    /// Like the iterator's `next`, but performs no work beyond `limit`:
    /// frontier items are popped only while their key is ≤ `limit`, so a
    /// caller holding a tighter bound (a scatter-gather merge's current
    /// k-th distance, say) never pays for node reads or candidate pops it
    /// would discard. Returns `Ok(None)` both when the head exceeds the
    /// limit and when the frontier is drained — distinguish via
    /// [`frontier_len`](NnIter::frontier_len); the scan resumes exactly
    /// where it stopped when called again with a larger limit.
    pub fn next_within(&mut self, limit: f64) -> Result<Option<NnResult>> {
        while self
            .heap
            .peek()
            .is_some_and(|Reverse((d, _, _))| d.0 <= limit)
        {
            let Some(Reverse((dist, _, item))) = self.heap.pop() else {
                break;
            };
            match item {
                Item::Object(child) => {
                    return Ok(Some(NnResult {
                        child,
                        dist: dist.0,
                    }));
                }
                Item::Node(id) => {
                    let (node, hit) = self.tree.read_node_cached(id)?;
                    self.nodes_read += 1;
                    self.cache_hits += u64::from(hit);
                    self.cache_misses += u64::from(!hit);
                    let mut speculate = self.prefetch.width();
                    for i in 0..node.len() {
                        let child = node.child(i);
                        let d = OrderedF64(node.rect(i).min_dist(&self.query));
                        let item = if node.is_leaf() {
                            Item::Object(child)
                        } else {
                            if speculate > 0 {
                                self.prefetch.enqueue(child);
                                speculate -= 1;
                            }
                            Item::Node(child)
                        };
                        self.heap.push(Reverse((d, self.seq, item)));
                        self.seq += 1;
                    }
                }
            }
        }
        Ok(None)
    }
}

impl<const N: usize, D: BlockDevice, P: PayloadOps> Iterator for NnIter<'_, N, D, P> {
    type Item = Result<NnResult>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_within(f64::INFINITY).transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RTreeConfig, UnitPayload};
    use ir2_geo::Rect;
    use ir2_storage::{MemDevice, TrackedDevice};

    fn build(points: &[[f64; 2]]) -> RTree<2, MemDevice, UnitPayload> {
        let tree = RTree::create(MemDevice::new(), RTreeConfig::with_max(4), UnitPayload).unwrap();
        for (i, p) in points.iter().enumerate() {
            tree.insert(i as u64, Rect::from_point(Point::new(*p)), &[])
                .unwrap();
        }
        tree
    }

    /// The paper's Figure 1 hotel coordinates.
    fn hotels() -> Vec<[f64; 2]> {
        vec![
            [25.4, -80.1],  // H1
            [47.3, -122.2], // H2
            [35.5, 139.4],  // H3
            [39.5, 116.2],  // H4
            [51.3, -0.5],   // H5
            [40.4, -73.5],  // H6
            [-33.2, -70.4], // H7
            [-41.1, 174.4], // H8
        ]
    }

    #[test]
    fn example_1_order_is_reproduced() {
        // Example 1: NN order from [30.5, 100.0] is H4, H3, H5, H8, H6, H1, H7, H2.
        let tree = build(&hotels());
        let order: Vec<u64> = tree
            .nearest(Point::new([30.5, 100.0]))
            .map(|r| r.unwrap().child + 1) // ids are 0-based, hotels 1-based
            .collect();
        assert_eq!(order, vec![4, 3, 5, 8, 6, 1, 7, 2]);
    }

    #[test]
    fn distances_are_nondecreasing_and_exact() {
        let pts: Vec<[f64; 2]> = (0..200)
            .map(|i| [((i * 37) % 101) as f64, ((i * 53) % 89) as f64])
            .collect();
        let tree = build(&pts);
        let q = Point::new([40.0, 40.0]);
        let results: Vec<NnResult> = tree.nearest(q).map(|r| r.unwrap()).collect();
        assert_eq!(results.len(), pts.len());
        for w in results.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
        // Compare against brute force.
        let mut brute: Vec<(f64, u64)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (q.distance(&Point::new(*p)), i as u64))
            .collect();
        brute.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (res, (bd, _)) in results.iter().zip(brute.iter()) {
            assert!((res.dist - bd).abs() < 1e-9);
        }
    }

    #[test]
    fn nodes_read_meters_the_traversal() {
        let tree = build(&hotels());
        let mut it = tree.nearest(Point::new([30.5, 100.0]));
        assert_eq!(it.nodes_read(), 0);
        it.next().unwrap().unwrap();
        assert!(it.nodes_read() >= 1);
        assert!(it.frontier_len() > 0);
        let total_after_first = it.nodes_read();
        it.by_ref().for_each(|r| {
            r.unwrap();
        });
        assert!(it.nodes_read() >= total_after_first);
    }

    #[test]
    fn empty_tree_yields_nothing() {
        let tree = build(&[]);
        assert_eq!(tree.nearest(Point::new([0.0, 0.0])).count(), 0);
    }

    #[test]
    fn early_termination_reads_fewer_blocks_than_full_scan() {
        let pts: Vec<[f64; 2]> = (0..500)
            .map(|i| [((i * 7919) % 1000) as f64, ((i * 104729) % 1000) as f64])
            .collect();
        let tracked = TrackedDevice::new(MemDevice::new());
        let stats = tracked.stats();
        let tree = RTree::create(tracked, RTreeConfig::with_max(8), UnitPayload).unwrap();
        for (i, p) in pts.iter().enumerate() {
            tree.insert(i as u64, Rect::from_point(Point::new(*p)), &[])
                .unwrap();
        }
        stats.reset();
        let _top1: Vec<_> = tree.nearest(Point::new([500.0, 500.0])).take(1).collect();
        let one = stats.snapshot().total();
        stats.reset();
        let _all: Vec<_> = tree.nearest(Point::new([500.0, 500.0])).collect();
        let all = stats.snapshot().total();
        assert!(
            one * 5 < all,
            "top-1 ({one} blocks) should read far less than full ({all})"
        );
    }
}
