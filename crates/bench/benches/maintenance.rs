//! Criterion bench of the maintenance ablation (A1): per-insert cost of
//! the IR²-Tree vs the MIR²-Tree (incremental OR-lift) vs the MIR²-Tree
//! under the paper's literal recompute-from-objects rule.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ir2_datagen::DatasetSpec;
use ir2tree::irtree::{insert_object, Ir2Payload, MirPayload};
use ir2tree::model::{ObjPtr, ObjectSource, ObjectStore, SpatialObject};
use ir2tree::rtree::{RTree, RTreeConfig};
use ir2tree::sigfile::{MultiLevelScheme, SignatureScheme};
use ir2tree::storage::MemDevice;

const N: usize = 1_500;

fn fixture() -> (
    Arc<ObjectStore<2, MemDevice>>,
    Vec<(ObjPtr, SpatialObject<2>)>,
) {
    let spec = DatasetSpec::restaurants().scaled(N as f64 / 456_288.0);
    let store = Arc::new(ObjectStore::<2, _>::create(MemDevice::new()));
    let items: Vec<_> = spec
        .generate()
        .map(|o| (store.append(&o).unwrap(), o))
        .collect();
    store.flush().unwrap();
    (store, items)
}

fn bench_maintenance(c: &mut Criterion) {
    let (store, items) = fixture();
    let cfg = RTreeConfig::for_dims::<2>();
    let schemes = || MultiLevelScheme::new(8, 4, 1, cfg.max_entries, 14.0, 20_000);

    let mut group = c.benchmark_group("maintenance_insert_all");
    group.sample_size(10);

    group.bench_function("ir2", |b| {
        b.iter_batched(
            || {
                RTree::create(
                    MemDevice::new(),
                    cfg,
                    Ir2Payload::new(SignatureScheme::from_bytes_len(8, 4, 1)),
                )
                .unwrap()
            },
            |tree| {
                for (p, o) in &items {
                    insert_object(&tree, *p, o).unwrap();
                }
                tree.len()
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("mir2_incremental", |b| {
        b.iter_batched(
            || {
                RTree::create(
                    MemDevice::new(),
                    cfg,
                    MirPayload::new(schemes(), Arc::clone(&store) as Arc<dyn ObjectSource<2>>),
                )
                .unwrap()
            },
            |tree| {
                for (p, o) in &items {
                    insert_object(&tree, *p, o).unwrap();
                }
                tree.len()
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("mir2_strict_paper", |b| {
        b.iter_batched(
            || {
                RTree::create(
                    MemDevice::new(),
                    cfg,
                    MirPayload::new(schemes(), Arc::clone(&store) as Arc<dyn ObjectSource<2>>)
                        .strict(),
                )
                .unwrap()
            },
            |tree| {
                for (p, o) in &items {
                    insert_object(&tree, *p, o).unwrap();
                }
                tree.len()
            },
            BatchSize::LargeInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_maintenance);
criterion_main!(benches);
