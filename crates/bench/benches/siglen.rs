//! Criterion micro-bench of the Figures 11/14 shape: IR²-/MIR²-Tree query
//! time as the signature length varies (k = 10, 2 keywords).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ir2_bench::{build_db, workload};
use ir2_datagen::DatasetSpec;
use ir2tree::Algorithm;

fn bench_siglen(c: &mut Criterion) {
    let spec = DatasetSpec::restaurants().scaled(8_000.0 / 456_288.0);
    let mut group = c.benchmark_group("vary_signature_length");
    group.sample_size(15);
    for sig_bytes in [2usize, 8, 32] {
        let bench = build_db(&spec, sig_bytes);
        let queries = workload(&spec, 8, 2, 10);
        for alg in [Algorithm::Ir2, Algorithm::Mir2] {
            group.bench_with_input(
                BenchmarkId::new(alg.label(), sig_bytes),
                &queries,
                |b, queries| {
                    b.iter(|| {
                        let mut total = 0usize;
                        for q in queries {
                            total += bench.db.distance_first(alg, q).unwrap().results.len();
                        }
                        total
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_siglen);
criterion_main!(benches);
