//! Criterion micro-bench of the Figures 10/13 shape: per-query wall time
//! as the number of query keywords varies (k fixed at 10).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ir2_bench::{build_db, workload};
use ir2_datagen::DatasetSpec;
use ir2tree::Algorithm;

fn bench_keywords(c: &mut Criterion) {
    let spec = DatasetSpec::restaurants().scaled(10_000.0 / 456_288.0);
    let bench = build_db(&spec, 8);
    let mut group = c.benchmark_group("vary_keywords");
    group.sample_size(20);
    for kw in [1usize, 2, 3, 5] {
        let queries = workload(&spec, 8, kw, 10);
        for alg in Algorithm::ALL {
            group.bench_with_input(BenchmarkId::new(alg.label(), kw), &queries, |b, queries| {
                b.iter(|| {
                    let mut total = 0usize;
                    for q in queries {
                        total += bench.db.distance_first(alg, q).unwrap().results.len();
                    }
                    total
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_keywords);
criterion_main!(benches);
