//! Criterion benches of the substrate hot paths: signature hashing and
//! containment, incremental NN traversal, postings intersection, block
//! device round trips, and Zipf sampling.

use criterion::{criterion_group, criterion_main, Criterion};
use ir2_datagen::{AliasTable, DatasetSpec};
use ir2tree::geo::{Point, Rect};
use ir2tree::invindex::InvertedIndex;
use ir2tree::model::ObjPtr;
use ir2tree::rtree::{RTree, RTreeConfig, UnitPayload};
use ir2tree::sigfile::SignatureScheme;
use ir2tree::storage::{BlockDevice, MemDevice, BLOCK_SIZE};
use ir2tree::text::{tokenize, TermId, Vocabulary};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_signatures(c: &mut Criterion) {
    let scheme = SignatureScheme::from_bytes_len(64, 4, 7);
    let words: Vec<String> = (0..14).map(|i| format!("word{i}")).collect();
    let doc_sig = scheme.sign_terms(words.iter().map(String::as_str));
    let probe = scheme.sign_term("word7");
    let miss = scheme.sign_term("absent");

    c.bench_function("signature/sign_14_terms", |b| {
        b.iter(|| scheme.sign_terms(words.iter().map(String::as_str)))
    });
    c.bench_function("signature/containment_hit", |b| {
        b.iter(|| doc_sig.contains(&probe))
    });
    c.bench_function("signature/containment_miss", |b| {
        b.iter(|| doc_sig.contains(&miss))
    });
}

fn bench_nn(c: &mut Criterion) {
    let tree = RTree::create(MemDevice::new(), RTreeConfig::for_dims::<2>(), UnitPayload).unwrap();
    let items: Vec<_> = (0..20_000u64)
        .map(|i| {
            let p = Point::new([
                ((i * 7919) % 10_000) as f64,
                ((i * 104_729) % 10_000) as f64,
            ]);
            (i, Rect::from_point(p), vec![])
        })
        .collect();
    tree.bulk_load(items).unwrap();
    c.bench_function("rtree/nn_top10_of_20k", |b| {
        b.iter(|| {
            tree.nearest(Point::new([5000.0, 5000.0]))
                .take(10)
                .map(|r| r.unwrap().child)
                .sum::<u64>()
        })
    });
}

fn bench_intersection(c: &mut Criterion) {
    // Build a small inverted index and intersect two real postings lists.
    let spec = DatasetSpec::restaurants().scaled(5_000.0 / 456_288.0);
    let mut vocab = Vocabulary::new();
    let docs: Vec<(ObjPtr, Vec<TermId>)> = spec
        .generate()
        .enumerate()
        .map(|(i, o)| {
            let mut terms: Vec<String> = tokenize(&o.text).collect();
            terms.sort_unstable();
            terms.dedup();
            vocab.add_document(terms.iter().map(String::as_str));
            (
                ObjPtr(i as u64),
                terms.iter().map(|t| vocab.term_id(t).unwrap()).collect(),
            )
        })
        .collect();
    let idx = InvertedIndex::build(MemDevice::new(), &vocab, docs).unwrap();
    let common = vocab.term_id(&spec.keyword_of_rank(2)).unwrap();
    let rarer = vocab.term_id(&spec.keyword_of_rank(40)).unwrap();
    c.bench_function("invindex/fetch_and_intersect", |b| {
        b.iter(|| {
            let a = idx.postings(common).unwrap();
            let bl = idx.postings(rarer).unwrap();
            (a.len(), bl.len())
        })
    });
}

fn bench_block_io(c: &mut Criterion) {
    let dev = MemDevice::new();
    dev.allocate(1024).unwrap();
    let block = ir2tree::storage::zeroed_block();
    let mut out = ir2tree::storage::zeroed_block();
    c.bench_function("storage/block_write_read", |b| {
        b.iter(|| {
            dev.write_block(512, &block).unwrap();
            dev.read_block(512, &mut out).unwrap();
            out[0]
        })
    });
    c.bench_function("storage/extent_read_4_blocks", |b| {
        b.iter(|| {
            ir2tree::storage::extent::read_extent(&dev, 100, 4)
                .unwrap()
                .len()
        })
    });
    let _ = BLOCK_SIZE;
}

fn bench_sampling(c: &mut Criterion) {
    let table = AliasTable::zipf(73_855, 1.0);
    let mut rng = StdRng::seed_from_u64(9);
    c.bench_function("datagen/zipf_sample", |b| b.iter(|| table.sample(&mut rng)));
}

criterion_group!(
    benches,
    bench_signatures,
    bench_nn,
    bench_intersection,
    bench_block_io,
    bench_sampling
);
criterion_main!(benches);
