//! Criterion micro-bench of the Figures 9/12 shape: per-query wall time of
//! each algorithm as k varies, on a 10k-object Restaurants-like dataset.
//! (The `experiments` binary reproduces the figures at full scale with
//! simulated disk time; this bench tracks the CPU-side costs.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ir2_bench::{build_db, workload};
use ir2_datagen::DatasetSpec;
use ir2tree::Algorithm;

fn bench_topk(c: &mut Criterion) {
    let spec = DatasetSpec::restaurants().scaled(10_000.0 / 456_288.0);
    let bench = build_db(&spec, 8);
    let mut group = c.benchmark_group("distance_first_topk");
    group.sample_size(20);
    for k in [1usize, 10, 50] {
        let queries = workload(&spec, 8, 2, k);
        for alg in Algorithm::ALL {
            group.bench_with_input(BenchmarkId::new(alg.label(), k), &queries, |b, queries| {
                b.iter(|| {
                    let mut total = 0usize;
                    for q in queries {
                        total += bench.db.distance_first(alg, q).unwrap().results.len();
                    }
                    total
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_topk);
criterion_main!(benches);
