//! Reproduces every table and figure of the paper's evaluation (Section
//! VI), printing paper-style tables. See `DESIGN.md` §3 for the experiment
//! index and `EXPERIMENTS.md` for a recorded run.
//!
//! Usage:
//!   experiments [--scale F] [--queries N] [EXPERIMENT...]
//!
//! Experiments: table1 table2 fig9 fig10 fig11 fig12 fig13 fig14
//!              ablation-maintenance ablation-buffer ablation-general all
//!
//! `--scale F` multiplies both dataset sizes (default 1.0 = the paper's
//! 129 319 hotels and 456 288 restaurants); `--queries N` sets the number
//! of queries averaged per experiment point (default 20).

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

use ir2_bench::{build_db, run_distance_first, workload, BenchDb, Measurement};
use ir2_datagen::DatasetSpec;
use ir2tree::irtree::{distance_first_topk, insert_object, GeneralQuery, Ir2Payload, MirPayload};
use ir2tree::model::{ObjectSource, ObjectStore, SpatialObject};
use ir2tree::rtree::{RTree, RTreeConfig};
use ir2tree::sigfile::{MultiLevelScheme, SignatureScheme};
use ir2tree::storage::{BufferPool, CostModel, MemDevice, TrackedDevice};
use ir2tree::text::{LinearRank, SaturatingTfIdf};
use ir2tree::{Algorithm, IndexSizes};

const K_SWEEP: [usize; 5] = [1, 5, 10, 20, 50];
const KW_SWEEP: [usize; 5] = [1, 2, 3, 4, 5];
const HOTELS_SIG_SWEEP: [usize; 5] = [63, 126, 189, 252, 315];
const RESTAURANTS_SIG_SWEEP: [usize; 5] = [2, 4, 8, 16, 32];
const HOTELS_SIG_DEFAULT: usize = 189;
const RESTAURANTS_SIG_DEFAULT: usize = 8;

struct Args {
    scale: f64,
    queries: usize,
    which: BTreeSet<String>,
}

fn parse_args() -> Args {
    let mut scale = 1.0;
    let mut queries = 20;
    let mut which = BTreeSet::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => scale = it.next().expect("--scale F").parse().expect("scale factor"),
            "--queries" => {
                queries = it
                    .next()
                    .expect("--queries N")
                    .parse()
                    .expect("query count")
            }
            other => {
                which.insert(other.to_string());
            }
        }
    }
    if which.is_empty() || which.contains("all") {
        which = [
            "table1",
            "table2",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "ablation-maintenance",
            "ablation-buffer",
            "ablation-general",
            "ablation-grid",
            "ablation-split",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }
    Args {
        scale,
        queries,
        which,
    }
}

/// Lazily-built per-dataset database shared by the experiments that use
/// the default signature lengths.
struct Lazy {
    spec: DatasetSpec,
    sig: usize,
    db: Option<BenchDb>,
}

impl Lazy {
    fn new(spec: DatasetSpec, sig: usize) -> Self {
        Self {
            spec,
            sig,
            db: None,
        }
    }

    fn get(&mut self) -> &BenchDb {
        if self.db.is_none() {
            let t = Instant::now();
            eprintln!(
                "[build] {} ({} objects, sig {} B)…",
                self.spec.name, self.spec.num_objects, self.sig
            );
            self.db = Some(build_db(&self.spec, self.sig));
            eprintln!("[build] done in {:.1}s", t.elapsed().as_secs_f64());
        }
        self.db.as_ref().expect("just built")
    }
}

fn main() {
    let args = parse_args();
    let hotels_spec = DatasetSpec::hotels().scaled(args.scale);
    let restaurants_spec = DatasetSpec::restaurants().scaled(args.scale);
    let mut hotels = Lazy::new(hotels_spec.clone(), HOTELS_SIG_DEFAULT);
    let mut restaurants = Lazy::new(restaurants_spec.clone(), RESTAURANTS_SIG_DEFAULT);

    println!("# IR2-Tree experiment reproduction");
    println!(
        "scale={} (Hotels {} objects, Restaurants {} objects), {} queries/point, k/keyword/sig defaults per paper",
        args.scale, hotels_spec.num_objects, restaurants_spec.num_objects, args.queries
    );

    for exp in &args.which {
        let t = Instant::now();
        match exp.as_str() {
            "table1" => table1(hotels.get(), restaurants.get()),
            "table2" => table2(hotels.get(), restaurants.get()),
            "fig9" => vary_k("Figure 9: varying k — Hotels", hotels.get(), args.queries),
            "fig12" => vary_k(
                "Figure 12: varying k — Restaurants",
                restaurants.get(),
                args.queries,
            ),
            "fig10" => vary_keywords(
                "Figure 10: varying #keywords — Hotels",
                hotels.get(),
                args.queries,
            ),
            "fig13" => vary_keywords(
                "Figure 13: varying #keywords — Restaurants",
                restaurants.get(),
                args.queries,
            ),
            "fig11" => vary_siglen(
                "Figure 11: varying signature length — Hotels",
                &hotels_spec,
                &HOTELS_SIG_SWEEP,
                args.queries,
            ),
            "fig14" => vary_siglen(
                "Figure 14: varying signature length — Restaurants",
                &restaurants_spec,
                &RESTAURANTS_SIG_SWEEP,
                args.queries,
            ),
            "ablation-maintenance" => ablation_maintenance(&restaurants_spec),
            "ablation-buffer" => ablation_buffer(restaurants.get(), args.queries),
            "ablation-general" => ablation_general(restaurants.get(), args.queries),
            "ablation-grid" => ablation_grid(&restaurants_spec, args.queries),
            "ablation-split" => ablation_split(&restaurants_spec, args.queries),
            other => eprintln!("unknown experiment: {other}"),
        }
        eprintln!("[{exp}] finished in {:.1}s", t.elapsed().as_secs_f64());
    }
}

// ---------------------------------------------------------------------
// Table 1: dataset details.
// ---------------------------------------------------------------------

fn table1(hotels: &BenchDb, restaurants: &BenchDb) {
    println!("\n### Table 1: dataset details\n");
    println!(
        "{:<12} {:>10} {:>12} {:>16} {:>15} {:>14}",
        "Dataset", "Size (MB)", "# objects", "avg words/obj", "unique words", "blocks/object"
    );
    for b in [hotels, restaurants] {
        let s = b.db.build_stats();
        println!(
            "{:<12} {:>10.1} {:>12} {:>16.1} {:>15} {:>14.2}",
            b.spec.name,
            s.object_file_bytes as f64 / 1_048_576.0,
            s.objects,
            s.avg_unique_words,
            s.unique_words,
            s.avg_blocks_per_object
        );
    }
}

// ---------------------------------------------------------------------
// Table 2: index structure sizes.
// ---------------------------------------------------------------------

fn table2(hotels: &BenchDb, restaurants: &BenchDb) {
    println!("\n### Table 2: sizes (MB) of indexing structures\n");
    println!(
        "{:<12} {:>8} {:>8} {:>10} {:>10}",
        "Dataset", "IIO", "R-Tree", "IR2-Tree", "MIR2-Tree"
    );
    for b in [hotels, restaurants] {
        let s = b.db.index_sizes();
        println!(
            "{:<12} {:>8.1} {:>8.1} {:>10.1} {:>10.1}",
            b.spec.name,
            IndexSizes::mb(s.iio),
            IndexSizes::mb(s.rtree),
            IndexSizes::mb(s.ir2),
            IndexSizes::mb(s.mir2)
        );
    }
}

// ---------------------------------------------------------------------
// Figures 9 / 12: varying k.
// ---------------------------------------------------------------------

fn vary_k(title: &str, bench: &BenchDb, queries: usize) {
    let mut rows = Vec::new();
    for k in K_SWEEP {
        let w = workload(&bench.spec, queries, 2, k);
        let cols: Vec<(Algorithm, Measurement)> = Algorithm::ALL
            .iter()
            .map(|&alg| (alg, run_distance_first(bench, alg, &w)))
            .collect();
        rows.push((k.to_string(), cols));
    }
    ir2_bench::print_table(
        &format!("{title} (a) execution time"),
        "k",
        &rows,
        |m| m.time_ms,
        "simulated ms",
    );
    ir2_bench::print_table(
        &format!("{title} (b) random block accesses"),
        "k",
        &rows,
        |m| m.random,
        "blocks",
    );
    ir2_bench::print_table(
        &format!("{title} (b) sequential block accesses"),
        "k",
        &rows,
        |m| m.sequential,
        "blocks",
    );
}

// ---------------------------------------------------------------------
// Figures 10 / 13: varying number of keywords.
// ---------------------------------------------------------------------

fn vary_keywords(title: &str, bench: &BenchDb, queries: usize) {
    let mut rows = Vec::new();
    for kw in KW_SWEEP {
        let w = workload(&bench.spec, queries, kw, 10);
        let cols: Vec<(Algorithm, Measurement)> = Algorithm::ALL
            .iter()
            .map(|&alg| (alg, run_distance_first(bench, alg, &w)))
            .collect();
        rows.push((kw.to_string(), cols));
    }
    ir2_bench::print_table(
        &format!("{title} (a) execution time"),
        "#keywords",
        &rows,
        |m| m.time_ms,
        "simulated ms",
    );
    ir2_bench::print_table(
        &format!("{title} (b) random block accesses"),
        "#keywords",
        &rows,
        |m| m.random,
        "blocks",
    );
    ir2_bench::print_table(
        &format!("{title} (b) sequential block accesses"),
        "#keywords",
        &rows,
        |m| m.sequential,
        "blocks",
    );
}

// ---------------------------------------------------------------------
// Figures 11 / 14: varying signature length (IR² and MIR² only).
// ---------------------------------------------------------------------

fn vary_siglen(title: &str, spec: &DatasetSpec, sweep: &[usize], queries: usize) {
    let mut rows = Vec::new();
    for &sig in sweep {
        eprintln!("[build] {} at signature length {sig} B…", spec.name);
        let bench = build_db(spec, sig);
        let w = workload(spec, queries, 2, 10);
        let cols: Vec<(Algorithm, Measurement)> = [Algorithm::Ir2, Algorithm::Mir2]
            .iter()
            .map(|&alg| (alg, run_distance_first(&bench, alg, &w)))
            .collect();
        rows.push((format!("{sig} B"), cols));
    }
    ir2_bench::print_table(
        &format!("{title} (a) execution time"),
        "sig len",
        &rows,
        |m| m.time_ms,
        "simulated ms",
    );
    ir2_bench::print_table(
        &format!("{title} (b) object accesses"),
        "sig len",
        &rows,
        |m| m.object_loads,
        "objects",
    );
}

// ---------------------------------------------------------------------
// Ablation A1: maintenance cost, IR² vs MIR² (fast and strict).
// ---------------------------------------------------------------------

fn ablation_maintenance(spec: &DatasetSpec) {
    // Insert a few thousand objects one by one into each tree variant and
    // count the object accesses signature maintenance causes.
    let n = (spec.num_objects / 40).clamp(500, 5_000);
    let objs: Vec<SpatialObject<2>> = spec.generate().take(n).collect();
    println!("\n### Ablation A1: maintenance cost of {n} incremental inserts + 10% deletes\n");
    println!(
        "{:<22} {:>12} {:>14} {:>14}",
        "variant", "wall (ms)", "object loads", "tree blocks"
    );

    let store = Arc::new(ObjectStore::<2, _>::create(MemDevice::new()));
    let ptrs: Vec<_> = objs.iter().map(|o| store.append(o).unwrap()).collect();
    store.flush().unwrap();
    let vocab_size = spec.vocab_size;
    let cfg = RTreeConfig::for_dims::<2>();

    let scheme = SignatureScheme::from_bytes_len(RESTAURANTS_SIG_DEFAULT, 4, 1);
    let mk_schemes = move || {
        MultiLevelScheme::new(
            RESTAURANTS_SIG_DEFAULT,
            4,
            1,
            cfg.max_entries,
            spec.avg_words_per_object as f64,
            vocab_size,
        )
    };

    let run = |label: &str, wall: f64, loads: u64, blocks: u64| {
        println!("{label:<22} {wall:>12.1} {loads:>14} {blocks:>14}");
    };

    // IR²-Tree.
    {
        let tracked = TrackedDevice::new(MemDevice::new());
        let stats = tracked.stats();
        let tree = RTree::create(tracked, cfg, Ir2Payload::new(scheme)).unwrap();
        let before_loads = store.loads();
        let t = Instant::now();
        for (p, o) in ptrs.iter().zip(&objs) {
            insert_object(&tree, *p, o).unwrap();
        }
        for (p, o) in ptrs.iter().zip(&objs).take(n / 10) {
            ir2tree::irtree::delete_object(&tree, *p, o).unwrap();
        }
        run(
            "IR2-Tree",
            t.elapsed().as_secs_f64() * 1e3,
            store.loads() - before_loads,
            stats.snapshot().total(),
        );
    }
    // MIR²-Tree, fast path (OR-lift on pure inserts).
    {
        let tracked = TrackedDevice::new(MemDevice::new());
        let stats = tracked.stats();
        let ops = MirPayload::new(mk_schemes(), Arc::clone(&store) as Arc<dyn ObjectSource<2>>);
        let tree = RTree::create(tracked, cfg, ops).unwrap();
        let before_loads = store.loads();
        let t = Instant::now();
        for (p, o) in ptrs.iter().zip(&objs) {
            insert_object(&tree, *p, o).unwrap();
        }
        for (p, o) in ptrs.iter().zip(&objs).take(n / 10) {
            ir2tree::irtree::delete_object(&tree, *p, o).unwrap();
        }
        run(
            "MIR2-Tree",
            t.elapsed().as_secs_f64() * 1e3,
            store.loads() - before_loads,
            stats.snapshot().total(),
        );
    }
    // MIR²-Tree, the paper's literal rule (recompute ancestors per insert).
    {
        let tracked = TrackedDevice::new(MemDevice::new());
        let stats = tracked.stats();
        let ops =
            MirPayload::new(mk_schemes(), Arc::clone(&store) as Arc<dyn ObjectSource<2>>).strict();
        let tree = RTree::create(tracked, cfg, ops).unwrap();
        let before_loads = store.loads();
        let t = Instant::now();
        for (p, o) in ptrs.iter().zip(&objs) {
            insert_object(&tree, *p, o).unwrap();
        }
        for (p, o) in ptrs.iter().zip(&objs).take(n / 10) {
            ir2tree::irtree::delete_object(&tree, *p, o).unwrap();
        }
        run(
            "MIR2-Tree (strict)",
            t.elapsed().as_secs_f64() * 1e3,
            store.loads() - before_loads,
            stats.snapshot().total(),
        );
    }
}

// ---------------------------------------------------------------------
// Ablation A2: LRU buffer pool in front of the IR²-Tree.
// ---------------------------------------------------------------------

fn ablation_buffer(bench: &BenchDb, queries: usize) {
    // Rebuild a standalone IR²-Tree behind buffer pools of varying size and
    // replay the same workload; report post-cache block accesses.
    let spec = &bench.spec;
    let n = spec.num_objects.min(20_000);
    let objs: Vec<SpatialObject<2>> = spec.generate().take(n).collect();
    let store = Arc::new(ObjectStore::<2, _>::create(MemDevice::new()));
    let items: Vec<_> = objs
        .iter()
        .map(|o| (store.append(o).unwrap(), o.clone()))
        .collect();
    store.flush().unwrap();

    println!("\n### Ablation A2: IR2-Tree block accesses vs LRU buffer-pool size ({n} objects)\n");
    println!(
        "{:<16} {:>10} {:>10} {:>12}",
        "pool (blocks)", "random", "seq", "sim. ms"
    );
    let w = workload(spec, queries, 2, 10);
    for pool_blocks in [0usize, 64, 256, 1024, 4096] {
        let tracked = TrackedDevice::new(MemDevice::new());
        let stats = tracked.stats();
        let pool = BufferPool::new(tracked, pool_blocks);
        let scheme = SignatureScheme::from_bytes_len(RESTAURANTS_SIG_DEFAULT, 4, 1);
        let tree =
            RTree::create(pool, RTreeConfig::for_dims::<2>(), Ir2Payload::new(scheme)).unwrap();
        ir2tree::irtree::bulk_load_objects(&tree, items.clone()).unwrap();
        stats.reset();
        for q in &w {
            let _ = distance_first_topk(&tree, store.as_ref(), q).unwrap();
        }
        let io = stats.snapshot();
        let per_query = 1.0 / w.len() as f64;
        println!(
            "{:<16} {:>10.1} {:>10.1} {:>12.1}",
            pool_blocks,
            io.random() as f64 * per_query,
            io.sequential() as f64 * per_query,
            CostModel::HDD_10K.time(io).as_secs_f64() * 1e3 * per_query,
        );
    }
}

// ---------------------------------------------------------------------
// Ablation A4: grid-based spatio-textual baseline (Vaid et al. style) vs
// the IR²-Tree with the same signature scheme.
// ---------------------------------------------------------------------

fn ablation_grid(spec: &DatasetSpec, queries: usize) {
    use ir2_grid::{GridConfig, GridIndex};
    use ir2tree::text::tokenize;

    let n = spec.num_objects.min(40_000);
    println!("\n### Ablation A4: uniform grid (related work) vs IR2-Tree ({n} objects)\n");
    let objs: Vec<SpatialObject<2>> = spec.generate().take(n).collect();
    let store = Arc::new(ObjectStore::<2, _>::create(TrackedDevice::new(
        MemDevice::new(),
    )));
    let mut items = Vec::with_capacity(n);
    for o in &objs {
        let ptr = store.append(o).unwrap();
        let mut terms: Vec<String> = tokenize(&o.text).collect();
        terms.sort_unstable();
        terms.dedup();
        items.push((ptr, o.point, terms));
    }
    store.flush().unwrap();
    let scheme = SignatureScheme::from_bytes_len(RESTAURANTS_SIG_DEFAULT, 4, 1);

    // Grid sized for ~capacity objects per cell, like a leaf node.
    let grid_dev = TrackedDevice::new(MemDevice::new());
    let grid_stats = grid_dev.stats();
    let grid = GridIndex::build(
        grid_dev,
        GridConfig::for_objects(n, RTreeConfig::for_dims::<2>().max_entries, scheme),
        &items,
    )
    .unwrap();

    // IR²-Tree with the same scheme over the same store.
    let tree_dev = TrackedDevice::new(MemDevice::new());
    let tree_stats = tree_dev.stats();
    let tree = RTree::create(
        tree_dev,
        RTreeConfig::for_dims::<2>(),
        Ir2Payload::new(scheme),
    )
    .unwrap();
    tree.bulk_load(
        items
            .iter()
            .map(|(p, pt, terms)| {
                let sig = scheme.sign_terms(terms.iter().map(String::as_str));
                let mut bytes = vec![0u8; scheme.byte_len()];
                sig.write_bytes(&mut bytes);
                (p.0, ir2tree::geo::Rect::from_point(*pt), bytes)
            })
            .collect(),
    )
    .unwrap();

    let w = workload(spec, queries, 2, 10);
    println!(
        "{:<12} {:>10} {:>10} {:>14} {:>12}",
        "structure", "random", "seq", "object loads", "size (MB)"
    );
    // Grid.
    grid_stats.reset();
    store.reset_loads();
    let obj_stats_handle = {
        // object loads counted via the store's loads counter
        let mut checked = 0u64;
        for q in &w {
            let (_, c) = grid.topk(store.as_ref(), q).unwrap();
            checked += c.candidates_checked;
        }
        checked
    };
    let gio = grid_stats.snapshot();
    let per = 1.0 / w.len() as f64;
    println!(
        "{:<12} {:>10.1} {:>10.1} {:>14.1} {:>12.1}",
        "grid",
        gio.random() as f64 * per,
        gio.sequential() as f64 * per,
        obj_stats_handle as f64 * per,
        grid.size_bytes() as f64 / 1_048_576.0,
    );
    // IR²-Tree.
    tree_stats.reset();
    let mut checked = 0u64;
    for q in &w {
        let (_, c) = distance_first_topk(&tree, store.as_ref(), q).unwrap();
        checked += c.candidates_checked;
    }
    let tio = tree_stats.snapshot();
    println!(
        "{:<12} {:>10.1} {:>10.1} {:>14.1} {:>12.1}",
        "IR2-Tree",
        tio.random() as f64 * per,
        tio.sequential() as f64 * per,
        checked as f64 * per,
        tree.size_bytes() as f64 / 1_048_576.0,
    );

    // Sequential signature file (the flat [FC84] ancestor).
    let ssf_dev = TrackedDevice::new(MemDevice::new());
    let ssf_stats = ssf_dev.stats();
    let ssf = ir2_sigscan::SignatureFile::build(
        ssf_dev,
        scheme,
        items.iter().map(|(p, _, terms)| (*p, terms.as_slice())),
    )
    .unwrap();
    ssf_stats.reset();
    let mut checked = 0u64;
    for q in &w {
        let (_, c) = ssf.topk(store.as_ref(), q).unwrap();
        checked += c.candidates_checked;
    }
    let sio = ssf_stats.snapshot();
    println!(
        "{:<12} {:>10.1} {:>10.1} {:>14.1} {:>12.1}",
        "SSF (flat)",
        sio.random() as f64 * per,
        sio.sequential() as f64 * per,
        checked as f64 * per,
        ssf.size_bytes() as f64 / 1_048_576.0,
    );
}

// ---------------------------------------------------------------------
// Ablation A5: quadratic vs linear node splitting (build cost vs query
// quality). The paper uses quadratic; linear is Guttman's cheaper variant.
// ---------------------------------------------------------------------

fn ablation_split(spec: &DatasetSpec, queries: usize) {
    use ir2tree::text::tokenize;
    let n = spec.num_objects.min(20_000);
    println!("\n### Ablation A5: quadratic vs linear split ({n} objects, incremental build)\n");
    let objs: Vec<SpatialObject<2>> = spec.generate().take(n).collect();
    let store = Arc::new(ObjectStore::<2, _>::create(MemDevice::new()));
    let scheme = SignatureScheme::from_bytes_len(RESTAURANTS_SIG_DEFAULT, 4, 1);
    let mut items = Vec::with_capacity(n);
    for o in &objs {
        let ptr = store.append(o).unwrap();
        let mut terms: Vec<String> = tokenize(&o.text).collect();
        terms.sort_unstable();
        terms.dedup();
        let sig = scheme.sign_terms(terms.iter().map(String::as_str));
        let mut bytes = vec![0u8; scheme.byte_len()];
        sig.write_bytes(&mut bytes);
        items.push((ptr.0, ir2tree::geo::Rect::from_point(o.point), bytes));
    }
    store.flush().unwrap();

    println!(
        "{:<12} {:>14} {:>12} {:>12} {:>14}",
        "split", "build (ms)", "q random", "q seq", "object loads"
    );
    let w = workload(spec, queries, 2, 10);
    for (label, cfg) in [
        ("quadratic", RTreeConfig::for_dims::<2>()),
        ("linear", RTreeConfig::for_dims::<2>().with_linear_split()),
    ] {
        let tracked = TrackedDevice::new(MemDevice::new());
        let stats = tracked.stats();
        let tree = RTree::create(tracked, cfg, Ir2Payload::new(scheme)).unwrap();
        let t = Instant::now();
        for (c, r, p) in &items {
            tree.insert(*c, *r, p).unwrap();
        }
        let build_ms = t.elapsed().as_secs_f64() * 1e3;
        stats.reset();
        let mut loads = 0u64;
        for q in &w {
            let (_, c) = distance_first_topk(&tree, store.as_ref(), q).unwrap();
            loads += c.candidates_checked;
        }
        let io = stats.snapshot();
        let per = 1.0 / w.len() as f64;
        println!(
            "{:<12} {:>14.1} {:>12.1} {:>12.1} {:>14.1}",
            label,
            build_ms,
            io.random() as f64 * per,
            io.sequential() as f64 * per,
            loads as f64 * per,
        );
    }
}

// ---------------------------------------------------------------------
// Ablation A3: general ranked top-k vs distance-first on the same keywords.
// ---------------------------------------------------------------------

fn ablation_general(bench: &BenchDb, queries: usize) {
    println!("\n### Ablation A3: distance-first vs general ranked top-k (IR2-Tree)\n");
    println!(
        "{:<18} {:>12} {:>12} {:>14}",
        "mode", "random", "seq", "object loads"
    );
    let w = workload(&bench.spec, queries, 2, 10);
    let m = run_distance_first(bench, Algorithm::Ir2, &w);
    println!(
        "{:<18} {:>12.1} {:>12.1} {:>14.1}",
        "distance-first", m.random, m.sequential, m.object_loads
    );

    let scorer = SaturatingTfIdf;
    let rank = LinearRank {
        ir_weight: 1.0,
        dist_weight: 0.05,
    };
    let mut random = 0.0;
    let mut seq = 0.0;
    let mut loads = 0.0;
    for q in &w {
        let gq = GeneralQuery::new(q.point, &q.keywords, q.k);
        let rep = bench
            .db
            .general_ranked(Algorithm::Ir2, &gq, &scorer, &rank)
            .unwrap();
        random += rep.io.random() as f64;
        seq += rep.io.sequential() as f64;
        loads += rep.object_loads as f64;
    }
    let n = w.len() as f64;
    println!(
        "{:<18} {:>12.1} {:>12.1} {:>14.1}",
        "general (tf-idf)",
        random / n,
        seq / n,
        loads / n
    );
}
