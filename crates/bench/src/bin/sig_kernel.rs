//! Containment-kernel speedup guard: scalar per-entry tests vs the
//! columnar `SignatureBlock` kernels, at the paper's signature lengths.
//!
//! Two micro scenarios per length (8 B Restaurants, 189 B Hotels):
//!
//! * **tree path** — a node's worth of decoded `Signature`s tested one by
//!   one (`Signature::contains`) vs one `SignatureBlock::matches_mask_into`
//!   pass into a reused bitmask;
//! * **SSF path** — page-packed serialized entries decoded per entry
//!   (`Signature::from_bytes` + `contains`) vs the zero-copy
//!   `bytes_contain` test against the resident bytes.
//!
//! Every pass re-verifies that kernel and scalar verdicts are identical
//! bit for bit; the timings are best-of-R. `--assert-min-speedup X` gates
//! the *minimum* micro speedup across all four cells.
//!
//! A macro sweep then runs a warm distance-first top-k workload twice on
//! one cached database — kernels on (default) vs forced scalar
//! (`ScalarKernelGuard`) — asserting bitwise-identical results and
//! reporting the end-to-end delta (`--assert-max-macro-regression PCT`
//! gates it).
//!
//! Usage:
//!   sig_kernel [--entries N] [--queries N] [--reps R] [--scale F] [--k K]
//!              [--cache NODES] [--assert-min-speedup X]
//!              [--assert-max-macro-regression PCT] [--out FILE]

use std::time::Instant;

use ir2_bench::workload;
use ir2_datagen::DatasetSpec;
use ir2tree::model::DistanceFirstQuery;
use ir2tree::sigfile::{
    bytes_contain, EntryMask, ScalarKernelGuard, Signature, SignatureBlock, SignatureScheme,
};
use ir2tree::{Algorithm, DbConfig, DeviceSet, SpatialKeywordDb};

struct Args {
    entries: usize,
    queries: usize,
    reps: usize,
    scale: f64,
    k: usize,
    cache: usize,
    assert_min_speedup: Option<f64>,
    assert_max_macro_regression: Option<f64>,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        entries: 4096,
        queries: 128,
        reps: 9,
        scale: 0.02,
        k: 10,
        cache: 4096,
        assert_min_speedup: None,
        assert_max_macro_regression: None,
        out: "BENCH_sig_kernel.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut next = |what: &str| it.next().unwrap_or_else(|| panic!("{arg} needs {what}"));
        match arg.as_str() {
            "--entries" => args.entries = next("N").parse().expect("entry count"),
            "--queries" => args.queries = next("N").parse().expect("query count"),
            "--reps" => args.reps = next("R").parse().expect("rep count"),
            "--scale" => args.scale = next("F").parse().expect("scale factor"),
            "--k" => args.k = next("K").parse().expect("k"),
            "--cache" => args.cache = next("NODES").parse().expect("cache size"),
            "--assert-min-speedup" => {
                args.assert_min_speedup = Some(next("X").parse().expect("speedup factor"))
            }
            "--assert-max-macro-regression" => {
                args.assert_max_macro_regression = Some(next("PCT").parse().expect("percent"))
            }
            "--out" => args.out = next("FILE"),
            other => panic!("unknown argument `{other}`"),
        }
    }
    args
}

/// Deterministic entry signatures: each "document" signs a handful of
/// synthetic terms (1–8, varying by index). No RNG — bins cannot use the
/// dev-only `rand`, and determinism keeps runs comparable.
fn make_entries(scheme: &SignatureScheme, n: usize) -> Vec<Signature> {
    (0..n)
        .map(|i| {
            let terms: Vec<String> = (0..(i % 8 + 1))
                .map(|j| format!("term-{}-{j}", i % 197))
                .collect();
            scheme.sign_terms(terms.iter().map(String::as_str))
        })
        .collect()
}

/// Query signatures: a mix of present terms (will match some entries and
/// exercise the full-row path) and absent terms (early mismatch).
fn make_queries(scheme: &SignatureScheme, n: usize) -> Vec<Signature> {
    (0..n)
        .map(|i| {
            if i % 3 == 0 {
                scheme.sign_term(&format!("term-{}-0", i % 197))
            } else {
                scheme.sign_term(&format!("absent-{i}"))
            }
        })
        .collect()
}

fn best_of(reps: usize, mut pass: impl FnMut() -> f64) -> f64 {
    pass(); // warm-up
    (0..reps.max(1))
        .map(|_| pass())
        .fold(f64::INFINITY, f64::min)
}

/// One micro cell: (scalar_secs, kernel_secs, speedup), with verdicts
/// cross-checked every pass.
struct MicroCell {
    scalar_ms: f64,
    kernel_ms: f64,
    speedup: f64,
}

/// Tree path: per-entry `contains` over decoded signatures vs one batched
/// `matches_mask_into` pass.
fn micro_tree(sigs: &[Signature], queries: &[Signature], reps: usize) -> MicroCell {
    let bits = queries[0].bits();
    let block = SignatureBlock::from_signatures(bits, sigs.iter());
    // Reference verdicts once, for the per-pass exactness check.
    let truth: Vec<u64> = queries
        .iter()
        .map(|q| sigs.iter().filter(|s| s.contains(q)).count() as u64)
        .collect();

    let scalar = best_of(reps, || {
        let t0 = Instant::now();
        let mut total = 0u64;
        for (qi, q) in queries.iter().enumerate() {
            let mut hits = 0u64;
            for s in sigs {
                hits += u64::from(s.contains(q));
            }
            assert_eq!(hits, truth[qi], "scalar verdicts drifted");
            total += hits;
        }
        std::hint::black_box(total);
        t0.elapsed().as_secs_f64()
    });

    let mut mask = EntryMask::new();
    let kernel = best_of(reps, || {
        let t0 = Instant::now();
        let mut total = 0u64;
        for (qi, q) in queries.iter().enumerate() {
            block.matches_mask_into(q, &mut mask);
            let hits = mask.count_ones() as u64;
            assert_eq!(hits, truth[qi], "kernel verdicts diverged from scalar");
            total += hits;
        }
        std::hint::black_box(total);
        t0.elapsed().as_secs_f64()
    });

    // Full per-entry agreement (not just counts) on the last query set.
    for q in queries {
        let m = block.matches_mask(q);
        for (i, s) in sigs.iter().enumerate() {
            assert_eq!(m.get(i), s.contains(q), "verdict mismatch at entry {i}");
        }
    }

    MicroCell {
        scalar_ms: scalar * 1e3,
        kernel_ms: kernel * 1e3,
        speedup: scalar / kernel,
    }
}

/// SSF path: page-resident serialized entries, decode-then-contains vs
/// zero-copy `bytes_contain`.
fn micro_ssf(sigs: &[Signature], queries: &[Signature], reps: usize) -> MicroCell {
    let bits = queries[0].bits();
    let byte_len = sigs[0].byte_len();
    // One packed buffer, like an SSF page run.
    let mut packed = vec![0u8; sigs.len() * byte_len];
    for (i, s) in sigs.iter().enumerate() {
        s.write_bytes(&mut packed[i * byte_len..(i + 1) * byte_len]);
    }
    let truth: Vec<u64> = queries
        .iter()
        .map(|q| sigs.iter().filter(|s| s.contains(q)).count() as u64)
        .collect();

    let scalar = best_of(reps, || {
        let t0 = Instant::now();
        let mut total = 0u64;
        for (qi, q) in queries.iter().enumerate() {
            let mut hits = 0u64;
            for e in 0..sigs.len() {
                let sig = Signature::from_bytes(bits, &packed[e * byte_len..(e + 1) * byte_len]);
                hits += u64::from(sig.contains(q));
            }
            assert_eq!(hits, truth[qi], "scalar verdicts drifted");
            total += hits;
        }
        std::hint::black_box(total);
        t0.elapsed().as_secs_f64()
    });

    let kernel = best_of(reps, || {
        let t0 = Instant::now();
        let mut total = 0u64;
        for (qi, q) in queries.iter().enumerate() {
            let mut hits = 0u64;
            for e in 0..sigs.len() {
                hits += u64::from(bytes_contain(&packed[e * byte_len..(e + 1) * byte_len], q));
            }
            assert_eq!(hits, truth[qi], "kernel verdicts diverged from scalar");
            total += hits;
        }
        std::hint::black_box(total);
        t0.elapsed().as_secs_f64()
    });

    MicroCell {
        scalar_ms: scalar * 1e3,
        kernel_ms: kernel * 1e3,
        speedup: scalar / kernel,
    }
}

type MemDb = SpatialKeywordDb<ir2tree::storage::MemDevice>;

fn macro_pass(db: &MemDb, queries: &[DistanceFirstQuery<2>]) -> (f64, Vec<Vec<(u64, u64)>>) {
    let t0 = Instant::now();
    let results: Vec<Vec<(u64, u64)>> = queries
        .iter()
        .map(|q| {
            db.distance_first(Algorithm::Ir2, q)
                .expect("query")
                .results
                .iter()
                .map(|(o, d)| (o.id, d.to_bits()))
                .collect()
        })
        .collect();
    (t0.elapsed().as_secs_f64(), results)
}

fn main() {
    let args = parse_args();

    // Paper operating points: Restaurants 8 B, Hotels 189 B.
    let lengths: [(usize, &str); 2] = [(8, "8B"), (189, "189B")];
    let mut cells: Vec<(String, MicroCell)> = Vec::new();
    for (bytes, label) in lengths {
        let scheme = SignatureScheme::from_bytes_len(bytes, 4, 9);
        let sigs = make_entries(&scheme, args.entries);
        let queries = make_queries(&scheme, args.queries);
        cells.push((
            format!("tree/{label}"),
            micro_tree(&sigs, &queries, args.reps),
        ));
        cells.push((
            format!("ssf/{label}"),
            micro_ssf(&sigs, &queries, args.reps),
        ));
    }

    println!(
        "# containment kernels: {} entries x {} queries, best of {} reps",
        args.entries, args.queries, args.reps
    );
    println!(
        "{:>10} | {:>11} | {:>11} | {:>8}",
        "cell", "scalar (ms)", "kernel (ms)", "speedup"
    );
    println!("{}", "-".repeat(50));
    for (name, c) in &cells {
        println!(
            "{:>10} | {:>11.3} | {:>11.3} | {:>7.2}x",
            name, c.scalar_ms, c.kernel_ms, c.speedup
        );
    }
    let min_speedup = cells
        .iter()
        .map(|(_, c)| c.speedup)
        .fold(f64::INFINITY, f64::min);

    // Macro: warm top-k sweep, kernels on vs forced scalar, one database.
    let spec = DatasetSpec::restaurants().scaled(args.scale);
    eprintln!("[build] {} ({} objects)…", spec.name, spec.num_objects);
    let db = SpatialKeywordDb::build(
        DeviceSet::in_memory(),
        spec.generate(),
        DbConfig::default().with_node_cache(args.cache),
    )
    .expect("build");
    let queries = workload(&spec, args.queries, 2, args.k);

    let warm = |db: &MemDb| {
        macro_pass(db, &queries); // warm the cache and decorations
        let mut best = f64::INFINITY;
        let mut out = Vec::new();
        for _ in 0..args.reps.max(1) {
            let (t, r) = macro_pass(db, &queries);
            if t < best {
                best = t;
            }
            out = r;
        }
        (best, out)
    };
    let (t_kernel, r_kernel) = warm(&db);
    let (t_scalar, r_scalar) = {
        let _g = ScalarKernelGuard::new();
        warm(&db)
    };
    assert_eq!(
        r_kernel, r_scalar,
        "kernel and scalar warm top-k answers must be bit-identical"
    );
    let macro_speedup = t_scalar / t_kernel;
    let macro_regression_pct = (t_kernel / t_scalar - 1.0) * 100.0;
    println!(
        "# macro warm top-k ({} queries x k={}): scalar {:.2} ms, kernel {:.2} ms ({:.2}x, results identical)",
        queries.len(),
        args.k,
        t_scalar * 1e3,
        t_kernel * 1e3,
        macro_speedup
    );

    let cell_json: Vec<String> = cells
        .iter()
        .map(|(name, c)| {
            format!(
                "    {{\"cell\": \"{name}\", \"scalar_ms\": {:.4}, \"kernel_ms\": {:.4}, \"speedup\": {:.3}}}",
                c.scalar_ms, c.kernel_ms, c.speedup
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"sig_kernel\",\n  \"entries\": {},\n  \"queries\": {},\n  \"reps\": {},\n  \"micro\": [\n{}\n  ],\n  \"min_micro_speedup\": {:.3},\n  \"macro\": {{\"dataset\": \"{}\", \"objects\": {}, \"k\": {}, \"scalar_ms\": {:.3}, \"kernel_ms\": {:.3}, \"speedup\": {:.3}, \"results_identical\": true}}\n}}\n",
        args.entries,
        args.queries,
        args.reps,
        cell_json.join(",\n"),
        min_speedup,
        spec.name,
        spec.num_objects,
        args.k,
        t_scalar * 1e3,
        t_kernel * 1e3,
        macro_speedup,
    );
    std::fs::write(&args.out, json).expect("write json");
    eprintln!("[out] wrote {}", args.out);

    if let Some(min) = args.assert_min_speedup {
        assert!(
            min_speedup >= min,
            "min micro containment speedup {min_speedup:.2}x is below the {min}x floor"
        );
        eprintln!("[gate] min micro speedup {min_speedup:.2}x ≥ {min}x — ok");
    }
    if let Some(max) = args.assert_max_macro_regression {
        assert!(
            macro_regression_pct <= max,
            "macro warm-path regression {macro_regression_pct:.1}% exceeds the {max}% budget"
        );
        eprintln!("[gate] macro delta {macro_regression_pct:+.1}% ≤ {max}% — ok");
    }
}
