//! Robustness guard for replicated shards: failover exactness, clean-path
//! router overhead, and hedged tail latency.
//!
//! Three phases over one dataset at S = 4 shards:
//!
//! * **clean path**: the same workload through an R = 1 and an R = 2
//!   database built from the same bytes. Replication must cost nothing
//!   when nothing fails — the router just picks the primary —
//!   (`--assert-max-overhead-pct X` turns the ratio into a hard gate)
//!   and the answers must match bit for bit.
//! * **failover**: every shard's primary replica is killed mid-run
//!   (one of them mid-*query* via an armed operation-counter trip).
//!   Zero failed queries and bitwise-exact answers are asserted
//!   unconditionally — that is the acceptance criterion, not a tunable.
//! * **hedged tail**: every shard's *primary* replica is degraded with
//!   seeded 1-in-8 per-operation stalls (the tail-at-scale scenario: one
//!   slow node, and the router has no way to know which). The parallel
//!   drain is measured with and without hedging; the hedge fires after
//!   `--hedge-us` and drains the clean secondary, so hedging should cut
//!   p99 sharply while leaving answers identical (`--assert-hedge-p99`
//!   gates hedged p99 < unhedged p99). Cancellation is cooperative at
//!   node granularity — a hedge cannot interrupt one in-flight blocked
//!   read, it stops the slow replica from being *waited on* further.
//!
//! Usage:
//!   replica_failover [--scale F] [--queries N] [--k K] [--keywords W]
//!                    [--reps R] [--sig-bytes B] [--stall-us U]
//!                    [--stall-p P] [--hedge-us U]
//!                    [--assert-max-overhead-pct X] [--assert-hedge-p99]
//!                    [--out FILE]

use std::sync::Arc;
use std::time::{Duration, Instant};

use ir2_bench::workload;
use ir2_datagen::DatasetSpec;
use ir2tree::model::DistanceFirstQuery;
use ir2tree::storage::testing::{KillSwitch, KillableDevice, StallDevice};
use ir2tree::storage::MemDevice;
use ir2tree::{Algorithm, DbConfig, DeviceSet, RetryDevice, ShardedDb};

const SHARDS: usize = 4;
const REPLICAS: usize = 2;

struct Args {
    scale: f64,
    queries: usize,
    k: usize,
    keywords: usize,
    reps: usize,
    sig_bytes: usize,
    stall_us: u64,
    stall_p: f64,
    hedge_us: u64,
    assert_max_overhead_pct: Option<f64>,
    assert_hedge_p99: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.02,
        queries: 96,
        k: 10,
        keywords: 2,
        reps: 5,
        sig_bytes: 32,
        // Stalls must dwarf per-node CPU for the tail to be stall-bound
        // (the regime hedging targets) — 5 ms ≈ a degraded-disk seek.
        stall_us: 5000,
        stall_p: 1.0 / 8.0,
        hedge_us: 500,
        assert_max_overhead_pct: None,
        assert_hedge_p99: false,
        out: "BENCH_replica_failover.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut next = |what: &str| it.next().unwrap_or_else(|| panic!("{arg} needs {what}"));
        match arg.as_str() {
            "--scale" => args.scale = next("F").parse().expect("scale factor"),
            "--queries" => args.queries = next("N").parse().expect("query count"),
            "--k" => args.k = next("K").parse().expect("k"),
            "--keywords" => args.keywords = next("W").parse().expect("keyword count"),
            "--reps" => args.reps = next("R").parse().expect("rep count"),
            "--sig-bytes" => args.sig_bytes = next("B").parse().expect("signature bytes"),
            "--stall-us" => args.stall_us = next("U").parse().expect("stall microseconds"),
            "--stall-p" => args.stall_p = next("P").parse().expect("stall probability"),
            "--hedge-us" => args.hedge_us = next("U").parse().expect("hedge microseconds"),
            "--assert-max-overhead-pct" => {
                args.assert_max_overhead_pct = Some(next("X").parse().expect("percent"))
            }
            "--assert-hedge-p99" => args.assert_hedge_p99 = true,
            "--out" => args.out = next("FILE"),
            other => panic!("unknown argument `{other}`"),
        }
    }
    args
}

type Truth = Vec<Vec<(u64, u64)>>;

fn results_of<D: ir2tree::storage::BlockDevice>(
    db: &ShardedDb<D>,
    q: &DistanceFirstQuery<2>,
) -> Vec<(u64, u64)> {
    db.distance_first(Algorithm::Ir2, q)
        .expect("query")
        .results
        .iter()
        .map(|(o, d)| (o.id, d.to_bits()))
        .collect()
}

/// One timed pass of the whole sequential-merge workload.
fn sweep_once<D: ir2tree::storage::BlockDevice>(
    db: &ShardedDb<D>,
    queries: &[DistanceFirstQuery<2>],
) -> f64 {
    let t0 = Instant::now();
    for q in queries {
        let rep = db.distance_first(Algorithm::Ir2, q).expect("query");
        std::hint::black_box(rep.results.len());
    }
    t0.elapsed().as_secs_f64()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let args = parse_args();
    let spec = DatasetSpec::restaurants().scaled(args.scale);
    let config = DbConfig {
        sig_bytes: args.sig_bytes,
        ..DbConfig::default()
    };
    let objects: Vec<_> = spec.generate().collect();
    let queries = workload(&spec, args.queries, args.keywords, args.k);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    eprintln!(
        "[build] {} ({} objects) at {SHARDS} shards × {REPLICAS} replicas…",
        spec.name,
        objects.len(),
    );
    // One replicated build in shared memory; every phase reopens the same
    // bytes behind a different device stack.
    let raw: Vec<Vec<DeviceSet<Arc<MemDevice>>>> = (0..SHARDS)
        .map(|_| {
            (0..REPLICAS)
                .map(|_| DeviceSet::in_memory().map(|_role, d| Arc::new(d)))
                .collect()
        })
        .collect();
    drop(
        ShardedDb::build_replicated(raw.clone(), objects.clone(), config.clone())
            .expect("replicated build"),
    );

    let single: ShardedDb<Arc<MemDevice>> =
        ShardedDb::from_replica_groups(raw.iter().map(|g| vec![g[0].clone()]).collect())
            .expect("open R=1");
    let duo: ShardedDb<Arc<MemDevice>> =
        ShardedDb::from_replica_groups(raw.clone()).expect("open R=2");

    let truth: Truth = queries.iter().map(|q| results_of(&single, q)).collect();

    // ---- phase 1: clean-path overhead -------------------------------
    for (q, t) in queries.iter().zip(&truth) {
        assert_eq!(&results_of(&duo, q), t, "R=2 clean path diverged");
    }
    // Interleave the passes so clock/cache drift hits both sides equally;
    // compare best-of-reps (the drift-free floor of each engine).
    sweep_once(&single, &queries);
    sweep_once(&duo, &queries);
    let (mut base_s, mut duo_s) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..args.reps.max(1) {
        base_s = base_s.min(sweep_once(&single, &queries));
        duo_s = duo_s.min(sweep_once(&duo, &queries));
    }
    let overhead_pct = (duo_s / base_s - 1.0) * 100.0;
    eprintln!(
        "[clean] R=1 {:.2} ms, R=2 {:.2} ms ({overhead_pct:+.2}% router overhead)",
        base_s * 1e3,
        duo_s * 1e3
    );

    // ---- phase 2: kill one replica per shard mid-run ----------------
    let kills: Vec<Vec<KillSwitch>> = (0..SHARDS)
        .map(|_| (0..REPLICAS).map(|_| KillSwitch::new()).collect())
        .collect();
    let killable: ShardedDb<RetryDevice<KillableDevice<Arc<MemDevice>>>> =
        ShardedDb::from_replica_groups(
            raw.iter()
                .zip(&kills)
                .map(|(group, ks)| {
                    group
                        .iter()
                        .zip(ks)
                        .map(|(set, k)| set.clone().map(|_role, d| RetryDevice::new(k.wrap(d))))
                        .collect()
                })
                .collect(),
        )
        .expect("open killable");
    let mut failed = 0usize;
    let mut diverged = 0usize;
    for (qi, (q, t)) in queries.iter().zip(&truth).enumerate() {
        if qi == queries.len() / 2 {
            // Shard 0's primary dies mid-query (armed a few operations
            // ahead); every other shard's primary dies right now.
            kills[0][0].kill_after(kills[0][0].ops() + 40);
            for ks in kills.iter().skip(1) {
                ks[0].kill();
            }
        }
        match killable.distance_first(Algorithm::Ir2, q) {
            Ok(rep) => {
                let got: Vec<(u64, u64)> = rep
                    .results
                    .iter()
                    .map(|(o, d)| (o.id, d.to_bits()))
                    .collect();
                if &got != t {
                    diverged += 1;
                }
            }
            Err(_) => failed += 1,
        }
    }
    assert_eq!(failed, 0, "failover must leave zero failed queries");
    assert_eq!(diverged, 0, "failover must not change any answer");
    let failover_metrics = killable.metrics_prometheus();
    let failovers: u64 = failover_metrics
        .lines()
        .find_map(|l| l.strip_prefix("replica_failovers_total "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);
    eprintln!(
        "[failover] {} queries, 0 failed, 0 diverged, {failovers} shard failovers",
        queries.len()
    );
    assert!(
        failovers > 0,
        "the kill schedule must actually trip failovers"
    );

    // ---- phase 3: hedged tail latency under injected stalls ---------
    let stall = Duration::from_micros(args.stall_us);
    let hedge = Duration::from_micros(args.hedge_us);
    let mut seed = 0x5EED_u64;
    // Only replica 0 of each shard is degraded; the secondaries are
    // clean. The router cannot tell — only the hedge routes around it.
    let stalled: ShardedDb<StallDevice<Arc<MemDevice>>> = ShardedDb::from_replica_groups(
        raw.iter()
            .map(|group| {
                group
                    .iter()
                    .enumerate()
                    .map(|(m, set)| {
                        seed += 1;
                        let (s, p) = (seed, if m == 0 { args.stall_p } else { 0.0 });
                        set.clone().map(|_role, d| StallDevice::new(d, p, stall, s))
                    })
                    .collect()
            })
            .collect(),
    )
    .expect("open stalled");
    let mut unhedged: Vec<f64> = Vec::new();
    let mut hedged: Vec<f64> = Vec::new();
    for rep in 0..args.reps.max(1) {
        for (q, t) in queries.iter().zip(&truth) {
            let t0 = Instant::now();
            let plain = stalled
                .distance_first_parallel(Algorithm::Ir2, q, SHARDS)
                .expect("query");
            unhedged.push(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            let fast = stalled
                .distance_first_hedged(Algorithm::Ir2, q, hedge)
                .expect("query");
            hedged.push(t0.elapsed().as_secs_f64());
            if rep == 0 {
                let a: Vec<(u64, u64)> = plain
                    .results
                    .iter()
                    .map(|(o, d)| (o.id, d.to_bits()))
                    .collect();
                let b: Vec<(u64, u64)> = fast
                    .results
                    .iter()
                    .map(|(o, d)| (o.id, d.to_bits()))
                    .collect();
                assert_eq!(&a, t, "stalled parallel diverged");
                assert_eq!(&b, t, "hedged diverged");
            }
        }
    }
    unhedged.sort_by(f64::total_cmp);
    hedged.sort_by(f64::total_cmp);
    let (u50, u99) = (percentile(&unhedged, 0.50), percentile(&unhedged, 0.99));
    let (h50, h99) = (percentile(&hedged, 0.50), percentile(&hedged, 0.99));
    let hedge_metrics = stalled.metrics_prometheus();
    let grab = |name: &str| -> u64 {
        hedge_metrics
            .lines()
            .find_map(|l| l.strip_prefix(name))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0)
    };
    let hedges = grab("replica_hedges_total ");
    let hedge_wins = grab("replica_hedge_wins_total ");
    eprintln!(
        "[hedge] unhedged p50 {:.2} ms / p99 {:.2} ms → hedged p50 {:.2} ms / p99 {:.2} ms \
         ({hedges} hedges, {hedge_wins} hedge wins)",
        u50 * 1e3,
        u99 * 1e3,
        h50 * 1e3,
        h99 * 1e3
    );

    println!(
        "# replicated shards ({} objects, {} queries x k={}, S={SHARDS} R={REPLICAS}, \
         {} core(s), best of {} reps)",
        objects.len(),
        queries.len(),
        args.k,
        cores,
        args.reps
    );
    println!(
        "{:<28} | {:>12} | {:>12}",
        "phase", "baseline", "replicated"
    );
    println!("{}", "-".repeat(60));
    println!(
        "{:<28} | {:>9.2} ms | {:>9.2} ms",
        "clean sweep (R=1 vs R=2)",
        base_s * 1e3,
        duo_s * 1e3
    );
    println!(
        "{:<28} | {:>12} | {:>12}",
        "failover sweep (kills)", "0 failed", "0 diverged"
    );
    println!(
        "{:<28} | {:>9.2} ms | {:>9.2} ms",
        "stalled p99 (plain/hedged)",
        u99 * 1e3,
        h99 * 1e3
    );

    let json = format!(
        "{{\n  \"benchmark\": \"replica_failover\",\n  \"dataset\": \"{}\",\n  \"objects\": {},\n  \"queries\": {},\n  \"k\": {},\n  \"reps\": {},\n  \"shards\": {SHARDS},\n  \"replicas\": {REPLICAS},\n  \"host_cores\": {cores},\n  \"clean_r1_ms\": {:.3},\n  \"clean_r2_ms\": {:.3},\n  \"clean_overhead_pct\": {:.3},\n  \"failover_queries\": {},\n  \"failover_failed\": {failed},\n  \"failover_diverged\": {diverged},\n  \"failover_count\": {failovers},\n  \"stall_p\": {},\n  \"stall_us\": {},\n  \"hedge_us\": {},\n  \"unhedged_p50_ms\": {:.3},\n  \"unhedged_p99_ms\": {:.3},\n  \"hedged_p50_ms\": {:.3},\n  \"hedged_p99_ms\": {:.3},\n  \"hedges\": {hedges},\n  \"hedge_wins\": {hedge_wins},\n  \"hedge_p99_speedup\": {:.3}\n}}\n",
        spec.name,
        objects.len(),
        queries.len(),
        args.k,
        args.reps,
        base_s * 1e3,
        duo_s * 1e3,
        overhead_pct,
        queries.len(),
        args.stall_p,
        args.stall_us,
        args.hedge_us,
        u50 * 1e3,
        u99 * 1e3,
        h50 * 1e3,
        h99 * 1e3,
        u99 / h99.max(1e-9),
    );
    std::fs::write(&args.out, json).expect("write json");
    eprintln!("[out] wrote {}", args.out);

    if let Some(max) = args.assert_max_overhead_pct {
        assert!(
            overhead_pct <= max,
            "clean-path replication overhead {overhead_pct:.2}% exceeds the {max}% ceiling"
        );
        eprintln!("[gate] clean-path overhead {overhead_pct:+.2}% ≤ {max}% — ok");
    }
    if args.assert_hedge_p99 {
        assert!(
            h99 < u99,
            "hedged p99 {:.2} ms is not below unhedged p99 {:.2} ms",
            h99 * 1e3,
            u99 * 1e3
        );
        eprintln!(
            "[gate] hedged p99 {:.2} ms < unhedged p99 {:.2} ms — ok",
            h99 * 1e3,
            u99 * 1e3
        );
    }
}
