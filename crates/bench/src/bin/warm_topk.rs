//! Warm-path speedup guard for the decoded-node cache.
//!
//! Runs one distance-first workload against two otherwise identical
//! in-memory databases — one bare, one with a decoded-node cache — and
//! reports three numbers:
//!
//! * **warm speedup**: repeat-pass wall time, bare vs cached. A warm
//!   cached visit skips the page checksum and the entry deserialization
//!   entirely, so this is the tentpole's payoff (target ≥ 1.5×;
//!   `--assert-min-speedup X` turns it into a hard gate).
//! * **cold overhead**: first-touch pass on a freshly reset cache vs
//!   bare. Every visit misses, so this prices the cache bookkeeping
//!   (shard lock + LRU insert) on the path that gains nothing (target
//!   ≤ 2%; `--assert-max-cold PCT` gates it).
//! * **prefetch delta**: warm pass with frontier-prefetch workers, as an
//!   informational column (on an in-memory device the decode is the only
//!   latency to hide, so this mostly prices the per-query thread scope).
//!
//! Results are asserted byte-identical between the two databases on every
//! pass — the cache may change where bytes come from, never the answer.
//!
//! Usage:
//!   warm_topk [--scale F] [--queries N] [--k K] [--reps R]
//!             [--sig-bytes B] [--cache NODES] [--prefetch WORKERS]
//!             [--assert-min-speedup X] [--assert-max-cold PCT] [--out FILE]

use std::time::Instant;

use ir2_bench::workload;
use ir2_datagen::DatasetSpec;
use ir2tree::model::DistanceFirstQuery;
use ir2tree::{Algorithm, DbConfig, DeviceSet, SpatialKeywordDb};

struct Args {
    scale: f64,
    queries: usize,
    k: usize,
    reps: usize,
    sig_bytes: usize,
    cache: usize,
    prefetch: usize,
    assert_min_speedup: Option<f64>,
    assert_max_cold: Option<f64>,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.02,
        queries: 96,
        k: 10,
        reps: 5,
        sig_bytes: 32,
        cache: 4096,
        prefetch: 2,
        assert_min_speedup: None,
        assert_max_cold: None,
        out: "BENCH_warm_topk.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut next = |what: &str| it.next().unwrap_or_else(|| panic!("{arg} needs {what}"));
        match arg.as_str() {
            "--scale" => args.scale = next("F").parse().expect("scale factor"),
            "--queries" => args.queries = next("N").parse().expect("query count"),
            "--k" => args.k = next("K").parse().expect("k"),
            "--reps" => args.reps = next("R").parse().expect("rep count"),
            "--sig-bytes" => args.sig_bytes = next("B").parse().expect("signature bytes"),
            "--cache" => args.cache = next("NODES").parse().expect("cache size"),
            "--prefetch" => args.prefetch = next("WORKERS").parse().expect("worker count"),
            "--assert-min-speedup" => {
                args.assert_min_speedup = Some(next("X").parse().expect("speedup factor"))
            }
            "--assert-max-cold" => {
                args.assert_max_cold = Some(next("PCT").parse().expect("percent"))
            }
            "--out" => args.out = next("FILE"),
            other => panic!("unknown argument `{other}`"),
        }
    }
    args
}

type MemDb = SpatialKeywordDb<ir2tree::storage::MemDevice>;

/// One full pass; returns wall seconds and asserts results match `truth`
/// when given.
fn one_pass(
    db: &MemDb,
    queries: &[DistanceFirstQuery<2>],
    truth: Option<&[Vec<(u64, u64)>]>,
) -> f64 {
    let t0 = Instant::now();
    for (i, q) in queries.iter().enumerate() {
        let r = db.distance_first(Algorithm::Ir2, q).expect("query");
        if let Some(truth) = truth {
            let got: Vec<(u64, u64)> = r.results.iter().map(|(o, d)| (o.id, d.to_bits())).collect();
            assert_eq!(got, truth[i], "cached answer diverged on query {i}");
        }
        std::hint::black_box(r.results.len());
    }
    t0.elapsed().as_secs_f64()
}

/// Best-of-R warm passes (cache state persists across reps).
fn measure_warm(
    db: &MemDb,
    queries: &[DistanceFirstQuery<2>],
    reps: usize,
    truth: Option<&[Vec<(u64, u64)>]>,
) -> f64 {
    one_pass(db, queries, truth); // warm-up
    (0..reps.max(1))
        .map(|_| one_pass(db, queries, truth))
        .fold(f64::INFINITY, f64::min)
}

/// Best-of-R cold passes: the cache is cleared before **every query**
/// with the timer stopped, so each timed query sees an empty cache and
/// every node visit misses (a distance-first traversal visits each node
/// at most once). This prices the per-visit miss tax — lookup, `Arc`
/// wrap, LRU insert — without the amortizable wipe bookkeeping.
fn measure_cold(db: &MemDb, queries: &[DistanceFirstQuery<2>], reps: usize) -> f64 {
    let cache = db.ir2_tree().node_cache().expect("cache attached").clone();
    let cold_pass = || {
        let mut total = 0.0;
        for q in queries {
            cache.clear(); // untimed: invalidation cost is the writer's
            let t0 = Instant::now();
            let r = db.distance_first(Algorithm::Ir2, q).expect("query");
            total += t0.elapsed().as_secs_f64();
            std::hint::black_box(r.results.len());
        }
        total
    };
    cold_pass(); // warm-up (branch predictors, allocator)
    let best = (0..reps.max(1))
        .map(|_| cold_pass())
        .fold(f64::INFINITY, f64::min);
    cache.clear(); // leave no pre-measurement state behind
    best
}

fn main() {
    let args = parse_args();
    let spec = DatasetSpec::restaurants().scaled(args.scale);
    let config = DbConfig {
        sig_bytes: args.sig_bytes,
        ..DbConfig::default()
    };
    eprintln!(
        "[build] {} ({} objects) twice…",
        spec.name, spec.num_objects
    );
    let bare = SpatialKeywordDb::build(DeviceSet::in_memory(), spec.generate(), config.clone())
        .expect("bare build");
    let mut cached = SpatialKeywordDb::build(
        DeviceSet::in_memory(),
        spec.generate(),
        config.with_node_cache(args.cache),
    )
    .expect("cached build");
    let queries = workload(&spec, args.queries, 2, args.k);

    // Ground truth from the bare database, compared on every cached pass.
    let truth: Vec<Vec<(u64, u64)>> = queries
        .iter()
        .map(|q| {
            bare.distance_first(Algorithm::Ir2, q)
                .expect("query")
                .results
                .iter()
                .map(|(o, d)| (o.id, d.to_bits()))
                .collect()
        })
        .collect();

    let t_bare = measure_warm(&bare, &queries, args.reps, None);
    let t_cold = measure_cold(&cached, &queries, args.reps);
    let t_warm = measure_warm(&cached, &queries, args.reps, Some(&truth));
    cached.configure_prefetch(args.prefetch);
    let t_prefetch = measure_warm(&cached, &queries, args.reps, Some(&truth));
    cached.configure_prefetch(0);

    let speedup = t_bare / t_warm;
    let cold_pct = (t_cold / t_bare - 1.0) * 100.0;
    let (hits, misses) = cached
        .node_cache_stats()
        .iter()
        .find(|(t, _, _)| *t == "ir2")
        .map(|&(_, h, m)| (h, m))
        .unwrap_or((0, 0));

    println!(
        "# decoded-node cache warm/cold paths ({} queries x k={}, sig {} B, cache {} nodes, best of {} reps)",
        queries.len(),
        args.k,
        args.sig_bytes,
        args.cache,
        args.reps
    );
    println!("{:>14} | {:>10} | {:>9}", "path", "wall (ms)", "vs bare");
    println!("{}", "-".repeat(40));
    println!("{:>14} | {:>10.2} | {:>9}", "bare", t_bare * 1e3, "—");
    println!(
        "{:>14} | {:>10.2} | {:>+8.1}%",
        "cached (cold)",
        t_cold * 1e3,
        cold_pct
    );
    println!(
        "{:>14} | {:>10.2} | {:>8.2}x",
        "cached (warm)",
        t_warm * 1e3,
        speedup
    );
    println!(
        "{:>14} | {:>10.2} | {:>8.2}x  (workers: {})",
        "warm+prefetch",
        t_prefetch * 1e3,
        t_bare / t_prefetch,
        args.prefetch
    );
    println!(
        "# ir2 cache totals this process: {hits} hits / {misses} misses ({:.1}% hit rate)",
        100.0 * hits as f64 / (hits + misses).max(1) as f64
    );

    let json = format!(
        "{{\n  \"benchmark\": \"warm_topk\",\n  \"dataset\": \"{}\",\n  \"objects\": {},\n  \"queries\": {},\n  \"k\": {},\n  \"reps\": {},\n  \"sig_bytes\": {},\n  \"cache_nodes\": {},\n  \"prefetch_workers\": {},\n  \"wall_ms\": {{\"bare\": {:.3}, \"cached_cold\": {:.3}, \"cached_warm\": {:.3}, \"warm_prefetch\": {:.3}}},\n  \"warm_speedup\": {:.3},\n  \"cold_overhead_pct\": {:.2},\n  \"cache\": {{\"hits\": {hits}, \"misses\": {misses}}}\n}}\n",
        spec.name,
        spec.num_objects,
        queries.len(),
        args.k,
        args.reps,
        args.sig_bytes,
        args.cache,
        args.prefetch,
        t_bare * 1e3,
        t_cold * 1e3,
        t_warm * 1e3,
        t_prefetch * 1e3,
        speedup,
        cold_pct,
    );
    std::fs::write(&args.out, json).expect("write json");
    eprintln!("[out] wrote {}", args.out);

    if let Some(min) = args.assert_min_speedup {
        assert!(
            speedup >= min,
            "warm speedup {speedup:.2}x is below the {min}x floor"
        );
        eprintln!("[gate] warm speedup {speedup:.2}x ≥ {min}x — ok");
    }
    if let Some(max) = args.assert_max_cold {
        assert!(
            cold_pct <= max,
            "cold-path overhead {cold_pct:.1}% exceeds the {max}% budget"
        );
        eprintln!("[gate] cold overhead {cold_pct:.1}% ≤ {max}% — ok");
    }
}
