//! Overhead guard for the retry layer's clean path.
//!
//! `RetryDevice` sits under every production device (`ir2 query`/`batch`
//! wrap each file device in one), so its cost when nothing fails is pure
//! tax: one closure call, one transience check on the error path that is
//! never taken, and a breaker-map lookup per settled operation. This
//! benchmark runs the same workload against two otherwise identical
//! in-memory databases — one on bare devices, one with every device
//! wrapped in a `RetryDevice` — and reports the wall-clock delta. The
//! number EXPERIMENTS.md records (target ≤ 2%, like the trace
//! instrumentation overhead); `--assert-max PCT` turns the run into a
//! hard gate.
//!
//! Usage:
//!   retry_overhead [--scale F] [--queries N] [--k K] [--reps R]
//!                  [--assert-max PCT] [--out FILE]

use std::time::Instant;

use ir2_bench::workload;
use ir2_datagen::DatasetSpec;
use ir2tree::model::DistanceFirstQuery;
use ir2tree::storage::MemDevice;
use ir2tree::{Algorithm, DbConfig, DeviceSet, RetryDevice, RetryPolicy, SpatialKeywordDb};

struct Args {
    scale: f64,
    queries: usize,
    k: usize,
    reps: usize,
    assert_max: Option<f64>,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.02,
        queries: 96,
        k: 10,
        reps: 5,
        assert_max: None,
        out: "BENCH_retry_overhead.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut next = |what: &str| it.next().unwrap_or_else(|| panic!("{arg} needs {what}"));
        match arg.as_str() {
            "--scale" => args.scale = next("F").parse().expect("scale factor"),
            "--queries" => args.queries = next("N").parse().expect("query count"),
            "--k" => args.k = next("K").parse().expect("k"),
            "--reps" => args.reps = next("R").parse().expect("rep count"),
            "--assert-max" => args.assert_max = Some(next("PCT").parse().expect("percent")),
            "--out" => args.out = next("FILE"),
            other => panic!("unknown argument `{other}`"),
        }
    }
    args
}

/// Best-of-R wall time for one full pass of `queries` against `db`.
fn measure<D: ir2tree::storage::BlockDevice + 'static>(
    db: &SpatialKeywordDb<D>,
    queries: &[DistanceFirstQuery<2>],
    reps: usize,
) -> f64 {
    // Warm-up pass (first touch reads every block through the device).
    for q in queries {
        db.distance_first(Algorithm::Ir2, q).expect("query");
    }
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        for q in queries {
            let r = db.distance_first(Algorithm::Ir2, q).expect("query");
            std::hint::black_box(r.results.len());
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args = parse_args();
    let spec = DatasetSpec::restaurants().scaled(args.scale);
    let config = DbConfig {
        sig_bytes: 8,
        ..DbConfig::default()
    };
    eprintln!(
        "[build] {} ({} objects) twice…",
        spec.name, spec.num_objects
    );
    let bare = SpatialKeywordDb::build(DeviceSet::in_memory(), spec.generate(), config.clone())
        .expect("bare build");
    let wrapped = SpatialKeywordDb::build(
        DeviceSet::in_memory().map(|_, d: MemDevice| RetryDevice::new(d)),
        spec.generate(),
        config,
    )
    .expect("wrapped build");
    let queries = workload(&spec, args.queries, 2, args.k);

    let t_bare = measure(&bare, &queries, args.reps);
    let t_retry = measure(&wrapped, &queries, args.reps);
    let pct = (t_retry / t_bare - 1.0) * 100.0;

    // No fault was ever injected, so the clean path must not have retried
    // (per-query attribution comes from `RetryScope`, active regardless of
    // whether device metrics are registered).
    let retries: u64 = queries
        .iter()
        .map(|q| {
            wrapped
                .distance_first(Algorithm::Ir2, q)
                .expect("query")
                .retries
        })
        .sum();
    assert_eq!(retries, 0, "clean-path run must not retry");

    println!(
        "# retry-layer clean-path overhead ({} queries x k={}, best of {} reps)",
        queries.len(),
        args.k,
        args.reps
    );
    println!("{:>8} | {:>10} | {:>9}", "device", "wall (ms)", "overhead");
    println!("{}", "-".repeat(34));
    println!("{:>8} | {:>10.2} | {:>8}", "bare", t_bare * 1e3, "—");
    println!("{:>8} | {:>10.2} | {:>+8.1}%", "retry", t_retry * 1e3, pct);

    let json = format!(
        "{{\n  \"benchmark\": \"retry_overhead\",\n  \"dataset\": \"{}\",\n  \"objects\": {},\n  \"queries\": {},\n  \"k\": {},\n  \"reps\": {},\n  \"policy\": {{\"max_retries\": {}, \"quarantine_after\": {}}},\n  \"wall_ms\": {{\"bare\": {:.3}, \"retry\": {:.3}}},\n  \"overhead_pct\": {:.2}\n}}\n",
        spec.name,
        spec.num_objects,
        queries.len(),
        args.k,
        args.reps,
        RetryPolicy::default().max_retries,
        RetryPolicy::default().quarantine_after,
        t_bare * 1e3,
        t_retry * 1e3,
        pct
    );
    std::fs::write(&args.out, json).expect("write json");
    eprintln!("[out] wrote {}", args.out);

    if let Some(max) = args.assert_max {
        assert!(
            pct <= max,
            "retry-layer clean-path overhead {pct:.1}% exceeds the {max}% budget"
        );
        eprintln!("[gate] retry overhead {pct:.1}% ≤ {max}% — ok");
    }
}
