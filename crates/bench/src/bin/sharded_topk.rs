//! Scatter-gather scaling guard for the sharded engine.
//!
//! Builds the same dataset at S ∈ {1, 2, 4, 8} STR shards and measures
//! one batch workload (`batch_topk`, fixed thread pool) per shard count,
//! plus single-query latency through the parallel per-shard drain. Two
//! claims are checked on every pass:
//!
//! * **exactness**: every shard count returns byte-identical `(id,
//!   distance)` lists — the scatter-gather merge is exact, sharding can
//!   change only where the work happens, never the answer.
//! * **scaling**: on a multi-core host, batch throughput at S = 4 should
//!   beat S = 1 (`--assert-min-speedup X` turns the ratio into a hard
//!   gate for such hosts) — every shard has private devices, pools, and
//!   caches, so batch workers never contend on one tree. On a single-core
//!   host thread overlap is impossible and the wall-clock columns reduce
//!   to the merge's bookkeeping overhead (a few percent; the JSON records
//!   `host_cores` so readers can tell which regime they are looking at).
//!   The simulated-disk and block columns are machine-independent: they
//!   price the same workload under the paper's disk cost model.
//!
//! Usage:
//!   sharded_topk [--scale F] [--queries N] [--k K] [--keywords W] [--reps R]
//!                [--sig-bytes B] [--threads T]
//!                [--assert-min-speedup X] [--out FILE]

use std::time::Instant;

use ir2_bench::workload;
use ir2_datagen::DatasetSpec;
use ir2tree::model::DistanceFirstQuery;
use ir2tree::storage::MemDevice;
use ir2tree::{Algorithm, DbConfig, DeviceSet, ShardedDb};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Args {
    scale: f64,
    queries: usize,
    k: usize,
    keywords: usize,
    reps: usize,
    sig_bytes: usize,
    threads: usize,
    assert_min_speedup: Option<f64>,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.02,
        queries: 96,
        k: 10,
        keywords: 2,
        reps: 5,
        sig_bytes: 32,
        threads: 4,
        assert_min_speedup: None,
        out: "BENCH_sharded_topk.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut next = |what: &str| it.next().unwrap_or_else(|| panic!("{arg} needs {what}"));
        match arg.as_str() {
            "--scale" => args.scale = next("F").parse().expect("scale factor"),
            "--queries" => args.queries = next("N").parse().expect("query count"),
            "--k" => args.k = next("K").parse().expect("k"),
            "--keywords" => args.keywords = next("W").parse().expect("keyword count"),
            "--reps" => args.reps = next("R").parse().expect("rep count"),
            "--sig-bytes" => args.sig_bytes = next("B").parse().expect("signature bytes"),
            "--threads" => args.threads = next("T").parse().expect("thread count"),
            "--assert-min-speedup" => {
                args.assert_min_speedup = Some(next("X").parse().expect("speedup factor"))
            }
            "--out" => args.out = next("FILE"),
            other => panic!("unknown argument `{other}`"),
        }
    }
    args
}

/// One timed batch pass; asserts results against `truth` when given.
/// Returns (wall seconds, mean simulated disk ms, mean I/O blocks) — the
/// simulated column is the paper's cost-model metric, so it measures the
/// index's disk work independently of the host's core count.
fn batch_pass(
    db: &ShardedDb<MemDevice>,
    queries: &[DistanceFirstQuery<2>],
    threads: usize,
    truth: Option<&[Vec<(u64, u64)>]>,
) -> (f64, f64, f64) {
    let t0 = Instant::now();
    let reports = db
        .batch_topk(Algorithm::Ir2, queries, threads)
        .expect("batch");
    let wall = t0.elapsed().as_secs_f64();
    let n = reports.len().max(1) as f64;
    let sim_ms = reports
        .iter()
        .map(|r| r.simulated.as_secs_f64())
        .sum::<f64>()
        * 1e3
        / n;
    let blocks = reports.iter().map(|r| r.io.total() as f64).sum::<f64>() / n;
    if let Some(truth) = truth {
        for (i, rep) in reports.iter().enumerate() {
            let got: Vec<(u64, u64)> = rep
                .results
                .iter()
                .map(|(o, d)| (o.id, d.to_bits()))
                .collect();
            assert_eq!(
                got,
                truth[i],
                "shard count {} diverged on query {i}",
                db.shard_count()
            );
        }
    }
    std::hint::black_box(reports.len());
    (wall, sim_ms, blocks)
}

/// Best-of-R single-query pass through the parallel per-shard drain.
fn latency_pass(
    db: &ShardedDb<MemDevice>,
    queries: &[DistanceFirstQuery<2>],
    threads: usize,
    reps: usize,
) -> f64 {
    let one = || {
        let t0 = Instant::now();
        for q in queries {
            let rep = db
                .distance_first_parallel(Algorithm::Ir2, q, threads)
                .expect("query");
            std::hint::black_box(rep.results.len());
        }
        t0.elapsed().as_secs_f64()
    };
    one(); // warm-up
    (0..reps.max(1))
        .map(|_| one())
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let args = parse_args();
    let spec = DatasetSpec::restaurants().scaled(args.scale);
    let config = DbConfig {
        sig_bytes: args.sig_bytes,
        ..DbConfig::default()
    };
    let objects: Vec<_> = spec.generate().collect();
    let queries = workload(&spec, args.queries, args.keywords, args.k);

    eprintln!(
        "[build] {} ({} objects) at S = {:?}…",
        spec.name,
        objects.len(),
        SHARD_COUNTS
    );
    let dbs: Vec<ShardedDb<MemDevice>> = SHARD_COUNTS
        .iter()
        .map(|&s| {
            ShardedDb::build(
                (0..s).map(|_| DeviceSet::in_memory()).collect(),
                objects.clone(),
                config.clone(),
            )
            .expect("sharded build")
        })
        .collect();

    // Ground truth from the single-shard engine; the merge canonicalizes
    // ties by (distance, id), so every shard count must reproduce it
    // bit-for-bit.
    let truth: Vec<Vec<(u64, u64)>> = queries
        .iter()
        .map(|q| {
            dbs[0]
                .distance_first(Algorithm::Ir2, q)
                .expect("query")
                .results
                .iter()
                .map(|(o, d)| (o.id, d.to_bits()))
                .collect()
        })
        .collect();

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut batch_s = Vec::new();
    let mut sim_ms = Vec::new();
    let mut blocks = Vec::new();
    let mut latency_s = Vec::new();
    for db in &dbs {
        let (_, sim, blk) = batch_pass(db, &queries, args.threads, Some(&truth)); // warm-up + exactness
        let best = (0..args.reps.max(1))
            .map(|_| batch_pass(db, &queries, args.threads, None).0)
            .fold(f64::INFINITY, f64::min);
        batch_s.push(best);
        sim_ms.push(sim);
        blocks.push(blk);
        latency_s.push(latency_pass(db, &queries, args.threads, args.reps));
    }

    println!(
        "# sharded scatter-gather scaling ({} objects, {} queries x k={}, {} threads on {} core(s), best of {} reps)",
        objects.len(),
        queries.len(),
        args.k,
        args.threads,
        cores,
        args.reps
    );
    println!(
        "{:>7} | {:>11} | {:>9} | {:>8} | {:>12} | {:>10} | {:>10}",
        "shards", "batch (ms)", "qps", "vs S=1", "latency (ms)", "sim (ms)", "blocks"
    );
    println!("{}", "-".repeat(86));
    for (i, &s) in SHARD_COUNTS.iter().enumerate() {
        println!(
            "{:>7} | {:>11.2} | {:>9.0} | {:>7.2}x | {:>12.2} | {:>10.3} | {:>10.1}",
            s,
            batch_s[i] * 1e3,
            queries.len() as f64 / batch_s[i],
            batch_s[0] / batch_s[i],
            latency_s[i] * 1e3,
            sim_ms[i],
            blocks[i]
        );
    }
    if cores == 1 {
        eprintln!(
            "[note] single-core host: batch workers cannot overlap, so wall-clock \
             scaling reflects merge overhead only; compare the simulated-disk column \
             for the machine-independent picture"
        );
    }

    let i4 = SHARD_COUNTS.iter().position(|&s| s == 4).unwrap();
    let speedup4 = batch_s[0] / batch_s[i4];
    let sim_speedup4 = sim_ms[0] / sim_ms[i4];
    let rows: Vec<String> = SHARD_COUNTS
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            format!(
                "    {{\"shards\": {s}, \"batch_ms\": {:.3}, \"qps\": {:.1}, \"speedup\": {:.3}, \"parallel_latency_ms\": {:.3}, \"simulated_ms_per_query\": {:.4}, \"io_blocks_per_query\": {:.1}}}",
                batch_s[i] * 1e3,
                queries.len() as f64 / batch_s[i],
                batch_s[0] / batch_s[i],
                latency_s[i] * 1e3,
                sim_ms[i],
                blocks[i]
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"sharded_topk\",\n  \"dataset\": \"{}\",\n  \"objects\": {},\n  \"queries\": {},\n  \"k\": {},\n  \"reps\": {},\n  \"sig_bytes\": {},\n  \"threads\": {},\n  \"host_cores\": {cores},\n  \"exact_across_shard_counts\": true,\n  \"points\": [\n{}\n  ],\n  \"s4_batch_speedup\": {:.3},\n  \"s4_simulated_speedup\": {:.3}\n}}\n",
        spec.name,
        objects.len(),
        queries.len(),
        args.k,
        args.reps,
        args.sig_bytes,
        args.threads,
        rows.join(",\n"),
        speedup4,
        sim_speedup4,
    );
    std::fs::write(&args.out, json).expect("write json");
    eprintln!("[out] wrote {}", args.out);

    if let Some(min) = args.assert_min_speedup {
        assert!(
            speedup4 >= min,
            "S=4 batch speedup {speedup4:.2}x is below the {min}x floor"
        );
        eprintln!("[gate] S=4 batch speedup {speedup4:.2}x ≥ {min}x — ok");
    }
}
