//! Throughput benchmark for the concurrent batch query engine
//! (`SpatialKeywordDb::batch_topk`): queries/second versus worker thread
//! count, per algorithm.
//!
//! This is beyond the paper's evaluation (which is single-query, I/O-cost
//! centric): it measures how far concurrent read-only queries scale once
//! the structures are shared across threads and the buffer pool is
//! sharded. Results are printed as a table and written to
//! `BENCH_batch_topk.json` for the record in `EXPERIMENTS.md`.
//!
//! Usage:
//!   batch_topk [--scale F] [--queries N] [--k K] [--reps R] [--out FILE]
//!
//! Defaults: `--scale 0.02` (≈9 000 restaurants), `--queries 96`, `--k 10`,
//! `--reps 3` (best of R per point), `--out BENCH_batch_topk.json`.

use std::time::Instant;

use ir2_bench::{build_db, workload};
use ir2_datagen::DatasetSpec;
use ir2tree::Algorithm;

const RESTAURANTS_SIG_DEFAULT: usize = 8;
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

struct Args {
    scale: f64,
    queries: usize,
    k: usize,
    reps: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.02,
        queries: 96,
        k: 10,
        reps: 3,
        out: "BENCH_batch_topk.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut next = |what: &str| it.next().unwrap_or_else(|| panic!("{arg} needs {what}"));
        match arg.as_str() {
            "--scale" => args.scale = next("F").parse().expect("scale factor"),
            "--queries" => args.queries = next("N").parse().expect("query count"),
            "--k" => args.k = next("K").parse().expect("k"),
            "--reps" => args.reps = next("R").parse().expect("rep count"),
            "--out" => args.out = next("FILE"),
            other => panic!("unknown argument `{other}`"),
        }
    }
    args
}

struct Point {
    threads: usize,
    qps: f64,
    wall_ms: f64,
    speedup: f64,
}

fn main() {
    let args = parse_args();
    let spec = DatasetSpec::restaurants().scaled(args.scale);
    eprintln!(
        "[build] {} ({} objects, sig {} B)…",
        spec.name, spec.num_objects, RESTAURANTS_SIG_DEFAULT
    );
    let bench = build_db(&spec, RESTAURANTS_SIG_DEFAULT);
    let queries = workload(&spec, args.queries, 2, args.k);

    println!("# batch_topk throughput (queries/sec vs threads)");
    println!(
        "{} objects, {} queries x k={}, best of {} reps, {} hardware threads",
        spec.num_objects,
        queries.len(),
        args.k,
        args.reps,
        std::thread::available_parallelism().map_or(0, usize::from)
    );

    let mut json_algs = Vec::new();
    for alg in Algorithm::ALL {
        // Correctness gate: concurrent results must be byte-identical to
        // the sequential path before any number is worth reporting.
        let batch = bench.db.batch_topk(alg, &queries, 4).expect("batch");
        for (q, got) in queries.iter().zip(&batch) {
            let seq = bench.db.distance_first(alg, q).expect("query");
            let g: Vec<(u64, u64)> = got
                .results
                .iter()
                .map(|(o, d)| (o.id, d.to_bits()))
                .collect();
            let s: Vec<(u64, u64)> = seq
                .results
                .iter()
                .map(|(o, d)| (o.id, d.to_bits()))
                .collect();
            assert_eq!(g, s, "{}: concurrent != sequential", alg.label());
        }

        println!("\n### {}\n", alg.label());
        println!(
            "{:>8} | {:>12} | {:>10} | {:>8}",
            "threads", "queries/sec", "wall (ms)", "speedup"
        );
        println!("{}", "-".repeat(48));
        let mut points: Vec<Point> = Vec::new();
        for threads in THREAD_SWEEP {
            let mut best_wall = f64::INFINITY;
            for _ in 0..args.reps.max(1) {
                let t0 = Instant::now();
                let reports = bench.db.batch_topk(alg, &queries, threads).expect("batch");
                let wall = t0.elapsed().as_secs_f64();
                assert_eq!(reports.len(), queries.len());
                best_wall = best_wall.min(wall);
            }
            let qps = queries.len() as f64 / best_wall;
            let speedup = points.first().map_or(1.0, |base| qps / base.qps);
            println!(
                "{threads:>8} | {qps:>12.0} | {:>10.1} | {speedup:>7.2}x",
                best_wall * 1e3
            );
            points.push(Point {
                threads,
                qps,
                wall_ms: best_wall * 1e3,
                speedup,
            });
        }

        let rows: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    "{{\"threads\": {}, \"qps\": {:.1}, \"wall_ms\": {:.2}, \"speedup\": {:.3}}}",
                    p.threads, p.qps, p.wall_ms, p.speedup
                )
            })
            .collect();
        json_algs.push(format!(
            "    \"{}\": [\n      {}\n    ]",
            alg.label(),
            rows.join(",\n      ")
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"batch_topk\",\n  \"dataset\": \"{}\",\n  \"objects\": {},\n  \"queries\": {},\n  \"k\": {},\n  \"reps\": {},\n  \"hardware_threads\": {},\n  \"throughput\": {{\n{}\n  }}\n}}\n",
        spec.name,
        spec.num_objects,
        queries.len(),
        args.k,
        args.reps,
        std::thread::available_parallelism().map_or(0, usize::from),
        json_algs.join(",\n")
    );
    std::fs::write(&args.out, json).expect("write json");
    eprintln!("[out] wrote {}", args.out);
}
