//! Overhead guard for the query-trace instrumentation.
//!
//! The query algorithms take a `TraceSink` type parameter with a `NopSink`
//! default, so the untraced paths are *claimed* to monomorphize to the
//! uninstrumented code. This benchmark checks the claim where it matters —
//! the batch top-k hot path — by running the same workload three ways:
//!
//! * `nop`   — `distance_first_topk` (the `NopSink` default);
//! * `stats` — `distance_first_topk_traced` with a `StatsSink`, i.e. what
//!   the facade (`distance_first` / `batch_topk`) now runs on every query;
//! * `vec`   — a `VecSink` storing every event (the `ir2 trace` path).
//!
//! The `stats` overhead versus `nop` is the number EXPERIMENTS.md records;
//! `--assert-max PCT` turns the run into a hard gate.
//!
//! Usage:
//!   trace_overhead [--scale F] [--queries N] [--k K] [--reps R]
//!                  [--assert-max PCT] [--out FILE]

use std::time::Instant;

use ir2_bench::{build_db, workload};
use ir2_datagen::DatasetSpec;
use ir2tree::irtree::{distance_first_topk, distance_first_topk_traced, StatsSink, VecSink};

struct Args {
    scale: f64,
    queries: usize,
    k: usize,
    reps: usize,
    assert_max: Option<f64>,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.02,
        queries: 96,
        k: 10,
        reps: 5,
        assert_max: None,
        out: "BENCH_trace_overhead.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut next = |what: &str| it.next().unwrap_or_else(|| panic!("{arg} needs {what}"));
        match arg.as_str() {
            "--scale" => args.scale = next("F").parse().expect("scale factor"),
            "--queries" => args.queries = next("N").parse().expect("query count"),
            "--k" => args.k = next("K").parse().expect("k"),
            "--reps" => args.reps = next("R").parse().expect("rep count"),
            "--assert-max" => args.assert_max = Some(next("PCT").parse().expect("percent")),
            "--out" => args.out = next("FILE"),
            other => panic!("unknown argument `{other}`"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let spec = DatasetSpec::restaurants().scaled(args.scale);
    eprintln!("[build] {} ({} objects)…", spec.name, spec.num_objects);
    let bench = build_db(&spec, 8);
    let queries = workload(&spec, args.queries, 2, args.k);
    let tree = bench.db.ir2_tree();
    let store = bench.db.object_store();

    // Best-of-R wall time for one full pass over the workload.
    let measure = |run: &mut dyn FnMut()| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..args.reps.max(1) {
            let t0 = Instant::now();
            run();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };

    // Warm-up pass (first touch reads every block through the device).
    for q in &queries {
        distance_first_topk(tree, store, q).expect("query");
    }

    let nop = measure(&mut || {
        for q in &queries {
            let (r, _) = distance_first_topk(tree, store, q).expect("query");
            std::hint::black_box(r);
        }
    });
    let stats = measure(&mut || {
        for q in &queries {
            let mut sink = StatsSink::new();
            let (r, _) = distance_first_topk_traced(tree, store, q, &mut sink).expect("query");
            std::hint::black_box((r, sink.stats.sig_tests));
        }
    });
    let vec = measure(&mut || {
        for q in &queries {
            let mut sink = VecSink::new();
            let (r, _) = distance_first_topk_traced(tree, store, q, &mut sink).expect("query");
            std::hint::black_box((r, sink.events.len()));
        }
    });

    let pct = |t: f64| (t / nop - 1.0) * 100.0;
    println!(
        "# trace instrumentation overhead ({} queries x k={}, best of {} reps)",
        queries.len(),
        args.k,
        args.reps
    );
    println!("{:>8} | {:>10} | {:>9}", "sink", "wall (ms)", "overhead");
    println!("{}", "-".repeat(34));
    println!("{:>8} | {:>10.2} | {:>8}", "nop", nop * 1e3, "—");
    println!(
        "{:>8} | {:>10.2} | {:>+8.1}%",
        "stats",
        stats * 1e3,
        pct(stats)
    );
    println!("{:>8} | {:>10.2} | {:>+8.1}%", "vec", vec * 1e3, pct(vec));

    let json = format!(
        "{{\n  \"benchmark\": \"trace_overhead\",\n  \"dataset\": \"{}\",\n  \"objects\": {},\n  \"queries\": {},\n  \"k\": {},\n  \"reps\": {},\n  \"wall_ms\": {{\"nop\": {:.3}, \"stats\": {:.3}, \"vec\": {:.3}}},\n  \"overhead_pct\": {{\"stats\": {:.2}, \"vec\": {:.2}}}\n}}\n",
        spec.name,
        spec.num_objects,
        queries.len(),
        args.k,
        args.reps,
        nop * 1e3,
        stats * 1e3,
        vec * 1e3,
        pct(stats),
        pct(vec)
    );
    std::fs::write(&args.out, json).expect("write json");
    eprintln!("[out] wrote {}", args.out);

    if let Some(max) = args.assert_max {
        assert!(
            pct(stats) <= max,
            "StatsSink overhead {:.1}% exceeds the {max}% budget",
            pct(stats)
        );
        eprintln!("[gate] stats overhead {:.1}% ≤ {max}% — ok", pct(stats));
    }
}
