#![warn(missing_docs)]
//! Shared harness for the experiment reproduction (Section VI of the
//! paper) — used by both the `experiments` binary and the Criterion
//! benches.
//!
//! The harness builds a [`SpatialKeywordDb`] over a synthetic dataset
//! matched to Table 1, generates deterministic query workloads (query
//! points sampled from the data's own spatial distribution, keywords drawn
//! from frequency bands of the Zipf vocabulary), runs each algorithm over
//! the same workload, and aggregates the paper's metrics: simulated
//! execution time, random and sequential block accesses, and object
//! accesses.

use ir2_datagen::DatasetSpec;
use ir2tree::model::DistanceFirstQuery;
use ir2tree::storage::MemDevice;
use ir2tree::{Algorithm, DbConfig, DeviceSet, SpatialKeywordDb};

/// A database built for benchmarking, with its generating spec.
pub struct BenchDb {
    /// The dataset specification the database was generated from.
    pub spec: DatasetSpec,
    /// The database under test.
    pub db: SpatialKeywordDb<MemDevice>,
}

/// Builds a database over `spec` with the given leaf signature length.
pub fn build_db(spec: &DatasetSpec, sig_bytes: usize) -> BenchDb {
    let config = DbConfig {
        sig_bytes,
        ..DbConfig::default()
    };
    let db = SpatialKeywordDb::build(DeviceSet::in_memory(), spec.generate(), config)
        .expect("benchmark database build");
    BenchDb {
        spec: spec.clone(),
        db,
    }
}

/// Samples `n` query points from the dataset's own object locations
/// (queries land where the data lives, as user queries do).
pub fn query_points(spec: &DatasetSpec, n: usize) -> Vec<[f64; 2]> {
    let stride = (spec.num_objects / n.max(1)).max(1);
    spec.generate()
        .step_by(stride)
        .take(n)
        .map(|o| {
            // Nudge off the exact object position so distance ties are rare.
            [o.point.coord(0) + 0.01, o.point.coord(1) - 0.01]
        })
        .collect()
}

/// Deterministic keyword workload: query `qi` with `num_keywords` keywords
/// drawn from the common band of the vocabulary (frequency ranks 5–125),
/// mirroring the paper's use of real query words. Conjunctions of common
/// words still have results; rarer ranks make queries more selective.
pub fn query_keywords(spec: &DatasetSpec, num_keywords: usize, qi: usize) -> Vec<String> {
    (0..num_keywords)
        .map(|j| spec.keyword_of_rank(5 + (qi * 13 + j * 29) % 120))
        .collect()
}

/// The full workload for one experiment point.
pub fn workload(
    spec: &DatasetSpec,
    num_queries: usize,
    num_keywords: usize,
    k: usize,
) -> Vec<DistanceFirstQuery<2>> {
    query_points(spec, num_queries)
        .into_iter()
        .enumerate()
        .map(|(qi, p)| DistanceFirstQuery::new(p, &query_keywords(spec, num_keywords, qi), k))
        .collect()
}

/// Aggregated metrics over a workload — the columns of the paper's figures.
#[derive(Debug, Clone, Copy, Default)]
pub struct Measurement {
    /// Mean simulated execution time (ms) under the disk cost model.
    pub time_ms: f64,
    /// Mean random block accesses.
    pub random: f64,
    /// Mean sequential block accesses.
    pub sequential: f64,
    /// Mean object accesses.
    pub object_loads: f64,
    /// Mean wall-clock time of the in-memory run (ms).
    pub wall_ms: f64,
    /// Mean number of results returned.
    pub results: f64,
}

/// Runs every query of `queries` with `alg` and averages the metrics.
pub fn run_distance_first(
    bench: &BenchDb,
    alg: Algorithm,
    queries: &[DistanceFirstQuery<2>],
) -> Measurement {
    let mut m = Measurement::default();
    for q in queries {
        let rep = bench.db.distance_first(alg, q).expect("query");
        m.time_ms += rep.simulated.as_secs_f64() * 1e3;
        m.random += rep.io.random() as f64;
        m.sequential += rep.io.sequential() as f64;
        m.object_loads += rep.object_loads as f64;
        m.wall_ms += rep.wall.as_secs_f64() * 1e3;
        m.results += rep.results.len() as f64;
    }
    let n = queries.len().max(1) as f64;
    m.time_ms /= n;
    m.random /= n;
    m.sequential /= n;
    m.object_loads /= n;
    m.wall_ms /= n;
    m.results /= n;
    m
}

/// Pretty-prints a figure-style table: one row per x-axis value, one column
/// group per algorithm.
pub fn print_table(
    title: &str,
    x_label: &str,
    rows: &[(String, Vec<(Algorithm, Measurement)>)],
    metric: fn(&Measurement) -> f64,
    unit: &str,
) {
    println!("\n### {title} ({unit})\n");
    print!("{x_label:>10} |");
    if let Some((_, cols)) = rows.first() {
        for (alg, _) in cols {
            print!(" {:>12}", alg.label());
        }
    }
    println!();
    println!(
        "{}",
        "-".repeat(12 + rows.first().map_or(0, |(_, c)| c.len() * 13))
    );
    for (x, cols) in rows {
        print!("{x:>10} |");
        for (_, m) in cols {
            print!(" {:>12.1}", metric(m));
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_sized() {
        let spec = DatasetSpec::restaurants().scaled(0.005);
        let w1 = workload(&spec, 10, 2, 5);
        let w2 = workload(&spec, 10, 2, 5);
        assert_eq!(w1.len(), 10);
        assert_eq!(w1, w2);
        for q in &w1 {
            assert_eq!(q.keywords.len(), 2);
            assert_eq!(q.k, 5);
        }
    }

    #[test]
    fn harness_round_trip() {
        let spec = DatasetSpec::restaurants().scaled(0.002);
        let bench = build_db(&spec, 8);
        let queries = workload(&spec, 5, 2, 5);
        let m = run_distance_first(&bench, Algorithm::Ir2, &queries);
        assert!(m.random > 0.0);
        assert!(m.time_ms > 0.0);
    }
}
