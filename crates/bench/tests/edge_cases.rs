//! Cross-engine edge-case sweep: every query path in the workspace — the
//! facade's four algorithms (R-Tree baseline, IIO, IR², MIR²), the general
//! ranked query, the uniform grid, the flat signature file, and the
//! sharded scatter-gather engine — must handle `k == 0`, empty keyword
//! lists, and distance ties without panicking, and must agree on result
//! *sets* wherever the answer is well defined.

use std::sync::Arc;

use ir2_grid::{GridConfig, GridIndex};
use ir2_sigscan::SignatureFile;
use ir2tree::irtree::GeneralQuery;
use ir2tree::model::{DistanceFirstQuery, ObjPtr, ObjectStore, SpatialObject};
use ir2tree::sigfile::SignatureScheme;
use ir2tree::storage::MemDevice;
use ir2tree::text::{tokenize, LinearRank, SaturatingTfIdf};
use ir2tree::{Algorithm, DbConfig, DeviceSet, ShardedDb, SpatialKeywordDb};

/// Every engine under test, answering one distance-first query as a
/// `(id, distance)` list.
struct Engines {
    db: SpatialKeywordDb<MemDevice>,
    sharded: ShardedDb<MemDevice>,
    store: Arc<ObjectStore<2, MemDevice>>,
    grid: GridIndex<MemDevice>,
    ssf: SignatureFile<MemDevice>,
}

/// Engine names for assertion messages, aligned with `run_all` order.
const NAMES: [&str; 7] = ["rtree", "iio", "ir2", "mir2", "grid", "ssf", "sharded"];

fn engines(objects: Vec<SpatialObject<2>>) -> Engines {
    let config = DbConfig {
        capacity: Some(4),
        sig_bytes: 8,
        ..DbConfig::default()
    };
    let db =
        SpatialKeywordDb::build(DeviceSet::in_memory(), objects.clone(), config.clone()).unwrap();
    let shards = objects.len().min(3);
    let sharded = ShardedDb::build(
        (0..shards).map(|_| DeviceSet::in_memory()).collect(),
        objects.clone(),
        config,
    )
    .unwrap();

    // The standalone structures (grid, flat signature file) share one
    // object store, exactly like the A4 ablation harness.
    let store = Arc::new(ObjectStore::<2, _>::create(MemDevice::new()));
    let mut items: Vec<(ObjPtr, ir2tree::geo::Point<2>, Vec<String>)> = Vec::new();
    for o in &objects {
        let ptr = store.append(o).unwrap();
        let mut terms: Vec<String> = tokenize(&o.text).collect();
        terms.sort_unstable();
        terms.dedup();
        items.push((ptr, o.point, terms));
    }
    store.flush().unwrap();
    let scheme = SignatureScheme::from_bytes_len(8, 4, 1);
    let grid = GridIndex::build(
        MemDevice::new(),
        GridConfig::for_objects(objects.len(), 4, scheme),
        &items,
    )
    .unwrap();
    let ssf = SignatureFile::build(
        MemDevice::new(),
        scheme,
        items.iter().map(|(p, _, terms)| (*p, terms.as_slice())),
    )
    .unwrap();
    Engines {
        db,
        sharded,
        store,
        grid,
        ssf,
    }
}

impl Engines {
    /// Runs `q` through all seven engines, in [`NAMES`] order.
    fn run_all(
        &self,
        q: &DistanceFirstQuery<2>,
    ) -> Vec<Result<Vec<(u64, f64)>, ir2tree::storage::StorageError>> {
        let ids = |hits: Vec<(SpatialObject<2>, f64)>| {
            hits.into_iter().map(|(o, d)| (o.id, d)).collect::<Vec<_>>()
        };
        let mut out = Vec::new();
        for alg in [
            Algorithm::RTree,
            Algorithm::Iio,
            Algorithm::Ir2,
            Algorithm::Mir2,
        ] {
            out.push(self.db.distance_first(alg, q).map(|r| ids(r.results)));
        }
        out.push(self.grid.topk(self.store.as_ref(), q).map(|(r, _)| ids(r)));
        out.push(self.ssf.topk(self.store.as_ref(), q).map(|(r, _)| ids(r)));
        out.push(
            self.sharded
                .distance_first(Algorithm::Ir2, q)
                .map(|r| ids(r.results)),
        );
        out
    }
}

fn scatter(n: usize) -> Vec<SpatialObject<2>> {
    (0..n)
        .map(|i| {
            let x = ((i * 37) % 101) as f64 + (i % 7) as f64 * 0.013;
            let y = ((i * 53) % 89) as f64 + (i % 11) as f64 * 0.029;
            let text = if i % 2 == 0 { "pool wifi" } else { "spa sauna" };
            SpatialObject::new(i as u64, [x, y], text)
        })
        .collect()
}

#[test]
fn k_zero_is_empty_on_every_engine() {
    let e = engines(scatter(40));
    let q = DistanceFirstQuery::new([17.3, 42.9], &["pool"], 0);
    for (name, res) in NAMES.iter().zip(e.run_all(&q)) {
        let hits = res.unwrap_or_else(|err| panic!("{name}: {err}"));
        assert!(hits.is_empty(), "{name}: k=0 must return empty");
    }
    // The general ranked path too (both trees), and the sharded engine on
    // every algorithm.
    let gq = GeneralQuery::new([17.3, 42.9], &["pool"], 0);
    let rank = LinearRank {
        ir_weight: 1.0,
        dist_weight: 0.05,
    };
    for alg in [Algorithm::Ir2, Algorithm::Mir2] {
        let rep =
            e.db.general_ranked(alg, &gq, &SaturatingTfIdf, &rank)
                .unwrap();
        assert!(rep.results.is_empty(), "general {}", alg.label());
    }
    for alg in [
        Algorithm::RTree,
        Algorithm::Iio,
        Algorithm::Ir2,
        Algorithm::Mir2,
    ] {
        let rep = e.sharded.distance_first(alg, &q).unwrap();
        assert!(rep.results.is_empty(), "sharded {}", alg.label());
    }
}

#[test]
fn empty_keywords_mean_pure_nn_except_iio() {
    let objects = scatter(40);
    let e = engines(objects.clone());
    let empty: [&str; 0] = [];
    let q = DistanceFirstQuery::new([17.3, 42.9], &empty, 5);
    // Ground truth: 5 nearest objects regardless of text.
    let mut truth: Vec<(u64, f64)> = objects
        .iter()
        .map(|o| (o.id, q.point.distance(&o.point)))
        .collect();
    truth.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    truth.truncate(5);
    for (name, res) in NAMES.iter().zip(e.run_all(&q)) {
        if *name == "iio" {
            // IIO has no spatial access path without keywords: it must
            // refuse loudly, not return a wrong (empty) answer.
            assert!(res.is_err(), "iio must reject pure-NN queries");
            continue;
        }
        let hits = res.unwrap_or_else(|err| panic!("{name}: {err}"));
        assert_eq!(hits.len(), truth.len(), "{name}");
        for ((id, d), (tid, td)) in hits.iter().zip(truth.iter()) {
            assert_eq!(id, tid, "{name}");
            assert!((d - td).abs() < 1e-9, "{name}: {d} vs {td}");
        }
    }
    // The keyword check precedes the k check: empty keywords error out of
    // IIO even at k=0 (a silent empty answer would mask the misuse).
    let q0 = DistanceFirstQuery::new([17.3, 42.9], &empty, 0);
    assert!(e.db.distance_first(Algorithm::Iio, &q0).is_err());
    assert!(e.sharded.distance_first(Algorithm::Iio, &q0).is_err());
}

/// Two concentric rings around the origin: four objects at distance 1,
/// four at distance 2, two decoys far away. Every tie boundary a top-k can
/// land on is covered.
fn rings() -> Vec<SpatialObject<2>> {
    let mut objs = vec![
        SpatialObject::new(0, [1.0, 0.0], "pool ring inner"),
        SpatialObject::new(1, [-1.0, 0.0], "pool ring inner"),
        SpatialObject::new(2, [0.0, 1.0], "pool ring inner"),
        SpatialObject::new(3, [0.0, -1.0], "pool ring inner"),
        SpatialObject::new(4, [2.0, 0.0], "pool ring outer"),
        SpatialObject::new(5, [-2.0, 0.0], "pool ring outer"),
        SpatialObject::new(6, [0.0, 2.0], "pool ring outer"),
        SpatialObject::new(7, [0.0, -2.0], "pool ring outer"),
    ];
    objs.push(SpatialObject::new(8, [50.0, 50.0], "pool far decoy"));
    objs.push(SpatialObject::new(9, [-60.0, 60.0], "pool far decoy"));
    objs
}

#[test]
fn tied_kth_distance_yields_consistent_sets() {
    let e = engines(rings());
    let at = [0.0, 0.0];

    // k = 4: the k-th distance (1.0) ties across the whole inner ring,
    // which exactly fills k — the result set is unique and every engine
    // must return it.
    let q4 = DistanceFirstQuery::new(at, &["pool"], 4);
    for (name, res) in NAMES.iter().zip(e.run_all(&q4)) {
        let mut ids: Vec<u64> = res.unwrap().into_iter().map(|(id, _)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3], "{name}: inner ring set");
    }

    // k = 8: both rings, again a unique set.
    let q8 = DistanceFirstQuery::new(at, &["pool"], 8);
    for (name, res) in NAMES.iter().zip(e.run_all(&q8)) {
        let mut ids: Vec<u64> = res.unwrap().into_iter().map(|(id, _)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..8).collect::<Vec<u64>>(), "{name}: both rings");
    }

    // k = 6: the k-th distance (2.0) ties across four objects with only
    // two slots. Every engine canonicalizes ties by (distance, id), so
    // the whole answer — including the *choice* of tied tail — is
    // deterministic and identical across engines: the inner ring in id
    // order, then the two smallest outer-ring ids. (Before the
    // fuzzer-driven canonicalization sweep this tail was engine-specific:
    // grid/ssf/IIO keyed their heaps by record pointer, the monolithic
    // collectors emitted traversal order.)
    let q6 = DistanceFirstQuery::new(at, &["pool"], 6);
    for (name, res) in NAMES.iter().zip(e.run_all(&q6)) {
        let ids: Vec<u64> = res.unwrap().into_iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5], "{name}: canonical tied tail");
    }

    // Same canonical tail through the sharded merge on another algorithm.
    let rep = e.sharded.distance_first(Algorithm::Mir2, &q6).unwrap();
    let tail: Vec<u64> = rep.results[4..].iter().map(|(o, _)| o.id).collect();
    assert_eq!(tail, vec![4, 5]);
}

#[test]
fn k_zero_with_ties_and_decoys_still_empty() {
    // Belt-and-braces for the reported GridIndex::topk k==0 panic: the
    // degenerate fixture (every candidate tied) with k == 0 must return
    // empty on all engines, grid included.
    let e = engines(
        (0..12)
            .map(|i| SpatialObject::new(i, [3.0, 4.0], "pool stacked"))
            .collect(),
    );
    let q = DistanceFirstQuery::new([3.0, 4.0], &["pool"], 0);
    for (name, res) in NAMES.iter().zip(e.run_all(&q)) {
        assert!(res.unwrap().is_empty(), "{name}");
    }
}
