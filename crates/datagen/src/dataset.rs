//! Dataset specifications and the streaming generator.

use ir2_model::SpatialObject;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{SpatialModel, WordModel};

/// Everything needed to synthesize a dataset, with presets matching the
/// paper's Table 1.
///
/// ```
/// use ir2_datagen::DatasetSpec;
/// // A 1000-object sample of the Restaurants distribution.
/// let spec = DatasetSpec::restaurants().scaled(1000.0 / 456_288.0);
/// let objects: Vec<_> = spec.generate().collect();
/// assert_eq!(objects.len(), 1000);
/// // Same seed, same dataset.
/// assert_eq!(objects[17], spec.generate().nth(17).unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset label used in reports.
    pub name: &'static str,
    /// Number of objects.
    pub num_objects: usize,
    /// Vocabulary size (Table 1: "total # unique words").
    pub vocab_size: usize,
    /// Target average distinct words per object (Table 1 column).
    pub avg_words_per_object: usize,
    /// Zipf exponent of word frequencies.
    pub zipf_s: f64,
    /// Number of spatial clusters (0 = uniform).
    pub clusters: usize,
    /// RNG seed; same spec + seed ⇒ identical dataset.
    pub seed: u64,
}

impl DatasetSpec {
    /// The Hotels dataset of Table 1: 129 319 objects, 53 906-word
    /// vocabulary, ~35 distinct words per object.
    ///
    /// Table 1 prints "349" average unique words per object, but that value
    /// contradicts the same table's other columns: 55.2 MB / 129 319
    /// objects = 427 bytes per record (~35 words), and the IIO index of
    /// Table 2 (31.4 MB ≈ 4.5 M postings × 8 B) also implies ~35 words per
    /// object — 349 would make the dataset ~580 MB and the postings
    /// ~360 MB. We read "349" as a typo for "34.9" and target 35; the
    /// qualitative relationship the experiments need (Hotels documents are
    /// 2.5× larger than Restaurants', so Hotels needs longer signatures)
    /// is preserved. `EXPERIMENTS.md` records this choice.
    pub fn hotels() -> Self {
        Self {
            name: "Hotels",
            num_objects: 129_319,
            vocab_size: 53_906,
            avg_words_per_object: 35,
            zipf_s: 1.0,
            clusters: 400,
            seed: 0x1407E15,
        }
    }

    /// The Restaurants dataset of Table 1: 456 288 objects, ~14 distinct
    /// words each, 73 855-word vocabulary.
    pub fn restaurants() -> Self {
        Self {
            name: "Restaurants",
            num_objects: 456_288,
            vocab_size: 73_855,
            avg_words_per_object: 14,
            zipf_s: 1.0,
            clusters: 1200,
            seed: 0x8E57A,
        }
    }

    /// Scales the object count by `factor` (for quick runs and CI), keeping
    /// the text statistics intact.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        self.num_objects = ((self.num_objects as f64 * factor) as usize).max(1);
        self
    }

    /// Starts streaming generation.
    pub fn generate(&self) -> GeneratedObjects {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let words = WordModel::new(self.vocab_size, self.zipf_s);
        let spatial = if self.clusters == 0 {
            SpatialModel::uniform()
        } else {
            SpatialModel::clustered(&mut rng, self.clusters)
        };
        GeneratedObjects {
            spec: self.clone(),
            words,
            spatial,
            rng,
            next_id: 0,
        }
    }

    /// The word `rank`-th most frequent word of this spec's vocabulary —
    /// lets experiments pick query keywords of known selectivity (e.g.
    /// rank 10 ≈ very common, rank 10 000 ≈ rare).
    pub fn keyword_of_rank(&self, rank: usize) -> String {
        WordModel::new(self.vocab_size, self.zipf_s).word(rank)
    }
}

/// Streaming iterator of generated objects.
pub struct GeneratedObjects {
    spec: DatasetSpec,
    words: WordModel,
    spatial: SpatialModel,
    rng: StdRng,
    next_id: u64,
}

impl Iterator for GeneratedObjects {
    type Item = SpatialObject<2>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next_id >= self.spec.num_objects as u64 {
            return None;
        }
        let id = self.next_id;
        self.next_id += 1;
        let point = self.spatial.sample(&mut self.rng);
        let ranks = self
            .words
            .sample_document(&mut self.rng, self.spec.avg_words_per_object);
        let text = self.words.render(&ranks);
        Some(SpatialObject::new(id, point, text))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.spec.num_objects - self.next_id as usize;
        (left, Some(left))
    }
}

/// Statistics of a generated (or any) object collection — the reproduction
/// of Table 1's columns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetStats {
    /// Number of objects.
    pub objects: u64,
    /// Average distinct words per object.
    pub avg_unique_words: f64,
    /// Total distinct words across the collection.
    pub unique_words: u64,
    /// Total text bytes (dataset size proxy).
    pub text_bytes: u64,
}

impl DatasetStats {
    /// Computes the statistics of a collection.
    pub fn measure<'a>(objects: impl IntoIterator<Item = &'a SpatialObject<2>>) -> Self {
        let mut vocab = std::collections::HashSet::new();
        let mut n = 0u64;
        let mut words_total = 0u64;
        let mut bytes = 0u64;
        for obj in objects {
            n += 1;
            bytes += obj.text.len() as u64;
            let set = obj.token_set();
            words_total += set.len() as u64;
            for w in set.iter() {
                vocab.insert(w.to_owned());
            }
        }
        Self {
            objects: n,
            avg_unique_words: if n == 0 {
                0.0
            } else {
                words_total as f64 / n as f64
            },
            unique_words: vocab.len() as u64,
            text_bytes: bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restaurants_sample_matches_table1_statistics() {
        // A 20k-object sample of the Restaurants spec must match the
        // per-object statistics (vocab coverage grows with the full run).
        let spec = DatasetSpec::restaurants().scaled(20_000.0 / 456_288.0);
        let objs: Vec<_> = spec.generate().collect();
        let stats = DatasetStats::measure(&objs);
        assert_eq!(stats.objects, 20_000);
        assert!(
            (stats.avg_unique_words - 14.0).abs() < 1.0,
            "avg words {}",
            stats.avg_unique_words
        );
        assert!(stats.unique_words > 5_000, "vocab {}", stats.unique_words);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec::restaurants().scaled(0.0005);
        let a: Vec<_> = spec.generate().collect();
        let b: Vec<_> = spec.generate().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn hotels_sample_has_larger_documents_than_restaurants() {
        let spec = DatasetSpec::hotels().scaled(2000.0 / 129_319.0);
        let objs: Vec<_> = spec.generate().collect();
        let stats = DatasetStats::measure(&objs);
        assert!(
            (stats.avg_unique_words - 35.0).abs() < 3.0,
            "avg words {}",
            stats.avg_unique_words
        );
        // Hotels records are ~2.5x Restaurants records, the ratio that
        // drives the paper's per-dataset signature-length choices.
        let rest: Vec<_> = DatasetSpec::restaurants()
            .scaled(2000.0 / 456_288.0)
            .generate()
            .collect();
        let rest_stats = DatasetStats::measure(&rest);
        assert!(stats.avg_unique_words > 2.0 * rest_stats.avg_unique_words);
    }

    #[test]
    fn keyword_ranks_have_decreasing_frequency() {
        let spec = DatasetSpec::restaurants().scaled(0.02);
        let objs: Vec<_> = spec.generate().collect();
        let common = spec.keyword_of_rank(1);
        let rare = spec.keyword_of_rank(2000);
        let df = |w: &str| objs.iter().filter(|o| o.token_set().contains(w)).count();
        assert!(
            df(&common) > df(&rare) * 3,
            "common {} rare {}",
            df(&common),
            df(&rare)
        );
    }

    #[test]
    fn ids_are_sequential() {
        let spec = DatasetSpec::restaurants().scaled(0.0002);
        let ids: Vec<u64> = spec.generate().map(|o| o.id).collect();
        assert_eq!(ids, (0..ids.len() as u64).collect::<Vec<_>>());
    }
}
