//! Clustered spatial distributions.

use ir2_geo::Point;
use rand::{Rng, RngExt};

use crate::AliasTable;

/// A mixture-of-Gaussians point generator over the lat/lon plane.
///
/// Real points of interest cluster in cities; uniform points would give
/// the R-Tree unrealistically uniform node geometry. The model draws a
/// cluster from a Zipf-weighted table (big cities hold more businesses),
/// then offsets from the cluster center with Gaussian noise, plus a small
/// uniform background fraction (roadside businesses).
#[derive(Debug, Clone)]
pub struct SpatialModel {
    centers: Vec<[f64; 2]>,
    sigmas: Vec<f64>,
    cluster_weights: AliasTable,
    background_fraction: f64,
    bounds: ([f64; 2], [f64; 2]),
}

impl SpatialModel {
    /// Creates a model with `clusters` cluster centers drawn uniformly in
    /// the lat/lon box, Zipf-weighted sizes, and 10 % background noise.
    pub fn clustered<R: Rng>(rng: &mut R, clusters: usize) -> Self {
        assert!(clusters > 0, "need at least one cluster");
        let bounds = ([-85.0, -180.0], [85.0, 180.0]);
        let centers: Vec<[f64; 2]> = (0..clusters)
            .map(|_| {
                [
                    rng.random_range(bounds.0[0]..bounds.1[0]),
                    rng.random_range(bounds.0[1]..bounds.1[1]),
                ]
            })
            .collect();
        let sigmas: Vec<f64> = (0..clusters).map(|_| rng.random_range(0.05..1.5)).collect();
        Self {
            centers,
            sigmas,
            cluster_weights: AliasTable::zipf(clusters, 1.0),
            background_fraction: 0.1,
            bounds,
        }
    }

    /// A purely uniform model over the lat/lon box (ablation baseline).
    pub fn uniform() -> Self {
        Self {
            centers: vec![[0.0, 0.0]],
            sigmas: vec![0.0],
            cluster_weights: AliasTable::new(&[1.0]),
            background_fraction: 1.0,
            bounds: ([-85.0, -180.0], [85.0, 180.0]),
        }
    }

    /// Draws one point.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Point<2> {
        let (lo, hi) = self.bounds;
        if rng.random::<f64>() < self.background_fraction {
            return Point::new([
                rng.random_range(lo[0]..hi[0]),
                rng.random_range(lo[1]..hi[1]),
            ]);
        }
        let c = self.cluster_weights.sample(rng);
        let center = self.centers[c];
        let sigma = self.sigmas[c];
        let (g0, g1) = gaussian_pair(rng);
        Point::new([
            (center[0] + g0 * sigma).clamp(lo[0], hi[0]),
            (center[1] + g1 * sigma).clamp(lo[1], hi[1]),
        ])
    }
}

/// Two independent standard normal deviates (Box–Muller).
fn gaussian_pair<R: Rng>(rng: &mut R) -> (f64, f64) {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = SpatialModel::clustered(&mut rng, 20);
        for _ in 0..5000 {
            let p = model.sample(&mut rng);
            assert!(p.coord(0) >= -85.0 && p.coord(0) <= 85.0);
            assert!(p.coord(1) >= -180.0 && p.coord(1) <= 180.0);
            assert!(p.is_finite());
        }
    }

    #[test]
    fn clustered_is_denser_than_uniform() {
        // Measure the average nearest-neighbor distance of a sample: a
        // clustered distribution has markedly smaller spacing.
        let mut rng = StdRng::seed_from_u64(2);
        let clustered = SpatialModel::clustered(&mut rng, 10);
        let uniform = SpatialModel::uniform();
        let spacing = |model: &SpatialModel, rng: &mut StdRng| {
            let pts: Vec<Point<2>> = (0..400).map(|_| model.sample(rng)).collect();
            let mut total = 0.0;
            for (i, p) in pts.iter().enumerate() {
                let d = pts
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, q)| p.distance(q))
                    .fold(f64::INFINITY, f64::min);
                total += d;
            }
            total / pts.len() as f64
        };
        let sc = spacing(&clustered, &mut rng);
        let su = spacing(&uniform, &mut rng);
        assert!(sc < su, "clustered spacing {sc} must beat uniform {su}");
    }

    #[test]
    fn gaussian_pair_has_unit_variance() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n / 2 {
            let (a, b) = gaussian_pair(&mut rng);
            sum += a + b;
            sumsq += a * a + b * b;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn deterministic_under_seed() {
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let model = SpatialModel::clustered(&mut rng, 5);
            (0..10).map(|_| model.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(gen(42), gen(42));
        assert_ne!(gen(42), gen(43));
    }
}
