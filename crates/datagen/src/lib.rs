#![warn(missing_docs)]
//! Synthetic dataset generation matched to the paper's Table 1.
//!
//! The paper evaluates on two datasets from the High Performance Database
//! Research Center (hpdrc.fiu.edu) that are no longer publicly available:
//!
//! | Dataset     | Objects | Avg unique words/object | Unique words |
//! |-------------|---------|-------------------------|--------------|
//! | Hotels      | 129 319 | 349                     | 53 906       |
//! | Restaurants | 456 288 | 14                      | 73 855       |
//!
//! This crate substitutes generators that reproduce those published
//! statistics (see `DESIGN.md` §4): Zipf-distributed word frequencies over
//! a synthetic vocabulary (what makes some keywords common and others
//! rare, driving inverted-list lengths and signature densities) and
//! Gaussian-mixture "city" clustering over the lat/lon plane (what gives
//! the R-Tree its real-world geometry). Everything is seeded and
//! deterministic.
//!
//! The paper's Figure 1 running example is also provided verbatim
//! ([`figure1_hotels`]) for tests and the quickstart example.

mod dataset;
mod figure1;
mod sampler;
mod spatial;
mod words;

pub use dataset::{DatasetSpec, DatasetStats, GeneratedObjects};
pub use figure1::figure1_hotels;
pub use sampler::AliasTable;
pub use spatial::SpatialModel;
pub use words::WordModel;
