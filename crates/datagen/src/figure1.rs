//! The paper's Figure 1 running example.

use ir2_model::SpatialObject;

/// The eight fictitious hotels of the paper's Figure 1, verbatim: ids are
/// 1-based (`H₁` … `H₈`), the text concatenates the name and amenities
/// attributes exactly as Section 2 prescribes.
///
/// Used by the quickstart example and by tests that reproduce the paper's
/// Examples 1–3 traces.
pub fn figure1_hotels() -> Vec<SpatialObject<2>> {
    let rows: [(f64, f64, &str); 8] = [
        (
            25.4,
            -80.1,
            "Hotel A tennis court, gift shop, spa, Internet",
        ),
        (47.3, -122.2, "Hotel B wireless Internet, pool, golf course"),
        (35.5, 139.4, "Hotel C spa, continental suites, pool"),
        (39.5, 116.2, "Hotel D sauna, pool, conference rooms"),
        (51.3, -0.5, "Hotel E dry cleaning, free lunch, pets"),
        (40.4, -73.5, "Hotel F safe box, concierge, internet, pets"),
        (
            -33.2,
            -70.4,
            "Hotel G Internet, airport transportation, pool",
        ),
        (-41.1, 174.4, "Hotel H wake up service, no pets, pool"),
    ];
    rows.iter()
        .enumerate()
        .map(|(i, (lat, lon, text))| SpatialObject::new(i as u64 + 1, [*lat, *lon], *text))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_hotels_with_expected_contents() {
        let hotels = figure1_hotels();
        assert_eq!(hotels.len(), 8);
        assert_eq!(hotels[6].id, 7);
        assert!(hotels[6].token_set().contains_all(&["internet", "pool"]));
        assert!(hotels[1].token_set().contains_all(&["internet", "pool"]));
        assert!(!hotels[0].token_set().contains("pool"));
    }
}
