//! Synthetic vocabularies and per-object word sampling.

use rand::{Rng, RngExt};

use crate::AliasTable;

/// Syllables used to synthesize pronounceable, distinct words.
const SYLLABLES: [&str; 20] = [
    "ba", "ce", "di", "fo", "gu", "ha", "ke", "li", "mo", "nu", "pa", "re", "si", "to", "vu", "wa",
    "ze", "cho", "pli", "gra",
];

/// A synthetic vocabulary with Zipf-distributed word frequencies.
///
/// Word `rank` (0 = most frequent) is drawn with probability proportional
/// to `1/(rank+1)^s` — Zipf's law, the empirical distribution of words in
/// natural text. This is what gives the reproduction the paper's query
/// dynamics: common keywords (low ranks) produce long inverted lists and
/// dense signatures, rare keywords (high ranks) are selective.
#[derive(Debug, Clone)]
pub struct WordModel {
    vocab_size: usize,
    zipf: AliasTable,
}

impl WordModel {
    /// Creates a vocabulary of `vocab_size` words with Zipf exponent `s`
    /// (natural text ≈ 1.0).
    pub fn new(vocab_size: usize, s: f64) -> Self {
        assert!(vocab_size > 0, "vocabulary must be non-empty");
        Self {
            vocab_size,
            zipf: AliasTable::zipf(vocab_size, s),
        }
    }

    /// Number of distinct words.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// The word string at `rank` (0-based; deterministic, distinct).
    ///
    /// Encodes the rank in base-20 syllables, so rank 0 = "ba",
    /// rank 21 = "ceba", etc. Distinctness follows from distinct digit
    /// strings (a leading-syllable marker avoids collisions between
    /// different lengths).
    pub fn word(&self, rank: usize) -> String {
        debug_assert!(rank < self.vocab_size);
        let mut out = String::new();
        let mut v = rank;
        loop {
            out.push_str(SYLLABLES[v % SYLLABLES.len()]);
            v /= SYLLABLES.len();
            if v == 0 {
                break;
            }
            v -= 1; // bijective base-k: no leading-zero collisions
        }
        out
    }

    /// Draws one word rank from the Zipf distribution.
    pub fn sample_rank<R: Rng>(&self, rng: &mut R) -> usize {
        self.zipf.sample(rng)
    }

    /// Draws a document of approximately `target_distinct` distinct words
    /// (uniform jitter of ±50 %), returning the distinct ranks sampled.
    pub fn sample_document<R: Rng>(&self, rng: &mut R, target_distinct: usize) -> Vec<usize> {
        let target = if target_distinct <= 1 {
            1
        } else {
            let lo = target_distinct.div_ceil(2);
            let hi = target_distinct * 3 / 2;
            rng.random_range(lo..=hi)
        };
        let target = target.min(self.vocab_size);
        let mut seen = std::collections::HashSet::with_capacity(target * 2);
        let mut out = Vec::with_capacity(target);
        // Zipf re-draws collide often for large targets; cap the attempts
        // and backfill deterministically so generation always terminates.
        let max_attempts = target * 30 + 100;
        let mut attempts = 0;
        while out.len() < target && attempts < max_attempts {
            attempts += 1;
            let r = self.sample_rank(rng);
            if seen.insert(r) {
                out.push(r);
            }
        }
        let mut backfill = 0;
        while out.len() < target {
            if seen.insert(backfill) {
                out.push(backfill);
            }
            backfill += 1;
        }
        out
    }

    /// Renders a document's ranks as a text body (space-separated words).
    pub fn render(&self, ranks: &[usize]) -> String {
        let mut s = String::with_capacity(ranks.len() * 6);
        for (i, &r) in ranks.iter().enumerate() {
            if i > 0 {
                s.push(' ');
            }
            s.push_str(&self.word(r));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn words_are_distinct() {
        let m = WordModel::new(5000, 1.0);
        let mut seen = std::collections::HashSet::new();
        for r in 0..5000 {
            assert!(seen.insert(m.word(r)), "collision at rank {r}");
        }
    }

    #[test]
    fn words_are_lowercase_tokens() {
        let m = WordModel::new(100, 1.0);
        for r in 0..100 {
            let w = m.word(r);
            let toks: Vec<String> = ir2_text_tokenize(&w);
            assert_eq!(toks, vec![w.clone()], "word must survive tokenization");
        }
    }

    fn ir2_text_tokenize(s: &str) -> Vec<String> {
        // Local shim: datagen does not depend on ir2-text; replicate the
        // tokenizer's definition for the test.
        s.split(|c: char| !c.is_alphanumeric())
            .filter(|t| !t.is_empty())
            .map(|t| t.to_lowercase())
            .collect()
    }

    #[test]
    fn documents_hit_the_distinct_target_range() {
        let m = WordModel::new(10_000, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut total = 0usize;
        let n = 300;
        for _ in 0..n {
            let doc = m.sample_document(&mut rng, 14);
            assert!(doc.len() >= 7 && doc.len() <= 21, "len {}", doc.len());
            let set: std::collections::HashSet<_> = doc.iter().collect();
            assert_eq!(set.len(), doc.len(), "distinct ranks");
            total += doc.len();
        }
        let avg = total as f64 / n as f64;
        assert!((avg - 14.0).abs() < 1.5, "average {avg}");
    }

    #[test]
    fn large_documents_terminate() {
        let m = WordModel::new(200, 1.0);
        let mut rng = StdRng::seed_from_u64(8);
        // Target exceeding vocabulary: capped, still terminates.
        let doc = m.sample_document(&mut rng, 500);
        assert_eq!(doc.len(), 200);
    }

    #[test]
    fn render_round_trips_through_whitespace_split() {
        let m = WordModel::new(100, 1.0);
        let ranks = vec![0, 5, 99, 42];
        let text = m.render(&ranks);
        let words: Vec<&str> = text.split(' ').collect();
        assert_eq!(words.len(), 4);
        assert_eq!(words[2], m.word(99));
    }
}
