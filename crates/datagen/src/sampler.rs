//! Discrete sampling utilities.

use rand::{Rng, RngExt};

/// Walker's alias method: O(n) construction, O(1) sampling from an
/// arbitrary discrete distribution. Used to draw Zipf-distributed words
/// and cluster assignments without per-sample binary searches — the
/// generators draw hundreds of millions of words for the Hotels-scale
/// dataset.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from non-negative weights (not necessarily
    /// normalized).
    ///
    /// # Panics
    /// Panics if `weights` is empty or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0,
            "alias table weights must sum to a positive value"
        );
        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Residual numerical slack: everything left is probability 1.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }
        Self { prob, alias }
    }

    /// Builds the table for a Zipf distribution over `n` ranks with
    /// exponent `s` (`weight(rank r) = 1 / r^s`, ranks 1-based) — the
    /// classic fit for natural-language word frequencies.
    pub fn zipf(n: usize, s: f64) -> Self {
        let weights: Vec<f64> = (1..=n).map(|r| (r as f64).powf(-s)).collect();
        Self::new(&weights)
    }

    /// Draws one index.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let i = rng.random_range(0..self.prob.len());
        if rng.random::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when there are no categories (never constructible).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_weights_sample_uniformly() {
        let t = AliasTable::new(&[1.0, 1.0, 1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[t.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "count {c}");
        }
    }

    #[test]
    fn skewed_weights_respected() {
        let t = AliasTable::new(&[9.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(2);
        let mut hits = 0;
        for _ in 0..20_000 {
            if t.sample(&mut rng) == 0 {
                hits += 1;
            }
        }
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.9).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let t = AliasTable::zipf(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut rank1 = 0;
        let samples = 50_000;
        for _ in 0..samples {
            if t.sample(&mut rng) == 0 {
                rank1 += 1;
            }
        }
        // H(1000) ≈ 7.485, so rank 1 has probability ≈ 0.1336.
        let frac = rank1 as f64 / samples as f64;
        assert!((frac - 0.1336).abs() < 0.01, "fraction {frac}");
    }

    #[test]
    fn zero_weight_categories_never_sampled() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert_eq!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn empty_weights_panic() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn all_zero_weights_panic() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }
}
