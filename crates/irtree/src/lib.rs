#![warn(missing_docs)]
//! The IR²-Tree and MIR²-Tree, and the algorithms that answer top-k
//! spatial keyword queries — the paper's contribution (Sections 4 and 5).
//!
//! An IR²-Tree "is a combination of an R-Tree and signature files": every
//! entry of the underlying [`RTree`](ir2_rtree::RTree) carries a signature;
//! a node's signature is the superimposition of its entries', so one
//! containment test prunes a whole subtree during incremental
//! nearest-neighbor traversal. This crate supplies:
//!
//! * [`Ir2Payload`] — uniform signature length at every level (the
//!   IR²-Tree), where parent signatures fold cheaply from children;
//! * [`MirPayload`] — per-level optimal lengths (the MIR²-Tree,
//!   "multi-level superimposed coding"), whose maintenance must re-access
//!   underlying objects across level boundaries — the trade-off Section 4
//!   discusses;
//! * object-level insert/delete/bulk-load helpers that tokenize documents
//!   and maintain signatures ([`insert_object`], [`delete_object`],
//!   [`bulk_load_objects`]);
//! * the **distance-first IR² algorithm** (Figure 8's `IR2TopK` /
//!   `IR2NearestNeighbor`) as an incremental iterator —
//!   [`DistanceFirstIter`] / [`distance_first_topk`];
//! * the **general IR² algorithm** (Section 5.3) ranking by
//!   `f(distance, IRscore)` with sound signature-derived upper bounds —
//!   [`general_topk`];
//! * the **R-Tree baseline** (Section 5.1) for comparison —
//!   [`rtree_baseline_topk`].
//!
//! Both query algorithms "can also operate on MIR²-Trees with no
//! modification" — they are generic over the payload via [`SigPayload`].
//!
//! Every algorithm additionally accepts a [`TraceSink`] (`*_traced`
//! variants) that receives one [`TraceEvent`] per node visit, signature
//! test, and object fetch; the default [`NopSink`] makes the untraced
//! paths compile to the uninstrumented code.

mod baseline;
mod diagnostics;
mod distance_first;
mod general;
mod objects;
mod payloads;
pub mod trace;
mod window;

pub use baseline::{
    rtree_baseline_topk, rtree_baseline_topk_limited, rtree_baseline_topk_limited_traced,
    rtree_baseline_topk_prefetched_limited_traced, rtree_baseline_topk_prefetched_traced,
    rtree_baseline_topk_traced, RtreeBaselineIter,
};
pub use diagnostics::{density_profile, LevelDensity};
pub use distance_first::{
    distance_first_region_topk, distance_first_region_topk_limited_traced,
    distance_first_region_topk_prefetched_traced, distance_first_region_topk_traced,
    distance_first_topk, distance_first_topk_limited, distance_first_topk_limited_traced,
    distance_first_topk_prefetched_limited_traced, distance_first_topk_prefetched_traced,
    distance_first_topk_traced, BoundedStep, DistanceFirstIter, LimitedTopk, SearchCounters,
};
pub use general::{
    general_topk, general_topk_limited, general_topk_limited_traced, general_topk_prefetched,
    general_topk_traced, GeneralQuery, ScoredResult,
};
pub use objects::{bulk_load_objects, delete_object, insert_object};
pub use payloads::{Ir2Payload, MirPayload, SigPayload};
pub use trace::{LevelPruning, NopSink, StatsSink, TraceEvent, TraceSink, TraceStats, VecSink};
pub use window::keyword_window_query;

/// An IR²-Tree: an augmented R-Tree with uniform signatures.
pub type Ir2Tree<const N: usize, D> = ir2_rtree::RTree<N, D, Ir2Payload>;

/// A MIR²-Tree: an augmented R-Tree with per-level signature schemes.
pub type Mir2Tree<const N: usize, D> = ir2_rtree::RTree<N, D, MirPayload<N>>;
