//! Object-level maintenance: tokenize a document, sign it, and keep the
//! tree's signatures consistent — the paper's `Insert(ObjPtr, MBR, S)` and
//! `Delete` at the level a user of the index thinks in.

use ir2_geo::Rect;
use ir2_model::{ObjPtr, SpatialObject};
use ir2_rtree::RTree;
use ir2_storage::{BlockDevice, Result};
use ir2_text::tokenize;

use crate::SigPayload;

/// The leaf signature bytes for an object under the tree's leaf scheme.
fn leaf_signature<const N: usize, D: BlockDevice, P: SigPayload>(
    tree: &RTree<N, D, P>,
    obj: &SpatialObject<N>,
) -> Vec<u8> {
    let scheme = tree.ops().leaf_scheme();
    let terms: Vec<String> = tokenize(&obj.text).collect();
    let sig = scheme.sign_terms(terms.iter().map(String::as_str));
    let mut out = vec![0u8; scheme.byte_len()];
    sig.write_bytes(&mut out);
    out
}

/// Inserts an object into an IR²-/MIR²-Tree: computes the leaf signature
/// from the object's text and runs the signature-maintaining R-Tree insert
/// (paper Figure 5).
pub fn insert_object<const N: usize, D: BlockDevice, P: SigPayload>(
    tree: &RTree<N, D, P>,
    ptr: ObjPtr,
    obj: &SpatialObject<N>,
) -> Result<()> {
    let payload = leaf_signature(tree, obj);
    tree.insert(ptr.0, Rect::from_point(obj.point), &payload)
}

/// Deletes an object from an IR²-/MIR²-Tree (paper Figure 6). Returns
/// whether the entry existed. Ancestor signatures are recomputed by the
/// tree's CondenseTree (signature bits cannot be unset incrementally).
pub fn delete_object<const N: usize, D: BlockDevice, P: SigPayload>(
    tree: &RTree<N, D, P>,
    ptr: ObjPtr,
    obj: &SpatialObject<N>,
) -> Result<bool> {
    tree.delete(ptr.0, &Rect::from_point(obj.point))
}

/// Bulk loads objects into an empty IR²-/MIR²-Tree with bottom-up signature
/// computation (construction-time accelerator; see `DESIGN.md`).
pub fn bulk_load_objects<const N: usize, D: BlockDevice, P: SigPayload>(
    tree: &RTree<N, D, P>,
    items: impl IntoIterator<Item = (ObjPtr, SpatialObject<N>)>,
) -> Result<()> {
    let prepared: Vec<(u64, Rect<N>, Vec<u8>)> = items
        .into_iter()
        .map(|(ptr, obj)| {
            let payload = leaf_signature(tree, &obj);
            (ptr.0, Rect::from_point(obj.point), payload)
        })
        .collect();
    tree.bulk_load(prepared)
}
