//! The general IR²-Tree algorithm (Section 5.3): results ranked by
//! `f(distance(T.p, Q.p), IRscore(T.t, Q.t))`.

use std::collections::BinaryHeap;
use std::collections::HashMap;

use ir2_geo::{OrderedF64, Point};
use ir2_model::{ExecOutcome, ObjPtr, ObjectSource, QueryLimits, SpatialObject};
use ir2_rtree::{with_frontier_prefetch, PrefetchQueue, RTree};
use ir2_sigfile::{EntryMask, Signature, SignatureBlock};
use ir2_storage::{BlockDevice, Result};
use ir2_text::{tokenize, IrScorer, RankingFn, TermId, Vocabulary};

use crate::trace::{NopSink, TraceEvent, TraceSink};
use crate::SigPayload;

/// A general top-k spatial keyword query: keywords are *preferences*, not a
/// conjunctive filter — an object containing only some (or none, if
/// `require_match` is off) of them may rank highly if it is close enough.
#[derive(Debug, Clone)]
pub struct GeneralQuery<const N: usize> {
    /// `Q.p`: the query point.
    pub point: Point<N>,
    /// `Q.t`: the query keywords (normalized through the tokenizer).
    pub keywords: Vec<String>,
    /// `Q.k`: number of requested results.
    pub k: usize,
    /// When true (the paper's default), entries whose signature matches no
    /// query keyword are pruned — "check if there can be an object T with
    /// non-zero IR score". Disable to admit results with zero IR score.
    pub require_match: bool,
}

impl<const N: usize> GeneralQuery<N> {
    /// Builds a query with normalized, deduplicated keywords.
    pub fn new<S: AsRef<str>>(point: impl Into<Point<N>>, keywords: &[S], k: usize) -> Self {
        let mut kws: Vec<String> = keywords
            .iter()
            .flat_map(|w| tokenize(w.as_ref()).collect::<Vec<_>>())
            .collect();
        kws.sort_unstable();
        kws.dedup();
        Self {
            point: point.into(),
            keywords: kws,
            k,
            require_match: true,
        }
    }

    /// Admits results with zero IR score (pure-distance fallback).
    pub fn allow_unmatched(mut self) -> Self {
        self.require_match = false;
        self
    }
}

/// One ranked result of the general algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredResult<const N: usize> {
    /// The result object.
    pub object: SpatialObject<N>,
    /// Its combined `f(distance, IRscore)` value (higher is better).
    pub score: f64,
    /// Its spatial distance to the query point.
    pub distance: f64,
    /// Its text relevance `IRscore(T.t, Q.t)`.
    pub ir_score: f64,
}

enum GItem<const N: usize> {
    Node(u64),
    Candidate(u64),
    Loaded(Box<ScoredResult<N>>),
}

/// Answers a general top-k spatial keyword query over an IR²- or MIR²-Tree
/// per Section 5.3:
///
/// * individual signatures `Signature(wᵢ)` per query keyword (no AND
///   semantics — the node signature is probed per keyword to find the
///   *matched subset*);
/// * the priority queue is ordered by
///   `Upper(v) = f(MINDIST(v), UpperBound(IRscore))`, the upper bound
///   coming from the "imaginary object" that contains every
///   signature-matched keyword (see
///   [`IrScorer::upper_bound`]);
/// * a candidate object is emitted only once its *actual* score is at
///   least the best upper bound left in the queue; otherwise it is
///   re-enqueued with its actual score "to be considered later".
///
/// Soundness rests on two monotonicities, both property-tested in this
/// workspace: signatures have no false negatives (a node's matched set
/// contains every descendant's) and `f` is decreasing in distance /
/// increasing in IR score.
pub fn general_topk<const N: usize, D: BlockDevice, P: SigPayload>(
    tree: &RTree<N, D, P>,
    objects: &dyn ObjectSource<N>,
    vocab: &Vocabulary,
    scorer: &dyn IrScorer,
    rank: &dyn RankingFn,
    query: &GeneralQuery<N>,
) -> Result<Vec<ScoredResult<N>>> {
    general_topk_traced(tree, objects, vocab, scorer, rank, query, NopSink)
}

/// [`general_topk`] with every step reported to `sink`. Signature tests
/// are recorded per *keyword* probe (the general algorithm tests each
/// query keyword's signature individually to find the matched subset), and
/// a visited node's `mindist` field carries its pop priority — the score
/// upper bound `Upper(v)`, infinite for the root — since the traversal is
/// ordered by score, not distance.
pub fn general_topk_traced<const N: usize, D: BlockDevice, P: SigPayload, S: TraceSink>(
    tree: &RTree<N, D, P>,
    objects: &dyn ObjectSource<N>,
    vocab: &Vocabulary,
    scorer: &dyn IrScorer,
    rank: &dyn RankingFn,
    query: &GeneralQuery<N>,
    sink: S,
) -> Result<Vec<ScoredResult<N>>> {
    general_topk_limited_traced(
        tree,
        objects,
        vocab,
        scorer,
        rank,
        query,
        QueryLimits::none(),
        sink,
    )
    .map(ExecOutcome::into_results)
}

/// [`general_topk`] under execution limits.
pub fn general_topk_limited<const N: usize, D: BlockDevice, P: SigPayload>(
    tree: &RTree<N, D, P>,
    objects: &dyn ObjectSource<N>,
    vocab: &Vocabulary,
    scorer: &dyn IrScorer,
    rank: &dyn RankingFn,
    query: &GeneralQuery<N>,
    limits: QueryLimits,
) -> Result<ExecOutcome<Vec<ScoredResult<N>>>> {
    general_topk_limited_traced(tree, objects, vocab, scorer, rank, query, limits, NopSink)
}

/// [`general_topk_traced`] under execution limits, checked cooperatively
/// before each heap pop. Results are emitted only when their actual score
/// dominates every remaining upper bound, i.e. in final rank order — so a
/// truncated run's results are the exact top-m prefix of the full answer.
#[allow(clippy::too_many_arguments)]
pub fn general_topk_limited_traced<const N: usize, D: BlockDevice, P: SigPayload, S: TraceSink>(
    tree: &RTree<N, D, P>,
    objects: &dyn ObjectSource<N>,
    vocab: &Vocabulary,
    scorer: &dyn IrScorer,
    rank: &dyn RankingFn,
    query: &GeneralQuery<N>,
    limits: QueryLimits,
    sink: S,
) -> Result<ExecOutcome<Vec<ScoredResult<N>>>> {
    general_impl(
        tree,
        objects,
        vocab,
        scorer,
        rank,
        query,
        limits,
        sink,
        &PrefetchQueue::disabled(),
    )
}

/// [`general_topk`] with speculative frontier prefetch (see
/// [`with_frontier_prefetch`]); results are byte-identical, and with
/// `workers == 0` or no node cache this *is* the unprefetched call.
pub fn general_topk_prefetched<const N: usize, D: BlockDevice, P: SigPayload + Sync>(
    tree: &RTree<N, D, P>,
    objects: &dyn ObjectSource<N>,
    vocab: &Vocabulary,
    scorer: &dyn IrScorer,
    rank: &dyn RankingFn,
    query: &GeneralQuery<N>,
    workers: usize,
) -> Result<Vec<ScoredResult<N>>> {
    with_frontier_prefetch(tree, workers, |pf| {
        general_impl(
            tree,
            objects,
            vocab,
            scorer,
            rank,
            query,
            QueryLimits::none(),
            NopSink,
            &pf,
        )
        .map(ExecOutcome::into_results)
    })
}

#[allow(clippy::too_many_arguments)]
fn general_impl<const N: usize, D: BlockDevice, P: SigPayload, S: TraceSink>(
    tree: &RTree<N, D, P>,
    objects: &dyn ObjectSource<N>,
    vocab: &Vocabulary,
    scorer: &dyn IrScorer,
    rank: &dyn RankingFn,
    query: &GeneralQuery<N>,
    limits: QueryLimits,
    mut sink: S,
    prefetch: &PrefetchQueue,
) -> Result<ExecOutcome<Vec<ScoredResult<N>>>> {
    // Query terms present in the corpus (absent terms can never contribute
    // to any document's score).
    let term_ids: Vec<TermId> = query
        .keywords
        .iter()
        .filter_map(|w| vocab.term_id(w))
        .collect();
    let terms: Vec<&str> = term_ids.iter().map(|&t| vocab.name(t)).collect();

    // Per-level, per-keyword query signatures, built lazily.
    let mut keyword_sigs: HashMap<u16, Vec<Signature>> = HashMap::new();
    // One reusable containment bitmask per keyword: the batched kernel
    // fills each in a single pass over a node's signature block, so
    // steady-state per-keyword pruning allocates nothing.
    let mut keyword_masks: Vec<EntryMask> = (0..term_ids.len()).map(|_| EntryMask::new()).collect();

    let mut heap: BinaryHeap<(OrderedF64, std::cmp::Reverse<u64>, u64)> = BinaryHeap::new();
    let mut items: HashMap<u64, GItem<N>> = HashMap::new();
    let mut seq: u64 = 0;
    let push = |heap: &mut BinaryHeap<_>,
                items: &mut HashMap<u64, GItem<N>>,
                seq: &mut u64,
                upper: f64,
                item: GItem<N>| {
        let id = *seq;
        *seq += 1;
        items.insert(id, item);
        heap.push((OrderedF64(upper), std::cmp::Reverse(id), id));
    };

    if let Some(root) = tree.root() {
        push(
            &mut heap,
            &mut items,
            &mut seq,
            f64::INFINITY,
            GItem::Node(root),
        );
    }

    let mut out: Vec<ScoredResult<N>> = Vec::with_capacity(query.k);
    let mut nodes_read: u64 = 0;
    let mut objects_loaded: u64 = 0;
    let mut truncated = None;
    while out.len() < query.k {
        // A drained heap means everything already emitted is the complete
        // answer — established *before* the limit check, so a deadline or
        // budget that trips after the last unit of work cannot misreport a
        // finished query as truncated.
        let Some(&(_, _, peek_id)) = heap.peek() else {
            break;
        };
        // Cooperative limit check; charged I/O is nodes read plus objects
        // loaded, mirroring `DistanceFirstIter`.
        if !limits.is_unlimited() {
            truncated = limits.check(nodes_read + objects_loaded, heap.len());
            if truncated.is_some() {
                break;
            }
        }
        let (upper, _, id) = heap.pop().expect("peeked entry still present");
        debug_assert_eq!(id, peek_id);
        let item = items.remove(&id).expect("heap entry has an item");
        match item {
            GItem::Loaded(res) => out.push(*res),
            GItem::Candidate(child) => {
                objects_loaded += 1;
                let obj = objects.load(ObjPtr(child))?;
                let distance = obj.point.distance(&query.point);
                let ir_score = scorer.score(vocab, &term_ids, &obj.token_counts());
                sink.record(&TraceEvent::ObjectFetched {
                    ptr: child,
                    distance,
                    matched: ir_score > 0.0,
                });
                // The verify-step analog of IR2TopK line 21: a signature
                // false positive may surface an object that matches no
                // query keyword; under `require_match` it is not a result.
                if query.require_match && ir_score <= 0.0 {
                    continue;
                }
                let score = rank.combine(distance, ir_score);
                let res = ScoredResult {
                    object: obj,
                    score,
                    distance,
                    ir_score,
                };
                // Emit if the actual score dominates everything unseen.
                let best_remaining = heap
                    .peek()
                    .map(|(u, _, _)| u.0)
                    .unwrap_or(f64::NEG_INFINITY);
                if score >= best_remaining {
                    out.push(res);
                } else {
                    push(
                        &mut heap,
                        &mut items,
                        &mut seq,
                        score,
                        GItem::Loaded(Box::new(res)),
                    );
                }
            }
            GItem::Node(node_id) => {
                nodes_read += 1;
                let (node, _hit) = tree.read_node_cached(node_id)?;
                let level = node.level();
                sink.record(&TraceEvent::NodeVisited {
                    node: node_id,
                    level,
                    mindist: upper.0,
                    entries: node.len(),
                    heap_size: heap.len(),
                });
                let ops = tree.ops();
                // Borrowed for the whole entry loop — per-node signature
                // clones would allocate on every node read (the bug fixed
                // in `DistanceFirstIter::step`).
                let sigs = keyword_sigs.entry(level).or_insert_with(|| {
                    terms
                        .iter()
                        .map(|t| ops.scheme_at(level).sign_term(t))
                        .collect()
                });
                let bits = ops.scheme_at(level).bits();
                // Entry signatures are assembled into one columnar block
                // per cached node image and shared with
                // `DistanceFirstIter` (same decoration type, same value —
                // see `CachedNode::decorations`).
                let esigs: &SignatureBlock =
                    node.decorations(|n| SignatureBlock::from_payloads(bits, n.payloads()));
                // One batched kernel pass per keyword fills that keyword's
                // reusable bitmask with every entry's verdict.
                for (s, m) in sigs.iter().zip(keyword_masks.iter_mut()) {
                    esigs.matches_mask_into(s, m);
                }
                let mut speculate = prefetch.width();
                for i in 0..node.len() {
                    let matched: Vec<TermId> = term_ids
                        .iter()
                        .zip(keyword_masks.iter())
                        .filter(|(_, m)| {
                            let hit = m.get(i);
                            sink.record(&TraceEvent::SignatureTest {
                                level,
                                matched: hit,
                            });
                            hit
                        })
                        .map(|(&t, _)| t)
                        .collect();
                    if matched.is_empty() && query.require_match {
                        continue;
                    }
                    let child = node.child(i);
                    let ub_ir = scorer.upper_bound(vocab, &matched);
                    let dist = node.rect(i).min_dist(&query.point);
                    let child_upper = rank.combine(dist, ub_ir).min(upper.0);
                    let item = if node.is_leaf() {
                        GItem::Candidate(child)
                    } else {
                        if speculate > 0 {
                            prefetch.enqueue(child);
                            speculate -= 1;
                        }
                        GItem::Node(child)
                    };
                    push(&mut heap, &mut items, &mut seq, child_upper, item);
                }
            }
        }
    }
    Ok(match truncated {
        Some(reason) => ExecOutcome::Truncated {
            reason,
            results_so_far: out,
        },
        None => ExecOutcome::Complete(out),
    })
}
