//! The distance-first IR²-Tree algorithm (paper Figure 8: `IR2TopK` on top
//! of `IR2NearestNeighbor`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashMap;

use ir2_geo::OrderedF64;
use ir2_model::{
    DistanceFirstQuery, ExecOutcome, ObjPtr, ObjectSource, QueryLimits, QueryRegion, SpatialObject,
    TruncateReason,
};
use ir2_rtree::{with_frontier_prefetch, PrefetchQueue, RTree};
use ir2_sigfile::{EntryMask, Signature, SignatureBlock};
use ir2_storage::{BlockDevice, Result};

use crate::trace::{NopSink, TraceEvent, TraceSink};
use crate::SigPayload;

/// Counters the incremental search maintains, matching the metrics the
/// paper's figures report per query.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SearchCounters {
    /// Tree nodes read from disk.
    pub nodes_read: u64,
    /// Entries (node or object) pruned by a failed signature match.
    pub pruned_by_signature: u64,
    /// Candidate objects loaded and checked against the keywords.
    pub candidates_checked: u64,
    /// Candidates whose text did not actually contain all keywords —
    /// signature false positives (line 21 of `IR2TopK` caught them).
    pub false_positives: u64,
    /// Of [`nodes_read`](SearchCounters::nodes_read), visits served from
    /// the tree's decoded-node cache (no device I/O, no CRC verification,
    /// no entry decode). Always 0 without an attached cache. `nodes_read`
    /// keeps counting *visits* either way, so I/O budgets are deterministic
    /// regardless of cache state.
    pub cache_hits: u64,
    /// Of [`nodes_read`](SearchCounters::nodes_read), visits that had to
    /// decode the node (device read + CRC + entry decode) — including every
    /// visit on a tree with no cache attached. The conservation identity
    /// `nodes_read == cache_hits + cache_misses` holds for every report;
    /// prefetch workers decode out-of-band into the cache's *global* stats
    /// and never touch these per-query counters, so the identity is exact
    /// under prefetch too.
    pub cache_misses: u64,
}

/// What a limit-aware top-k run returns: the complete-or-truncated
/// results plus the search counters of the run.
pub type LimitedTopk<const N: usize> = (ExecOutcome<Vec<(SpatialObject<N>, f64)>>, SearchCounters);

/// Outcome of one bounded best-first step
/// ([`DistanceFirstIter::next_within`] /
/// [`RtreeBaselineIter::next_within`](crate::RtreeBaselineIter::next_within)).
#[derive(Debug)]
pub enum BoundedStep<const N: usize> {
    /// A verified result at distance ≤ the step's limit.
    Hit(SpatialObject<N>, f64),
    /// The frontier minimum now exceeds the limit: every remaining result
    /// is farther than the limit, and no work beyond it was performed.
    /// `frontier_bound()` holds the new, tighter bound.
    Pending,
    /// The frontier is drained — or an execution limit truncated the
    /// search (`truncation()` tells which).
    Done,
}

#[derive(PartialEq, Eq)]
enum Item {
    Node(u64),
    Object(u64),
}

/// Incremental distance-first top-k spatial keyword search over an
/// IR²-Tree or MIR²-Tree.
///
/// This is the paper's `IR2NearestNeighbor` (Figure 8) wrapped as an
/// iterator: a best-first traversal ordered by MINDIST in which every
/// entry must additionally pass the signature containment test against the
/// query signature *of that node's level* ("if s matches w"). Each
/// candidate object the traversal surfaces is loaded and verified against
/// the actual keywords — signatures have false positives but no false
/// negatives, so verified results emerge in exact distance order.
///
/// With an empty keyword list the query signature is empty, every entry
/// matches, and the iterator degenerates to plain incremental NN — the
/// IR²-Tree "facilitates both top-k spatial queries and top-k spatial
/// keyword queries".
///
/// The `S` parameter is a [`TraceSink`] receiving one event per node
/// visit, signature test, and object fetch; the default [`NopSink`]
/// monomorphizes every `record` call to an inlined empty body, so the
/// untraced iterator is byte-for-byte the pre-instrumentation code.
pub struct DistanceFirstIter<'a, const N: usize, D, P: SigPayload, S: TraceSink = NopSink> {
    tree: &'a RTree<N, D, P>,
    objects: &'a dyn ObjectSource<N>,
    region: QueryRegion<N>,
    keywords: Vec<String>,
    /// Query signature per node level, built lazily (levels differ only in
    /// the MIR²-Tree).
    query_sigs: HashMap<u16, Signature>,
    heap: BinaryHeap<Reverse<(OrderedF64, u64, Item)>>,
    seq: u64,
    counters: SearchCounters,
    limits: QueryLimits,
    truncated: Option<TruncateReason>,
    prefetch: PrefetchQueue,
    /// Reusable per-node containment bitmask: the batched kernel writes
    /// every entry's verdict here in one pass, so steady-state pruning
    /// allocates nothing.
    mask: EntryMask,
    sink: S,
}

impl Ord for Item {
    fn cmp(&self, _other: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}
impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<'a, const N: usize, D: BlockDevice, P: SigPayload> DistanceFirstIter<'a, N, D, P> {
    /// Starts the incremental search (`U.Enqueue(R.RootNode, 0)`).
    pub fn new(
        tree: &'a RTree<N, D, P>,
        objects: &'a dyn ObjectSource<N>,
        query: DistanceFirstQuery<N>,
    ) -> Self {
        Self::with_region(
            tree,
            objects,
            QueryRegion::Point(query.point),
            query.keywords,
        )
    }

    /// Starts an incremental search anchored at an arbitrary region — the
    /// paper's "an area could be used instead" of the query point. Results
    /// inside an area region come out at distance zero, then in increasing
    /// distance from the area's boundary.
    pub fn with_region(
        tree: &'a RTree<N, D, P>,
        objects: &'a dyn ObjectSource<N>,
        region: QueryRegion<N>,
        keywords: Vec<String>,
    ) -> Self {
        Self::with_region_sink(tree, objects, region, keywords, NopSink)
    }
}

impl<'a, const N: usize, D: BlockDevice, P: SigPayload, S: TraceSink>
    DistanceFirstIter<'a, N, D, P, S>
{
    /// Starts an incremental search that reports every step to `sink`.
    pub fn with_region_sink(
        tree: &'a RTree<N, D, P>,
        objects: &'a dyn ObjectSource<N>,
        region: QueryRegion<N>,
        keywords: Vec<String>,
        sink: S,
    ) -> Self {
        let mut heap = BinaryHeap::new();
        if let Some(root) = tree.root() {
            heap.push(Reverse((OrderedF64(0.0), 0, Item::Node(root))));
        }
        Self {
            tree,
            objects,
            region,
            keywords,
            query_sigs: HashMap::new(),
            heap,
            seq: 1,
            counters: SearchCounters::default(),
            limits: QueryLimits::none(),
            truncated: None,
            prefetch: PrefetchQueue::disabled(),
            mask: EntryMask::new(),
            sink,
        }
    }

    /// Applies execution limits: once a limit trips, the iterator stops
    /// yielding ([`truncation`](Self::truncation) reports why). Everything
    /// yielded before the cut is still the exact top-m prefix of the full
    /// answer, because the traversal emits verified results in distance
    /// order.
    pub fn limited(mut self, limits: QueryLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Attaches a frontier-prefetch queue (see
    /// [`with_frontier_prefetch`]): each node expansion nominates up to
    /// `queue.width()` signature-passing child nodes for background decode
    /// into the tree's node cache. Results and rank order are unaffected.
    pub fn prefetching(mut self, queue: PrefetchQueue) -> Self {
        self.prefetch = queue;
        self
    }

    /// The search counters so far.
    pub fn counters(&self) -> SearchCounters {
        self.counters
    }

    /// Which limit stopped the search, if one did.
    pub fn truncation(&self) -> Option<TruncateReason> {
        self.truncated
    }

    /// Lower bound on the distance of every result this iterator can still
    /// emit: the MINDIST key at the head of the frontier. The best-first
    /// heap minimum is non-decreasing and MINDIST lower-bounds everything
    /// inside an MBR, so nothing closer can appear later — this is the
    /// per-shard bound a scatter-gather merge compares against its current
    /// k-th distance. `None` once the frontier is drained (and, for a
    /// truncated search, the bound at the moment of the cut is the radius
    /// within which the emitted prefix is exact).
    pub fn frontier_bound(&self) -> Option<f64> {
        self.heap.peek().map(|Reverse((d, _, _))| d.0)
    }

    /// Consumes the iterator, returning the trace sink.
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// Like the iterator's `next`, but performs no work beyond `limit`:
    /// each unit of work (node expansion or candidate verification) runs
    /// only while the frontier head's MINDIST key is ≤ `limit`. A caller
    /// holding a tighter bound — a scatter-gather merge comparing shards
    /// against its current k-th distance, say — never pays for reads whose
    /// results it would discard. [`BoundedStep::Pending`] means the head
    /// now exceeds the limit; the search resumes exactly where it stopped
    /// when called again with a larger limit.
    pub fn next_within(&mut self, limit: f64) -> Result<BoundedStep<N>> {
        loop {
            // A drained frontier means everything already emitted is the
            // complete answer — established *before* the limit check, so a
            // deadline or budget that trips after the last unit of work
            // cannot misreport a finished query as truncated.
            if self.heap.is_empty() {
                return Ok(BoundedStep::Done);
            }
            if matches!(self.heap.peek(), Some(Reverse((d, _, _))) if d.0 > limit) {
                return Ok(BoundedStep::Pending);
            }
            // Cooperative limit check before each unit of work; charged
            // I/O is nodes read plus objects loaded, so an `io_budget` of
            // zero stops the search before it touches the disk at all.
            if self.truncated.is_none() && !self.limits.is_unlimited() {
                let io_used = self.counters.nodes_read + self.counters.candidates_checked;
                self.truncated = self.limits.check(io_used, self.heap.len());
            }
            if self.truncated.is_some() {
                return Ok(BoundedStep::Done);
            }
            let Some(Reverse((dist, _, item))) = self.heap.pop() else {
                return Ok(BoundedStep::Done);
            };
            match item {
                Item::Object(child) => {
                    // Line 20-21 of IR2TopK: load and verify (false
                    // positives are possible).
                    self.counters.candidates_checked += 1;
                    let obj = self.objects.load(ObjPtr(child))?;
                    let matched = obj.token_set().contains_all(&self.keywords);
                    self.sink.record(&TraceEvent::ObjectFetched {
                        ptr: child,
                        distance: dist.0,
                        matched,
                    });
                    if matched {
                        return Ok(BoundedStep::Hit(obj, dist.0));
                    }
                    self.counters.false_positives += 1;
                }
                Item::Node(id) => {
                    let (node, hit) = self.tree.read_node_cached(id)?;
                    self.counters.nodes_read += 1;
                    self.counters.cache_hits += u64::from(hit);
                    self.counters.cache_misses += u64::from(!hit);
                    self.sink.record(&TraceEvent::NodeVisited {
                        node: id,
                        level: node.level(),
                        mindist: dist.0,
                        entries: node.len(),
                        heap_size: self.heap.len(),
                    });
                    // Borrow the cached query signature for this level
                    // instead of cloning it per node (signatures are heap
                    // buffers; at hundreds of bits each, a clone per node
                    // read dominated small-query allocations). The
                    // destructuring gives the cache a borrow disjoint from
                    // the counters/heap the entry loop mutates.
                    let Self {
                        tree,
                        region,
                        keywords,
                        query_sigs,
                        heap,
                        seq,
                        counters,
                        prefetch,
                        mask,
                        sink,
                        ..
                    } = self;
                    let scheme = tree.ops().scheme_at(node.level());
                    let qsig = query_sigs
                        .entry(node.level())
                        .or_insert_with(|| scheme.sign_terms(keywords.iter().map(String::as_str)));
                    // Entry signatures are assembled into one columnar
                    // block per cached node image, shared by every later
                    // warm visit (and by the general algorithm, which uses
                    // the same decoration type).
                    let esigs: &SignatureBlock = node.decorations(|n| {
                        SignatureBlock::from_payloads(scheme.bits(), n.payloads())
                    });
                    // One batched kernel pass computes every entry's
                    // containment verdict into the reusable bitmask.
                    esigs.matches_mask_into(qsig, mask);
                    let mut speculate = prefetch.width();
                    for i in 0..node.len() {
                        // "if s matches w": drop entries whose signature
                        // does not contain the query signature.
                        let matched = mask.get(i);
                        sink.record(&TraceEvent::SignatureTest {
                            level: node.level(),
                            matched,
                        });
                        if !matched {
                            counters.pruned_by_signature += 1;
                            continue;
                        }
                        let child = node.child(i);
                        let d = OrderedF64(region.min_dist(&node.rect(i)));
                        let item = if node.is_leaf() {
                            Item::Object(child)
                        } else {
                            if speculate > 0 {
                                prefetch.enqueue(child);
                                speculate -= 1;
                            }
                            Item::Node(child)
                        };
                        heap.push(Reverse((d, *seq, item)));
                        *seq += 1;
                    }
                }
            }
        }
    }
}

impl<const N: usize, D: BlockDevice, P: SigPayload, S: TraceSink>
    DistanceFirstIter<'_, N, D, P, S>
{
    fn step(&mut self) -> Result<Option<(SpatialObject<N>, f64)>> {
        Ok(match self.next_within(f64::INFINITY)? {
            BoundedStep::Hit(obj, d) => Some((obj, d)),
            _ => None,
        })
    }
}

impl<const N: usize, D: BlockDevice, P: SigPayload, S: TraceSink> Iterator
    for DistanceFirstIter<'_, N, D, P, S>
{
    type Item = Result<(SpatialObject<N>, f64)>;

    fn next(&mut self) -> Option<Self::Item> {
        self.step().transpose()
    }
}

/// Answers a distance-first top-k spatial keyword query over an IR²- or
/// MIR²-Tree (the paper's `IR2TopK(R, Q)`), returning `(object, distance)`
/// pairs in ascending distance together with the search counters.
///
/// ```
/// use std::sync::Arc;
/// use ir2_irtree::{distance_first_topk, insert_object, Ir2Payload};
/// use ir2_model::{DistanceFirstQuery, ObjectStore, SpatialObject};
/// use ir2_rtree::{RTree, RTreeConfig};
/// use ir2_sigfile::SignatureScheme;
/// use ir2_storage::MemDevice;
///
/// let store = Arc::new(ObjectStore::<2, _>::create(MemDevice::new()));
/// let tree = RTree::create(
///     MemDevice::new(),
///     RTreeConfig::with_max(4),
///     Ir2Payload::new(SignatureScheme::from_bytes_len(8, 3, 7)),
/// )?;
/// for (i, text) in ["cafe wifi", "cafe garden", "bar pool"].iter().enumerate() {
///     let obj = SpatialObject::new(i as u64, [i as f64, 0.0], *text);
///     insert_object(&tree, store.append(&obj)?, &obj)?;
/// }
/// let q = DistanceFirstQuery::new([0.0, 0.0], &["cafe"], 2);
/// let (hits, _) = distance_first_topk(&tree, store.as_ref(), &q)?;
/// assert_eq!(hits.len(), 2);
/// assert_eq!(hits[0].0.id, 0); // the nearest cafe first
/// # Ok::<(), ir2_storage::StorageError>(())
/// ```
pub fn distance_first_topk<const N: usize, D: BlockDevice, P: SigPayload>(
    tree: &RTree<N, D, P>,
    objects: &dyn ObjectSource<N>,
    query: &DistanceFirstQuery<N>,
) -> Result<(Vec<(SpatialObject<N>, f64)>, SearchCounters)> {
    let iter = DistanceFirstIter::new(tree, objects, query.clone());
    collect_k(iter, query.k)
}

/// [`distance_first_topk`] with every execution step reported to `sink`
/// (pass `&mut sink` to keep ownership — sinks are usable by reference).
pub fn distance_first_topk_traced<const N: usize, D: BlockDevice, P: SigPayload, S: TraceSink>(
    tree: &RTree<N, D, P>,
    objects: &dyn ObjectSource<N>,
    query: &DistanceFirstQuery<N>,
    sink: S,
) -> Result<(Vec<(SpatialObject<N>, f64)>, SearchCounters)> {
    let iter = DistanceFirstIter::with_region_sink(
        tree,
        objects,
        QueryRegion::Point(query.point),
        query.keywords.clone(),
        sink,
    );
    collect_k(iter, query.k)
}

/// Distance-first top-k anchored at an arbitrary [`QueryRegion`] (point or
/// area). Keywords are normalized like [`DistanceFirstQuery::new`] does.
pub fn distance_first_region_topk<const N: usize, D: BlockDevice, P: SigPayload>(
    tree: &RTree<N, D, P>,
    objects: &dyn ObjectSource<N>,
    region: QueryRegion<N>,
    keywords: &[String],
    k: usize,
) -> Result<(Vec<(SpatialObject<N>, f64)>, SearchCounters)> {
    distance_first_region_topk_traced(tree, objects, region, keywords, k, NopSink)
}

/// [`distance_first_region_topk`] with every step reported to `sink`.
pub fn distance_first_region_topk_traced<
    const N: usize,
    D: BlockDevice,
    P: SigPayload,
    S: TraceSink,
>(
    tree: &RTree<N, D, P>,
    objects: &dyn ObjectSource<N>,
    region: QueryRegion<N>,
    keywords: &[String],
    k: usize,
    sink: S,
) -> Result<(Vec<(SpatialObject<N>, f64)>, SearchCounters)> {
    let mut kws: Vec<String> = keywords
        .iter()
        .flat_map(|w| ir2_text::tokenize(w).collect::<Vec<_>>())
        .collect();
    kws.sort_unstable();
    kws.dedup();
    let iter = DistanceFirstIter::with_region_sink(tree, objects, region, kws, sink);
    collect_k(iter, k)
}

/// [`distance_first_topk`] under execution limits. A tripped limit yields
/// [`ExecOutcome::Truncated`] whose `results_so_far` is the exact top-m
/// prefix of the full answer (never an error).
pub fn distance_first_topk_limited<const N: usize, D: BlockDevice, P: SigPayload>(
    tree: &RTree<N, D, P>,
    objects: &dyn ObjectSource<N>,
    query: &DistanceFirstQuery<N>,
    limits: QueryLimits,
) -> Result<LimitedTopk<N>> {
    let iter = DistanceFirstIter::new(tree, objects, query.clone()).limited(limits);
    collect_k_limited(iter, query.k)
}

/// [`distance_first_topk_limited`] with every step reported to `sink`.
pub fn distance_first_topk_limited_traced<
    const N: usize,
    D: BlockDevice,
    P: SigPayload,
    S: TraceSink,
>(
    tree: &RTree<N, D, P>,
    objects: &dyn ObjectSource<N>,
    query: &DistanceFirstQuery<N>,
    limits: QueryLimits,
    sink: S,
) -> Result<LimitedTopk<N>> {
    let iter = DistanceFirstIter::with_region_sink(
        tree,
        objects,
        QueryRegion::Point(query.point),
        query.keywords.clone(),
        sink,
    )
    .limited(limits);
    collect_k_limited(iter, query.k)
}

/// [`distance_first_region_topk_traced`] under execution limits.
pub fn distance_first_region_topk_limited_traced<
    const N: usize,
    D: BlockDevice,
    P: SigPayload,
    S: TraceSink,
>(
    tree: &RTree<N, D, P>,
    objects: &dyn ObjectSource<N>,
    region: QueryRegion<N>,
    keywords: &[String],
    k: usize,
    limits: QueryLimits,
    sink: S,
) -> Result<LimitedTopk<N>> {
    let mut kws: Vec<String> = keywords
        .iter()
        .flat_map(|w| ir2_text::tokenize(w).collect::<Vec<_>>())
        .collect();
    kws.sort_unstable();
    kws.dedup();
    let iter =
        DistanceFirstIter::with_region_sink(tree, objects, region, kws, sink).limited(limits);
    collect_k_limited(iter, k)
}

/// [`distance_first_topk_traced`] with speculative frontier prefetch: up
/// to `workers` background threads decode upcoming frontier nodes into the
/// tree's node cache while the traversal works. Results are byte-identical
/// to the unprefetched call; with `workers == 0` or no attached node cache
/// this *is* the unprefetched call (nothing is spawned).
pub fn distance_first_topk_prefetched_traced<const N: usize, D, P, S>(
    tree: &RTree<N, D, P>,
    objects: &dyn ObjectSource<N>,
    query: &DistanceFirstQuery<N>,
    workers: usize,
    sink: S,
) -> Result<(Vec<(SpatialObject<N>, f64)>, SearchCounters)>
where
    D: BlockDevice,
    P: SigPayload + Sync,
    S: TraceSink,
{
    with_frontier_prefetch(tree, workers, |pf| {
        let iter = DistanceFirstIter::with_region_sink(
            tree,
            objects,
            QueryRegion::Point(query.point),
            query.keywords.clone(),
            sink,
        )
        .prefetching(pf);
        collect_k(iter, query.k)
    })
}

/// [`distance_first_topk_limited_traced`] with speculative frontier
/// prefetch; see [`distance_first_topk_prefetched_traced`].
pub fn distance_first_topk_prefetched_limited_traced<const N: usize, D, P, S>(
    tree: &RTree<N, D, P>,
    objects: &dyn ObjectSource<N>,
    query: &DistanceFirstQuery<N>,
    limits: QueryLimits,
    workers: usize,
    sink: S,
) -> Result<LimitedTopk<N>>
where
    D: BlockDevice,
    P: SigPayload + Sync,
    S: TraceSink,
{
    with_frontier_prefetch(tree, workers, |pf| {
        let iter = DistanceFirstIter::with_region_sink(
            tree,
            objects,
            QueryRegion::Point(query.point),
            query.keywords.clone(),
            sink,
        )
        .limited(limits)
        .prefetching(pf);
        collect_k_limited(iter, query.k)
    })
}

/// [`distance_first_region_topk_traced`] with speculative frontier
/// prefetch; see [`distance_first_topk_prefetched_traced`].
pub fn distance_first_region_topk_prefetched_traced<const N: usize, D, P, S>(
    tree: &RTree<N, D, P>,
    objects: &dyn ObjectSource<N>,
    region: QueryRegion<N>,
    keywords: &[String],
    k: usize,
    workers: usize,
    sink: S,
) -> Result<(Vec<(SpatialObject<N>, f64)>, SearchCounters)>
where
    D: BlockDevice,
    P: SigPayload + Sync,
    S: TraceSink,
{
    let mut kws: Vec<String> = keywords
        .iter()
        .flat_map(|w| ir2_text::tokenize(w).collect::<Vec<_>>())
        .collect();
    kws.sort_unstable();
    kws.dedup();
    with_frontier_prefetch(tree, workers, |pf| {
        let iter =
            DistanceFirstIter::with_region_sink(tree, objects, region, kws, sink).prefetching(pf);
        collect_k(iter, k)
    })
}

/// Canonicalizes a distance-ordered result list to the workspace-wide
/// `(distance, id)` tie order. Two distinct situations need it:
///
/// - the stream produced `k` results: every further result *at the k-th
///   distance* must first be drained (the bound is inclusive and the
///   stream is non-decreasing, so `next_within` touches only the tied
///   group) so the cut keeps the id-smallest tied members;
/// - the stream exhausted below `k`: no drain is needed, but *interior*
///   equal-distance groups still sit in traversal order — the
///   differential fuzzer caught exactly this against the brute-force
///   oracle (`ir2 fuzz`, seed 42 iter 1: k past the match count left
///   tied pairs swapped).
///
/// Both end with the same full `(distance, id)` sort, so every collector
/// calls this unconditionally before returning.
fn canonicalize_ties<const N: usize>(out: &mut Vec<(SpatialObject<N>, f64)>, k: usize) {
    out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.id.cmp(&b.0.id)));
    out.truncate(k);
}

fn collect_k<const N: usize, D: BlockDevice, P: SigPayload, S: TraceSink>(
    mut iter: DistanceFirstIter<'_, N, D, P, S>,
    k: usize,
) -> Result<(Vec<(SpatialObject<N>, f64)>, SearchCounters)> {
    let mut out = Vec::with_capacity(k.min(1024));
    while out.len() < k {
        match iter.step()? {
            Some(hit) => out.push(hit),
            None => break,
        }
    }
    if out.len() == k && k > 0 {
        let kth = out[k - 1].1;
        while let BoundedStep::Hit(obj, d) = iter.next_within(kth)? {
            out.push((obj, d));
        }
    }
    canonicalize_ties(&mut out, k);
    Ok((out, iter.counters()))
}

fn collect_k_limited<const N: usize, D: BlockDevice, P: SigPayload, S: TraceSink>(
    mut iter: DistanceFirstIter<'_, N, D, P, S>,
    k: usize,
) -> Result<LimitedTopk<N>> {
    let mut out = Vec::with_capacity(k.min(1024));
    while out.len() < k {
        match iter.step()? {
            Some(hit) => out.push(hit),
            None => break,
        }
    }
    if out.len() == k && k > 0 && iter.truncation().is_none() {
        // The tie drain runs under the same limits as the search proper; a
        // budget that trips mid-drain reports `Truncated` (the tied tail
        // could not be canonicalized, so the choice of tied members is not
        // guaranteed to be the `(distance, id)`-smallest).
        let kth = out[k - 1].1;
        while let BoundedStep::Hit(obj, d) = iter.next_within(kth)? {
            out.push((obj, d));
        }
    }
    canonicalize_ties(&mut out, k);
    let counters = iter.counters();
    let outcome = match iter.truncation() {
        Some(reason) => ExecOutcome::Truncated {
            reason,
            results_so_far: out,
        },
        None => ExecOutcome::Complete(out),
    };
    Ok((outcome, counters))
}
