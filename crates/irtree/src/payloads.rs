//! Signature payload strategies for the augmented R-Tree.

use std::sync::Arc;

use ir2_model::{ObjPtr, ObjectSource};
use ir2_rtree::PayloadOps;
use ir2_sigfile::{MultiLevelScheme, SignatureScheme};
use ir2_text::tokenize;

/// A [`PayloadOps`] whose payloads are signatures, exposing the per-level
/// scheme so the query algorithms can build matching query signatures.
pub trait SigPayload: PayloadOps {
    /// The signature scheme of entries in a node at `level`.
    fn scheme_at(&self, level: u16) -> &SignatureScheme;

    /// The scheme applied to objects (leaf entries).
    fn leaf_scheme(&self) -> &SignatureScheme {
        self.scheme_at(0)
    }
}

fn or_bytes(acc: &mut [u8], other: &[u8]) {
    debug_assert_eq!(acc.len(), other.len(), "signature payload length mismatch");
    for (a, b) in acc.iter_mut().zip(other.iter()) {
        *a |= b;
    }
}

// ---------------------------------------------------------------------
// IR²-Tree: one scheme everywhere.
// ---------------------------------------------------------------------

/// Payloads of the plain IR²-Tree: every level shares one signature scheme,
/// so "the signature of a node is the superimposition (OR-ing) of all the
/// signatures of its entries" — maintenance costs no object accesses beyond
/// the R-Tree's own work.
#[derive(Debug, Clone)]
pub struct Ir2Payload {
    scheme: SignatureScheme,
}

impl Ir2Payload {
    /// Creates the payload strategy from the tree's signature scheme.
    pub fn new(scheme: SignatureScheme) -> Self {
        Self { scheme }
    }
}

impl SigPayload for Ir2Payload {
    fn scheme_at(&self, _level: u16) -> &SignatureScheme {
        &self.scheme
    }
}

impl PayloadOps for Ir2Payload {
    fn entry_size(&self, _node_level: u16) -> usize {
        self.scheme.byte_len()
    }

    fn merge(&self, _node_level: u16, acc: &mut [u8], other: &[u8]) {
        or_bytes(acc, other);
    }

    fn summarize_entries(
        &self,
        _node_level: u16,
        entry_payloads: &mut dyn Iterator<Item = &[u8]>,
    ) -> Option<Vec<u8>> {
        let mut acc = vec![0u8; self.scheme.byte_len()];
        for p in entry_payloads {
            or_bytes(&mut acc, p);
        }
        Some(acc)
    }

    fn summarize_objects(
        &self,
        _parent_level: u16,
        _objects: &mut dyn Iterator<Item = u64>,
    ) -> Vec<u8> {
        unreachable!("Ir2Payload summaries always fold from entries")
    }

    fn lift_object(&self, _child: u64, leaf_payload: &[u8], _node_level: u16) -> Vec<u8> {
        leaf_payload.to_vec()
    }
}

// ---------------------------------------------------------------------
// MIR²-Tree: a scheme per level.
// ---------------------------------------------------------------------

/// Payloads of the MIR²-Tree: per-level signature schemes (multi-level
/// superimposed coding). A node's signature superimposes the signatures of
/// **all objects in its subtree** under its own level's scheme, so
/// summaries across level boundaries cannot fold from children — they
/// re-access the underlying objects through the [`ObjectSource`], which is
/// "expensive to maintain" exactly as Section 4 warns.
///
/// Deviation noted in `DESIGN.md`: on the pure-insert path the new
/// object's lifted signature is OR-ed into each ancestor (mathematically
/// identical to recomputation, since superimposition is monotone); full
/// recomputation happens on splits, deletions, and whenever
/// `strict_paper_maintenance` is set (the paper's literal rule, measured by
/// the maintenance ablation).
pub struct MirPayload<const N: usize> {
    schemes: MultiLevelScheme,
    objects: Arc<dyn ObjectSource<N>>,
    strict: bool,
}

impl<const N: usize> MirPayload<N> {
    /// Creates the strategy from the per-level schemes and the object file
    /// that signature recomputation reads.
    pub fn new(schemes: MultiLevelScheme, objects: Arc<dyn ObjectSource<N>>) -> Self {
        Self {
            schemes,
            objects,
            strict: false,
        }
    }

    /// Enables the paper's literal maintenance rule: every insert
    /// recomputes all ancestor signatures from the underlying objects.
    pub fn strict(mut self) -> Self {
        self.strict = true;
        self
    }

    /// The per-level scheme ladder.
    pub fn schemes(&self) -> &MultiLevelScheme {
        &self.schemes
    }

    fn sign_object_at(&self, child: u64, level: u16) -> Vec<u8> {
        let scheme = self.schemes.scheme(level);
        let mut out = vec![0u8; scheme.byte_len()];
        // Object loads may fail only on a corrupt store; signatures must
        // stay conservative (all-ones) rather than lose bits, so a failed
        // load yields a signature that can never cause a false negative.
        match self.objects.load(ObjPtr(child)) {
            Ok(obj) => {
                let terms: Vec<String> = tokenize(&obj.text).collect();
                let sig = scheme.sign_terms(terms.iter().map(String::as_str));
                sig.write_bytes(&mut out);
            }
            Err(_) => out.fill(0xFF),
        }
        out
    }
}

impl<const N: usize> SigPayload for MirPayload<N> {
    fn scheme_at(&self, level: u16) -> &SignatureScheme {
        self.schemes.scheme(level)
    }
}

impl<const N: usize> PayloadOps for MirPayload<N> {
    fn entry_size(&self, node_level: u16) -> usize {
        self.schemes.scheme(node_level).byte_len()
    }

    fn merge(&self, _node_level: u16, acc: &mut [u8], other: &[u8]) {
        or_bytes(acc, other);
    }

    fn summarize_entries(
        &self,
        node_level: u16,
        entry_payloads: &mut dyn Iterator<Item = &[u8]>,
    ) -> Option<Vec<u8>> {
        // Folding child payloads is only valid when both levels use the
        // same scheme (the saturated top of the ladder).
        if self.schemes.scheme(node_level) != self.schemes.scheme(node_level + 1) {
            return None;
        }
        let mut acc = vec![0u8; self.schemes.scheme(node_level + 1).byte_len()];
        for p in entry_payloads {
            or_bytes(&mut acc, p);
        }
        Some(acc)
    }

    fn summarize_objects(
        &self,
        parent_level: u16,
        objects: &mut dyn Iterator<Item = u64>,
    ) -> Vec<u8> {
        let scheme = self.schemes.scheme(parent_level);
        let mut acc = vec![0u8; scheme.byte_len()];
        for child in objects {
            or_bytes(&mut acc, &self.sign_object_at(child, parent_level));
        }
        acc
    }

    fn lift_object(&self, child: u64, leaf_payload: &[u8], node_level: u16) -> Vec<u8> {
        if self.schemes.scheme(node_level) == self.schemes.scheme(0) {
            return leaf_payload.to_vec();
        }
        self.sign_object_at(child, node_level)
    }

    fn strict_maintenance(&self) -> bool {
        self.strict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir2_model::{ObjectStore, SpatialObject};
    use ir2_sigfile::Signature;
    use ir2_storage::MemDevice;

    #[test]
    fn ir2_summary_is_superimposition() {
        let scheme = SignatureScheme::new(64, 3, 1);
        let ops = Ir2Payload::new(scheme);
        let a = scheme.sign_term("alpha");
        let b = scheme.sign_term("beta");
        let mut ab = vec![0u8; 8];
        a.write_bytes(&mut ab);
        let mut bb = vec![0u8; 8];
        b.write_bytes(&mut bb);
        let sum = ops
            .summarize_entries(0, &mut [ab.as_slice(), bb.as_slice()].into_iter())
            .unwrap();
        let sig = Signature::from_bytes(64, &sum);
        assert!(sig.contains(&a));
        assert!(sig.contains(&b));
    }

    fn mir_fixture() -> (MirPayload<2>, Vec<u64>) {
        let store = Arc::new(ObjectStore::<2, _>::create(MemDevice::new()));
        let texts = ["internet pool", "spa sauna", "golf pets"];
        let mut ptrs = Vec::new();
        for (i, t) in texts.iter().enumerate() {
            let ptr = store
                .append(&SpatialObject::new(i as u64, [0.0, 0.0], *t))
                .unwrap();
            ptrs.push(ptr.0);
        }
        let schemes = MultiLevelScheme::new(4, 3, 7, 4, 2.0, 100);
        (MirPayload::new(schemes, store), ptrs)
    }

    #[test]
    fn mir_entry_sizes_grow_with_level() {
        let (ops, _) = mir_fixture();
        assert_eq!(ops.entry_size(0), 4);
        assert!(ops.entry_size(3) >= ops.entry_size(1));
        assert!(ops.entry_size(1) > ops.entry_size(0));
    }

    #[test]
    fn mir_cannot_fold_across_growing_levels() {
        let (ops, _) = mir_fixture();
        assert!(ops.summarize_entries(0, &mut std::iter::empty()).is_none());
    }

    #[test]
    fn mir_summarize_objects_contains_every_objects_terms() {
        let (ops, ptrs) = mir_fixture();
        for level in 1..4u16 {
            let scheme = *ops.scheme_at(level);
            let sum = ops.summarize_objects(level, &mut ptrs.clone().into_iter());
            let sig = Signature::from_bytes(scheme.bits(), &sum);
            for term in ["internet", "pool", "spa", "sauna", "golf", "pets"] {
                assert!(
                    sig.contains(&scheme.sign_term(term)),
                    "level {level} term {term}"
                );
            }
        }
    }

    #[test]
    fn mir_lift_matches_summarize_for_single_object() {
        let (ops, ptrs) = mir_fixture();
        let leaf = ops.sign_object_at(ptrs[0], 0);
        for level in 0..4u16 {
            let lifted = ops.lift_object(ptrs[0], &leaf, level);
            let summed = ops.summarize_objects(level, &mut std::iter::once(ptrs[0]));
            assert_eq!(lifted, summed, "level {level}");
        }
    }

    #[test]
    fn mir_missing_object_degrades_conservatively() {
        let (ops, _) = mir_fixture();
        // A dangling pointer must produce an all-ones signature, never a
        // false negative.
        let sig = ops.sign_object_at(999_999, 1);
        assert!(sig.iter().all(|&b| b == 0xFF));
    }

    #[test]
    fn strict_flag_round_trips() {
        let (ops, _) = mir_fixture();
        assert!(!ops.strict_maintenance());
        let strict = ops.strict();
        assert!(strict.strict_maintenance());
    }
}
