//! Per-query execution traces.
//!
//! The paper's Section VI tables are *per-query counts*: node accesses,
//! signature false positives per level, objects verified. A [`TraceSink`]
//! receives one [`TraceEvent`] per algorithm step so those counts (and
//! full step logs) can be derived at query time instead of re-running the
//! offline `diagnostics` walk:
//!
//! * [`NopSink`] — the default; every `record` call is an inlined empty
//!   body, so the traced code monomorphizes to exactly the untraced code
//!   (the `trace_overhead` bench guards this stays ≤ 5% on the batch
//!   engine).
//! * [`VecSink`] — keeps every event, for the `ir2 trace` step log.
//! * [`StatsSink`] — folds events into [`TraceStats`] counters and
//!   per-level pruning tallies without storing events.
//!
//! The derived [`TraceStats`] are definitionally consistent with the
//! algorithms' own `SearchCounters` (`nodes_visited == nodes_read`,
//! `objects_fetched == candidates_checked`, `sig_tests − sig_matched ==
//! pruned_by_signature`) — an equivalence the core crate's observability
//! integration test asserts bit-for-bit against `IoScope` attribution.

use crate::distance_first::SearchCounters;

/// One step of a spatial-keyword query's execution.
///
/// Events carry the quantities the paper reports (level, MINDIST,
/// signature outcomes) plus the heap size, which exposes the frontier
/// growth that distinguishes distance-first from depth-first traversal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// An internal or leaf node was popped from the frontier and its block
    /// read (`nodes_read` in `SearchCounters`).
    NodeVisited {
        /// Block id of the node on its tree device.
        node: u64,
        /// Tree level (0 = leaf).
        level: u16,
        /// Pop priority of the node: MINDIST from the query region for
        /// the distance-first algorithms, the score upper bound `Upper(v)`
        /// (infinite at the root) for the general algorithm.
        mindist: f64,
        /// Number of entries scanned in the node.
        entries: usize,
        /// Frontier (heap) size immediately *before* expanding this node.
        heap_size: usize,
    },
    /// A node or leaf entry's signature was tested against the query
    /// signature at `level`.
    SignatureTest {
        /// Level whose signature scheme performed the test — the
        /// *containing node's* level (so leaf-node tests of object
        /// entries report level 0, matching `diagnostics::density_profile`
        /// levels).
        level: u16,
        /// Whether the superimposed signature matched (matches include
        /// false positives; a miss is a certain prune).
        matched: bool,
    },
    /// A candidate object was fetched from the object file and verified
    /// against the actual keyword set.
    ObjectFetched {
        /// Record pointer of the object (block ⊕ slot encoding).
        ptr: u64,
        /// Euclidean distance from the query point.
        distance: f64,
        /// Whether verification succeeded (false ⇒ the fetch was a
        /// signature false positive).
        matched: bool,
    },
}

/// A receiver of [`TraceEvent`]s.
///
/// Query algorithms take `S: TraceSink` with a [`NopSink`] default, so
/// tracing is opt-in per call and free when unused.
pub trait TraceSink {
    /// Receives one event. Implementations must be cheap: this is called
    /// on the query hot path (once per node, per signature test, per
    /// object fetch).
    fn record(&mut self, event: &TraceEvent);
}

/// Sinks are usable through mutable references, so a caller can keep
/// ownership while lending the sink to an iterator.
impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    #[inline]
    fn record(&mut self, event: &TraceEvent) {
        (**self).record(event);
    }
}

/// The default sink: ignores everything. With `NopSink` the traced code
/// paths compile to the untraced code — `record` is an inlined empty
/// function the optimizer deletes along with event construction.
#[derive(Debug, Default, Clone, Copy)]
pub struct NopSink;

impl TraceSink for NopSink {
    #[inline(always)]
    fn record(&mut self, _event: &TraceEvent) {}
}

/// Stores every event in order — the full step log behind `ir2 trace`.
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    /// Recorded events, in execution order.
    pub events: Vec<TraceEvent>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds the stored events into summary statistics.
    pub fn stats(&self) -> TraceStats {
        let mut stats = TraceStats::default();
        for e in &self.events {
            stats.absorb(e);
        }
        stats
    }
}

impl TraceSink for VecSink {
    #[inline]
    fn record(&mut self, event: &TraceEvent) {
        self.events.push(*event);
    }
}

/// Folds events into [`TraceStats`] as they arrive, storing nothing else —
/// cheap enough to leave on for whole batch runs.
#[derive(Debug, Default, Clone)]
pub struct StatsSink {
    /// Aggregated statistics so far.
    pub stats: TraceStats,
}

impl StatsSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the sink, returning the aggregate.
    pub fn into_stats(self) -> TraceStats {
        self.stats
    }
}

impl TraceSink for StatsSink {
    #[inline]
    fn record(&mut self, event: &TraceEvent) {
        self.stats.absorb(event);
    }
}

/// Signature-test tallies for one tree level.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LevelPruning {
    /// Signature tests performed at this level.
    pub tests: u64,
    /// Tests that matched (and therefore were descended / fetched).
    pub matched: u64,
}

impl LevelPruning {
    /// Fraction of tests that matched, `0.0` when no tests ran.
    pub fn match_rate(&self) -> f64 {
        ir2_storage::ratio(self.matched, self.tests)
    }

    /// Tests that failed — certain prunes.
    pub fn pruned(&self) -> u64 {
        self.tests - self.matched
    }
}

/// Aggregate statistics derived from a trace.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct TraceStats {
    /// Nodes popped and expanded (= `SearchCounters::nodes_read`).
    pub nodes_visited: u64,
    /// Total entries scanned across visited nodes.
    pub entries_scanned: u64,
    /// Signature tests performed, all levels.
    pub sig_tests: u64,
    /// Signature tests that matched.
    pub sig_matched: u64,
    /// Objects fetched and verified (= `SearchCounters::candidates_checked`).
    pub objects_fetched: u64,
    /// Fetched objects that failed verification
    /// (= `SearchCounters::false_positives`).
    pub false_positives: u64,
    /// Largest frontier (heap) size observed at a node expansion.
    pub max_heap: u64,
    /// Per-level signature tallies, indexed by tree level (0 = objects /
    /// leaf entries). Missing levels were never tested.
    pub per_level: Vec<LevelPruning>,
}

impl TraceStats {
    /// Folds one event into the aggregate.
    pub fn absorb(&mut self, event: &TraceEvent) {
        match *event {
            TraceEvent::NodeVisited {
                entries, heap_size, ..
            } => {
                self.nodes_visited += 1;
                self.entries_scanned += entries as u64;
                self.max_heap = self.max_heap.max(heap_size as u64);
            }
            TraceEvent::SignatureTest { level, matched } => {
                self.sig_tests += 1;
                let level = level as usize;
                if self.per_level.len() <= level {
                    self.per_level.resize(level + 1, LevelPruning::default());
                }
                self.per_level[level].tests += 1;
                if matched {
                    self.sig_matched += 1;
                    self.per_level[level].matched += 1;
                }
            }
            TraceEvent::ObjectFetched { matched, .. } => {
                self.objects_fetched += 1;
                if !matched {
                    self.false_positives += 1;
                }
            }
        }
    }

    /// Entries pruned by signature mismatch (= `sig_tests − sig_matched`
    /// = `SearchCounters::pruned_by_signature` for the signature-bearing
    /// algorithms).
    pub fn pruned_by_signature(&self) -> u64 {
        self.sig_tests - self.sig_matched
    }

    /// Observed false-positive rate among fetched objects, `0.0` when no
    /// object was fetched.
    pub fn object_fp_rate(&self) -> f64 {
        ir2_storage::ratio(self.false_positives, self.objects_fetched)
    }

    /// Merges another aggregate into this one (per-level tallies add
    /// index-wise; used to fold per-thread sinks after a batch run).
    pub fn merge(&mut self, other: &TraceStats) {
        self.nodes_visited += other.nodes_visited;
        self.entries_scanned += other.entries_scanned;
        self.sig_tests += other.sig_tests;
        self.sig_matched += other.sig_matched;
        self.objects_fetched += other.objects_fetched;
        self.false_positives += other.false_positives;
        self.max_heap = self.max_heap.max(other.max_heap);
        if self.per_level.len() < other.per_level.len() {
            self.per_level
                .resize(other.per_level.len(), LevelPruning::default());
        }
        for (a, b) in self.per_level.iter_mut().zip(&other.per_level) {
            a.tests += b.tests;
            a.matched += b.matched;
        }
    }

    /// True iff the aggregate is definitionally consistent with the
    /// algorithm's own counters (see module docs for the mapping). The
    /// pruning identity only binds when signature tests were recorded at
    /// all — the plain R-Tree baseline performs none — and the node
    /// identity only binds when node visits were recorded: the baseline's
    /// visits happen inside the untraced NN iterator, yet its counters
    /// surface the NN visit tally so `nodes_read == cache_hits +
    /// cache_misses` stays conserved.
    pub fn matches_counters(&self, c: &SearchCounters) -> bool {
        (self.nodes_visited == 0 || self.nodes_visited == c.nodes_read)
            && self.objects_fetched == c.candidates_checked
            && self.false_positives == c.false_positives
            && (self.sig_tests == 0 || self.pruned_by_signature() == c.pruned_by_signature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::NodeVisited {
                node: 7,
                level: 1,
                mindist: 0.0,
                entries: 3,
                heap_size: 1,
            },
            TraceEvent::SignatureTest {
                level: 0,
                matched: true,
            },
            TraceEvent::SignatureTest {
                level: 0,
                matched: false,
            },
            TraceEvent::SignatureTest {
                level: 0,
                matched: true,
            },
            TraceEvent::ObjectFetched {
                ptr: 42,
                distance: 1.5,
                matched: true,
            },
            TraceEvent::ObjectFetched {
                ptr: 43,
                distance: 2.5,
                matched: false,
            },
        ]
    }

    #[test]
    fn stats_sink_and_vec_sink_agree() {
        let mut vs = VecSink::new();
        let mut ss = StatsSink::new();
        for e in sample_events() {
            vs.record(&e);
            ss.record(&e);
        }
        assert_eq!(vs.events.len(), 6);
        assert_eq!(vs.stats(), ss.stats);
        let s = ss.into_stats();
        assert_eq!(s.nodes_visited, 1);
        assert_eq!(s.entries_scanned, 3);
        assert_eq!(s.sig_tests, 3);
        assert_eq!(s.sig_matched, 2);
        assert_eq!(s.pruned_by_signature(), 1);
        assert_eq!(s.objects_fetched, 2);
        assert_eq!(s.false_positives, 1);
        assert_eq!(s.max_heap, 1);
        assert_eq!(s.per_level.len(), 1);
        assert_eq!(s.per_level[0].tests, 3);
        assert_eq!(s.per_level[0].matched, 2);
        assert_eq!(s.per_level[0].pruned(), 1);
        assert!((s.per_level[0].match_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.object_fp_rate(), 0.5);
    }

    #[test]
    fn empty_stats_rates_are_zero_not_nan() {
        let s = TraceStats::default();
        assert_eq!(s.object_fp_rate(), 0.0);
        assert_eq!(LevelPruning::default().match_rate(), 0.0);
    }

    #[test]
    fn merge_adds_and_extends_levels() {
        let mut a = StatsSink::new();
        a.record(&TraceEvent::SignatureTest {
            level: 0,
            matched: true,
        });
        let mut b = StatsSink::new();
        b.record(&TraceEvent::SignatureTest {
            level: 2,
            matched: false,
        });
        b.record(&TraceEvent::NodeVisited {
            node: 1,
            level: 2,
            mindist: 0.5,
            entries: 10,
            heap_size: 9,
        });
        let mut m = a.stats.clone();
        m.merge(&b.stats);
        assert_eq!(m.sig_tests, 2);
        assert_eq!(m.per_level.len(), 3);
        assert_eq!(m.per_level[0].matched, 1);
        assert_eq!(m.per_level[2].tests, 1);
        assert_eq!(m.max_heap, 9);
        assert_eq!(m.nodes_visited, 1);
    }

    #[test]
    fn counter_equivalence_mapping() {
        let mut ss = StatsSink::new();
        for e in sample_events() {
            ss.record(&e);
        }
        let c = SearchCounters {
            nodes_read: 1,
            pruned_by_signature: 1,
            candidates_checked: 2,
            false_positives: 1,
            cache_hits: 0,
            cache_misses: 1,
        };
        assert!(ss.stats.matches_counters(&c));
        // The untested (R-Tree baseline) case binds only the object side.
        let bare = TraceStats {
            nodes_visited: 1,
            objects_fetched: 2,
            false_positives: 1,
            ..Default::default()
        };
        assert!(bare.matches_counters(&SearchCounters {
            nodes_read: 1,
            pruned_by_signature: 0,
            candidates_checked: 2,
            false_positives: 1,
            cache_hits: 0,
            cache_misses: 1,
        }));
    }

    #[test]
    fn borrowed_sink_records_through() {
        let mut vs = VecSink::new();
        {
            let borrowed: &mut VecSink = &mut vs;
            borrowed.record(&TraceEvent::SignatureTest {
                level: 1,
                matched: true,
            });
        }
        // And through a trait object.
        let dynamic: &mut dyn TraceSink = &mut vs;
        dynamic.record(&TraceEvent::SignatureTest {
            level: 1,
            matched: false,
        });
        assert_eq!(vs.events.len(), 2);
    }
}
