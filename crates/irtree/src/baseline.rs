//! The R-Tree baseline algorithm (Section 5.1).

use ir2_model::{
    DistanceFirstQuery, ExecOutcome, ObjPtr, ObjectSource, QueryLimits, SpatialObject,
    TruncateReason,
};
use ir2_rtree::{with_frontier_prefetch, NnIter, PrefetchQueue, RTree, UnitPayload};
use ir2_storage::{BlockDevice, Result};

use crate::trace::{NopSink, TraceEvent, TraceSink};
use crate::{BoundedStep, LimitedTopk, SearchCounters};

/// Incremental form of the paper's first baseline: plain Hjaltason–Samet
/// nearest neighbor over an unaugmented R-Tree, loading **every** candidate
/// object to post-filter it against the query keywords.
///
/// Its weakness — the reason the IR²-Tree exists — is that "it has to
/// retrieve every object returned by the NN algorithm until the top-k
/// result objects are found"; with selective keywords that is a long march
/// of useless object loads, and "in the worst case … the entire tree has to
/// be traversed".
pub struct RtreeBaselineIter<'a, const N: usize, D, S: TraceSink = NopSink> {
    nn: NnIter<'a, N, D, UnitPayload>,
    objects: &'a dyn ObjectSource<N>,
    keywords: Vec<String>,
    counters: SearchCounters,
    limits: QueryLimits,
    truncated: Option<TruncateReason>,
    sink: S,
}

impl<'a, const N: usize, D: BlockDevice> RtreeBaselineIter<'a, N, D> {
    /// Starts the incremental baseline search.
    pub fn new(
        tree: &'a RTree<N, D, UnitPayload>,
        objects: &'a dyn ObjectSource<N>,
        query: &DistanceFirstQuery<N>,
    ) -> Self {
        Self::with_sink(tree, objects, query, NopSink)
    }
}

impl<'a, const N: usize, D: BlockDevice, S: TraceSink> RtreeBaselineIter<'a, N, D, S> {
    /// Starts the incremental baseline search, reporting each object fetch
    /// to `sink`. The baseline has no signatures and its node visits
    /// happen inside the plain NN iterator, so the trace records
    /// [`TraceEvent::ObjectFetched`] only — which is exactly its cost
    /// story: the march of candidate loads.
    pub fn with_sink(
        tree: &'a RTree<N, D, UnitPayload>,
        objects: &'a dyn ObjectSource<N>,
        query: &DistanceFirstQuery<N>,
        sink: S,
    ) -> Self {
        Self {
            nn: tree.nearest(query.point),
            objects,
            keywords: query.keywords.clone(),
            counters: SearchCounters::default(),
            limits: QueryLimits::none(),
            truncated: None,
            sink,
        }
    }

    /// Applies execution limits; see
    /// [`DistanceFirstIter::limited`](crate::DistanceFirstIter::limited).
    pub fn limited(mut self, limits: QueryLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Attaches a frontier-prefetch queue to the inner NN iterator; see
    /// [`NnIter::prefetching`].
    pub fn prefetching(mut self, queue: PrefetchQueue) -> Self {
        self.nn = self.nn.prefetching(queue);
        self
    }

    /// The search counters so far (`pruned_by_signature` is always 0 — the
    /// baseline has no signatures; its `false_positives` count the loaded
    /// objects that failed the keyword check). Node visits happen inside
    /// the plain NN iterator and are not part of the baseline's *trace*,
    /// but they are surfaced here as `nodes_read` / `cache_hits` /
    /// `cache_misses` so the conservation identity
    /// `nodes_read == cache_hits + cache_misses` holds for every report
    /// (the old convention of reporting `nodes_read == 0` alongside a
    /// nonzero `cache_hits` broke it).
    pub fn counters(&self) -> SearchCounters {
        let mut c = self.counters;
        c.nodes_read = self.nn.nodes_read();
        c.cache_hits = self.nn.cache_hits();
        c.cache_misses = self.nn.cache_misses();
        c
    }

    /// Which limit stopped the search, if one did.
    pub fn truncation(&self) -> Option<TruncateReason> {
        self.truncated
    }

    /// Lower bound on the distance of every result this iterator can still
    /// emit; see [`NnIter::frontier_bound`]. (The inner NN frontier holds
    /// both node MINDISTs and exact object distances — both lower-bound
    /// what the keyword post-filter can still surface.)
    pub fn frontier_bound(&self) -> Option<f64> {
        self.nn.frontier_bound()
    }

    /// Like the iterator's `next`, but performs no work beyond `limit`;
    /// see [`DistanceFirstIter::next_within`](
    /// crate::DistanceFirstIter::next_within). The bound applies to the
    /// inner NN frontier, so neither node reads nor candidate object loads
    /// happen past the limit.
    pub fn next_within(&mut self, limit: f64) -> Result<BoundedStep<N>> {
        loop {
            // A drained NN frontier means the candidate stream is finished
            // and everything already emitted is the complete answer —
            // established *before* the limit check, so a deadline or
            // budget that trips after the last candidate cannot misreport
            // a finished query as truncated.
            if self.nn.frontier_len() == 0 {
                return Ok(BoundedStep::Done);
            }
            // Cooperative limit check between candidates. Node reads happen
            // inside the NN iterator, so the charged I/O is its node count
            // plus the objects this wrapper loaded.
            if self.truncated.is_none() && !self.limits.is_unlimited() {
                let io_used = self.nn.nodes_read() + self.counters.candidates_checked;
                self.truncated = self.limits.check(io_used, self.nn.frontier_len());
            }
            if self.truncated.is_some() {
                return Ok(BoundedStep::Done);
            }
            let Some(nn) = self.nn.next_within(limit)? else {
                return Ok(if self.nn.frontier_len() > 0 {
                    // Still work to do, but the frontier head is beyond
                    // the limit.
                    BoundedStep::Pending
                } else {
                    BoundedStep::Done
                });
            };
            self.counters.candidates_checked += 1;
            let obj = self.objects.load(ObjPtr(nn.child))?;
            let matched = obj.token_set().contains_all(&self.keywords);
            self.sink.record(&TraceEvent::ObjectFetched {
                ptr: nn.child,
                distance: nn.dist,
                matched,
            });
            if matched {
                return Ok(BoundedStep::Hit(obj, nn.dist));
            }
            self.counters.false_positives += 1;
        }
    }

    fn step(&mut self) -> Result<Option<(SpatialObject<N>, f64)>> {
        Ok(match self.next_within(f64::INFINITY)? {
            BoundedStep::Hit(obj, d) => Some((obj, d)),
            _ => None,
        })
    }
}

impl<const N: usize, D: BlockDevice, S: TraceSink> Iterator for RtreeBaselineIter<'_, N, D, S> {
    type Item = Result<(SpatialObject<N>, f64)>;

    fn next(&mut self) -> Option<Self::Item> {
        self.step().transpose()
    }
}

/// Collects up to `k` results from a baseline iterator, then drains and
/// reorders ties at the k-th distance into the workspace-wide canonical
/// `(distance, id)` order (the bound is inclusive and the stream is
/// non-decreasing, so the drain touches only the tied group).
fn collect_k_baseline<const N: usize, D: BlockDevice, S: TraceSink>(
    iter: &mut RtreeBaselineIter<'_, N, D, S>,
    k: usize,
) -> Result<Vec<(SpatialObject<N>, f64)>> {
    let mut out = Vec::with_capacity(k.min(1024));
    while out.len() < k {
        match iter.step()? {
            Some(hit) => out.push(hit),
            None => break,
        }
    }
    if out.len() == k && k > 0 && iter.truncation().is_none() {
        let kth = out[k - 1].1;
        while let BoundedStep::Hit(obj, d) = iter.next_within(kth)? {
            out.push((obj, d));
        }
    }
    // Unconditional: interior equal-distance groups emit in traversal
    // order even when the stream exhausts below `k` (fuzzer-caught).
    out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.id.cmp(&b.0.id)));
    out.truncate(k);
    Ok(out)
}

/// Answers a distance-first top-k spatial keyword query with the R-Tree
/// baseline, returning `(object, distance)` pairs in ascending distance and
/// the search counters.
pub fn rtree_baseline_topk<const N: usize, D: BlockDevice>(
    tree: &RTree<N, D, UnitPayload>,
    objects: &dyn ObjectSource<N>,
    query: &DistanceFirstQuery<N>,
) -> Result<(Vec<(SpatialObject<N>, f64)>, SearchCounters)> {
    rtree_baseline_topk_traced(tree, objects, query, NopSink)
}

/// [`rtree_baseline_topk`] with every object fetch reported to `sink`.
pub fn rtree_baseline_topk_traced<const N: usize, D: BlockDevice, S: TraceSink>(
    tree: &RTree<N, D, UnitPayload>,
    objects: &dyn ObjectSource<N>,
    query: &DistanceFirstQuery<N>,
    sink: S,
) -> Result<(Vec<(SpatialObject<N>, f64)>, SearchCounters)> {
    let mut iter = RtreeBaselineIter::with_sink(tree, objects, query, sink);
    let out = collect_k_baseline(&mut iter, query.k)?;
    Ok((out, iter.counters()))
}

/// [`rtree_baseline_topk`] under execution limits; a tripped limit yields
/// [`ExecOutcome::Truncated`] whose results are the exact top-m prefix of
/// the full answer (candidates emerge in distance order).
pub fn rtree_baseline_topk_limited<const N: usize, D: BlockDevice>(
    tree: &RTree<N, D, UnitPayload>,
    objects: &dyn ObjectSource<N>,
    query: &DistanceFirstQuery<N>,
    limits: QueryLimits,
) -> Result<LimitedTopk<N>> {
    rtree_baseline_topk_limited_traced(tree, objects, query, limits, NopSink)
}

/// [`rtree_baseline_topk_limited`] with every object fetch reported to
/// `sink`.
pub fn rtree_baseline_topk_limited_traced<const N: usize, D: BlockDevice, S: TraceSink>(
    tree: &RTree<N, D, UnitPayload>,
    objects: &dyn ObjectSource<N>,
    query: &DistanceFirstQuery<N>,
    limits: QueryLimits,
    sink: S,
) -> Result<LimitedTopk<N>> {
    let mut iter = RtreeBaselineIter::with_sink(tree, objects, query, sink).limited(limits);
    let out = collect_k_baseline(&mut iter, query.k)?;
    let counters = iter.counters();
    let outcome = match iter.truncation() {
        Some(reason) => ExecOutcome::Truncated {
            reason,
            results_so_far: out,
        },
        None => ExecOutcome::Complete(out),
    };
    Ok((outcome, counters))
}

/// [`rtree_baseline_topk_traced`] with speculative frontier prefetch (see
/// [`with_frontier_prefetch`]); results are byte-identical, and with
/// `workers == 0` or no node cache this *is* the unprefetched call.
pub fn rtree_baseline_topk_prefetched_traced<const N: usize, D: BlockDevice, S: TraceSink>(
    tree: &RTree<N, D, UnitPayload>,
    objects: &dyn ObjectSource<N>,
    query: &DistanceFirstQuery<N>,
    workers: usize,
    sink: S,
) -> Result<(Vec<(SpatialObject<N>, f64)>, SearchCounters)> {
    with_frontier_prefetch(tree, workers, |pf| {
        let mut iter = RtreeBaselineIter::with_sink(tree, objects, query, sink).prefetching(pf);
        let out = collect_k_baseline(&mut iter, query.k)?;
        Ok((out, iter.counters()))
    })
}

/// [`rtree_baseline_topk_limited_traced`] with speculative frontier
/// prefetch; see [`rtree_baseline_topk_prefetched_traced`].
pub fn rtree_baseline_topk_prefetched_limited_traced<
    const N: usize,
    D: BlockDevice,
    S: TraceSink,
>(
    tree: &RTree<N, D, UnitPayload>,
    objects: &dyn ObjectSource<N>,
    query: &DistanceFirstQuery<N>,
    limits: QueryLimits,
    workers: usize,
    sink: S,
) -> Result<LimitedTopk<N>> {
    with_frontier_prefetch(tree, workers, |pf| {
        let mut iter = RtreeBaselineIter::with_sink(tree, objects, query, sink)
            .limited(limits)
            .prefetching(pf);
        let out = collect_k_baseline(&mut iter, query.k)?;
        let counters = iter.counters();
        let outcome = match iter.truncation() {
            Some(reason) => ExecOutcome::Truncated {
                reason,
                results_so_far: out,
            },
            None => ExecOutcome::Complete(out),
        };
        Ok((outcome, counters))
    })
}
