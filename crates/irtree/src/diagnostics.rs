//! Index diagnostics: signature density profiles.
//!
//! Section 4 motivates the MIR²-Tree with one observation: using "the same
//! signature length … for all levels … leads to more false positives in
//! the higher levels, which have more 1's (since they are the
//! superimpositions of the lower levels)". [`density_profile`] measures
//! exactly that — the mean fraction of set bits per entry, per level —
//! so the claim (and the MIR²-Tree's fix) can be verified on any built
//! tree rather than taken on faith. The `signature-density` experiment in
//! the bench harness prints these profiles side by side.

use ir2_rtree::RTree;
use ir2_sigfile::SignatureBlock;
use ir2_storage::{BlockDevice, Result};

use crate::SigPayload;

/// Mean signature statistics of one tree level.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelDensity {
    /// Tree level (0 = leaf entries, i.e. object signatures).
    pub level: u16,
    /// Number of entries sampled at this level.
    pub entries: u64,
    /// Signature length (bits) used at this level.
    pub bits: usize,
    /// Mean fraction of set bits (the signature *weight*; the optimal
    /// operating point of superimposed coding is 0.5).
    pub mean_density: f64,
    /// Mean number of set bits per entry signature — the raw count behind
    /// `mean_density`, reported because the paper's false-positive model is
    /// driven directly by how many 1s superimposition has accumulated.
    pub mean_set_bits: f64,
    /// Expected single-probe false-positive rate at the mean density:
    /// `density^k`.
    pub expected_fp: f64,
}

/// Walks the whole tree and reports per-level signature densities, leaves
/// first. Each node's payloads are assembled into a columnar
/// [`SignatureBlock`] and summed with its popcount kernels — the same
/// representation the query engines prune with.
pub fn density_profile<const N: usize, D: BlockDevice, P: SigPayload>(
    tree: &RTree<N, D, P>,
) -> Result<Vec<LevelDensity>> {
    // Per level: (entries, total set bits).
    let mut sums: Vec<(u64, u64)> = Vec::new();
    let Some(root) = tree.root() else {
        return Ok(Vec::new());
    };
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        let node = tree.read_node_buf(id)?;
        let lvl = node.level() as usize;
        if sums.len() <= lvl {
            sums.resize(lvl + 1, (0, 0));
        }
        let bits = tree.ops().scheme_at(node.level()).bits();
        let block = SignatureBlock::from_payloads(bits, node.payloads());
        sums[lvl].0 += block.len() as u64;
        sums[lvl].1 += block.set_bits_total();
        if !node.is_leaf() {
            stack.extend(node.children());
        }
    }
    Ok(sums
        .into_iter()
        .enumerate()
        .map(|(lvl, (n, set_bits))| {
            let scheme = tree.ops().scheme_at(lvl as u16);
            let mean_set_bits = if n == 0 {
                0.0
            } else {
                set_bits as f64 / n as f64
            };
            let mean = if n == 0 || scheme.bits() == 0 {
                0.0
            } else {
                mean_set_bits / scheme.bits() as f64
            };
            LevelDensity {
                level: lvl as u16,
                entries: n,
                bits: scheme.bits(),
                mean_density: mean,
                mean_set_bits,
                expected_fp: mean.powi(scheme.k() as i32),
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{insert_object, Ir2Payload, MirPayload};
    use ir2_model::{ObjectSource, ObjectStore, SpatialObject};
    use ir2_rtree::RTreeConfig;
    use ir2_sigfile::{MultiLevelScheme, SignatureScheme};
    use ir2_storage::MemDevice;
    use std::sync::Arc;

    fn corpus(
        n: u64,
    ) -> (
        Arc<ObjectStore<2, MemDevice>>,
        Vec<(ir2_model::ObjPtr, SpatialObject<2>)>,
    ) {
        let store = Arc::new(ObjectStore::<2, _>::create(MemDevice::new()));
        let items: Vec<_> = (0..n)
            .map(|i| {
                let text: String = (0..8)
                    .map(|j| format!("w{} ", (i * 13 + j * 7) % 500))
                    .collect();
                let obj = SpatialObject::new(i, [(i % 17) as f64, (i / 17) as f64], text);
                (store.append(&obj).unwrap(), obj)
            })
            .collect();
        store.flush().unwrap();
        (store, items)
    }

    #[test]
    fn ir2_density_grows_toward_the_root() {
        // The exact observation that motivates the MIR²-Tree.
        let (_, items) = corpus(400);
        let tree = RTree::create(
            MemDevice::new(),
            RTreeConfig::with_max(8),
            Ir2Payload::new(SignatureScheme::from_bytes_len(16, 4, 3)),
        )
        .unwrap();
        for (p, o) in &items {
            insert_object(&tree, *p, o).unwrap();
        }
        let profile = density_profile(&tree).unwrap();
        assert!(profile.len() >= 3, "need a multi-level tree");
        for w in profile.windows(2) {
            assert!(
                w[1].mean_density >= w[0].mean_density,
                "density must not shrink upward: {profile:?}"
            );
        }
        assert!(profile.last().unwrap().mean_density > 0.9, "root saturates");
        assert_eq!(profile[0].entries, 400);
    }

    #[test]
    fn mir2_keeps_upper_levels_sparser() {
        let (store, items) = corpus(400);
        let schemes = MultiLevelScheme::new(16, 4, 3, 8, 8.0, 500);
        let tree = RTree::create(
            MemDevice::new(),
            RTreeConfig::with_max(8),
            MirPayload::new(schemes, Arc::clone(&store) as Arc<dyn ObjectSource<2>>),
        )
        .unwrap();
        for (p, o) in &items {
            insert_object(&tree, *p, o).unwrap();
        }
        let profile = density_profile(&tree).unwrap();
        // Upper levels use longer signatures and stay near/below the 0.5
        // operating point instead of saturating.
        let top = profile.last().unwrap();
        assert!(top.bits > profile[0].bits, "upper schemes are longer");
        assert!(
            top.mean_density < 0.75,
            "MIR² top density must not saturate: {profile:?}"
        );
    }

    #[test]
    fn empty_tree_has_empty_profile() {
        let tree: RTree<2, _, _> = RTree::create(
            MemDevice::new(),
            RTreeConfig::with_max(8),
            Ir2Payload::new(SignatureScheme::from_bytes_len(8, 3, 1)),
        )
        .unwrap();
        assert!(density_profile(&tree).unwrap().is_empty());
    }
}
