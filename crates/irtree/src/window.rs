//! Boolean keyword query within a window: Section 2's Boolean keyword
//! query (`Ans(Q_w) = {T | ∀w ∈ Q_w: w ∈ T.t}`) restricted to a spatial
//! window — the "all results in the visible map area" query every spatial
//! keyword application also needs. The IR²-Tree answers it with the same
//! double pruning as the top-k algorithm: subtrees are skipped when their
//! MBR misses the window *or* their signature lacks the query keywords.

use std::collections::HashMap;

use ir2_geo::Rect;
use ir2_model::{ObjPtr, ObjectSource, SpatialObject};
use ir2_rtree::RTree;
use ir2_sigfile::{payload_contains, Signature};
use ir2_storage::{BlockDevice, Result};
use ir2_text::tokenize;

use crate::{SearchCounters, SigPayload};

/// Returns every object inside `window` whose text contains all
/// `keywords`, with the traversal counters. Results are in tree order
/// (no ranking — this is a set query).
pub fn keyword_window_query<const N: usize, D: BlockDevice, P: SigPayload>(
    tree: &RTree<N, D, P>,
    objects: &dyn ObjectSource<N>,
    window: &Rect<N>,
    keywords: &[String],
) -> Result<(Vec<SpatialObject<N>>, SearchCounters)> {
    let kws: Vec<String> = {
        let mut v: Vec<String> = keywords
            .iter()
            .flat_map(|w| tokenize(w).collect::<Vec<_>>())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let mut counters = SearchCounters::default();
    let mut out = Vec::new();
    let Some(root) = tree.root() else {
        return Ok((out, counters));
    };
    let mut query_sigs: HashMap<u16, Signature> = HashMap::new();
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        // Arena-backed decode plus zero-copy byte containment: this
        // uncached path allocates nothing per entry (and no longer clones
        // the query signature per node either).
        let node = tree.read_node_buf(id)?;
        counters.nodes_read += 1;
        counters.cache_misses += 1; // uncached read: every visit decodes
        let scheme = tree.ops().scheme_at(node.level());
        let qsig = query_sigs
            .entry(node.level())
            .or_insert_with(|| scheme.sign_terms(kws.iter().map(String::as_str)));
        for i in 0..node.len() {
            if !window.intersects(&node.rect(i)) {
                continue;
            }
            if !payload_contains(node.payload(i), qsig) {
                counters.pruned_by_signature += 1;
                continue;
            }
            if node.is_leaf() {
                counters.candidates_checked += 1;
                let obj = objects.load(ObjPtr(node.child(i)))?;
                if obj.token_set().contains_all(&kws) {
                    out.push(obj);
                } else {
                    counters.false_positives += 1;
                }
            } else {
                stack.push(node.child(i));
            }
        }
    }
    Ok((out, counters))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{insert_object, Ir2Payload};
    use ir2_geo::Point;
    use ir2_model::ObjectStore;
    use ir2_rtree::RTreeConfig;
    use ir2_sigfile::SignatureScheme;
    use ir2_storage::MemDevice;
    use std::sync::Arc;

    fn fixture() -> (
        Arc<ObjectStore<2, MemDevice>>,
        RTree<2, MemDevice, Ir2Payload>,
        Vec<SpatialObject<2>>,
    ) {
        let store = Arc::new(ObjectStore::<2, _>::create(MemDevice::new()));
        let tree = RTree::create(
            MemDevice::new(),
            RTreeConfig::with_max(4),
            Ir2Payload::new(SignatureScheme::from_bytes_len(8, 3, 9)),
        )
        .unwrap();
        let themes = ["espresso bar", "book shop", "espresso roastery", "toy shop"];
        let mut objs = Vec::new();
        for i in 0..80u64 {
            let obj = SpatialObject::new(
                i,
                [(i % 10) as f64, (i / 10) as f64],
                themes[i as usize % themes.len()],
            );
            let ptr = store.append(&obj).unwrap();
            insert_object(&tree, ptr, &obj).unwrap();
            objs.push(obj);
        }
        store.flush().unwrap();
        (store, tree, objs)
    }

    #[test]
    fn window_keyword_query_matches_brute_force() {
        let (store, tree, objs) = fixture();
        let window = Rect::from_corners(Point::new([1.0, 1.0]), Point::new([6.0, 5.0]));
        let (got, counters) =
            keyword_window_query(&tree, store.as_ref(), &window, &["espresso".into()]).unwrap();
        let mut got_ids: Vec<u64> = got.iter().map(|o| o.id).collect();
        got_ids.sort_unstable();
        let mut want: Vec<u64> = objs
            .iter()
            .filter(|o| window.contains_point(&o.point) && o.token_set().contains("espresso"))
            .map(|o| o.id)
            .collect();
        want.sort_unstable();
        assert_eq!(got_ids, want);
        assert!(!want.is_empty());
        assert!(counters.nodes_read > 0);
    }

    #[test]
    fn empty_keywords_returns_window_contents() {
        let (store, tree, objs) = fixture();
        let window = Rect::from_corners(Point::new([0.0, 0.0]), Point::new([2.0, 2.0]));
        let (got, _) = keyword_window_query(&tree, store.as_ref(), &window, &[]).unwrap();
        let want = objs
            .iter()
            .filter(|o| window.contains_point(&o.point))
            .count();
        assert_eq!(got.len(), want);
    }

    #[test]
    fn absent_keyword_prunes_everything_real() {
        let (store, tree, _) = fixture();
        let window = Rect::from_corners(Point::new([0.0, 0.0]), Point::new([9.0, 9.0]));
        let (got, _) =
            keyword_window_query(&tree, store.as_ref(), &window, &["zeppelin".into()]).unwrap();
        assert!(got.is_empty());
    }
}
