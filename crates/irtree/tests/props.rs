//! Property tests: IR²-Tree and MIR²-Tree query algorithms against a
//! brute-force model on random datasets — the correctness core of the
//! reproduction (signature pruning must never lose a result).

use std::sync::Arc;

use ir2_geo::Point;
use ir2_irtree::{
    delete_object, distance_first_topk, general_topk, insert_object, GeneralQuery, Ir2Payload,
    MirPayload,
};
use ir2_model::{DistanceFirstQuery, ObjPtr, ObjectStore, SpatialObject};
use ir2_rtree::{RTree, RTreeConfig};
use ir2_sigfile::{MultiLevelScheme, SignatureScheme};
use ir2_storage::MemDevice;
use ir2_text::{tokenize, IrScorer, LinearRank, RankingFn, SaturatingTfIdf, Vocabulary};
use proptest::prelude::*;

const WORDS: [&str; 12] = [
    "internet", "pool", "spa", "pets", "golf", "sauna", "suite", "gym", "bar", "wifi", "beach",
    "parking",
];

#[derive(Debug, Clone)]
struct Doc {
    point: [f64; 2],
    words: Vec<usize>, // indexes into WORDS
}

fn arb_doc() -> impl Strategy<Value = Doc> {
    (
        prop::array::uniform2(-50.0f64..50.0),
        prop::collection::vec(0..WORDS.len(), 0..6),
    )
        .prop_map(|(point, words)| Doc { point, words })
}

fn arb_docs() -> impl Strategy<Value = Vec<Doc>> {
    prop::collection::vec(arb_doc(), 1..60)
}

struct Db {
    store: Arc<ObjectStore<2, MemDevice>>,
    objects: Vec<(ObjPtr, SpatialObject<2>)>,
    vocab: Vocabulary,
}

fn build_db(docs: &[Doc]) -> Db {
    let store = Arc::new(ObjectStore::<2, _>::create(MemDevice::new()));
    let mut objects = Vec::new();
    let mut vocab = Vocabulary::new();
    for (i, d) in docs.iter().enumerate() {
        let text = d
            .words
            .iter()
            .map(|&w| WORDS[w])
            .collect::<Vec<_>>()
            .join(" ");
        let obj = SpatialObject::new(i as u64, d.point, text);
        let ptr = store.append(&obj).unwrap();
        let mut terms: Vec<String> = tokenize(&obj.text).collect();
        terms.sort_unstable();
        terms.dedup();
        vocab.add_document(terms.iter().map(String::as_str));
        objects.push((ptr, obj));
    }
    store.flush().unwrap();
    Db {
        store,
        objects,
        vocab,
    }
}

fn ir2_of(db: &Db, sig_bytes: usize, seed: u64) -> RTree<2, MemDevice, Ir2Payload> {
    let tree = RTree::create(
        MemDevice::new(),
        RTreeConfig::with_max(4),
        Ir2Payload::new(SignatureScheme::from_bytes_len(sig_bytes, 3, seed)),
    )
    .unwrap();
    for (ptr, obj) in &db.objects {
        insert_object(&tree, *ptr, obj).unwrap();
    }
    tree
}

fn mir2_of(db: &Db, sig_bytes: usize, seed: u64) -> RTree<2, MemDevice, MirPayload<2>> {
    let schemes = MultiLevelScheme::new(sig_bytes, 3, seed, 4, 3.0, WORDS.len());
    let tree = RTree::create(
        MemDevice::new(),
        RTreeConfig::with_max(4),
        MirPayload::new(
            schemes,
            Arc::clone(&db.store) as Arc<dyn ir2_model::ObjectSource<2>>,
        ),
    )
    .unwrap();
    for (ptr, obj) in &db.objects {
        insert_object(&tree, *ptr, obj).unwrap();
    }
    tree
}

/// Brute-force distance-first: ids of objects containing all keywords,
/// sorted by (distance, id).
fn brute_distance_first(db: &Db, q: &DistanceFirstQuery<2>) -> Vec<(u64, f64)> {
    let mut v: Vec<(u64, f64)> = db
        .objects
        .iter()
        .filter(|(_, o)| o.token_set().contains_all(&q.keywords))
        .map(|(_, o)| (o.id, o.point.distance(&q.point)))
        .collect();
    v.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    v.truncate(q.k);
    v
}

fn assert_distance_first_matches(
    got: &[(SpatialObject<2>, f64)],
    want: &[(u64, f64)],
    keywords: &[String],
) {
    assert_eq!(got.len(), want.len(), "result count");
    for ((obj, d), (_, wd)) in got.iter().zip(want.iter()) {
        // Distances must agree exactly (ties may permute ids).
        assert!((d - wd).abs() < 1e-9, "distance {d} vs {wd}");
        assert!(obj.token_set().contains_all(keywords), "conjunctive filter");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The distance-first IR² algorithm equals brute force for every query
    /// — signature pruning loses nothing, verification admits nothing false.
    #[test]
    fn ir2_distance_first_equals_brute_force(
        docs in arb_docs(),
        qpoint in prop::array::uniform2(-60.0f64..60.0),
        kw in prop::collection::vec(0..WORDS.len(), 0..3),
        k in 1usize..12,
        sig_bytes in 1usize..6,
        seed in 0u64..1000,
    ) {
        let db = build_db(&docs);
        let tree = ir2_of(&db, sig_bytes, seed);
        let kws: Vec<&str> = kw.iter().map(|&i| WORDS[i]).collect();
        let q = DistanceFirstQuery::new(qpoint, &kws, k);
        let (got, _) = distance_first_topk(&tree, db.store.as_ref(), &q).unwrap();
        let want = brute_distance_first(&db, &q);
        assert_distance_first_matches(&got, &want, &q.keywords);
    }

    /// Same for the MIR²-Tree — the multi-level schemes must preserve the
    /// no-false-negative guarantee across levels.
    #[test]
    fn mir2_distance_first_equals_brute_force(
        docs in arb_docs(),
        qpoint in prop::array::uniform2(-60.0f64..60.0),
        kw in prop::collection::vec(0..WORDS.len(), 1..3),
        k in 1usize..10,
        seed in 0u64..1000,
    ) {
        let db = build_db(&docs);
        let tree = mir2_of(&db, 2, seed);
        let kws: Vec<&str> = kw.iter().map(|&i| WORDS[i]).collect();
        let q = DistanceFirstQuery::new(qpoint, &kws, k);
        let (got, _) = distance_first_topk(&tree, db.store.as_ref(), &q).unwrap();
        let want = brute_distance_first(&db, &q);
        assert_distance_first_matches(&got, &want, &q.keywords);
    }

    /// Deletions keep signatures conservative: after deleting a random
    /// subset, queries still equal brute force over the survivors.
    #[test]
    fn ir2_queries_survive_deletions(
        docs in arb_docs(),
        delete_mask in prop::collection::vec(any::<bool>(), 60),
        kw in prop::collection::vec(0..WORDS.len(), 1..3),
        seed in 0u64..1000,
    ) {
        let mut db = build_db(&docs);
        let tree = ir2_of(&db, 2, seed);
        let mut kept = Vec::new();
        for (i, (ptr, obj)) in db.objects.iter().enumerate() {
            if delete_mask[i % delete_mask.len()] {
                prop_assert!(delete_object(&tree, *ptr, obj).unwrap());
            } else {
                kept.push((*ptr, obj.clone()));
            }
        }
        db.objects = kept;
        let kws: Vec<&str> = kw.iter().map(|&i| WORDS[i]).collect();
        let q = DistanceFirstQuery::new([0.0, 0.0], &kws, 8);
        let (got, _) = distance_first_topk(&tree, db.store.as_ref(), &q).unwrap();
        let want = brute_distance_first(&db, &q);
        assert_distance_first_matches(&got, &want, &q.keywords);

        // Structural + signature-containment invariants still hold.
        let contains = |_l: u16, parent: &[u8], summary: &[u8]| {
            parent.iter().zip(summary.iter()).all(|(p, s)| p & s == *s)
        };
        tree.check_invariants(contains).unwrap();
    }

    /// The general algorithm returns the true top-k by combined score.
    #[test]
    fn general_topk_equals_brute_force(
        docs in arb_docs(),
        qpoint in prop::array::uniform2(-60.0f64..60.0),
        kw in prop::collection::vec(0..WORDS.len(), 1..4),
        k in 1usize..8,
        seed in 0u64..1000,
    ) {
        let db = build_db(&docs);
        let tree = ir2_of(&db, 3, seed);
        let scorer = SaturatingTfIdf;
        let rank = LinearRank { ir_weight: 1.0, dist_weight: 0.02 };
        let kws: Vec<&str> = kw.iter().map(|&i| WORDS[i]).collect();
        let q = GeneralQuery::new(qpoint, &kws, k);
        let got = general_topk(&tree, db.store.as_ref(), &db.vocab, &scorer, &rank, &q).unwrap();

        // Brute force: score every object with ≥1 matching keyword.
        let term_ids: Vec<_> = q.keywords.iter().filter_map(|w| db.vocab.term_id(w)).collect();
        let qp = Point::new(qpoint);
        let mut brute: Vec<f64> = db.objects.iter().filter_map(|(_, o)| {
            let ir = scorer.score(&db.vocab, &term_ids, &o.token_counts());
            if ir <= 0.0 { return None; }
            Some(rank.combine(o.point.distance(&qp), ir))
        }).collect();
        brute.sort_by(|a, b| b.total_cmp(a));
        brute.truncate(k);

        prop_assert_eq!(got.len(), brute.len());
        for (g, w) in got.iter().zip(brute.iter()) {
            prop_assert!((g.score - w).abs() < 1e-9, "score {} vs {}", g.score, w);
        }
        // Emitted in non-increasing score order.
        for pair in got.windows(2) {
            prop_assert!(pair[0].score >= pair[1].score - 1e-12);
        }
    }

    /// IR² and MIR² always agree (they implement the same query semantics).
    #[test]
    fn ir2_and_mir2_agree(
        docs in arb_docs(),
        qpoint in prop::array::uniform2(-60.0f64..60.0),
        kw in prop::collection::vec(0..WORDS.len(), 1..3),
        seed in 0u64..500,
    ) {
        let db = build_db(&docs);
        let ir2 = ir2_of(&db, 2, seed);
        let mir2 = mir2_of(&db, 2, seed);
        let kws: Vec<&str> = kw.iter().map(|&i| WORDS[i]).collect();
        let q = DistanceFirstQuery::new(qpoint, &kws, 10);
        let (a, _) = distance_first_topk(&ir2, db.store.as_ref(), &q).unwrap();
        let (b, _) = distance_first_topk(&mir2, db.store.as_ref(), &q).unwrap();
        let da: Vec<f64> = a.iter().map(|(_, d)| *d).collect();
        let db_: Vec<f64> = b.iter().map(|(_, d)| *d).collect();
        prop_assert_eq!(da.len(), db_.len());
        for (x, y) in da.iter().zip(db_.iter()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Window keyword queries equal brute force for any window and keyword
    /// set on both tree variants.
    #[test]
    fn window_query_equals_brute_force(
        docs in arb_docs(),
        corners in prop::array::uniform4(-70.0f64..70.0),
        kw in prop::collection::vec(0..WORDS.len(), 0..3),
        seed in 0u64..500,
    ) {
        use ir2_geo::{Point, Rect};
        let db = build_db(&docs);
        let tree = ir2_of(&db, 2, seed);
        let window = Rect::from_corners(
            Point::new([corners[0], corners[1]]),
            Point::new([corners[2], corners[3]]),
        );
        let kws: Vec<String> = kw.iter().map(|&i| WORDS[i].to_string()).collect();
        let (got, _) =
            ir2_irtree::keyword_window_query(&tree, db.store.as_ref(), &window, &kws).unwrap();
        let mut got_ids: Vec<u64> = got.iter().map(|o| o.id).collect();
        got_ids.sort_unstable();
        let mut want: Vec<u64> = db
            .objects
            .iter()
            .filter(|(_, o)| window.contains_point(&o.point) && o.token_set().contains_all(&kws))
            .map(|(_, o)| o.id)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got_ids, want);
    }

    /// The signature density profile is monotone non-decreasing by level
    /// for the uniform-scheme IR²-Tree, on any dataset.
    #[test]
    fn density_profile_is_monotone_for_ir2(docs in arb_docs(), seed in 0u64..500) {
        let db = build_db(&docs);
        let tree = ir2_of(&db, 2, seed);
        let profile = ir2_irtree::density_profile(&tree).unwrap();
        for w in profile.windows(2) {
            prop_assert!(w[1].mean_density >= w[0].mean_density - 1e-9);
        }
        prop_assert_eq!(profile[0].entries, docs.len() as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The general ranked algorithm agrees across IR² and MIR² trees on
    /// every dataset: the score sequences coincide.
    #[test]
    fn general_topk_agrees_across_tree_variants(
        docs in arb_docs(),
        qpoint in prop::array::uniform2(-60.0f64..60.0),
        kw in prop::collection::vec(0..WORDS.len(), 1..4),
        k in 1usize..8,
        seed in 0u64..300,
    ) {
        let db = build_db(&docs);
        let ir2 = ir2_of(&db, 2, seed);
        let mir2 = mir2_of(&db, 2, seed);
        let scorer = SaturatingTfIdf;
        let rank = LinearRank { ir_weight: 1.0, dist_weight: 0.02 };
        let kws: Vec<&str> = kw.iter().map(|&i| WORDS[i]).collect();
        let q = GeneralQuery::new(qpoint, &kws, k);
        let a = general_topk(&ir2, db.store.as_ref(), &db.vocab, &scorer, &rank, &q).unwrap();
        let b = general_topk(&mir2, db.store.as_ref(), &db.vocab, &scorer, &rank, &q).unwrap();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x.score - y.score).abs() < 1e-9);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Signature maintenance under random insert/delete interleavings: on
    /// the IR²-Tree every ancestor signature stays *exactly* the OR of its
    /// descendants (CondenseTree recomputes, it does not merely shrink),
    /// and on the MIR²-Tree the lifted signatures stay conservative.
    /// `action` per document: 0 = keep, 1 = delete, 2 = delete then
    /// reinsert.
    #[test]
    fn signatures_stay_exact_under_interleaving(
        docs in arb_docs(),
        actions in prop::collection::vec(0u8..3, 60),
        seed in 0u64..500,
    ) {
        let db = build_db(&docs);
        let ir2 = ir2_of(&db, 2, seed);
        let mir2 = mir2_of(&db, 2, seed);

        let exact = |_l: u16, parent: &[u8], summary: &[u8]| parent == summary;
        let contains = |_l: u16, parent: &[u8], summary: &[u8]| {
            parent.iter().zip(summary.iter()).all(|(p, s)| p & s == *s)
        };
        prop_assert_eq!(ir2.check_invariants(exact).unwrap(), docs.len() as u64);

        // Phase 1: delete every document whose action is nonzero.
        for (i, (ptr, obj)) in db.objects.iter().enumerate() {
            if actions[i % actions.len()] != 0 {
                prop_assert!(delete_object(&ir2, *ptr, obj).unwrap());
                prop_assert!(delete_object(&mir2, *ptr, obj).unwrap());
            }
        }
        ir2.check_invariants(exact).unwrap();
        mir2.check_invariants(contains).unwrap();

        // Phase 2: reinsert the action-2 documents.
        let mut survivors = Vec::new();
        for (i, (ptr, obj)) in db.objects.iter().enumerate() {
            match actions[i % actions.len()] {
                0 => survivors.push((*ptr, obj.clone())),
                2 => {
                    insert_object(&ir2, *ptr, obj).unwrap();
                    insert_object(&mir2, *ptr, obj).unwrap();
                    survivors.push((*ptr, obj.clone()));
                }
                _ => {}
            }
        }
        let n = survivors.len() as u64;
        prop_assert_eq!(ir2.check_invariants(exact).unwrap(), n);
        prop_assert_eq!(mir2.check_invariants(contains).unwrap(), n);
    }

    /// Delete + reinsert round-trips query results: after removing a random
    /// subset and putting it back, both trees answer distance-first queries
    /// exactly as brute force over the full collection.
    #[test]
    fn delete_reinsert_roundtrips_query_results(
        docs in arb_docs(),
        delete_mask in prop::collection::vec(any::<bool>(), 60),
        qpoint in prop::array::uniform2(-60.0f64..60.0),
        kw in prop::collection::vec(0..WORDS.len(), 1..3),
        k in 1usize..10,
        seed in 0u64..500,
    ) {
        let db = build_db(&docs);
        let ir2 = ir2_of(&db, 2, seed);
        let mir2 = mir2_of(&db, 2, seed);

        for (i, (ptr, obj)) in db.objects.iter().enumerate() {
            if delete_mask[i % delete_mask.len()] {
                prop_assert!(delete_object(&ir2, *ptr, obj).unwrap());
                prop_assert!(delete_object(&mir2, *ptr, obj).unwrap());
            }
        }
        for (i, (ptr, obj)) in db.objects.iter().enumerate() {
            if delete_mask[i % delete_mask.len()] {
                insert_object(&ir2, *ptr, obj).unwrap();
                insert_object(&mir2, *ptr, obj).unwrap();
            }
        }

        let kws: Vec<&str> = kw.iter().map(|&i| WORDS[i]).collect();
        let q = DistanceFirstQuery::new(qpoint, &kws, k);
        let want = brute_distance_first(&db, &q);
        let (got_ir2, _) = distance_first_topk(&ir2, db.store.as_ref(), &q).unwrap();
        assert_distance_first_matches(&got_ir2, &want, &q.keywords);
        let (got_mir2, _) = distance_first_topk(&mir2, db.store.as_ref(), &q).unwrap();
        assert_distance_first_matches(&got_mir2, &want, &q.keywords);
    }
}
