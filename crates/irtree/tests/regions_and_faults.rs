//! Area-anchored queries (the paper's "an area could be used instead" of
//! the query point) and fault-injection behaviour of the IR²-Tree stack.

use std::sync::Arc;

use ir2_geo::{Point, Rect};
use ir2_irtree::{distance_first_region_topk, insert_object, DistanceFirstIter, Ir2Payload};
use ir2_model::{ObjectSource, ObjectStore, QueryRegion, SpatialObject};
use ir2_rtree::{RTree, RTreeConfig};
use ir2_sigfile::SignatureScheme;
use ir2_storage::testing::FlakyDevice;
use ir2_storage::{MemDevice, StorageError};

fn grid_db() -> (
    Arc<ObjectStore<2, MemDevice>>,
    RTree<2, MemDevice, Ir2Payload>,
    Vec<SpatialObject<2>>,
) {
    let store = Arc::new(ObjectStore::<2, _>::create(MemDevice::new()));
    let tree = RTree::create(
        MemDevice::new(),
        RTreeConfig::with_max(4),
        Ir2Payload::new(SignatureScheme::from_bytes_len(8, 3, 5)),
    )
    .unwrap();
    let themes = ["cafe wifi", "diner grill", "cafe books", "bar snooker"];
    let mut objs = Vec::new();
    for i in 0..64u64 {
        let obj = SpatialObject::new(
            i,
            [(i % 8) as f64, (i / 8) as f64],
            themes[i as usize % themes.len()],
        );
        let ptr = store.append(&obj).unwrap();
        insert_object(&tree, ptr, &obj).unwrap();
        objs.push(obj);
    }
    store.flush().unwrap();
    (store, tree, objs)
}

#[test]
fn area_query_returns_contained_objects_first() {
    let (store, tree, objs) = grid_db();
    let area = Rect::from_corners(Point::new([1.5, 1.5]), Point::new([3.5, 3.5]));
    let region = QueryRegion::Area(area);
    let (hits, _) =
        distance_first_region_topk(&tree, store.as_ref(), region, &["cafe".into()], 50).unwrap();

    // Every "cafe" object inside the area must be reported at distance 0,
    // before anything outside.
    let inside: Vec<u64> = objs
        .iter()
        .filter(|o| area.contains_point(&o.point) && o.token_set().contains("cafe"))
        .map(|o| o.id)
        .collect();
    assert!(
        !inside.is_empty(),
        "fixture must place cafes inside the area"
    );
    let zero_dist: Vec<u64> = hits
        .iter()
        .take_while(|(_, d)| *d == 0.0)
        .map(|(o, _)| o.id)
        .collect();
    let mut zs = zero_dist.clone();
    zs.sort_unstable();
    let mut ins = inside.clone();
    ins.sort_unstable();
    assert_eq!(zs, ins);
    // Distances non-decreasing beyond the area.
    for w in hits.windows(2) {
        assert!(w[0].1 <= w[1].1);
    }
    // Agreement with brute force on the full match set.
    let brute = objs
        .iter()
        .filter(|o| o.token_set().contains("cafe"))
        .count();
    assert_eq!(hits.len(), brute);
}

#[test]
fn area_query_equals_point_query_for_degenerate_area() {
    let (store, tree, _) = grid_db();
    let p = Point::new([4.2, 2.9]);
    let (by_area, _) = distance_first_region_topk(
        &tree,
        store.as_ref(),
        QueryRegion::Area(Rect::from_point(p)),
        &["cafe".into()],
        10,
    )
    .unwrap();
    let (by_point, _) = distance_first_region_topk(
        &tree,
        store.as_ref(),
        QueryRegion::Point(p),
        &["cafe".into()],
        10,
    )
    .unwrap();
    let da: Vec<f64> = by_area.iter().map(|(_, d)| *d).collect();
    let dp: Vec<f64> = by_point.iter().map(|(_, d)| *d).collect();
    assert_eq!(da.len(), dp.len());
    for (a, b) in da.iter().zip(dp.iter()) {
        assert!((a - b).abs() < 1e-12);
    }
}

#[test]
fn tree_device_failure_surfaces_as_error_not_panic() {
    // Build a healthy tree on a flaky device with a generous budget, then
    // exhaust the budget and query: the iterator must yield Err.
    let store = Arc::new(ObjectStore::<2, _>::create(MemDevice::new()));
    let flaky = FlakyDevice::new(MemDevice::new(), u64::MAX / 2);
    let tree = RTree::create(
        flaky,
        RTreeConfig::with_max(4),
        Ir2Payload::new(SignatureScheme::from_bytes_len(8, 3, 5)),
    )
    .unwrap();
    for i in 0..40u64 {
        let obj = SpatialObject::new(i, [i as f64, 0.0], "word pool");
        let ptr = store.append(&obj).unwrap();
        insert_object(&tree, ptr, &obj).unwrap();
    }
    tree.device().refill(0); // every further tree I/O fails

    let mut iter = DistanceFirstIter::new(
        &tree,
        store.as_ref() as &dyn ObjectSource<2>,
        ir2_model::DistanceFirstQuery::new([0.0, 0.0], &["pool"], 5),
    );
    match iter.next() {
        Some(Err(StorageError::Io { .. })) => {}
        other => panic!("expected injected Io error, got {other:?}"),
    }

    // Service restored: the same tree keeps working (no corruption).
    tree.device().refill(u64::MAX / 2);
    let (hits, _) = ir2_irtree::distance_first_topk(
        &tree,
        store.as_ref(),
        &ir2_model::DistanceFirstQuery::new([0.0, 0.0], &["pool"], 5),
    )
    .unwrap();
    assert_eq!(hits.len(), 5);
}

#[test]
fn object_store_failure_mid_verification_is_an_error() {
    let flaky_store = Arc::new(ObjectStore::<2, _>::create(FlakyDevice::new(
        MemDevice::new(),
        u64::MAX / 2,
    )));
    let tree = RTree::create(
        MemDevice::new(),
        RTreeConfig::with_max(4),
        Ir2Payload::new(SignatureScheme::from_bytes_len(8, 3, 5)),
    )
    .unwrap();
    for i in 0..20u64 {
        let obj = SpatialObject::new(i, [i as f64, 1.0], "pool spa");
        let ptr = flaky_store.append(&obj).unwrap();
        insert_object(&tree, ptr, &obj).unwrap();
    }
    flaky_store.device().refill(0);
    let res = ir2_irtree::distance_first_topk(
        &tree,
        flaky_store.as_ref(),
        &ir2_model::DistanceFirstQuery::new([0.0, 0.0], &["pool"], 3),
    );
    assert!(matches!(res, Err(StorageError::Io { .. })));
}

#[test]
fn insert_failure_is_an_error_not_a_panic() {
    // Exhaust the budget mid-insert; subsequent operations must error
    // cleanly. (A failed insert may leave the tree partially updated — the
    // paper's structures have no WAL — but it must never panic.)
    let flaky = FlakyDevice::new(MemDevice::new(), 30);
    let tree = RTree::create(
        flaky,
        RTreeConfig::with_max(4),
        Ir2Payload::new(SignatureScheme::from_bytes_len(8, 3, 5)),
    )
    .unwrap();
    let store = Arc::new(ObjectStore::<2, _>::create(MemDevice::new()));
    let mut failed = false;
    for i in 0..200u64 {
        let obj = SpatialObject::new(i, [(i % 9) as f64, (i / 9) as f64], "pool");
        let ptr = store.append(&obj).unwrap();
        if insert_object(&tree, ptr, &obj).is_err() {
            failed = true;
            break;
        }
    }
    assert!(failed, "budget of 30 operations must be exhausted");
}
