//! End-to-end tests on the paper's running example (Figure 1's hotels),
//! reproducing Examples 1 and 3.

use std::sync::Arc;

use ir2_irtree::{
    bulk_load_objects, distance_first_topk, general_topk, insert_object, rtree_baseline_topk,
    DistanceFirstIter, GeneralQuery, Ir2Payload, MirPayload,
};
use ir2_model::{DistanceFirstQuery, ObjPtr, ObjectStore, SpatialObject};
use ir2_rtree::{RTree, RTreeConfig, UnitPayload};
use ir2_sigfile::{MultiLevelScheme, SignatureScheme};
use ir2_storage::MemDevice;
use ir2_text::{tokenize, DecayRank, SaturatingTfIdf, Vocabulary};

const HOTELS: [(f64, f64, &str); 8] = [
    (
        25.4,
        -80.1,
        "Hotel A tennis court, gift shop, spa, Internet",
    ),
    (47.3, -122.2, "Hotel B wireless Internet, pool, golf course"),
    (35.5, 139.4, "Hotel C spa, continental suites, pool"),
    (39.5, 116.2, "Hotel D sauna, pool, conference rooms"),
    (51.3, -0.5, "Hotel E dry cleaning, free lunch, pets"),
    (40.4, -73.5, "Hotel F safe box, concierge, internet, pets"),
    (
        -33.2,
        -70.4,
        "Hotel G Internet, airport transportation, pool",
    ),
    (-41.1, 174.4, "Hotel H wake up service, no pets, pool"),
];

struct Fixture {
    store: Arc<ObjectStore<2, MemDevice>>,
    ptrs: Vec<ObjPtr>,
    vocab: Vocabulary,
}

fn fixture() -> Fixture {
    let store = Arc::new(ObjectStore::<2, _>::create(MemDevice::new()));
    let mut ptrs = Vec::new();
    let mut vocab = Vocabulary::new();
    for (i, (lat, lon, text)) in HOTELS.iter().enumerate() {
        let obj = SpatialObject::new(i as u64 + 1, [*lat, *lon], *text);
        ptrs.push(store.append(&obj).unwrap());
        let mut terms: Vec<String> = tokenize(text).collect();
        terms.sort_unstable();
        terms.dedup();
        vocab.add_document(terms.iter().map(String::as_str));
    }
    store.flush().unwrap();
    Fixture { store, ptrs, vocab }
}

fn ir2_tree(f: &Fixture) -> RTree<2, MemDevice, Ir2Payload> {
    let scheme = SignatureScheme::from_bytes_len(16, 4, 42);
    let tree = RTree::create(
        MemDevice::new(),
        RTreeConfig::with_max(4),
        Ir2Payload::new(scheme),
    )
    .unwrap();
    for (ptr, (i, row)) in f.ptrs.iter().zip(HOTELS.iter().enumerate()) {
        let obj = SpatialObject::new(i as u64 + 1, [row.0, row.1], row.2);
        insert_object(&tree, *ptr, &obj).unwrap();
    }
    tree
}

fn mir2_tree(f: &Fixture) -> RTree<2, MemDevice, MirPayload<2>> {
    let schemes = MultiLevelScheme::new(8, 4, 42, 4, 6.0, f.vocab.len());
    let tree = RTree::create(
        MemDevice::new(),
        RTreeConfig::with_max(4),
        MirPayload::new(
            schemes,
            Arc::clone(&f.store) as Arc<dyn ir2_model::ObjectSource<2>>,
        ),
    )
    .unwrap();
    for (ptr, (i, row)) in f.ptrs.iter().zip(HOTELS.iter().enumerate()) {
        let obj = SpatialObject::new(i as u64 + 1, [row.0, row.1], row.2);
        insert_object(&tree, *ptr, &obj).unwrap();
    }
    tree
}

#[test]
fn example_3_distance_first_ir2() {
    // "top-2 hotels from [30.5, 100.0] containing internet and pool"
    // must return H7 then H2 (Example 3).
    let f = fixture();
    let tree = ir2_tree(&f);
    let q = DistanceFirstQuery::new([30.5, 100.0], &["internet", "pool"], 2);
    let (res, counters) = distance_first_topk(&tree, f.store.as_ref(), &q).unwrap();
    let ids: Vec<u64> = res.iter().map(|(o, _)| o.id).collect();
    assert_eq!(ids, vec![7, 2]);
    assert!((res[0].1 - 181.9).abs() < 0.05);
    assert!((res[1].1 - 222.8).abs() < 0.05);
    // The verify step never admits an object without the keywords; at most
    // the two real results were checked plus possible false positives.
    assert!(counters.candidates_checked >= 2);
}

#[test]
fn example_3_distance_first_mir2() {
    let f = fixture();
    let tree = mir2_tree(&f);
    let q = DistanceFirstQuery::new([30.5, 100.0], &["internet", "pool"], 2);
    let (res, _) = distance_first_topk(&tree, f.store.as_ref(), &q).unwrap();
    let ids: Vec<u64> = res.iter().map(|(o, _)| o.id).collect();
    assert_eq!(ids, vec![7, 2], "MIR²-Tree must answer identically");
}

#[test]
fn empty_keywords_degenerate_to_example_1_nn_order() {
    let f = fixture();
    let tree = ir2_tree(&f);
    let q = DistanceFirstQuery::<2>::new([30.5, 100.0], &[] as &[&str], 8);
    let (res, counters) = distance_first_topk(&tree, f.store.as_ref(), &q).unwrap();
    let ids: Vec<u64> = res.iter().map(|(o, _)| o.id).collect();
    assert_eq!(ids, vec![4, 3, 5, 8, 6, 1, 7, 2], "Example 1's NN order");
    assert_eq!(counters.false_positives, 0);
    assert_eq!(counters.pruned_by_signature, 0);
}

#[test]
fn baseline_agrees_with_ir2() {
    let f = fixture();
    let ir2 = ir2_tree(&f);
    let plain = RTree::create(MemDevice::new(), RTreeConfig::with_max(4), UnitPayload).unwrap();
    for (ptr, (i, row)) in f.ptrs.iter().zip(HOTELS.iter().enumerate()) {
        plain
            .insert(
                ptr.0,
                ir2_geo::Rect::from_point(ir2_geo::Point::new([row.0, row.1])),
                &[],
            )
            .unwrap();
        let _ = i;
    }
    for keywords in [
        vec!["pool"],
        vec!["internet", "pool"],
        vec!["pets"],
        vec!["nowhere"],
    ] {
        let q = DistanceFirstQuery::new([30.5, 100.0], &keywords, 8);
        let (a, ca) = distance_first_topk(&ir2, f.store.as_ref(), &q).unwrap();
        let (b, cb) = rtree_baseline_topk(&plain, f.store.as_ref(), &q).unwrap();
        let ids_a: Vec<u64> = a.iter().map(|(o, _)| o.id).collect();
        let ids_b: Vec<u64> = b.iter().map(|(o, _)| o.id).collect();
        assert_eq!(ids_a, ids_b, "keywords {keywords:?}");
        // The baseline loads at least as many candidates as the IR²-Tree.
        assert!(cb.candidates_checked >= ca.candidates_checked);
    }
}

#[test]
fn signature_pruning_saves_candidate_loads() {
    let f = fixture();
    let tree = ir2_tree(&f);
    // "pets" appears in H5, H6, H8 only; the IR² search should prune
    // at least some non-matching entries.
    let q = DistanceFirstQuery::new([30.5, 100.0], &["pets"], 3);
    let (res, counters) = distance_first_topk(&tree, f.store.as_ref(), &q).unwrap();
    assert_eq!(res.len(), 3);
    assert!(
        counters.pruned_by_signature > 0,
        "expected signature pruning on a selective keyword"
    );
}

#[test]
fn incremental_iterator_is_lazy_and_resumable() {
    let f = fixture();
    let tree = ir2_tree(&f);
    let q = DistanceFirstQuery::new([30.5, 100.0], &["pool"], 5);
    let mut iter = DistanceFirstIter::new(&tree, f.store.as_ref(), q);
    let first = iter.next().unwrap().unwrap();
    assert_eq!(first.0.id, 4); // H4 is the nearest pool hotel
    let rest: Vec<u64> = iter.map(|r| r.unwrap().0.id).collect();
    assert_eq!(rest, vec![3, 8, 7, 2]);
}

#[test]
fn k_exceeding_matches_and_absent_keyword() {
    let f = fixture();
    let tree = ir2_tree(&f);
    let q = DistanceFirstQuery::new([0.0, 0.0], &["internet", "pool"], 100);
    let (res, _) = distance_first_topk(&tree, f.store.as_ref(), &q).unwrap();
    assert_eq!(res.len(), 2, "only two hotels have both keywords");

    let q = DistanceFirstQuery::new([0.0, 0.0], &["casino"], 3);
    let (res, _) = distance_first_topk(&tree, f.store.as_ref(), &q).unwrap();
    assert!(res.is_empty());
}

#[test]
fn general_topk_ranks_by_combined_score() {
    let f = fixture();
    let tree = ir2_tree(&f);
    let scorer = SaturatingTfIdf;
    let rank = DecayRank { scale: 100.0 };
    let q = GeneralQuery::new([30.5, 100.0], &["internet", "pool"], 8);
    let res = general_topk(&tree, f.store.as_ref(), &f.vocab, &scorer, &rank, &q).unwrap();

    // Brute force over all hotels with the same scorer/ranker.
    let mut brute: Vec<(u64, f64)> = HOTELS
        .iter()
        .enumerate()
        .map(|(i, (lat, lon, text))| {
            let obj = SpatialObject::<2>::new(i as u64 + 1, [*lat, *lon], *text);
            let term_ids: Vec<_> = ["internet", "pool"]
                .iter()
                .filter_map(|w| f.vocab.term_id(w))
                .collect();
            let ir = ir2_text::IrScorer::score(&scorer, &f.vocab, &term_ids, &obj.token_counts());
            let d = obj.point.distance(&ir2_geo::Point::new([30.5, 100.0]));
            (obj.id, ir2_text::RankingFn::combine(&rank, d, ir))
        })
        .filter(|(_, s)| *s > 0.0)
        .collect();
    brute.sort_by(|a, b| b.1.total_cmp(&a.1));

    assert_eq!(res.len(), brute.len());
    for (got, want) in res.iter().zip(brute.iter()) {
        assert!(
            (got.score - want.1).abs() < 1e-9,
            "score sequence mismatch: got {} want {}",
            got.score,
            want.1
        );
    }
    // Scores are non-increasing.
    for w in res.windows(2) {
        assert!(w[0].score >= w[1].score - 1e-12);
    }
}

#[test]
fn general_topk_on_mir2_matches_ir2() {
    let f = fixture();
    let ir2 = ir2_tree(&f);
    let mir2 = mir2_tree(&f);
    let scorer = SaturatingTfIdf;
    let rank = DecayRank { scale: 50.0 };
    let q = GeneralQuery::new([30.5, 100.0], &["spa", "pool", "internet"], 5);
    let a = general_topk(&ir2, f.store.as_ref(), &f.vocab, &scorer, &rank, &q).unwrap();
    let b = general_topk(&mir2, f.store.as_ref(), &f.vocab, &scorer, &rank, &q).unwrap();
    let sa: Vec<f64> = a.iter().map(|r| r.score).collect();
    let sb: Vec<f64> = b.iter().map(|r| r.score).collect();
    assert_eq!(sa.len(), sb.len());
    for (x, y) in sa.iter().zip(sb.iter()) {
        assert!((x - y).abs() < 1e-9);
    }
}

#[test]
fn bulk_loaded_ir2_answers_identically() {
    let f = fixture();
    let incremental = ir2_tree(&f);
    let scheme = SignatureScheme::from_bytes_len(16, 4, 42);
    let bulk = RTree::create(
        MemDevice::new(),
        RTreeConfig::with_max(4),
        Ir2Payload::new(scheme),
    )
    .unwrap();
    let items: Vec<(ObjPtr, SpatialObject<2>)> = f
        .ptrs
        .iter()
        .zip(HOTELS.iter().enumerate())
        .map(|(ptr, (i, row))| {
            (
                *ptr,
                SpatialObject::new(i as u64 + 1, [row.0, row.1], row.2),
            )
        })
        .collect();
    bulk_load_objects(&bulk, items).unwrap();

    let q = DistanceFirstQuery::new([30.5, 100.0], &["internet", "pool"], 2);
    let (a, _) = distance_first_topk(&incremental, f.store.as_ref(), &q).unwrap();
    let (b, _) = distance_first_topk(&bulk, f.store.as_ref(), &q).unwrap();
    let ids_a: Vec<u64> = a.iter().map(|(o, _)| o.id).collect();
    let ids_b: Vec<u64> = b.iter().map(|(o, _)| o.id).collect();
    assert_eq!(ids_a, ids_b);
}

#[test]
fn signature_invariant_holds_in_both_trees() {
    let f = fixture();
    let contains = |_lvl: u16, parent: &[u8], summary: &[u8]| {
        parent.iter().zip(summary.iter()).all(|(p, s)| p & s == *s)
    };
    assert_eq!(ir2_tree(&f).check_invariants(contains).unwrap(), 8);
    assert_eq!(mir2_tree(&f).check_invariants(contains).unwrap(), 8);
}
