//! Property tests for the decoded-node cache and frontier prefetch: a
//! cached (and prefetching) traversal must return **byte-identical**
//! results to the uncached one, across arbitrary insert/delete/reinsert
//! interleavings — the epoch invalidation may never serve a stale node.

use std::sync::Arc;

use ir2_irtree::{
    delete_object, distance_first_topk, distance_first_topk_prefetched_traced, general_topk,
    general_topk_prefetched, insert_object, GeneralQuery, Ir2Payload, NopSink,
};
use ir2_model::{DistanceFirstQuery, ObjPtr, ObjectStore, SpatialObject};
use ir2_rtree::{NodeCache, RTree, RTreeConfig};
use ir2_sigfile::SignatureScheme;
use ir2_storage::MemDevice;
use ir2_text::{tokenize, LinearRank, SaturatingTfIdf, Vocabulary};
use proptest::prelude::*;

const WORDS: [&str; 10] = [
    "internet", "pool", "spa", "pets", "golf", "sauna", "suite", "gym", "bar", "wifi",
];

#[derive(Debug, Clone)]
struct Doc {
    point: [f64; 2],
    words: Vec<usize>,
}

fn arb_doc() -> impl Strategy<Value = Doc> {
    (
        prop::array::uniform2(-50.0f64..50.0),
        prop::collection::vec(0..WORDS.len(), 0..5),
    )
        .prop_map(|(point, words)| Doc { point, words })
}

/// One mutation step applied identically to both trees.
#[derive(Debug, Clone)]
enum Step {
    Delete(usize),   // delete objects[i % len] if still present
    Reinsert(usize), // re-add a previously deleted object
    Query([f64; 2], usize),
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..64).prop_map(Step::Delete),
            (0usize..64).prop_map(Step::Reinsert),
            ((prop::array::uniform2(-60.0f64..60.0)), 0usize..WORDS.len())
                .prop_map(|(p, w)| Step::Query(p, w)),
        ],
        1..24,
    )
}

struct Fixture {
    store: Arc<ObjectStore<2, MemDevice>>,
    objects: Vec<(ObjPtr, SpatialObject<2>)>,
    vocab: Vocabulary,
    /// Cache + prefetch enabled.
    warm: RTree<2, MemDevice, Ir2Payload>,
    /// No cache, no prefetch — ground truth.
    cold: RTree<2, MemDevice, Ir2Payload>,
}

fn build_fixture(docs: &[Doc], seed: u64) -> Fixture {
    let store = Arc::new(ObjectStore::<2, _>::create(MemDevice::new()));
    let mut objects = Vec::new();
    let mut vocab = Vocabulary::new();
    for (i, d) in docs.iter().enumerate() {
        let text = d
            .words
            .iter()
            .map(|&w| WORDS[w])
            .collect::<Vec<_>>()
            .join(" ");
        let obj = SpatialObject::new(i as u64, d.point, text);
        let ptr = store.append(&obj).unwrap();
        let mut terms: Vec<String> = tokenize(&obj.text).collect();
        terms.sort_unstable();
        terms.dedup();
        vocab.add_document(terms.iter().map(String::as_str));
        objects.push((ptr, obj));
    }
    store.flush().unwrap();
    let tree = |cache: bool| {
        let mut t = RTree::create(
            MemDevice::new(),
            RTreeConfig::with_max(4),
            Ir2Payload::new(SignatureScheme::from_bytes_len(2, 3, seed)),
        )
        .unwrap();
        if cache {
            t.set_node_cache(Arc::new(NodeCache::new(256)));
        }
        for (ptr, obj) in &objects {
            insert_object(&t, *ptr, obj).unwrap();
        }
        t
    };
    Fixture {
        warm: tree(true),
        cold: tree(false),
        store,
        objects,
        vocab,
    }
}

/// Results must match bit-for-bit: same ids, same distance bits.
fn assert_identical(warm: &[(SpatialObject<2>, f64)], cold: &[(SpatialObject<2>, f64)]) {
    assert_eq!(warm.len(), cold.len(), "result count");
    for ((wo, wd), (co, cd)) in warm.iter().zip(cold.iter()) {
        assert_eq!(wo.id, co.id, "object id");
        assert_eq!(wd.to_bits(), cd.to_bits(), "distance bits");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Under an arbitrary interleaving of deletes, reinserts, and queries,
    /// the cached + prefetching tree answers every query byte-identically
    /// to the uncached tree — including the *warm* repeat of each query,
    /// which on the cached tree is served largely from decoded images.
    #[test]
    fn cached_prefetched_topk_is_byte_identical_across_mutations(
        docs in prop::collection::vec(arb_doc(), 5..40),
        steps in arb_steps(),
        seed in 0u64..500,
        workers in 1usize..4,
    ) {
        let fx = build_fixture(&docs, seed);
        let mut present: Vec<bool> = vec![true; fx.objects.len()];
        let run_query = |p: [f64; 2], w: usize| {
            let q = DistanceFirstQuery::new(p, &[WORDS[w]], 8);
            // Cold pass and warm repeat on the cached tree; single pass on
            // the ground-truth tree.
            let (warm1, c1) = distance_first_topk_prefetched_traced(
                &fx.warm, fx.store.as_ref(), &q, workers, NopSink).unwrap();
            let (warm2, c2) = distance_first_topk_prefetched_traced(
                &fx.warm, fx.store.as_ref(), &q, workers, NopSink).unwrap();
            let (cold, _) = distance_first_topk(&fx.cold, fx.store.as_ref(), &q).unwrap();
            assert_identical(&warm1, &cold);
            assert_identical(&warm2, &cold);
            // Visit counts are deterministic: the cache changes *where*
            // bytes come from, never how many nodes the search touches.
            assert_eq!(c1.nodes_read, c2.nodes_read, "visit count must not depend on cache state");
        };
        for step in &steps {
            match *step {
                Step::Delete(i) => {
                    let i = i % fx.objects.len();
                    if present[i] {
                        let (ptr, ref obj) = fx.objects[i];
                        prop_assert!(delete_object(&fx.warm, ptr, obj).unwrap());
                        prop_assert!(delete_object(&fx.cold, ptr, obj).unwrap());
                        present[i] = false;
                    }
                }
                Step::Reinsert(i) => {
                    let i = i % fx.objects.len();
                    if !present[i] {
                        let (ptr, ref obj) = fx.objects[i];
                        insert_object(&fx.warm, ptr, obj).unwrap();
                        insert_object(&fx.cold, ptr, obj).unwrap();
                        present[i] = true;
                    }
                }
                Step::Query(p, w) => run_query(p, w),
            }
        }
        // Final sweep: several queries on the post-mutation trees, all warm.
        for w in 0..WORDS.len() {
            run_query([0.0, 0.0], w);
        }
    }

    /// The general (ranked) algorithm under cache + prefetch matches its
    /// uncached self score-for-score.
    #[test]
    fn cached_prefetched_general_topk_is_identical(
        docs in prop::collection::vec(arb_doc(), 5..40),
        qpoint in prop::array::uniform2(-60.0f64..60.0),
        kw in prop::collection::vec(0..WORDS.len(), 1..4),
        k in 1usize..8,
        seed in 0u64..500,
        workers in 1usize..4,
    ) {
        let fx = build_fixture(&docs, seed);
        let scorer = SaturatingTfIdf;
        let rank = LinearRank { ir_weight: 1.0, dist_weight: 0.02 };
        let kws: Vec<&str> = kw.iter().map(|&i| WORDS[i]).collect();
        let q = GeneralQuery::new(qpoint, &kws, k);
        let cold = general_topk(
            &fx.cold, fx.store.as_ref(), &fx.vocab, &scorer, &rank, &q).unwrap();
        for _pass in 0..2 {
            let warm = general_topk_prefetched(
                &fx.warm, fx.store.as_ref(), &fx.vocab, &scorer, &rank, &q, workers).unwrap();
            prop_assert_eq!(warm.len(), cold.len());
            for (w, c) in warm.iter().zip(cold.iter()) {
                prop_assert_eq!(w.object.id, c.object.id);
                prop_assert_eq!(w.score.to_bits(), c.score.to_bits());
                prop_assert_eq!(w.distance.to_bits(), c.distance.to_bits());
                prop_assert_eq!(w.ir_score.to_bits(), c.ir_score.to_bits());
            }
        }
    }
}

/// Deterministic (non-property) check that the epoch machinery is actually
/// exercised: a warm query hits the cache, a mutation bumps the epoch, and
/// the next query misses every stale node yet still sees the new object.
#[test]
fn epoch_bump_evicts_stale_nodes_and_serves_new_truth() {
    let docs: Vec<Doc> = (0..30)
        .map(|i| Doc {
            point: [f64::from(i % 6), f64::from(i / 6)],
            words: vec![i as usize % WORDS.len()],
        })
        .collect();
    let fx = build_fixture(&docs, 42);
    let q = DistanceFirstQuery::new([2.0, 2.0], &[WORDS[1]], 30);

    let (_, cold_pass) =
        distance_first_topk_prefetched_traced(&fx.warm, fx.store.as_ref(), &q, 0, NopSink).unwrap();
    assert_eq!(cold_pass.cache_hits, 0, "first pass fills the cache");
    let (before, warm_pass) =
        distance_first_topk_prefetched_traced(&fx.warm, fx.store.as_ref(), &q, 0, NopSink).unwrap();
    assert_eq!(
        warm_pass.cache_hits, warm_pass.nodes_read,
        "repeat pass is fully cache-served"
    );

    // Mutate: add one more object matching the query keyword.
    let obj = SpatialObject::new(999, [2.1, 2.1], WORDS[1].to_owned());
    let ptr = fx.store.append(&obj).unwrap();
    fx.store.flush().unwrap();
    insert_object(&fx.warm, ptr, &obj).unwrap();

    let (after, post) =
        distance_first_topk_prefetched_traced(&fx.warm, fx.store.as_ref(), &q, 0, NopSink).unwrap();
    assert_eq!(
        post.cache_hits, 0,
        "mutation epoch evicts every cached node"
    );
    assert!(
        after.iter().any(|(o, _)| o.id == 999),
        "post-mutation query must see the new object"
    );
    assert_eq!(after.len(), before.len() + 1);
}
