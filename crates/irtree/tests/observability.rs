//! Trace-level observability tests:
//!
//! 1. Insert-driven height growth past the MIR² scheme ladder stays
//!    signature-exact (the `MultiLevelScheme::scheme` clamp audit).
//! 2. Observed per-level signature false-positive rates (derived from a
//!    query-time trace) validate the offline `density_profile` predictions
//!    — the paper's Section VI false-positive story, measured live.

use std::sync::Arc;

use ir2_irtree::{
    density_profile, distance_first_topk, distance_first_topk_traced, insert_object, Ir2Payload,
    MirPayload, StatsSink,
};
use ir2_model::{DistanceFirstQuery, ObjectSource, ObjectStore, SpatialObject};
use ir2_rtree::{RTree, RTreeConfig};
use ir2_sigfile::{MultiLevelScheme, SignatureScheme};
use ir2_storage::MemDevice;

/// Distinct grid point per object id, so "query from the object's own
/// position with one of its words" has a unique distance-0 answer.
fn object(i: u64, words_mod: u64) -> SpatialObject<2> {
    let text: String = (0..4)
        .map(|j| format!("w{} ", (i * 7 + j * 3) % words_mod))
        .collect();
    SpatialObject::new(i, [(i % 23) as f64, (i / 23) as f64], text)
}

#[test]
fn mir2_stays_exact_when_inserts_outgrow_the_scheme_ladder() {
    // A tiny vocabulary saturates the ladder almost immediately…
    let store = Arc::new(ObjectStore::<2, _>::create(MemDevice::new()));
    let vocab_size = 10;
    let schemes = MultiLevelScheme::new(2, 2, 9, 4, 3.0, vocab_size);
    let ladder_levels = schemes.num_levels();
    assert!(
        ladder_levels <= 2,
        "fixture needs a short ladder, got {ladder_levels}"
    );
    let tree = RTree::create(
        MemDevice::new(),
        RTreeConfig::with_max(4),
        MirPayload::new(schemes, Arc::clone(&store) as Arc<dyn ObjectSource<2>>),
    )
    .unwrap();

    // …and pure insert-driven growth (every split, including root splits,
    // happens through `insert_object`) pushes tree height well past it.
    let n = 300u64;
    let objs: Vec<_> = (0..n)
        .map(|i| {
            let o = object(i, vocab_size as u64);
            let ptr = store.append(&o).unwrap();
            insert_object(&tree, ptr, &o).unwrap();
            o
        })
        .collect();
    store.flush().unwrap();

    let root_level = tree.read_node(tree.root().unwrap()).unwrap().level;
    assert!(
        root_level as usize + 1 > ladder_levels,
        "tree height {} must exceed the ladder ({ladder_levels} levels) for \
         this test to exercise the clamp",
        root_level + 1
    );

    // Signature exactness: every object must be findable by each of its
    // own words from its own position — a false negative anywhere in the
    // clamped upper levels would silently drop it from the result.
    for o in objs.iter().step_by(7) {
        let word = o.token_set().iter().next().unwrap().to_string();
        let q = DistanceFirstQuery::new(*o.point.coords(), &[word.as_str()], 1);
        let mut sink = StatsSink::new();
        let (hits, counters) = distance_first_topk_traced(&tree, &*store, &q, &mut sink).unwrap();
        assert_eq!(hits.len(), 1, "object {} not found via '{word}'", o.id);
        assert_eq!(hits[0].0.id, o.id, "wrong nearest match for '{word}'");
        assert_eq!(hits[0].1, 0.0);
        assert!(
            sink.stats.matches_counters(&counters),
            "trace/counter divergence: {:?} vs {counters:?}",
            sink.stats
        );
        // The trace must have seen every clamped level up to the root.
        assert_eq!(sink.stats.per_level.len(), root_level as usize + 1);
    }
}

#[test]
fn traced_fp_rates_validate_density_profile_predictions() {
    // IR²-Tree with deliberately short uniform signatures: upper levels
    // saturate, which is precisely the phenomenon the per-level tables in
    // Section VI quantify.
    let store = Arc::new(ObjectStore::<2, _>::create(MemDevice::new()));
    let tree = RTree::create(
        MemDevice::new(),
        RTreeConfig::with_max(8),
        Ir2Payload::new(SignatureScheme::from_bytes_len(8, 4, 5)),
    )
    .unwrap();
    for i in 0..400u64 {
        let text: String = (0..8)
            .map(|j| format!("w{} ", (i * 13 + j) % 500))
            .collect();
        let o = SpatialObject::new(i, [(i % 23) as f64, (i / 23) as f64], text);
        let ptr = store.append(&o).unwrap();
        insert_object(&tree, ptr, &o).unwrap();
    }
    store.flush().unwrap();

    // Query with keywords that exist in NO document: every signature match
    // is then a certain false positive, so the observed per-level match
    // rate estimates the level's false-positive rate directly.
    let mut sink = StatsSink::new();
    for qi in 0..25u64 {
        let kw = format!("absentkeyword{qi}");
        let q = DistanceFirstQuery::new([(qi % 23) as f64, (qi % 17) as f64], &[kw.as_str()], 1);
        let (hits, counters) = distance_first_topk_traced(&tree, &*store, &q, &mut sink).unwrap();
        assert!(hits.is_empty(), "absent keyword cannot produce results");
        assert_eq!(
            counters.candidates_checked, counters.false_positives,
            "every fetched candidate must be a false positive"
        );
    }
    let stats = sink.into_stats();
    assert_eq!(stats.objects_fetched, stats.false_positives);
    assert_eq!(
        stats.object_fp_rate(),
        if stats.objects_fetched == 0 { 0.0 } else { 1.0 }
    );

    let profile = density_profile(&tree).unwrap();
    assert_eq!(
        stats.per_level.len(),
        profile.len(),
        "trace saw a different number of levels than the offline walk"
    );
    for ld in &profile {
        let observed = &stats.per_level[ld.level as usize];
        // Only compare levels with enough probes for the estimate to have
        // settled (the root level contributes very few tests per query).
        if observed.tests < 200 {
            continue;
        }
        let diff = (observed.match_rate() - ld.expected_fp).abs();
        assert!(
            diff < 0.1,
            "level {}: observed fp {:.4} vs predicted {:.4} over {} tests",
            ld.level,
            observed.match_rate(),
            ld.expected_fp,
            observed.tests
        );
    }
    // And the headline phenomenon itself: the saturated upper levels prune
    // far worse than the leaves.
    let leaf_rate = stats.per_level[0].match_rate();
    let top_tested = stats
        .per_level
        .iter()
        .rev()
        .find(|l| l.tests > 0)
        .unwrap()
        .match_rate();
    assert!(
        top_tested > leaf_rate,
        "upper-level fp rate {top_tested} should exceed leaf rate {leaf_rate}"
    );
}

#[test]
fn nop_and_stats_sinks_agree_on_counters() {
    let store = Arc::new(ObjectStore::<2, _>::create(MemDevice::new()));
    let tree = RTree::create(
        MemDevice::new(),
        RTreeConfig::with_max(4),
        Ir2Payload::new(SignatureScheme::from_bytes_len(8, 3, 1)),
    )
    .unwrap();
    for i in 0..120u64 {
        let o = object(i, 40);
        let ptr = store.append(&o).unwrap();
        insert_object(&tree, ptr, &o).unwrap();
    }
    store.flush().unwrap();

    let q = DistanceFirstQuery::new([4.0, 2.0], &["w3", "w8"], 5);
    let (plain_hits, plain_counters) = distance_first_topk(&tree, &*store, &q).unwrap();
    let mut sink = StatsSink::new();
    let (traced_hits, traced_counters) =
        distance_first_topk_traced(&tree, &*store, &q, &mut sink).unwrap();

    // Tracing must not change the query's behavior in any observable way.
    assert_eq!(plain_counters, traced_counters);
    assert_eq!(plain_hits.len(), traced_hits.len());
    for (a, b) in plain_hits.iter().zip(&traced_hits) {
        assert_eq!(a.0.id, b.0.id);
        assert_eq!(a.1, b.1);
    }
    assert!(sink.stats.matches_counters(&traced_counters));
}
