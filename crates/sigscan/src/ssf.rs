//! The sequential signature file structure and its query.

use std::collections::BinaryHeap;

use ir2_geo::OrderedF64;
use ir2_model::{DistanceFirstQuery, ObjPtr, ObjectSource, SpatialObject};
use ir2_sigfile::{payload_contains, Signature, SignatureScheme};
use ir2_storage::{BlockDevice, Result, StorageError};

/// Traversal counters of one SSF query.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SsfCounters {
    /// Signature entries scanned (always = number of indexed objects).
    pub signatures_scanned: u64,
    /// Candidates whose signature matched (loaded and verified).
    pub candidates_checked: u64,
    /// Candidates that failed verification (false positives).
    pub false_positives: u64,
}

/// A disk-resident sequential signature file.
///
/// Layout: a header block, then fixed-size entries packed into blocks —
/// each entry is an object pointer (8 bytes) plus the object's signature
/// (`scheme.byte_len()` bytes). Entries never straddle blocks, so the scan
/// is pure block-sequential I/O.
pub struct SignatureFile<D> {
    dev: D,
    scheme: SignatureScheme,
    count: u64,
    entries_per_block: usize,
}

const HEADER_BLOCKS: u64 = 1;
const MAGIC: &[u8; 4] = b"ISSF";

impl<D: BlockDevice> SignatureFile<D> {
    /// Builds the file over `(pointer, distinct terms)` pairs.
    pub fn build<'a>(
        dev: D,
        scheme: SignatureScheme,
        items: impl IntoIterator<Item = (ObjPtr, &'a [String])>,
    ) -> Result<Self> {
        let entry_len = 8 + scheme.byte_len();
        let entries_per_block = ir2_storage::BLOCK_SIZE / entry_len;
        if entries_per_block == 0 {
            return Err(StorageError::Corrupt(format!(
                "signature of {} bytes cannot fit a block entry",
                scheme.byte_len()
            )));
        }
        dev.allocate(HEADER_BLOCKS)?;

        // Entry blocks are allocated in order right after the header, so
        // block b of the file is device block HEADER_BLOCKS + b and the
        // scan streams sequentially.
        let mut block = ir2_storage::zeroed_block();
        let mut in_block = 0usize;
        let mut count = 0u64;
        let mut sig_buf = vec![0u8; scheme.byte_len()];
        for (ptr, terms) in items {
            let sig = scheme.sign_terms(terms.iter().map(String::as_str));
            sig.write_bytes(&mut sig_buf);
            let off = in_block * entry_len;
            block[off..off + 8].copy_from_slice(&ptr.to_le_bytes());
            block[off + 8..off + entry_len].copy_from_slice(&sig_buf);
            in_block += 1;
            count += 1;
            if in_block == entries_per_block {
                let id = dev.allocate(1)?;
                dev.write_block(id, &block)?;
                block.fill(0);
                in_block = 0;
            }
        }
        if in_block > 0 {
            let id = dev.allocate(1)?;
            dev.write_block(id, &block)?;
        }

        // Header: magic | count | scheme bits | k | seed.
        let mut header = ir2_storage::zeroed_block();
        header[..4].copy_from_slice(MAGIC);
        header[4..12].copy_from_slice(&count.to_le_bytes());
        header[12..20].copy_from_slice(&(scheme.bits() as u64).to_le_bytes());
        header[20..24].copy_from_slice(&scheme.k().to_le_bytes());
        header[24..32].copy_from_slice(&scheme.seed().to_le_bytes());
        dev.write_block(0, &header)?;

        Ok(Self {
            dev,
            scheme,
            count,
            entries_per_block,
        })
    }

    /// Reopens a persisted signature file.
    pub fn open(dev: D) -> Result<Self> {
        let mut header = ir2_storage::zeroed_block();
        dev.read_block(0, &mut header)?;
        if &header[..4] != MAGIC {
            return Err(StorageError::Corrupt("bad signature-file magic".into()));
        }
        let count = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
        let bits = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes")) as usize;
        let k = u32::from_le_bytes(header[20..24].try_into().expect("4 bytes"));
        let seed = u64::from_le_bytes(header[24..32].try_into().expect("8 bytes"));
        let scheme = SignatureScheme::new(bits, k, seed);
        let entries_per_block = ir2_storage::BLOCK_SIZE / (8 + scheme.byte_len());
        Ok(Self {
            dev,
            scheme,
            count,
            entries_per_block,
        })
    }

    /// Number of indexed objects.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// True if no objects are indexed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Total footprint in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.dev.size_bytes()
    }

    /// The underlying device (for I/O statistics).
    pub fn device(&self) -> &D {
        &self.dev
    }

    /// Scans every signature, invoking `f(ptr)` for each entry whose
    /// signature contains `query` — the classic SSF probe. Pure sequential
    /// I/O over `ceil(n / entries_per_block)` blocks.
    pub fn scan_matches(&self, query: &Signature, mut f: impl FnMut(ObjPtr)) -> Result<u64> {
        let entry_len = 8 + self.scheme.byte_len();
        let nblocks = (self.count as usize).div_ceil(self.entries_per_block) as u32;
        if nblocks == 0 {
            return Ok(0);
        }
        let mut scanned = 0u64;
        let mut block = ir2_storage::zeroed_block();
        for b in 0..nblocks as u64 {
            self.dev.read_block(HEADER_BLOCKS + b, &mut block)?;
            for e in 0..self.entries_per_block {
                if scanned == self.count {
                    break;
                }
                scanned += 1;
                let off = e * entry_len;
                // Zero-copy containment straight against the page-resident
                // bytes — no per-signature heap decode. `payload_contains`
                // falls back to decode-then-contains under the scalar
                // kernel guard, which the differential fuzzer uses to pin
                // both paths to identical answers.
                if payload_contains(&block[off + 8..off + entry_len], query) {
                    let ptr = u64::from_le_bytes(block[off..off + 8].try_into().expect("8 bytes"));
                    f(ObjPtr(ptr));
                }
            }
        }
        Ok(scanned)
    }

    /// Answers a distance-first top-k spatial keyword query: scan all
    /// signatures, verify matching candidates, keep the k nearest.
    pub fn topk<S: ObjectSource<2> + ?Sized>(
        &self,
        objects: &S,
        query: &DistanceFirstQuery<2>,
    ) -> Result<(Vec<(SpatialObject<2>, f64)>, SsfCounters)>
    where
        D: BlockDevice,
    {
        let mut counters = SsfCounters::default();
        if query.k == 0 {
            return Ok((Vec::new(), counters));
        }
        let qsig = self
            .scheme
            .sign_terms(query.keywords.iter().map(String::as_str));
        let mut candidates = Vec::new();
        counters.signatures_scanned = self.scan_matches(&qsig, |ptr| candidates.push(ptr))?;

        let mut heap: BinaryHeap<(OrderedF64, u64)> = BinaryHeap::with_capacity(query.k + 1);
        let mut kept: std::collections::HashMap<u64, SpatialObject<2>> =
            std::collections::HashMap::new();
        for ptr in candidates {
            counters.candidates_checked += 1;
            let obj = objects.load(ptr)?;
            if !obj.token_set().contains_all(&query.keywords) {
                counters.false_positives += 1;
                continue;
            }
            let d = obj.point.distance(&query.point);
            // The bounded max-heap is keyed by the canonical `(distance,
            // id)` order every engine shares; keying by record pointer
            // made the choice of tied tail diverge from the tree engines
            // under equal-distance clusters at the k boundary.
            let id = obj.id;
            kept.insert(id, obj);
            heap.push((OrderedF64(d), id));
            if heap.len() > query.k {
                if let Some((_, evicted)) = heap.pop() {
                    kept.remove(&evicted);
                }
            }
        }
        let mut picked: Vec<(OrderedF64, u64)> = heap.into_vec();
        picked.sort_by_key(|&(d, id)| (d, id));
        let out = picked
            .into_iter()
            .map(|(d, id)| (kept.remove(&id).expect("kept candidate"), d.0))
            .collect();
        Ok((out, counters))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir2_model::ObjectStore;
    use ir2_storage::{MemDevice, TrackedDevice};
    use ir2_text::tokenize;
    use std::sync::Arc;

    fn fixture(
        n: u64,
    ) -> (
        Arc<ObjectStore<2, MemDevice>>,
        SignatureFile<TrackedDevice<MemDevice>>,
        Vec<SpatialObject<2>>,
    ) {
        let themes = ["cafe wifi", "grill diner", "cafe books", "bar pool"];
        let store = Arc::new(ObjectStore::<2, _>::create(MemDevice::new()));
        let mut objs = Vec::new();
        let mut items: Vec<(ObjPtr, Vec<String>)> = Vec::new();
        for i in 0..n {
            let obj = SpatialObject::new(
                i,
                [(i % 13) as f64, (i / 13) as f64],
                themes[i as usize % themes.len()],
            );
            let ptr = store.append(&obj).unwrap();
            let mut terms: Vec<String> = tokenize(&obj.text).collect();
            terms.sort_unstable();
            terms.dedup();
            items.push((ptr, terms));
            objs.push(obj);
        }
        store.flush().unwrap();
        let ssf = SignatureFile::build(
            TrackedDevice::new(MemDevice::new()),
            SignatureScheme::from_bytes_len(8, 3, 2),
            items.iter().map(|(p, t)| (*p, t.as_slice())),
        )
        .unwrap();
        (store, ssf, objs)
    }

    #[test]
    fn topk_matches_brute_force() {
        let (store, ssf, objs) = fixture(500);
        for (kw, k) in [
            (vec!["cafe"], 7),
            (vec!["cafe", "wifi"], 3),
            (vec!["pool"], 100),
        ] {
            let q = DistanceFirstQuery::new([5.0, 5.0], &kw, k);
            let (got, counters) = ssf.topk(store.as_ref(), &q).unwrap();
            let mut want: Vec<(u64, f64)> = objs
                .iter()
                .filter(|o| o.token_set().contains_all(&q.keywords))
                .map(|o| (o.id, o.point.distance(&q.point)))
                .collect();
            want.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            want.truncate(k);
            assert_eq!(got.len(), want.len(), "{kw:?}");
            for ((_, d), (_, wd)) in got.iter().zip(want.iter()) {
                assert!((d - wd).abs() < 1e-9);
            }
            assert_eq!(
                counters.signatures_scanned, 500,
                "SSF always scans everything"
            );
        }
    }

    #[test]
    fn scan_is_sequential_io() {
        let (_, ssf, _) = fixture(3000);
        let stats = ssf.device().stats();
        stats.reset();
        let q = ssf.scheme.sign_term("cafe");
        ssf.scan_matches(&q, |_| {}).unwrap();
        let s = stats.snapshot();
        assert_eq!(s.random_reads, 1, "one seek to the start of the file");
        assert!(s.seq_reads > 5, "the rest streams sequentially");
    }

    #[test]
    fn reopen_preserves_everything() {
        let themes = ["solo cafe"];
        let dev = Arc::new(MemDevice::new());
        let store = Arc::new(ObjectStore::<2, _>::create(MemDevice::new()));
        let obj = SpatialObject::new(1, [1.0, 1.0], themes[0]);
        let ptr = store.append(&obj).unwrap();
        store.flush().unwrap();
        let terms: Vec<String> = tokenize(themes[0]).collect();
        {
            SignatureFile::build(
                Arc::clone(&dev),
                SignatureScheme::from_bytes_len(4, 2, 7),
                [(ptr, terms.as_slice())],
            )
            .unwrap();
        }
        let ssf = SignatureFile::open(Arc::clone(&dev)).unwrap();
        assert_eq!(ssf.len(), 1);
        let q = DistanceFirstQuery::new([0.0, 0.0], &["cafe"], 5);
        let (got, _) = ssf.topk(store.as_ref(), &q).unwrap();
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn empty_and_oversized_signature() {
        let ssf = SignatureFile::build(
            MemDevice::new(),
            SignatureScheme::from_bytes_len(4, 2, 7),
            std::iter::empty::<(ObjPtr, &[String])>(),
        )
        .unwrap();
        assert!(ssf.is_empty());
        let q = ssf.scheme.sign_term("anything");
        assert_eq!(ssf.scan_matches(&q, |_| {}).unwrap(), 0);

        // A signature longer than a block cannot be block-packed.
        assert!(SignatureFile::build(
            MemDevice::new(),
            SignatureScheme::from_bytes_len(5000, 2, 7),
            std::iter::empty::<(ObjPtr, &[String])>(),
        )
        .is_err());
    }

    #[test]
    fn no_false_negatives_ever() {
        let (store, ssf, objs) = fixture(200);
        let q = DistanceFirstQuery::new([0.0, 0.0], &["books"], 1000);
        let (got, _) = ssf.topk(store.as_ref(), &q).unwrap();
        let want = objs
            .iter()
            .filter(|o| o.token_set().contains("books"))
            .count();
        assert_eq!(got.len(), want);
    }
}
