#![warn(missing_docs)]
//! The Sequential Signature File (SSF) — the ancestor of the IR²-Tree's
//! text filter, as a standalone baseline.
//!
//! Faloutsos and Christodoulakis [FC84] introduced signature files as a
//! *sequential* access method: all document signatures are stored back to
//! back; a query scans every signature (pure sequential I/O, a fraction of
//! the documents' size), collects the documents whose signatures contain
//! the query signature, and verifies those candidates against the actual
//! text (random I/O).
//!
//! The IR²-Tree is what you get when these signatures are *superimposed up
//! an R-Tree* instead of scanned linearly. Keeping the flat variant around
//! makes the lineage measurable: the SSF touches `O(n)` sequential blocks
//! per query regardless of selectivity or spatial locality, while the tree
//! reads a logarithmic frontier — but the SSF's accesses are all
//! sequential, which a spinning disk forgives. The spatial keyword variant
//! here ([`SignatureFile::topk`]) verifies candidates, computes distances,
//! and returns the k nearest — a third baseline alongside the paper's
//! R-Tree and IIO.

mod ssf;

pub use ssf::{SignatureFile, SsfCounters};
