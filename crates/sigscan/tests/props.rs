//! Property tests: the sequential signature file against brute force.

use std::sync::Arc;

use ir2_model::{DistanceFirstQuery, ObjPtr, ObjectStore, SpatialObject};
use ir2_sigfile::SignatureScheme;
use ir2_sigscan::SignatureFile;
use ir2_storage::MemDevice;
use ir2_text::tokenize;
use proptest::prelude::*;

const WORDS: [&str; 8] = [
    "cafe", "wifi", "pool", "grill", "books", "bar", "spa", "gym",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SSF top-k equals brute force for any corpus, query, and signature
    /// length — the scan plus verify never loses or invents a result.
    #[test]
    fn ssf_topk_equals_brute_force(
        docs in prop::collection::vec(
            (prop::array::uniform2(-40.0f64..40.0), prop::collection::vec(0..WORDS.len(), 0..4)),
            1..70,
        ),
        qpoint in prop::array::uniform2(-50.0f64..50.0),
        kw in prop::collection::vec(0..WORDS.len(), 0..3),
        k in 1usize..10,
        sig_bytes in 1usize..6,
        seed in 0u64..500,
    ) {
        let store = Arc::new(ObjectStore::<2, _>::create(MemDevice::new()));
        let mut objs = Vec::new();
        let mut items: Vec<(ObjPtr, Vec<String>)> = Vec::new();
        for (i, (p, words)) in docs.iter().enumerate() {
            let text = words.iter().map(|&w| WORDS[w]).collect::<Vec<_>>().join(" ");
            let obj = SpatialObject::new(i as u64, *p, text);
            let ptr = store.append(&obj).unwrap();
            let mut terms: Vec<String> = tokenize(&obj.text).collect();
            terms.sort_unstable();
            terms.dedup();
            items.push((ptr, terms));
            objs.push(obj);
        }
        store.flush().unwrap();
        let ssf = SignatureFile::build(
            MemDevice::new(),
            SignatureScheme::from_bytes_len(sig_bytes, 3, seed),
            items.iter().map(|(p, t)| (*p, t.as_slice())),
        )
        .unwrap();

        let kws: Vec<&str> = kw.iter().map(|&i| WORDS[i]).collect();
        let q = DistanceFirstQuery::new(qpoint, &kws, k);
        let (got, counters) = ssf.topk(store.as_ref(), &q).unwrap();
        prop_assert_eq!(counters.signatures_scanned, docs.len() as u64);

        let mut want: Vec<(u64, f64)> = objs
            .iter()
            .filter(|o| o.token_set().contains_all(&q.keywords))
            .map(|o| (o.id, o.point.distance(&q.point)))
            .collect();
        want.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        want.truncate(k);

        prop_assert_eq!(got.len(), want.len());
        for ((o, d), (_, wd)) in got.iter().zip(want.iter()) {
            prop_assert!((d - wd).abs() < 1e-9);
            prop_assert!(o.token_set().contains_all(&q.keywords));
        }
    }
}
