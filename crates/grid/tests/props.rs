//! Property tests: the grid baseline against brute force — ring expansion
//! plus signature pruning must never miss a result.

use std::sync::Arc;

use ir2_grid::{GridConfig, GridIndex};
use ir2_model::{DistanceFirstQuery, ObjectStore, SpatialObject};
use ir2_sigfile::SignatureScheme;
use ir2_storage::MemDevice;
use ir2_text::tokenize;
use proptest::prelude::*;

const WORDS: [&str; 8] = [
    "cafe", "wifi", "pool", "grill", "books", "bar", "spa", "gym",
];

#[derive(Debug, Clone)]
struct Doc {
    point: [f64; 2],
    words: Vec<usize>,
}

fn arb_docs() -> impl Strategy<Value = Vec<Doc>> {
    prop::collection::vec(
        (
            prop::array::uniform2(-30.0f64..30.0),
            prop::collection::vec(0..WORDS.len(), 0..4),
        )
            .prop_map(|(point, words)| Doc { point, words }),
        1..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn grid_topk_equals_brute_force(
        docs in arb_docs(),
        qpoint in prop::array::uniform2(-40.0f64..40.0),
        kw in prop::collection::vec(0..WORDS.len(), 0..3),
        k in 1usize..12,
        cells in 1usize..12,
        sig_bytes in 1usize..5,
    ) {
        let store = Arc::new(ObjectStore::<2, _>::create(MemDevice::new()));
        let mut items = Vec::new();
        let mut objs = Vec::new();
        for (i, d) in docs.iter().enumerate() {
            let text = d.words.iter().map(|&w| WORDS[w]).collect::<Vec<_>>().join(" ");
            let obj = SpatialObject::new(i as u64, d.point, text);
            let ptr = store.append(&obj).unwrap();
            let mut terms: Vec<String> = tokenize(&obj.text).collect();
            terms.sort_unstable();
            terms.dedup();
            items.push((ptr, obj.point, terms));
            objs.push(obj);
        }
        store.flush().unwrap();
        let grid = GridIndex::build(
            MemDevice::new(),
            GridConfig {
                cells_per_axis: cells,
                scheme: SignatureScheme::from_bytes_len(sig_bytes, 3, 11),
            },
            &items,
        )
        .unwrap();

        let kws: Vec<&str> = kw.iter().map(|&i| WORDS[i]).collect();
        let q = DistanceFirstQuery::new(qpoint, &kws, k);
        let (got, _) = grid.topk(store.as_ref(), &q).unwrap();

        let mut want: Vec<(u64, f64)> = objs
            .iter()
            .filter(|o| o.token_set().contains_all(&q.keywords))
            .map(|o| (o.id, o.point.distance(&q.point)))
            .collect();
        want.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        want.truncate(k);

        prop_assert_eq!(got.len(), want.len());
        for ((o, d), (_, wd)) in got.iter().zip(want.iter()) {
            prop_assert!((d - wd).abs() < 1e-9, "{} vs {}", d, wd);
            prop_assert!(o.token_set().contains_all(&q.keywords));
        }
    }
}
