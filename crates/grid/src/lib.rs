#![warn(missing_docs)]
//! Grid-based spatio-textual index — the related-work baseline.
//!
//! The paper's related-work section discusses Vaid et al. [VJJS05], who
//! answer spatial keyword queries with "a grid-based distribution of the
//! spatial objects" combined with a text index, and contrasts that family
//! with the IR²-Tree's single integrated structure. This crate implements
//! that style of index so the contrast is measurable (ablation A4 in
//! `DESIGN.md`):
//!
//! * the plane is cut into a uniform `G × G` grid over the data's bounding
//!   box; each occupied cell stores its objects (pointer + location) in
//!   one disk record;
//! * each cell additionally carries a **signature** superimposing its
//!   objects' terms — the same superimposed coding the IR²-Tree uses, so
//!   the comparison isolates the *structure* (adaptive hierarchy vs flat
//!   grid), not the filter;
//! * a top-k query expands outward from the query point cell ring by
//!   ring, skipping cells whose signature lacks the query keywords,
//!   verifying candidates against their text, and stopping once the next
//!   ring cannot contain anything closer than the current k-th result.
//!
//! The known weakness this exposes (and the reason the paper's tree
//! wins): a uniform grid cannot adapt to skew — city-center cells
//! overflow while rural cells sit empty, and cell signatures over big
//! cells saturate.

mod index;

pub use index::{GridConfig, GridIndex, GridQueryCounters};
