//! The uniform grid index.

use std::collections::BinaryHeap;

use ir2_geo::{OrderedF64, Point, Rect};
use ir2_model::{DistanceFirstQuery, ObjPtr, ObjectSource, SpatialObject};
use ir2_sigfile::{kernel_contains, Signature, SignatureScheme};
use ir2_storage::{BlockDevice, RecordFile, RecordPtr, Result, StorageError};

/// Grid shape parameters.
#[derive(Debug, Clone, Copy)]
pub struct GridConfig {
    /// Cells per axis (`G`); the grid has `G²` cells.
    pub cells_per_axis: usize,
    /// Signature scheme for cell summaries (use the IR²-Tree's scheme for
    /// apples-to-apples ablations).
    pub scheme: SignatureScheme,
}

impl GridConfig {
    /// Picks `G` so the average occupied cell holds roughly
    /// `target_per_cell` objects under a uniform distribution.
    pub fn for_objects(n: usize, target_per_cell: usize, scheme: SignatureScheme) -> Self {
        let cells = (n as f64 / target_per_cell.max(1) as f64).max(1.0);
        Self {
            cells_per_axis: (cells.sqrt().ceil() as usize).max(1),
            scheme,
        }
    }
}

/// Traversal counters of one grid query.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GridQueryCounters {
    /// Cells whose records were read.
    pub cells_read: u64,
    /// Cells skipped by their signature.
    pub cells_pruned: u64,
    /// Candidate objects loaded and verified.
    pub candidates_checked: u64,
    /// Candidates that failed verification (signature false positives).
    pub false_positives: u64,
}

struct Cell {
    record: RecordPtr,
    len: u32,
    sig: Signature,
}

/// A disk-resident uniform grid with per-cell signatures.
///
/// Two-dimensional (the grid family of the related work is; the IR²-Tree
/// in this workspace is `N`-dimensional).
pub struct GridIndex<D> {
    records: RecordFile<D>,
    cfg: GridConfig,
    bbox: Rect<2>,
    /// Row-major `G × G`; `None` for empty cells.
    cells: Vec<Option<Cell>>,
    sig_bytes_total: u64,
}

/// Bytes per object entry inside a cell record: pointer + point.
const ENTRY_LEN: usize = 8 + 16;

impl<D: BlockDevice> GridIndex<D> {
    /// Builds the grid over `(pointer, location, distinct terms)` items.
    ///
    /// Returns an error for an empty collection (a grid needs a bounding
    /// box).
    pub fn build(
        dev: D,
        cfg: GridConfig,
        items: &[(ObjPtr, Point<2>, Vec<String>)],
    ) -> Result<Self> {
        if items.is_empty() {
            return Err(StorageError::Corrupt(
                "cannot grid an empty collection".into(),
            ));
        }
        let mut bbox = Rect::from_point(items[0].1);
        for (_, p, _) in items {
            bbox.union_in_place(&Rect::from_point(*p));
        }
        let g = cfg.cells_per_axis;
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); g * g];
        for (i, (_, p, _)) in items.iter().enumerate() {
            buckets[cell_of(&bbox, g, p)].push(i);
        }

        let records = RecordFile::create(dev);
        let mut cells = Vec::with_capacity(g * g);
        let mut sig_bytes_total = 0u64;
        for bucket in &buckets {
            if bucket.is_empty() {
                cells.push(None);
                continue;
            }
            let mut sig = cfg.scheme.empty();
            let mut rec = Vec::with_capacity(bucket.len() * ENTRY_LEN);
            for &i in bucket {
                let (ptr, p, terms) = &items[i];
                rec.extend_from_slice(&ptr.to_le_bytes());
                let mut pb = [0u8; 16];
                p.encode(&mut pb);
                rec.extend_from_slice(&pb);
                sig.or_assign(&cfg.scheme.sign_terms(terms.iter().map(String::as_str)));
            }
            let record = records.append(&rec)?;
            sig_bytes_total += sig.byte_len() as u64;
            cells.push(Some(Cell {
                record,
                len: bucket.len() as u32,
                sig,
            }));
        }
        records.flush()?;
        Ok(Self {
            records,
            cfg,
            bbox,
            cells,
            sig_bytes_total,
        })
    }

    /// Total footprint: cell records plus the in-memory directory
    /// (signatures + cell table), for size comparisons.
    pub fn size_bytes(&self) -> u64 {
        self.records.device().size_bytes() + self.sig_bytes_total + (self.cells.len() * 16) as u64
    }

    /// The grid's device (for I/O statistics).
    pub fn device(&self) -> &D {
        self.records.device()
    }

    /// Answers a distance-first top-k spatial keyword query by ring
    /// expansion with signature pruning.
    pub fn topk<S: ObjectSource<2> + ?Sized>(
        &self,
        objects: &S,
        query: &DistanceFirstQuery<2>,
    ) -> Result<(Vec<(SpatialObject<2>, f64)>, GridQueryCounters)> {
        let mut counters = GridQueryCounters::default();
        let mut out: Vec<(SpatialObject<2>, f64)> = Vec::with_capacity(query.k);
        if query.k == 0 {
            return Ok((out, counters));
        }
        let qsig = self
            .cfg
            .scheme
            .sign_terms(query.keywords.iter().map(String::as_str));
        let g = self.cfg.cells_per_axis as isize;
        let (qcx, qcy) = cell_coords(&self.bbox, self.cfg.cells_per_axis, &query.point);

        // Candidates verified so far, as a max-heap of size k keyed by the
        // canonical `(distance, id)` order every engine shares — keying by
        // record pointer instead made the *choice* of tied tail diverge
        // from the tree engines whenever an equal-distance cluster
        // straddled the k boundary (append order is not id order).
        let mut heap: BinaryHeap<(OrderedF64, u64)> = BinaryHeap::new();
        let mut kept: std::collections::HashMap<u64, SpatialObject<2>> =
            std::collections::HashMap::new();

        let mut ring = 0isize;
        loop {
            // Termination: once k results are held and even the nearest
            // point of the next ring is farther than the k-th best, no
            // closer result can exist.
            // (`k == 0` returns above; still, never assume a full heap is
            // non-empty — peek instead of expecting.)
            if heap.len() >= query.k {
                if let Some(&(OrderedF64(kth), _)) = heap.peek() {
                    if ring > 0 && self.ring_min_dist(qcx, qcy, ring, &query.point) > kth {
                        break;
                    }
                }
            }
            let mut any_cell_in_range = false;
            for (cx, cy) in ring_cells(qcx, qcy, ring) {
                if cx < 0 || cy < 0 || cx >= g || cy >= g {
                    continue;
                }
                any_cell_in_range = true;
                let idx = (cy * g + cx) as usize;
                let Some(cell) = &self.cells[idx] else {
                    continue;
                };
                if !kernel_contains(&cell.sig, &qsig) {
                    counters.cells_pruned += 1;
                    continue;
                }
                counters.cells_read += 1;
                let bytes = self.records.get(cell.record)?;
                if bytes.len() != cell.len as usize * ENTRY_LEN {
                    return Err(StorageError::Corrupt("grid cell record length".into()));
                }
                for entry in bytes.chunks_exact(ENTRY_LEN) {
                    let ptr = u64::from_le_bytes(entry[..8].try_into().expect("8 bytes"));
                    let p = Point::<2>::decode(&entry[8..24]);
                    let d = p.distance(&query.point);
                    // Candidate only if it could enter the top-k.
                    if heap.len() >= query.k
                        && heap.peek().is_some_and(|&(OrderedF64(kth), _)| d > kth)
                    {
                        continue;
                    }
                    counters.candidates_checked += 1;
                    let obj = objects.load(ObjPtr(ptr))?;
                    if !obj.token_set().contains_all(&query.keywords) {
                        counters.false_positives += 1;
                        continue;
                    }
                    let id = obj.id;
                    kept.insert(id, obj);
                    heap.push((OrderedF64(d), id));
                    if heap.len() > query.k {
                        if let Some((_, evicted)) = heap.pop() {
                            kept.remove(&evicted);
                        }
                    }
                }
            }
            if !any_cell_in_range && ring > g {
                break; // the ring left the grid entirely
            }
            ring += 1;
        }

        let mut picked: Vec<(OrderedF64, u64)> = heap.into_vec();
        picked.sort_by_key(|&(d, id)| (d, id));
        for (d, id) in picked {
            out.push((kept.remove(&id).expect("kept candidate"), d.0));
        }
        Ok((out, counters))
    }

    /// Conservative lower bound on the distance from the query point to
    /// anything in a cell at Chebyshev ring `ring` or beyond: the query
    /// point lies somewhere in its own cell, so at least `ring − 1`
    /// complete cells separate it from ring-`ring` cells along some axis.
    /// A lower bound may be loose (costing extra ring scans) but must
    /// never overestimate, or results would be missed.
    fn ring_min_dist(&self, _qcx: isize, _qcy: isize, ring: isize, _q: &Point<2>) -> f64 {
        let g = self.cfg.cells_per_axis as f64;
        let w = (self.bbox.hi().coord(0) - self.bbox.lo().coord(0)).max(f64::MIN_POSITIVE) / g;
        let h = (self.bbox.hi().coord(1) - self.bbox.lo().coord(1)).max(f64::MIN_POSITIVE) / g;
        ((ring - 1).max(0)) as f64 * w.min(h)
    }
}

/// Cell coordinates of a point (clamped into the grid).
fn cell_coords(bbox: &Rect<2>, g: usize, p: &Point<2>) -> (isize, isize) {
    let fx = (p.coord(0) - bbox.lo().coord(0))
        / (bbox.hi().coord(0) - bbox.lo().coord(0)).max(f64::MIN_POSITIVE);
    let fy = (p.coord(1) - bbox.lo().coord(1))
        / (bbox.hi().coord(1) - bbox.lo().coord(1)).max(f64::MIN_POSITIVE);
    let cx = ((fx * g as f64) as isize).clamp(0, g as isize - 1);
    let cy = ((fy * g as f64) as isize).clamp(0, g as isize - 1);
    (cx, cy)
}

fn cell_of(bbox: &Rect<2>, g: usize, p: &Point<2>) -> usize {
    let (cx, cy) = cell_coords(bbox, g, p);
    (cy * g as isize + cx) as usize
}

/// The cells of the square ring at Chebyshev radius `ring` around
/// `(cx, cy)` (radius 0 = the cell itself).
fn ring_cells(cx: isize, cy: isize, ring: isize) -> Vec<(isize, isize)> {
    if ring == 0 {
        return vec![(cx, cy)];
    }
    let mut out = Vec::with_capacity((8 * ring) as usize);
    for dx in -ring..=ring {
        out.push((cx + dx, cy - ring));
        out.push((cx + dx, cy + ring));
    }
    for dy in (-ring + 1)..ring {
        out.push((cx - ring, cy + dy));
        out.push((cx + ring, cy + dy));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir2_model::ObjectStore;
    use ir2_storage::MemDevice;
    use ir2_text::tokenize;
    use std::sync::Arc;

    fn build_fixture(
        n: u64,
    ) -> (
        Arc<ObjectStore<2, MemDevice>>,
        GridIndex<MemDevice>,
        Vec<SpatialObject<2>>,
    ) {
        let themes = ["cafe wifi", "diner grill", "cafe books", "bar snooker"];
        let store = Arc::new(ObjectStore::<2, _>::create(MemDevice::new()));
        let mut objs = Vec::new();
        let mut items = Vec::new();
        for i in 0..n {
            let obj = SpatialObject::new(
                i,
                [((i * 37) % 100) as f64, ((i * 61) % 100) as f64],
                themes[i as usize % themes.len()],
            );
            let ptr = store.append(&obj).unwrap();
            let mut terms: Vec<String> = tokenize(&obj.text).collect();
            terms.sort_unstable();
            terms.dedup();
            items.push((ptr, obj.point, terms));
            objs.push(obj);
        }
        store.flush().unwrap();
        let cfg = GridConfig::for_objects(n as usize, 8, SignatureScheme::from_bytes_len(8, 3, 3));
        let grid = GridIndex::build(MemDevice::new(), cfg, &items).unwrap();
        (store, grid, objs)
    }

    fn brute(objs: &[SpatialObject<2>], q: &DistanceFirstQuery<2>) -> Vec<(u64, f64)> {
        let mut v: Vec<(u64, f64)> = objs
            .iter()
            .filter(|o| o.token_set().contains_all(&q.keywords))
            .map(|o| (o.id, o.point.distance(&q.point)))
            .collect();
        v.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        v.truncate(q.k);
        v
    }

    #[test]
    fn grid_topk_matches_brute_force() {
        let (store, grid, objs) = build_fixture(300);
        for (point, kw, k) in [
            ([50.0, 50.0], vec!["cafe"], 10),
            ([0.0, 0.0], vec!["cafe", "wifi"], 5),
            ([99.0, 1.0], vec!["snooker"], 7),
            ([30.0, 70.0], vec!["grill"], 1),
        ] {
            let q = DistanceFirstQuery::new(point, &kw, k);
            let (got, _) = grid.topk(store.as_ref(), &q).unwrap();
            let want = brute(&objs, &q);
            assert_eq!(got.len(), want.len(), "{kw:?}");
            for ((o, d), (_, wd)) in got.iter().zip(want.iter()) {
                assert!((d - wd).abs() < 1e-9, "{kw:?}: {d} vs {wd}");
                assert!(o.token_set().contains_all(&kw));
            }
        }
    }

    #[test]
    fn absent_keyword_and_k_zero() {
        let (store, grid, _) = build_fixture(100);
        let q = DistanceFirstQuery::new([10.0, 10.0], &["nonexistent"], 5);
        let (got, counters) = grid.topk(store.as_ref(), &q).unwrap();
        assert!(got.is_empty());
        assert!(
            counters.cells_pruned > 0,
            "signatures must prune empty-match cells"
        );
        let q0 = DistanceFirstQuery::new([10.0, 10.0], &["cafe"], 0);
        assert!(grid.topk(store.as_ref(), &q0).unwrap().0.is_empty());
    }

    #[test]
    fn k_exceeding_matches_returns_all_matches() {
        let (store, grid, objs) = build_fixture(120);
        let q = DistanceFirstQuery::new([50.0, 50.0], &["books"], 1000);
        let (got, _) = grid.topk(store.as_ref(), &q).unwrap();
        let want = objs
            .iter()
            .filter(|o| o.token_set().contains("books"))
            .count();
        assert_eq!(got.len(), want);
    }

    #[test]
    fn signature_pruning_counts_cells() {
        let (store, grid, _) = build_fixture(400);
        let q = DistanceFirstQuery::new([50.0, 50.0], &["snooker"], 5);
        let (_, counters) = grid.topk(store.as_ref(), &q).unwrap();
        assert!(counters.cells_read > 0);
        assert!(counters.candidates_checked >= 5);
    }

    #[test]
    fn empty_build_rejected_and_single_object() {
        assert!(GridIndex::build(
            MemDevice::new(),
            GridConfig::for_objects(0, 8, SignatureScheme::from_bytes_len(4, 2, 1)),
            &[],
        )
        .is_err());

        let store = Arc::new(ObjectStore::<2, _>::create(MemDevice::new()));
        let obj = SpatialObject::new(1, [5.0, 5.0], "solo cafe");
        let ptr = store.append(&obj).unwrap();
        store.flush().unwrap();
        let grid = GridIndex::build(
            MemDevice::new(),
            GridConfig::for_objects(1, 8, SignatureScheme::from_bytes_len(4, 2, 1)),
            &[(ptr, obj.point, vec!["solo".into(), "cafe".into()])],
        )
        .unwrap();
        let q = DistanceFirstQuery::new([0.0, 0.0], &["cafe"], 3);
        let (got, _) = grid.topk(store.as_ref(), &q).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0.id, 1);
    }
}
