//! Property tests pinning the batched containment kernels to the per-entry
//! scalar reference (`Signature::contains`) — including bit lengths not
//! divisible by 64 (tail-word masking) and empty/zero-bit signatures.

use ir2_sigfile::{
    bytes_contain, kernel_contains, EntryMask, ScalarKernelGuard, Signature, SignatureBlock,
    SignatureScheme,
};
use proptest::prelude::*;

/// Bit lengths chosen to straddle word boundaries: zero, sub-word, exact
/// words, and off-by-one around 64/128, plus the paper's 8 B (64-bit) and
/// 189 B (1512-bit) operating points.
fn arb_bits() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(0usize),
        Just(1usize),
        Just(7usize),
        Just(63usize),
        Just(64usize),
        Just(65usize),
        Just(100usize),
        Just(127usize),
        Just(128usize),
        Just(129usize),
        Just(1512usize),
        1usize..300,
    ]
}

proptest! {
    #[test]
    fn matches_mask_equals_scalar_contains(
        bits in arb_bits(),
        n in 0usize..80,
        seed in 0u64..u64::MAX,
        qterms in proptest::collection::vec("[a-z]{1,6}", 0..4),
    ) {
        let sigs: Vec<Signature> = (0..n)
            .map(|i| {
                // Derive per-entry signatures deterministically from the seed.
                let mut s = Signature::zero(bits);
                if bits > 0 {
                    let mut x = seed.wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15);
                    for _ in 0..(x % 9) {
                        x ^= x >> 27;
                        x = x.wrapping_mul(0x94D049BB133111EB);
                        s.set((x % bits as u64) as usize);
                    }
                }
                s
            })
            .collect();
        let block = SignatureBlock::from_signatures(bits, sigs.iter());
        prop_assert_eq!(block.len(), sigs.len());

        let query = if bits == 0 {
            Signature::zero(0)
        } else {
            let scheme = SignatureScheme::new(bits, 2, seed ^ 0xABCD);
            scheme.sign_terms(qterms.iter().map(String::as_str))
        };

        let mut mask = EntryMask::new();
        block.matches_mask_into(&query, &mut mask);
        prop_assert_eq!(mask.len(), sigs.len());
        for (i, s) in sigs.iter().enumerate() {
            prop_assert_eq!(mask.get(i), s.contains(&query), "entry {} bits {}", i, bits);
        }
        // The ones() iterator agrees with get().
        let from_iter: Vec<usize> = mask.ones().collect();
        let from_get: Vec<usize> = (0..mask.len()).filter(|&i| mask.get(i)).collect();
        prop_assert_eq!(from_iter, from_get);
        prop_assert_eq!(mask.count_ones(), sigs.iter().filter(|s| s.contains(&query)).count());

        // Forcing the scalar path never changes a verdict.
        let _g = ScalarKernelGuard::new();
        let slow = block.matches_mask(&query);
        for i in 0..block.len() {
            prop_assert_eq!(mask.get(i), slow.get(i));
        }
    }

    #[test]
    fn block_roundtrip_through_payload_bytes(
        bits in arb_bits(),
        n in 0usize..40,
        seed in 0u64..u64::MAX,
    ) {
        let sigs: Vec<Signature> = (0..n)
            .map(|i| {
                let mut s = Signature::zero(bits);
                if bits > 0 {
                    let mut x = seed ^ (i as u64).wrapping_mul(0xD6E8FEB86659FD93);
                    for _ in 0..((x >> 60) % 7) {
                        x = x.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(1);
                        s.set((x % bits as u64) as usize);
                    }
                }
                s
            })
            .collect();
        let payloads: Vec<Vec<u8>> = sigs
            .iter()
            .map(|s| {
                let mut b = vec![0u8; s.byte_len()];
                s.write_bytes(&mut b);
                b
            })
            .collect();
        let block = SignatureBlock::from_payloads(bits, payloads.iter().map(Vec::as_slice));
        for (i, s) in sigs.iter().enumerate() {
            prop_assert_eq!(&block.signature_at(i), s);
            prop_assert_eq!(block.count_ones_at(i), s.count_ones());
        }
        // superimpose_all == fold of or_assign.
        let mut want = Signature::zero(bits);
        for s in &sigs {
            want.or_assign(s);
        }
        prop_assert_eq!(block.superimpose_all(), want);
    }

    #[test]
    fn bytes_contain_equals_decode_then_contains(
        bits in arb_bits(),
        s_positions in proptest::collection::vec(0usize..4096, 0..48),
        q_positions in proptest::collection::vec(0usize..4096, 0..8),
    ) {
        let mut sig = Signature::zero(bits);
        let mut q = Signature::zero(bits);
        if bits > 0 {
            for p in s_positions {
                sig.set(p % bits);
            }
            for p in q_positions {
                q.set(p % bits);
            }
        }
        let mut buf = vec![0u8; sig.byte_len()];
        sig.write_bytes(&mut buf);
        let scalar = Signature::from_bytes(bits, &buf).contains(&q);
        prop_assert_eq!(bytes_contain(&buf, &q), scalar);
        prop_assert_eq!(kernel_contains(&sig, &q), scalar);
        let _g = ScalarKernelGuard::new();
        prop_assert_eq!(ir2_sigfile::payload_contains(&buf, &q), scalar);
        prop_assert_eq!(kernel_contains(&sig, &q), scalar);
    }
}
