//! Property tests for the signature-file invariants the IR²-Tree's
//! correctness rests on: no false negatives, monotone superimposition.

use ir2_sigfile::{MultiLevelScheme, Signature, SignatureScheme};
use proptest::prelude::*;

fn arb_terms() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec("[a-z]{1,10}", 0..30)
}

fn arb_scheme() -> impl Strategy<Value = SignatureScheme> {
    (8usize..2048, 1u32..8, any::<u64>())
        .prop_map(|(bits, k, seed)| SignatureScheme::new(bits, k, seed))
}

proptest! {
    /// No false negatives, ever: the signature of a term set contains the
    /// signature of any subset. This is what guarantees the IR²-Tree never
    /// prunes a subtree that holds a real result.
    #[test]
    fn no_false_negatives(scheme in arb_scheme(), terms in arb_terms(), extra in arb_terms()) {
        let all: Vec<&str> = terms.iter().chain(extra.iter()).map(String::as_str).collect();
        let doc = scheme.sign_terms(all.iter().copied());
        let subset = scheme.sign_terms(terms.iter().map(String::as_str));
        prop_assert!(doc.contains(&subset));
        for t in &terms {
            prop_assert!(doc.contains(&scheme.sign_term(t)));
        }
    }

    /// Superimposition is commutative, associative and idempotent — a node
    /// signature is well-defined regardless of insertion order.
    #[test]
    fn superimposition_is_a_semilattice(scheme in arb_scheme(), a in arb_terms(), b in arb_terms()) {
        let sa = scheme.sign_terms(a.iter().map(String::as_str));
        let sb = scheme.sign_terms(b.iter().map(String::as_str));
        let mut ab = sa.clone();
        ab.or_assign(&sb);
        let mut ba = sb.clone();
        ba.or_assign(&sa);
        prop_assert_eq!(&ab, &ba);
        let mut aa = sa.clone();
        aa.or_assign(&sa);
        prop_assert_eq!(&aa, &sa);
        // Signing the concatenation equals OR-ing the parts.
        let joined: Vec<&str> = a.iter().chain(b.iter()).map(String::as_str).collect();
        prop_assert_eq!(&scheme.sign_terms(joined), &ab);
    }

    /// Containment is a partial order consistent with superimposition:
    /// the parent (OR of children) contains each child.
    #[test]
    fn parent_contains_children(scheme in arb_scheme(), docs in prop::collection::vec(arb_terms(), 1..8)) {
        let children: Vec<Signature> = docs
            .iter()
            .map(|d| scheme.sign_terms(d.iter().map(String::as_str)))
            .collect();
        let mut parent = scheme.empty();
        for c in &children {
            parent.or_assign(c);
        }
        for c in &children {
            prop_assert!(parent.contains(c));
        }
    }

    /// Byte serialization round-trips exactly for any bit length.
    #[test]
    fn byte_roundtrip(scheme in arb_scheme(), terms in arb_terms()) {
        let sig = scheme.sign_terms(terms.iter().map(String::as_str));
        let mut buf = vec![0u8; sig.byte_len()];
        sig.write_bytes(&mut buf);
        prop_assert_eq!(Signature::from_bytes(sig.bits(), &buf), sig);
    }

    /// Multi-level schemes preserve the no-false-negative guarantee at every
    /// level (each level is itself a valid scheme).
    #[test]
    fn multilevel_no_false_negatives(terms in prop::collection::vec("[a-z]{1,8}", 1..15),
                                     level in 0u16..10) {
        let ml = MultiLevelScheme::new(4, 3, 11, 8, 5.0, 5000);
        let s = ml.scheme(level);
        let doc = s.sign_terms(terms.iter().map(String::as_str));
        for t in &terms {
            prop_assert!(doc.contains(&s.sign_term(t)));
        }
    }

    /// Positions are always in range and exactly reproducible.
    #[test]
    fn positions_in_range(scheme in arb_scheme(), term in "[a-z]{1,12}") {
        let p1: Vec<usize> = scheme.positions(&term).collect();
        let p2: Vec<usize> = scheme.positions(&term).collect();
        prop_assert_eq!(&p1, &p2);
        prop_assert_eq!(p1.len(), scheme.k() as usize);
        for p in p1 {
            prop_assert!(p < scheme.bits());
        }
    }
}
