#![warn(missing_docs)]
#![cfg_attr(feature = "portable-simd", feature(portable_simd))]
//! Signature files: the superimposed-coding substrate of the IR²-Tree.
//!
//! Faloutsos and Christodoulakis [FC84] introduced *signature files* as a
//! text access method: each word hashes to a fixed number of bit positions
//! in a fixed-length bit vector; a document's signature is the bitwise OR
//! (superimposition) of its words' signatures. A query word *may* occur in
//! a document iff the document signature contains the word's bits — a test
//! with false positives but no false negatives.
//!
//! The IR²-Tree stores such a signature in every tree entry and superimposes
//! children's signatures into parents, so a single containment test can
//! prune an entire subtree during nearest-neighbor traversal.
//!
//! This crate provides:
//!
//! * [`Signature`] — the bit vector with superimposition and containment;
//! * [`SignatureScheme`] — term hashing plus the optimal-length design
//!   rules ([`optimal_bits`], [`optimal_params`], the paper's [MC94]
//!   citation) and the analytic false-positive model
//!   ([`expected_false_positive`]);
//! * [`MultiLevelScheme`] — per-level lengths for the MIR²-Tree
//!   (multi-level superimposed coding [CS89, DR83]);
//! * [`SignatureBlock`] — columnar per-node signature storage with batched,
//!   bit-exact containment kernels ([`SignatureBlock::matches_mask`]) and
//!   zero-copy byte-level tests ([`bytes_contain`]), plus the
//!   [`ScalarKernelGuard`] toggle the differential fuzzer uses to pin
//!   kernel == scalar.

mod block;
mod multilevel;
mod scheme;
mod signature;

pub use block::{
    bytes_contain, force_scalar_kernels, kernel_contains, payload_contains, scalar_kernels_forced,
    EntryMask, ScalarKernelGuard, SignatureBlock,
};
pub use multilevel::MultiLevelScheme;
pub use scheme::{expected_false_positive, optimal_bits, optimal_params, SignatureScheme};
pub use signature::Signature;
