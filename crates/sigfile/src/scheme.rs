//! Superimposed-coding schemes: hashing terms into signatures, and the
//! optimal-signature-length formulas.

use crate::Signature;

/// A superimposed-coding scheme [FC84]: every term sets `k` (pseudo-random,
/// term-determined) bits in a signature of `bits` bits; a document's
/// signature is the OR of its terms' signatures.
///
/// Two schemes are compatible (their signatures comparable) iff `bits`,
/// `k`, and `seed` are all equal. The MIR²-Tree deliberately uses a
/// *different* scheme per tree level — see
/// [`MultiLevelScheme`](crate::MultiLevelScheme).
///
/// ```
/// use ir2_sigfile::SignatureScheme;
///
/// let scheme = SignatureScheme::from_bytes_len(8, 4, 42); // 64 bits, k = 4
/// let doc = scheme.sign_terms(["internet", "pool", "spa"]);
///
/// // No false negatives: every contained term matches.
/// assert!(doc.contains(&scheme.sign_term("pool")));
/// // Absent terms *usually* fail (false positives are possible but rare).
/// let probes = (0..100).filter(|i| doc.contains(&scheme.sign_term(&format!("w{i}")))).count();
/// assert!(probes < 30);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignatureScheme {
    bits: usize,
    k: u32,
    seed: u64,
}

impl SignatureScheme {
    /// Creates a scheme with `bits` signature bits and `k` bits per term.
    ///
    /// # Panics
    /// Panics if `bits` or `k` is zero.
    pub fn new(bits: usize, k: u32, seed: u64) -> Self {
        assert!(bits > 0, "signature length must be positive");
        assert!(k > 0, "bits per term must be positive");
        Self { bits, k, seed }
    }

    /// Convenience constructor from a byte length, as the paper quotes
    /// signature sizes (189 bytes, 8 bytes, …).
    pub fn from_bytes_len(bytes: usize, k: u32, seed: u64) -> Self {
        Self::new(bytes * 8, k, seed)
    }

    /// Signature length in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Signature length in bytes as stored on disk.
    pub fn byte_len(&self) -> usize {
        self.bits.div_ceil(8)
    }

    /// Number of bits each term sets.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Hash seed (lets tests derive independent schemes).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The `k` bit positions of `term`.
    ///
    /// FNV-1a over the term bytes, mixed with the scheme seed, then a
    /// splitmix64 stream — deterministic across runs and platforms.
    ///
    /// Each 64-bit draw is mapped into `[0, bits)` with a widening
    /// multiply (`state · bits >> 64`, Lemire's bounded reduction) rather
    /// than `state % bits`: the modulo favors small positions whenever
    /// `bits` does not divide 2⁶⁴ — and the optimal lengths
    /// (`⌈k·D/ln 2⌉` rounded to bytes) almost never do — while the
    /// multiply's bias is provably ≤ `bits/2⁶⁴` per position and it
    /// avoids a hot-path integer division.
    pub fn positions(&self, term: &str) -> impl Iterator<Item = usize> + '_ {
        let mut state = fnv1a(term.as_bytes()) ^ self.seed;
        (0..self.k).map(move |_| {
            state = splitmix64(state);
            ((state as u128 * self.bits as u128) >> 64) as usize
        })
    }

    /// Signature of a single term.
    pub fn sign_term(&self, term: &str) -> Signature {
        let mut sig = Signature::zero(self.bits);
        for pos in self.positions(term) {
            sig.set(pos);
        }
        sig
    }

    /// Signature of a document given its terms (duplicates are harmless —
    /// superimposition is idempotent).
    pub fn sign_terms<'a>(&self, terms: impl IntoIterator<Item = &'a str>) -> Signature {
        let mut sig = Signature::zero(self.bits);
        for term in terms {
            for pos in self.positions(term) {
                sig.set(pos);
            }
        }
        sig
    }

    /// An empty (all-zero) signature of this scheme's length.
    pub fn empty(&self) -> Signature {
        Signature::zero(self.bits)
    }
}

/// FNV-1a 64-bit hash.
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// splitmix64 mixer — a full-period 64-bit permutation step.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Optimal signature length in **bits** for a block of `distinct_terms`
/// terms with `k` bits per term.
///
/// Superimposed-coding analysis ([FC84], and the design formulas of [MC94]
/// that the paper cites) shows the false-drop probability
/// `(1 − e^(−kD/m))^k` is minimized when half the bits are set, i.e. when
/// `m · ln 2 = k · D`. Hence `m = ⌈k·D / ln 2⌉`.
pub fn optimal_bits(distinct_terms: usize, k: u32) -> usize {
    ((k as f64 * distinct_terms as f64) / std::f64::consts::LN_2).ceil() as usize
}

/// Optimal `(bits, k)` for a target false-positive probability `fp` per
/// single-term probe: at the optimal operating point the false-drop rate is
/// `2^(−k)`, so `k = ⌈log₂(1/fp)⌉` and the length follows [`optimal_bits`].
pub fn optimal_params(distinct_terms: usize, fp: f64) -> (usize, u32) {
    assert!(
        fp > 0.0 && fp < 1.0,
        "false-positive target must be in (0, 1)"
    );
    let k = (1.0 / fp).log2().ceil().max(1.0) as u32;
    (optimal_bits(distinct_terms, k), k)
}

/// Expected false-drop probability of a single-term probe against the
/// signature of a block of `distinct_terms` terms under a scheme of `bits`
/// and `k`: `(1 − e^(−k·D/m))^k`.
pub fn expected_false_positive(bits: usize, k: u32, distinct_terms: usize) -> f64 {
    let fill = 1.0 - (-(k as f64) * distinct_terms as f64 / bits as f64).exp();
    fill.powi(k as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signatures_are_deterministic() {
        let s = SignatureScheme::new(512, 4, 42);
        assert_eq!(s.sign_term("internet"), s.sign_term("internet"));
        assert_ne!(s.sign_term("internet"), s.sign_term("pool"));
    }

    #[test]
    fn seed_changes_the_code() {
        let a = SignatureScheme::new(512, 4, 1);
        let b = SignatureScheme::new(512, 4, 2);
        assert_ne!(a.sign_term("internet"), b.sign_term("internet"));
    }

    #[test]
    fn term_sets_at_most_k_bits() {
        let s = SignatureScheme::new(4096, 5, 7);
        let sig = s.sign_term("keyword");
        assert!(sig.count_ones() <= 5);
        assert!(sig.count_ones() >= 1);
    }

    #[test]
    fn document_signature_contains_each_term() {
        let s = SignatureScheme::new(256, 3, 0);
        let doc = s.sign_terms(["internet", "pool", "spa"]);
        for term in ["internet", "pool", "spa"] {
            assert!(doc.contains(&s.sign_term(term)), "no false negatives");
        }
    }

    #[test]
    fn duplicates_do_not_change_the_signature() {
        let s = SignatureScheme::new(256, 3, 0);
        assert_eq!(s.sign_terms(["pool", "pool", "pool"]), s.sign_term("pool"));
    }

    #[test]
    fn optimal_bits_targets_half_density() {
        // m = kD/ln2  =>  expected fill = 1 - e^{-ln 2} = 0.5.
        let d = 300;
        let k = 4;
        let m = optimal_bits(d, k);
        let fill = 1.0 - (-(k as f64) * d as f64 / m as f64).exp();
        assert!((fill - 0.5).abs() < 0.01);
    }

    #[test]
    fn optimal_params_hits_the_fp_target() {
        let (m, k) = optimal_params(100, 0.01);
        assert_eq!(k, 7); // 2^-7 < 0.01
        let fp = expected_false_positive(m, k, 100);
        assert!(fp <= 0.01, "expected fp {fp} above target");
    }

    #[test]
    fn longer_signatures_reduce_false_positives() {
        let fp_short = expected_false_positive(512, 4, 300);
        let fp_long = expected_false_positive(4096, 4, 300);
        assert!(fp_long < fp_short);
    }

    #[test]
    fn probe_positions_are_uniform_chi_square() {
        // `bits = 189 * 8 = 1512` (the paper's leaf signature length) is
        // not a power of two, so the old `state % bits` mapping was
        // modulo-biased. Pearson's chi-square over all positions drawn
        // for many distinct terms must stay below the critical value.
        let bits = 189 * 8;
        let k = 4;
        let s = SignatureScheme::new(bits, k, 7);
        let mut counts = vec![0u64; bits];
        let terms = 200_000usize;
        for i in 0..terms {
            let term = format!("term{i}");
            for pos in s.positions(&term) {
                counts[pos] += 1;
            }
        }
        let n = (terms as u64 * k as u64) as f64;
        let expected = n / bits as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // For df = 1511, chi2 is ~N(df, 2·df): mean 1511, sd ~55. The
        // 99.99th percentile is ≈ 1720; a biased mapping (e.g. `% bits`
        // over a *32-bit* state, or any systematic skew detectable at
        // 800k draws) lands far beyond it.
        let df = (bits - 1) as f64;
        let crit = df + 3.9 * (2.0 * df).sqrt();
        assert!(
            chi2 < crit,
            "chi-square {chi2:.1} exceeds {crit:.1} (df {df}): probe positions are not uniform"
        );
        assert!(
            counts.iter().all(|&c| c > 0),
            "some bit position is never chosen"
        );
    }

    #[test]
    fn empirical_fp_rate_is_near_prediction() {
        // Sign 200 random-ish terms, probe with 1000 absent terms.
        let d = 200;
        let k = 4;
        let m = optimal_bits(d, k);
        let s = SignatureScheme::new(m, k, 99);
        let doc: Vec<String> = (0..d).map(|i| format!("present{i}")).collect();
        let sig = s.sign_terms(doc.iter().map(String::as_str));
        let mut fp = 0;
        let probes = 2000;
        for i in 0..probes {
            if sig.contains(&s.sign_term(&format!("absent{i}"))) {
                fp += 1;
            }
        }
        let measured = fp as f64 / probes as f64;
        let predicted = expected_false_positive(m, k, d);
        assert!(
            (measured - predicted).abs() < 0.05,
            "measured {measured}, predicted {predicted}"
        );
    }
}
