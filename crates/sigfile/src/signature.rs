//! Bit-vector signatures.

use std::fmt;

/// A fixed-length bit vector: one superimposed-coding signature.
///
/// Signatures support exactly the operations the IR²-Tree needs:
///
/// * **superimposition** ([`or_assign`](Signature::or_assign)) — a node's
///   signature is "the superimposition (OR-ing) of all the signatures of
///   its entries";
/// * **containment** ([`contains`](Signature::contains)) — "s matches w"
///   in the paper's `IR2NearestNeighbor`: every bit set in the query
///   signature is set in the node/object signature. Containment can
///   produce *false positives* (the whole point of the verify step at
///   line 21 of `IR2TopK`) but never false negatives.
///
/// Bits are stored in 64-bit words; [`byte_len`](Signature::byte_len) bytes
/// are written to disk (the paper quotes signature lengths in bytes, e.g.
/// 189 B for Hotels and 8 B for Restaurants).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Signature {
    bits: usize,
    words: Box<[u64]>,
}

impl Signature {
    /// An all-zero signature of `bits` bits.
    ///
    /// `bits == 0` is allowed and yields the degenerate empty signature
    /// (no storage, density 0.0, contains only itself) — useful as an
    /// inert placeholder; [`SignatureScheme`](crate::SignatureScheme)
    /// still rejects zero-length schemes at construction.
    pub fn zero(bits: usize) -> Self {
        Self {
            bits,
            words: vec![0u64; bits.div_ceil(64)].into_boxed_slice(),
        }
    }

    /// Number of bits.
    #[inline]
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Number of bytes the signature occupies on disk.
    #[inline]
    pub fn byte_len(&self) -> usize {
        self.bits.div_ceil(8)
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= bits`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.bits, "bit index {i} out of range {}", self.bits);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= bits`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.bits, "bit index {i} out of range {}", self.bits);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Superimposes `other` onto `self` (bitwise OR).
    ///
    /// # Panics
    /// Panics if lengths differ — superimposing signatures from different
    /// schemes is always a logic error.
    pub fn or_assign(&mut self, other: &Self) {
        assert_eq!(self.bits, other.bits, "signature length mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// True if every bit set in `query` is also set in `self` — the
    /// signature match test (`self & query == query`).
    #[inline]
    pub fn contains(&self, query: &Self) -> bool {
        assert_eq!(self.bits, query.bits, "signature length mismatch");
        self.words
            .iter()
            .zip(query.words.iter())
            .all(|(s, q)| s & q == *q)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Fraction of bits set — the signature *weight*; superimposed-coding
    /// false-positive analysis says the optimum operating point is ~0.5.
    ///
    /// The degenerate 0-bit signature has density `0.0`, not `NaN` —
    /// downstream density aggregation (diagnostics, exported metrics)
    /// must stay finite.
    pub fn density(&self) -> f64 {
        if self.bits == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.bits as f64
        }
    }

    /// True if no bit is set.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Serializes the signature into `out` (exactly
    /// [`byte_len`](Signature::byte_len) bytes, little-endian bit order).
    ///
    /// # Panics
    /// Panics if `out.len() != self.byte_len()`.
    pub fn write_bytes(&self, out: &mut [u8]) {
        assert_eq!(out.len(), self.byte_len(), "signature buffer mismatch");
        for (i, b) in out.iter_mut().enumerate() {
            let word = self.words[i / 8];
            *b = (word >> (8 * (i % 8))) as u8;
        }
    }

    /// The backing 64-bit words (little-endian bit order; bits beyond
    /// [`bits`](Signature::bits) in the last word are always zero). This is
    /// the representation the batched kernels in [`crate::block`] operate
    /// on.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Builds a signature directly from backing words.
    ///
    /// # Panics
    /// Panics if `words.len() != bits.div_ceil(64)` or if any bit beyond
    /// `bits` is set in the last word (the zero-padding invariant every
    /// other operation relies on).
    pub fn from_words(bits: usize, words: Vec<u64>) -> Self {
        assert_eq!(words.len(), bits.div_ceil(64), "signature word mismatch");
        if bits % 64 != 0 {
            let mask = (1u64 << (bits % 64)) - 1;
            assert_eq!(
                words[bits / 64] & !mask,
                0,
                "bits beyond the signature length must be zero"
            );
        }
        Self {
            bits,
            words: words.into_boxed_slice(),
        }
    }

    /// Deserializes a signature of `bits` bits from `buf`.
    ///
    /// # Panics
    /// Panics if `buf.len() != bits.div_ceil(8)`.
    pub fn from_bytes(bits: usize, buf: &[u8]) -> Self {
        let mut sig = Self::zero(bits);
        assert_eq!(buf.len(), sig.byte_len(), "signature buffer mismatch");
        for (i, &b) in buf.iter().enumerate() {
            sig.words[i / 8] |= (b as u64) << (8 * (i % 8));
        }
        sig
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Signature({} bits, {} set, density {:.2})",
            self.bits,
            self.count_ones(),
            self.density()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bit_signature_is_inert_and_density_is_finite() {
        let s = Signature::zero(0);
        assert_eq!(s.bits(), 0);
        assert_eq!(s.byte_len(), 0);
        assert_eq!(s.count_ones(), 0);
        assert!(s.is_zero());
        assert_eq!(s.density(), 0.0, "0-bit density must be 0.0, not NaN");
        assert!(s.density().is_finite());
        assert!(s.contains(&Signature::zero(0)), "vacuous containment");
    }

    #[test]
    fn density_counts_set_fraction() {
        let mut s = Signature::zero(8);
        assert_eq!(s.density(), 0.0);
        s.set(0);
        s.set(5);
        assert_eq!(s.density(), 0.25);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut s = Signature::zero(130);
        for i in [0, 63, 64, 65, 128, 129] {
            assert!(!s.get(i));
            s.set(i);
            assert!(s.get(i));
        }
        assert_eq!(s.count_ones(), 6);
    }

    #[test]
    fn superimposition_is_union() {
        let mut a = Signature::zero(64);
        a.set(1);
        a.set(10);
        let mut b = Signature::zero(64);
        b.set(10);
        b.set(40);
        a.or_assign(&b);
        assert!(a.get(1) && a.get(10) && a.get(40));
        assert_eq!(a.count_ones(), 3);
    }

    #[test]
    fn containment_semantics() {
        let mut node = Signature::zero(96);
        node.set(3);
        node.set(70);
        node.set(90);
        let mut q = Signature::zero(96);
        q.set(3);
        q.set(90);
        assert!(node.contains(&q));
        q.set(5); // a bit the node lacks
        assert!(!node.contains(&q));
        // Everything contains the empty signature.
        assert!(node.contains(&Signature::zero(96)));
    }

    #[test]
    fn containment_after_superimposition() {
        // A parent's signature must contain each child's — the tree invariant.
        let mut child1 = Signature::zero(77);
        child1.set(5);
        child1.set(76);
        let mut child2 = Signature::zero(77);
        child2.set(33);
        let mut parent = Signature::zero(77);
        parent.or_assign(&child1);
        parent.or_assign(&child2);
        assert!(parent.contains(&child1));
        assert!(parent.contains(&child2));
    }

    #[test]
    fn bytes_roundtrip_non_multiple_of_eight() {
        let mut s = Signature::zero(100);
        for i in [0, 7, 8, 64, 99] {
            s.set(i);
        }
        let mut buf = vec![0u8; s.byte_len()];
        s.write_bytes(&mut buf);
        assert_eq!(buf.len(), 13);
        let back = Signature::from_bytes(100, &buf);
        assert_eq!(back, s);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let a = Signature::zero(64);
        let b = Signature::zero(128);
        let _ = a.contains(&b);
    }

    #[test]
    fn density_of_half_set() {
        let mut s = Signature::zero(64);
        for i in 0..32 {
            s.set(i);
        }
        assert_eq!(s.density(), 0.5);
    }
}
