//! Columnar signature storage and batched containment kernels.
//!
//! The IR²-Tree's textual pruning power rests on one inner loop: "s
//! matches w" containment tests over superimposed-coding signatures. A
//! per-entry `Vec<Signature>` pays a pointer chase and an iterator setup
//! per test; a [`SignatureBlock`] instead packs all of a node's (or an SSF
//! page's) entry signatures into one contiguous 64-bit-word buffer and
//! tests them with chunked word loops that the compiler can autovectorize.
//!
//! Exactness contract: every kernel in this module computes *precisely*
//! the per-entry scalar result ([`Signature::contains`]) — same bits, same
//! answers, no tolerance. Bit lengths that are not multiples of 64 are
//! handled by masking the tail word at load time, so the padding bits can
//! never flip a verdict. The [`ScalarKernelGuard`] toggle forces every
//! dispatching call site back onto the per-entry scalar path, which is how
//! the differential fuzzer (`ir2 fuzz`) pins kernel == scalar across all
//! engines and scenarios.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::Signature;

/// When set, dispatching kernel entry points ([`SignatureBlock::
/// matches_mask_into`], [`kernel_contains`], [`payload_contains`]) take the
/// per-entry scalar path instead of the batched word kernels. Both paths
/// are exact, so flipping this can never change an answer — which is
/// exactly the invariant the differential fuzzer checks.
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Forces (or releases) the scalar fallback globally. Prefer
/// [`ScalarKernelGuard`] for scoped use.
pub fn force_scalar_kernels(on: bool) {
    FORCE_SCALAR.store(on, Ordering::Relaxed);
}

/// True while the scalar fallback is forced.
pub fn scalar_kernels_forced() -> bool {
    FORCE_SCALAR.load(Ordering::Relaxed)
}

/// RAII scope forcing the scalar fallback; restores the previous state on
/// drop. Used by the oracle harness's `scalar-kernel` engine variants and
/// the `sig_kernel` bench.
pub struct ScalarKernelGuard {
    prev: bool,
}

impl ScalarKernelGuard {
    /// Forces the scalar path until the guard drops.
    pub fn new() -> Self {
        let prev = FORCE_SCALAR.swap(true, Ordering::Relaxed);
        Self { prev }
    }
}

impl Default for ScalarKernelGuard {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for ScalarKernelGuard {
    fn drop(&mut self) {
        FORCE_SCALAR.store(self.prev, Ordering::Relaxed);
    }
}

/// Mask selecting the live bits of the last word of a `bits`-bit
/// signature (`!0` when `bits` is a multiple of 64).
#[inline]
fn tail_mask(bits: usize) -> u64 {
    match bits % 64 {
        0 => !0u64,
        r => (1u64 << r) - 1,
    }
}

/// Assembles little-endian bytes into words, masking the tail word so bits
/// beyond `bits` are zero even if the input bytes carry garbage padding.
fn words_from_bytes(bits: usize, bytes: &[u8], out: &mut [u64]) {
    debug_assert_eq!(bytes.len(), bits.div_ceil(8), "payload length mismatch");
    debug_assert_eq!(out.len(), bits.div_ceil(64));
    let mut chunks = bytes.chunks_exact(8);
    let mut w = 0usize;
    for c in &mut chunks {
        out[w] = u64::from_le_bytes(c.try_into().expect("8 bytes"));
        w += 1;
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut last = [0u8; 8];
        last[..rem.len()].copy_from_slice(rem);
        out[w] = u64::from_le_bytes(last);
    }
    if let Some(last) = out.last_mut() {
        *last &= tail_mask(bits);
    }
}

/// All entry signatures of one node (or one SSF page) in a single
/// contiguous word buffer, row-major: entry `i` occupies words
/// `[i·w, (i+1)·w)` where `w = bits.div_ceil(64)`.
///
/// The batched kernels ([`matches_mask`](SignatureBlock::matches_mask),
/// [`superimpose_all`](SignatureBlock::superimpose_all)) walk that buffer
/// with unrolled word loops — no per-entry heap indirection, no bounds
/// checks in the hot path after the initial slice — and return bit-exact
/// scalar results.
#[derive(Clone, Debug)]
pub struct SignatureBlock {
    bits: usize,
    words_per_sig: usize,
    count: usize,
    words: Box<[u64]>,
}

impl SignatureBlock {
    /// Builds a block from raw on-disk signature payloads (each exactly
    /// `bits.div_ceil(8)` bytes, little-endian — the format
    /// [`Signature::write_bytes`] produces).
    ///
    /// # Panics
    /// Panics if any payload has the wrong length.
    pub fn from_payloads<'a>(bits: usize, payloads: impl IntoIterator<Item = &'a [u8]>) -> Self {
        let wps = bits.div_ceil(64);
        let byte_len = bits.div_ceil(8);
        let mut words: Vec<u64> = Vec::new();
        let mut count = 0usize;
        for p in payloads {
            assert_eq!(p.len(), byte_len, "signature payload length mismatch");
            let start = words.len();
            words.resize(start + wps, 0);
            words_from_bytes(bits, p, &mut words[start..]);
            count += 1;
        }
        Self {
            bits,
            words_per_sig: wps,
            count,
            words: words.into_boxed_slice(),
        }
    }

    /// Builds a block from decoded signatures.
    ///
    /// # Panics
    /// Panics if any signature's length differs from `bits`.
    pub fn from_signatures<'a>(bits: usize, sigs: impl IntoIterator<Item = &'a Signature>) -> Self {
        let wps = bits.div_ceil(64);
        let mut words: Vec<u64> = Vec::new();
        let mut count = 0usize;
        for s in sigs {
            assert_eq!(s.bits(), bits, "signature length mismatch");
            words.extend_from_slice(s.words());
            count += 1;
        }
        debug_assert_eq!(words.len(), count * wps);
        Self {
            bits,
            words_per_sig: wps,
            count,
            words: words.into_boxed_slice(),
        }
    }

    /// Number of signatures in the block.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True if the block holds no signatures.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Signature length in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Words per signature row (`bits.div_ceil(64)`).
    pub fn words_per_sig(&self) -> usize {
        self.words_per_sig
    }

    #[inline]
    fn row(&self, i: usize) -> &[u64] {
        &self.words[i * self.words_per_sig..(i + 1) * self.words_per_sig]
    }

    /// Per-entry scalar containment — the reference the batched kernels
    /// are differentially tested against (`row & query == query`).
    #[inline]
    pub fn contains_at(&self, i: usize, query: &Signature) -> bool {
        assert_eq!(self.bits, query.bits(), "signature length mismatch");
        self.row(i)
            .iter()
            .zip(query.words())
            .all(|(s, q)| s & q == *q)
    }

    /// Decodes entry `i` back into an owned [`Signature`].
    pub fn signature_at(&self, i: usize) -> Signature {
        Signature::from_words(self.bits, self.row(i).to_vec())
    }

    /// Number of set bits in entry `i`.
    pub fn count_ones_at(&self, i: usize) -> u32 {
        self.row(i).iter().map(|w| w.count_ones()).sum()
    }

    /// Total set bits across all entries (the stats line's raw sum).
    pub fn set_bits_total(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Mean fraction of set bits per entry (0.0 for empty or 0-bit blocks,
    /// matching [`Signature::density`]'s finite-by-construction contract).
    pub fn mean_density(&self) -> f64 {
        if self.count == 0 || self.bits == 0 {
            0.0
        } else {
            self.set_bits_total() as f64 / (self.count * self.bits) as f64
        }
    }

    /// Superimposes (ORs) every entry into one signature — the parent
    /// summary of the paper's AdjustTree, computed in one pass over the
    /// columnar buffer.
    pub fn superimpose_all(&self) -> Signature {
        let mut acc = vec![0u64; self.words_per_sig];
        for i in 0..self.count {
            for (a, w) in acc.iter_mut().zip(self.row(i)) {
                *a |= w;
            }
        }
        Signature::from_words(self.bits, acc)
    }

    /// Batched containment: returns the bitmask of entries whose signature
    /// contains `query`. Allocates a fresh mask; hot paths should hold a
    /// reusable [`EntryMask`] and call
    /// [`matches_mask_into`](SignatureBlock::matches_mask_into).
    pub fn matches_mask(&self, query: &Signature) -> EntryMask {
        let mut mask = EntryMask::default();
        self.matches_mask_into(query, &mut mask);
        mask
    }

    /// Batched containment into a caller-owned mask (no allocation once
    /// the mask has grown to the block's size). Dispatches to the word
    /// kernel, or to the per-entry scalar path under [`ScalarKernelGuard`].
    ///
    /// # Panics
    /// Panics if `query.bits() != self.bits()`.
    pub fn matches_mask_into(&self, query: &Signature, out: &mut EntryMask) {
        assert_eq!(self.bits, query.bits(), "signature length mismatch");
        out.reset(self.count);
        if scalar_kernels_forced() {
            for i in 0..self.count {
                if self.contains_at(i, query) {
                    out.set(i);
                }
            }
            return;
        }
        self.kernel_mask_into(query, out);
    }

    /// The batched word kernel. One dispatch on the row width, then tight
    /// chunked loops that keep the verdict accumulator in a register:
    /// single-word rows fold 64 verdicts into one mask word per store;
    /// wider rows screen on the first word (where a superimposed-coding
    /// mismatch almost always shows) before the unrolled full-row test.
    fn kernel_mask_into(&self, query: &Signature, out: &mut EntryMask) {
        let q = query.words();
        match self.words_per_sig {
            // 0-bit scheme: every signature (vacuously) contains the
            // empty query.
            0 => {
                for i in 0..self.count {
                    out.set(i);
                }
            }
            // ≤ 64-bit signatures (the paper's 8 B Restaurants scheme):
            // one word per entry; 64 verdicts accumulate in a register and
            // store once per mask word — no per-entry memory traffic.
            1 => {
                let qw = q[0];
                for (wi, chunk) in self.words.chunks(64).enumerate() {
                    // Four independent accumulators break the or-chain
                    // dependency so verdict bits retire in parallel; one
                    // store per 64 entries, no per-entry memory traffic.
                    let mut acc = [0u64; 4];
                    let mut quads = chunk.chunks_exact(4);
                    let mut b = 0u32;
                    for quad in &mut quads {
                        acc[0] |= u64::from((quad[0] & qw) ^ qw == 0) << b;
                        acc[1] |= u64::from((quad[1] & qw) ^ qw == 0) << (b + 1);
                        acc[2] |= u64::from((quad[2] & qw) ^ qw == 0) << (b + 2);
                        acc[3] |= u64::from((quad[3] & qw) ^ qw == 0) << (b + 3);
                        b += 4;
                    }
                    let mut m = acc[0] | acc[1] | acc[2] | acc[3];
                    for &w in quads.remainder() {
                        m |= u64::from((w & qw) ^ qw == 0) << b;
                        b += 1;
                    }
                    out.words[wi] = m;
                }
            }
            wps => {
                // Screen on the first word that actually carries query
                // bits — all-zero query words trivially pass containment,
                // so a sparse long query (a few probes in dozens of
                // words) would otherwise defeat a word-0 screen. A row
                // that misses a query bit in the screen word (the common
                // case for a non-matching entry) costs one load.
                let Some(si) = q.iter().position(|&w| w != 0) else {
                    // Empty query: every signature matches vacuously.
                    for i in 0..self.count {
                        out.set(i);
                    }
                    return;
                };
                let sw = q[si];
                for i in 0..self.count {
                    let base = i * wps;
                    if (self.words[base + si] & sw) ^ sw != 0 {
                        continue;
                    }
                    // Words before `si` carry no query bits; test the rest.
                    if contains_words(&self.words[base + si..base + wps], &q[si..]) {
                        out.set(i);
                    }
                }
            }
        }
    }
}

/// Containment over word slices: accumulate `(s & q) ^ q` (zero iff every
/// query bit is present) in 4-word chunks, checking for a verdict once per
/// chunk — branch-light enough to vectorize, yet it still exits early on
/// the long 189 B signatures where a miss shows up in the first words.
#[inline]
fn contains_words(row: &[u64], q: &[u64]) -> bool {
    debug_assert_eq!(row.len(), q.len());
    #[cfg(feature = "portable-simd")]
    {
        return simd::contains_words(row, q);
    }
    #[cfg(not(feature = "portable-simd"))]
    {
        let mut j = 0usize;
        let n = row.len();
        while j + 4 <= n {
            let acc = ((row[j] & q[j]) ^ q[j])
                | ((row[j + 1] & q[j + 1]) ^ q[j + 1])
                | ((row[j + 2] & q[j + 2]) ^ q[j + 2])
                | ((row[j + 3] & q[j + 3]) ^ q[j + 3]);
            if acc != 0 {
                return false;
            }
            j += 4;
        }
        let mut acc = 0u64;
        while j < n {
            acc |= (row[j] & q[j]) ^ q[j];
            j += 1;
        }
        acc == 0
    }
}

/// Explicit-SIMD variant of the chunked kernel, compiled only when the
/// off-by-default `portable-simd` feature is enabled (requires a nightly
/// toolchain for `std::simd`); stable builds use the unrolled u64 loops
/// above, which autovectorize on current compilers.
#[cfg(feature = "portable-simd")]
mod simd {
    use std::simd::cmp::SimdPartialEq;
    use std::simd::u64x4;

    #[inline]
    pub(super) fn contains_words(row: &[u64], q: &[u64]) -> bool {
        let mut j = 0usize;
        let n = row.len();
        while j + 4 <= n {
            let s = u64x4::from_slice(&row[j..j + 4]);
            let qq = u64x4::from_slice(&q[j..j + 4]);
            if !(s & qq).simd_eq(qq).all() {
                return false;
            }
            j += 4;
        }
        let mut acc = 0u64;
        while j < n {
            acc |= (row[j] & q[j]) ^ q[j];
            j += 1;
        }
        acc == 0
    }
}

/// Zero-copy containment against a serialized signature (the exact bytes
/// [`Signature::write_bytes`] produces, e.g. an SSF page entry or a tree
/// node payload): words are assembled with chunked little-endian loads and
/// tested in place — no per-entry `Signature` decode, no heap traffic.
///
/// Exact because serialization is little-endian words truncated to
/// `byte_len` and both sides keep bits beyond `bits` at zero.
///
/// # Panics
/// Panics if `sig_bytes.len() != query.byte_len()`.
pub fn bytes_contain(sig_bytes: &[u8], query: &Signature) -> bool {
    assert_eq!(
        sig_bytes.len(),
        query.byte_len(),
        "signature payload length mismatch"
    );
    let q = query.words();
    let mut chunks = sig_bytes.chunks_exact(8);
    let mut acc = 0u64;
    let mut j = 0usize;
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().expect("8 bytes"));
        acc |= (w & q[j]) ^ q[j];
        j += 1;
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut last = [0u8; 8];
        last[..rem.len()].copy_from_slice(rem);
        let w = u64::from_le_bytes(last);
        acc |= (w & q[j]) ^ q[j];
    }
    acc == 0
}

/// Dispatching containment over a serialized payload: the zero-copy byte
/// kernel, or (under [`ScalarKernelGuard`]) a full per-entry decode plus
/// scalar [`Signature::contains`] — the pre-kernel code path, kept callable
/// so the differential fuzzer can pin the two.
pub fn payload_contains(sig_bytes: &[u8], query: &Signature) -> bool {
    if scalar_kernels_forced() {
        Signature::from_bytes(query.bits(), sig_bytes).contains(query)
    } else {
        bytes_contain(sig_bytes, query)
    }
}

/// Dispatching signature-vs-signature containment: the branch-light word
/// kernel, or the scalar short-circuit loop under [`ScalarKernelGuard`].
/// Used by call sites that keep decoded [`Signature`]s (the grid index's
/// cell summaries).
pub fn kernel_contains(sig: &Signature, query: &Signature) -> bool {
    assert_eq!(sig.bits(), query.bits(), "signature length mismatch");
    if scalar_kernels_forced() {
        sig.contains(query)
    } else {
        contains_words(sig.words(), query.words())
    }
}

/// A bitmask over a block's entries: bit `i` is the containment verdict of
/// entry `i`. Reused across node visits via
/// [`SignatureBlock::matches_mask_into`] so steady-state pruning allocates
/// nothing.
#[derive(Clone, Debug, Default)]
pub struct EntryMask {
    words: Vec<u64>,
    len: usize,
}

impl EntryMask {
    /// An empty mask (grows on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Resizes to `len` entries, all unset. Keeps capacity.
    fn reset(&mut self, len: usize) {
        let need = len.div_ceil(64);
        self.words.clear();
        self.words.resize(need, 0);
        self.len = len;
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Verdict for entry `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "entry index {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of entries covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are covered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of matching entries.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates the indices of matching entries in ascending order.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            std::iter::successors(if w == 0 { None } else { Some(w) }, |&rest| {
                let next = rest & (rest - 1);
                (next != 0).then_some(next)
            })
            .map(move |rest| wi * 64 + rest.trailing_zeros() as usize)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SignatureScheme;

    fn doc_sigs(bits: usize, n: usize) -> Vec<Signature> {
        let scheme = SignatureScheme::new(bits, 4, 9);
        (0..n)
            .map(|i| {
                let terms: Vec<String> = (0..(i % 7 + 1)).map(|j| format!("t{i}-{j}")).collect();
                scheme.sign_terms(terms.iter().map(String::as_str))
            })
            .collect()
    }

    fn block_of(bits: usize, sigs: &[Signature]) -> SignatureBlock {
        // Round-trip through serialized payloads, like the tree does.
        let payloads: Vec<Vec<u8>> = sigs
            .iter()
            .map(|s| {
                let mut b = vec![0u8; s.byte_len()];
                s.write_bytes(&mut b);
                b
            })
            .collect();
        SignatureBlock::from_payloads(bits, payloads.iter().map(Vec::as_slice))
    }

    #[test]
    fn mask_equals_scalar_contains_across_widths() {
        for bits in [8usize, 64, 100, 128, 200, 1512] {
            let sigs = doc_sigs(bits, 70);
            let block = block_of(bits, &sigs);
            let scheme = SignatureScheme::new(bits, 4, 9);
            for probe in ["t3-0", "t10-1", "absent", "t64-2"] {
                let q = scheme.sign_term(probe);
                let mask = block.matches_mask(&q);
                assert_eq!(mask.len(), sigs.len());
                for (i, s) in sigs.iter().enumerate() {
                    assert_eq!(
                        mask.get(i),
                        s.contains(&q),
                        "bits={bits} probe={probe} entry={i}"
                    );
                    assert_eq!(block.contains_at(i, &q), s.contains(&q));
                }
            }
        }
    }

    #[test]
    fn tail_word_padding_garbage_is_masked() {
        // 100-bit signatures occupy 13 bytes = 104 bits; the 4 padding
        // bits must not affect verdicts even if an (adversarial) payload
        // carries them set.
        let bits = 100;
        let mut payload = vec![0u8; 13];
        payload[12] = 0xF0; // garbage above bit 100 only
        let block = SignatureBlock::from_payloads(bits, [payload.as_slice()]);
        assert_eq!(block.count_ones_at(0), 0, "padding bits must be masked");
        let q = Signature::zero(bits);
        assert!(block.matches_mask(&q).get(0), "empty query always matches");
    }

    #[test]
    fn zero_bit_scheme_is_vacuous() {
        let block = SignatureBlock::from_payloads(0, [&[][..], &[][..]]);
        assert_eq!(block.len(), 2);
        assert_eq!(block.bits(), 0);
        let q = Signature::zero(0);
        let mask = block.matches_mask(&q);
        assert!(mask.get(0) && mask.get(1));
        assert_eq!(mask.count_ones(), 2);
        assert_eq!(block.mean_density(), 0.0);
    }

    #[test]
    fn superimpose_all_equals_fold() {
        let bits = 200;
        let sigs = doc_sigs(bits, 33);
        let block = block_of(bits, &sigs);
        let mut want = Signature::zero(bits);
        for s in &sigs {
            want.or_assign(s);
        }
        assert_eq!(block.superimpose_all(), want);
        for s in &sigs {
            assert!(block.superimpose_all().contains(s), "tree invariant");
        }
    }

    #[test]
    fn signature_at_roundtrips() {
        let bits = 129;
        let sigs = doc_sigs(bits, 10);
        let block = block_of(bits, &sigs);
        for (i, s) in sigs.iter().enumerate() {
            assert_eq!(&block.signature_at(i), s);
            assert_eq!(block.count_ones_at(i), s.count_ones());
        }
    }

    #[test]
    fn scalar_guard_flips_dispatch_not_answers() {
        let bits = 1512;
        let sigs = doc_sigs(bits, 40);
        let block = block_of(bits, &sigs);
        let q = SignatureScheme::new(bits, 4, 9).sign_term("t5-0");
        let fast = block.matches_mask(&q);
        {
            let _g = ScalarKernelGuard::new();
            assert!(scalar_kernels_forced());
            let slow = block.matches_mask(&q);
            for i in 0..block.len() {
                assert_eq!(fast.get(i), slow.get(i));
            }
        }
        assert!(!scalar_kernels_forced(), "guard restores on drop");
    }

    #[test]
    fn bytes_contain_matches_decode_path() {
        for bits in [8usize, 100, 1512] {
            let scheme = SignatureScheme::new(bits, 4, 9);
            for i in 0..50 {
                let s = scheme.sign_terms([format!("d{i}a").as_str(), format!("d{i}b").as_str()]);
                let mut buf = vec![0u8; s.byte_len()];
                s.write_bytes(&mut buf);
                for probe in [format!("d{i}a"), "absent".to_string()] {
                    let q = scheme.sign_term(&probe);
                    assert_eq!(
                        bytes_contain(&buf, &q),
                        Signature::from_bytes(bits, &buf).contains(&q),
                        "bits={bits} i={i} probe={probe}"
                    );
                    assert_eq!(payload_contains(&buf, &q), bytes_contain(&buf, &q));
                    assert_eq!(kernel_contains(&s, &q), s.contains(&q));
                }
            }
        }
    }

    #[test]
    fn ones_iterator_reports_exactly_the_set_entries() {
        let bits = 64;
        let sigs = doc_sigs(bits, 130); // > 2 mask words
        let block = block_of(bits, &sigs);
        let q = SignatureScheme::new(bits, 4, 9).sign_term("t17-0");
        let mask = block.matches_mask(&q);
        let from_iter: Vec<usize> = mask.ones().collect();
        let from_get: Vec<usize> = (0..mask.len()).filter(|&i| mask.get(i)).collect();
        assert_eq!(from_iter, from_get);
        assert_eq!(from_iter.len(), mask.count_ones());
    }

    #[test]
    fn empty_block_yields_empty_mask() {
        let block = SignatureBlock::from_payloads(64, std::iter::empty());
        assert!(block.is_empty());
        let mask = block.matches_mask(&Signature::zero(64));
        assert_eq!(mask.len(), 0);
        assert_eq!(mask.count_ones(), 0);
        assert_eq!(mask.ones().count(), 0);
    }
}
