//! Multi-level superimposed coding for the MIR²-Tree.

use crate::{optimal_bits, SignatureScheme};

/// Per-tree-level signature schemes, implementing the multi-level
/// superimposed coding of [CS89, DR83] that the MIR²-Tree uses.
///
/// The plain IR²-Tree uses "the same signature length … for all levels,
/// which leads to more false positives in the higher levels, which have
/// more 1's". The MIR²-Tree instead sizes each level's signature for the
/// number of distinct words its nodes cover: a node at level `ℓ` (leaves at
/// `ℓ = 0`) covers on the order of `D₀ · f^ℓ` distinct words (`f` =
/// fanout, `D₀` = average distinct words per object), capped by the corpus
/// vocabulary. Applying the optimal-length rule `m = k·D/ln 2`
/// ([`optimal_bits`]) per level yields signatures that grow geometrically
/// toward the root and stop growing once the vocabulary saturates — the
/// paper's "longer signatures are used for the top nodes".
///
/// Every level shares `k` and the seed, but **levels are not compatible**:
/// a node signature at level `ℓ` must be the superimposition of the
/// *object* signatures computed with `scheme(ℓ)`, which is why MIR²-Tree
/// maintenance has to re-access underlying objects (Section 4) instead of
/// OR-ing children.
#[derive(Debug, Clone)]
pub struct MultiLevelScheme {
    schemes: Vec<SignatureScheme>,
}

/// More levels than any realistic tree height (fanout ≥ 2 ⇒ 2⁶⁴ objects).
const MAX_LEVELS: usize = 64;

impl MultiLevelScheme {
    /// Builds per-level schemes.
    ///
    /// * `leaf_bytes` — the signature length of level 0 (the length the
    ///   paper's experiments quote, e.g. 189 B / 8 B);
    /// * `k` — bits per term (shared by all levels);
    /// * `seed` — hash seed (shared);
    /// * `fanout` — tree node capacity `f`;
    /// * `avg_distinct_per_object` — `D₀`, Table 1's "average # unique
    ///   words per object";
    /// * `vocab_size` — corpus distinct-word count, the cap on `D_ℓ`.
    ///
    /// # Panics
    /// Panics if `leaf_bytes`, `k` or `fanout` is zero.
    pub fn new(
        leaf_bytes: usize,
        k: u32,
        seed: u64,
        fanout: usize,
        avg_distinct_per_object: f64,
        vocab_size: usize,
    ) -> Self {
        assert!(leaf_bytes > 0, "leaf signature length must be positive");
        assert!(fanout > 1, "fanout must exceed 1");
        let leaf_bits = leaf_bytes * 8;
        let d0 = avg_distinct_per_object.max(1.0);
        // Level 0 keeps the *configured* length (the quantity the paper's
        // experiments sweep); levels ≥ 1 apply the optimal rule m = k·D/ln2
        // to their word coverage D_ℓ = min(vocab, D₀·f^ℓ), never shrinking
        // below the leaf length. Growth stops once the vocabulary saturates.
        let max_bits = optimal_bits(vocab_size.max(1), k).max(leaf_bits);
        // Byte-rounded saturation length (saturating: `optimal_bits` of an
        // astronomical vocabulary can sit within 7 of `usize::MAX`).
        let saturated_bits = max_bits.div_ceil(8).saturating_mul(8);
        let mut schemes = vec![SignatureScheme::new(leaf_bits, k, seed)];
        let mut dl = d0;
        for _ in 1..MAX_LEVELS {
            dl = (dl * fanout as f64).min(vocab_size as f64);
            let bits = optimal_bits(dl.ceil() as usize, k).clamp(leaf_bits, max_bits);
            // Round up to whole bytes, as signatures are stored by the byte.
            let bits = bits.div_ceil(8).saturating_mul(8);
            schemes.push(SignatureScheme::new(bits, k, seed));
            if bits >= max_bits {
                // Vocabulary saturated: every higher level reuses this scheme.
                break;
            }
        }
        // `scheme()` sends levels beyond the ladder to the topmost entry
        // (insert-driven root splits can raise tree height past what was
        // computed at bulk-load time). That clamp is exact only if the
        // topmost entry is the vocabulary-saturated scheme every higher
        // level would get — guarantee it even when the bounded loop above
        // runs out before saturating (possible only for vocabularies past
        // `fanout^63 · D₀`, but the invariant must hold unconditionally).
        if schemes.last().expect("ladder is non-empty").bits() < saturated_bits {
            schemes.push(SignatureScheme::new(saturated_bits, k, seed));
        }
        Self { schemes }
    }

    /// A degenerate multi-level scheme that uses `scheme` at every level —
    /// this turns a MIR²-Tree into a plain IR²-Tree and is used by tests to
    /// show the two coincide.
    pub fn uniform(scheme: SignatureScheme) -> Self {
        Self {
            schemes: vec![scheme],
        }
    }

    /// The scheme for tree level `level` (0 = leaf entries / objects).
    ///
    /// Levels beyond the computed ladder reuse the topmost scheme. This
    /// clamp is *exact*, not an approximation: [`MultiLevelScheme::new`]
    /// guarantees the topmost entry is the vocabulary-saturated scheme —
    /// the one the optimal rule would assign to every sufficiently high
    /// level — so a root split that raises the tree past the ladder (see
    /// the height-growth test in `ir2-irtree`) signs and queries new top
    /// levels with the same scheme, on both the maintenance and the query
    /// path.
    pub fn scheme(&self, level: u16) -> &SignatureScheme {
        let idx = (level as usize).min(self.schemes.len() - 1);
        &self.schemes[idx]
    }

    /// Number of distinct schemes in the ladder.
    pub fn num_levels(&self) -> usize {
        self.schemes.len()
    }

    /// Suggested per-level length from the optimal rule alone (diagnostic:
    /// what `m = k·D/ln2` would pick for `distinct` terms).
    pub fn optimal_for(distinct: usize, k: u32) -> usize {
        optimal_bits(distinct, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_grow_then_saturate() {
        let ml = MultiLevelScheme::new(8, 4, 0, 100, 14.0, 73855);
        let mut prev = 0;
        for level in 0..ml.num_levels() as u16 {
            let bits = ml.scheme(level).bits();
            assert!(bits >= prev, "lengths must be non-decreasing");
            prev = bits;
        }
        // Leaf level keeps the configured length.
        assert_eq!(ml.scheme(0).byte_len(), 8);
        // The top saturates at the optimal length for the full vocabulary.
        let top = ml.scheme((ml.num_levels() - 1) as u16);
        let cap_bits = crate::optimal_bits(73_855, 4) as f64;
        assert!((top.bits() as f64) <= cap_bits + 8.0);
        assert!((top.bits() as f64) >= cap_bits - 8.0);
        // Levels past the ladder reuse the top scheme.
        assert_eq!(ml.scheme(40).bits(), top.bits());
    }

    #[test]
    fn upper_levels_use_the_optimal_rule() {
        let ml = MultiLevelScheme::new(10, 4, 0, 10, 20.0, 1_000_000);
        // Level 1 covers 20·10 = 200 words: m = ⌈4·200/ln2⌉ bits.
        let expected = crate::optimal_bits(200, 4);
        let got = ml.scheme(1).bits();
        assert!(
            got >= expected && got <= expected + 8,
            "got {got}, expected {expected}"
        );
        // Level 2 covers 2000 words: ~10x level 1.
        let ratio = ml.scheme(2).bits() as f64 / ml.scheme(1).bits() as f64;
        assert!((ratio - 10.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn uniform_ladder_has_one_scheme() {
        let base = SignatureScheme::new(128, 3, 5);
        let ml = MultiLevelScheme::uniform(base);
        assert_eq!(ml.num_levels(), 1);
        assert_eq!(ml.scheme(0), &base);
        assert_eq!(ml.scheme(9), &base);
    }

    #[test]
    fn no_false_negatives_across_levels() {
        let ml = MultiLevelScheme::new(4, 3, 7, 4, 5.0, 1000);
        let words = ["alpha", "beta", "gamma", "delta", "epsilon"];
        for level in 0..6u16 {
            let s = ml.scheme(level);
            let node_sig = s.sign_terms(words);
            for w in words {
                assert!(
                    node_sig.contains(&s.sign_term(w)),
                    "level {level}, word {w}"
                );
            }
        }
    }

    #[test]
    fn ladder_top_is_always_the_saturated_scheme() {
        // Ordinary configurations saturate inside the bounded loop…
        let ml = MultiLevelScheme::new(8, 4, 0, 100, 14.0, 73_855);
        let top = ml.scheme(u16::MAX);
        let expect = crate::optimal_bits(73_855, 4).div_ceil(8) * 8;
        assert_eq!(top.bits(), expect);

        // …but even a vocabulary too large for 63 fanout-2 doublings must
        // end saturated: the clamp in `scheme()` is only exact if levels
        // past the ladder get the same scheme maintenance would compute.
        let ml = MultiLevelScheme::new(1, 1, 0, 2, 1.0, usize::MAX);
        let top = ml.scheme(u16::MAX).bits();
        let saturated = crate::optimal_bits(usize::MAX, 1)
            .div_ceil(8)
            .saturating_mul(8);
        assert_eq!(top, saturated, "topmost scheme must be saturated");
        // Monotone non-decreasing all the way up.
        let mut prev = 0;
        for level in 0..ml.num_levels() as u16 {
            let bits = ml.scheme(level).bits();
            assert!(bits >= prev);
            prev = bits;
        }
    }

    #[test]
    fn small_vocab_never_shrinks_below_leaf_length() {
        // Tiny vocabulary: optimal lengths would be shorter than the leaf;
        // the ladder must never shrink below the configured leaf length.
        let ml = MultiLevelScheme::new(16, 4, 0, 8, 50.0, 10);
        assert_eq!(ml.scheme(0).bits(), ml.scheme(5).bits());
        assert_eq!(ml.scheme(0).byte_len(), 16);
    }
}
