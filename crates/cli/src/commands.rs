//! Command implementations.

use std::io::{BufReader, BufWriter, Write};
use std::sync::Arc;
use std::time::Duration;

use ir2_datagen::DatasetSpec;
use ir2tree::geo::{Point, Rect};
use ir2tree::irtree::{density_profile, GeneralQuery, TraceEvent, VecSink};
use ir2tree::model::{tsv, DistanceFirstQuery, QueryRegion};
use ir2tree::storage::{FileDevice, MetricsRegistry};
use ir2tree::text::{LinearRank, SaturatingTfIdf};
use ir2tree::{
    scrub_dir, shard_layout, sharded_manifest, Algorithm, DbConfig, DeviceSet, IndexSizes,
    QueryError, QueryLimits, QueryReport, RetryDevice, RetryPolicy, ShardedDb, SpatialKeywordDb,
};

use crate::args::{parse_area, parse_point, Flags};

type CliResult = Result<(), String>;

/// `writeln!` with the io error mapped into the CLI error type.
macro_rules! say {
    ($out:expr, $($arg:tt)*) => {
        writeln!($out, $($arg)*).map_err(io_err)?
    };
}

fn io_err(e: impl std::fmt::Display) -> String {
    e.to_string()
}

/// `ir2 generate` — synthesize a TSV dataset from a Table-1 preset.
pub fn generate(args: &[String], out: &mut impl Write) -> CliResult {
    let f = Flags::parse(args)?;
    let preset = f.required("preset")?;
    let out_path = f.required("out")?;
    let mut spec = match preset {
        "hotels" => DatasetSpec::hotels(),
        "restaurants" => DatasetSpec::restaurants(),
        other => return Err(format!("unknown preset `{other}` (hotels|restaurants)")),
    };
    let count: usize = f.get_or("count", spec.num_objects)?;
    spec.num_objects = count;
    spec.seed = f.get_or("seed", spec.seed)?;

    let file = std::fs::File::create(out_path).map_err(io_err)?;
    let mut w = BufWriter::new(file);
    let objs: Vec<_> = spec.generate().collect();
    tsv::write_tsv(&mut w, &objs).map_err(io_err)?;
    say!(out, "wrote {count} {preset} objects to {out_path}");
    Ok(())
}

fn db_config(f: &Flags) -> Result<DbConfig, String> {
    let mut config = DbConfig {
        sig_bytes: f.get_or("sig-bytes", 16usize)?,
        seed: f.get_or("seed", DbConfig::default().seed)?,
        ..DbConfig::default()
    };
    if let Some(cap) = f.optional("capacity") {
        config.capacity = Some(cap.parse().map_err(|e| format!("bad --capacity: {e}"))?);
    }
    if f.switch("incremental") {
        config.bulk_load = false;
    }
    config.node_cache = f.get_or("node-cache", 0usize)?;
    config.prefetch = f.get_or("prefetch", 0usize)?;
    Ok(config)
}

/// `ir2 build` — import a TSV file into a new on-disk database directory.
pub fn build(args: &[String], out: &mut impl Write) -> CliResult {
    let f = Flags::parse(args)?;
    let tsv_path = f.required("tsv")?;
    let db_dir = f.required("db")?;
    let config = db_config(&f)?;

    let file = std::fs::File::open(tsv_path).map_err(io_err)?;
    let objects = tsv::read_tsv::<2, _>(BufReader::new(file))
        .collect::<Result<Vec<_>, _>>()
        .map_err(io_err)?;
    let n = objects.len();
    let shards: usize = f.get_or("shards", 1)?;
    let replicas: usize = f.get_or("replicas", 1)?;
    if replicas == 0 {
        return Err("--replicas must be at least 1".into());
    }
    if replicas > 1 && shards <= 1 {
        return Err("--replicas requires a sharded build (--shards 2 or more)".into());
    }

    let t0 = std::time::Instant::now();
    if shards > 1 {
        let db = ShardedDb::create_in_dir_replicated(db_dir, objects, config, shards, replicas)
            .map_err(io_err)?;
        say!(
            out,
            "built {n} objects into {shards} shards × {replicas} replica(s) under {db_dir} \
             in {:.1}s{}",
            t0.elapsed().as_secs_f64(),
            if replicas > 1 {
                " (replicas byte-verified)"
            } else {
                ""
            }
        );
        for (i, shard) in db.shards().enumerate() {
            let s = shard.build_stats();
            say!(
                out,
                "  shard {i:>3}: {} objects, {} words",
                s.objects,
                s.unique_words
            );
        }
        return Ok(());
    }
    let devices = DeviceSet::create_in_dir(db_dir).map_err(io_err)?;
    let db = SpatialKeywordDb::build(devices, objects, config).map_err(io_err)?;
    say!(
        out,
        "built {n} objects into {db_dir} in {:.1}s (vocabulary: {} words)",
        t0.elapsed().as_secs_f64(),
        db.build_stats().unique_words
    );
    print_sizes(out, &db.index_sizes())?;
    Ok(())
}

/// Opens a database with every device wrapped in a [`RetryDevice`]:
/// transient I/O faults (interrupted/timed-out reads) are absorbed by
/// jittered exponential backoff, and blocks that keep failing permanently
/// are quarantined. The retry layer shares the database's metrics
/// registry, so `ir2 stats --prometheus` exposes per-device retry and
/// quarantine counters next to the query metrics.
fn open_db(f: &Flags) -> Result<SpatialKeywordDb<RetryDevice<FileDevice>>, String> {
    let dir = f.required("db")?;
    if sharded_manifest(dir).map_err(io_err)?.is_some() {
        return Err(format!(
            "{dir} is a sharded database; this command supports monolithic databases only \
             (query, batch, stats, and check handle sharded directories automatically)"
        ));
    }
    let registry = Arc::new(MetricsRegistry::new());
    let devices = DeviceSet::open_dir(dir)
        .map_err(io_err)?
        .map(|name, d| RetryDevice::with_metrics(d, RetryPolicy::default(), &registry, name));
    let mut db = SpatialKeywordDb::open_with_registry(devices, registry).map_err(io_err)?;
    // Query-time overrides of the persisted cache configuration, for this
    // process only.
    if let Some(n) = f.optional("node-cache") {
        let n: usize = n.parse().map_err(|e| format!("bad --node-cache: {e}"))?;
        db.configure_node_cache(n);
    }
    if let Some(p) = f.optional("prefetch") {
        let p: usize = p.parse().map_err(|e| format!("bad --prefetch: {e}"))?;
        db.configure_prefetch(p);
    }
    Ok(db)
}

/// True when `--db` names a sharded directory (has a `SHARDS` manifest).
fn is_sharded(f: &Flags) -> Result<bool, String> {
    Ok(sharded_manifest(f.required("db")?)
        .map_err(io_err)?
        .is_some())
}

/// Opens a sharded database with every shard device wrapped in a
/// [`RetryDevice`] (one shared registry: retry and quarantine counters
/// aggregate across shards, per device role).
fn open_sharded(f: &Flags) -> Result<ShardedDb<RetryDevice<FileDevice>>, String> {
    let dir = f.required("db")?;
    let registry = Arc::new(MetricsRegistry::new());
    ShardedDb::open_dir_mapped(dir, |name, d| {
        RetryDevice::with_metrics(d, RetryPolicy::default(), &registry, name)
    })
    .map_err(io_err)
}

/// Parses the shared execution-limit flags (`--deadline-ms`,
/// `--io-budget`) into a [`QueryLimits`]. For a batch, the deadline is
/// resolved here — once — so it bounds the whole batch, not each query.
fn parse_limits(f: &Flags) -> Result<QueryLimits, String> {
    let mut limits = QueryLimits::none();
    if let Some(ms) = f.optional("deadline-ms") {
        let ms: u64 = ms.parse().map_err(|e| format!("bad --deadline-ms: {e}"))?;
        limits = limits.with_deadline(Duration::from_millis(ms));
    }
    if let Some(budget) = f.optional("io-budget") {
        let budget: u64 = budget
            .parse()
            .map_err(|e| format!("bad --io-budget: {e}"))?;
        limits = limits.with_io_budget(budget);
    }
    Ok(limits)
}

/// Parses `--hedge-ms` (sharded databases only: fire a second replica for
/// any shard pull still running after this many milliseconds).
fn parse_hedge(f: &Flags) -> Result<Option<Duration>, String> {
    match f.optional("hedge-ms") {
        None => Ok(None),
        Some(ms) => {
            let ms: u64 = ms.parse().map_err(|e| format!("bad --hedge-ms: {e}"))?;
            Ok(Some(Duration::from_millis(ms)))
        }
    }
}

fn keywords_of(f: &Flags) -> Result<Vec<String>, String> {
    Ok(f.required("keywords")?
        .split_whitespace()
        .map(str::to_owned)
        .collect())
}

fn print_report(out: &mut impl Write, report: &QueryReport) -> CliResult {
    for (obj, dist) in &report.results {
        let preview: String = obj.text.chars().take(60).collect();
        say!(out, "  #{:<8} {:>10.4}  {preview}", obj.id, dist);
    }
    if report.results.is_empty() {
        say!(out, "  (no results)");
    }
    say!(out,
        "  [{} random + {} sequential block accesses, {} object loads, {:.1} ms simulated disk time]",
        report.io.random(),
        report.io.sequential(),
        report.object_loads,
        report.simulated.as_secs_f64() * 1e3
    );
    if report.counters.cache_hits > 0 {
        say!(
            out,
            "  [{} of {} node visits served from the decoded-node cache]",
            report.counters.cache_hits,
            report.counters.nodes_read
        );
    }
    if report.retries > 0 {
        say!(
            out,
            "  [{} transient faults recovered by retry, {:.2} ms backoff]",
            report.retries,
            report.backoff.as_secs_f64() * 1e3
        );
    }
    if let Some(reason) = report.outcome {
        say!(
            out,
            "  ! truncated by {reason}: the {} results above are the exact \
             top-{} prefix of the full answer",
            report.results.len(),
            report.results.len()
        );
    }
    Ok(())
}

fn parse_alg(f: &Flags) -> Result<Algorithm, String> {
    match f.optional("alg").unwrap_or("ir2") {
        "rtree" => Ok(Algorithm::RTree),
        "iio" => Ok(Algorithm::Iio),
        "ir2" => Ok(Algorithm::Ir2),
        "mir2" => Ok(Algorithm::Mir2),
        other => Err(format!("unknown algorithm `{other}` (rtree|iio|ir2|mir2)")),
    }
}

/// `ir2 query` — distance-first top-k (point- or area-anchored). Sharded
/// directories are detected automatically and answered by the exact
/// scatter-gather merge (`--threads` > 1 drains shards in parallel).
pub fn query(args: &[String], out: &mut impl Write) -> CliResult {
    let f = Flags::parse(args)?;
    if is_sharded(&f)? {
        return query_sharded(&f, out);
    }
    let db = open_db(&f)?;
    let keywords = keywords_of(&f)?;
    let k: usize = f.get_or("k", 10)?;
    let alg = parse_alg(&f)?;

    let limits = parse_limits(&f)?;

    let report = if let Some(area) = f.optional("area") {
        if !limits.is_unlimited() {
            return Err(
                "--deadline-ms / --io-budget apply to point queries; area queries do not \
                 support execution limits yet"
                    .into(),
            );
        }
        let (a, b) = parse_area(area)?;
        let region: QueryRegion<2> = Rect::from_corners(Point::new(a), Point::new(b)).into();
        say!(
            out,
            "top-{k} {keywords:?} in/near area {a:?}..{b:?} via {}:",
            alg.label()
        );
        db.distance_first_region(alg, region, &keywords, k)
            .map_err(io_err)?
    } else {
        let at = parse_point(f.required("at")?)?;
        say!(out, "top-{k} {keywords:?} near {at:?} via {}:", alg.label());
        let q = DistanceFirstQuery::new(at, &keywords, k);
        if limits.is_unlimited() {
            db.distance_first(alg, &q).map_err(io_err)?
        } else {
            db.distance_first_limited(alg, &q, limits).map_err(io_err)?
        }
    };
    print_report(out, &report)?;
    Ok(())
}

/// The sharded arm of `ir2 query`.
fn query_sharded(f: &Flags, out: &mut impl Write) -> CliResult {
    if f.optional("area").is_some() {
        return Err(
            "--area queries are not supported on sharded databases yet; \
             point queries (--at) are"
                .into(),
        );
    }
    let db = open_sharded(f)?;
    let keywords = keywords_of(f)?;
    let k: usize = f.get_or("k", 10)?;
    let alg = parse_alg(f)?;
    let limits = parse_limits(f)?;
    let hedge = parse_hedge(f)?;
    let threads: usize = f.get_or("threads", 1)?;
    let at = parse_point(f.required("at")?)?;
    if hedge.is_some() && !limits.is_unlimited() {
        return Err(
            "--hedge-ms and --deadline-ms/--io-budget are mutually exclusive: hedged \
             drains are unlimited (like --threads), limited execution uses the \
             deterministic sequential merge"
                .into(),
        );
    }
    say!(
        out,
        "top-{k} {keywords:?} near {at:?} via {} over {} shards{}:",
        alg.label(),
        db.shard_count(),
        if db.replica_count() > 1 {
            format!(" × {} replicas", db.replica_count())
        } else {
            String::new()
        }
    );
    let q = DistanceFirstQuery::new(at, &keywords, k);
    let report = if let Some(delay) = hedge {
        db.distance_first_hedged(alg, &q, delay).map_err(io_err)?
    } else if !limits.is_unlimited() {
        db.distance_first_limited(alg, &q, limits).map_err(io_err)?
    } else if threads > 1 {
        db.distance_first_parallel(alg, &q, threads)
            .map_err(io_err)?
    } else {
        db.distance_first(alg, &q).map_err(io_err)?
    };
    print_report(out, &report)?;
    Ok(())
}

/// Parses a batch query file: one query per line, `LAT,LON` followed by
/// whitespace and the keywords. Blank lines and `#` comments are skipped.
fn parse_batch_file(path: &str, k: usize) -> Result<Vec<DistanceFirstQuery<2>>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut queries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = |m: String| format!("{path}:{}: {m}", lineno + 1);
        let (point, rest) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| bad("expected `LAT,LON keywords…`".into()))?;
        let at = parse_point(point).map_err(bad)?;
        let keywords: Vec<&str> = rest.split_whitespace().collect();
        queries.push(DistanceFirstQuery::new(at, &keywords, k));
    }
    if queries.is_empty() {
        return Err(format!("{path}: no queries"));
    }
    Ok(queries)
}

/// `ir2 batch` — run a file of distance-first queries concurrently on the
/// fault-isolated batch engine and report per-query results plus batch
/// throughput. `--deadline-ms` bounds the *whole batch* (queries past the
/// deadline come back truncated with whatever exact prefix they reached);
/// `--io-budget` bounds each query. A query that fails outright occupies
/// only its own slot — siblings still complete — and makes the exit code
/// nonzero.
pub fn batch(args: &[String], out: &mut impl Write) -> CliResult {
    let f = Flags::parse(args)?;
    let alg = parse_alg(&f)?;
    let k: usize = f.get_or("k", 10)?;
    let threads: usize = f.get_or("threads", 4)?;
    let queries = parse_batch_file(f.required("queries")?, k)?;
    let limits = parse_limits(&f)?;
    let hedge = parse_hedge(&f)?;

    let sharded = is_sharded(&f)?;
    if hedge.is_some() && !sharded {
        return Err("--hedge-ms requires a sharded database".into());
    }
    if hedge.is_some() && !limits.is_unlimited() {
        return Err("--hedge-ms and --deadline-ms/--io-budget are mutually exclusive".into());
    }
    let outcomes: Vec<Result<QueryReport, QueryError>>;
    let wall;
    if sharded {
        let db = open_sharded(&f)?;
        say!(
            out,
            "batch of {} top-{k} queries via {} on {threads} threads over {} shards{}:",
            queries.len(),
            alg.label(),
            db.shard_count(),
            if let Some(delay) = hedge {
                format!(" (hedging after {} ms)", delay.as_millis())
            } else {
                String::new()
            }
        );
        let t0 = std::time::Instant::now();
        outcomes = if let Some(delay) = hedge {
            queries
                .iter()
                .map(|q| db.distance_first_hedged(alg, q, delay).map_err(Into::into))
                .collect()
        } else {
            db.batch_topk_isolated(alg, &queries, threads, limits)
        };
        wall = t0.elapsed();
    } else {
        let db = open_db(&f)?;
        say!(
            out,
            "batch of {} top-{k} queries via {} on {threads} threads:",
            queries.len(),
            alg.label()
        );
        let t0 = std::time::Instant::now();
        outcomes = db.batch_topk_isolated(alg, &queries, threads, limits);
        wall = t0.elapsed();
    }
    let (mut ok, mut truncated, mut failed) = (0u64, 0u64, 0u64);
    let (mut total_io, mut retries) = (0u64, 0u64);
    for (i, (q, outcome)) in queries.iter().zip(&outcomes).enumerate() {
        match outcome {
            Ok(r) => {
                total_io += r.io.total();
                retries += r.retries;
                let top = r
                    .results
                    .first()
                    .map(|(o, d)| format!("#{} at {d:.4}", o.id))
                    .unwrap_or_else(|| "no results".into());
                let status = match r.outcome {
                    Some(reason) => {
                        truncated += 1;
                        format!("; truncated by {reason}")
                    }
                    None => {
                        ok += 1;
                        String::new()
                    }
                };
                say!(
                    out,
                    "  [{i:>3}] {:?} {:?}: {} hits ({top}); {} random + {} sequential \
                     accesses{status}",
                    q.point.coords(),
                    q.keywords,
                    r.results.len(),
                    r.io.random(),
                    r.io.sequential()
                );
            }
            Err(e) => {
                failed += 1;
                say!(
                    out,
                    "  [{i:>3}] {:?} {:?}: FAILED — {e}",
                    q.point.coords(),
                    q.keywords
                );
            }
        }
    }
    let qps = queries.len() as f64 / wall.as_secs_f64();
    say!(out,
        "  [{} queries in {:.1} ms wall — {qps:.0} queries/sec; {total_io} attributed block accesses]",
        queries.len(),
        wall.as_secs_f64() * 1e3
    );
    say!(
        out,
        "  [ok={ok} truncated={truncated} failed={failed} retries={retries}]"
    );
    if failed > 0 {
        return Err(format!("{failed} of {} queries failed", queries.len()));
    }
    Ok(())
}

/// `ir2 ranked` — general top-k by f(distance, IRscore) on the IR²-Tree.
pub fn ranked(args: &[String], out: &mut impl Write) -> CliResult {
    let f = Flags::parse(args)?;
    let db = open_db(&f)?;
    let keywords = keywords_of(&f)?;
    let k: usize = f.get_or("k", 10)?;
    let at = parse_point(f.required("at")?)?;
    let dist_weight: f64 = f.get_or("dist-weight", 0.05)?;

    let q = GeneralQuery::new(at, &keywords, k);
    let rank = LinearRank {
        ir_weight: 1.0,
        dist_weight,
    };
    let report = db
        .general_ranked(Algorithm::Ir2, &q, &SaturatingTfIdf, &rank)
        .map_err(io_err)?;
    say!(
        out,
        "ranked top-{k} {keywords:?} near {at:?} (relevance − {dist_weight}·distance):"
    );
    for r in &report.results {
        let preview: String = r.object.text.chars().take(50).collect();
        say!(
            out,
            "  #{:<8} score {:>7.3} (dist {:>8.3}, rel {:>5.2})  {preview}",
            r.object.id,
            r.score,
            r.distance,
            r.ir_score
        );
    }
    if report.results.is_empty() {
        say!(out, "  (no results)");
    }
    say!(
        out,
        "  [{} random + {} sequential block accesses, {:.1} ms simulated]",
        report.io.random(),
        report.io.sequential(),
        report.simulated.as_secs_f64() * 1e3
    );
    Ok(())
}

/// `ir2 trace` — run one distance-first query with full event tracing:
/// prints the step log (node pops, signature tests, object fetches), a
/// per-level pruning table comparing the *observed* signature match rate
/// against the `density_profile` *prediction* (the paper's Section VI
/// false-positive tables), then the usual result report.
pub fn trace(args: &[String], out: &mut impl Write) -> CliResult {
    let f = Flags::parse(args)?;
    let db = open_db(&f)?;
    let keywords = keywords_of(&f)?;
    let k: usize = f.get_or("k", 10)?;
    let alg = parse_alg(&f)?;
    let at = parse_point(f.required("at")?)?;
    let limit: usize = f.get_or("steps", 40)?;

    let q = DistanceFirstQuery::new(at, &keywords, k);
    let mut sink = VecSink::new();
    let report = db
        .distance_first_traced(alg, &q, &mut sink)
        .map_err(io_err)?;

    say!(
        out,
        "trace of top-{k} {keywords:?} near {at:?} via {}:",
        alg.label()
    );
    for (i, e) in sink.events.iter().take(limit).enumerate() {
        match e {
            TraceEvent::NodeVisited {
                node,
                level,
                mindist,
                entries,
                heap_size,
            } => say!(
                out,
                "  [{i:>4}] visit node {node} (level {level}) mindist {mindist:.4}, \
                 {entries} entries, frontier {heap_size}"
            ),
            TraceEvent::SignatureTest { level, matched } => say!(
                out,
                "  [{i:>4}] sig test @ level {level}: {}",
                if *matched { "match" } else { "pruned" }
            ),
            TraceEvent::ObjectFetched {
                ptr,
                distance,
                matched,
            } => say!(
                out,
                "  [{i:>4}] fetch object @{ptr} dist {distance:.4}: {}",
                if *matched {
                    "verified"
                } else {
                    "false positive"
                }
            ),
        }
    }
    if sink.events.len() > limit {
        say!(
            out,
            "  … {} more events (raise --steps to see them)",
            sink.events.len() - limit
        );
    }

    let stats = sink.stats();
    say!(
        out,
        "summary: {} nodes visited, {} entries scanned, {} signature tests \
         ({} pruned), {} objects fetched ({} false positives), max frontier {}",
        stats.nodes_visited,
        stats.entries_scanned,
        stats.sig_tests,
        stats.pruned_by_signature(),
        stats.objects_fetched,
        stats.false_positives,
        stats.max_heap
    );

    let profile = match alg {
        Algorithm::Ir2 => Some(density_profile(db.ir2_tree()).map_err(io_err)?),
        Algorithm::Mir2 => Some(density_profile(db.mir2_tree()).map_err(io_err)?),
        _ => None,
    };
    if let Some(profile) = profile {
        say!(
            out,
            "level  bits  density  predicted-fp  sig-tests  matched  observed"
        );
        for ld in &profile {
            let lp = stats
                .per_level
                .get(ld.level as usize)
                .copied()
                .unwrap_or_default();
            say!(
                out,
                "{:>5}  {:>4}  {:>7.4}  {:>12.4}  {:>9}  {:>7}  {:>8.4}",
                ld.level,
                ld.bits,
                ld.mean_density,
                ld.expected_fp,
                lp.tests,
                lp.matched,
                lp.match_rate()
            );
        }
    }
    print_report(out, &report)?;
    Ok(())
}

/// `ir2 check` — fsck-style offline integrity check: verifies the catalog
/// (shadow epoch + checksums), re-reads every object record (per-record
/// CRCs), and walks all three trees validating page checksums, MBR
/// containment, and signature containment. Nonzero exit on any corruption.
pub fn check(args: &[String], out: &mut impl Write) -> CliResult {
    let f = Flags::parse(args)?;
    let dir = f.required("db")?;
    let root = std::path::Path::new(dir);
    if let Some(layout) = shard_layout(root).map_err(io_err)? {
        say!(
            out,
            "manifest OK    {} shards × {} replica(s)",
            layout.shards,
            layout.replicas
        );
        let mut all_ok = true;
        for i in 0..layout.shards {
            for (m, rep_dir) in layout.replica_dirs(root, i).iter().enumerate() {
                if layout.replicas > 1 {
                    say!(out, "shard {i} replica {m}:");
                } else {
                    say!(out, "shard {i}:");
                }
                if !rep_dir.is_dir() {
                    say!(out, "devices  MISSING  {}", rep_dir.display());
                    all_ok = false;
                    continue;
                }
                match check_one(rep_dir, out) {
                    Ok(ok) => all_ok &= ok,
                    Err(e) => {
                        say!(out, "devices  FAIL  {e}");
                        all_ok = false;
                    }
                }
            }
        }
        // Directories beyond the manifest's shard count are stale or from
        // a torn re-shard — surface them rather than silently ignoring.
        if let Ok(entries) = std::fs::read_dir(root) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if let Some(idx) = name.strip_prefix("shard-") {
                    if idx.parse::<usize>().is_ok_and(|i| i >= layout.shards) {
                        say!(out, "extra    FAIL  `{name}` beyond manifest shard count");
                        all_ok = false;
                    }
                }
            }
        }
        return if all_ok {
            Ok(())
        } else {
            Err("database failed integrity check".into())
        };
    }
    if check_one(root, out)? {
        Ok(())
    } else {
        Err("database failed integrity check".into())
    }
}

/// `ir2 scrub` — online replica scrubber: diffs every replica of every
/// shard block-for-block against a healthy reference replica and (with
/// `--repair`) re-copies divergent files from the reference. Nonzero exit
/// unless the directory is fully consistent after the pass.
pub fn scrub(args: &[String], out: &mut impl Write) -> CliResult {
    let f = Flags::parse(args)?;
    let dir = f.required("db")?;
    let repair = f.switch("repair");
    let report = scrub_dir(dir, repair, None).map_err(io_err)?;
    say!(
        out,
        "scrubbed {} shards × {} replica(s): {} pages compared, {} mismatches, {} files repaired",
        report.shards,
        report.replicas,
        report.pages,
        report.mismatches,
        report.repairs
    );
    for line in &report.details {
        say!(out, "  {line}");
    }
    if report.clean() {
        say!(out, "clean");
        Ok(())
    } else if repair {
        Err(format!(
            "{} page(s) still divergent, {} shard(s) unscrubbable",
            report.unrepaired, report.unscrubbed_shards
        ))
    } else {
        Err(format!(
            "{} divergent page(s) found (re-run with --repair to fix)",
            report.unrepaired
        ))
    }
}

/// `ir2 fuzz` — differential oracle fuzzing: every engine variant vs the
/// brute-force reference, over seeded random datasets, mutations, and
/// queries. Exit status is non-zero when a divergence is found; the
/// printed `repro:` line replays exactly that case.
pub fn fuzz(args: &[String], out: &mut impl Write) -> CliResult {
    let f = Flags::parse(args)?;
    let opts = ir2_oracle::FuzzOptions {
        seed: f.get_or("seed", 42u64)?,
        iters: f.get_or("iters", 100u64)?,
        start_iter: f.get_or("start-iter", 0u64)?,
        caps: ir2_oracle::scenario::Caps {
            max_objects: f.get_or("objects", 64usize)?,
            max_queries: f.get_or("queries", 64usize)?,
        },
        inject_bug: f.switch("inject-bug"),
        minimize: !f.switch("no-minimize"),
    };
    say!(
        out,
        "fuzzing: seed={} iters={} start-iter={} objects<={} queries<={}{}",
        opts.seed,
        opts.iters,
        opts.start_iter,
        opts.caps.max_objects,
        opts.caps.max_queries,
        if opts.inject_bug { " [inject-bug]" } else { "" }
    );
    let mut progress_err = None;
    let outcome = ir2_oracle::run_fuzz(&opts, &mut |done, checks| {
        if done % 100 == 0 {
            if let Err(e) = writeln!(out, "  …{done} iterations, {checks} checks") {
                progress_err.get_or_insert(e);
            }
        }
    });
    if let Some(e) = progress_err {
        return Err(io_err(e));
    }
    match outcome.divergence {
        None => {
            say!(
                out,
                "ok: {} iterations, {} checks, zero divergences",
                outcome.iterations,
                outcome.checks
            );
            Ok(())
        }
        Some(d) => {
            say!(out, "{d}");
            Err("cross-engine divergence found (repro command above)".into())
        }
    }
}

/// Checks one (monolithic) database directory, printing per-structure
/// verdicts; returns whether everything passed.
fn check_one(dir: &std::path::Path, out: &mut impl Write) -> Result<bool, String> {
    let devices = DeviceSet::open_dir(dir).map_err(io_err)?;
    let db = match SpatialKeywordDb::open(devices) {
        Ok(db) => db,
        Err(e) => {
            say!(out, "catalog  FAIL  {e}");
            return Ok(false);
        }
    };
    let report = db.check_integrity();
    say!(out, "catalog  OK    epoch {}", report.catalog_epoch);
    for s in &report.structures {
        say!(
            out,
            "{:<8} {}  {}",
            s.name,
            if s.ok { "OK  " } else { "FAIL" },
            s.detail
        );
    }
    Ok(report.ok())
}

/// `ir2 stats` — Table-1/Table-2 style report for a database directory.
/// With `--prometheus`, emits the metrics registry in Prometheus text
/// exposition format instead (gauges carry the dataset and per-device I/O
/// totals of this process; query counters accumulate as queries run).
pub fn stats(args: &[String], out: &mut impl Write) -> CliResult {
    let f = Flags::parse(args)?;
    if is_sharded(&f)? {
        let db = open_sharded(&f)?;
        if f.switch("prometheus") {
            write!(out, "{}", db.metrics_prometheus()).map_err(io_err)?;
            return Ok(());
        }
        say!(out, "shards:             {}", db.shard_count());
        say!(out, "replicas:           {}", db.replica_count());
        say!(out, "objects:            {}", db.total_objects());
        for (i, shard) in db.shards().enumerate() {
            let s = shard.build_stats();
            say!(
                out,
                "  shard {i:>3}: {} objects, {} words, {:.1} MB object file",
                s.objects,
                s.unique_words,
                s.object_file_bytes as f64 / 1_048_576.0
            );
        }
        return Ok(());
    }
    let db = open_db(&f)?;
    if f.switch("prometheus") {
        write!(out, "{}", db.metrics_prometheus()).map_err(io_err)?;
        return Ok(());
    }
    let s = db.build_stats();
    say!(out, "objects:            {}", s.objects);
    say!(out, "avg words/object:   {:.1}", s.avg_unique_words);
    say!(out, "vocabulary:         {}", s.unique_words);
    say!(
        out,
        "object file:        {:.1} MB",
        s.object_file_bytes as f64 / 1_048_576.0
    );
    say!(out, "avg blocks/object:  {:.2}", s.avg_blocks_per_object);
    say!(out, "tree fanout:        {}", db.tree_config().max_entries);
    // Per-level signature weight, sourced from the columnar block
    // representation — the paper's false-positive driver is exactly how
    // many 1s superimposition has accumulated per level.
    for (label, profile) in [
        ("ir2", density_profile(db.ir2_tree()).map_err(io_err)?),
        ("mir2", density_profile(db.mir2_tree()).map_err(io_err)?),
    ] {
        for ld in &profile {
            say!(
                out,
                "signature {label:<5} L{}: density {:.4}, avg {:.1}/{} bits set \
                 ({} entries)",
                ld.level,
                ld.mean_density,
                ld.mean_set_bits,
                ld.bits,
                ld.entries
            );
        }
    }
    let cache = db.node_cache_stats();
    if cache.is_empty() {
        say!(out, "node cache:         off");
    } else {
        for (tree, hits, misses) in cache {
            say!(
                out,
                "node cache {tree:<8} {hits} hits / {misses} misses this process"
            );
        }
    }
    print_sizes(out, &db.index_sizes())?;
    Ok(())
}

fn print_sizes(out: &mut impl Write, sizes: &ir2tree::IndexSizes) -> CliResult {
    say!(out, "index sizes (MB):");
    say!(out, "  inverted index:   {:.1}", IndexSizes::mb(sizes.iio));
    say!(
        out,
        "  R-Tree:           {:.1}",
        IndexSizes::mb(sizes.rtree)
    );
    say!(out, "  IR2-Tree:         {:.1}", IndexSizes::mb(sizes.ir2));
    say!(out, "  MIR2-Tree:        {:.1}", IndexSizes::mb(sizes.mir2));
    Ok(())
}
