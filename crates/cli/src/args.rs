//! Minimal flag parsing (no external dependencies, like the rest of the
//! workspace).

use std::collections::HashMap;

/// Top-level usage text.
pub const USAGE: &str = "\
ir2 — keyword search on spatial databases (IR²-Tree, ICDE 2008)

USAGE:
  ir2 generate --preset <hotels|restaurants> [--count N] [--seed S] --out FILE.tsv
  ir2 build    --tsv FILE.tsv --db DIR [--sig-bytes N] [--capacity N] [--incremental]
               [--node-cache NODES] [--prefetch WORKERS] [--shards N] [--replicas R]
  ir2 query    --db DIR --at LAT,LON --keywords \"w1 w2 …\" [--k N]
               [--alg <rtree|iio|ir2|mir2>] [--area LAT1,LON1,LAT2,LON2]
               [--deadline-ms MS] [--io-budget BLOCKS] [--threads N]
               [--node-cache NODES] [--prefetch WORKERS] [--hedge-ms MS]
  ir2 batch    --db DIR --queries FILE [--threads N] [--k N]
               [--alg <rtree|iio|ir2|mir2>] [--deadline-ms MS] [--io-budget BLOCKS]
               [--node-cache NODES] [--prefetch WORKERS] [--hedge-ms MS]
  ir2 ranked   --db DIR --at LAT,LON --keywords \"w1 w2 …\" [--k N] [--dist-weight W]
  ir2 trace    --db DIR --at LAT,LON --keywords \"w1 w2 …\" [--k N]
               [--alg <rtree|iio|ir2|mir2>] [--steps N]
  ir2 stats    --db DIR [--prometheus]
  ir2 check    --db DIR
  ir2 scrub    --db DIR [--repair]
  ir2 fuzz     [--seed S] [--iters N] [--start-iter I] [--objects N] [--queries N]
               [--inject-bug] [--no-minimize]

Databases are directories of 4096-byte block-device files; every query
reports its (simulated) disk I/O alongside the results. A batch query
file holds one `LAT,LON keywords…` query per line (# comments allowed);
the batch runs concurrently with exact per-query I/O attribution and
per-query fault isolation. `--deadline-ms` (batch-wide) and
`--io-budget` (per query) bound execution: a query that trips a limit
is truncated, not failed — its results are the exact top-m prefix of
the full answer. `--node-cache` keeps up to NODES decoded tree nodes
per index (warm queries skip checksum + decode work; at build time the
setting is persisted, at query time it overrides for that process) and
`--prefetch` decodes up to WORKERS frontier nodes ahead of the
traversal — results are byte-identical either way.

`ir2 build --shards N` tiles the objects spatially (STR order) into N
fully independent shards under one directory; query, batch, stats, and
check detect a sharded directory automatically and answer through an
exact scatter-gather merge — results are identical to a single-shard
build. On a sharded database, `ir2 query --threads N` drains shards
with up to N parallel workers.

`--replicas R` (with `--shards`) stores R byte-verified copies of every
shard. Queries route to a healthy replica per shard, fail over
automatically (re-issuing the bounded pull against the next replica
with the surviving deadline/io-budget slice — results stay exact), and
with `--hedge-ms T` fire a second replica for any shard pull still
running after T ms, taking whichever answer lands first. `ir2 scrub`
walks every replica diffing pages against a healthy reference replica
(highest catalog epoch) and, with `--repair`, re-copies divergent
files from the reference and re-verifies them.

`ir2 fuzz` runs the differential oracle harness: seeded random
datasets, insert/delete streams, and queries are answered by every
engine variant (all four algorithms — cold, warm-cached, prefetched,
fault-injected, incrementally mutated — plus 1/2/4-way sharding, the
uniform grid, and the flat signature file) and compared byte-for-byte
against a brute-force reference, along with metamorphic invariants
(k vs k+1 prefixes, truncated-prefix under budgets, counter
conservation, delete+reinsert idempotence). A divergence is shrunk to
minimal reproducing caps and printed with a one-line repro command;
the exit status is non-zero. `--inject-bug` deliberately corrupts one
engine's answers to prove the harness and the repro round trip work.";

/// Parsed `--flag value` pairs.
pub struct Flags {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    /// Parses `--key value` pairs and bare `--switch`es.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut values = HashMap::new();
        let mut switches = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument `{arg}`"));
            };
            match it.peek() {
                Some(next) if !next.starts_with("--") => {
                    values.insert(key.to_owned(), it.next().expect("peeked").clone());
                }
                _ => switches.push(key.to_owned()),
            }
        }
        Ok(Self { values, switches })
    }

    /// A required string flag.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// An optional string flag.
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// An optional parsed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.values.get(key) {
            Some(v) => v.parse().map_err(|e| format!("bad --{key}: {e}")),
            None => Ok(default),
        }
    }

    /// True if the bare switch was given.
    pub fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

/// Parses "lat,lon" into a coordinate pair.
pub fn parse_point(s: &str) -> Result<[f64; 2], String> {
    let parts: Vec<&str> = s.split(',').collect();
    if parts.len() != 2 {
        return Err(format!("expected LAT,LON, got `{s}`"));
    }
    let lat = parts[0]
        .trim()
        .parse()
        .map_err(|e| format!("bad latitude: {e}"))?;
    let lon = parts[1]
        .trim()
        .parse()
        .map_err(|e| format!("bad longitude: {e}"))?;
    Ok([lat, lon])
}

/// Parses "lat1,lon1,lat2,lon2" into rectangle corners.
pub fn parse_area(s: &str) -> Result<([f64; 2], [f64; 2]), String> {
    let parts: Vec<&str> = s.split(',').collect();
    if parts.len() != 4 {
        return Err(format!("expected LAT1,LON1,LAT2,LON2, got `{s}`"));
    }
    let mut v = [0.0f64; 4];
    for (slot, p) in v.iter_mut().zip(&parts) {
        *slot = p
            .trim()
            .parse()
            .map_err(|e| format!("bad coordinate: {e}"))?;
    }
    Ok(([v[0], v[1]], [v[2], v[3]]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_values_and_switches() {
        let f = Flags::parse(&args(&["--db", "dir", "--k", "5", "--incremental"])).unwrap();
        assert_eq!(f.required("db").unwrap(), "dir");
        assert_eq!(f.get_or("k", 10usize).unwrap(), 5);
        assert!(f.switch("incremental"));
        assert!(!f.switch("verbose"));
        assert!(f.required("missing").is_err());
        assert_eq!(f.get_or("absent", 7u32).unwrap(), 7);
    }

    #[test]
    fn rejects_positional_args() {
        assert!(Flags::parse(&args(&["stray"])).is_err());
    }

    #[test]
    fn point_and_area_parsing() {
        assert_eq!(parse_point("25.7, -80.1").unwrap(), [25.7, -80.1]);
        assert!(parse_point("1,2,3").is_err());
        assert!(parse_point("abc,1").is_err());
        let (lo, hi) = parse_area("1,2,3,4").unwrap();
        assert_eq!((lo, hi), ([1.0, 2.0], [3.0, 4.0]));
        assert!(parse_area("1,2,3").is_err());
    }
}
