//! `ir2` — command-line spatial keyword search.
//!
//! ```text
//! ir2 generate --preset restaurants --count 10000 --out pois.tsv
//! ir2 build --tsv pois.tsv --db ./mydb [--sig-bytes 8] [--capacity 102]
//! ir2 query --db ./mydb --at 25.77,-80.19 --keywords "cafe wifi" [--k 10] [--alg ir2]
//! ir2 batch --db ./mydb --queries q.txt [--threads 4] [--k 10] [--alg ir2]
//! ir2 ranked --db ./mydb --at 25.77,-80.19 --keywords "cafe wifi" [--k 10]
//! ir2 trace --db ./mydb --at 25.77,-80.19 --keywords "cafe wifi" [--alg ir2]
//! ir2 stats --db ./mydb [--prometheus]
//! ```
//!
//! Databases are directories of block-device files (see
//! `DeviceSet::create_in_dir`); every query prints its results *and* its
//! simulated disk I/O, like the paper's experiments.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{}", args::USAGE);
        return ExitCode::FAILURE;
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let result = match cmd.as_str() {
        "generate" => commands::generate(rest, &mut out),
        "build" => commands::build(rest, &mut out),
        "query" => commands::query(rest, &mut out),
        "batch" => commands::batch(rest, &mut out),
        "ranked" => commands::ranked(rest, &mut out),
        "trace" => commands::trace(rest, &mut out),
        "stats" => commands::stats(rest, &mut out),
        "check" => commands::check(rest, &mut out),
        "scrub" => commands::scrub(rest, &mut out),
        "fuzz" => commands::fuzz(rest, &mut out),
        "help" | "--help" | "-h" => {
            println!("{}", args::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", args::USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        // A closed pipe (e.g. `ir2 stats | head`) is not an error.
        Err(e) if e.contains("Broken pipe") => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
