//! `ir2 fuzz` repro round trip: the one-line repro command printed for a
//! (deliberately injected) divergence must re-run to the same exit code
//! and the byte-identical divergence block.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_ir2"))
        .args(args)
        .output()
        .expect("spawn ir2");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

/// The divergence block: the `divergence:` header plus its indented
/// detail lines (everything else — progress, banners — is run-shaped).
fn divergence_block(stdout: &str) -> String {
    stdout
        .lines()
        .filter(|l| l.starts_with("divergence:") || l.starts_with("  "))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn injected_divergence_repro_round_trip() {
    let (ok, stdout) = run(&["fuzz", "--seed", "11", "--iters", "10", "--inject-bug"]);
    assert!(!ok, "an injected bug must fail the run:\n{stdout}");
    let block = divergence_block(&stdout);
    assert!(block.contains("engine=ir2(cold)"), "{stdout}");
    assert!(block.contains("invariant=oracle-exact"), "{stdout}");

    // Extract and re-run the printed repro command.
    let repro = stdout
        .lines()
        .find_map(|l| l.trim_start().strip_prefix("repro: "))
        .expect("a repro: line");
    let words: Vec<&str> = repro.split_whitespace().collect();
    assert_eq!(words[0], "ir2");
    assert!(repro.contains("--inject-bug"), "{repro}");

    let (ok2, stdout2) = run(&words[1..]);
    assert!(!ok2, "the repro must reproduce the failure:\n{stdout2}");
    assert_eq!(
        divergence_block(&stdout2),
        block,
        "repro must print the identical divergence"
    );
}

#[test]
fn clean_fuzz_run_exits_zero() {
    let (ok, stdout) = run(&["fuzz", "--seed", "42", "--iters", "3"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("zero divergences"), "{stdout}");
}
