//! End-to-end tests of the `ir2` binary: generate → build → query/stats,
//! driven through the real executable.

use std::path::PathBuf;
use std::process::{Command, Output};

fn ir2(dir: &std::path::Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ir2"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("spawn ir2")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ir2-cli-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_pipeline() {
    let dir = workdir("pipeline");
    let gen = ir2(
        &dir,
        &[
            "generate",
            "--preset",
            "restaurants",
            "--count",
            "800",
            "--out",
            "pois.tsv",
        ],
    );
    assert!(
        gen.status.success(),
        "{}",
        String::from_utf8_lossy(&gen.stderr)
    );
    assert!(dir.join("pois.tsv").exists());

    let build = ir2(
        &dir,
        &[
            "build",
            "--tsv",
            "pois.tsv",
            "--db",
            "db",
            "--sig-bytes",
            "8",
        ],
    );
    assert!(
        build.status.success(),
        "{}",
        String::from_utf8_lossy(&build.stderr)
    );
    assert!(stdout(&build).contains("built 800 objects"));

    let stats = ir2(&dir, &["stats", "--db", "db"]);
    assert!(stats.status.success());
    let s = stdout(&stats);
    assert!(s.contains("objects:            800"), "{s}");
    assert!(s.contains("index sizes"));
    // Per-level signature weight lines sourced from the block kernels.
    assert!(s.contains("signature ir2   L0: density"), "{s}");
    assert!(s.contains("signature mir2  L0: density"), "{s}");
    assert!(s.contains("bits set"), "{s}");

    // Query with every algorithm; all must succeed and report I/O.
    for alg in ["rtree", "iio", "ir2", "mir2"] {
        let q = ir2(
            &dir,
            &[
                "query",
                "--db",
                "db",
                "--at",
                "0,0",
                "--keywords",
                "ba",
                "--k",
                "3",
                "--alg",
                alg,
            ],
        );
        assert!(
            q.status.success(),
            "{alg}: {}",
            String::from_utf8_lossy(&q.stderr)
        );
        assert!(stdout(&q).contains("block accesses"), "{alg}");
    }

    // Concurrent batch: a query file answered on 4 threads.
    std::fs::write(
        dir.join("queries.txt"),
        "# point keywords\n0,0 ba\n5,5 ce\n\n-10,10 ba ce\n20,-20 ba\n",
    )
    .unwrap();
    let batch = ir2(
        &dir,
        &[
            "batch",
            "--db",
            "db",
            "--queries",
            "queries.txt",
            "--threads",
            "4",
            "--k",
            "3",
        ],
    );
    assert!(
        batch.status.success(),
        "{}",
        String::from_utf8_lossy(&batch.stderr)
    );
    let b = stdout(&batch);
    assert!(b.contains("batch of 4 top-3 queries"), "{b}");
    assert!(b.contains("queries/sec"), "{b}");

    // A malformed batch file is reported with its line number.
    std::fs::write(dir.join("bad.txt"), "not-a-point ba\n").unwrap();
    let bad = ir2(&dir, &["batch", "--db", "db", "--queries", "bad.txt"]);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("bad.txt:1"));

    // Traced query: step log plus the observed-vs-predicted pruning table.
    for alg in ["ir2", "mir2", "rtree"] {
        let t = ir2(
            &dir,
            &[
                "trace",
                "--db",
                "db",
                "--at",
                "0,0",
                "--keywords",
                "ba",
                "--k",
                "3",
                "--alg",
                alg,
            ],
        );
        assert!(
            t.status.success(),
            "{alg}: {}",
            String::from_utf8_lossy(&t.stderr)
        );
        let s = stdout(&t);
        assert!(s.contains("summary:"), "{alg}: {s}");
        assert!(!s.contains("NaN"), "{alg}: {s}");
        if alg != "rtree" {
            assert!(s.contains("predicted-fp"), "{alg}: {s}");
            assert!(s.contains("sig test"), "{alg}: {s}");
        }
    }

    // Prometheus exposition: well-formed, finite numbers only.
    let prom = ir2(&dir, &["stats", "--db", "db", "--prometheus"]);
    assert!(prom.status.success());
    let p = stdout(&prom);
    assert!(p.contains("# TYPE"), "{p}");
    assert!(p.contains("device_read_blocks{device=\"objects\"}"), "{p}");
    assert!(p.contains("db_objects 800"), "{p}");
    assert!(!p.contains("NaN"), "{p}");
    assert!(!p.contains("inf"), "{p}");

    // Execution limits: an exhausted I/O budget truncates (exit 0, with a
    // banner naming the limit) instead of failing.
    let limited = ir2(
        &dir,
        &[
            "query",
            "--db",
            "db",
            "--at",
            "0,0",
            "--keywords",
            "ba",
            "--k",
            "3",
            "--io-budget",
            "0",
        ],
    );
    assert!(
        limited.status.success(),
        "{}",
        String::from_utf8_lossy(&limited.stderr)
    );
    let l = stdout(&limited);
    assert!(l.contains("truncated by io_budget"), "{l}");
    assert!(l.contains("(no results)"), "{l}");

    // A generous budget changes nothing.
    let roomy = ir2(
        &dir,
        &[
            "query",
            "--db",
            "db",
            "--at",
            "0,0",
            "--keywords",
            "ba",
            "--k",
            "3",
            "--io-budget",
            "1000000",
            "--deadline-ms",
            "60000",
        ],
    );
    assert!(roomy.status.success());
    assert!(!stdout(&roomy).contains("truncated"), "{}", stdout(&roomy));

    // Batch under a batch-wide deadline: always exits 0 (truncation is not
    // failure) and reports the truncation tally in its summary.
    let dl = ir2(
        &dir,
        &[
            "batch",
            "--db",
            "db",
            "--queries",
            "queries.txt",
            "--threads",
            "2",
            "--k",
            "3",
            "--deadline-ms",
            "60000",
        ],
    );
    assert!(
        dl.status.success(),
        "{}",
        String::from_utf8_lossy(&dl.stderr)
    );
    let d = stdout(&dl);
    assert!(d.contains("truncated="), "{d}");
    assert!(d.contains("failed=0"), "{d}");

    // Every query truncated under a zero budget; still exit 0.
    let starved = ir2(
        &dir,
        &[
            "batch",
            "--db",
            "db",
            "--queries",
            "queries.txt",
            "--k",
            "3",
            "--io-budget",
            "0",
        ],
    );
    assert!(starved.status.success());
    let s = stdout(&starved);
    assert!(s.contains("truncated=4"), "{s}");

    // Limits are rejected on area queries rather than silently ignored.
    let area_limited = ir2(
        &dir,
        &[
            "query",
            "--db",
            "db",
            "--area",
            "-20,-20,20,20",
            "--keywords",
            "ba",
            "--io-budget",
            "5",
        ],
    );
    assert!(!area_limited.status.success());

    // Area query and ranked query.
    let area = ir2(
        &dir,
        &[
            "query",
            "--db",
            "db",
            "--area",
            "-20,-20,20,20",
            "--keywords",
            "ba",
            "--k",
            "2",
        ],
    );
    assert!(area.status.success());
    let ranked = ir2(
        &dir,
        &[
            "ranked",
            "--db",
            "db",
            "--at",
            "0,0",
            "--keywords",
            "ba ce",
            "--k",
            "3",
        ],
    );
    assert!(ranked.status.success());
    assert!(stdout(&ranked).contains("score"));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn replicated_pipeline() {
    let dir = workdir("replicated");
    let gen = ir2(
        &dir,
        &[
            "generate",
            "--preset",
            "restaurants",
            "--count",
            "400",
            "--out",
            "pois.tsv",
        ],
    );
    assert!(gen.status.success());

    let build = ir2(
        &dir,
        &[
            "build",
            "--tsv",
            "pois.tsv",
            "--db",
            "db",
            "--sig-bytes",
            "8",
            "--shards",
            "2",
            "--replicas",
            "2",
        ],
    );
    assert!(
        build.status.success(),
        "{}",
        String::from_utf8_lossy(&build.stderr)
    );
    let b = stdout(&build);
    assert!(b.contains("2 shards × 2 replica(s)"), "{b}");
    assert!(b.contains("byte-verified"), "{b}");

    // check recurses into every shard × replica directory.
    let check = ir2(&dir, &["check", "--db", "db"]);
    assert!(
        check.status.success(),
        "{}",
        String::from_utf8_lossy(&check.stderr)
    );
    let c = stdout(&check);
    assert!(c.contains("manifest OK    2 shards × 2 replica(s)"), "{c}");
    assert!(c.contains("shard 0 replica 0:"), "{c}");
    assert!(c.contains("shard 1 replica 1:"), "{c}");

    let stats = ir2(&dir, &["stats", "--db", "db"]);
    assert!(stats.status.success());
    assert!(stdout(&stats).contains("replicas:           2"));

    // Plain and hedged queries agree.
    let plain = ir2(
        &dir,
        &[
            "query",
            "--db",
            "db",
            "--at",
            "0,0",
            "--keywords",
            "ba",
            "--k",
            "3",
        ],
    );
    assert!(plain.status.success());
    let hedged = ir2(
        &dir,
        &[
            "query",
            "--db",
            "db",
            "--at",
            "0,0",
            "--keywords",
            "ba",
            "--k",
            "3",
            "--hedge-ms",
            "50",
        ],
    );
    assert!(
        hedged.status.success(),
        "{}",
        String::from_utf8_lossy(&hedged.stderr)
    );
    let result_lines = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| l.trim_start().starts_with('#'))
            .map(str::to_owned)
            .collect()
    };
    assert_eq!(
        result_lines(&stdout(&plain)),
        result_lines(&stdout(&hedged))
    );

    // Hedging is incompatible with execution limits.
    let conflict = ir2(
        &dir,
        &[
            "query",
            "--db",
            "db",
            "--at",
            "0,0",
            "--keywords",
            "ba",
            "--hedge-ms",
            "50",
            "--io-budget",
            "100",
        ],
    );
    assert!(!conflict.status.success());

    // A fresh build scrubs clean.
    let scrub = ir2(&dir, &["scrub", "--db", "db"]);
    assert!(
        scrub.status.success(),
        "{}",
        String::from_utf8_lossy(&scrub.stderr)
    );
    assert!(stdout(&scrub).contains("clean"));

    // Corrupt one page of one replica: scrub detects it (nonzero exit),
    // --repair fixes it, and the directory checks clean again.
    let victim = dir.join("db/shard-001/replica-1/objects.blocks");
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&victim, &bytes).unwrap();

    let dirty = ir2(&dir, &["scrub", "--db", "db"]);
    assert!(!dirty.status.success());
    assert!(stdout(&dirty).contains("diverges"), "{}", stdout(&dirty));

    let repair = ir2(&dir, &["scrub", "--db", "db", "--repair"]);
    assert!(
        repair.status.success(),
        "{}",
        String::from_utf8_lossy(&repair.stderr)
    );
    let r = stdout(&repair);
    assert!(r.contains("repaired"), "{r}");
    assert!(r.contains("verified clean"), "{r}");

    let recheck = ir2(&dir, &["check", "--db", "db"]);
    assert!(
        recheck.status.success(),
        "{}",
        String::from_utf8_lossy(&recheck.stderr)
    );

    // Queries survive an entire replica directory being deleted (failover),
    // but check reports the hole with a nonzero exit.
    std::fs::remove_dir_all(dir.join("db/shard-000/replica-0")).unwrap();
    let after_loss = ir2(
        &dir,
        &[
            "query",
            "--db",
            "db",
            "--at",
            "0,0",
            "--keywords",
            "ba",
            "--k",
            "3",
        ],
    );
    assert!(
        after_loss.status.success(),
        "{}",
        String::from_utf8_lossy(&after_loss.stderr)
    );
    assert_eq!(
        result_lines(&stdout(&plain)),
        result_lines(&stdout(&after_loss))
    );
    let holed = ir2(&dir, &["check", "--db", "db"]);
    assert!(!holed.status.success());
    assert!(stdout(&holed).contains("MISSING"), "{}", stdout(&holed));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn replica_flag_validation() {
    let dir = workdir("replica-flags");
    std::fs::write(dir.join("one.tsv"), "1\t0\t0\tcafe\n").unwrap();
    // --replicas 0 is rejected.
    let zero = ir2(
        &dir,
        &[
            "build",
            "--tsv",
            "one.tsv",
            "--db",
            "db0",
            "--shards",
            "2",
            "--replicas",
            "0",
        ],
    );
    assert!(!zero.status.success());
    assert!(String::from_utf8_lossy(&zero.stderr).contains("at least 1"));
    // --replicas without sharding is rejected.
    let unsharded = ir2(
        &dir,
        &[
            "build",
            "--tsv",
            "one.tsv",
            "--db",
            "db1",
            "--replicas",
            "2",
        ],
    );
    assert!(!unsharded.status.success());
    assert!(String::from_utf8_lossy(&unsharded.stderr).contains("sharded"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn helpful_errors() {
    let dir = workdir("errors");
    // Unknown command.
    let bad = ir2(&dir, &["frobnicate"]);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("unknown command"));

    // Missing required flag.
    let q = ir2(&dir, &["query", "--at", "0,0", "--keywords", "x"]);
    assert!(!q.status.success());
    assert!(String::from_utf8_lossy(&q.stderr).contains("--db"));

    // Nonexistent database directory.
    let q = ir2(&dir, &["stats", "--db", "nope"]);
    assert!(!q.status.success());

    // Bad algorithm name.
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn help_prints_usage() {
    let dir = workdir("help");
    let h = ir2(&dir, &["help"]);
    assert!(h.status.success());
    assert!(stdout(&h).contains("USAGE"));
    std::fs::remove_dir_all(&dir).unwrap();
}
